(* Quickstart: build a 3-process system with the eventually perfect
   failure detector, crash one process mid-run, and watch the
   suspicions converge.

     dune exec examples/quickstart.exe
*)

open Afd_ioa
open Afd_core

let () =
  let n = 3 in
  (* A noisy EvP implementation: p0 briefly (and wrongly) suspects p1
     before converging to the true crash set. *)
  let noise = Afd_automata.noise_of_list [ (0, Loc.Set.singleton 1) ] in
  let detector = Afd_automata.fd_ev_perfect_noisy ~n ~noise in

  (* Run it composed with the crash automaton: p2 crashes at step 12. *)
  let trace =
    Afd_automata.generate_trace ~detector ~n ~seed:2026 ~crash_at:[ (12, 2) ] ~steps:40
  in

  Format.printf "--- detector events (n = %d, p2 crashes) ---@." n;
  List.iter
    (fun ev ->
      match ev with
      | Fd_event.Crash i -> Format.printf "  ** crash at %a **@." Loc.pp i
      | Fd_event.Output (i, s) ->
        Format.printf "  %a suspects %a@." Loc.pp i Loc.pp_set s)
    trace;

  (* Check the trace against the AFD specifications. *)
  Format.printf "@.--- verdicts ---@.";
  Format.printf "  T_EvP membership: %a@." Verdict.pp (Afd.check Ev_perfect.spec ~n trace);
  Format.printf "  T_P   membership: %a   (the early false suspicion violates P's accuracy)@."
    Verdict.pp (Afd.check Perfect.spec ~n trace);

  (* The three AFD properties of Section 3.2, tested on this trace. *)
  let rng = Random.State.make [| 1 |] in
  (match Afd.check_all_properties Ev_perfect.spec ~n ~rng ~trials:50 trace with
  | Ok () ->
    Format.printf
      "  closure under sampling and constrained reordering: ok (50 random transforms)@."
  | Error e -> Format.printf "  closure check failed: %s@." e);

  Format.printf "@.Next: examples/consensus_demo.exe, examples/hierarchy_demo.exe@."
