(* The AFD hierarchy, live: one P trace pushed down the reduction chain
   P -> EvP -> Omega -> anti-Omega, printing each detector's view of
   the same fault pattern (Sections 5.4 and 7.1).

     dune exec examples/hierarchy_demo.exe
*)

open Afd_ioa
open Afd_core

let print_stage name pp_out spec ~n t =
  Format.printf "@.--- %s ---@." name;
  List.iteri
    (fun k ev ->
      if k < 14 then
        match ev with
        | Fd_event.Crash i -> Format.printf "  ** crash at %a **@." Loc.pp i
        | Fd_event.Output (i, o) -> Format.printf "  at %a: %a@." Loc.pp i pp_out o)
    t;
  if List.length t > 14 then Format.printf "  ... (%d more events)@." (List.length t - 14);
  Format.printf "  verdict vs %s: %a@." name Verdict.pp (Afd.check spec ~n t)

let () =
  let n = 3 in
  (* Source of truth: a P trace where p1 crashes. *)
  let tp =
    Afd_automata.generate_trace ~detector:(Afd_automata.fd_perfect ~n) ~n ~seed:5
      ~crash_at:[ (8, 1) ] ~steps:36
  in
  print_stage "P (perfect)" Loc.pp_set Perfect.spec ~n tp;

  let tevp = Xform.apply_to_trace ~f:Reduction.p_to_evp.Reduction.f tp in
  print_stage "EvP (via P->EvP)" Loc.pp_set Ev_perfect.spec ~n tevp;

  let tomega = Xform.apply_to_trace ~f:(Reduction.evp_to_omega ~n).Reduction.f tevp in
  print_stage "Omega (via EvP->Omega)" Loc.pp Omega.spec ~n tomega;

  let tanti = Xform.apply_to_trace ~f:(Reduction.omega_to_anti_omega ~n).Reduction.f tomega in
  print_stage "anti-Omega (via Omega->anti-Omega)" Loc.pp Anti_omega.spec ~n tanti;

  (* And the strictness in the other direction: no local deterministic
     strategy extracts Omega back out of anti-Omega. *)
  Format.printf "@.--- upward refutation (Corollary 19) ---@.";
  let candidate i _hist = Some i in
  (match
     Reduction.refute ~candidate ~target:Omega.spec
       (Reduction.anti_omega_not_to_omega ~len:4)
   with
  | Ok why -> Format.printf "  'elect yourself' fails, as it must: %s@." why
  | Error e -> Format.printf "  unexpected: %s@." e);
  Format.printf
    "@.The chain only flows downward: each stage loses information about crashes.@."
