(* Explore the tree of executions R^{t_D} (Section 8) for 2-process
   flooding consensus, locate a hook (Section 9.6), and print it.

     dune exec examples/hook_explorer.exe
*)

open Afd_ioa
open Afd_core
open Afd_system
module T = Afd_tree

let pp_action fmt = function None -> Format.pp_print_string fmt "_|_" | Some a -> Act.pp fmt a

let () =
  let n = 2 and f = 1 in
  let td = T.Tree_system.td_one_crash ~n ~crash:1 ~pre:1 ~post:3 in
  Format.printf "t_D = %a@." (Fd_event.pp_trace Act.pp_fd_payload) td;

  let sys = T.Tree_system.flood_system ~n ~f in
  let tree =
    match
      T.Tagged_tree.build ~system:sys ~detector:Afd_consensus.Flood_p.detector_name ~td
        ~max_nodes:3_000_000
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  Format.printf "quotient graph: %d nodes, %d labels per node@."
    (Array.length tree.T.Tagged_tree.nodes)
    (List.length (T.Tagged_tree.labels tree));

  let va = T.Valence.classify tree in
  Format.printf "valence census: bivalent=%d, 0-valent=%d, 1-valent=%d (root: %a)@."
    (T.Valence.count va T.Valence.Bivalent)
    (T.Valence.count va (T.Valence.Univalent false))
    (T.Valence.count va (T.Valence.Univalent true))
    T.Valence.pp va.T.Valence.of_node.(0);

  let hooks = T.Hook.find_all va in
  Format.printf "hooks found: %d@." (List.length hooks);

  (match hooks with
  | [] -> Format.printf "no hooks - t_D too short?@."
  | h :: _ ->
    Format.printf "@.--- first hook (N, l, r) ---@.";
    Format.printf "  N  = node %d (bivalent)@." h.T.Hook.node;
    Format.printf "  l  = %a with action tag %a  -> %d-valent child@."
      T.Tagged_tree.pp_label h.T.Hook.l pp_action h.T.Hook.l_action
      (Bool.to_int h.T.Hook.v);
    Format.printf "  r  = %a with action tag %a@." T.Tagged_tree.pp_label h.T.Hook.r
      pp_action h.T.Hook.r_action;
    Format.printf "  l-child of r-child is %d-valent@." (Bool.to_int (not h.T.Hook.v));
    (match T.Hook.check_theorem59 va h with
    | Ok loc ->
      Format.printf
        "  critical location: %a - live in t_D, as Theorem 59 requires:@." Loc.pp loc;
      Format.printf
        "  the step that breaks bivalence happens at a live location.@."
    | Error e -> Format.printf "  THEOREM 59 VIOLATED: %s@." e));

  (* The bivalence horizon: even a fully adversarial scheduler runs out
     of bivalence-preserving moves - the AFD's information forces a
     decision (contrast with FLP's forever-bivalent adversary). *)
  let u = T.Flp.unconstrained va ~max_steps:5000 in
  Format.printf "@.adversary preserving bivalence survives %d steps before exhausting.@."
    u.T.Flp.survived
