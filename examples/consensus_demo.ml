(* Consensus with a crashing leader: the Synod protocol driven by the
   Omega AFD (Section 9: how a sufficiently strong AFD circumvents the
   FLP impossibility).

   p0 is the initial leader (Algorithm 1's Omega elects the smallest
   non-crashed location).  We crash it mid-protocol; Omega hands
   leadership to p1, which re-runs the ballot and drives everyone to a
   decision.

     dune exec examples/consensus_demo.exe
*)

open Afd_ioa
open Afd_core
open Afd_system
module C = Afd_consensus

let interesting = function
  | Act.Crash _ | Act.Propose _ | Act.Decide _ -> true
  | Act.Fd _ -> false (* continual; too chatty to print *)
  | Act.Send { msg = Msg.Prepare _; _ }
  | Act.Send { msg = Msg.Accept _; _ }
  | Act.Receive { msg = Msg.Accepted _; _ } -> true
  | Act.Send _ | Act.Receive _ | Act.Step _ | Act.Query _ | Act.Resp _ | Act.Decide_id _ -> false

let () =
  let n = 3 in
  let net = C.Synod_omega.net ~n ~crashable:(Loc.Set.singleton 0) () in
  let r = Net.run net ~seed:7 ~crash_at:[ (30, 0) ] ~steps:4000 in

  Format.printf "--- synod with Omega, n = %d, leader p0 crashes at step 30 ---@." n;
  List.iter
    (fun a -> if interesting a then Format.printf "  %a@." Act.pp a)
    r.Net.trace;

  Format.printf "@.--- outcome ---@.";
  Format.printf "  proposals: %a@."
    Fmt.(list ~sep:comma (pair ~sep:(any "=") Loc.pp bool))
    (Net.proposals r.Net.trace);
  Format.printf "  decisions: %a@."
    Fmt.(list ~sep:comma (pair ~sep:(any "=") Loc.pp bool))
    (Net.decisions r.Net.trace);
  Format.printf "  consensus spec: %a@." Verdict.pp (C.Spec.check ~n ~f:1 r.Net.trace);
  Format.printf "  Omega stream:   %a@." Verdict.pp
    (Afd.check Omega.spec ~n
       (Act.fd_trace_leader ~detector:C.Synod_omega.detector_name r.Net.trace))
