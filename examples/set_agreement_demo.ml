(* k-set agreement over the set-agreement-oriented detector Psi_k:
   four processes, k = 2, and the run genuinely splits into two camps -
   a decision pattern consensus could never produce.

     dune exec examples/set_agreement_demo.exe
*)

open Afd_ioa
open Afd_core
open Afd_system
module C = Afd_consensus

let () =
  let n = 4 and k = 2 in
  Format.printf "k-set agreement, n = %d, k = %d (values are location IDs)@." n k;
  Format.printf "detector: Psi_%d outputs the %d smallest live locations@.@." k k;

  let net = C.Kset.net ~n ~k ~crashable:Loc.Set.empty in
  let r = Net.run net ~seed:1 ~crash_at:[] ~steps:9000 in

  List.iter
    (fun (i, v) -> Format.printf "  %a decided the ID %a@." Loc.pp i Loc.pp v)
    (C.Kset.decisions r.Net.trace);
  let distinct =
    List.sort_uniq Loc.compare (List.map snd (C.Kset.decisions r.Net.trace))
  in
  Format.printf "@.distinct decided values: %d (bound k = %d)@."
    (List.length distinct) k;
  Format.printf "spec: %a@." Verdict.pp (C.Kset.check ~n ~k r.Net.trace);

  (* The embedded detector stream is a genuine Psi_k trace. *)
  Format.printf "Psi_%d stream: %a@." k Verdict.pp
    (Afd.check (Psi_k.spec ~k) ~n
       (Act.fd_trace_set ~detector:C.Kset.detector_name r.Net.trace));

  Format.printf
    "@.Each of the k parallel Synod instances is led by one slot of the Psi_%d@." k;
  Format.printf
    "set; the instances decide independently, so up to k values survive -@.";
  Format.printf "exactly the slack the set-agreement hierarchy (anti-Omega, Omega_k,@.";
  Format.printf "Psi_k) trades against detector strength.@."
