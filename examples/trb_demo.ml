(* Terminating reliable broadcast over P: the sender crashes halfway
   through its broadcast, and survivors split between delivering the
   value (those its messages reached, directly or by relay) and
   delivering SF - exactly the behaviour the weak-TRB spec permits.

     dune exec examples/trb_demo.exe
*)

open Afd_ioa
open Afd_core
open Afd_system
module C = Afd_consensus

let pp_delivery fmt = function
  | C.Trb.Value v -> Format.fprintf fmt "value %b" v
  | C.Trb.Sender_faulty -> Format.pp_print_string fmt "SF (sender faulty)"

let run label ~crash_at =
  let n = 4 in
  let crashable =
    List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at
  in
  let net = C.Trb.net ~n ~sender:0 ~value:true ~crashable in
  let r = Net.run net ~seed:11 ~crash_at ~steps:2500 in
  Format.printf "@.--- %s ---@." label;
  List.iter
    (fun (i, d) -> Format.printf "  %a delivered %a@." Loc.pp i pp_delivery d)
    (C.Trb.deliveries r.Net.trace);
  Format.printf "  spec: %a@." Verdict.pp (C.Trb.check ~n ~sender:0 r.Net.trace)

let () =
  Format.printf "Terminating reliable broadcast, n = 4, sender p0, value = true@.";
  run "sender lives" ~crash_at:[];
  run "sender crashes before sending anything" ~crash_at:[ (0, 0) ];
  run "sender crashes mid-broadcast" ~crash_at:[ (7, 0) ];
  Format.printf
    "@.TRB is a bounded problem (at most n deliveries), so by Theorem 21 it has@.";
  Format.printf "no representative AFD - yet P suffices to solve it, as above.@."
