(* A failure detector you could actually deploy: adaptive heartbeats.

   The same detector automaton is run under three scheduling regimes,
   showing precisely when the eventually-perfect specification holds:

     fair scheduling (partial synchrony)  -> EvP satisfied
     one channel starved forever          -> stuck suspecting a live peer
     one channel delayed in long bursts   -> transient false suspicions,
                                             then the timeout adapts

     dune exec examples/realistic_fd_demo.exe
*)

open Afd_ioa
open Afd_core
open Afd_system

let n = 3

let fd_stream run = Act.fd_trace_set ~detector:Heartbeat.detector_name run

let describe label t =
  let false_suspicions =
    List.length
      (List.filter (function Fd_event.Output (0, s) -> Loc.Set.mem 1 s | _ -> false) t)
  in
  Format.printf "@.--- %s ---@." label;
  Format.printf "  outputs: %d;  p0 outputs suspecting (live) p1: %d@."
    (List.length t) false_suspicions;
  (match Fd_event.last_output_at 0 t with
  | Some s -> Format.printf "  p0's final suspicion set: %a@." Loc.pp_set s
  | None -> Format.printf "  p0 silent@.");
  Format.printf "  vs T_EvP: %a@." Verdict.pp (Afd.check Ev_perfect.spec ~n t)

let () =
  Format.printf "Adaptive-heartbeat detector, n = %d (initial timeout 2 ticks)@." n;

  let net = Heartbeat.net ~n ~initial_timeout:2 ~crashable:(Loc.Set.singleton 2) () in
  let fair = Net.run net ~seed:5 ~crash_at:[ (60, 2) ] ~steps:1400 in
  describe "fair scheduling; p2 crashes at step 60" (fd_stream fair.Net.trace);

  let net = Heartbeat.net ~n ~initial_timeout:2 ~crashable:Loc.Set.empty () in
  let starved =
    Scheduler.run_custom net.Net.composition ~max_steps:1500
      ~choose:(Adversary.starve_channel ~seed:9 ~src:1 ~dst:0)
  in
  describe "adversary starves channel p1 -> p0 forever"
    (fd_stream (Execution.schedule starved.Scheduler.execution));

  let delayed =
    Scheduler.run_custom net.Net.composition ~max_steps:4000
      ~choose:(Adversary.delay_channel ~seed:9 ~src:1 ~dst:0 ~period:97)
  in
  describe "adversary delays channel p1 -> p0 in long bursts"
    (fd_stream (Execution.schedule delayed.Scheduler.execution));

  Format.printf
    "@.Moral: the heartbeat automaton implements EvP exactly on the schedules@.";
  Format.printf
    "that are partially synchronous - the substitutability the paper discusses@.";
  Format.printf "in Section 1.1 (failure detectors vs partial synchrony).@."
