(* Algorithm 3 in action: A^self buffers Omega's outputs through a FIFO
   queue and re-emits them as a renamed detector Omega'.  Theorem 13:
   the renamed stream is again a trace of (the renaming of) Omega.

     dune exec examples/self_impl_demo.exe
*)

open Afd_ioa
open Afd_core

let () =
  let n = 3 in
  let r =
    Self_impl.run ~detector:(Afd_automata.fd_omega ~n) ~n ~seed:13
      ~crash_at:[ (10, 2) ] ~steps:120
  in

  Format.printf "--- combined run (D events and renamed D' events interleaved) ---@.";
  List.iteri
    (fun k act ->
      if k < 24 then Format.printf "  %a@." (Self_impl.pp_act Loc.pp) act)
    r.Self_impl.combined;
  Format.printf "  ... (%d more events)@." (max 0 (List.length r.Self_impl.combined - 24));

  Format.printf "@.--- the two projections of Theorem 13 ---@.";
  Format.printf "  t|(crash + O_D)  has %d events: %a@."
    (List.length r.Self_impl.original)
    Verdict.pp (Afd.check Omega.spec ~n r.Self_impl.original);
  Format.printf "  t|(crash + O_D') has %d events: %a@."
    (List.length r.Self_impl.renamed)
    Verdict.pp (Afd.check Omega.spec ~n r.Self_impl.renamed);

  (* The queue can only delay: per location, the renamed stream is a
     prefix of the original one. *)
  Format.printf "@.--- per-location lag (FIFO buffering) ---@.";
  List.iter
    (fun i ->
      let o = List.length (Fd_event.outputs_at i r.Self_impl.original) in
      let m = List.length (Fd_event.outputs_at i r.Self_impl.renamed) in
      Format.printf "  %a: %d original outputs, %d re-emitted (lag %d)@." Loc.pp i o m (o - m))
    (Loc.universe ~n);
  Format.printf
    "@.Contrast with the classical framework, where self-implementability can fail [6].@."
