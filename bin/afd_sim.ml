(* afd_sim: command-line driver for the asynchronous-failure-detector
   simulator.

   Subcommands:
     detector   run a detector automaton under a fault pattern, print
                and check its trace
     consensus  run a consensus algorithm (flood | synod | via-evp)
     selfimpl   run Algorithm 3 (self-implementation) over a detector
     tree       build the tagged execution tree, report valence/hooks
     sweep      run a detector under many derived seeds on a Domain
                pool (the Afd_runner engine) and tally verdicts
     check      run the catalog's online property monitors against the
                offline trace checks (differential verdict table)
     churn      run the discrete-event mega engine: up to ~10^6
                processes under a seeded churn adversary

   Examples:
     afd_sim detector --fd omega -n 4 --crash 10:1 --crash 30:3
     afd_sim consensus --algo synod -n 5 --crash 40:0 --seed 3
     afd_sim tree -n 2 --crash-loc 1
     afd_sim sweep --fd evp --seeds 16 --jobs 4 --crash 15:2
*)

open Cmdliner
open Afd_ioa
open Afd_core
open Afd_system
module C = Afd_consensus
module T = Afd_tree
module R = Afd_runner

(* --- shared argument parsing --- *)

let n_arg =
  Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Number of locations.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Scheduler random seed.")

let steps_arg =
  Arg.(value & opt int 2000 & info [ "steps" ] ~docv:"K" ~doc:"Scheduler step budget.")

let crash_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ step; loc ] -> (
      match (int_of_string_opt step, int_of_string_opt loc) with
      | Some k, Some i -> Ok (k, i)
      | _ -> Error (`Msg "expected STEP:LOC"))
    | _ -> Error (`Msg "expected STEP:LOC")
  in
  let print fmt (k, i) = Format.fprintf fmt "%d:%d" k i in
  Arg.conv (parse, print)

let crash_arg =
  Arg.(
    value
    & opt_all crash_conv []
    & info [ "crash" ] ~docv:"STEP:LOC" ~doc:"Crash location $(i,LOC) at step $(i,STEP); repeatable.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the full event trace.")

let retention_conv =
  let parse s =
    match s with
    | "full" -> Ok Scheduler.Full
    | "trace" -> Ok Scheduler.Trace_only
    | _ -> (
      match String.split_on_char ':' s with
      | [ "window"; w ] -> (
        match int_of_string_opt w with
        | Some w -> Ok (Scheduler.Window w)
        | None -> Error (`Msg "expected full | trace | window:N"))
      | _ -> Error (`Msg "expected full | trace | window:N"))
  in
  let print fmt = function
    | Scheduler.Full -> Format.fprintf fmt "full"
    | Scheduler.Trace_only -> Format.fprintf fmt "trace"
    | Scheduler.Window w -> Format.fprintf fmt "window:%d" w
  in
  Arg.conv (parse, print)

let retention_arg =
  Arg.(
    value
    & opt retention_conv Scheduler.Trace_only
    & info [ "retention" ] ~docv:"POLICY"
        ~doc:
          "Execution retention: $(b,trace) (default; keep only the fired trace, O(1) \
           memory per step), $(b,full) (keep every intermediate state), or \
           $(b,window:N) (keep the last N steps in O(N) memory).  Verdicts are \
           identical under every policy.")

let crashable_of crash_at =
  List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at

let print_verdict what v = Format.printf "%-24s %a@." what Verdict.pp v

(* --- detector subcommand --- *)

type which_fd = Omega_fd | P_fd | Evp_noisy_fd

let fd_conv =
  Arg.enum [ ("omega", Omega_fd); ("p", P_fd); ("evp", Evp_noisy_fd) ]

let detector_cmd =
  let fd_arg =
    Arg.(value & opt fd_conv P_fd & info [ "fd" ] ~docv:"FD" ~doc:"Detector: omega, p, or evp.")
  in
  let run which n seed steps crash_at retention verbose =
    let check_and_print pp spec trace =
      if verbose then
        List.iter (fun e -> Format.printf "  %a@." (Fd_event.pp pp) e) trace;
      Format.printf "events: %d  faulty: %a@." (List.length trace) Loc.pp_set
        (Fd_event.faulty trace);
      print_verdict "spec membership:" (Afd.check spec ~n trace);
      let rng = Random.State.make [| seed |] in
      match Afd.check_all_properties spec ~n ~rng ~trials:50 trace with
      | Ok () -> Format.printf "%-24s ok (50 transforms)@." "closure properties:"
      | Error e -> Format.printf "%-24s %s@." "closure properties:" e
    in
    (match which with
    | Omega_fd ->
      let t =
        Afd_automata.generate_trace_with ~retention
          ~detector:(Afd_automata.fd_omega ~n) ~n ~seed ~crash_at ~steps
      in
      check_and_print Loc.pp Omega.spec t
    | P_fd ->
      let t =
        Afd_automata.generate_trace_with ~retention
          ~detector:(Afd_automata.fd_perfect ~n) ~n ~seed ~crash_at ~steps
      in
      check_and_print Loc.pp_set Perfect.spec t
    | Evp_noisy_fd ->
      let noise =
        Afd_automata.noise_of_list
          (List.map (fun i -> (i, Loc.Set.singleton ((i + 1) mod n))) (Loc.universe ~n))
      in
      let t =
        Afd_automata.generate_trace_with ~retention
          ~detector:(Afd_automata.fd_ev_perfect_noisy ~n ~noise) ~n ~seed ~crash_at
          ~steps
      in
      check_and_print Loc.pp_set Ev_perfect.spec t);
    0
  in
  let term =
    Term.(
      const run $ fd_arg $ n_arg $ seed_arg $ steps_arg $ crash_arg $ retention_arg
      $ verbose_arg)
  in
  Cmd.v (Cmd.info "detector" ~doc:"Run a failure-detector automaton and check its trace.") term

(* --- consensus subcommand --- *)

type which_algo = Flood | Synod | Via_evp | Sigma_omega

let algo_conv =
  Arg.enum
    [ ("flood", Flood); ("synod", Synod); ("via-evp", Via_evp);
      ("sigma-omega", Sigma_omega) ]

let consensus_cmd =
  let algo_arg =
    Arg.(
      value & opt algo_conv Synod
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:"Algorithm: flood (uses P), synod (uses Omega), via-evp (EvP->Omega->synod), sigma-omega (dynamic quorums, f <= n-1).")
  in
  let f_arg =
    Arg.(value & opt (some int) None & info [ "f" ] ~docv:"F" ~doc:"Crash tolerance (default: algorithm-specific).")
  in
  let run algo n f seed steps crash_at retention verbose =
    let crashable = crashable_of crash_at in
    let f =
      match (f, algo) with
      | Some f, _ -> f
      | None, (Flood | Sigma_omega) -> n - 1
      | None, (Synod | Via_evp) -> (n - 1) / 2
    in
    let net =
      match algo with
      | Flood -> C.Flood_p.net ~n ~f ~crashable ()
      | Synod -> C.Synod_omega.net ~n ~crashable ()
      | Via_evp -> C.Via_reduction.net ~n ~crashable ()
      | Sigma_omega -> C.Synod_sigma.net ~n ~crashable ()
    in
    let r = Net.run ~retention net ~seed ~crash_at ~steps in
    if verbose then
      List.iter
        (fun a ->
          match a with
          | Act.Fd _ -> ()
          | _ -> Format.printf "  %a@." Act.pp a)
        r.Net.trace;
    Format.printf "events: %d@." (List.length r.Net.trace);
    Format.printf "proposals: %a@."
      Fmt.(list ~sep:comma (pair ~sep:(any "=") Loc.pp bool))
      (Net.proposals r.Net.trace);
    Format.printf "decisions: %a@."
      Fmt.(list ~sep:comma (pair ~sep:(any "=") Loc.pp bool))
      (Net.decisions r.Net.trace);
    print_verdict "consensus spec:" (C.Spec.check ~n ~f r.Net.trace);
    (match C.Spec.check ~n ~f r.Net.trace with Verdict.Violated _ -> 1 | _ -> 0)
  in
  let term =
    Term.(
      const run $ algo_arg $ n_arg $ f_arg $ seed_arg $ steps_arg $ crash_arg
      $ retention_arg $ verbose_arg)
  in
  Cmd.v (Cmd.info "consensus" ~doc:"Run a consensus algorithm over an AFD.") term

(* --- selfimpl subcommand --- *)

let selfimpl_cmd =
  let fd_arg =
    Arg.(value & opt fd_conv Omega_fd & info [ "fd" ] ~docv:"FD" ~doc:"Detector to self-implement.")
  in
  let run which n seed steps crash_at retention =
    let report name r =
      match r with
      | Ok () -> Format.printf "theorem 13 holds for %s@." name; 0
      | Error e -> Format.printf "FAILED: %s@." e; 1
    in
    (match which with
    | Omega_fd ->
      report "Omega"
        (Self_impl.check_theorem13_with ~retention ~spec:Omega.spec
           ~detector:(Afd_automata.fd_omega ~n) ~n ~seed ~crash_at ~steps)
    | P_fd ->
      report "P"
        (Self_impl.check_theorem13_with ~retention ~spec:Perfect.spec
           ~detector:(Afd_automata.fd_perfect ~n) ~n ~seed ~crash_at ~steps)
    | Evp_noisy_fd ->
      let noise = Afd_automata.noise_of_list [ (0, Loc.Set.singleton 1) ] in
      report "EvP"
        (Self_impl.check_theorem13_with ~retention ~spec:Ev_perfect.spec
           ~detector:(Afd_automata.fd_ev_perfect_noisy ~n ~noise) ~n ~seed ~crash_at
           ~steps))
  in
  let term =
    Term.(const run $ fd_arg $ n_arg $ seed_arg $ steps_arg $ crash_arg $ retention_arg)
  in
  Cmd.v (Cmd.info "selfimpl" ~doc:"Run Algorithm 3 and verify Theorem 13.") term

(* --- tree subcommand --- *)

let tree_cmd =
  let crash_loc_arg =
    Arg.(
      value & opt (some int) None
      & info [ "crash-loc" ] ~docv:"LOC" ~doc:"Location crashed in t_D (omit for crash-free).")
  in
  let max_nodes_arg =
    Arg.(value & opt int 3_000_000 & info [ "max-nodes" ] ~docv:"B" ~doc:"Quotient-node budget.")
  in
  let run n crash_loc max_nodes =
    let f = 1 in
    let td =
      match crash_loc with
      | Some c -> T.Tree_system.td_one_crash ~n ~crash:c ~pre:1 ~post:3
      | None -> T.Tree_system.td_no_crash ~n ~rounds:3
    in
    Format.printf "t_D = %a@." (Fd_event.pp_trace Act.pp_fd_payload) td;
    match
      T.Tagged_tree.build
        ~system:(T.Tree_system.flood_system ~n ~f)
        ~detector:C.Flood_p.detector_name ~td ~max_nodes
    with
    | Error e -> Format.printf "build failed: %s@." e; 1
    | Ok tree ->
      let va = T.Valence.classify tree in
      let hooks = T.Hook.find_all va in
      let bad = List.filter (fun h -> Result.is_error (T.Hook.check_theorem59 va h)) hooks in
      Format.printf "nodes=%d root-bivalent=%b bivalent=%d blocked=%d@."
        (Array.length tree.T.Tagged_tree.nodes)
        (T.Valence.root_bivalent va)
        (T.Valence.count va T.Valence.Bivalent)
        (T.Valence.count va T.Valence.Blocked);
      Format.printf "hooks=%d theorem-59 failures=%d critical locations=%a@."
        (List.length hooks) (List.length bad)
        Fmt.(list ~sep:comma Loc.pp)
        (List.filter_map T.Hook.critical_location hooks |> List.sort_uniq Loc.compare);
      if bad = [] then 0 else 1
  in
  let term = Term.(const run $ n_arg $ crash_loc_arg $ max_nodes_arg) in
  Cmd.v (Cmd.info "tree" ~doc:"Build the tagged execution tree; verify Theorem 59.") term

(* --- kset subcommand --- *)

let kset_cmd =
  let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"Set-agreement parameter.") in
  let run n k seed steps crash_at =
    let crashable = crashable_of crash_at in
    let net = C.Kset.net ~n ~k ~crashable in
    let r = Net.run net ~seed ~crash_at ~steps in
    Format.printf "decisions: %a@."
      Fmt.(list ~sep:comma (pair ~sep:(any "->") Loc.pp Loc.pp))
      (C.Kset.decisions r.Net.trace);
    let distinct =
      List.length (List.sort_uniq Loc.compare (List.map snd (C.Kset.decisions r.Net.trace)))
    in
    Format.printf "distinct values: %d (k = %d)@." distinct k;
    print_verdict "k-set spec:" (C.Kset.check ~n ~k r.Net.trace);
    (match C.Kset.check ~n ~k r.Net.trace with Verdict.Violated _ -> 1 | _ -> 0)
  in
  let term = Term.(const run $ n_arg $ k_arg $ seed_arg $ steps_arg $ crash_arg) in
  Cmd.v (Cmd.info "kset" ~doc:"Run k-set agreement over Psi_k.") term

(* --- sweep subcommand --- *)

let sweep_cmd =
  let fd_arg =
    Arg.(value & opt fd_conv P_fd & info [ "fd" ] ~docv:"FD" ~doc:"Detector: omega, p, or evp.")
  in
  let seeds_arg =
    Arg.(value & opt int 8 & info [ "seeds" ] ~docv:"N" ~doc:"Seeded runs per fault pattern.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "jobs" ] ~docv:"J" ~doc:"Domains to run on (default: all cores).")
  in
  let root_arg =
    Arg.(
      value & opt int 1
      & info [ "root-seed" ] ~docv:"SEED" ~doc:"Root of the per-cell seed derivation.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Also write the BENCH.json report to $(i,PATH).")
  in
  let run which n steps crash_at seeds jobs root json =
    let mk name detector spec =
      R.Matrix.entry
        ~id:("sweep." ^ name)
        ~section:"seed sweep"
        ~label:(Printf.sprintf "%s n=%d steps=%d" name n steps)
        ~seeds ~faults:[ crash_at ]
        (fun ~seed ~faults ->
          let t =
            Afd_automata.generate_trace ~detector:(detector ()) ~n ~seed
              ~crash_at:faults ~steps
          in
          R.Metrics.outcome ~steps:(List.length t) (Afd.check spec ~n t))
    in
    let entry =
      match which with
      | Omega_fd -> mk "omega" (fun () -> Afd_automata.fd_omega ~n) Omega.spec
      | P_fd -> mk "p" (fun () -> Afd_automata.fd_perfect ~n) Perfect.spec
      | Evp_noisy_fd ->
        let noise () =
          Afd_automata.noise_of_list
            (List.map (fun i -> (i, Loc.Set.singleton ((i + 1) mod n))) (Loc.universe ~n))
        in
        mk "evp"
          (fun () -> Afd_automata.fd_ev_perfect_noisy ~n ~noise:(noise ()))
          Ev_perfect.spec
    in
    let jobs = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
    let r =
      R.Engine.run { R.Engine.jobs; root_seed = root; seeds_override = None } [ entry ]
    in
    Format.printf "%a@." R.Engine.pp r;
    (match json with Some path -> R.Report.write ~path r | None -> ());
    if List.exists (fun e -> (R.Metrics.exp_counts e).R.Metrics.violated > 0) r.R.Engine.exps
    then 1
    else 0
  in
  let term =
    Term.(
      const run $ fd_arg $ n_arg $ steps_arg $ crash_arg $ seeds_arg $ jobs_arg $ root_arg
      $ json_arg)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run a detector over many derived seeds in parallel and tally verdicts.")
    term

(* --- check subcommand --- *)

let check_cmd =
  let seeds_arg =
    Arg.(value & opt int 3 & info [ "seeds" ] ~docv:"N" ~doc:"Seeded runs per subject.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "jobs" ] ~docv:"J" ~doc:"Domains to run on (default: all cores).")
  in
  let root_arg =
    Arg.(
      value & opt int 1
      & info [ "root-seed" ] ~docv:"SEED" ~doc:"Root of the per-cell seed derivation.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Also write the BENCH.json report (with per-clause verdicts and counterexample indices) to $(i,PATH).")
  in
  let window_arg =
    Arg.(
      value & opt int 16
      & info [ "window" ] ~docv:"W" ~doc:"Counterexample witness-window size (events of context kept around a violation).")
  in
  let check_retention_arg =
    Arg.(
      value
      & opt retention_conv (Scheduler.Window 64)
      & info [ "retention" ] ~docv:"POLICY"
          ~doc:
            "Scheduler retention for the monitored runs (default $(b,window:64)): the \
             monitors stream events, so nothing forces full retention.  Verdicts are \
             identical under every policy.")
  in
  let smoke_arg =
    Arg.(value & flag & info [ "smoke" ] ~doc:"One seed per subject, sequential — the fast path wired into dune runtest.")
  in
  let mc_arg =
    Arg.(
      value & flag
      & info [ "mc" ]
          ~doc:
            "Model-check the catalog exhaustively instead of sampling seeded \
             schedules: each detector is composed with the crash automaton and \
             its spec's safety + liveness clauses are proved or refuted over \
             every reachable product state ($(b,--jobs) domains explore via \
             Pspace; the table is identical at any job count).")
  in
  let max_states_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-states" ] ~docv:"N"
          ~doc:"State budget per product exploration (with $(b,--mc)).")
  in
  let compiled_arg =
    Arg.(
      value & flag
      & info [ "compiled" ]
          ~doc:
            "With $(b,--mc), explore each product on the compiled explorer \
             (Cspace: packed states, defunctionalized step tables).  The \
             table and JSON are byte-identical to the boxed explorers.")
  in
  let run seeds jobs root json window retention smoke mc max_states compiled =
    if mc then begin
      let jobs = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
      let results = Afd_bench.Check.mc_all ?max_states ~jobs ~compiled () in
      Format.printf "MC  exhaustive safety + liveness check (%d domains)@." jobs;
      List.iter
        (fun r ->
          let open Afd_bench.Check in
          let status =
            if not r.mc_ok then "FAIL"
            else if r.mc_expect_violated then "violated (expected)"
            else "proved"
          in
          Format.printf "  %-14s %-40s %-14s %5d states %6d transitions  %s@."
            r.mc_id r.mc_label r.mc_verdict r.mc_states r.mc_transitions status)
        results;
      (match json with
      | Some path ->
        let oc = open_out path in
        output_string oc
          ("[" ^ String.concat ","
                   (List.map (fun r -> r.Afd_bench.Check.mc_json) results)
           ^ "]\n");
        close_out oc
      | None -> ());
      if List.exists (fun r -> not r.Afd_bench.Check.mc_ok) results then 1 else 0
    end
    else begin
      let seeds = if smoke then 1 else seeds in
      let jobs =
        if smoke then 1
        else if jobs <= 0 then Domain.recommended_domain_count ()
        else jobs
      in
      let entries = Afd_bench.Check.matrix ~window ~seeds ~retention () in
      let r =
        R.Engine.run { R.Engine.jobs; root_seed = root; seeds_override = None } entries
      in
      Format.printf "%a@." R.Engine.pp r;
      (match json with Some path -> R.Report.write ~path r | None -> ());
      if
        List.exists
          (fun e -> (R.Metrics.exp_counts e).R.Metrics.violated > 0)
          r.R.Engine.exps
      then 1
      else 0
    end
  in
  let term =
    Term.(
      const run $ seeds_arg $ jobs_arg $ root_arg $ json_arg $ window_arg
      $ check_retention_arg $ smoke_arg $ mc_arg $ max_states_arg
      $ compiled_arg)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the detector catalog's online property monitors against the offline \
          trace checks and report the differential verdict table (exit 1 on any \
          mismatch or unmet expectation).")
    term

(* --- trb subcommand --- *)

let trb_cmd =
  let sender_arg =
    Arg.(value & opt int 0 & info [ "sender" ] ~docv:"LOC" ~doc:"Broadcast sender.")
  in
  let value_arg =
    Arg.(value & opt bool true & info [ "value" ] ~docv:"BOOL" ~doc:"Broadcast value.")
  in
  let run n sender value seed steps crash_at =
    let crashable = crashable_of crash_at in
    let net = C.Trb.net ~n ~sender ~value ~crashable in
    let r = Net.run net ~seed ~crash_at ~steps in
    List.iter
      (fun (i, d) ->
        Format.printf "  %a delivered %s@." Loc.pp i
          (match d with C.Trb.Value v -> string_of_bool v | C.Trb.Sender_faulty -> "SF"))
      (C.Trb.deliveries r.Net.trace);
    print_verdict "TRB spec:" (C.Trb.check ~n ~sender r.Net.trace);
    (match C.Trb.check ~n ~sender r.Net.trace with Verdict.Violated _ -> 1 | _ -> 0)
  in
  let term = Term.(const run $ n_arg $ sender_arg $ value_arg $ seed_arg $ steps_arg $ crash_arg) in
  Cmd.v (Cmd.info "trb" ~doc:"Run terminating reliable broadcast over P.") term

(* --- churn subcommand --- *)

let churn_cmd =
  let module M = Afd_mega in
  let procs_arg =
    Arg.(
      value & opt int 10_000
      & info [ "procs" ] ~docv:"N" ~doc:"Initial universe size (up to ~10^6).")
  in
  let events_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "events" ] ~docv:"E" ~doc:"Event budget: stop after this many calendar pops.")
  in
  let churn_rate_arg =
    Arg.(
      value & opt float 5.0
      & info [ "churn-rate" ] ~docv:"R"
          ~doc:
            "Churn actions (crash, recover, join, leave, link failure, partition) per \
             1000 processed events; 0 disables the adversary.")
  in
  let topology_conv =
    let parse s = Result.map_error (fun e -> `Msg e) (M.Topology.of_string s) in
    let print fmt t = Format.pp_print_string fmt (M.Topology.to_string t) in
    Arg.conv (parse, print)
  in
  let topology_arg =
    Arg.(
      value & opt topology_conv (M.Topology.Ring 2)
      & info [ "topology" ] ~docv:"T" ~doc:"Connection topology: full, ring, grid or hypercube.")
  in
  let detector_arg =
    Arg.(
      value
      & opt (enum (List.map (fun n -> (n, n)) M.Catalog.names)) "vcube"
      & info [ "detector" ] ~docv:"D"
          ~doc:
            (Printf.sprintf "Scalable detector to run: %s."
               (String.concat " or " M.Catalog.names)))
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Also write a BENCH.json report with the CN row to $(i,PATH).")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Fixed smoke matrix — 10^4 processes, 10^5 events, both catalog detectors — \
             the fast path wired into dune runtest and CI; exits nonzero on any failure.")
  in
  let report_row ~seed cfg =
    let r = M.Engine.run cfg in
    Format.printf "%a@." M.Engine.pp_report r;
    let ok = M.Engine.ok r in
    if not ok then
      Format.printf "  GATE FAILED: %s@."
        (match r.M.Engine.monitor_verdict with
        | Verdict.Violated e -> "monitor violated: " ^ e
        | _ -> "faults injected but none detected");
    ignore seed;
    (r, ok)
  in
  let run procs events churn_rate topology detector seed json smoke =
    if smoke then begin
      let ok =
        List.for_all
          (fun (det, topo) ->
            let cfg =
              M.Engine.cfg ~procs:10_000 ~events:100_000 ~churn_rate:5.0 ~topology:topo
                ~detector:det ~seed ()
            in
            Format.printf "-- smoke: %s on %s --@." det (M.Topology.to_string topo);
            snd (report_row ~seed cfg))
          [ ("hb-pc", M.Topology.Ring 2); ("vcube", M.Topology.Hypercube) ]
      in
      if ok then 0 else 1
    end
    else begin
      let cfg = M.Engine.cfg ~procs ~events ~churn_rate ~topology ~detector ~seed () in
      let r, ok = report_row ~seed cfg in
      (match json with
      | Some path ->
        (* one CN row through the runner so the JSON shape matches the
           bench harness reports *)
        let entry =
          R.Matrix.entry ~id:"CN.cli" ~section:"CN  Churn simulation (afd_sim churn)"
            ~label:
              (Printf.sprintf "CN %s/%s procs=%d churn=%g" detector
                 (M.Topology.to_string topology) procs churn_rate)
            ~show:(R.Matrix.show_detail ~label:"CN churn run")
            (fun ~seed:_ ~faults:_ ->
              R.Metrics.outcome ~steps:r.M.Engine.processed ~quiescent:false
                ~detail:(M.Engine.deterministic_summary r)
                ~clauses:r.M.Engine.monitor_clauses
                (if ok then Verdict.Sat
                 else
                   match r.M.Engine.monitor_verdict with
                   | Verdict.Violated _ as v -> v
                   | _ -> Verdict.Violated "faults injected but none detected"))
        in
        let rep =
          R.Engine.run { R.Engine.jobs = 1; root_seed = seed; seeds_override = None } [ entry ]
        in
        R.Report.write ~path rep
      | None -> ());
      if ok then 0 else 1
    end
  in
  let term =
    Term.(
      const run $ procs_arg $ events_arg $ churn_rate_arg $ topology_arg $ detector_arg
      $ seed_arg $ json_arg $ smoke_arg)
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Run the discrete-event mega engine: a universe of up to ~10^6 processes under \
          a seeded churn adversary, with a scalable detector and a sampled online \
          property monitor.  Prints throughput, detection-latency and false-suspicion \
          percentiles; exits nonzero if the monitor latched a violation or injected \
          faults went undetected.")
    term

let () =
  let doc = "Asynchronous failure detectors: simulator and experiment driver." in
  let info = Cmd.info "afd_sim" ~version:"1.0.0" ~doc in
  (* no subcommand (or --help) prints the full manual enumerating every
     subcommand, rather than a bare usage error *)
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [ detector_cmd; consensus_cmd; selfimpl_cmd; tree_cmd; kset_cmd; trb_cmd;
            sweep_cmd; check_cmd; churn_cmd ]))
