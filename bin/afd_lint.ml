(* afd_lint: run the static well-formedness analysis over the full
   automaton catalog (see lib/analysis).  Exits nonzero when any
   error-severity finding survives; `dune runtest` runs this binary, so
   a malformed automaton fails tier-1.

   With --mc the graph rules (Rules.mc) join the run and every bench
   CHK subject is model-checked exhaustively: detector composed with
   the crash automaton, safety clauses verified on every reachable
   state and Stable (liveness) clauses proved by fair-cycle search
   over the product graph, or refuted with a replay-confirmed lasso
   (Afd_analysis.Mc).  The exit gate then also demands that all
   truthful subjects are proved — safety AND liveness — and every
   deliberately broken one yields a confirmed counterexample or lasso.

   With --symmetry the equivariance analyzer (Afd_analysis.Symm) runs
   over every subject: certified subjects explore orbit representatives
   instead of states, breaking subjects get a named witness (the
   symmetry rules report both), and with --mc each CHK subject is
   additionally re-verified under its declared quotient — the "mc"
   results and JSON stay byte-identical to a non-symmetry run, the
   quotiented runs land in their own SY table / "symmetry" JSON array,
   and certified subjects climb the parametric cutoff ladder.

   Exit codes (Report.exit_code): 0 clean; 1 on error findings, a
   failed MC/SY gate, or warnings under --strict; 2 when --strict and
   some exploration (lint or MC) was truncated at its state budget — a
   "proved" verdict computed under a budget is about a sample, and CI
   must not mistake it for an exhaustive one.  (Usage errors — unknown
   rule or fixture ids — also exit 2, before any report exists.) *)

let usage =
  "afd_lint [--json] [--strict] [--rule ID]... [--fixture ID] [--list-rules] \
   [--catalog] [--mc] [--symmetry] [--max-states N] [--por on|off] [--jobs N] \
   [--compiled] [--profile]"

let () =
  let json = ref false in
  let strict = ref false in
  let list_rules = ref false in
  let list_catalog = ref false in
  let selected = ref [] in
  let fixture = ref None in
  let mc = ref false in
  let symmetry = ref false in
  let max_states = ref None in
  let por = ref false in
  let jobs = ref 1 in
  let compiled = ref false in
  let profile = ref false in
  let spec =
    [ ("--json", Arg.Set json, "emit the report as JSON on stdout");
      ( "--strict",
        Arg.Set strict,
        "exit nonzero on warnings and on truncated explorations as well as \
         errors" );
      ( "--rule",
        Arg.String (fun id -> selected := id :: !selected),
        "ID run only the named rule (repeatable)" );
      ( "--fixture",
        Arg.String (fun id -> fixture := Some id),
        "ID lint the named malformed fixture instead of the catalog \
         (demonstrates a nonzero exit; IDs are rule ids)" );
      ("--list-rules", Arg.Set list_rules, "print the rule set and exit");
      ("--catalog", Arg.Set list_catalog, "print the registered subjects and exit");
      ( "--mc",
        Arg.Set mc,
        "also run the graph rules and exhaustively model-check the bench \
         subjects' safety clauses" );
      ( "--symmetry",
        Arg.Set symmetry,
        "run the equivariance analyzer on every subject (certified subjects \
         explore orbit representatives; breaking ones get a named witness); \
         with --mc, also re-verify each CHK subject under its declared \
         quotient and climb the parametric cutoff ladder" );
      ( "--max-states",
        Arg.Int (fun n -> max_states := Some n),
        "N override every exploration's state budget" );
      ( "--por",
        Arg.String
          (function
            | "on" -> por := true
            | "off" -> por := false
            | s -> raise (Arg.Bad ("--por expects on|off, got " ^ s))),
        "on|off sleep-set partial-order reduction for the explorations \
         (default off: shortest counterexamples)" );
      ( "--jobs",
        Arg.Int
          (fun n ->
            if n < 1 then raise (Arg.Bad "--jobs expects a positive count");
            jobs := n),
        "N explore on N domains (Pspace; default 1 — findings, verdicts and \
         JSON are identical at any N)" );
      ( "--compiled",
        Arg.Set compiled,
        "explore on the compiled explorer (Cspace: packed states, \
         defunctionalized step tables) — findings, verdicts and JSON are \
         identical to the boxed explorers" );
      ( "--profile",
        Arg.Set profile,
        "with --mc, report per-phase wall-clock timings (explore / clause \
         eval / lasso, plus explorer sub-phases) on stderr and in the JSON \
         outcome" );
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let open Afd_analysis in
  let rule_universe =
    Rules.all @ Rules.mc @ (if !symmetry then Rules.symmetry else [])
  in
  if !list_rules then begin
    List.iter
      (fun r ->
        Fmt.pr "%-24s %-7s §%-8s %s@." r.Rule.id
          (Fmt.str "%a" Report.pp_severity r.Rule.severity)
          r.Rule.paper r.Rule.doc)
      rule_universe;
    exit 0
  end;
  let items =
    match !fixture with
    | None -> Catalog.items ()
    | Some id -> (
      match Fixtures.find id with
      | Some entry -> [ { Registry.origin = "fixture"; entry } ]
      | None ->
        Fmt.epr "afd_lint: unknown fixture %s (fixture ids are rule ids)@." id;
        exit 2)
  in
  if !list_catalog then begin
    List.iter
      (fun { Registry.origin; entry } ->
        Fmt.pr "%-10s %s@." origin (Registry.entry_name entry))
      items;
    exit 0
  end;
  let rules =
    match !selected with
    | [] ->
      if !mc then rule_universe
      else Rules.all @ (if !symmetry then Rules.symmetry else [])
    | ids ->
      List.map
        (fun id ->
          match Rule.find rule_universe id with
          | Some r -> r
          | None ->
            Fmt.epr "afd_lint: unknown rule %s (try --list-rules)@." id;
            exit 2)
        (List.rev ids)
  in
  let report =
    Engine.run ~rules ?max_states:!max_states ~por:!por ~jobs:!jobs
      ~compiled:!compiled ~symmetry:!symmetry items
  in
  let mc_results =
    if !mc && !fixture = None then
      Afd_bench.Check.mc_all ?max_states:!max_states ~por:!por ~jobs:!jobs
        ~compiled:!compiled ~profile:!profile ()
    else []
  in
  let sy_results =
    if !mc && !symmetry && !fixture = None then
      Afd_bench.Check.sy_all ?max_states:!max_states ()
    else []
  in
  (* Per-phase timing breakdown on stderr, never stdout: the JSON and
     table outputs stay byte-comparable across profiled runs. *)
  if !profile && mc_results <> [] then begin
    Fmt.epr "afd_lint: --profile phase timings (seconds)@.";
    List.iter
      (fun r ->
        let open Afd_bench.Check in
        Fmt.epr "  %-14s %s@." r.mc_id
          (String.concat ", "
             (List.map
                (fun (k, dt) -> Printf.sprintf "%s=%.4f" k dt)
                r.mc_profile)))
      mc_results
  end;
  (* Strict truncation gate: a budget-capped exploration turns every
     "proved" / "no finding" claim about that subject into a statement
     about a sample.  --strict refuses to bless those. *)
  let truncated_lint = Report.truncated report in
  let truncated_mc =
    List.filter (fun r -> not r.Afd_bench.Check.mc_exhaustive) mc_results
  in
  let strict_truncated =
    !strict && (truncated_lint <> [] || truncated_mc <> [])
  in
  if !json then begin
    if not !mc then print_endline (Report.to_json report)
    else begin
      let rows =
        List.map
          (fun r ->
            Printf.sprintf
              "{\"subject\": \"%s\", \"expect_violated\": %b, \"ok\": %b, \
               \"outcome\": %s}"
              (String.escaped r.Afd_bench.Check.mc_id)
              r.Afd_bench.Check.mc_expect_violated r.Afd_bench.Check.mc_ok
              r.Afd_bench.Check.mc_json)
          mc_results
      in
      (* the "mc" array is byte-identical with and without --symmetry;
         quotiented runs land in their own "symmetry" array *)
      let sy_field =
        if sy_results = [] then ""
        else
          Printf.sprintf ", \"symmetry\": [%s]"
            (String.concat ", "
               (List.map
                  (fun r ->
                    Printf.sprintf
                      "{\"subject\": \"%s\", \"ok\": %b, \"outcome\": %s}"
                      (String.escaped r.Afd_bench.Check.sy_id)
                      r.Afd_bench.Check.sy_ok r.Afd_bench.Check.sy_json)
                  sy_results))
      in
      Printf.printf
        "{\"lint\": %s, \"mc\": [%s]%s, \"strict\": %b, \"strict_truncated\": \
         %b, \"truncated_explorations\": %d}\n"
        (Report.to_json report)
        (String.concat ", " rows)
        sy_field !strict strict_truncated
        (List.length truncated_lint + List.length truncated_mc)
    end
  end
  else begin
    Fmt.pr "%a@." Report.pp report;
    if mc_results <> [] then begin
      Fmt.pr
        "@.MC  exhaustive safety + liveness check (detector + crash \
         automaton)@.";
      List.iter
        (fun r ->
          let open Afd_bench.Check in
          let status =
            if not r.mc_ok then "FAIL"
            else if r.mc_expect_violated then "violated (expected)"
            else "proved"
          in
          Fmt.pr "  %-14s %-28s %-20s %5d states %6d transitions  %s@." r.mc_id
            r.mc_label r.mc_verdict r.mc_states r.mc_transitions status;
          if r.mc_liveness_proved <> [] then
            Fmt.pr "    liveness proved: %s@."
              (String.concat ", " r.mc_liveness_proved);
          if r.mc_liveness_skipped <> [] then
            Fmt.pr "    liveness SKIPPED: %s@."
              (String.concat ", " r.mc_liveness_skipped);
          List.iter
            (fun v ->
              Fmt.pr "    %s %s depth %d index %d%s: %s@." v.vkind v.clause
                v.depth v.index
                (if v.confirmed then " (replay-confirmed)" else " (UNCONFIRMED)")
                v.reason;
              if v.window <> [] then
                Fmt.pr "      window: %s@." (String.concat "; " v.window))
            r.mc_violations;
          List.iter
            (fun l ->
              Fmt.pr "    lasso/%s %s depth %d stem %d cycle %d%s: %s@."
                l.lkind l.lclause l.ldepth l.lstem l.lcycle
                (if l.lconfirmed then " (replay-confirmed)"
                 else " (UNCONFIRMED)")
                l.lreason)
            r.mc_lassos)
        mc_results
    end;
    if sy_results <> [] then begin
      Fmt.pr
        "@.SY  orbit reduction (equivariance certificates, cutoff ladders)@.";
      List.iter
        (fun r ->
          let open Afd_bench.Check in
          Fmt.pr "  %-14s %-28s %-10s %5d states (%d unreduced)  %s@." r.sy_id
            r.sy_label r.sy_status r.sy_states r.sy_raw_states
            (if r.sy_ok then "ok" else "FAIL");
          (match r.sy_status with
          | "certified" -> ()
          | _ -> Fmt.pr "    %s@." r.sy_detail);
          match r.sy_parametric with
          | None -> ()
          | Some p -> Fmt.pr "    %a@." Afd_analysis.Mc.pp_parametric p)
        sy_results
    end
  end;
  if strict_truncated then
    Fmt.epr
      "afd_lint: strict: %d exploration(s) truncated at the state budget — \
       every \"proved\" or absence verdict about them is sampled, not \
       exhaustive@."
      (List.length truncated_lint + List.length truncated_mc);
  let mc_fail =
    List.exists (fun r -> not r.Afd_bench.Check.mc_ok) mc_results
    || List.exists (fun r -> not r.Afd_bench.Check.sy_ok) sy_results
  in
  exit
    (Report.exit_code ~strict:!strict ~mc_fail
       ~mc_truncated:(truncated_mc <> []) report)
