(* afd_lint: run the static well-formedness analysis over the full
   automaton catalog (see lib/analysis).  Exits nonzero when any
   error-severity finding survives; `dune runtest` runs this binary, so
   a malformed automaton fails tier-1. *)

let usage =
  "afd_lint [--json] [--strict] [--rule ID]... [--fixture ID] [--list-rules] \
   [--catalog]"

let () =
  let json = ref false in
  let strict = ref false in
  let list_rules = ref false in
  let list_catalog = ref false in
  let selected = ref [] in
  let fixture = ref None in
  let spec =
    [ ("--json", Arg.Set json, "emit the report as JSON on stdout");
      ("--strict", Arg.Set strict, "exit nonzero on warnings as well as errors");
      ( "--rule",
        Arg.String (fun id -> selected := id :: !selected),
        "ID run only the named rule (repeatable)" );
      ( "--fixture",
        Arg.String (fun id -> fixture := Some id),
        "ID lint the named malformed fixture instead of the catalog \
         (demonstrates a nonzero exit; IDs are rule ids)" );
      ("--list-rules", Arg.Set list_rules, "print the rule set and exit");
      ("--catalog", Arg.Set list_catalog, "print the registered subjects and exit");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let open Afd_analysis in
  if !list_rules then begin
    List.iter
      (fun r ->
        Fmt.pr "%-20s %-7s §%-8s %s@." r.Rule.id
          (Fmt.str "%a" Report.pp_severity r.Rule.severity)
          r.Rule.paper r.Rule.doc)
      Rules.all;
    exit 0
  end;
  let items =
    match !fixture with
    | None -> Catalog.items ()
    | Some id -> (
      match Fixtures.find id with
      | Some entry -> [ { Registry.origin = "fixture"; entry } ]
      | None ->
        Fmt.epr "afd_lint: unknown fixture %s (fixture ids are rule ids)@." id;
        exit 2)
  in
  if !list_catalog then begin
    List.iter
      (fun { Registry.origin; entry } ->
        Fmt.pr "%-10s %s@." origin (Registry.entry_name entry))
      items;
    exit 0
  end;
  let rules =
    match !selected with
    | [] -> Rules.all
    | ids ->
      List.map
        (fun id ->
          match Rule.find Rules.all id with
          | Some r -> r
          | None ->
            Fmt.epr "afd_lint: unknown rule %s (try --list-rules)@." id;
            exit 2)
        (List.rev ids)
  in
  let report = Engine.run ~rules items in
  if !json then print_endline (Report.to_json report)
  else Fmt.pr "%a@." Report.pp report;
  let fail =
    Report.has_errors report || (!strict && Report.warnings report <> [])
  in
  exit (if fail then 1 else 0)
