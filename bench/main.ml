(* Benchmark / experiment harness.

   The paper (PODC'12 theory) has no measurement tables; its "results"
   are algorithms and theorems.  This harness regenerates each of them
   as an experiment row (E1-E12, F1 of DESIGN.md), then times the
   simulator and monitors with Bechamel (P1-P4).  EXPERIMENTS.md
   records the expected output. *)

open Afd_ioa
open Afd_core
open Afd_system
module C = Afd_consensus
module T = Afd_tree

let section title = Format.printf "@.== %s ==@." title

let row fmt = Format.printf fmt

let verdict_str = Afd_bench.verdict_str

(* ------------------------------------------------------------------ *)
(* E1-E7: the declarative matrix (Afd_bench) on the parallel runner    *)
(* ------------------------------------------------------------------ *)

(* Each entry declares detector/spec builders, a seed count, fault
   patterns and a step budget; the engine derives one scheduler seed
   per cell from --root-seed (splitmix64, Scheduler.Seed), runs the
   cells on --jobs domains, and renders the historical rows.  The
   verdict table is identical for any --jobs by construction.  The
   matrix itself lives in lib/bench so the test suite can re-run it
   under every retention policy. *)

module R = Afd_runner

let matrix = Afd_bench.matrix ()

(* ------------------------------------------------------------------ *)
(* E8: Theorem 44 (E_C well-formed)                                    *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8  Theorem 44: E_C is a well-formed environment";
  let n = 3 in
  let run seed crash_at =
    let comp =
      Composition.make ~name:"env-only"
        (Component.C (Crash.automaton ~n ~crashable:(Loc.set_of_universe ~n))
        :: Environment.consensus ~n)
    in
    let cfg =
      { Scheduler.policy = Scheduler.Random seed;
        max_steps = 60;
        stop_when_quiescent = false;
        forced = Crash.forces crash_at;
      }
    in
    let t = Execution.schedule (Scheduler.run comp cfg).Scheduler.execution in
    C.Spec.environment_well_formedness ~n t
  in
  let ok =
    List.for_all
      (fun (s, c) -> not (Verdict.is_violated (run s c)))
      [ (1, []); (2, [ (0, 1) ]); (3, [ (2, 0); (3, 2) ]); (4, [ (50, 2) ]) ]
  in
  row "  E_C well-formedness over 4 fault patterns: %s@." (if ok then "ok" else "FAILED")

(* ------------------------------------------------------------------ *)
(* E9: consensus with AFDs                                             *)
(* ------------------------------------------------------------------ *)

let consensus_sweep name ~n ~f mk_net patterns =
  let sat = ref 0 and und = ref 0 and bad = ref 0 in
  let decided_steps = ref [] in
  List.iter
    (fun (seed, crash_at, steps) ->
      let crashable =
        List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at
      in
      let net : Net.t = mk_net ~crashable in
      let r = Net.run net ~seed ~crash_at ~steps in
      (match C.Spec.check ~n ~f r.Net.trace with
      | Verdict.Sat -> incr sat
      | Verdict.Undecided _ -> incr und
      | Verdict.Violated _ -> incr bad);
      let last = ref 0 in
      List.iteri (fun k a -> if Act.is_decide a then last := k) r.Net.trace;
      decided_steps := !last :: !decided_steps)
    patterns;
  let avg =
    match !decided_steps with
    | [] -> 0.
    | l -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
  in
  row "  %-34s sat=%d undecided=%d violated=%d  avg-steps-to-decide=%.0f@." name !sat
    !und !bad avg

let e9 () =
  section "E9  f-crash-tolerant consensus using AFDs";
  let mk_patterns seeds crash steps = List.map (fun s -> (s, crash, steps)) seeds in
  consensus_sweep "flood+P n=3 f=2, crash-free" ~n:3 ~f:2
    (fun ~crashable -> C.Flood_p.net ~n:3 ~f:2 ~crashable ())
    (mk_patterns [ 1; 2; 3; 4; 5 ] [] 2000);
  consensus_sweep "flood+P n=3 f=2, two crashes" ~n:3 ~f:2
    (fun ~crashable -> C.Flood_p.net ~n:3 ~f:2 ~crashable ())
    (mk_patterns [ 1; 2; 3; 4; 5 ] [ (10, 2); (60, 0) ] 2600);
  consensus_sweep "flood+P n=5 f=4, two crashes" ~n:5 ~f:4
    (fun ~crashable -> C.Flood_p.net ~n:5 ~f:4 ~crashable ())
    (mk_patterns [ 1; 2; 3 ] [ (25, 1); (80, 4) ] 9000);
  consensus_sweep "synod+Omega n=3 f=1, crash-free" ~n:3 ~f:1
    (fun ~crashable -> C.Synod_omega.net ~n:3 ~crashable ())
    (mk_patterns [ 1; 2; 3; 4; 5 ] [] 4000);
  consensus_sweep "synod+Omega n=3 f=1, leader crash" ~n:3 ~f:1
    (fun ~crashable -> C.Synod_omega.net ~n:3 ~crashable ())
    (mk_patterns [ 1; 2; 3; 4; 5 ] [ (30, 0) ] 6000);
  consensus_sweep "synod+Omega n=5 f=2" ~n:5 ~f:2
    (fun ~crashable -> C.Synod_omega.net ~n:5 ~crashable ())
    (mk_patterns [ 1; 2; 3 ] [ (40, 0); (90, 3) ] 9000);
  consensus_sweep "synod over EvP->Omega (Lemma 16)" ~n:3 ~f:1
    (fun ~crashable -> C.Via_reduction.net ~n:3 ~crashable ())
    (mk_patterns [ 1; 2; 3 ] [ (50, 2) ] 9000)

(* ------------------------------------------------------------------ *)
(* E10/E11/E12: execution trees, hooks, bivalence                     *)
(* ------------------------------------------------------------------ *)

let tree_experiment label ~n ~f ~td =
  let sys = T.Tree_system.flood_system ~n ~f in
  match
    T.Tagged_tree.build ~system:sys ~detector:C.Flood_p.detector_name ~td
      ~max_nodes:3_000_000
  with
  | Error e -> row "  %-22s build failed: %s@." label e
  | Ok tree ->
    let va = T.Valence.classify tree in
    let hooks = T.Hook.find_all va in
    let bad = List.filter (fun h -> Result.is_error (T.Hook.check_theorem59 va h)) hooks in
    let crits =
      List.filter_map T.Hook.critical_location hooks |> List.sort_uniq Loc.compare
    in
    let u = T.Flp.unconstrained va ~max_steps:5000 in
    let fw = T.Flp.fair_windowed va ~window:12 ~max_steps:5000 in
    row
      "  %-22s nodes=%-6d root-biv=%b biv=%-5d blocked=%d hooks=%-5d thm59-fail=%d \
       crit-locs=%s  horizon(any/fair)=%d/%d@."
      label
      (Array.length tree.T.Tagged_tree.nodes)
      (T.Valence.root_bivalent va)
      (T.Valence.count va T.Valence.Bivalent)
      (T.Valence.count va T.Valence.Blocked)
      (List.length hooks) (List.length bad)
      (String.concat "," (List.map Loc.to_string crits))
      u.T.Flp.survived fw.T.Flp.survived

let e10_e11_e12 () =
  section "E10/E11/E12  Tagged trees, hooks (Thm 59), bivalence horizon";
  tree_experiment "n=2, p1 crashes" ~n:2 ~f:1
    ~td:(T.Tree_system.td_one_crash ~n:2 ~crash:1 ~pre:1 ~post:3);
  tree_experiment "n=2, p0 crashes" ~n:2 ~f:1
    ~td:(T.Tree_system.td_one_crash ~n:2 ~crash:0 ~pre:1 ~post:3);
  tree_experiment "n=2, crash-free" ~n:2 ~f:1 ~td:(T.Tree_system.td_no_crash ~n:2 ~rounds:3);
  tree_experiment "n=2, f=0" ~n:2 ~f:0 ~td:(T.Tree_system.td_no_crash ~n:2 ~rounds:2);
  if Sys.getenv_opt "AFD_BENCH_LARGE" <> None then
    (* ~1.6M quotient nodes, ~50 s; measured result recorded in
       EXPERIMENTS.md *)
    tree_experiment "n=3, p2 crashes" ~n:3 ~f:1
      ~td:(T.Tree_system.td_one_crash ~n:3 ~crash:2 ~pre:1 ~post:2)
  else row "  (set AFD_BENCH_LARGE=1 for the n=3 tree: 1.6M nodes, ~1 min)@."

(* ------------------------------------------------------------------ *)
(* E13: realistic (message-passing) EvP under partial synchrony       *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section "E13  Heartbeat EvP: partial synchrony vs adversarial scheduling";
  let n = 3 in
  let trace_of run =
    Act.fd_trace_set ~detector:Heartbeat.detector_name run
  in
  let fair =
    let net = Heartbeat.net ~n ~initial_timeout:2 ~crashable:(Loc.Set.singleton 2) () in
    trace_of (Net.run net ~seed:5 ~crash_at:[ (60, 2) ] ~steps:1400).Net.trace
  in
  row "  fair scheduler, one crash:             %s@."
    (verdict_str (Afd.check Ev_perfect.spec ~n fair));
  let net = Heartbeat.net ~n ~initial_timeout:2 ~crashable:Loc.Set.empty () in
  let starved =
    trace_of
      (Execution.schedule
         (Scheduler.run_custom net.Net.composition ~max_steps:1500
            ~choose:(Adversary.starve_channel ~seed:9 ~src:1 ~dst:0)).Scheduler.execution)
  in
  row "  starved channel p1->p0:                %s@."
    (verdict_str (Afd.check Ev_perfect.spec ~n starved));
  let delayed =
    trace_of
      (Execution.schedule
         (Scheduler.run_custom net.Net.composition ~max_steps:4000
            ~choose:(Adversary.delay_channel ~seed:9 ~src:1 ~dst:0 ~period:97)).Scheduler.execution)
  in
  let false_suspicions =
    List.length
      (List.filter
         (function Afd_core.Fd_event.Output (0, s) -> Loc.Set.mem 1 s | _ -> false)
         delayed)
  in
  row "  delayed channel (adaptive timeout):    %s after %d transient false suspicions@."
    (verdict_str (Afd.check Ev_perfect.spec ~n delayed))
    false_suspicions

(* ------------------------------------------------------------------ *)
(* E14: terminating reliable broadcast using P                        *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "E14  Terminating reliable broadcast (weak) using P";
  let run label ~crash_at =
    let crashable =
      List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at
    in
    let sat = ref 0 and other = ref 0 in
    let sf = ref 0 and vals = ref 0 in
    List.iter
      (fun seed ->
        let net = C.Trb.net ~n:4 ~sender:0 ~value:true ~crashable in
        let r = Net.run net ~seed ~crash_at ~steps:2000 in
        (match C.Trb.check ~n:4 ~sender:0 r.Net.trace with
        | Verdict.Sat -> incr sat
        | _ -> incr other);
        List.iter
          (fun (_, d) ->
            match d with C.Trb.Value _ -> incr vals | C.Trb.Sender_faulty -> incr sf)
          (C.Trb.deliveries r.Net.trace))
      [ 1; 2; 3; 4; 5 ];
    row "  %-34s sat=%d other=%d  deliveries: value=%d SF=%d@." label !sat !other !vals !sf
  in
  run "live sender" ~crash_at:[];
  run "sender crashes at step 0" ~crash_at:[ (0, 0) ];
  run "sender crashes mid-broadcast" ~crash_at:[ (6, 0) ]

(* ------------------------------------------------------------------ *)
(* E15: the query-based participant detector (Section 10.1)           *)
(* ------------------------------------------------------------------ *)

let e15 () =
  section "E15  Query-based participant detector is representative for consensus";
  let net = C.Participant.consensus_net ~n:3 ~values:[ true; false; true ]
              ~crashable:(Loc.Set.singleton 2) in
  let r = Net.run net ~seed:4 ~crash_at:[ (40, 2) ] ~steps:3000 in
  row "  consensus using participant:  consensus=%s  detector=%s@."
    (verdict_str (C.Spec.check ~n:3 ~f:1 r.Net.trace))
    (verdict_str (C.Participant.check ~n:3 r.Net.trace));
  let net2 = C.Participant.extraction_net ~crashable:Loc.Set.empty in
  let r2 = Net.run net2 ~seed:5 ~crash_at:[] ~steps:3000 in
  row "  participant from consensus (n=2):  detector=%s (%d queries, %d responses)@."
    (verdict_str (C.Participant.check ~n:2 r2.Net.trace))
    (List.length (C.Participant.queries r2.Net.trace))
    (List.length (C.Participant.responses r2.Net.trace));
  row "  (contrast: Theorem 21 rules this out for AFDs; the query input leaks@.";
  row "   participation information that the unilateral AFD interface cannot.)@."

(* ------------------------------------------------------------------ *)
(* E16: consensus from Sigma + Omega, beyond the minority bound        *)
(* ------------------------------------------------------------------ *)

let e16 () =
  section "E16  Consensus from Sigma + Omega (dynamic quorums)";
  let sweep label ~n ~f ~crash_at ~steps seeds =
    let crashable =
      List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at
    in
    let sat = ref 0 and other = ref 0 in
    List.iter
      (fun seed ->
        let net = C.Synod_sigma.net ~n ~crashable () in
        let r = Net.run net ~seed ~crash_at ~steps in
        match C.Spec.check ~n ~f r.Net.trace with
        | Verdict.Sat -> incr sat
        | _ -> incr other)
      seeds;
    row "  %-38s sat=%d other=%d@." label !sat !other
  in
  sweep "n=3 f=2 (two of three crash!)" ~n:3 ~f:2 ~crash_at:[ (30, 0); (70, 1) ]
    ~steps:6000 [ 1; 2; 3; 4; 5 ];
  sweep "n=4 f=3 (all but one crash)" ~n:4 ~f:3 ~crash_at:[ (20, 0); (50, 1); (90, 2) ]
    ~steps:9000 [ 1; 2; 3 ];
  (* contrast: majority-based synod stalls on the same pattern *)
  let net = C.Synod_omega.net ~n:3 ~crashable:(Loc.Set.of_list [ 0; 1 ]) () in
  let r = Net.run net ~seed:3 ~crash_at:[ (10, 0); (25, 1) ] ~steps:6000 in
  row "  majority synod on the f=2 pattern:     %s (safety intact, waits stall)@."
    (verdict_str (C.Spec.termination ~n:3 r.Net.trace))

(* ------------------------------------------------------------------ *)
(* E17: the reliable-FIFO substrate assumption (§4.3)                  *)
(* ------------------------------------------------------------------ *)

let e17 () =
  section "E17  Substrate assumption: flooding over degraded channels";
  let n = 3 in
  let net_with channels =
    let detector =
      Fd_bridge.lift_set ~detector:C.Flood_p.detector_name (Afd_automata.fd_perfect ~n)
    in
    Net.assemble ~n
      ~detectors:[ Component.C detector ]
      ~environment:(Environment.scripted ~values:[ true; false; true ])
      ~channels ~crashable:Loc.Set.empty
      ~processes:(C.Flood_p.processes ~n ~f:1) ()
  in
  let show label channels =
    let r = Net.run (net_with channels) ~seed:3 ~crash_at:[] ~steps:4000 in
    row "  %-28s %s@." label (verdict_str (C.Spec.check ~n ~f:1 r.Net.trace))
  in
  show "reliable FIFO (the model):" (Channel.all_pairs ~n);
  show "dropping every 2nd message:" (Channel.lossy_pairs ~n ~drop_every:2);
  show "duplicating every message:" (Channel.duplicating_pairs ~n)

(* ------------------------------------------------------------------ *)
(* E18: k-set agreement from Psi_k                                     *)
(* ------------------------------------------------------------------ *)

let e18 () =
  section "E18  k-set agreement from Psi_k (k parallel Synod instances)";
  let sweep label ~n ~k ~crash_at ~steps seeds =
    let crashable =
      List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at
    in
    let sat = ref 0 and other = ref 0 in
    let max_distinct = ref 0 in
    List.iter
      (fun seed ->
        let net = C.Kset.net ~n ~k ~crashable in
        let r = Net.run net ~seed ~crash_at ~steps in
        (match C.Kset.check ~n ~k r.Net.trace with
        | Verdict.Sat -> incr sat
        | _ -> incr other);
        let distinct =
          List.length
            (List.sort_uniq Loc.compare (List.map snd (C.Kset.decisions r.Net.trace)))
        in
        if distinct > !max_distinct then max_distinct := distinct)
      seeds;
    row "  %-38s sat=%d other=%d  max distinct values=%d (k=%d)@." label !sat !other
      !max_distinct k
  in
  sweep "n=4 k=2, crash-free" ~n:4 ~k:2 ~crash_at:[] ~steps:9000 [ 1; 2; 3; 4; 5 ];
  sweep "n=4 k=2, one crash" ~n:4 ~k:2 ~crash_at:[ (40, 1) ] ~steps:9000 [ 1; 2; 3 ];
  sweep "n=3 k=1 (degenerates to consensus)" ~n:3 ~k:1 ~crash_at:[ (30, 2) ] ~steps:8000
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* A1-A4: ablations                                                    *)
(* ------------------------------------------------------------------ *)

let a1 () =
  section "A1  Ablation: tagged-tree size and hooks vs t_D length";
  List.iter
    (fun post ->
      let td = T.Tree_system.td_one_crash ~n:2 ~crash:1 ~pre:1 ~post in
      match
        T.Tagged_tree.build
          ~system:(T.Tree_system.flood_system ~n:2 ~f:1)
          ~detector:C.Flood_p.detector_name ~td ~max_nodes:3_000_000
      with
      | Error e -> row "  post=%d: %s@." post e
      | Ok tree ->
        let va = T.Valence.classify tree in
        let hooks = T.Hook.find_all va in
        row "  post=%d  |t_D|=%-3d nodes=%-6d bivalent=%-5d hooks=%d@." post
          (List.length td)
          (Array.length tree.T.Tagged_tree.nodes)
          (T.Valence.count va T.Valence.Bivalent)
          (List.length hooks))
    [ 1; 2; 3; 4 ]

let a2 () =
  section "A2  Ablation: bivalence horizon vs fairness window";
  let td = T.Tree_system.td_one_crash ~n:2 ~crash:1 ~pre:1 ~post:3 in
  match
    T.Tagged_tree.build
      ~system:(T.Tree_system.flood_system ~n:2 ~f:1)
      ~detector:C.Flood_p.detector_name ~td ~max_nodes:3_000_000
  with
  | Error e -> row "  %s@." e
  | Ok tree ->
    let va = T.Valence.classify tree in
    List.iter
      (fun window ->
        let o = T.Flp.fair_windowed va ~window ~max_steps:5000 in
        row "  window=%-3d survived=%d exhausted=%b@." window o.T.Flp.survived
          o.T.Flp.exhausted)
      [ 2; 4; 8; 16; 32 ];
    let u = T.Flp.unconstrained va ~max_steps:5000 in
    row "  unconstrained: survived=%d exhausted=%b@." u.T.Flp.survived u.T.Flp.exhausted

let a3 () =
  section "A3  Ablation: consensus latency and message complexity vs n";
  List.iter
    (fun n ->
      let net = C.Flood_p.net ~n ~f:(n - 1) ~crashable:Loc.Set.empty () in
      let r = Net.run net ~seed:1 ~crash_at:[] ~steps:20000 in
      let last = ref 0 in
      List.iteri (fun k a -> if Act.is_decide a then last := k) r.Net.trace;
      let sends = List.length (List.filter Act.is_send r.Net.trace) in
      row "  flood+P n=%d f=%d: steps-to-last-decision=%d  messages=%d (= n(n-1)(f+1)=%d) (%s)@."
        n (n - 1) !last sends
        (n * (n - 1) * n)
        (verdict_str (C.Spec.check ~n ~f:(n - 1) r.Net.trace)))
    [ 2; 3; 4; 5 ];
  List.iter
    (fun crash_step ->
      let net = C.Synod_omega.net ~n:3 ~crashable:(Loc.Set.singleton 0) () in
      let r = Net.run net ~seed:2 ~crash_at:[ (crash_step, 0) ] ~steps:8000 in
      let last = ref 0 in
      List.iteri (fun k a -> if Act.is_decide a then last := k) r.Net.trace;
      row "  synod+Omega n=3, leader crash at %-4d: steps-to-last-decision=%d (%s)@."
        crash_step !last
        (verdict_str (C.Spec.check ~n:3 ~f:1 r.Net.trace)))
    [ 5; 20; 60; 200 ]

let a4 () =
  section "A4  Ablation: size of the constrained-reordering closure";
  List.iter
    (fun len ->
      let t =
        Afd_automata.generate_trace ~detector:(Afd_automata.fd_perfect ~n:3) ~n:3
          ~seed:3 ~crash_at:[ (4, 1) ] ~steps:len
      in
      let count = Trace_ops.count_reorderings_upto ~limit:1_000_000 t in
      row "  |t|=%-3d distinct constrained reorderings: %s@." (List.length t)
        (if count >= 1_000_000 then ">= 1e6" else string_of_int count))
    [ 4; 6; 8; 10; 12 ]

(* ------------------------------------------------------------------ *)
(* A5: heartbeat timeout sensitivity                                   *)
(* ------------------------------------------------------------------ *)

let a5 () =
  section "A5  Ablation: heartbeat detector vs initial timeout";
  let n = 3 in
  List.iter
    (fun timeout ->
      let net = Heartbeat.net ~n ~initial_timeout:timeout ~crashable:(Loc.Set.singleton 2) () in
      let r = Net.run net ~seed:5 ~crash_at:[ (60, 2) ] ~steps:1600 in
      let t = Act.fd_trace_set ~detector:Heartbeat.detector_name r.Net.trace in
      let false_susp =
        List.length
          (List.filter
             (function
               | Afd_core.Fd_event.Output (i, s) ->
                 (not (Loc.equal i 2)) && not (Loc.Set.subset s (Loc.Set.singleton 2))
               | Afd_core.Fd_event.Crash _ -> false)
             t)
      in
      (* steps until the crash of p2 is first suspected by p0 *)
      let detect_latency =
        let rec go k seen_crash = function
          | [] -> -1
          | Act.Crash 2 :: rest -> go (k + 1) true rest
          | Act.Fd { at = 0; payload = Act.Pset s; _ } :: _
            when seen_crash && Loc.Set.mem 2 s -> k
          | _ :: rest -> go (k + 1) seen_crash rest
        in
        go 0 false r.Net.trace
      in
      row "  timeout=%-3d verdict=%s  false-suspicion outputs=%d  crash-detection step=%d@."
        timeout
        (verdict_str (Afd.check Ev_perfect.spec ~n t))
        false_susp detect_latency)
    [ 1; 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* F1: Figure 1 architecture smoke                                     *)
(* ------------------------------------------------------------------ *)

let f1 () =
  section "F1  Figure 1 architecture";
  let n = 3 in
  let net = C.Flood_p.net ~n ~f:1 ~crashable:(Loc.Set.singleton 1) () in
  let comps = Array.length (Composition.components net.Net.composition) in
  let r = Net.run net ~seed:42 ~crash_at:[ (25, 1) ] ~steps:2000 in
  row "  components=%d (= n + n(n-1) + crash + FD + n envs = %d)@." comps
    (n + (n * (n - 1)) + 1 + 1 + n);
  row "  smoke run: %d events, decisions=%d, verdict=%s@."
    (List.length r.Net.trace)
    (List.length (Net.decisions r.Net.trace))
    (verdict_str (C.Spec.check ~n ~f:1 r.Net.trace))

(* ------------------------------------------------------------------ *)
(* P1-P5: performance benches                                          *)
(* ------------------------------------------------------------------ *)

(* P5: the hashed seen-set against the legacy O(n^2) list scan on the
   largest catalog subject, single timed runs (the list scan is too
   slow for Bechamel's quota at this cap).  Also printed under the
   perf gate, so `make perf` tracks exploration throughput. *)
let p5_explore () =
  let module A = Afd_analysis in
  let comp =
    (Heartbeat.net ~n:3 ~initial_timeout:2 ~crashable:(Loc.Set.singleton 2) ())
      .Net.composition
  in
  let a = Composition.as_automaton comp in
  let probe =
    A.Probe.make ~equal_action:Act.equal ~pp_action:Act.pp
      ~equal_state:Composition.equal_state ~hash_state:Composition.hash_state
      ~max_states:6_000
      [ Act.Crash 0;
        Act.Crash 2;
        Act.Send { src = 0; dst = 1; msg = Msg.Ping 0 };
        Act.Receive { src = 1; dst = 0; msg = Msg.Ping 0 };
        Act.Fd { at = 0; detector = Heartbeat.detector_name; payload = Act.Pset Loc.Set.empty };
      ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let sp, t_hash = time (fun () -> A.Space.explore ~por:false a probe) in
  let listed, t_list = time (fun () -> A.Explore.list_based a probe) in
  row
    "  P5 explore heartbeat-net (%d states, %d transitions): hashed %.3fs vs \
     list-scan %.3fs = %.1fx speedup@."
    (Array.length sp.A.Space.states)
    sp.A.Space.stats.A.Space.transitions t_hash t_list
    (if t_hash > 0. then t_list /. t_hash else 0.);
  assert (List.length listed = Array.length sp.A.Space.states)

(* PX: the domain-sharded parallel explorer against the sequential one
   on the same largest catalog subject, single timed runs at 1/2/4/8
   domains.  Every parallel result is gated through Pspace.agree — a
   speedup figure is only printed for a structurally identical state
   space.  Printed under the perf gate too, so `make perf` tracks
   parallel exploration throughput alongside the sequential figures.
   Speedup tops out at the machine's core count (single-core CI
   containers will honestly print ~1.0x). *)
let px_explore () =
  let module A = Afd_analysis in
  let comp =
    (Heartbeat.net ~n:3 ~initial_timeout:2 ~crashable:(Loc.Set.singleton 2) ())
      .Net.composition
  in
  let a = Composition.as_automaton comp in
  let probe =
    A.Probe.make ~equal_action:Act.equal ~pp_action:Act.pp
      ~equal_state:Composition.equal_state ~hash_state:Composition.hash_state
      ~max_states:6_000 Afd_bench.Explore_bench.heartbeat_acts
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq, t_seq = time (fun () -> A.Space.explore ~por:false a probe) in
  row
    "  PX explore heartbeat-net (%d states, %d transitions): sequential %.3fs \
     (%.0f transitions/s)@."
    (Array.length seq.A.Space.states)
    seq.A.Space.stats.A.Space.transitions t_seq
    (if t_seq > 0. then float_of_int seq.A.Space.stats.A.Space.transitions /. t_seq
     else 0.);
  List.iter
    (fun jobs ->
      let par, t_par = time (fun () -> A.Pspace.explore ~por:false ~jobs a probe) in
      let equal =
        A.Pspace.agree ~equal_state:Composition.equal_state ~equal_action:Act.equal
          seq par
      in
      row "  PX   %d domains: %.3fs (%.0f transitions/s)  speedup=%.2fx  state-set-equal=%b@."
        jobs t_par
        (if t_par > 0. then float_of_int par.A.Space.stats.A.Space.transitions /. t_par
         else 0.)
        (if t_par > 0. then t_seq /. t_par else 0.)
        equal;
      assert equal)
    [ 1; 2; 4; 8 ]

(* CX: the compiled explorer (Cspace: packed state keys,
   defunctionalized step tables) against the boxed sequential one on
   the same net compositions, single timed runs at a 200k-state budget
   — large enough to amortize table warmup, which dominates the small
   matrix caps.  Every compiled result is gated through Pspace.agree
   before a speedup figure is printed.  A final compiled-only run
   pushes one subject past 10^6 states to exercise the packed tables
   at scale.  Printed under the perf gate, so `make perf` tracks the
   compiled-vs-boxed speedup alongside the PX parallel figures. *)
let cx_explore () =
  let module A = Afd_analysis in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let heartbeat () =
    (Heartbeat.net ~n:3 ~initial_timeout:2 ~crashable:(Loc.Set.singleton 2) ())
      .Net.composition
  in
  let flood () =
    (C.Flood_p.net ~n:3 ~f:1 ~crashable:(Loc.Set.singleton 2) ()).Net.composition
  in
  let probe ~cap acts =
    A.Probe.make ~equal_action:Act.equal ~pp_action:Act.pp
      ~equal_state:Composition.equal_state ~hash_state:Composition.hash_state
      ~max_states:cap acts
  in
  List.iter
    (fun (name, mk, acts) ->
      (* Equality gate on its own (smaller, untimed) runs, dropped
         before timing: a retained 200k-state boxed result would skew
         whichever timed run goes second through major-GC pressure.
         The CX matrix rows and test_cspace gate the full cap matrix. *)
      let equal =
        let p = probe ~cap:60_000 acts in
        let a = Composition.as_automaton (mk ()) in
        let seq = A.Space.explore ~por:false a p in
        let cmp = A.Cspace.explore_composition ~por:false ~jobs:1 (mk ()) p in
        A.Pspace.agree ~equal_state:Composition.equal_state
          ~equal_action:Act.equal seq cmp
      in
      assert equal;
      (* Timed runs, symmetric heap: compact first, retain nothing.
         The container's single shared vCPU makes one-shot wall clocks
         noisy (neighbour steal), so take the min of three repetitions
         — the least-disturbed run of each explorer. *)
      let states = 200_000 in
      let p = probe ~cap:states acts in
      let a = Composition.as_automaton (mk ()) in
      let best f =
        let m = ref infinity in
        for _ = 1 to 3 do
          Gc.compact ();
          let (), t = time (fun () -> ignore (Sys.opaque_identity (f ()))) in
          if t < !m then m := t
        done;
        !m
      in
      let t_seq = best (fun () -> A.Space.explore ~por:false a p) in
      let t_cmp =
        best (fun () ->
            A.Cspace.explore_composition ~por:false ~jobs:1 (mk ()) p)
      in
      row
        "  CX %s (%d states): boxed %.3fs (%.0f states/s) vs compiled %.3fs \
         (%.0f states/s) = %.2fx  state-set-equal=%b@."
        name states t_seq
        (if t_seq > 0. then float_of_int states /. t_seq else 0.)
        t_cmp
        (if t_cmp > 0. then float_of_int states /. t_cmp else 0.)
        (if t_cmp > 0. then t_seq /. t_cmp else 0.)
        equal)
    [ ("heartbeat-net", heartbeat, Afd_bench.Explore_bench.heartbeat_acts);
      ("flood-net", flood, Afd_bench.Explore_bench.flood_acts);
    ];
  Gc.compact ();
  let p = probe ~cap:1_000_000 Afd_bench.Explore_bench.heartbeat_acts in
  let big, t =
    time (fun () ->
        A.Cspace.explore_composition ~por:false ~jobs:1 (heartbeat ()) p)
  in
  let states = Array.length big.A.Space.states in
  row
    "  CX   heartbeat-net at 10^6 states (compiled only): %d states, %d \
     transitions, %s in %.1fs (%.0f states/s)@."
    states big.A.Space.stats.A.Space.transitions
    (A.Space.verdict_string big.A.Space.verdict)
    t
    (if t > 0. then float_of_int states /. t else 0.);
  assert (states >= 1_000_000)

let perf () =
  section "P1-P4  Performance (Bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let p_trace_200 =
    Afd_automata.generate_trace ~detector:(Afd_automata.fd_perfect ~n:4) ~n:4 ~seed:3
      ~crash_at:[ (20, 1) ] ~steps:200
  in
  let rng = Random.State.make [| 5 |] in
  let synod_net = C.Synod_omega.net ~n:3 ~crashable:Loc.Set.empty () in
  let tree_sys = T.Tree_system.flood_system ~n:2 ~f:1 in
  let td = T.Tree_system.td_one_crash ~n:2 ~crash:1 ~pre:1 ~post:2 in
  let tests =
    [ Test.make ~name:"P1 simulator: synod n=3, 500 steps"
        (Staged.stage (fun () -> ignore (Net.run synod_net ~seed:1 ~crash_at:[] ~steps:500)));
      Test.make ~name:"P2 monitor: P spec on 200-event trace"
        (Staged.stage (fun () -> ignore (Afd.check Perfect.spec ~n:4 p_trace_200)));
      Test.make ~name:"P3 gen: sampling of 200-event trace"
        (Staged.stage (fun () -> ignore (Trace_ops.gen_sampling rng p_trace_200)));
      Test.make ~name:"P3 gen: reordering of 200-event trace"
        (Staged.stage (fun () -> ignore (Trace_ops.gen_reordering rng p_trace_200)));
      Test.make ~name:"P4 tree: build+classify n=2 quotient"
        (Staged.stage (fun () ->
             match
               T.Tagged_tree.build ~system:tree_sys ~detector:C.Flood_p.detector_name
                 ~td ~max_nodes:1_000_000
             with
             | Ok tree -> ignore (T.Valence.classify tree)
             | Error e -> failwith e));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> row "  %-45s %12.1f ns/run@." name t
          | _ -> row "  %-45s (no estimate)@." name)
        results)
    tests;
  p5_explore ();
  px_explore ();
  cx_explore ()

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

type opts = {
  jobs : int;
  seeds : int option;
  json : string option;
  root_seed : int;
  smoke : bool;  (** matrix only (E1-E7), nonzero exit on violation *)
  baseline : string option;
      (** compare aggregate transitions/sec against a checked-in
          BENCH_*.json; nonzero exit on a regression beyond
          [max_regression] *)
  max_regression : float;
      (** the perf-gate tolerance, in percent (default 30): fail when
          current throughput drops below (1 - pct/100) x baseline *)
}

let usage () =
  prerr_endline
    "usage: main.exe [--jobs N] [--seeds N] [--json PATH] [--root-seed N] [--smoke] [--baseline PATH] [--max-regression PCT]";
  exit 2

let parse_opts () =
  let defaults =
    { jobs = Domain.recommended_domain_count ();
      seeds = None;
      json = None;
      root_seed = 1;
      smoke = false;
      baseline = None;
      max_regression = 30.;
    }
  in
  let int_of v = match int_of_string_opt v with Some n -> n | None -> usage () in
  let pct_of v =
    match float_of_string_opt v with
    | Some p when p >= 0. && p < 100. -> p
    | _ -> usage ()
  in
  let rec go o = function
    | [] -> o
    | "--jobs" :: v :: rest -> go { o with jobs = int_of v } rest
    | "--seeds" :: v :: rest -> go { o with seeds = Some (int_of v) } rest
    | "--json" :: v :: rest -> go { o with json = Some v } rest
    | "--root-seed" :: v :: rest -> go { o with root_seed = int_of v } rest
    | "--smoke" :: rest -> go { o with smoke = true } rest
    | "--baseline" :: v :: rest -> go { o with baseline = Some v } rest
    | "--max-regression" :: v :: rest -> go { o with max_regression = pct_of v } rest
    | _ -> usage ()
  in
  go defaults (List.tl (Array.to_list Sys.argv))

(* Aggregate transitions/sec of a checked-in bench JSON, recovered by
   string-scanning the per-cell fields (the repo has no JSON reader).
   Cells carry ["steps":N] and ["seconds":X]; neither key occurs
   elsewhere ("steps_fired" and "total_steps" don't match the quoted
   key, and header/exp timings use "wall_clock_s"). *)
let baseline_tps path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let scan key parse acc0 add =
    let k = Printf.sprintf "\"%s\":" key in
    let klen = String.length k in
    let acc = ref acc0 in
    let n = String.length s in
    let pos = ref 0 in
    while !pos + klen <= n do
      if String.sub s !pos klen = k then begin
        let j = ref (!pos + klen) in
        while
          !j < n
          && (match s.[!j] with '0' .. '9' | '.' | '-' | 'e' | '+' -> true | _ -> false)
        do
          incr j
        done;
        (match parse (String.sub s (!pos + klen) (!j - !pos - klen)) with
        | Some v -> acc := add !acc v
        | None -> ());
        pos := !j
      end
      else incr pos
    done;
    !acc
  in
  let steps = scan "steps" int_of_string_opt 0 ( + ) in
  let seconds = scan "seconds" float_of_string_opt 0. ( +. ) in
  if steps = 0 || seconds <= 0. then None
  else Some (float_of_int steps /. seconds)

let () =
  let o = parse_opts () in
  Format.printf "Asynchronous Failure Detectors - experiment harness@.";
  Format.printf "(paper: Cornejo, Lynch, Sastry; each row regenerates a claim)@.";
  let cfg =
    { R.Engine.jobs = o.jobs; root_seed = o.root_seed; seeds_override = o.seeds }
  in
  let run = R.Engine.run cfg matrix in
  Format.printf "%a" R.Engine.pp run;
  (match o.json with
  | Some path ->
    R.Report.write ~path run;
    Format.printf "wrote %s@." path
  | None -> ());
  (match o.baseline with
  | Some path -> (
    let current = R.Engine.aggregate_transitions_per_sec run in
    match baseline_tps path with
    | None ->
      Printf.eprintf "perf: could not read a throughput figure from %s\n" path;
      exit 1
    | Some base ->
      let ratio = if base > 0. then current /. base else infinity in
      let floor = 1. -. (o.max_regression /. 100.) in
      Format.printf
        "@.perf gate: %.0f transitions/s vs baseline %.0f (%s) = %.2fx (floor %.2fx)@."
        current base path ratio floor;
      p5_explore ();
      px_explore ();
      cx_explore ();
      if ratio < floor then begin
        Printf.eprintf
          "perf: aggregate throughput regressed more than %.0f%% vs %s (%.2fx)\n"
          o.max_regression path ratio;
        exit 1
      end)
  | None -> ());
  if o.smoke then begin
    let violated =
      List.exists
        (fun e -> (R.Metrics.exp_counts e).R.Metrics.violated > 0)
        run.R.Engine.exps
    in
    if violated then begin
      prerr_endline "smoke: violated verdicts in the experiment matrix";
      exit 1
    end;
    Format.printf "@.smoke ok.@."
  end
  else begin
    e8 ();
    e9 ();
    e10_e11_e12 ();
    e13 ();
    e14 ();
    e15 ();
    e16 ();
    e17 ();
    e18 ();
    a1 ();
    a2 ();
    a3 ();
    a4 ();
    a5 ();
    f1 ();
    perf ();
    Format.printf "@.done.@."
  end
