(* The streaming temporal-property engine: verdict algebra, DSL and
   monitor units, counterexample witnesses, and the online/offline
   differential over the detector catalog.

   The load-bearing property is the last one: for every catalog
   subject, every seed and every witness-window size, the verdict of
   the incremental monitor fed event-by-event from the scheduler
   (window retention, no trace materialized) is structurally equal —
   reasons included — to the legacy full-trace [Afd.check] replay. *)

open Afd_ioa
open Afd_core
module P = Afd_prop.Prop
module M = Afd_prop.Monitor
module Cx = Afd_prop.Counterexample
module Check = Afd_bench.Check

let verdict = Alcotest.testable Verdict.pp Check.verdict_equal

(* ------------------------------------------------------------------ *)
(* Verdict accumulation                                                *)
(* ------------------------------------------------------------------ *)

let test_verdict_accumulation () =
  let open Verdict in
  Alcotest.check verdict "violated reasons accumulate" (Violated "a; b")
    (Violated "a" &&& Violated "b");
  Alcotest.check verdict "undecided reasons accumulate" (Undecided "a; b")
    (Undecided "a" &&& Undecided "b");
  Alcotest.check verdict "sat is the unit" (Violated "x") (Sat &&& Violated "x");
  Alcotest.check verdict "violated dominates undecided" (Violated "v")
    (Undecided "u" &&& Violated "v");
  Alcotest.check verdict "all accumulates within the dominating class"
    (Violated "a; b")
    (all [ Violated "a"; Undecided "u"; Sat; Violated "b" ]);
  Alcotest.check verdict "tag prefixes the clause name" (Violated "acc: x")
    (tag "acc" (Violated "x"));
  Alcotest.check verdict "tag leaves sat alone" Sat (tag "acc" Sat)

(* ------------------------------------------------------------------ *)
(* DSL and monitor units (tiny hand-built formulas, payload = unit)    *)
(* ------------------------------------------------------------------ *)

let silent_p0 =
  P.always ~name:"silent-p0" (fun _st e ->
      match e with
      | Fd_event.Output (i, ()) when Loc.equal i 0 -> Error "p0 spoke"
      | Fd_event.Output _ | Fd_event.Crash _ -> Ok ())

let out i = Fd_event.Output (i, ())

let test_always_latches_first_violation () =
  let m = M.create ~n:2 silent_p0 in
  M.observe m (out 1);
  Alcotest.check verdict "clean so far" Verdict.Sat (M.verdict m);
  M.observe m (out 0);
  M.observe m (out 0);
  Alcotest.check verdict "latched, tagged with the clause name"
    (Verdict.Violated "silent-p0: p0 spoke") (M.verdict m);
  match M.counterexample m with
  | None -> Alcotest.fail "violated monitor must produce a counterexample"
  | Some cx ->
    Alcotest.(check int) "minimal violating prefix index" 1 cx.Cx.index;
    Alcotest.(check string) "clause" "silent-p0" cx.Cx.clause;
    (match cx.Cx.event with
    | Some (Fd_event.Output (i, ())) ->
      Alcotest.(check int) "offending event location" 0 i
    | _ -> Alcotest.fail "offending event must be the latched output")

let test_until_releases () =
  (* p0 must stay silent until p1 has crashed. *)
  let prop =
    P.until ~name:"quiet-until-crash"
      ~release:(fun st -> Loc.Set.mem 1 st.P.crashed)
      (fun _st e ->
        match e with
        | Fd_event.Output (i, ()) when Loc.equal i 0 -> Error "p0 spoke too early"
        | Fd_event.Output _ | Fd_event.Crash _ -> Ok ())
  in
  let m = M.create ~n:2 prop in
  M.observe m (out 1);
  M.observe m (Fd_event.Crash 1);
  M.observe m (out 0);
  Alcotest.check verdict "released before the output" Verdict.Sat (M.verdict m);
  let m' = M.create ~n:2 prop in
  M.observe m' (out 0);
  Alcotest.check verdict "violates while unreleased"
    (Verdict.Violated "quiet-until-crash: p0 spoke too early") (M.verdict m')

let test_stable_is_rejudged () =
  let prop =
    P.eventually_stable ~name:"chatty-p0" (fun st ->
        P.j_of_bool ~undecided:"p0 has spoken < 2 times"
          (P.output_count st 0 >= 2))
  in
  let m = M.create ~n:1 prop in
  M.observe m (out 0);
  Alcotest.check verdict "undecided on a short prefix"
    (Verdict.Undecided "chatty-p0: p0 has spoken < 2 times") (M.verdict m);
  M.observe m (out 0);
  Alcotest.check verdict "flips to sat as the prefix grows" Verdict.Sat
    (M.verdict m)

let test_clause_verdicts_and_names () =
  let prop = P.conj [ P.validity (); silent_p0 ] in
  Alcotest.(check (list string))
    "clause names in formula order"
    [ "validity.safety"; "validity.liveness"; "silent-p0" ]
    (List.map fst (P.clauses prop));
  let m = M.create ~n:2 prop in
  M.observe m (out 1);
  M.observe m (out 0);
  Alcotest.(check (list (pair string verdict)))
    "per-clause verdicts, reasons untagged"
    [ ("validity.safety", Verdict.Sat);
      ("validity.liveness", Verdict.Sat);
      ("silent-p0", Verdict.Violated "p0 spoke");
    ]
    (M.clause_verdicts m)

let test_counterexample_window_and_json () =
  let m = M.create ~window:2 ~n:3 silent_p0 in
  M.observe m (out 2);
  M.observe m (out 1);
  M.observe m (out 0);
  match M.counterexample m with
  | None -> Alcotest.fail "expected a counterexample"
  | Some cx ->
    Alcotest.(check int) "index" 2 cx.Cx.index;
    Alcotest.(check int) "window start" 1 cx.Cx.window_start;
    Alcotest.(check (list int))
      "window holds the last w events up to the violation" [ 1; 0 ]
      (List.filter_map
         (function Fd_event.Output (i, ()) -> Some i | Fd_event.Crash _ -> None)
         cx.Cx.window);
    let json = Cx.to_json ~pp_out:(Fmt.any "()") cx in
    List.iter
      (fun needle ->
        if not (Scheduler.contains ~needle json) then
          Alcotest.failf "JSON witness %s lacks %s" json needle)
      [ "\"index\":2"; "\"clause\":\"silent-p0\""; "\"window_start\":1" ]

let test_replay_equals_offline_check () =
  let t =
    [ Fd_event.Output (0, Loc.Set.empty);
      Fd_event.Output (1, Loc.Set.empty);
      Fd_event.Crash 1;
      Fd_event.Output (0, Loc.Set.singleton 1);
    ]
  in
  let prop =
    match Perfect.spec.Afd.prop with
    | Some p -> p
    | None -> Alcotest.fail "Perfect.spec must be prop-compiled"
  in
  Alcotest.check verdict "replay is the spec's check" (Afd.check Perfect.spec ~n:2 t)
    (M.replay ~n:2 (prop ~n:2) t)

(* ------------------------------------------------------------------ *)
(* Online == offline over the catalog                                  *)
(* ------------------------------------------------------------------ *)

let check_subject ~window ~retention ~seed subj =
  let r = Check.run_subject ~window ~retention ~seed subj in
  if not (Check.verdict_equal r.Check.online r.Check.offline) then
    Alcotest.failf "%s seed %d window %d: online %a <> offline %a"
      (Check.id subj) seed window Verdict.pp r.Check.online Verdict.pp
      r.Check.offline;
  if Check.expect_violated subj then begin
    if not (Verdict.is_violated r.Check.online) then
      Alcotest.failf "%s seed %d: expected violated, got %a" (Check.id subj) seed
        Verdict.pp r.Check.online;
    match r.Check.counterexample with
    | Some i when i >= 0 && i < r.Check.events -> ()
    | Some i -> Alcotest.failf "%s: counterexample index %d out of range" (Check.id subj) i
    | None -> Alcotest.failf "%s: violated without a counterexample index" (Check.id subj)
  end
  else if not (Verdict.is_sat r.Check.online) then
    Alcotest.failf "%s seed %d: expected sat, got %a" (Check.id subj) seed
      Verdict.pp r.Check.online

let prop_online_equals_offline =
  QCheck2.Test.make ~name:"online monitor == offline check (catalog, all subjects)"
    ~count:20
    QCheck2.Gen.(pair (int_bound 10_000) (oneofl [ 1; 8; 64 ]))
    (fun (seed, window) ->
      List.iter
        (fun subj ->
          List.iter
            (fun retention -> check_subject ~window ~retention ~seed subj)
            [ Scheduler.Trace_only; Scheduler.Window 16 ])
        Check.subjects;
      true)

let test_matrix_smoke () =
  let entries = Check.matrix ~seeds:2 () in
  let r =
    Afd_runner.Engine.run
      { Afd_runner.Engine.jobs = 2; root_seed = 1; seeds_override = None }
      entries
  in
  List.iter
    (fun e ->
      let c = Afd_runner.Metrics.exp_counts e in
      if c.Afd_runner.Metrics.violated > 0 || c.Afd_runner.Metrics.undecided > 0
      then
        Alcotest.failf "matrix row %s is not clean: %s" e.Afd_runner.Metrics.id
          e.Afd_runner.Metrics.rendered)
    r.Afd_runner.Engine.exps

let suite =
  [ Alcotest.test_case "verdict reasons accumulate across &&&/all" `Quick
      test_verdict_accumulation;
    Alcotest.test_case "always latches the first violation" `Quick
      test_always_latches_first_violation;
    Alcotest.test_case "until stops checking once released" `Quick
      test_until_releases;
    Alcotest.test_case "stable clauses are re-judged, never latched" `Quick
      test_stable_is_rejudged;
    Alcotest.test_case "clause verdicts carry formula-order names" `Quick
      test_clause_verdicts_and_names;
    Alcotest.test_case "counterexample window and JSON witness" `Quick
      test_counterexample_window_and_json;
    Alcotest.test_case "replay is definitionally the offline check" `Quick
      test_replay_equals_offline_check;
    QCheck_alcotest.to_alcotest prop_online_equals_offline;
    Alcotest.test_case "check matrix smoke: every meta-verdict is sat" `Quick
      test_matrix_smoke;
  ]
