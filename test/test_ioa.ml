(* Unit tests for the I/O-automata substrate: automata, composition,
   executions, schedulers, fairness. *)

open Afd_ioa

(* A tiny counter automaton over int actions: outputs its successive
   values 1..limit. *)
type count_act = Tick of int | Reset

let counter ~name ~limit =
  let kind = function
    | Tick _ -> Some Automaton.Output
    | Reset -> Some Automaton.Input
  in
  let step s = function
    | Tick k when k = s + 1 && k <= limit -> Some k
    | Tick _ -> None
    | Reset -> Some 0
  in
  let task =
    { Automaton.task_name = "tick";
      fair = true;
      enabled = (fun s -> if s < limit then Some (Tick (s + 1)) else None);
    }
  in
  { Automaton.name; kind; start = 0; step; tasks = [ task ] }

(* An observer that records ticks as inputs. *)
let observer () =
  let kind = function
    | Tick _ -> Some Automaton.Input
    | Reset -> None
  in
  let step s = function Tick k -> Some (k :: s) | Reset -> None in
  { Automaton.name = "observer"; kind; start = []; step; tasks = [] }

let test_kinds () =
  let a = counter ~name:"c" ~limit:3 in
  Alcotest.(check bool) "tick is output" true (Automaton.is_output a (Tick 1));
  Alcotest.(check bool) "reset is input" true (Automaton.is_input a Reset);
  Alcotest.(check bool) "external" true
    (Automaton.is_external (Option.get (Automaton.kind_of a (Tick 2))))

let test_enabled_and_step () =
  let a = counter ~name:"c" ~limit:2 in
  Alcotest.(check int) "one enabled action" 1 (List.length (Automaton.enabled_actions a 0));
  let s = Automaton.step_exn a 0 (Tick 1) in
  Alcotest.(check int) "stepped" 1 s;
  Alcotest.(check bool) "tick 3 disabled" true (a.Automaton.step 1 (Tick 3) = None)

let test_hide () =
  let a = Automaton.hide (fun _ -> true) (counter ~name:"c" ~limit:2) in
  Alcotest.(check bool) "hidden output is internal" true (Automaton.is_internal a (Tick 1))

let test_rename () =
  let a =
    Automaton.rename
      ~to_:(fun x -> match x with Tick k -> Tick (k + 100) | Reset -> Reset)
      ~of_:(fun x ->
        match x with
        | Tick k when k > 100 -> Some (Tick (k - 100))
        | Tick _ -> None
        | Reset -> Some Reset)
      (counter ~name:"c" ~limit:2)
  in
  Alcotest.(check bool) "renamed output in signature" true (Automaton.is_output a (Tick 101));
  Alcotest.(check bool) "original output not in signature" true
    (Automaton.kind_of a (Tick 1) = None);
  Alcotest.(check bool) "renamed action enabled" true
    (List.mem (Tick 101) (Automaton.enabled_actions a a.Automaton.start))

let test_input_enabledness () =
  let a = counter ~name:"c" ~limit:2 in
  match Automaton.check_input_enabled a [ 0; 1; 2 ] [ Reset ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_composition_runs () =
  let comp =
    Composition.make ~name:"pair"
      [ Component.C (counter ~name:"c" ~limit:3); Component.C (observer ()) ]
  in
  let outcome = Scheduler.run comp Scheduler.default_cfg in
  let sched = Execution.schedule outcome.Scheduler.execution in
  Alcotest.(check (list int))
    "observer saw all ticks in order"
    [ 1; 2; 3 ]
    (List.filter_map (function Tick k -> Some k | Reset -> None) sched);
  Alcotest.(check bool) "quiescent at the end" true outcome.Scheduler.quiescent

let test_composition_compatibility () =
  let comp =
    Composition.make ~name:"bad"
      [ Component.C (counter ~name:"c1" ~limit:3); Component.C (counter ~name:"c2" ~limit:3) ]
  in
  match Composition.check_compatible comp ~probes:[ Tick 1; Reset ] with
  | Ok () -> Alcotest.fail "two controllers of Tick 1 should be rejected"
  | Error _ -> ()

let test_composed_signature () =
  let comp =
    Composition.make ~name:"pair"
      [ Component.C (counter ~name:"c" ~limit:1); Component.C (observer ()) ]
  in
  Alcotest.(check bool) "tick output of composition" true
    (Composition.kind_of comp (Tick 1) = Some Automaton.Output);
  Alcotest.(check bool) "reset input of composition" true
    (Composition.kind_of comp Reset = Some Automaton.Input)

let test_as_automaton_and_hiding () =
  let comp =
    Composition.make ~name:"pair"
      [ Component.C (counter ~name:"c" ~limit:2); Component.C (observer ()) ]
  in
  let flat = Composition.as_automaton comp in
  let hidden = Automaton.hide (fun _ -> true) flat in
  Alcotest.(check bool) "hidden" true (Automaton.is_internal hidden (Tick 1));
  (* the flattened automaton still runs *)
  let s1 = Automaton.step_exn flat flat.Automaton.start (Tick 1) in
  Alcotest.(check bool) "tick 2 enabled after tick 1" true
    (List.mem (Tick 2) (Automaton.enabled_actions flat s1))

let test_execution_ops () =
  let a = counter ~name:"c" ~limit:3 in
  let e = Execution.apply_schedule a 0 [ Tick 1; Tick 2 ] in
  (match e with
  | None -> Alcotest.fail "schedule should be applicable"
  | Some e ->
    Alcotest.(check int) "length" 2 (Execution.length e);
    Alcotest.(check int) "final" 2 (Execution.final e);
    Alcotest.(check bool) "is execution" true (Execution.is_execution_of a e));
  Alcotest.(check bool) "bad schedule inapplicable" true
    (Execution.apply_schedule a 0 [ Tick 2 ] = None)

let test_execution_concat () =
  let a = counter ~name:"c" ~limit:4 in
  let e1 = Option.get (Execution.apply_schedule a 0 [ Tick 1; Tick 2 ]) in
  let e2 =
    Option.get
      (Execution.apply_schedule a 2 [ Tick 3 ])
  in
  let e = Execution.concat e1 e2 in
  Alcotest.(check int) "concat length" 3 (Execution.length e);
  Alcotest.(check bool) "concat valid" true (Execution.is_execution_of a e)

let test_trace_ops () =
  let t = [ 1; 2; 3; 2; 1 ] in
  Alcotest.(check (list int)) "project" [ 2; 2 ] (Trace.project (fun x -> x = 2) t);
  Alcotest.(check bool) "subsequence" true
    (Trace.is_subsequence ~equal:Int.equal [ 1; 3; 1 ] t);
  Alcotest.(check bool) "not subsequence" false
    (Trace.is_subsequence ~equal:Int.equal [ 3; 3 ] t);
  Alcotest.(check bool) "prefix" true (Trace.is_prefix ~equal:Int.equal [ 1; 2 ] t);
  Alcotest.(check bool) "permutation" true
    (Trace.is_permutation ~equal:Int.equal [ 3; 2; 2; 1; 1 ] t);
  Alcotest.(check bool) "not permutation" false
    (Trace.is_permutation ~equal:Int.equal [ 3; 2; 2; 1 ] t);
  Alcotest.(check (option int)) "nth 1-based" (Some 1) (Trace.nth t 1);
  Alcotest.(check (option int)) "nth out of range" None (Trace.nth t 9);
  Alcotest.(check (list int)) "positions" [ 1; 3 ] (Trace.positions (fun x -> x = 2) t)

let test_scheduler_random_fair () =
  (* Two counters with disjoint action names must both make progress. *)
  let tag_rename tag a =
    Automaton.rename
      ~to_:(fun x -> match x with Tick k -> Tick ((tag * 1000) + k) | Reset -> Reset)
      ~of_:(fun x ->
        match x with
        | Tick k when k / 1000 = tag -> Some (Tick (k mod 1000))
        | Tick _ -> None
        | Reset -> None)
      a
  in
  let comp =
    Composition.make ~name:"two"
      [ Component.C (tag_rename 1 (counter ~name:"c1" ~limit:50));
        Component.C (tag_rename 2 (counter ~name:"c2" ~limit:50));
      ]
  in
  let cfg = { Scheduler.default_cfg with policy = Scheduler.Random 7; max_steps = 100 } in
  let outcome = Scheduler.run comp cfg in
  let report = Fairness.analyze comp outcome.Scheduler.execution in
  Alcotest.(check bool) "fair prefix" true report.Fairness.fair_prefix;
  Alcotest.(check bool) "both progressed" true
    (List.for_all (fun (_, c) -> c > 0) report.Fairness.firings)

let test_scheduler_forced () =
  let comp =
    Composition.make ~name:"single" [ Component.C (counter ~name:"c" ~limit:100) ]
  in
  let cfg =
    { Scheduler.policy = Scheduler.Round_robin;
      max_steps = 10;
      stop_when_quiescent = true;
      forced = [];
    }
  in
  let outcome = Scheduler.run comp cfg in
  Alcotest.(check int) "ran to step budget" 10 (Execution.length outcome.Scheduler.execution)

let test_run_custom () =
  let comp =
    Composition.make ~name:"single" [ Component.C (counter ~name:"c" ~limit:100) ]
  in
  let outcome =
    Scheduler.run_custom comp ~max_steps:5 ~choose:(fun ~step:_ enabled ->
        match enabled with [] -> None | c :: _ -> Some c)
  in
  Alcotest.(check int) "custom ran 5" 5 (Execution.length outcome.Scheduler.execution)

let test_loc () =
  Alcotest.(check (list int)) "universe" [ 0; 1; 2 ] (Loc.universe ~n:3);
  Alcotest.(check (option int)) "min_not_in" (Some 1) (Loc.min_not_in ~n:3 (fun i -> i = 0));
  Alcotest.(check (option int)) "min_not_in all" None (Loc.min_not_in ~n:2 (fun _ -> true));
  Alcotest.check_raises "universe 0" (Invalid_argument "Loc.universe: n must be positive")
    (fun () -> ignore (Loc.universe ~n:0))

let suite =
  [ Alcotest.test_case "loc basics" `Quick test_loc;
    Alcotest.test_case "signature kinds" `Quick test_kinds;
    Alcotest.test_case "enabled and step" `Quick test_enabled_and_step;
    Alcotest.test_case "hiding" `Quick test_hide;
    Alcotest.test_case "renaming" `Quick test_rename;
    Alcotest.test_case "input enabledness probe" `Quick test_input_enabledness;
    Alcotest.test_case "composition runs and matches actions" `Quick test_composition_runs;
    Alcotest.test_case "composition compatibility check" `Quick test_composition_compatibility;
    Alcotest.test_case "composed signature" `Quick test_composed_signature;
    Alcotest.test_case "as_automaton and hiding" `Quick test_as_automaton_and_hiding;
    Alcotest.test_case "execution operations" `Quick test_execution_ops;
    Alcotest.test_case "execution concat" `Quick test_execution_concat;
    Alcotest.test_case "trace operations" `Quick test_trace_ops;
    Alcotest.test_case "random scheduler is fair" `Quick test_scheduler_random_fair;
    Alcotest.test_case "scheduler respects budget" `Quick test_scheduler_forced;
    Alcotest.test_case "custom adversarial scheduler" `Quick test_run_custom;
  ]
