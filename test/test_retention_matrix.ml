(* Retention-equivalence regression over the real experiment matrix.

   Every E1-E7 cell must produce the same verdict under every
   [Scheduler.retention] policy: the fired sequence and final state are
   retention-invariant by construction, and every experiment reads its
   trace from [fired] rather than from the retained execution.  This
   re-runs the whole matrix (1 seed per cell, sequentially) under Full,
   Trace_only and a small Window and compares both the rendered verdict
   table and the timing-stripped JSON byte for byte. *)

open Afd_ioa
module R = Afd_runner

let cfg = { R.Engine.jobs = 1; root_seed = 1; seeds_override = Some 1 }

let run_with retention = R.Engine.run cfg (Afd_bench.matrix ~retention ())

let test_verdicts_retention_invariant () =
  let full = run_with Scheduler.Full in
  let trace_only = run_with Scheduler.Trace_only in
  let window = run_with (Scheduler.Window 16) in
  Alcotest.(check string) "Trace_only verdict table == Full"
    (R.Engine.verdict_table full)
    (R.Engine.verdict_table trace_only);
  Alcotest.(check string) "Window 16 verdict table == Full"
    (R.Engine.verdict_table full)
    (R.Engine.verdict_table window);
  let json r = R.Report.to_json ~timings:false ~git:"test" r in
  Alcotest.(check string) "Trace_only timing-free JSON == Full" (json full)
    (json trace_only);
  Alcotest.(check string) "Window 16 timing-free JSON == Full" (json full)
    (json window)

let suite =
  [ Alcotest.test_case "E1-E7 verdicts identical across retention policies" `Quick
      test_verdicts_retention_invariant
  ]
