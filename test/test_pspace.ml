(* Differential tests for the parallel explorer (lib/analysis/pspace).

   The claim under test is strong: Pspace.explore is STRUCTURALLY
   identical to Space.explore — same state array in the same discovery
   order, same edge array (order included), same parent tree, depths,
   verdict, and stats — at any domain count, with POR on or off, under
   any max_states budget.  Everything downstream (MC verdict tables,
   liveness lassos, lint reports, JSON) is then byte-identical at any
   --jobs, which the coarser-grained tests here confirm end to end.

   A worker that raises mid-exploration must propagate the exception
   out of the explorer and leave a shared pool usable — the
   crash-safety half of the contract. *)

open Afd_ioa
open Afd_core
open Afd_analysis
module BC = Afd_bench.Check

(* The full CHK catalog (12 seeded subjects + 2 limit-broken liveness
   subjects), each closed like Mc.check_spec closes them: detector
   composed with the crash automaton over the full universe. *)
let chk_subjects = BC.subjects @ BC.liveness_subjects

(* Close one CHK subject like Mc.check_spec does — detector composed
   with the crash automaton over the full universe — and compare the
   sequential and parallel explorations structurally.  The GADT match
   and everything typed by its existentials stay inside this one
   function. *)
let subject_agrees ~por ~jobs ~max_states (BC.S { n; detector; _ }) =
  let crashable = Loc.set_of_universe ~n in
  let comp =
    Composition.make ~name:"chk-closed"
      [ Component.C (detector n);
        Component.C (Afd_automata.crash_automaton ~n ~crashable);
      ]
  in
  let aut = Composition.as_automaton comp in
  let probe =
    Probe.make ~equal_state:Composition.equal_state
      ~hash_state:Composition.hash_state ~max_states []
  in
  let seq = Space.explore ~por aut probe in
  let par = Pspace.explore ~por ~jobs aut probe in
  Pspace.agree ~equal_state:Composition.equal_state ~equal_action:( = ) seq par

(* --- qcheck: parallel == sequential across the catalog ---

   Random subject x POR x budget x jobs: the sequential exploration and
   the parallel one must agree field for field.  Small random budgets
   matter: they exercise the truncation path (cut counting at merge
   time), and budgets below the seed count exercise the seed-cut
   path. *)
let differential_prop =
  let gen =
    QCheck2.Gen.(
      let* subj_ix = int_bound (List.length chk_subjects - 1) in
      let* por = bool in
      let* jobs = oneofl [ 1; 2; 4 ] in
      let* cap = oneofl [ 1; 7; 60; 400; 2000 ] in
      return (subj_ix, por, jobs, cap))
  in
  QCheck2.Test.make
    ~name:
      "Pspace.explore == Space.explore (structural) on CHK subjects x por x \
       budget x jobs"
    ~count:40
    ~print:(fun (i, por, jobs, cap) ->
      Printf.sprintf "subject=%s por=%b jobs=%d max_states=%d"
        (BC.id (List.nth chk_subjects i))
        por jobs cap)
    gen
    (fun (subj_ix, por, jobs, cap) ->
      subject_agrees ~por ~jobs ~max_states:cap (List.nth chk_subjects subj_ix))

(* --- full-catalog sweep at a fixed budget, both POR settings --- *)

let test_catalog_structural_equality () =
  List.iter
    (fun subj ->
      List.iter
        (fun por ->
          List.iter
            (fun jobs ->
              Alcotest.(check bool)
                (Printf.sprintf "%s por=%b jobs=%d structurally equal"
                   (BC.id subj) por jobs)
                true
                (subject_agrees ~por ~jobs ~max_states:6_000 subj))
            [ 1; 2; 4 ])
        [ false; true ])
    chk_subjects

(* --- three explorers stay congruent: list == hashed == parallel --- *)

let test_three_explorer_congruence () =
  let checked = ref 0 in
  List.iter
    (fun { Registry.origin; entry } ->
      let subj = Subject.make ~origin entry in
      match subj.Subject.packed with
      | None -> ()
      | Some (Subject.P { aut = a; probe = p; _ }) ->
        incr checked;
        let listed = Explore.list_based a p in
        let hashed = Explore.reachable a p in
        let parallel = Space.reachable (Pspace.explore ~jobs:2 a p) in
        Alcotest.(check int)
          (subj.Subject.name ^ ": list/hashed same count")
          (List.length listed) (List.length hashed);
        Alcotest.(check int)
          (subj.Subject.name ^ ": hashed/parallel same count")
          (List.length hashed) (List.length parallel);
        List.iter2
          (fun x y ->
            Alcotest.(check bool)
              (subj.Subject.name ^ ": list/hashed same visit order")
              true (p.Probe.equal_state x y))
          listed hashed;
        List.iter2
          (fun x y ->
            Alcotest.(check bool)
              (subj.Subject.name ^ ": hashed/parallel same visit order")
              true (p.Probe.equal_state x y))
          hashed parallel)
    (Catalog.items ());
  Alcotest.(check bool) "covered a real spread of subjects" true (!checked >= 20)

(* --- MC verdict byte-equality at any jobs --- *)

let mc_table rs =
  String.concat "\n"
    (List.map
       (fun r ->
         Printf.sprintf "%s|%s|%b|%d|%d|%b|%s|%s|%s" r.BC.mc_id r.BC.mc_verdict
           r.BC.mc_exhaustive r.BC.mc_states r.BC.mc_transitions r.BC.mc_ok
           (String.concat "," r.BC.mc_safety)
           (String.concat "," r.BC.mc_liveness_proved)
           (String.concat "," r.BC.mc_liveness_skipped))
       rs)

let mc_json rs = String.concat "\n" (List.map (fun r -> r.BC.mc_json) rs)

let test_mc_byte_equality () =
  let j1 = BC.mc_all ~jobs:1 () in
  let j4 = BC.mc_all ~jobs:4 () in
  Alcotest.(check int) "same row count" (List.length j1) (List.length j4);
  Alcotest.(check string) "verdict table identical at jobs 1 vs 4" (mc_table j1)
    (mc_table j4);
  Alcotest.(check string) "outcome JSON identical at jobs 1 vs 4" (mc_json j1)
    (mc_json j4);
  List.iter
    (fun r -> Alcotest.(check bool) (r.BC.mc_id ^ " ok") true r.BC.mc_ok)
    j4

let test_mc_por_byte_equality () =
  let j1 = BC.mc_all ~por:true ~max_states:4_000 ~jobs:1 () in
  let j2 = BC.mc_all ~por:true ~max_states:4_000 ~jobs:2 () in
  Alcotest.(check string) "POR verdict table identical at jobs 1 vs 2"
    (mc_table j1) (mc_table j2);
  Alcotest.(check string) "POR outcome JSON identical at jobs 1 vs 2"
    (mc_json j1) (mc_json j2)

(* --- lint engine: whole report identical at any jobs --- *)

let test_lint_report_jobs_invariant () =
  let report jobs =
    Afd_analysis.Report.to_json
      (Engine.run ~rules:(Rules.all @ Rules.mc) ~max_states:2_000 ~jobs
         (Catalog.items ()))
  in
  Alcotest.(check string) "lint JSON identical at jobs 1 vs 3" (report 1)
    (report 3)

(* --- crash safety: a raising step mid-exploration --- *)

exception Boom

let bomb ~armed =
  (* counter automaton whose step blows up past 5 when armed *)
  { Automaton.name = "bomb";
    kind = (fun _ -> Some Automaton.Internal);
    start = 0;
    step =
      (fun s () ->
        if armed && s >= 5 then raise Boom
        else if s < 40 then Some (s + 1)
        else None);
    tasks =
      [ { Automaton.task_name = "inc";
          fair = true;
          enabled = (fun s -> if s < 40 then Some () else None);
        }
      ];
  }

let int_probe = Probe.make ~hash_state:(fun s -> s) ~max_states:1_000 []

let test_raise_propagates_and_pool_survives () =
  Afd_runner.Pool.with_pool ~jobs:3 (fun pool ->
      (match Pspace.explore_pool pool (bomb ~armed:true) int_probe with
      | exception Boom -> ()
      | _ -> Alcotest.fail "expected the worker exception to propagate");
      (* the same pool is not poisoned: a clean exploration on it still
         agrees with the sequential explorer *)
      let seq = Space.explore (bomb ~armed:false) int_probe in
      let par = Pspace.explore_pool pool (bomb ~armed:false) int_probe in
      Alcotest.(check bool) "pool survives a raising exploration" true
        (Pspace.agree ~equal_state:( = ) ~equal_action:( = ) seq par))

let test_explore_raise_no_leak () =
  (* the one-shot entry point joins its domains before re-raising *)
  match Pspace.explore ~jobs:4 (bomb ~armed:true) int_probe with
  | exception Boom -> ()
  | _ -> Alcotest.fail "expected the worker exception to propagate"

let suite =
  [ QCheck_alcotest.to_alcotest differential_prop;
    Alcotest.test_case "catalog x por x jobs: structural equality" `Quick
      test_catalog_structural_equality;
    Alcotest.test_case "list == hashed == parallel on the whole catalog" `Quick
      test_three_explorer_congruence;
    Alcotest.test_case "MC table and JSON byte-identical at jobs 1 vs 4" `Quick
      test_mc_byte_equality;
    Alcotest.test_case "MC under POR byte-identical at jobs 1 vs 2" `Quick
      test_mc_por_byte_equality;
    Alcotest.test_case "lint report JSON identical at any jobs" `Quick
      test_lint_report_jobs_invariant;
    Alcotest.test_case "raising step propagates, shared pool survives" `Quick
      test_raise_propagates_and_pool_survives;
    Alcotest.test_case "one-shot explore joins domains on failure" `Quick
      test_explore_raise_no_leak;
  ]
