(* The message-passing heartbeat detector (realistic ◇P, ref [7]) and
   the adversarial schedulers: eventually-perfect under operational
   partial synchrony, broken under channel starvation. *)

open Afd_ioa
open Afd_core
open Afd_system

let hb_trace net run =
  Act.fd_trace_set ~detector:Heartbeat.detector_name
    (match run with
    | `Fair (seed, crash_at, steps) ->
      (Net.run net ~seed ~crash_at ~steps).Net.trace
    | `Custom (choose, steps) ->
      Execution.schedule
        (Scheduler.run_custom net.Net.composition ~max_steps:steps ~choose).Scheduler.execution)

let test_fair_no_crash () =
  let n = 3 in
  let net = Heartbeat.net ~n ~initial_timeout:2 ~crashable:Loc.Set.empty () in
  List.iter
    (fun seed ->
      let t = hb_trace net (`Fair (seed, [], 900)) in
      match Afd.check Ev_perfect.spec ~n t with
      | Verdict.Sat -> ()
      | v -> Alcotest.failf "seed %d: %a" seed Verdict.pp v)
    [ 1; 2; 3; 4 ]

let test_fair_with_crash () =
  let n = 3 in
  let net = Heartbeat.net ~n ~initial_timeout:2 ~crashable:(Loc.Set.singleton 2) () in
  List.iter
    (fun seed ->
      let t = hb_trace net (`Fair (seed, [ (60, 2) ], 1400)) in
      match Afd.check Ev_perfect.spec ~n t with
      | Verdict.Sat -> ()
      | v -> Alcotest.failf "seed %d: %a" seed Verdict.pp v)
    [ 5; 6; 7 ]

let test_starved_channel_breaks_evp () =
  let n = 3 in
  let net = Heartbeat.net ~n ~initial_timeout:2 ~crashable:Loc.Set.empty () in
  let t = hb_trace net (`Custom (Adversary.starve_channel ~seed:9 ~src:1 ~dst:0, 1500)) in
  (* p0 must end up (wrongly, permanently) suspecting the live p1 *)
  (match Fd_event.last_output_at 0 t with
  | Some s -> Alcotest.(check bool) "p0 stuck suspecting p1" true (Loc.Set.mem 1 s)
  | None -> Alcotest.fail "p0 produced no output");
  match Afd.check Ev_perfect.spec ~n t with
  | Verdict.Sat -> Alcotest.fail "starvation must break eventual accuracy"
  | Verdict.Undecided _ -> ()
  | Verdict.Violated m -> Alcotest.failf "validity broken instead: %s" m

let test_delayed_channel_adapts () =
  let n = 3 in
  let net = Heartbeat.net ~n ~initial_timeout:2 ~crashable:Loc.Set.empty () in
  let t = hb_trace net (`Custom (Adversary.delay_channel ~seed:9 ~src:1 ~dst:0 ~period:97, 4000)) in
  (* transient false suspicions are allowed; eventual accuracy must return *)
  let false_suspicions =
    List.length
      (List.filter
         (function Fd_event.Output (0, s) -> Loc.Set.mem 1 s | _ -> false)
         t)
  in
  Alcotest.(check bool) "some false suspicions occurred" true (false_suspicions > 0);
  match Afd.check Ev_perfect.spec ~n t with
  | Verdict.Sat -> ()
  | v -> Alcotest.failf "adaptive timeout failed to converge: %a" Verdict.pp v

let test_timeout_adaptation_monotone () =
  (* unit-level: a premature suspicion doubles the timeout *)
  let a = Heartbeat.automaton ~n:2 ~initial_timeout:1 ~loc:0 in
  let rec drive s k =
    if k = 0 then s
    else
      match List.filter_map (fun t -> t.Automaton.enabled s) a.Automaton.tasks with
      | [ act ] -> drive (Automaton.step_exn a s act) (k - 1)
      | _ -> s
  in
  (* run enough cycles without any heartbeat: p1 gets suspected *)
  let s = drive a.Automaton.start 8 in
  let st, _ = s in
  Alcotest.(check bool) "p1 suspected" true (Loc.Set.mem 1 (Heartbeat.suspects st));
  let before = Heartbeat.timeout_of st 1 in
  (* heartbeat arrives: suspicion withdrawn, timeout doubled *)
  let s = Automaton.step_exn a s (Act.Receive { src = 1; dst = 0; msg = Msg.Ping 0 }) in
  let st, _ = s in
  Alcotest.(check bool) "suspicion withdrawn" false (Loc.Set.mem 1 (Heartbeat.suspects st));
  Alcotest.(check int) "timeout doubled" (2 * before) (Heartbeat.timeout_of st 1)

let test_fair_random_baseline () =
  (* the Adversary.fair_random choose function behaves like a fair
     scheduler for the heartbeat system *)
  let n = 2 in
  let net = Heartbeat.net ~n ~initial_timeout:2 ~crashable:Loc.Set.empty () in
  let t = hb_trace net (`Custom (Adversary.fair_random ~seed:4, 800)) in
  match Afd.check Ev_perfect.spec ~n t with
  | Verdict.Sat -> ()
  | v -> Alcotest.failf "%a" Verdict.pp v

let suite =
  [ Alcotest.test_case "fair scheduling, no crash: EvP holds" `Quick test_fair_no_crash;
    Alcotest.test_case "fair scheduling, one crash: EvP holds" `Quick test_fair_with_crash;
    Alcotest.test_case "starved channel: eventual accuracy lost" `Quick
      test_starved_channel_breaks_evp;
    Alcotest.test_case "delayed channel: adaptive timeout converges" `Quick
      test_delayed_channel_adapts;
    Alcotest.test_case "timeout adaptation doubles" `Quick test_timeout_adaptation_monotone;
    Alcotest.test_case "fair_random baseline" `Quick test_fair_random_baseline;
  ]
