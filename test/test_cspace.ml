(* Differential tests for the compiled explorer (lib/analysis/cspace).

   Same claim as test_pspace, one explorer over: Cspace (packed states,
   defunctionalized step tables) is STRUCTURALLY identical to
   Space.explore — same state array in the same discovery order, same
   edge array (order included), same parent tree, depths, verdict, and
   stats — on both backends (generic whole-state interning and the
   packed composition machine), at any jobs, with POR on or off, under
   any max_states budget. *)

open Afd_ioa
open Afd_core
open Afd_analysis
module BC = Afd_bench.Check

let chk_subjects = BC.subjects @ BC.liveness_subjects

(* Close one CHK subject like Mc.check_spec does and compare the boxed
   sequential exploration against the compiled one, both backends.  The
   GADT match and everything typed by its existentials stay inside this
   one function. *)
let subject_agrees ~packed ~por ~jobs ~max_states (BC.S { n; detector; _ }) =
  let crashable = Loc.set_of_universe ~n in
  let comp =
    Composition.make ~name:"chk-closed"
      [ Component.C (detector n);
        Component.C (Afd_automata.crash_automaton ~n ~crashable);
      ]
  in
  let aut = Composition.as_automaton comp in
  let probe =
    Probe.make ~equal_state:Composition.equal_state
      ~hash_state:Composition.hash_state ~max_states []
  in
  let seq = Space.explore ~por aut probe in
  let com =
    if packed then Cspace.explore_composition ~por ~jobs comp probe
    else Cspace.explore ~por ~jobs aut probe
  in
  Pspace.agree ~equal_state:Composition.equal_state ~equal_action:( = ) seq com

(* --- qcheck: compiled == boxed across the catalog ---

   Random subject x backend x POR x budget x jobs.  Small random
   budgets exercise the truncation path (cut counting during merge) and
   budgets below the seed count exercise the seed-cut path. *)
let differential_prop =
  let gen =
    QCheck2.Gen.(
      let* subj_ix = int_bound (List.length chk_subjects - 1) in
      let* packed = bool in
      let* por = bool in
      let* jobs = oneofl [ 1; 2; 4 ] in
      let* cap = oneofl [ 1; 7; 60; 400; 2000 ] in
      return (subj_ix, packed, por, jobs, cap))
  in
  QCheck2.Test.make
    ~name:
      "Cspace == Space (structural) on CHK subjects x backend x por x budget \
       x jobs"
    ~count:40
    ~print:(fun (i, packed, por, jobs, cap) ->
      Printf.sprintf "subject=%s packed=%b por=%b jobs=%d max_states=%d"
        (BC.id (List.nth chk_subjects i))
        packed por jobs cap)
    gen
    (fun (subj_ix, packed, por, jobs, cap) ->
      subject_agrees ~packed ~por ~jobs ~max_states:cap
        (List.nth chk_subjects subj_ix))

(* --- full-catalog sweep at a fixed budget, both backends, both POR --- *)

let test_catalog_structural_equality () =
  List.iter
    (fun subj ->
      List.iter
        (fun packed ->
          List.iter
            (fun por ->
              List.iter
                (fun jobs ->
                  Alcotest.(check bool)
                    (Printf.sprintf
                       "%s packed=%b por=%b jobs=%d structurally equal"
                       (BC.id subj) packed por jobs)
                    true
                    (subject_agrees ~packed ~por ~jobs ~max_states:6_000 subj))
                [ 1; 2; 4 ])
            [ false; true ])
        [ false; true ])
    chk_subjects

(* --- profiled runs stay structurally identical --- *)

let test_profile_does_not_perturb () =
  let (BC.S { n; detector; _ }) = List.hd chk_subjects in
  let crashable = Loc.set_of_universe ~n in
  let comp =
    Composition.make ~name:"chk-closed"
      [ Component.C (detector n);
        Component.C (Afd_automata.crash_automaton ~n ~crashable);
      ]
  in
  let probe =
    Probe.make ~equal_state:Composition.equal_state
      ~hash_state:Composition.hash_state ~max_states:3_000 []
  in
  let phases = ref [] in
  let plain = Cspace.explore_composition ~por:true comp probe in
  let profiled =
    Cspace.explore_composition ~por:true
      ~profile:(fun k dt -> phases := (k, dt) :: !phases)
      comp probe
  in
  Alcotest.(check bool) "profiled == unprofiled" true
    (Pspace.agree ~equal_state:Composition.equal_state ~equal_action:( = )
       plain profiled);
  List.iter
    (fun k ->
      Alcotest.(check bool) ("phase " ^ k ^ " reported") true
        (List.mem_assoc k !phases))
    [ "workers"; "merge"; "decode" ]

(* --- crash safety: a raising step propagates from workers --- *)

exception Boom

let bomb ~armed =
  { Automaton.name = "bomb";
    kind = (fun _ -> Some Automaton.Internal);
    start = 0;
    step =
      (fun s () ->
        if armed && s >= 5 then raise Boom
        else if s < 40 then Some (s + 1)
        else None);
    tasks =
      [ { Automaton.task_name = "inc";
          fair = true;
          enabled = (fun s -> if s < 40 then Some () else None);
        }
      ];
  }

let int_probe = Probe.make ~hash_state:(fun s -> s) ~max_states:1_000 []

let test_generic_matches_plain_automaton () =
  let seq = Space.explore (bomb ~armed:false) int_probe in
  let com = Cspace.explore (bomb ~armed:false) int_probe in
  Alcotest.(check bool) "generic backend on a plain automaton" true
    (Pspace.agree ~equal_state:( = ) ~equal_action:( = ) seq com)

let test_raise_propagates () =
  match Cspace.explore (bomb ~armed:true) int_probe with
  | exception Boom -> ()
  | _ -> Alcotest.fail "expected the step exception to propagate"

let suite =
  [ QCheck_alcotest.to_alcotest differential_prop;
    Alcotest.test_case "catalog x backend x por x jobs: structural equality"
      `Quick test_catalog_structural_equality;
    Alcotest.test_case "profile callback does not perturb the result" `Quick
      test_profile_does_not_perturb;
    Alcotest.test_case "generic backend on a plain automaton" `Quick
      test_generic_matches_plain_automaton;
    Alcotest.test_case "raising step propagates" `Quick test_raise_propagates;
  ]
