(* The mega subsystem: calendar ordering, the small-n congruence
   differential against the boxed Scheduler path, engine determinism
   and the sampled monitor. *)

open Afd_ioa
open Afd_core
module M = Afd_mega

(* {2 Calendar} *)

let pop_all cal =
  let acc = ref [] in
  while M.Calendar.pop cal do
    acc := (M.Calendar.now cal, M.Calendar.ev_a cal) :: !acc
  done;
  List.rev !acc

let calendar_fifo () =
  let cal = M.Calendar.create () in
  let sched at a = M.Calendar.schedule cal ~at ~kind:0 ~a ~b:0 ~c:0 ~d:0 in
  sched 5 1;
  sched 3 2;
  sched 5 3;
  sched 3 4;
  Alcotest.(check (list (pair int int)))
    "same-time events pop in creation order"
    [ (3, 2); (3, 4); (5, 1); (5, 3) ]
    (pop_all cal)

let calendar_horizon () =
  let cal = M.Calendar.create () in
  let sched at a = M.Calendar.schedule cal ~at ~kind:0 ~a ~b:0 ~c:0 ~d:0 in
  (* far beyond the 4096-tick wheel horizon: overflow-heap path *)
  sched 10_000 1;
  sched 5_000 2;
  sched 10_000 3;
  sched 10 4;
  Alcotest.(check int) "pending" 4 (M.Calendar.pending cal);
  Alcotest.(check bool) "pop" true (M.Calendar.pop cal);
  Alcotest.(check int) "near event first" 4 (M.Calendar.ev_a cal);
  (* an event scheduled mid-run lands in order *)
  sched 20 5;
  Alcotest.(check (list (pair int int)))
    "heap drains in (time, seq) order"
    [ (20, 5); (5_000, 2); (10_000, 1); (10_000, 3) ]
    (pop_all cal);
  Alcotest.(check int) "empty" 0 (M.Calendar.pending cal)

let calendar_immediate () =
  let cal = M.Calendar.create () in
  let sched at a = M.Calendar.schedule cal ~at ~kind:0 ~a ~b:0 ~c:0 ~d:0 in
  sched 7 1;
  Alcotest.(check bool) "pop" true (M.Calendar.pop cal);
  (* scheduling at (or before) [now] is clamped to [now] and still
     delivered, after everything already queued at [now] *)
  sched 7 2;
  sched 3 3;
  Alcotest.(check (list (pair int int))) "clamped to now" [ (7, 2); (7, 3) ] (pop_all cal)

(* {2 Congruence differential: mega ≡ Scheduler at small n} *)

let kinds_for n =
  let base =
    [ M.Compat.Perfect;
      M.Compat.Sigma;
      M.Compat.Omega;
      M.Compat.Anti_omega;
      M.Compat.Silent;
      M.Compat.Flip_flop;
    ]
  in
  let ks = List.init n (fun i -> i + 1) in
  base
  @ List.concat_map (fun k -> [ M.Compat.Omega_k k; M.Compat.Psi_k k ]) ks

let set_trace = Alcotest.testable (Fd_event.pp_trace Loc.pp_set) (List.equal (Fd_event.equal Loc.Set.equal))
let leader_trace = Alcotest.testable (Fd_event.pp_trace Loc.pp) (List.equal (Fd_event.equal Loc.equal))

let scenario_gen =
  QCheck2.Gen.(
    let n = map (fun i -> 1 + i) (int_bound 4) in
    let crash = pair (int_bound 320) (int_bound 8) in
    tup5 n (int_bound 1000) (int_bound 1_000_000) (int_bound 300)
      (list_size (int_bound 5) crash))

let differential_case (n, ksel, seed, steps, crash_raw) =
  let crash_at = List.map (fun (s, l) -> (s, l mod n)) crash_raw in
  let kinds = kinds_for n in
  let kind = List.nth kinds (ksel mod List.length kinds) in
  if M.Compat.leader_valued kind then begin
    let mega = M.Compat.run_leader kind ~n ~seed ~crash_at ~steps in
    let boxed = M.Compat.reference_leader kind ~n ~seed ~crash_at ~steps in
    List.equal (Fd_event.equal Loc.equal) mega.M.Compat.trace boxed
    && M.Compat.spec_verdict_leader kind ~n mega.M.Compat.trace
       = M.Compat.spec_verdict_leader kind ~n boxed
  end
  else begin
    let mega = M.Compat.run_set kind ~n ~seed ~crash_at ~steps in
    let boxed = M.Compat.reference_set kind ~n ~seed ~crash_at ~steps in
    List.equal (Fd_event.equal Loc.Set.equal) mega.M.Compat.trace boxed
    && M.Compat.spec_verdict_set kind ~n mega.M.Compat.trace
       = M.Compat.spec_verdict_set kind ~n boxed
  end

let prop_differential =
  QCheck2.Test.make
    ~name:"mega ≡ Scheduler: fired sequences and spec verdicts (160 cases)" ~count:160
    scenario_gen differential_case

(* a couple of pinned corners the generator might miss *)
let differential_pinned () =
  (* quiescence: everyone crashes *)
  let kind = M.Compat.Perfect in
  let crash_at = [ (0, 0); (0, 1); (1, 2) ] in
  let mega = M.Compat.run_set kind ~n:3 ~seed:42 ~crash_at ~steps:200 in
  let boxed = M.Compat.reference_set kind ~n:3 ~seed:42 ~crash_at ~steps:200 in
  Alcotest.check set_trace "all-crash trace" boxed mega.M.Compat.trace;
  Alcotest.(check bool) "quiescent after all crash" true mega.M.Compat.quiescent;
  (* silent detector: starvation backstop never fires for disabled tasks *)
  let mega = M.Compat.run_set M.Compat.Silent ~n:4 ~seed:7 ~crash_at:[ (50, 0) ] ~steps:250 in
  let boxed = M.Compat.reference_set M.Compat.Silent ~n:4 ~seed:7 ~crash_at:[ (50, 0) ] ~steps:250 in
  Alcotest.check set_trace "silent trace" boxed mega.M.Compat.trace;
  (* flip-flop: aux state beyond the crash mask *)
  let mega = M.Compat.run_leader M.Compat.Flip_flop ~n:5 ~seed:9 ~crash_at:[ (20, 3) ] ~steps:300 in
  let boxed =
    M.Compat.reference_leader M.Compat.Flip_flop ~n:5 ~seed:9 ~crash_at:[ (20, 3) ] ~steps:300
  in
  Alcotest.check leader_trace "flip-flop trace" boxed mega.M.Compat.trace;
  (* forced entry for an already-crashed location is dropped, and the
     policy picks in the same step *)
  let crash_at = [ (10, 1); (12, 1); (12, 2) ] in
  let mega = M.Compat.run_set M.Compat.Sigma ~n:3 ~seed:3 ~crash_at ~steps:150 in
  let boxed = M.Compat.reference_set M.Compat.Sigma ~n:3 ~seed:3 ~crash_at ~steps:150 in
  Alcotest.check set_trace "dropped-forced trace" boxed mega.M.Compat.trace

(* {2 Engine: determinism and detector behaviour} *)

let small_cfg ?(detector = "hb-pc") ?(topology = M.Topology.Ring 2) ?(seed = 11) () =
  M.Engine.cfg ~procs:300 ~events:20_000 ~churn_rate:10.0 ~topology ~detector ~seed ()

let engine_deterministic () =
  let r1 = M.Engine.run (small_cfg ()) in
  let r2 = M.Engine.run (small_cfg ()) in
  Alcotest.(check string)
    "byte-identical deterministic summary"
    (M.Engine.deterministic_summary r1)
    (M.Engine.deterministic_summary r2);
  let r3 = M.Engine.run (small_cfg ~seed:12 ()) in
  Alcotest.(check bool)
    "different seed, different run" false
    (M.Engine.deterministic_summary r1 = M.Engine.deterministic_summary r3)

let engine_detects detector topology () =
  let r = M.Engine.run (small_cfg ~detector ~topology ()) in
  Alcotest.(check bool) "some churn happened" true (r.M.Engine.crashes + r.M.Engine.leaves > 0);
  Alcotest.(check bool) "faults were detected" true (r.M.Engine.detections > 0);
  Alcotest.(check bool)
    ("monitor not violated: " ^ Fmt.str "%a" Verdict.pp r.M.Engine.monitor_verdict)
    true
    (match r.M.Engine.monitor_verdict with Verdict.Violated _ -> false | _ -> true);
  Alcotest.(check bool) "CN gate" true (M.Engine.ok r)

let engine_churnless () =
  (* no churn: nothing to detect, nothing falsely suspected for long —
     the monitor must come out clean *)
  let c =
    M.Engine.cfg ~procs:200 ~events:15_000 ~churn_rate:0.0 ~topology:M.Topology.Grid
      ~detector:"hb-pc" ~seed:5 ()
  in
  let r = M.Engine.run c in
  Alcotest.(check int) "no crashes" 0 r.M.Engine.crashes;
  Alcotest.(check int) "no detections" 0 r.M.Engine.detections;
  Alcotest.(check bool) "monitor ok" true (M.Engine.ok r)

let engine_join_interning () =
  let c =
    M.Engine.cfg ~procs:100 ~events:30_000 ~churn_rate:30.0 ~topology:(M.Topology.Ring 2)
      ~detector:"hb-pc" ~seed:21 ()
  in
  let r = M.Engine.run c in
  Alcotest.(check bool) "joins happened" true (r.M.Engine.joins > 0);
  Alcotest.(check int)
    "universe grew by the joins" (100 + r.M.Engine.joins)
    r.M.Engine.final_count

(* {2 Sampled monitor} *)

let sample_clean () =
  let s = M.Sample.create ~s:8 ~window:64 in
  M.Sample.crash s 2;
  M.Sample.susp s ~observer:1 ~target:2 ~suspected:true;
  (* transient false suspicion, corrected *)
  M.Sample.susp s ~observer:1 ~target:3 ~suspected:true;
  M.Sample.susp s ~observer:1 ~target:3 ~suspected:false;
  let v, clauses = M.Sample.finalize s ~final_dead:(fun q -> q = 2) ~completeness:true in
  Alcotest.(check bool) ("verdict sat: " ^ Fmt.str "%a" Verdict.pp v) true (Verdict.is_sat v);
  Alcotest.(check int) "three clauses" 3 (List.length clauses)

let sample_self_suspicion_violates () =
  let s = M.Sample.create ~s:4 ~window:64 in
  (* no detector does this; the monitor must catch it if one did *)
  M.Sample.susp s ~observer:2 ~target:2 ~suspected:true;
  let v, _ = M.Sample.finalize s ~final_dead:(fun _ -> false) ~completeness:false in
  (* self-suspicions are filtered at the matrix boundary, so this must
     be clean — the matrix never records (o, o) *)
  Alcotest.(check bool) "self pair ignored" true (Verdict.is_sat v)

let sample_window_eviction () =
  let s = M.Sample.create ~s:4 ~window:16 in
  M.Sample.crash s 1;
  M.Sample.susp s ~observer:0 ~target:1 ~suspected:true;
  (* push enough noise to evict the crash and the suspicion *)
  for _ = 1 to 40 do
    M.Sample.susp s ~observer:2 ~target:3 ~suspected:true;
    M.Sample.susp s ~observer:2 ~target:3 ~suspected:false
  done;
  let v, _ = M.Sample.finalize s ~final_dead:(fun q -> q = 1) ~completeness:false in
  Alcotest.(check bool)
    ("evicted state folds into the base snapshot: " ^ Fmt.str "%a" Verdict.pp v)
    true (Verdict.is_sat v)

let suite =
  [ Alcotest.test_case "calendar: same-time FIFO" `Quick calendar_fifo;
    Alcotest.test_case "calendar: wheel horizon and heap" `Quick calendar_horizon;
    Alcotest.test_case "calendar: clamped immediate events" `Quick calendar_immediate;
    QCheck_alcotest.to_alcotest prop_differential;
    Alcotest.test_case "differential: pinned corners" `Quick differential_pinned;
    Alcotest.test_case "engine: deterministic at fixed seed" `Quick engine_deterministic;
    Alcotest.test_case "engine: hb-pc detects churn (ring)" `Quick
      (engine_detects "hb-pc" (M.Topology.Ring 2));
    Alcotest.test_case "engine: vcube detects churn (hypercube)" `Quick
      (engine_detects "vcube" M.Topology.Hypercube);
    Alcotest.test_case "engine: churnless run is clean" `Quick engine_churnless;
    Alcotest.test_case "engine: joiners are interned and adopted" `Quick engine_join_interning;
    Alcotest.test_case "sample: crash + suspicion is Sat" `Quick sample_clean;
    Alcotest.test_case "sample: self pairs filtered" `Quick sample_self_suspicion_violates;
    Alcotest.test_case "sample: window eviction keeps exactness" `Quick sample_window_eviction;
  ]
