(* Golden vectors and qcheck properties for the splitmix64 seed
   derivation (Scheduler.Seed) behind the parallel experiment runner.
   The derivation must be (a) stable across versions — the golden
   vectors pin it — and (b) collision-free across the (key, index)
   pairs of a sweep, so no two matrix cells share a scheduler seed. *)

open Afd_ioa

let golden = 0x9e3779b97f4a7c15L

(* The first three outputs of the reference splitmix64 stream seeded
   with 0 are mix64(k * golden) for k = 1, 2, 3.  Pinning them proves
   [mix64] is the Steele-Lea-Flood finalizer, not a lookalike. *)
let test_mix64_reference () =
  let check k expect =
    Alcotest.(check int64)
      (Printf.sprintf "mix64(%d * golden)" k)
      expect
      (Scheduler.Seed.mix64 (Int64.mul (Int64.of_int k) golden))
  in
  check 1 0xE220A8397B1DCDAFL;
  check 2 0x6E789E6AA1B965F4L;
  check 3 0x06C45D188009454FL

(* Any change to the derivation silently reseeds every experiment in
   BENCH.json; this golden vector forces such a change to be explicit. *)
let test_derive_golden () =
  Alcotest.(check (list int))
    "derive ~root:42 ~key:\"E1.omega\" over indices 0-4"
    [ 1716765618302146912;
      4399002401112993793;
      4448027821325446042;
      334720682438423586;
      1670140343467387876
    ]
    (List.init 5 (fun i -> Scheduler.Seed.derive ~root:42 ~key:"E1.omega" ~index:i));
  Alcotest.(check (list int))
    "derive ~root:7 ~key:\"witness\" over indices 0-2"
    [ 969093086627286985; 908769538675487606; 591168567809123946 ]
    (List.init 3 (fun i -> Scheduler.Seed.derive ~root:7 ~key:"witness" ~index:i))

let key_gen = QCheck2.Gen.(string_size ~gen:printable (int_range 0 12))
let cell_gen = QCheck2.Gen.(pair key_gen (int_range 0 1000))

let prop_distinct_cells_distinct_seeds =
  QCheck2.Test.make ~name:"distinct (key, index) pairs yield distinct seeds"
    ~count:10_000
    QCheck2.Gen.(pair cell_gen cell_gen)
    (fun ((k1, i1), (k2, i2)) ->
      ((k1, i1) = (k2, i2))
      || Scheduler.Seed.derive ~root:5 ~key:k1 ~index:i1
         <> Scheduler.Seed.derive ~root:5 ~key:k2 ~index:i2)

let prop_nonnegative_and_pure =
  QCheck2.Test.make ~name:"derivation is nonnegative and a pure function"
    ~count:1_000
    QCheck2.Gen.(pair (int_range (-1000) 1000) cell_gen)
    (fun (root, (key, index)) ->
      let a = Scheduler.Seed.derive ~root ~key ~index in
      let b = Scheduler.Seed.derive ~root ~key ~index in
      a >= 0 && a = b)

let prop_root_sensitivity =
  QCheck2.Test.make ~name:"distinct roots reseed every stream" ~count:1_000
    QCheck2.Gen.(triple (int_range 0 100_000) (int_range 0 100_000) cell_gen)
    (fun (r1, r2, (key, index)) ->
      r1 = r2
      || Scheduler.Seed.derive ~root:r1 ~key ~index
         <> Scheduler.Seed.derive ~root:r2 ~key ~index)

let suite =
  [ Alcotest.test_case "mix64 reference vectors" `Quick test_mix64_reference;
    Alcotest.test_case "derivation golden vectors" `Quick test_derive_golden;
    QCheck_alcotest.to_alcotest prop_distinct_cells_distinct_seeds;
    QCheck_alcotest.to_alcotest prop_nonnegative_and_pure;
    QCheck_alcotest.to_alcotest prop_root_sensitivity;
  ]
