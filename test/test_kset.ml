(* k-set agreement over Psi_k: at most k distinct location-valued
   decisions, and the bound is genuinely attained (not collapsing to
   consensus). *)

open Afd_ioa
open Afd_core
open Afd_system
module C = Afd_consensus

let run ~n ~k ~crash_at ~seed ~steps =
  let crashable =
    List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at
  in
  let net = C.Kset.net ~n ~k ~crashable in
  (Net.run net ~seed ~crash_at ~steps).Net.trace

let test_sweep () =
  List.iter
    (fun (seed, crash_at) ->
      let t = run ~n:4 ~k:2 ~crash_at ~seed ~steps:9000 in
      match C.Kset.check ~n:4 ~k:2 t with
      | Verdict.Sat -> ()
      | v -> Alcotest.failf "seed %d: %a" seed Verdict.pp v)
    [ (1, []); (2, [ (40, 1) ]); (3, [ (25, 3) ]); (4, [ (60, 0) ]); (5, []) ]

let test_bound_attained () =
  (* at least one run decides 2 distinct values: the problem is weaker
     than consensus, as the detector hierarchy predicts *)
  let attained =
    List.exists
      (fun seed ->
        let t = run ~n:4 ~k:2 ~crash_at:[] ~seed ~steps:9000 in
        List.length (List.sort_uniq Loc.compare (List.map snd (C.Kset.decisions t))) = 2)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "two distinct values in some run" true attained

let test_k1_is_consensus () =
  (* with k = 1 the protocol degenerates to (location-valued) consensus *)
  List.iter
    (fun seed ->
      let t = run ~n:3 ~k:1 ~crash_at:[ (30, 2) ] ~seed ~steps:8000 in
      (match C.Kset.check ~n:3 ~k:1 t with
      | Verdict.Sat -> ()
      | v -> Alcotest.failf "seed %d: %a" seed Verdict.pp v);
      let distinct = List.sort_uniq Loc.compare (List.map snd (C.Kset.decisions t)) in
      Alcotest.(check int) "single value" 1 (List.length distinct))
    [ 1; 2; 3 ]

let test_monitors () =
  let d at v = Act.Decide_id { at; v } in
  Alcotest.(check bool) "3 values vs k=2" true
    (Verdict.is_violated (C.Kset.k_agreement ~k:2 [ d 0 0; d 1 1; d 2 2 ]));
  Alcotest.(check bool) "2 values vs k=2 fine" true
    (Verdict.is_sat (C.Kset.k_agreement ~k:2 [ d 0 0; d 1 1; d 2 1 ]));
  Alcotest.(check bool) "double decision" true
    (Verdict.is_violated (C.Kset.integrity [ d 0 0; d 0 0 ]));
  Alcotest.(check bool) "decision after crash" true
    (Verdict.is_violated (C.Kset.integrity [ Act.Crash 0; d 0 1 ]));
  match C.Kset.termination ~n:2 [ d 0 0 ] with
  | Verdict.Undecided _ -> ()
  | v -> Alcotest.failf "expected undecided: %a" Verdict.pp v

let test_psi_stream_valid () =
  let t = run ~n:4 ~k:2 ~crash_at:[ (40, 1) ] ~seed:2 ~steps:8000 in
  match
    Afd.check (Psi_k.spec ~k:2) ~n:4
      (Act.fd_trace_set ~detector:C.Kset.detector_name t)
  with
  | Verdict.Sat -> ()
  | v -> Alcotest.failf "embedded Psi_2 stream: %a" Verdict.pp v

let suite =
  [ Alcotest.test_case "k=2 sweep over fault patterns" `Quick test_sweep;
    Alcotest.test_case "k-bound genuinely attained" `Quick test_bound_attained;
    Alcotest.test_case "k=1 degenerates to consensus" `Quick test_k1_is_consensus;
    Alcotest.test_case "monitors" `Quick test_monitors;
    Alcotest.test_case "embedded Psi_2 stream valid" `Quick test_psi_stream_valid;
  ]
