(* Test runner aggregating all suites.  `dune runtest` runs everything
   except `Slow` cases; `dune exec test/main.exe -- -e` includes them. *)

let () =
  Alcotest.run "afd"
    [ ("units", Test_units.suite);
      ("ioa", Test_ioa.suite);
      ("composition-theorems", Test_composition_theorems.suite);
      ("trace-ops", Test_trace_ops.suite);
      ("afd-specs", Test_afd_specs.suite);
      ("self-impl", Test_self_impl.suite);
      ("reductions", Test_reductions.suite);
      ("system", Test_system.suite);
      ("consensus", Test_consensus.suite);
      ("bounded", Test_bounded.suite);
      ("tree", Test_tree.suite);
      ("realistic-fd", Test_realistic.suite);
      ("trb", Test_trb.suite);
      ("participant", Test_participant.suite);
      ("catalog-wide", Test_catalog_wide.suite);
      ("random-faults", Test_random_faults.suite);
      ("sigma-omega", Test_synod_sigma.suite);
      ("channel-variants", Test_channel_variants.suite);
      ("k-set", Test_kset.suite);
      ("lint", Test_lint.suite);
      ("symm", Test_symm.suite);
      ("space", Test_space.suite);
      ("pspace", Test_pspace.suite);
      ("cspace", Test_cspace.suite);
      ("live", Test_live.suite);
      ("prop", Test_prop.suite);
      ("sched-fairness", Test_sched_fairness.suite);
      ("sched-stream", Test_sched_stream.suite);
      ("retention-matrix", Test_retention_matrix.suite);
      ("seed-derive", Test_seed_derive.suite);
      ("runner", Test_runner.suite);
      ("mega", Test_mega.suite);
      ("heartbeat-loss", Test_heartbeat_loss.suite);
    ]
