(* The message-passing heartbeat detector under message loss: the
   adaptive timeout must absorb bounded (drop-every-k) channel loss
   the same way it absorbs bounded delay — transient false suspicions
   are fine, permanent ones are not, and a real crash must still be
   detected.  Everything is judged by the online Ev_perfect monitor
   (heartbeat predates lib/prop; this wires its behaviour through the
   monitor), never by ad-hoc trace scans. *)

open Afd_ioa
open Afd_core
open Afd_system

let hb_lossy_trace ~n ~drop_every ~seed ~crash_at ~steps =
  let net =
    Heartbeat.net
      ~channels:(Channel.lossy_pairs ~n ~drop_every)
      ~n ~initial_timeout:2
      ~crashable:(List.fold_left (fun s (_, i) -> Loc.Set.add i s) Loc.Set.empty crash_at)
      ()
  in
  Act.fd_trace_set ~detector:Heartbeat.detector_name
    (Net.run net ~seed ~crash_at ~steps).Net.trace

(* Stream a trace through the spec's online monitor. *)
let monitor_verdict ~n trace =
  match Afd.monitor Ev_perfect.spec ~n with
  | None -> Alcotest.fail "EvP spec has no compiled formula"
  | Some m ->
    List.iter (Afd_prop.Monitor.observe m) trace;
    Afd_prop.Monitor.verdict m

let test_loss_converges () =
  (* crash-free: every live pair keeps exchanging (1 - 1/k of the)
     heartbeats, so timeout adaptation must reach eventual accuracy *)
  let n = 3 in
  List.iter
    (fun (seed, drop_every) ->
      let t = hb_lossy_trace ~n ~drop_every ~seed ~crash_at:[] ~steps:2500 in
      match monitor_verdict ~n t with
      | Verdict.Sat -> ()
      | v ->
        Alcotest.failf "seed %d drop_every %d: %a" seed drop_every Verdict.pp v)
    [ (1, 2); (2, 3); (3, 5); (9, 2) ]

let test_loss_with_crash_detected () =
  (* a real crash under loss: convergence must still single out the
     faulty location — loss delays detection, it cannot mask it *)
  let n = 3 in
  List.iter
    (fun seed ->
      let t = hb_lossy_trace ~n ~drop_every:2 ~seed ~crash_at:[ (60, 2) ] ~steps:3000 in
      match monitor_verdict ~n t with
      | Verdict.Sat -> ()
      | v -> Alcotest.failf "seed %d: %a" seed Verdict.pp v)
    [ 4; 5; 6 ]

let test_recovery_after_false_suspicion () =
  (* under heavy loss the first timeouts fire prematurely; the monitor
     must see those false suspicions retracted (trust recovery), which
     is precisely what Sat-under-limit-extension certifies.  Also pin
     that suspicion did happen, so the run exercised recovery and not
     just quiet convergence. *)
  let n = 3 in
  let t = hb_lossy_trace ~n ~drop_every:2 ~seed:9 ~crash_at:[] ~steps:2500 in
  let some_false_suspicion =
    List.exists
      (function Fd_event.Output (_, s) -> not (Loc.Set.is_empty s) | _ -> false)
      t
  in
  Alcotest.(check bool) "some false suspicion occurred" true some_false_suspicion;
  match monitor_verdict ~n t with
  | Verdict.Sat -> ()
  | v -> Alcotest.failf "recovery failed: %a" Verdict.pp v

(* qcheck: across random seeds, drop periods and fault patterns, the
   monitor may be left Undecided by a short run but must never latch a
   violation — and doubling the budget must only move verdicts toward
   Sat (monotone recovery, the extension-run fallback). *)
let scenario_gen =
  QCheck2.Gen.(
    tup4 (int_bound 10_000) (map (fun k -> 2 + k) (int_bound 4))
      (int_bound 2 >|= function 0 -> [] | 1 -> [ (60, 2) ] | _ -> [ (40, 1); (80, 2) ])
      (map (fun s -> 1200 + (100 * s)) (int_bound 8)))

let prop_loss_never_violates =
  QCheck2.Test.make ~name:"lossy heartbeat: monitor never Violated; extension only helps"
    ~count:40 scenario_gen (fun (seed, drop_every, crash_at, steps) ->
      let n = 3 in
      let t = hb_lossy_trace ~n ~drop_every ~seed ~crash_at ~steps in
      let v = monitor_verdict ~n t in
      (not (Verdict.is_violated v))
      &&
      match v with
      | Verdict.Sat -> true
      | _ ->
        (* extension run: same scenario, double the budget *)
        let t2 = hb_lossy_trace ~n ~drop_every ~seed ~crash_at ~steps:(2 * steps) in
        not (Verdict.is_violated (monitor_verdict ~n t2)))

let suite =
  [ Alcotest.test_case "loss: adaptive timeout converges" `Quick test_loss_converges;
    Alcotest.test_case "loss: crash still detected" `Quick test_loss_with_crash_detected;
    Alcotest.test_case "loss: false suspicions retracted" `Quick
      test_recovery_after_false_suspicion;
    QCheck_alcotest.to_alcotest prop_loss_never_violates;
  ]
