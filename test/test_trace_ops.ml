(* Unit and property tests for Section 3.2's trace operations:
   validity, sampling, constrained reordering. *)

open Afd_ioa
open Afd_core

let ev_out i s = Fd_event.Output (i, Loc.Set.of_list s)
let crash i = Fd_event.Crash i

(* --- hand-written cases --- *)

let test_validity_ok () =
  let t = [ ev_out 0 []; ev_out 1 []; crash 1; ev_out 0 [ 1 ] ] in
  Alcotest.(check bool) "valid" true (Verdict.is_sat (Trace_ops.validity ~n:2 t))

let test_validity_output_after_crash () =
  let t = [ crash 1; ev_out 1 [] ] in
  Alcotest.(check bool) "violated" true
    (Verdict.is_violated (Trace_ops.validity ~n:2 t))

let test_validity_liveness_undecided () =
  let t = [ ev_out 0 [] ] in
  match Trace_ops.validity ~n:2 t with
  | Verdict.Undecided _ -> ()
  | v -> Alcotest.failf "expected undecided, got %a" Verdict.pp v

let equal_out = Loc.Set.equal

let test_sampling_checker () =
  let t = [ ev_out 0 []; crash 1; crash 1; ev_out 0 [ 1 ]; ev_out 0 [ 1 ] ] in
  (* dropping the duplicate crash is a sampling *)
  let t1 = [ ev_out 0 []; crash 1; ev_out 0 [ 1 ]; ev_out 0 [ 1 ] ] in
  Alcotest.(check bool) "drop dup crash" true (Trace_ops.is_sampling ~equal_out ~of_:t t1);
  (* dropping a live location's output is NOT a sampling *)
  let t2 = [ crash 1; crash 1; ev_out 0 [ 1 ]; ev_out 0 [ 1 ] ] in
  Alcotest.(check bool) "dropping live output rejected" false
    (Trace_ops.is_sampling ~equal_out ~of_:t t2);
  (* dropping the only crash is NOT a sampling *)
  let t3 = [ ev_out 0 []; ev_out 0 [ 1 ]; ev_out 0 [ 1 ] ] in
  Alcotest.(check bool) "dropping first crash rejected" false
    (Trace_ops.is_sampling ~equal_out ~of_:t t3)

let test_sampling_faulty_prefix () =
  let t = [ ev_out 1 []; ev_out 1 [ 0 ]; crash 1 ] in
  (* keep a prefix of the faulty location's outputs: ok *)
  let t1 = [ ev_out 1 []; crash 1 ] in
  Alcotest.(check bool) "prefix of faulty outputs" true
    (Trace_ops.is_sampling ~equal_out ~of_:t t1);
  (* keep a non-prefix subsequence: rejected *)
  let t2 = [ ev_out 1 [ 0 ]; crash 1 ] in
  Alcotest.(check bool) "non-prefix rejected" false
    (Trace_ops.is_sampling ~equal_out ~of_:t t2)

let test_reordering_checker () =
  let t = [ ev_out 0 []; ev_out 1 []; crash 1; ev_out 0 [ 1 ] ] in
  (* swapping the two leading outputs at different locations is fine *)
  let t1 = [ ev_out 1 []; ev_out 0 []; crash 1; ev_out 0 [ 1 ] ] in
  Alcotest.(check bool) "swap across locations ok" true
    (Trace_ops.is_constrained_reordering ~equal_out ~of_:t t1);
  (* moving an event before a crash that preceded it is forbidden *)
  let t2 = [ ev_out 0 []; ev_out 1 []; ev_out 0 [ 1 ]; crash 1 ] in
  Alcotest.(check bool) "event escaping its crash rejected" false
    (Trace_ops.is_constrained_reordering ~equal_out ~of_:t t2);
  (* permuting same-location events is forbidden *)
  let t3 = [ ev_out 0 [ 1 ]; ev_out 1 []; crash 1; ev_out 0 [] ] in
  Alcotest.(check bool) "same-location swap rejected" false
    (Trace_ops.is_constrained_reordering ~equal_out ~of_:t t3)

let test_count_reorderings () =
  (* two events at different locations, no crash: 2 linear extensions *)
  let t = [ ev_out 0 []; ev_out 1 [] ] in
  Alcotest.(check int) "two reorderings" 2 (Trace_ops.count_reorderings_upto ~limit:100 t);
  (* crash first pins everything after it *)
  let t = [ crash 0; ev_out 1 []; ev_out 2 [] ] in
  Alcotest.(check int) "crash pins suffix order partially" 2
    (Trace_ops.count_reorderings_upto ~limit:100 t);
  let t = [ ev_out 0 []; ev_out 1 []; ev_out 2 [] ] in
  Alcotest.(check int) "3 distinct locations: 6" 6
    (Trace_ops.count_reorderings_upto ~limit:100 t)

(* --- property tests --- *)

(* Generator of random FD traces over n locations with set payloads. *)
let trace_gen n =
  QCheck2.Gen.(
    let event =
      frequency
        [ (1, map (fun i -> Fd_event.Crash (i mod n)) (int_bound (n - 1)));
          ( 6,
            map2
              (fun i s -> Fd_event.Output (i mod n, Loc.Set.of_list s))
              (int_bound (n - 1))
              (list_size (int_bound n) (int_bound (n - 1))) );
        ]
    in
    list_size (int_range 0 20) event)

let prop_sampling_is_sampling =
  QCheck2.Test.make ~name:"gen_sampling produces samplings" ~count:300 (trace_gen 3)
    (fun t ->
      let rng = Random.State.make [| 11 |] in
      let t' = Trace_ops.gen_sampling rng t in
      Trace_ops.is_sampling ~equal_out ~of_:t t')

let prop_reordering_is_reordering =
  QCheck2.Test.make ~name:"gen_reordering produces constrained reorderings" ~count:300
    (trace_gen 3) (fun t ->
      let rng = Random.State.make [| 13 |] in
      let t' = Trace_ops.gen_reordering rng t in
      Trace_ops.is_constrained_reordering ~equal_out ~of_:t t')

let prop_reordering_preserves_validity =
  QCheck2.Test.make ~name:"constrained reordering preserves validity verdicts" ~count:300
    (trace_gen 3) (fun t ->
      let rng = Random.State.make [| 17 |] in
      let t' = Trace_ops.gen_reordering rng t in
      (* safety violation status is invariant under constrained reordering *)
      Bool.equal
        (Verdict.is_violated (Trace_ops.validity ~n:3 t))
        (Verdict.is_violated (Trace_ops.validity ~n:3 t')))

let prop_sampling_preserves_validity_sat =
  QCheck2.Test.make ~name:"sampling of a valid trace stays valid (safety)" ~count:300
    (trace_gen 3) (fun t ->
      let rng = Random.State.make [| 19 |] in
      if Verdict.is_violated (Trace_ops.validity ~n:3 t) then true
      else
        let t' = Trace_ops.gen_sampling rng t in
        not (Verdict.is_violated (Trace_ops.validity ~n:3 t')))

let prop_sampling_idempotent_on_live =
  QCheck2.Test.make ~name:"sampling keeps live locations' outputs" ~count:300
    (trace_gen 3) (fun t ->
      let rng = Random.State.make [| 23 |] in
      let t' = Trace_ops.gen_sampling rng t in
      let live = Fd_event.live ~n:3 t in
      Loc.Set.for_all
        (fun i ->
          List.length (Fd_event.outputs_at i t) = List.length (Fd_event.outputs_at i t'))
        live)

let prop_sampling_composes =
  QCheck2.Test.make ~name:"a sampling of a sampling is a sampling" ~count:300
    (trace_gen 3) (fun t ->
      let rng = Random.State.make [| 31 |] in
      let t1 = Trace_ops.gen_sampling rng t in
      let t2 = Trace_ops.gen_sampling rng t1 in
      Trace_ops.is_sampling ~equal_out ~of_:t t2)

let prop_reordering_composes =
  QCheck2.Test.make ~name:"reorderings compose" ~count:300 (trace_gen 3) (fun t ->
      let rng = Random.State.make [| 37 |] in
      let t1 = Trace_ops.gen_reordering rng t in
      let t2 = Trace_ops.gen_reordering rng t1 in
      Trace_ops.is_constrained_reordering ~equal_out ~of_:t t2)

let prop_identity_is_both =
  QCheck2.Test.make ~name:"identity is a sampling and a reordering" ~count:200
    (trace_gen 3) (fun t ->
      Trace_ops.is_sampling ~equal_out ~of_:t t
      && Trace_ops.is_constrained_reordering ~equal_out ~of_:t t)

let prop_reordering_is_permutation =
  QCheck2.Test.make ~name:"reordering is a permutation" ~count:300 (trace_gen 3)
    (fun t ->
      let rng = Random.State.make [| 29 |] in
      let t' = Trace_ops.gen_reordering rng t in
      Afd_ioa.Trace.is_permutation ~equal:(Fd_event.equal equal_out) t t')

let suite =
  [ Alcotest.test_case "validity ok" `Quick test_validity_ok;
    Alcotest.test_case "validity: output after crash" `Quick test_validity_output_after_crash;
    Alcotest.test_case "validity: liveness undecided" `Quick test_validity_liveness_undecided;
    Alcotest.test_case "sampling checker" `Quick test_sampling_checker;
    Alcotest.test_case "sampling: faulty prefix rule" `Quick test_sampling_faulty_prefix;
    Alcotest.test_case "reordering checker" `Quick test_reordering_checker;
    Alcotest.test_case "reordering count" `Quick test_count_reorderings;
    QCheck_alcotest.to_alcotest prop_sampling_is_sampling;
    QCheck_alcotest.to_alcotest prop_reordering_is_reordering;
    QCheck_alcotest.to_alcotest prop_reordering_preserves_validity;
    QCheck_alcotest.to_alcotest prop_sampling_preserves_validity_sat;
    QCheck_alcotest.to_alcotest prop_sampling_idempotent_on_live;
    QCheck_alcotest.to_alcotest prop_reordering_is_permutation;
    QCheck_alcotest.to_alcotest prop_sampling_composes;
    QCheck_alcotest.to_alcotest prop_reordering_composes;
    QCheck_alcotest.to_alcotest prop_identity_is_both;
  ]
