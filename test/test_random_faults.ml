(* Randomized fault-injection properties: qcheck drives seeds, fault
   patterns, proposal assignments and scheduler policies; the safety
   clauses of every algorithm must hold on every run (liveness clauses
   may be Undecided when the pattern exceeds the tolerance or the
   budget, never Violated). *)

open Afd_ioa
open Afd_core
open Afd_system
module C = Afd_consensus

(* Generator for a fault scenario over n locations: up to [maxf]
   distinct crash locations with crash steps below [horizon]. *)
let scenario_gen ~n ~maxf ~horizon =
  QCheck2.Gen.(
    let crash =
      map2 (fun step loc -> (step, loc mod n)) (int_bound horizon) (int_bound (n - 1))
    in
    let dedup l =
      let seen = Hashtbl.create 4 in
      List.filter
        (fun (_, i) ->
          if Hashtbl.mem seen i then false
          else begin
            Hashtbl.add seen i ();
            true
          end)
        l
    in
    triple (int_bound 10_000) (map dedup (list_size (int_bound maxf) crash))
      (list_repeat n bool))

let crashable_of crash_at =
  List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at

let no_safety_violation ~n verdict_parts =
  List.for_all (fun v -> not (Verdict.is_violated v)) (verdict_parts ~n)

let prop_flood_safety =
  let n = 3 in
  QCheck2.Test.make ~name:"flood+P: safety under random faults" ~count:60
    (scenario_gen ~n ~maxf:2 ~horizon:120)
    (fun (seed, crash_at, values) ->
      let net = C.Flood_p.net ~n ~f:2 ~values ~crashable:(crashable_of crash_at) () in
      let r = Net.run net ~seed ~crash_at ~steps:2500 in
      let t = r.Net.trace in
      no_safety_violation ~n (fun ~n ->
          [ C.Spec.agreement t;
            C.Spec.validity t;
            C.Spec.crash_validity t;
            C.Spec.termination ~n t;
          ]))

let prop_flood_liveness_within_tolerance =
  let n = 3 in
  QCheck2.Test.make ~name:"flood+P: decides under random faults (f=2)" ~count:40
    (scenario_gen ~n ~maxf:2 ~horizon:100)
    (fun (seed, crash_at, values) ->
      let net = C.Flood_p.net ~n ~f:2 ~values ~crashable:(crashable_of crash_at) () in
      let r = Net.run net ~seed ~crash_at ~steps:3500 in
      Verdict.is_sat (C.Spec.check ~n ~f:2 r.Net.trace))

let prop_synod_safety_any_faults =
  let n = 3 in
  QCheck2.Test.make ~name:"synod+Omega: safety even beyond minority" ~count:60
    (scenario_gen ~n ~maxf:2 ~horizon:150)
    (fun (seed, crash_at, values) ->
      let net = C.Synod_omega.net ~n ~values ~crashable:(crashable_of crash_at) () in
      let r = Net.run net ~seed ~crash_at ~steps:4000 in
      let t = r.Net.trace in
      no_safety_violation ~n (fun ~n ->
          [ C.Spec.agreement t;
            C.Spec.validity t;
            C.Spec.crash_validity t;
            C.Spec.termination ~n t;
          ]))

let prop_synod_decides_minority =
  let n = 3 in
  QCheck2.Test.make ~name:"synod+Omega: decides with at most one crash" ~count:30
    (scenario_gen ~n ~maxf:1 ~horizon:100)
    (fun (seed, crash_at, values) ->
      let net = C.Synod_omega.net ~n ~values ~crashable:(crashable_of crash_at) () in
      let r = Net.run net ~seed ~crash_at ~steps:8000 in
      Verdict.is_sat (C.Spec.check ~n ~f:1 r.Net.trace))

let prop_trb_safety =
  let n = 3 in
  QCheck2.Test.make ~name:"TRB: never violated under random faults" ~count:60
    (scenario_gen ~n ~maxf:2 ~horizon:80)
    (fun (seed, crash_at, values) ->
      let value = List.hd values in
      let net = C.Trb.net ~n ~sender:0 ~value ~crashable:(crashable_of crash_at) in
      let r = Net.run net ~seed ~crash_at ~steps:2500 in
      not (Verdict.is_violated (C.Trb.check ~n ~sender:0 r.Net.trace)))

let prop_detector_streams_always_valid =
  (* Whatever the fault pattern, the embedded FD-P stream of a flooding
     run satisfies validity (never an output after a crash). *)
  let n = 3 in
  QCheck2.Test.make ~name:"embedded FD stream: validity under random faults" ~count:60
    (scenario_gen ~n ~maxf:2 ~horizon:120)
    (fun (seed, crash_at, values) ->
      let net = C.Flood_p.net ~n ~f:2 ~values ~crashable:(crashable_of crash_at) () in
      let r = Net.run net ~seed ~crash_at ~steps:1500 in
      let fd = Act.fd_trace_set ~detector:"P" r.Net.trace in
      not (Verdict.is_violated (Trace_ops.validity ~n fd)))

let prop_heartbeat_validity =
  let n = 3 in
  QCheck2.Test.make ~name:"heartbeat detector: validity under random faults" ~count:40
    (scenario_gen ~n ~maxf:2 ~horizon:100)
    (fun (seed, crash_at, _values) ->
      let net = Heartbeat.net ~n ~initial_timeout:2 ~crashable:(crashable_of crash_at) () in
      let r = Net.run net ~seed ~crash_at ~steps:1200 in
      let fd = Act.fd_trace_set ~detector:Heartbeat.detector_name r.Net.trace in
      not (Verdict.is_violated (Trace_ops.validity ~n fd)))

let prop_channels_fifo_in_all_runs =
  (* queues_of_trace raises if any receive is out of order or
     unmatched: replaying arbitrary runs through it is a FIFO check. *)
  let n = 3 in
  QCheck2.Test.make ~name:"channels: FIFO discipline in every run" ~count:40
    (scenario_gen ~n ~maxf:2 ~horizon:100)
    (fun (seed, crash_at, values) ->
      let net = C.Synod_omega.net ~n ~values ~crashable:(crashable_of crash_at) () in
      let r = Net.run net ~seed ~crash_at ~steps:2500 in
      match Channel.queues_of_trace r.Net.trace with
      | _ -> true
      | exception Invalid_argument _ -> false)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_flood_safety;
      prop_flood_liveness_within_tolerance;
      prop_synod_safety_any_faults;
      prop_synod_decides_minority;
      prop_trb_safety;
      prop_detector_streams_always_valid;
      prop_heartbeat_validity;
      prop_channels_fifo_in_all_runs;
    ]
