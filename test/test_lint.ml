(* Tests for the static well-formedness lint (lib/analysis).

   Two directions: every rule fires on its deliberately malformed
   fixture (Fixtures.all pairs each rule id with an automaton violating
   exactly that side condition), and the real catalog gets a clean bill
   of health.  Also covers the shared-kernel refactor of
   Automaton.check_input_enabled / Composition.check_compatible: empty
   probe lists now fail loudly instead of silently passing. *)

open Afd_ioa
open Afd_analysis

let rule_ids report =
  List.map (fun f -> f.Report.rule) report.Report.findings

let fires id entry =
  let report = Engine.run_entry ~origin:"fixture" entry in
  List.mem id (rule_ids report)

let test_each_rule_fires () =
  List.iter
    (fun (id, entry) ->
      Alcotest.(check bool)
        (Printf.sprintf "rule %s fires on its fixture" id)
        true (fires id entry))
    Fixtures.all

let test_fixtures_cover_all_rules () =
  (* every shipped rule has a malformed fixture exercising it *)
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "rule %s has a fixture" id)
        true
        (Option.is_some (Fixtures.find id)))
    Rules.ids

let test_well_formed_fixture_clean () =
  let report = Engine.run_entry ~origin:"fixture" Fixtures.well_formed in
  Alcotest.(check (list string)) "no findings at all" [] (rule_ids report)

let test_malformed_fixtures_error () =
  (* error-severity fixtures must make the report (and hence the CLI)
     fail; warning-severity rules only fail under --strict *)
  List.iter
    (fun (id, entry) ->
      let report = Engine.run_entry ~origin:"fixture" entry in
      match Rule.find Rules.all id with
      | None -> Alcotest.failf "fixture %s names no rule" id
      | Some r ->
        let expect_error = r.Rule.severity = Report.Error in
        Alcotest.(check bool)
          (Printf.sprintf "fixture %s yields error findings iff rule is error" id)
          expect_error
          (Report.has_errors report))
    Fixtures.all

let test_catalog_clean () =
  let report = Engine.run (Catalog.items ()) in
  Alcotest.(check int) "zero error findings on the real catalog" 0
    (List.length (Report.errors report));
  Alcotest.(check int) "zero warning findings on the real catalog" 0
    (List.length (Report.warnings report))

let test_catalog_breadth () =
  let report = Engine.run (Catalog.items ()) in
  Alcotest.(check bool) "at least 15 registered subjects" true
    (report.Report.subjects_checked >= 15);
  Alcotest.(check bool) "at least 8 rules" true (report.Report.rules_run >= 8);
  let specs =
    List.filter
      (fun it -> match it.Registry.entry with Registry.Spec _ -> true | _ -> false)
      (Catalog.items ())
  in
  Alcotest.(check bool) "all 11 detector specs are registered" true
    (List.length specs >= 11)

let test_allowlisted_raw_spec_is_silent () =
  (* the legacy-wrapper allowlist must suppress prop-based-spec — and
     nothing else fires on a spec entry *)
  let report =
    Engine.run_entry ~origin:"fixture" Fixtures.allowlisted_raw_spec
  in
  Alcotest.(check (list string)) "no findings on the allowlisted raw spec" []
    (rule_ids report)

let test_rule_selection () =
  (* running only input-enabled over the task-nondeterminism fixture
     finds nothing: selection really restricts the rule set *)
  match Fixtures.find "task-determinism" with
  | None -> Alcotest.fail "missing fixture"
  | Some entry ->
    let rules =
      match Rule.find Rules.all "input-enabled" with
      | Some r -> [ r ]
      | None -> Alcotest.fail "missing rule"
    in
    let report = Engine.run_entry ~rules ~origin:"fixture" entry in
    Alcotest.(check (list string)) "selected rule finds nothing here" []
      (rule_ids report)

let test_report_shape () =
  match Fixtures.find "task-determinism" with
  | None -> Alcotest.fail "missing fixture"
  | Some entry ->
    let report = Engine.run_entry ~origin:"fixture" entry in
    let f =
      match Report.errors report with
      | f :: _ -> f
      | [] -> Alcotest.fail "expected an error finding"
    in
    Alcotest.(check string) "origin recorded" "fixture" f.Report.where.Report.origin;
    Alcotest.(check bool) "task location recorded" true
      (Option.is_some f.Report.where.Report.task);
    (* the JSON rendering embeds the rule id and is parse-shaped *)
    let json = Report.to_json report in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i =
        i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "json mentions the rule" true
      (contains json "\"rule\":\"task-determinism\"");
    Alcotest.(check bool) "json has a summary" true
      (contains json "\"summary\":")

(* --- the graph rules (exhaustive exploration, Rules.mc) --- *)

let mc_universe = Rules.all @ Rules.mc

let test_each_mc_rule_fires () =
  List.iter
    (fun (id, entry) ->
      let report = Engine.run_entry ~rules:mc_universe ~origin:"fixture" entry in
      Alcotest.(check bool)
        (Printf.sprintf "graph rule %s fires on its fixture" id)
        true
        (List.mem id (rule_ids report)))
    Fixtures.mc

let test_mc_fixtures_cover_all_rules () =
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "graph rule %s has a fixture" id)
        true
        (Option.is_some (Fixtures.find id)))
    Rules.mc_ids

let test_mc_fixture_severities () =
  (* reachable-input-enabled and deadlock are errors; race-pair and
     dead-transition are info-only and must not fail the report *)
  List.iter
    (fun (id, entry) ->
      let report = Engine.run_entry ~rules:mc_universe ~origin:"fixture" entry in
      match Rule.find mc_universe id with
      | None -> Alcotest.failf "fixture %s names no rule" id
      | Some r ->
        let expect_error = r.Rule.severity = Report.Error in
        Alcotest.(check bool)
          (Printf.sprintf "fixture %s yields error findings iff rule is error" id)
          expect_error
          (Report.has_errors report))
    Fixtures.mc

let test_catalog_clean_with_mc_rules () =
  (* the full rule universe (--mc mode) still gives the catalog a clean
     bill of health: no errors, no warnings; info findings are fine *)
  let report = Engine.run ~rules:mc_universe (Catalog.items ()) in
  Alcotest.(check int) "zero error findings with graph rules on" 0
    (List.length (Report.errors report));
  Alcotest.(check int) "zero warning findings with graph rules on" 0
    (List.length (Report.warnings report))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1))
  in
  go 0

let test_verdict_surfaces_in_messages () =
  (* satellite: rule messages must say whether the exploration was
     exhaustive or hit the state budget *)
  match Fixtures.find "dead-task" with
  | None -> Alcotest.fail "missing dead-task fixture"
  | Some entry ->
    let report = Engine.run_entry ~origin:"fixture" entry in
    let msgs =
      List.filter_map
        (fun f ->
          if String.equal f.Report.rule "dead-task" then Some f.Report.message
          else None)
        report.Report.findings
    in
    Alcotest.(check bool) "dead-task fired" true (msgs <> []);
    List.iter
      (fun m ->
        Alcotest.(check bool) "message carries the exploration verdict" true
          (contains m "exploration exhausted" || contains m "exploration truncated"))
      msgs

let test_explorations_in_report () =
  (* satellite: the JSON report carries per-subject exploration stats
     with explicit exhausted/truncated verdicts *)
  let report = Engine.run ~max_states:512 (Catalog.items ()) in
  Alcotest.(check bool) "explorations recorded" true
    (report.Report.explorations <> []);
  let json = Report.to_json report in
  Alcotest.(check bool) "json has an explorations array" true
    (contains json "\"explorations\":");
  Alcotest.(check bool) "json spells out the verdict" true
    (contains json "\"verdict\":\"exhausted\"")

(* --- the symmetry rules (equivariance analysis, Rules.symmetry) --- *)

let sym_universe = Rules.all @ Rules.mc @ Rules.symmetry

let test_each_symmetry_rule_fires () =
  List.iter
    (fun (id, entry) ->
      let report =
        Engine.run_entry ~rules:sym_universe ~symmetry:true ~origin:"fixture"
          entry
      in
      Alcotest.(check bool)
        (Printf.sprintf "symmetry rule %s fires on its fixture" id)
        true
        (List.mem id (rule_ids report)))
    Fixtures.symmetry

let test_symmetry_rules_silent_without_flag () =
  (* without ~symmetry:true the analyzer never runs, so the rules have
     nothing to report even over their own fixtures *)
  List.iter
    (fun (id, entry) ->
      let report =
        Engine.run_entry ~rules:sym_universe ~origin:"fixture" entry
      in
      Alcotest.(check bool)
        (Printf.sprintf "symmetry rule %s silent without the flag" id)
        false
        (List.mem id (rule_ids report)))
    Fixtures.symmetry

let test_symmetry_findings_are_info () =
  (* both symmetry rules are Info: a broken or missing declaration is
     advice about reduction opportunity, not a well-formedness error *)
  List.iter
    (fun (_, entry) ->
      let report =
        Engine.run_entry ~rules:sym_universe ~symmetry:true ~origin:"fixture"
          entry
      in
      Alcotest.(check bool) "no error findings" false (Report.has_errors report);
      Alcotest.(check (list string)) "no warning findings" []
        (List.map (fun f -> f.Report.rule) (Report.warnings report)))
    Fixtures.symmetry

let test_certifiable_fixture_quotients_silently () =
  let report =
    Engine.run_entry ~rules:sym_universe ~symmetry:true ~origin:"fixture"
      Fixtures.symmetry_certifiable
  in
  Alcotest.(check (list string)) "certified subject yields no findings" []
    (rule_ids report)

(* --- the exit-code contract (pinned without spawning processes) --- *)

let finding severity =
  { Report.rule = "r";
    severity;
    where = Report.subject ~origin:"fixture" "a";
    message = "m";
  }

let report ?explorations findings =
  Report.make ?explorations ~rules_run:1 ~subjects_checked:1 findings

let truncated_exploration =
  { Report.explored = "a"; exp_origin = "fixture"; states = 10; transitions = 9;
    verdict = "truncated"; exhaustive = false; por = false; slept = 0;
  }

let test_exit_code_contract () =
  let check name expect code = Alcotest.(check int) name expect code in
  check "clean report exits 0" 0 (Report.exit_code (report []));
  check "info findings exit 0" 0 (Report.exit_code (report [ finding Report.Info ]));
  check "errors exit 1" 1 (Report.exit_code (report [ finding Report.Error ]));
  check "warnings exit 0 by default" 0
    (Report.exit_code (report [ finding Report.Warning ]));
  check "warnings exit 1 under strict" 1
    (Report.exit_code ~strict:true (report [ finding Report.Warning ]));
  check "mc failure exits 1" 1 (Report.exit_code ~mc_fail:true (report []));
  let truncated = report ~explorations:[ truncated_exploration ] [] in
  check "truncation exits 0 by default" 0 (Report.exit_code truncated);
  check "truncation exits 2 under strict" 2
    (Report.exit_code ~strict:true truncated);
  check "mc truncation exits 2 under strict" 2
    (Report.exit_code ~strict:true ~mc_truncated:true (report []));
  (* 1 dominates 2: a report that is both wrong and sampled is first of
     all wrong *)
  check "errors dominate strict truncation" 1
    (Report.exit_code ~strict:true
       (report ~explorations:[ truncated_exploration ]
          [ finding Report.Error ]));
  check "mc failure dominates strict truncation" 1
    (Report.exit_code ~strict:true ~mc_fail:true ~mc_truncated:true (report []))

(* --- the refactored library-side checks (satellite: shared kernels) --- *)

let counter_probes = [ Fixtures.Tick 1; Fixtures.Tick 2; Fixtures.Reset ]

let test_check_input_enabled_empty () =
  (* the pre-refactor behavior silently returned Ok () here *)
  let c = Fixtures.counter ~name:"counter" ~limit:3 in
  (match Automaton.check_input_enabled c [ 0 ] [] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty probe list must not pass");
  (match Automaton.check_input_enabled c [] counter_probes with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty state list must not pass");
  match Automaton.check_input_enabled c [ 0; 1 ] counter_probes with
  | Ok () -> ()
  | Error e -> Alcotest.failf "well-formed counter rejected: %s" e

let test_check_compatible_empty () =
  let c =
    Composition.make ~name:"pair"
      [ Component.C (Fixtures.counter ~name:"counter" ~limit:3);
        Component.C Fixtures.listener;
      ]
  in
  (match Composition.check_compatible c ~probes:[] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty probe list must not pass");
  match Composition.check_compatible c ~probes:counter_probes with
  | Ok () -> ()
  | Error e -> Alcotest.failf "compatible pair rejected: %s" e

let suite =
  [ Alcotest.test_case "each rule fires on its fixture" `Quick test_each_rule_fires;
    Alcotest.test_case "every rule has a fixture" `Quick test_fixtures_cover_all_rules;
    Alcotest.test_case "well-formed fixture is clean" `Quick
      test_well_formed_fixture_clean;
    Alcotest.test_case "malformed fixtures produce errors" `Quick
      test_malformed_fixtures_error;
    Alcotest.test_case "catalog clean bill of health" `Quick test_catalog_clean;
    Alcotest.test_case "catalog breadth" `Quick test_catalog_breadth;
    Alcotest.test_case "allowlisted raw spec stays silent" `Quick
      test_allowlisted_raw_spec_is_silent;
    Alcotest.test_case "rule selection restricts the run" `Quick test_rule_selection;
    Alcotest.test_case "report locations and json" `Quick test_report_shape;
    Alcotest.test_case "each graph rule fires on its fixture" `Quick
      test_each_mc_rule_fires;
    Alcotest.test_case "every graph rule has a fixture" `Quick
      test_mc_fixtures_cover_all_rules;
    Alcotest.test_case "graph fixtures: error severity iff rule is error" `Quick
      test_mc_fixture_severities;
    Alcotest.test_case "catalog clean under the full rule universe" `Quick
      test_catalog_clean_with_mc_rules;
    Alcotest.test_case "rule messages surface the exploration verdict" `Quick
      test_verdict_surfaces_in_messages;
    Alcotest.test_case "report carries exploration stats" `Quick
      test_explorations_in_report;
    Alcotest.test_case "each symmetry rule fires on its fixture" `Quick
      test_each_symmetry_rule_fires;
    Alcotest.test_case "symmetry rules silent without the flag" `Quick
      test_symmetry_rules_silent_without_flag;
    Alcotest.test_case "symmetry findings are info-severity" `Quick
      test_symmetry_findings_are_info;
    Alcotest.test_case "certified fixture quotients silently" `Quick
      test_certifiable_fixture_quotients_silently;
    Alcotest.test_case "exit-code contract" `Quick test_exit_code_contract;
    Alcotest.test_case "check_input_enabled rejects empty probes" `Quick
      test_check_input_enabled_empty;
    Alcotest.test_case "check_compatible rejects empty probes" `Quick
      test_check_compatible_empty;
  ]
