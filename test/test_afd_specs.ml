(* The AFD catalog: acceptance/rejection on hand-built traces, plus
   closure-under-sampling and closure-under-constrained-reordering
   property tests on automaton-generated valid traces (E3). *)

open Afd_ioa
open Afd_core

let set = Loc.Set.of_list
let out i s = Fd_event.Output (i, set s)
let lead i l = Fd_event.Output (i, l)
let crash i = Fd_event.Crash i

let check_is spec ~n expected t =
  let v = Afd.check spec ~n t in
  let got =
    match v with Verdict.Sat -> "sat" | Verdict.Violated _ -> "violated" | Verdict.Undecided _ -> "undecided"
  in
  Alcotest.(check string) (Fmt.str "%s on trace" spec.Afd.name) expected got

(* --- Omega --- *)

let test_omega_accepts () =
  check_is Omega.spec ~n:2 "sat" [ lead 0 1; lead 1 1; lead 0 1; lead 1 1 ];
  (* stabilizing after noise *)
  check_is Omega.spec ~n:2 "sat" [ lead 0 0; lead 1 1; lead 0 1; lead 1 1 ];
  (* crash of the non-leader *)
  check_is Omega.spec ~n:2 "sat" [ lead 0 0; lead 1 0; crash 1; lead 0 0 ]

let test_omega_rejects () =
  (* live locations stuck on different leaders: undecided (not yet T_Omega) *)
  check_is Omega.spec ~n:2 "undecided" [ lead 0 0; lead 1 1 ];
  (* stable leader is faulty *)
  check_is Omega.spec ~n:3 "undecided" [ crash 2; lead 0 2; lead 1 2 ];
  (* validity broken: output after own crash *)
  check_is Omega.spec ~n:2 "violated" [ lead 0 0; crash 1; lead 1 0; lead 1 0 ]

(* --- P --- *)

let test_p_accepts () =
  check_is Perfect.spec ~n:2 "sat" [ out 0 []; out 1 []; crash 1; out 0 [ 1 ] ];
  check_is Perfect.spec ~n:2 "sat" [ out 0 []; out 1 [] ];
  (* suspecting an already-crashed location is fine even at a faulty site *)
  check_is Perfect.spec ~n:3 "sat" [ crash 2; out 0 [ 2 ]; out 1 [ 2 ] ]

let test_p_rejects () =
  (* false suspicion: accuracy is a safety property -> violated *)
  check_is Perfect.spec ~n:2 "violated" [ out 0 [ 1 ]; out 1 []; out 0 []; out 1 [] ];
  (* missing completeness: undecided *)
  check_is Perfect.spec ~n:2 "undecided" [ out 0 []; crash 1; out 0 [] ]

(* --- EvP --- *)

let test_evp_accepts () =
  (* false suspicion then recovery: allowed *)
  check_is Ev_perfect.spec ~n:2 "sat" [ out 0 [ 1 ]; out 1 []; out 0 []; out 1 [] ];
  check_is Ev_perfect.spec ~n:2 "sat" [ out 0 []; out 1 []; crash 1; out 0 [ 1 ] ]

let test_evp_rejects () =
  (* still suspecting a live location at the end *)
  check_is Ev_perfect.spec ~n:2 "undecided" [ out 0 [ 1 ]; out 1 [] ];
  check_is Ev_perfect.spec ~n:2 "violated" [ crash 0; out 0 [] ]

(* --- S and EvS --- *)

let test_strong () =
  (* someone (p0) is never suspected *)
  check_is Strong.spec ~n:3 "sat" [ out 0 [ 1 ]; out 1 []; out 2 [ 1 ]; out 1 [ 1 ] ];
  (* everyone live gets suspected at some point: perpetual accuracy broken *)
  check_is Strong.spec ~n:2 "violated" [ out 0 [ 1 ]; out 1 [ 0 ]; out 0 []; out 1 [] ]

let test_ev_strong () =
  (* every live location suspected once, but eventually p0 is trusted *)
  check_is Ev_strong.spec ~n:2 "sat" [ out 0 [ 1 ]; out 1 [ 0 ]; out 0 []; out 1 [] ];
  check_is Ev_strong.spec ~n:2 "undecided" [ out 0 [ 1 ]; out 1 [ 0 ] ]

(* --- Sigma --- *)

let test_sigma () =
  check_is Sigma.spec ~n:3 "sat"
    [ out 0 [ 0; 1 ]; out 1 [ 1; 2 ]; out 2 [ 0; 1; 2 ]; out 0 [ 0; 1 ]; out 1 [ 1 ]; out 2 [ 1; 2 ] ];
  (* wait: last outputs must be subsets of live; all live here *)
  check_is Sigma.spec ~n:2 "violated" [ out 0 [ 0 ]; out 1 [ 1 ] ];
  (* intersection violated across time at one location too *)
  check_is Sigma.spec ~n:2 "violated" [ out 0 [ 0 ]; out 0 [ 1 ]; out 1 [ 0; 1 ] ]

let test_sigma_completeness () =
  check_is Sigma.spec ~n:2 "undecided" [ out 0 [ 0; 1 ]; out 1 [ 0; 1 ]; crash 1; out 0 [ 0; 1 ] ];
  check_is Sigma.spec ~n:2 "sat" [ out 0 [ 0; 1 ]; out 1 [ 0; 1 ]; crash 1; out 0 [ 0 ] ]

(* --- anti-Omega, Omega_k, Psi_k --- *)

let test_anti_omega () =
  check_is Anti_omega.spec ~n:3 "sat" [ lead 0 2; lead 1 2; lead 2 2 ];
  (* every live location named: not yet stabilized *)
  check_is Anti_omega.spec ~n:2 "undecided" [ lead 0 1; lead 1 0 ]

let test_omega_k () =
  let spec = Omega_k.spec ~k:2 in
  check_is spec ~n:3 "sat"
    [ Fd_event.Output (0, set [ 0; 1 ]); Fd_event.Output (1, set [ 0; 2 ]);
      Fd_event.Output (2, set [ 0; 2 ]) ];
  check_is spec ~n:3 "violated" [ Fd_event.Output (0, set [ 0 ]) ];
  (* no common live location in stable outputs *)
  check_is spec ~n:4 "undecided"
    [ Fd_event.Output (0, set [ 0; 1 ]); Fd_event.Output (1, set [ 2; 3 ]);
      Fd_event.Output (2, set [ 2; 3 ]); Fd_event.Output (3, set [ 2; 3 ]) ]

let test_psi_k () =
  let spec = Psi_k.spec ~k:2 in
  check_is spec ~n:3 "sat"
    [ Fd_event.Output (0, set [ 0; 1 ]); Fd_event.Output (1, set [ 0; 1 ]);
      Fd_event.Output (2, set [ 0; 1 ]) ];
  check_is spec ~n:3 "undecided"
    [ Fd_event.Output (0, set [ 0; 1 ]); Fd_event.Output (1, set [ 1; 2 ]);
      Fd_event.Output (2, set [ 0; 1 ]) ]

(* --- negative controls --- *)

let test_marabout () =
  (* prescient output of the final faulty set: accepted by the spec *)
  check_is Marabout.spec ~n:2 "sat" [ out 0 [ 1 ]; out 1 [ 1 ]; crash 1; out 0 [ 1 ] ];
  (* truthful-now but wrong-later output: rejected *)
  check_is Marabout.spec ~n:2 "violated" [ out 0 []; out 1 []; crash 1; out 0 [ 1 ] ];
  let r = Marabout.refutation ~n:2 in
  Alcotest.(check bool) "patterns differ" false
    (Loc.Set.equal r.Marabout.pattern_a r.Marabout.pattern_b);
  Alcotest.(check bool) "requires prediction" true
    (Marabout.requires_prediction ~n:2 ~first_output_after:0)

let test_dk_counterexample () =
  let k = 3 in
  let original, reordered = D_k.closure_counterexample ~k in
  let spec = D_k.spec ~k in
  Alcotest.(check bool) "original accepted" true
    (Verdict.is_sat (Afd.check spec ~n:2 original));
  Alcotest.(check bool) "reordered is a constrained reordering" true
    (Trace_ops.is_constrained_reordering ~equal_out:Loc.Set.equal ~of_:original reordered);
  Alcotest.(check bool) "reordered rejected: D_k is not closed" true
    (Verdict.is_violated (Afd.check spec ~n:2 reordered))

(* --- closure properties on generated valid traces (E3) --- *)

let closure_case name spec ~n ~detector ~crash_at =
  Alcotest.test_case name `Quick (fun () ->
      let rng = Random.State.make [| 42 |] in
      List.iter
        (fun seed ->
          let t =
            Afd_automata.generate_trace ~detector ~n ~seed ~crash_at ~steps:80
          in
          match Afd.check_all_properties spec ~n ~rng ~trials:60 t with
          | Ok () -> ()
          | Error e -> Alcotest.fail e)
        [ 1; 2; 3; 4; 5 ])

let noise_sets =
  Afd_automata.noise_of_list
    [ (0, set [ 1 ]); (0, set [ 1; 2 ]); (1, set [ 0 ]); (2, set [ 0; 1 ]) ]

let noise_leaders = Afd_automata.noise_of_list [ (0, 2); (1, 0); (2, 1) ]

let closure_suite =
  [ closure_case "closure: Omega via Algorithm 1" Omega.spec ~n:3
      ~detector:(Afd_automata.fd_omega ~n:3) ~crash_at:[ (10, 1) ];
    closure_case "closure: Omega via noisy automaton" Omega.spec ~n:3
      ~detector:(Afd_automata.fd_omega_noisy ~n:3 ~noise:noise_leaders)
      ~crash_at:[ (12, 2) ];
    closure_case "closure: P via Algorithm 2" Perfect.spec ~n:3
      ~detector:(Afd_automata.fd_perfect ~n:3) ~crash_at:[ (8, 0) ];
    closure_case "closure: EvP via noisy automaton" Ev_perfect.spec ~n:3
      ~detector:(Afd_automata.fd_ev_perfect_noisy ~n:3 ~noise:noise_sets)
      ~crash_at:[ (15, 2) ];
    closure_case "closure: S on P traces" Strong.spec ~n:3
      ~detector:(Afd_automata.fd_perfect ~n:3) ~crash_at:[ (9, 1) ];
    closure_case "closure: EvS on noisy EvP traces" Ev_strong.spec ~n:3
      ~detector:(Afd_automata.fd_ev_perfect_noisy ~n:3 ~noise:noise_sets)
      ~crash_at:[ (15, 2) ];
  ]

let suite =
  [ Alcotest.test_case "Omega accepts" `Quick test_omega_accepts;
    Alcotest.test_case "Omega rejects" `Quick test_omega_rejects;
    Alcotest.test_case "P accepts" `Quick test_p_accepts;
    Alcotest.test_case "P rejects" `Quick test_p_rejects;
    Alcotest.test_case "EvP accepts" `Quick test_evp_accepts;
    Alcotest.test_case "EvP rejects" `Quick test_evp_rejects;
    Alcotest.test_case "S" `Quick test_strong;
    Alcotest.test_case "EvS" `Quick test_ev_strong;
    Alcotest.test_case "Sigma intersection" `Quick test_sigma;
    Alcotest.test_case "Sigma completeness" `Quick test_sigma_completeness;
    Alcotest.test_case "anti-Omega" `Quick test_anti_omega;
    Alcotest.test_case "Omega_k" `Quick test_omega_k;
    Alcotest.test_case "Psi_k" `Quick test_psi_k;
    Alcotest.test_case "Marabout (not an AFD: needs prediction)" `Quick test_marabout;
    Alcotest.test_case "D_k reordering counterexample" `Quick test_dk_counterexample;
  ]
  @ closure_suite
