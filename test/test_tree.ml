(* Execution trees (E10/E11/E12): tagged-tree invariants, valence,
   hooks and Theorem 59, and the bivalence-horizon experiment. *)

open Afd_ioa
module T = Afd_tree

let build_tree ~n ~f ~td =
  let sys = T.Tree_system.flood_system ~n ~f in
  match
    T.Tagged_tree.build ~system:sys ~detector:Afd_consensus.Flood_p.detector_name ~td
      ~max_nodes:3_000_000
  with
  | Ok tree -> tree
  | Error e -> Alcotest.fail e

let crash1_tree () =
  build_tree ~n:2 ~f:1 ~td:(T.Tree_system.td_one_crash ~n:2 ~crash:1 ~pre:1 ~post:3)

let nocrash_tree () = build_tree ~n:2 ~f:1 ~td:(T.Tree_system.td_no_crash ~n:2 ~rounds:3)

let test_root_and_labels () =
  let tree = crash1_tree () in
  Alcotest.(check bool) "nonempty" true (Array.length tree.T.Tagged_tree.nodes > 100);
  (* labels: FD + 2 processes + 2 channels + 4 env tasks *)
  Alcotest.(check int) "label count" 9 (List.length (T.Tagged_tree.labels tree));
  let root = tree.T.Tagged_tree.nodes.(0) in
  Alcotest.(check int) "root consumed nothing" 0 root.T.Tagged_tree.pos

let test_edges_well_formed () =
  let tree = crash1_tree () in
  Array.iter
    (fun node ->
      Array.iter
        (fun (_, act, dst) ->
          match act with
          | None ->
            Alcotest.(check int) "bottom edge loops" node.T.Tagged_tree.id dst
          | Some _ ->
            Alcotest.(check bool) "successor exists" true
              (dst >= 0 && dst < Array.length tree.T.Tagged_tree.nodes))
        node.T.Tagged_tree.edges)
    tree.T.Tagged_tree.nodes

let test_fd_edges_consume_td () =
  let tree = crash1_tree () in
  Array.iter
    (fun node ->
      Array.iter
        (fun (label, act, dst) ->
          if label = T.Tagged_tree.FD && act <> None then begin
            let succ = tree.T.Tagged_tree.nodes.(dst) in
            Alcotest.(check int) "pos advances" (node.T.Tagged_tree.pos + 1)
              succ.T.Tagged_tree.pos
          end)
        node.T.Tagged_tree.edges)
    tree.T.Tagged_tree.nodes

let test_prop51_root_bivalent () =
  List.iter
    (fun tree ->
      let va = T.Valence.classify tree in
      Alcotest.(check bool) "root bivalent (Prop 51)" true (T.Valence.root_bivalent va))
    [ crash1_tree (); nocrash_tree () ]

let test_no_blocked_nodes () =
  let va = T.Valence.classify (crash1_tree ()) in
  Alcotest.(check int) "no blocked nodes (Prop 48)" 0 (T.Valence.count va T.Valence.Blocked)

let test_agreement_and_lemma52 () =
  let va = T.Valence.classify (crash1_tree ()) in
  (match T.Valence.agreement_in_graph va with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match T.Valence.univalent_stable va with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_hooks_exist_and_theorem59 () =
  let va = T.Valence.classify (crash1_tree ()) in
  let hooks = T.Hook.find_all va in
  Alcotest.(check bool) "hooks exist (Lemma 55)" true (hooks <> []);
  List.iter
    (fun h ->
      match T.Hook.check_theorem59 va h with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    hooks;
  (* with p1 faulty in t_D, every critical location must be p0 *)
  List.iter
    (fun h ->
      match T.Hook.critical_location h with
      | Some 0 -> ()
      | Some l -> Alcotest.failf "critical location %a is not the live p0" Loc.pp l
      | None -> Alcotest.fail "hook without critical location")
    hooks

let test_hooks_nocrash () =
  let va = T.Valence.classify (nocrash_tree ()) in
  let hooks = T.Hook.find_all va in
  Alcotest.(check bool) "hooks exist" true (hooks <> []);
  List.iter
    (fun h ->
      match T.Hook.check_theorem59 va h with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    hooks

let test_bivalence_horizon () =
  let va = T.Valence.classify (crash1_tree ()) in
  let u = T.Flp.unconstrained va ~max_steps:5000 in
  let fw = T.Flp.fair_windowed va ~window:12 ~max_steps:5000 in
  (* every adversary runs out of bivalent moves: the AFD-driven system
     always decides (contrast with FLP, where a bivalence-preserving
     adversary exists forever for any async consensus protocol) *)
  Alcotest.(check bool) "unconstrained adversary exhausts" true u.T.Flp.exhausted;
  Alcotest.(check bool) "fair adversary exhausts" true fw.T.Flp.exhausted;
  (* both horizons are tiny compared to the graph diameter: bivalence
     cannot be sustained (greedy walks are not optimal, so the two
     horizons are not comparable to each other in general) *)
  Alcotest.(check bool) "horizons are short" true
    (u.T.Flp.survived < 50 && fw.T.Flp.survived < 50)

let test_walk_is_execution () =
  (* exe(N) reconstruction (Prop 29): replay the action sequence of a
     sampled walk on the system composition. *)
  let tree = crash1_tree () in
  let sys = tree.T.Tagged_tree.system in
  (* follow first non-bottom edges for a while *)
  let rec walk id acc budget =
    if budget = 0 then List.rev acc
    else
      let node = tree.T.Tagged_tree.nodes.(id) in
      match
        Array.to_list node.T.Tagged_tree.edges
        |> List.find_opt (fun (_, act, _) -> act <> None)
      with
      | None -> List.rev acc
      | Some (_, Some act, dst) -> walk dst (act :: acc) (budget - 1)
      | Some (_, None, _) -> List.rev acc
  in
  let acts = walk 0 [] 25 in
  let aut = Afd_ioa.Composition.as_automaton sys in
  match Afd_ioa.Execution.apply_schedule aut aut.Afd_ioa.Automaton.start acts with
  | Some _ -> ()
  | None -> Alcotest.fail "walk is not an execution of the system"

let test_theorem41 () =
  (* the two t_D's share exactly their first round of empty outputs
     (length 2); the trees must agree up to depth 2 and differ at the
     depth that exposes the third FD event *)
  let t1 = crash1_tree () and t2 = nocrash_tree () in
  Alcotest.(check bool) "equal up to common-prefix depth" true
    (T.Tagged_tree.equal_upto t1 t2 ~depth:2);
  Alcotest.(check bool) "differ once the FD sequences diverge" false
    (T.Tagged_tree.equal_upto t1 t2 ~depth:3);
  (* reflexivity at a deeper depth *)
  Alcotest.(check bool) "reflexive" true (T.Tagged_tree.equal_upto t1 t1 ~depth:6)

let test_similar_mod_i_and_lemma39 () =
  let tree = crash1_tree () in
  let ctx = T.Similar.make_ctx tree ~n:2 in
  let pairs = T.Similar.candidate_pairs ctx ~i:1 ~limit:120 in
  Alcotest.(check bool) "found related pairs" true (List.length pairs > 10);
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) (Printf.sprintf "(%d,%d) similar-mod-p1" a b) true
        (T.Similar.similar_mod ctx ~i:1 a b);
      match T.Similar.check_lemma39 ctx ~i:1 a b with
      | Ok () -> ()
      | Error e -> Alcotest.failf "lemma 39 at (%d,%d): %s" a b e)
    pairs

let test_theorem40_descendant_chains () =
  (* Theorem 40 via iteration: starting from a related pair, walking
     the same label sequence on both sides preserves one of Lemma 39's
     disjuncts at every step; follow the N'-side only when the N-side
     alone does not stay related. *)
  let tree = crash1_tree () in
  let ctx = T.Similar.make_ctx tree ~n:2 in
  let child id label =
    Array.to_list tree.T.Tagged_tree.nodes.(id).T.Tagged_tree.edges
    |> List.find_map (fun (l, _, dst) -> if l = label then Some dst else None)
    |> Option.get
  in
  match T.Similar.candidate_pairs ctx ~i:1 ~limit:5 with
  | [] -> Alcotest.fail "no pairs"
  | (a0, b0) :: _ ->
    let labels = T.Tagged_tree.labels tree in
    let rec walk a b depth =
      if depth = 0 then ()
      else begin
        List.iter
          (fun l ->
            let al = child a l in
            Alcotest.(check bool) "lemma 39 disjunction" true
              (T.Similar.similar_mod ctx ~i:1 al b
              || T.Similar.similar_mod ctx ~i:1 al (child b l)))
          labels;
        (* descend along the first label that keeps the pair related *)
        let next =
          List.find_map
            (fun l ->
              let al = child a l in
              if T.Similar.similar_mod ctx ~i:1 al (child b l) then Some (al, child b l)
              else if T.Similar.similar_mod ctx ~i:1 al b then Some (al, b)
              else None)
            labels
        in
        match next with
        | Some (a', b') -> walk a' b' (depth - 1)
        | None -> Alcotest.fail "no related descendant (contradicts Theorem 40)"
      end
    in
    walk a0 b0 6

let test_symmetry_across_fault_patterns () =
  (* flipping which location crashes in t_D yields a tree of identical
     shape (the system is symmetric in p0/p1), with the critical
     locations flipped *)
  let t1 = crash1_tree () in
  let t0 = build_tree ~n:2 ~f:1 ~td:(T.Tree_system.td_one_crash ~n:2 ~crash:0 ~pre:1 ~post:3) in
  Alcotest.(check int) "same node count"
    (Array.length t1.T.Tagged_tree.nodes)
    (Array.length t0.T.Tagged_tree.nodes);
  let hooks tree =
    let va = T.Valence.classify tree in
    T.Hook.find_all va
  in
  Alcotest.(check int) "same hook count" (List.length (hooks t1)) (List.length (hooks t0));
  let crits tree =
    List.filter_map T.Hook.critical_location (hooks tree) |> List.sort_uniq Loc.compare
  in
  Alcotest.(check (list int)) "p1-crash tree: critical = p0" [ 0 ] (crits t1);
  Alcotest.(check (list int)) "p0-crash tree: critical = p1" [ 1 ] (crits t0)

let test_budget_exceeded () =
  let sys = T.Tree_system.flood_system ~n:2 ~f:1 in
  match
    T.Tagged_tree.build ~system:sys ~detector:Afd_consensus.Flood_p.detector_name
      ~td:(T.Tree_system.td_one_crash ~n:2 ~crash:1 ~pre:1 ~post:3)
      ~max_nodes:10
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tiny budget must overflow"

let suite =
  [ Alcotest.test_case "root and labels" `Quick test_root_and_labels;
    Alcotest.test_case "edges well-formed" `Quick test_edges_well_formed;
    Alcotest.test_case "FD edges consume t_D" `Quick test_fd_edges_consume_td;
    Alcotest.test_case "Prop 51: root bivalent" `Quick test_prop51_root_bivalent;
    Alcotest.test_case "Prop 48: no blocked nodes" `Quick test_no_blocked_nodes;
    Alcotest.test_case "agreement + Lemma 52 in graph" `Quick test_agreement_and_lemma52;
    Alcotest.test_case "Theorem 59 on every hook (crash pattern)" `Quick
      test_hooks_exist_and_theorem59;
    Alcotest.test_case "Theorem 59 (crash-free pattern)" `Quick test_hooks_nocrash;
    Alcotest.test_case "bivalence horizon" `Quick test_bivalence_horizon;
    Alcotest.test_case "Prop 29: walks are executions" `Quick test_walk_is_execution;
    Alcotest.test_case "Theorem 41: common prefix, common tree" `Quick test_theorem41;
    Alcotest.test_case "similar-modulo-i + Lemma 39" `Quick test_similar_mod_i_and_lemma39;
    Alcotest.test_case "Theorem 40: related descendants" `Quick test_theorem40_descendant_chains;
    Alcotest.test_case "fault-pattern symmetry" `Quick test_symmetry_across_fault_patterns;
    Alcotest.test_case "node budget respected" `Quick test_budget_exceeded;
  ]
