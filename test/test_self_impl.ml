(* Algorithm 3 / Theorem 13: every catalog AFD is self-implementable
   (E4).  We run A^self over each detector automaton under several
   seeds and fault patterns and check both projections. *)

open Afd_ioa
open Afd_core

let seeds = [ 1; 7; 23; 99 ]

let check name ~spec ~detector ~n ~crash_at ~steps =
  Alcotest.test_case name `Quick (fun () ->
      List.iter
        (fun seed ->
          match Self_impl.check_theorem13 ~spec ~detector ~n ~seed ~crash_at ~steps with
          | Ok () -> ()
          | Error e -> Alcotest.failf "seed %d: %s" seed e)
        seeds)

let noise_sets =
  Afd_automata.noise_of_list
    [ (0, Loc.Set.singleton 1); (1, Loc.Set.singleton 2); (2, Loc.Set.singleton 0) ]

let test_queue_semantics () =
  (* The A^self automaton preserves order and stops after a crash. *)
  let a = Self_impl.self_automaton ~loc:0 in
  let s0 = a.Automaton.start in
  let s1 = Automaton.step_exn a s0 (Self_impl.Orig (Fd_event.Output (0, "x"))) in
  let s2 = Automaton.step_exn a s1 (Self_impl.Orig (Fd_event.Output (0, "y"))) in
  Alcotest.(check bool) "head is x" true
    (List.exists
       (fun t -> t.Automaton.enabled s2 = Some (Self_impl.Renamed (0, "x")))
       a.Automaton.tasks);
  let s3 = Automaton.step_exn a s2 (Self_impl.Renamed (0, "x")) in
  Alcotest.(check bool) "then y" true
    (List.exists
       (fun t -> t.Automaton.enabled s3 = Some (Self_impl.Renamed (0, "y")))
       a.Automaton.tasks);
  let s4 = Automaton.step_exn a s3 (Self_impl.Orig (Fd_event.Crash 0)) in
  Alcotest.(check bool) "crash disables renamed outputs" true
    (List.for_all (fun t -> t.Automaton.enabled s4 = None) a.Automaton.tasks);
  (* events at other locations are outside the signature *)
  Alcotest.(check bool) "other locations ignored" true
    (a.Automaton.kind (Self_impl.Orig (Fd_event.Output (1, "z"))) = None)

let test_renamed_trace_lags () =
  (* The renamed projection is a per-location prefix of the original
     one (the queue can only lag). *)
  let r =
    Self_impl.run ~detector:(Afd_automata.fd_omega ~n:3) ~n:3 ~seed:3
      ~crash_at:[ (9, 1) ] ~steps:200
  in
  List.iter
    (fun i ->
      let orig = Fd_event.outputs_at i r.Self_impl.original in
      let ren = Fd_event.outputs_at i r.Self_impl.renamed in
      Alcotest.(check bool)
        (Fmt.str "renamed at p%d is a prefix" i)
        true
        (Afd_ioa.Trace.is_prefix ~equal:Loc.equal ren orig))
    (Loc.universe ~n:3)

let suite =
  [ Alcotest.test_case "A^self queue semantics" `Quick test_queue_semantics;
    Alcotest.test_case "renamed projection lags the original" `Quick test_renamed_trace_lags;
    check "theorem 13: Omega" ~spec:Omega.spec ~detector:(Afd_automata.fd_omega ~n:3)
      ~n:3 ~crash_at:[ (11, 2) ] ~steps:400;
    check "theorem 13: Omega, two crashes" ~spec:Omega.spec
      ~detector:(Afd_automata.fd_omega ~n:4) ~n:4
      ~crash_at:[ (11, 2); (40, 0) ] ~steps:600;
    check "theorem 13: P" ~spec:Perfect.spec ~detector:(Afd_automata.fd_perfect ~n:3)
      ~n:3 ~crash_at:[ (13, 0) ] ~steps:400;
    check "theorem 13: noisy EvP" ~spec:Ev_perfect.spec
      ~detector:(Afd_automata.fd_ev_perfect_noisy ~n:3 ~noise:noise_sets) ~n:3
      ~crash_at:[ (17, 1) ] ~steps:500;
    check "theorem 13: crash-free" ~spec:Omega.spec
      ~detector:(Afd_automata.fd_omega ~n:2) ~n:2 ~crash_at:[] ~steps:300;
  ]
