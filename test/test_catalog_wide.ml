(* Catalog-wide sweeps: every detector automaton in the repository is
   run under several fault patterns; its traces must satisfy its spec,
   the three AFD properties (E3 at full width), and Theorem 13
   (self-implementability, E4 at full width). *)

open Afd_ioa
open Afd_core

(* Each case: a name, a spec, a detector automaton (existentially
   packed so set- and leader-valued detectors share one list), and the
   fault patterns it supports. *)
type case =
  | Case : {
      name : string;
      spec : 'o Afd.spec;
      detector : ('s, 'o Fd_event.t) Automaton.t;
      n : int;
      patterns : (int * Loc.t) list list;
    }
      -> case

let noise_sets =
  Afd_automata.noise_of_list
    [ (0, Loc.Set.singleton 1); (1, Loc.Set.of_list [ 0; 2 ]); (2, Loc.Set.singleton 0) ]

let noise_leaders = Afd_automata.noise_of_list [ (0, 2); (1, 0); (2, 2) ]

let one_crash = [ []; [ (8, 1) ]; [ (0, 2) ] ]
let two_crashes = [ []; [ (8, 1) ]; [ (5, 0); (20, 2) ] ]

let catalog =
  [ Case { name = "Omega (Alg 1)"; spec = Omega.spec;
           detector = Afd_automata.fd_omega ~n:4; n = 4; patterns = two_crashes };
    Case { name = "Omega (noisy)"; spec = Omega.spec;
           detector = Afd_automata.fd_omega_noisy ~n:3 ~noise:noise_leaders; n = 3;
           patterns = one_crash };
    Case { name = "P (Alg 2)"; spec = Perfect.spec;
           detector = Afd_automata.fd_perfect ~n:4; n = 4; patterns = two_crashes };
    Case { name = "EvP (on P traces)"; spec = Ev_perfect.spec;
           detector = Afd_automata.fd_perfect ~n:4; n = 4; patterns = two_crashes };
    Case { name = "EvP (noisy)"; spec = Ev_perfect.spec;
           detector = Afd_automata.fd_ev_perfect_noisy ~n:3 ~noise:noise_sets; n = 3;
           patterns = one_crash };
    Case { name = "S (on P traces)"; spec = Strong.spec;
           detector = Afd_automata.fd_perfect ~n:4; n = 4; patterns = two_crashes };
    Case { name = "EvS (on noisy EvP traces)"; spec = Ev_strong.spec;
           detector = Afd_automata.fd_ev_perfect_noisy ~n:3 ~noise:noise_sets; n = 3;
           patterns = one_crash };
    Case { name = "Sigma"; spec = Sigma.spec;
           detector = Afd_automata.fd_sigma ~n:4; n = 4; patterns = two_crashes };
    Case { name = "anti-Omega"; spec = Anti_omega.spec;
           detector = Afd_automata.fd_anti_omega ~n:4; n = 4;
           patterns = two_crashes (* keeps >= 2 live *) };
    Case { name = "Omega_2"; spec = Omega_k.spec ~k:2;
           detector = Afd_automata.fd_omega_k ~n:4 ~k:2; n = 4; patterns = two_crashes };
    Case { name = "Psi_2"; spec = Psi_k.spec ~k:2;
           detector = Afd_automata.fd_psi_k ~n:4 ~k:2; n = 4; patterns = two_crashes };
    Case { name = "Psi_3"; spec = Psi_k.spec ~k:3;
           detector = Afd_automata.fd_psi_k ~n:4 ~k:3; n = 4; patterns = one_crash };
  ]

let seeds = [ 1; 2; 3 ]

let spec_sweep (Case c) =
  Alcotest.test_case (c.name ^ ": traces in T_D") `Quick (fun () ->
      List.iter
        (fun crash_at ->
          List.iter
            (fun seed ->
              let t =
                Afd_automata.generate_trace ~detector:c.detector ~n:c.n ~seed ~crash_at
                  ~steps:140
              in
              match Afd.check c.spec ~n:c.n t with
              | Verdict.Sat -> ()
              | v ->
                Alcotest.failf "%s seed=%d pattern=%s: %a" c.name seed
                  (String.concat "," (List.map (fun (k, i) -> Printf.sprintf "%d:%d" k i) crash_at))
                  Verdict.pp v)
            seeds)
        c.patterns)

let closure_sweep (Case c) =
  Alcotest.test_case (c.name ^ ": AFD closure properties") `Quick (fun () ->
      let rng = Random.State.make [| 77 |] in
      List.iter
        (fun crash_at ->
          let t =
            Afd_automata.generate_trace ~detector:c.detector ~n:c.n ~seed:5 ~crash_at
              ~steps:120
          in
          match Afd.check_all_properties c.spec ~n:c.n ~rng ~trials:40 t with
          | Ok () -> ()
          | Error e -> Alcotest.fail e)
        c.patterns)

let self_impl_sweep (Case c) =
  Alcotest.test_case (c.name ^ ": theorem 13") `Quick (fun () ->
      List.iter
        (fun crash_at ->
          match
            Self_impl.check_theorem13 ~spec:c.spec ~detector:c.detector ~n:c.n ~seed:9
              ~crash_at ~steps:420
          with
          | Ok () -> ()
          | Error e -> Alcotest.fail e)
        c.patterns)

let suite =
  List.concat_map (fun case -> [ spec_sweep case; closure_sweep case; self_impl_sweep case ]) catalog
