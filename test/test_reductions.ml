(* Reductions between AFDs (E5/E6): downward reductions hold on
   generated traces, Theorem 15's composition works, and the hierarchy
   separations refute representative extraction candidates. *)

open Afd_ioa
open Afd_core

let p_trace ~n ~seed ~crash_at =
  Afd_automata.generate_trace ~detector:(Afd_automata.fd_perfect ~n) ~n ~seed ~crash_at
    ~steps:120

let omega_trace ~n ~seed ~crash_at =
  Afd_automata.generate_trace ~detector:(Afd_automata.fd_omega ~n) ~n ~seed ~crash_at
    ~steps:120

let check_reduction name reduction ~n mk_trace =
  Alcotest.test_case name `Quick (fun () ->
      List.iter
        (fun (seed, crash_at) ->
          let t = mk_trace ~n ~seed ~crash_at in
          match Reduction.check_on_trace reduction ~n t with
          | Verdict.Sat -> ()
          | v ->
            Alcotest.failf "seed %d: %a (source %s, target %s)" seed Verdict.pp v
              reduction.Reduction.source.Afd.name reduction.Reduction.target.Afd.name)
        [ (1, []); (2, [ (10, 1) ]); (3, [ (5, 0); (25, 2) ]); (4, [ (0, 2) ]) ])

let test_transformer_runs () =
  (* End-to-end: the transformer network (distributed algorithm) also
     produces a target-satisfying trace, not just the pure map. *)
  let r =
    Xform.run ~detector:(Afd_automata.fd_perfect ~n:3)
      ~f:(Reduction.p_to_omega ~n:3).Reduction.f ~name:"p2omega" ~n:3 ~seed:5
      ~crash_at:[ (9, 1) ] ~steps:400
  in
  (match Afd.check Perfect.spec ~n:3 r.Xform.source with
  | Verdict.Sat -> ()
  | v -> Alcotest.failf "source not in T_P: %a" Verdict.pp v);
  match Afd.check Omega.spec ~n:3 r.Xform.target with
  | Verdict.Sat -> ()
  | v -> Alcotest.failf "target not in T_Omega: %a" Verdict.pp v

let test_transitivity () =
  (* Theorem 15: P -> EvP -> Omega composed equals a correct P -> Omega. *)
  let composed = Reduction.(compose p_to_evp (evp_to_omega ~n:4)) in
  List.iter
    (fun seed ->
      let t = p_trace ~n:4 ~seed ~crash_at:[ (7, 3); (30, 1) ] in
      match Reduction.check_on_trace composed ~n:4 t with
      | Verdict.Sat -> ()
      | v -> Alcotest.failf "seed %d: %a" seed Verdict.pp v)
    [ 1; 2; 3 ]

let test_upward_identity_fails () =
  (* T_EvP is strictly larger than T_P: a noisy EvP trace is rejected by
     P, so the identity is not a reduction upward. *)
  let noise = Afd_automata.noise_of_list [ (0, Loc.Set.singleton 1) ] in
  let t =
    Afd_automata.generate_trace
      ~detector:(Afd_automata.fd_ev_perfect_noisy ~n:2 ~noise)
      ~n:2 ~seed:3 ~crash_at:[] ~steps:60
  in
  (match Afd.check Ev_perfect.spec ~n:2 t with
  | Verdict.Sat -> ()
  | v -> Alcotest.failf "EvP should accept: %a" Verdict.pp v);
  match Afd.check Perfect.spec ~n:2 t with
  | Verdict.Violated _ -> ()
  | v -> Alcotest.failf "P should reject the noisy trace, got %a" Verdict.pp v

let refute_case name ~candidate ~target sep =
  Alcotest.test_case name `Quick (fun () ->
      match Reduction.refute ~candidate ~target sep with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)

let echo _i hist = match List.rev hist with [] -> None | h :: _ -> Some h

let separations_suite =
  [ refute_case "EvP cannot implement P (echo candidate)" ~candidate:echo
      ~target:Perfect.spec (Reduction.evp_not_to_p ~len:5);
    refute_case "EvP cannot implement P (silent candidate)"
      ~candidate:(fun _ _ -> Some Loc.Set.empty)
      ~target:Perfect.spec (Reduction.evp_not_to_p ~len:5);
    refute_case "Omega cannot implement EvP (empty-suspicions candidate)"
      ~candidate:(fun _ _ -> Some Loc.Set.empty)
      ~target:Ev_perfect.spec
      (Reduction.omega_not_to_evp ~len:5);
    refute_case "Omega cannot implement EvP (suspect-all-but-leader)"
      ~candidate:(fun i hist ->
        match List.rev hist with
        | [] -> None
        | l :: _ ->
          Some (Loc.Set.remove l (Loc.Set.remove i (Loc.set_of_universe ~n:3))))
      ~target:Ev_perfect.spec
      (Reduction.omega_not_to_evp ~len:5);
    refute_case "anti-Omega cannot implement Omega (self-leader)"
      ~candidate:(fun i _ -> Some i)
      ~target:Omega.spec
      (Reduction.anti_omega_not_to_omega ~len:5);
    refute_case "anti-Omega cannot implement Omega (un-named leader)"
      ~candidate:(fun _i hist ->
        match List.rev hist with
        | [] -> None
        | l :: _ -> Loc.min_not_in ~n:3 (Loc.equal l))
      ~target:Omega.spec
      (Reduction.anti_omega_not_to_omega ~len:5);
  ]

let test_separation_traces_admissible () =
  (* The witnesses themselves must be admissible for their source AFDs. *)
  let sep = Reduction.evp_not_to_p ~len:4 in
  List.iter
    (fun (label, t) ->
      match Afd.check Ev_perfect.spec ~n:sep.Reduction.n t with
      | Verdict.Sat -> ()
      | v -> Alcotest.failf "%s not in T_EvP: %a" label Verdict.pp v)
    sep.Reduction.traces;
  let sep = Reduction.omega_not_to_evp ~len:4 in
  List.iter
    (fun (label, t) ->
      match Afd.check Omega.spec ~n:sep.Reduction.n t with
      | Verdict.Sat -> ()
      | v -> Alcotest.failf "%s not in T_Omega: %a" label Verdict.pp v)
    sep.Reduction.traces;
  let sep = Reduction.anti_omega_not_to_omega ~len:4 in
  List.iter
    (fun (label, t) ->
      match Afd.check Anti_omega.spec ~n:sep.Reduction.n t with
      | Verdict.Sat -> ()
      | v -> Alcotest.failf "%s not in T_anti-Omega: %a" label Verdict.pp v)
    sep.Reduction.traces

let suite =
  [ check_reduction "P -> EvP" Reduction.p_to_evp ~n:3 p_trace;
    check_reduction "P -> S" Reduction.p_to_strong ~n:3 p_trace;
    check_reduction "S <- P then EvS" Reduction.(compose p_to_strong strong_to_ev_strong)
      ~n:3 p_trace;
    check_reduction "P -> Omega" (Reduction.p_to_omega ~n:3) ~n:3 p_trace;
    check_reduction "P -> Sigma" (Reduction.p_to_sigma ~n:3) ~n:3 p_trace;
    check_reduction "Omega -> anti-Omega" (Reduction.omega_to_anti_omega ~n:3) ~n:3
      omega_trace;
    check_reduction "Omega -> Omega_2" (Reduction.omega_to_omega_k ~n:3 ~k:2) ~n:3
      omega_trace;
    check_reduction "Omega -> Psi_2" (Reduction.omega_to_psi_k ~n:3 ~k:2) ~n:3
      omega_trace;
    Alcotest.test_case "transformer network end-to-end" `Quick test_transformer_runs;
    Alcotest.test_case "theorem 15: transitive composition" `Quick test_transitivity;
    Alcotest.test_case "upward identity EvP->P fails" `Quick test_upward_identity_fails;
    Alcotest.test_case "separation witnesses admissible" `Quick
      test_separation_traces_admissible;
  ]
  @ separations_suite
