(* Differential tests for the streaming scheduler hot path.

   The optimized scheduler caches per-task enabledness and refreshes
   only the tasks of components touched by each fired action; the
   random policy draws from a reused scratch array; fault-injection
   waiting jumps the step counter instead of spinning.  All of that is
   supposed to be invisible: this module re-implements the original
   naive scheduler (rescan every task every step, list-based random
   pick, one-step idle spin) against the public [Composition] API and
   checks — over qcheck-generated component catalogs, policies, seeds
   and fault patterns — that fired sequences, final states and
   quiescence flags are identical, for every retention policy.

   The same treatment covers the other rewritten samplers:
   [Scheduler.contains] (KMP) against the quadratic substring spec, and
   [Trace_ops.gen_reordering] (scratch-array linear-extension sampler)
   against the original list-based one, RNG draw for RNG draw. *)

open Afd_ioa
open Afd_core

(* ------------------------------------------------------------------ *)
(* A parametric catalog of interacting components                      *)
(* ------------------------------------------------------------------ *)

(* Worker k outputs its tick (action [k]) up to [limit] times while
   alive, listens to other workers' ticks, and dies on its crash input
   (action [100 + k]).  Dead workers swallow inputs by returning the
   state unchanged — physically — which exercises the untouched-
   component fast path of [Composition.step_touched]. *)
type wstate = { sent : int; recv : int; alive : bool }

let worker k ~limit ~listens =
  let crash_a = 100 + k in
  { Automaton.name = "wrk" ^ string_of_int k;
    kind =
      (fun a ->
        if a = k then Some Automaton.Output
        else if a = crash_a || List.mem a listens then Some Automaton.Input
        else None);
    start = { sent = 0; recv = 0; alive = true };
    step =
      (fun s a ->
        if a = k then
          if s.alive && s.sent < limit then Some { s with sent = s.sent + 1 }
          else None
        else if a = crash_a then if s.alive then Some { s with alive = false } else Some s
        else if List.mem a listens then
          if s.alive then Some { s with recv = s.recv + 1 } else Some s
        else None);
    tasks =
      [ { Automaton.task_name = "tick";
          fair = true;
          enabled = (fun s -> if s.alive && s.sent < limit then Some k else None);
        }
      ];
  }

(* Crash injector for worker k: a non-fair task that fires at most
   once, only when forced. *)
let crasher k =
  { Automaton.name = "crash" ^ string_of_int k;
    kind = (fun a -> if a = 100 + k then Some Automaton.Output else None);
    start = false;
    step = (fun s a -> if a = 100 + k && not s then Some true else None);
    tasks =
      [ { Automaton.task_name = "boom";
          fair = false;
          enabled = (fun s -> if s then None else Some (100 + k));
        }
      ];
  }

type worker_spec = { limit : int; listens : int list; with_crash : bool }

type catalog = {
  workers : worker_spec list;
  policy : Scheduler.policy;
  forced : Scheduler.force list;
  max_steps : int;
  stop_when_quiescent : bool;
}

let build cat =
  Composition.make ~name:"catalog"
    (List.concat
       (List.mapi
          (fun k w ->
            Component.C (worker k ~limit:w.limit ~listens:w.listens)
            :: (if w.with_crash then [ Component.C (crasher k) ] else []))
          cat.workers))

let cfg_of cat =
  { Scheduler.policy = cat.policy;
    max_steps = cat.max_steps;
    stop_when_quiescent = cat.stop_when_quiescent;
    forced = cat.forced;
  }

let catalog_gen =
  QCheck2.Gen.(
    let worker_gen n k =
      let* limit = int_bound 8 in
      let* listen_flags = list_repeat n bool in
      let listens =
        List.concat (List.mapi (fun j f -> if f && j <> k then [ j ] else []) listen_flags)
      in
      let* with_crash = bool in
      return { limit; listens; with_crash }
    in
    let pattern_gen =
      oneofl [ "boom"; "tick"; "wrk"; "crash"; ""; "zz"; "wrk1/tick"; "crash0/boom" ]
    in
    let force_gen =
      map2
        (fun at p -> { Scheduler.at_step = at; task_pattern = p })
        (int_bound 60) pattern_gen
    in
    let* n = 1 -- 3 in
    let rec workers_gen k =
      if k >= n then return []
      else
        let* w = worker_gen n k in
        let* rest = workers_gen (k + 1) in
        return (w :: rest)
    in
    let* workers = workers_gen 0 in
    let* policy =
      oneof
        [ return Scheduler.Round_robin;
          map (fun s -> Scheduler.Random s) (int_bound 10_000);
        ]
    in
    let* forced = list_size (int_bound 3) force_gen in
    let* max_steps = int_bound 150 in
    let* stop_when_quiescent = bool in
    return { workers; policy; forced; max_steps; stop_when_quiescent })

(* ------------------------------------------------------------------ *)
(* The naive reference scheduler (the pre-optimization implementation) *)
(* ------------------------------------------------------------------ *)

let naive_contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let full_name (tid : Composition.task_id) =
  tid.Composition.comp_name ^ "/" ^ tid.Composition.task_name

type 'a naive_outcome = {
  n_fired : (Composition.task_id * 'a) list;
  n_final : 'a Composition.state;
  n_quiescent : bool;
}

let patience comp =
  let ntasks = List.length (Composition.tasks comp) in
  (Scheduler.starvation_bound ~ntasks - 1) / ntasks

let naive_run comp (cfg : Scheduler.cfg) =
  let tasks = Array.of_list (Composition.tasks comp) in
  let ntasks = Array.length tasks in
  let patience = patience comp in
  let rng =
    match cfg.policy with
    | Round_robin -> Stdlib.Random.State.make [| 0 |]
    | Random seed -> Stdlib.Random.State.make [| seed |]
  in
  let starving = Array.make ntasks 0 in
  let rr_cursor = ref 0 in
  let state = ref (Composition.start comp) in
  let fired = ref [] in
  let pending_forced =
    ref
      (List.sort
         (fun a b -> compare a.Scheduler.at_step b.Scheduler.at_step)
         cfg.forced)
  in
  let quiescent = ref false in
  let step = ref 0 in
  let fire tid act =
    (match Composition.step comp !state act with
    | Some st' -> state := st'
    | None -> invalid_arg "naive_run: enabled action failed to step");
    fired := (tid, act) :: !fired
  in
  let forced_candidate () =
    match !pending_forced with
    | { Scheduler.at_step; task_pattern } :: rest when at_step <= !step -> (
      let found = ref None in
      Array.iter
        (fun tid ->
          if !found = None && naive_contains ~needle:task_pattern (full_name tid)
          then
            match Composition.enabled comp !state tid with
            | Some act -> found := Some (tid, act)
            | None -> ())
        tasks;
      pending_forced := rest;
      !found)
    | _ -> None
  in
  let pick_round_robin () =
    let rec go tried =
      if tried >= ntasks then None
      else
        let k = (!rr_cursor + tried) mod ntasks in
        let tid = tasks.(k) in
        if not tid.Composition.fair then go (tried + 1)
        else
          match Composition.enabled comp !state tid with
          | Some act ->
            rr_cursor := (k + 1) mod ntasks;
            Some (tid, act)
          | None -> go (tried + 1)
    in
    go 0
  in
  let pick_random () =
    let starved = ref None in
    Array.iteri
      (fun k tid ->
        if !starved = None && tid.Composition.fair && starving.(k) > patience * ntasks
        then
          match Composition.enabled comp !state tid with
          | Some act -> starved := Some (k, tid, act)
          | None -> ())
      tasks;
    match !starved with
    | Some (k, tid, act) ->
      starving.(k) <- 0;
      Some (tid, act)
    | None ->
      let enabled = ref [] in
      Array.iteri
        (fun k tid ->
          if tid.Composition.fair then
            match Composition.enabled comp !state tid with
            | Some act ->
              enabled := (k, tid, act) :: !enabled;
              starving.(k) <- starving.(k) + 1
            | None -> starving.(k) <- 0)
        tasks;
      (match !enabled with
      | [] -> None
      | l ->
        let arr = Array.of_list l in
        let k, tid, act = arr.(Stdlib.Random.State.int rng (Array.length arr)) in
        starving.(k) <- 0;
        Some (tid, act))
  in
  let continue = ref true in
  while !continue && !step < cfg.max_steps do
    let choice =
      match forced_candidate () with
      | Some c -> Some c
      | None -> (
        match cfg.policy with
        | Round_robin -> pick_round_robin ()
        | Random _ -> pick_random ())
    in
    match choice with
    | Some (tid, act) ->
      fire tid act;
      incr step
    | None ->
      if !pending_forced = [] then begin
        quiescent := true;
        continue := false
      end
      else incr step (* idle-spin one step at a time towards the force *)
  done;
  { n_fired = List.rev !fired; n_final = !state; n_quiescent = !quiescent }

(* ------------------------------------------------------------------ *)
(* Differential property: cached scheduler == naive scheduler          *)
(* ------------------------------------------------------------------ *)

let last n l =
  let len = List.length l in
  List.filteri (fun i _ -> i >= len - n) l

let check_catalog cat =
  let comp = build cat in
  let cfg = cfg_of cat in
  let reference = naive_run comp cfg in
  List.iter
    (fun retention ->
      let o = Scheduler.run ~retention comp cfg in
      if o.Scheduler.fired <> reference.n_fired then
        Alcotest.fail "fired sequence differs from the naive scheduler";
      if not (Composition.equal_state o.Scheduler.final_state reference.n_final)
      then Alcotest.fail "final state differs from the naive scheduler";
      if o.Scheduler.quiescent <> reference.n_quiescent then
        Alcotest.fail "quiescence flag differs from the naive scheduler";
      (* Execution-vs-fired invariants per retention policy. *)
      let acts = List.map snd o.Scheduler.fired in
      let exe = o.Scheduler.execution in
      match retention with
      | Scheduler.Full ->
        if Execution.schedule exe <> acts then
          Alcotest.fail "Full: execution schedule <> fired actions";
        if not (Composition.equal_state (Execution.final exe) o.Scheduler.final_state)
        then Alcotest.fail "Full: execution final <> final_state"
      | Scheduler.Trace_only ->
        if Execution.length exe <> 0 then Alcotest.fail "Trace_only retained steps"
      | Scheduler.Window w ->
        let kept = min w (List.length acts) in
        if Execution.length exe <> kept then
          Alcotest.failf "Window %d: retained %d steps, expected %d" w
            (Execution.length exe) kept;
        if Execution.schedule exe <> last kept acts then
          Alcotest.fail "Window: retained schedule is not the run's suffix";
        if
          kept > 0
          && not
               (Composition.equal_state (Execution.final exe)
                  o.Scheduler.final_state)
        then Alcotest.fail "Window: execution final <> final_state")
    [ Scheduler.Full; Scheduler.Trace_only; Scheduler.Window 5; Scheduler.Window 1 ];
  true

let prop_differential =
  QCheck2.Test.make ~name:"cached scheduler == naive scheduler (all retentions)"
    ~count:300 catalog_gen check_catalog

(* ------------------------------------------------------------------ *)
(* contains == substring specification                                 *)
(* ------------------------------------------------------------------ *)

let prop_contains =
  (* Small alphabet so overlapping-prefix needles (the KMP-interesting
     cases) are common. *)
  let str_gen =
    QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b' ]) (int_bound 12))
  in
  QCheck2.Test.make ~name:"contains == naive substring spec" ~count:2000
    QCheck2.Gen.(pair str_gen str_gen)
    (fun (needle, hay) ->
      Scheduler.contains ~needle hay = naive_contains ~needle hay)

(* ------------------------------------------------------------------ *)
(* gen_reordering == naive linear-extension sampler                    *)
(* ------------------------------------------------------------------ *)

let naive_gen_reordering rng t =
  let arr = Array.of_list t in
  let m = Array.length arr in
  let must_precede x y =
    Loc.equal (Fd_event.loc arr.(x)) (Fd_event.loc arr.(y)) || Fd_event.is_crash arr.(x)
  in
  let indeg = Array.make (max 1 m) 0 in
  let succs = Array.make (max 1 m) [] in
  for x = 0 to m - 1 do
    for y = x + 1 to m - 1 do
      if must_precede x y then begin
        indeg.(y) <- indeg.(y) + 1;
        succs.(x) <- y :: succs.(x)
      end
    done
  done;
  let ready = ref (List.filter (fun x -> indeg.(x) = 0) (List.init m Fun.id)) in
  let out = ref [] in
  while !ready <> [] do
    let candidates = Array.of_list !ready in
    let pick = candidates.(Random.State.int rng (Array.length candidates)) in
    ready := List.filter (fun x -> x <> pick) !ready;
    out := arr.(pick) :: !out;
    List.iter
      (fun y ->
        indeg.(y) <- indeg.(y) - 1;
        if indeg.(y) = 0 then ready := y :: !ready)
      succs.(pick)
  done;
  List.rev !out

let prop_gen_reordering =
  QCheck2.Test.make ~name:"gen_reordering == naive sampler, draw for draw"
    ~count:150
    QCheck2.Gen.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (trace_seed, rng_seed) ->
      let t =
        Afd_automata.generate_trace
          ~detector:(Afd_automata.fd_perfect ~n:3)
          ~n:3 ~seed:trace_seed
          ~crash_at:[ (7, 1) ]
          ~steps:40
      in
      let a = Trace_ops.gen_reordering (Random.State.make [| rng_seed |]) t in
      let b = naive_gen_reordering (Random.State.make [| rng_seed |]) t in
      List.equal (Fd_event.equal Loc.Set.equal) a b
      && Trace_ops.is_constrained_reordering ~equal_out:Loc.Set.equal ~of_:t a)

(* ------------------------------------------------------------------ *)
(* Observer path                                                       *)
(* ------------------------------------------------------------------ *)

let test_observer_streams_every_step () =
  let cat =
    { workers =
        [ { limit = 5; listens = [ 1 ]; with_crash = true };
          { limit = 4; listens = [ 0 ]; with_crash = false };
        ];
      policy = Scheduler.Random 3;
      forced = [ { Scheduler.at_step = 3; task_pattern = "boom" } ];
      max_steps = 60;
      stop_when_quiescent = true;
    }
  in
  let comp = build cat in
  let seen = ref [] in
  let observer ~step tid act ~touched st' =
    (* touched indices must be ascending and name real components *)
    let rec ascending = function
      | a :: (b :: _ as rest) -> a < b && ascending rest
      | _ -> true
    in
    if not (ascending touched) then Alcotest.fail "touched indices not ascending";
    if touched = [] then Alcotest.fail "a fired step touched no component";
    seen := (step, tid, act, st') :: !seen
  in
  let o = Scheduler.run ~observer comp (cfg_of cat) in
  let seen = List.rev !seen in
  Alcotest.(check int) "observer saw every fired step"
    (List.length o.Scheduler.fired)
    (List.length seen);
  List.iteri
    (fun i ((tid, act), (step, tid', act', _st')) ->
      Alcotest.(check int) "step indices follow firing order" i step;
      if tid <> tid' || act <> act' then Alcotest.fail "observer saw a different step")
    (List.combine o.Scheduler.fired seen);
  (* post-states streamed to the observer are the execution's states *)
  let exe_states = List.map snd (Execution.steps o.Scheduler.execution) in
  List.iter2
    (fun st (_, _, _, st') ->
      if not (Composition.equal_state st st') then
        Alcotest.fail "observer post-state differs from retained execution")
    exe_states seen

(* Streaming fairness: a monitor fed from the observer hook must agree
   with the offline [Fairness.analyze] of the retained execution (the
   two paths share accounting but detect touched components
   differently: indices from the scheduler vs physical diff). *)
let test_fairness_streaming_equals_offline () =
  List.iter
    (fun seed ->
      let cat =
        { workers =
            [ { limit = 20; listens = [ 1; 2 ]; with_crash = true };
              { limit = 15; listens = []; with_crash = false };
              { limit = 10; listens = [ 0 ]; with_crash = true };
            ];
          policy = Scheduler.Random seed;
          forced = [ { Scheduler.at_step = 9; task_pattern = "boom" } ];
          max_steps = 80;
          stop_when_quiescent = true;
        }
      in
      let comp = build cat in
      let mon = Fairness.create comp (Composition.start comp) in
      let observer ~step:_ _tid act ~touched st' =
        Fairness.observe_touched mon act ~touched st'
      in
      let o = Scheduler.run ~observer comp (cfg_of cat) in
      let streamed = Fairness.finalize mon in
      let offline = Fairness.analyze comp o.Scheduler.execution in
      if streamed <> offline then
        Alcotest.failf "seed %d: streamed fairness report differs from offline" seed)
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Window retention: long runs in bounded memory                       *)
(* ------------------------------------------------------------------ *)

let test_window_bounds_memory () =
  (* A million-step run retaining a 32-step window: the recorder must
     hold exactly the suffix (ring buffer), never the whole run. *)
  let cat =
    { workers =
        [ { limit = max_int; listens = [ 1 ]; with_crash = false };
          { limit = max_int; listens = [ 0 ]; with_crash = false };
        ];
      policy = Scheduler.Random 11;
      forced = [];
      max_steps = 1_000_000;
      stop_when_quiescent = true;
    }
  in
  let comp = build cat in
  let w = 32 in
  let o = Scheduler.run ~retention:(Scheduler.Window w) comp (cfg_of cat) in
  Alcotest.(check int) "ran the full budget" 1_000_000 o.Scheduler.steps_taken;
  Alcotest.(check int) "retained exactly the window" w
    (Execution.length o.Scheduler.execution);
  Alcotest.(check bool) "window final state is the run's final state" true
    (Composition.equal_state
       (Execution.final o.Scheduler.execution)
       o.Scheduler.final_state);
  Alcotest.(check (list int)) "window holds the run's suffix"
    (last w (List.map snd o.Scheduler.fired))
    (Execution.schedule o.Scheduler.execution)

let test_window_zero_keeps_final_state () =
  let cat =
    { workers = [ { limit = 7; listens = []; with_crash = false } ];
      policy = Scheduler.Round_robin;
      forced = [];
      max_steps = 100;
      stop_when_quiescent = true;
    }
  in
  let comp = build cat in
  let o = Scheduler.run ~retention:(Scheduler.Window 0) comp (cfg_of cat) in
  Alcotest.(check int) "no steps retained" 0 (Execution.length o.Scheduler.execution);
  Alcotest.(check bool) "degenerate window tracks the final state" true
    (Composition.equal_state
       (Execution.start o.Scheduler.execution)
       o.Scheduler.final_state)

(* A property-checked streaming run must live in O(window) memory: the
   scheduler retains a bounded window, [record_fired:false] drops the
   fired-trace accumulator, and the monitor keeps only its summary,
   witness ring and fold accumulators.  A million-step run therefore
   may not grow the live heap by anything near what the materialized
   trace would cost (>= 5M words); the bound below leaves an order of
   magnitude of slack while still catching any O(steps) retention. *)
let test_monitored_run_bounded_memory () =
  let live_words () =
    Gc.full_major ();
    (Gc.stat ()).Gc.live_words
  in
  let m =
    match Afd.monitor ~window:32 Perfect.spec ~n:3 with
    | Some m -> m
    | None -> Alcotest.fail "Perfect.spec must be prop-compiled"
  in
  let events = ref 0 in
  let before = live_words () in
  let o =
    Afd_automata.run_monitored
      ~retention:(Scheduler.Window 32)
      ~observe:(fun e ->
        incr events;
        Afd_prop.Monitor.observe m e)
      ~detector:(Afd_automata.fd_perfect ~n:3)
      ~n:3 ~seed:11
      ~crash_at:[ (10, 1) ]
      ~steps:1_000_000 ()
  in
  let after = live_words () in
  Alcotest.(check int) "ran the full budget" 1_000_000 o.Scheduler.steps_taken;
  Alcotest.(check int) "no fired trace accumulated" 0 (List.length o.Scheduler.fired);
  Alcotest.(check int) "monitor saw every fired event" o.Scheduler.steps_taken !events;
  Alcotest.(check bool) "online verdict on the full run" true
    (Verdict.is_sat (Afd_prop.Monitor.verdict m));
  let grown = after - before in
  if grown > 1_000_000 then
    Alcotest.failf "monitored run retained %d live words (O(window) violated)" grown

(* ------------------------------------------------------------------ *)
(* Stall semantics: quiescent vs stopped-idle                          *)
(* ------------------------------------------------------------------ *)

let test_stopped_idle_flags () =
  (* Unforced crash task still enabled at the stop: idle, not silent. *)
  let idle_cat =
    { workers = [ { limit = 3; listens = []; with_crash = true } ];
      policy = Scheduler.Round_robin;
      forced = [];
      max_steps = 100;
      stop_when_quiescent = true;
    }
  in
  let o = Scheduler.run (build idle_cat) (cfg_of idle_cat) in
  Alcotest.(check bool) "quiescent (no fair task enabled)" true o.Scheduler.quiescent;
  Alcotest.(check bool) "stopped idle (crash task still armed)" true
    o.Scheduler.stopped_idle;
  (* No crash component: terminally silent. *)
  let silent_cat =
    { idle_cat with workers = [ { limit = 3; listens = []; with_crash = false } ] }
  in
  let o = Scheduler.run (build silent_cat) (cfg_of silent_cat) in
  Alcotest.(check bool) "quiescent" true o.Scheduler.quiescent;
  Alcotest.(check bool) "not idle (nothing armed)" false o.Scheduler.stopped_idle;
  (* Forced crash fires, worker dies, crash task exhausted: silent. *)
  let fired_cat =
    { idle_cat with
      forced = [ { Scheduler.at_step = 1; task_pattern = "boom" } ];
      workers = [ { limit = 10; listens = []; with_crash = true } ];
    }
  in
  let o = Scheduler.run (build fired_cat) (cfg_of fired_cat) in
  Alcotest.(check bool) "quiescent after the forced crash" true o.Scheduler.quiescent;
  Alcotest.(check bool) "crash consumed: not idle" false o.Scheduler.stopped_idle;
  (* Far-future force past max_steps: the jump must still respect the
     budget (steps_taken = max_steps) and fire nothing new. *)
  let far_cat =
    { idle_cat with
      forced = [ { Scheduler.at_step = 10_000; task_pattern = "boom" } ];
      max_steps = 50;
    }
  in
  let o = Scheduler.run (build far_cat) (cfg_of far_cat) in
  Alcotest.(check int) "stopped at the budget" 50 o.Scheduler.steps_taken;
  Alcotest.(check int) "only the worker's own ticks fired" 3
    (List.length o.Scheduler.fired)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_differential; prop_contains; prop_gen_reordering ]
  @ [ Alcotest.test_case "observer streams every fired step" `Quick
        test_observer_streams_every_step;
      Alcotest.test_case "streaming fairness == offline analyze" `Quick
        test_fairness_streaming_equals_offline;
      Alcotest.test_case "Window retains a bounded suffix of a 10^6-step run" `Quick
        test_window_bounds_memory;
      Alcotest.test_case "Window 0 tracks only the final state" `Quick
        test_window_zero_keeps_final_state;
      Alcotest.test_case "monitored 10^6-step run stays in O(window) memory" `Quick
        test_monitored_run_bounded_memory;
      Alcotest.test_case "quiescent vs stopped-idle stall flags" `Quick
        test_stopped_idle_flags;
    ]
