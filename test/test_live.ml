(* Tests for the fairness-aware liveness analysis (lib/analysis/live.ml)
   and its consumers.

   The load-bearing properties: the Tarjan condensation classifies the
   canonical shapes correctly (a pure cycle is one cycle-capable SCC,
   a chain is all-singleton with a fair stop only at its end); the
   SCC-powered rules fire on their fixtures and stay silent on the
   harmless twin; every catalog probe pairs its state equality with a
   congruent hash (no silent single-bucket fallback); the two
   liveness-broken detectors are refuted with the right kind of lasso;
   and — the qcheck property — every lasso the model checker reports
   replays through the online monitor with the refuted clause still
   non-Sat after k > 1 unrollings of its cycle, across fault-pattern
   universes. *)

open Afd_ioa
open Afd_core
open Afd_analysis

(* [Live.t] is monomorphic, so the analysis of an existentially packed
   registry entry can escape the match. *)
let live_of_entry = function
  | Registry.Automaton (a, p) -> Live.analyze a (Space.explore a p)
  | Registry.Composition (c, p) ->
    let a = Composition.as_automaton c in
    Live.analyze a (Space.explore a p)
  | Registry.Spec _ -> Alcotest.fail "expected an automaton entry"

(* --- condensation on the canonical shapes --- *)

let test_condense_cycle () =
  (* the harmless spinner: two states, one fair task looping them *)
  let live = live_of_entry Fixtures.harmless_cycle in
  let cyclic =
    Array.to_list live.Live.sccs
    |> List.filter (fun s -> s.Live.internal <> [])
  in
  (match cyclic with
  | [ scc ] ->
    Alcotest.(check (list int)) "both states in the cycle SCC" [ 0; 1 ]
      scc.Live.members;
    Alcotest.(check (list string)) "no unmet obligation" [] scc.Live.unmet;
    Alcotest.(check (list int)) "spin is always enabled: no fair stop" []
      scc.Live.fair_stops
  | sccs -> Alcotest.failf "expected 1 cycle-capable SCC, got %d" (List.length sccs));
  Alcotest.(check bool) "fair cycle through state 0" true
    (Live.fair_cycle_through live 0);
  Alcotest.(check bool) "fair cycle through state 1" true
    (Live.fair_cycle_through live 1);
  Alcotest.(check bool) "state 0 is not a fair stop" false (Live.fair_stop_at live 0)

let test_condense_chain () =
  (* the well-formed counter 0->1->2->3: only task edges count, so the
     Reset back-edges (probed inputs) must not merge the chain *)
  let a = Fixtures.counter ~name:"chain" ~limit:3 in
  let p =
    Probe.make ~pp_action:Fmt.(any "<act>")
      [ Fixtures.Tick 1; Fixtures.Tick 2; Fixtures.Tick 3; Fixtures.Reset ]
  in
  let sp = Space.explore a p in
  Alcotest.(check bool) "chain exhausted" true (sp.Space.verdict = Space.Exhausted);
  let live = Live.analyze a sp in
  Alcotest.(check int) "four singleton SCCs" 4 (Array.length live.Live.sccs);
  Array.iter
    (fun scc ->
      Alcotest.(check (list int)) "no internal task edge" [] scc.Live.internal)
    live.Live.sccs;
  List.iter
    (fun si ->
      Alcotest.(check bool)
        (Printf.sprintf "no fair cycle through state %d" si)
        false
        (Live.fair_cycle_through live si))
    [ 0; 1; 2; 3 ];
  (* the tick task is enabled until the cap: only the last state (the
     counter at its limit, discovered last by BFS) is a fair stop *)
  List.iter
    (fun si ->
      Alcotest.(check bool)
        (Printf.sprintf "fair stop exactly at the cap (state %d)" si)
        (si = 3)
        (Live.fair_stop_at live si))
    [ 0; 1; 2; 3 ]

(* --- the SCC-powered rules, against fixture and harmless twin --- *)

let rule_findings id entry =
  let rules =
    match Rule.find (Rules.all @ Rules.mc) id with
    | Some r -> [ r ]
    | None -> Alcotest.failf "missing rule %s" id
  in
  let report = Engine.run_entry ~rules ~origin:"fixture" entry in
  List.filter (fun f -> String.equal f.Report.rule id) report.Report.findings

let test_livelock_rule () =
  (match Fixtures.find "livelock" with
  | None -> Alcotest.fail "missing livelock fixture"
  | Some entry ->
    Alcotest.(check bool) "livelock fires on the internal spinner" true
      (rule_findings "livelock" entry <> []));
  Alcotest.(check int) "livelock silent on the output spinner" 0
    (List.length (rule_findings "livelock" Fixtures.harmless_cycle))

let test_unsat_fairness_rule () =
  match Fixtures.find "unsatisfiable-fairness-obligation" with
  | None -> Alcotest.fail "missing unsat-fairness fixture"
  | Some entry ->
    (match rule_findings "unsatisfiable-fairness-obligation" entry with
    | [ f ] ->
      Alcotest.(check bool) "error severity" true (f.Report.severity = Report.Error);
      Alcotest.(check (option string)) "names the pinned task" (Some "pinned")
        f.Report.where.Report.task
    | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs));
    Alcotest.(check int) "silent on the harmless spinner" 0
      (List.length
         (rule_findings "unsatisfiable-fairness-obligation" Fixtures.harmless_cycle))

let test_race_pair_dedup () =
  (* the jumpy fixture enables inc and dbl concurrently: symmetric
     dedup must report the unordered pair exactly once per state set,
     not once per ordering *)
  match Fixtures.find "race-pair" with
  | None -> Alcotest.fail "missing race-pair fixture"
  | Some entry ->
    let fs = rule_findings "race-pair" entry in
    Alcotest.(check int) "one finding for the one unordered pair" 1
      (List.length fs);
    List.iter
      (fun f ->
        Alcotest.(check (option string)) "keyed by the lexicographic task"
          (Some "dbl") f.Report.where.Report.task)
      fs

(* --- no catalog probe on the single-bucket fallback --- *)

let test_catalog_probes_hashed () =
  List.iter
    (fun { Registry.origin; entry } ->
      let check_probe name hashed =
        Alcotest.(check bool)
          (Printf.sprintf "%s(%s) pairs equal_state with a hash" name origin)
          true hashed
      in
      match entry with
      | Registry.Automaton (a, p) ->
        check_probe a.Automaton.name (p.Probe.hash_state <> None)
      | Registry.Composition (c, p) ->
        check_probe (Composition.name c) (p.Probe.hash_state <> None)
      | Registry.Spec _ -> ())
    (Catalog.items ())

(* --- lasso refutations, directly through Mc --- *)

let test_refutation_kinds () =
  let n = 3 in
  (match
     Mc.check_spec ~n Omega.spec ~detector:(Afd_automata.fd_flip_flop ~n)
   with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Alcotest.(check bool) "flipflop: safety still holds" true o.Mc.safety_proved;
    Alcotest.(check bool) "flipflop: not proved" false o.Mc.proved;
    (match o.Mc.lassos with
    | [ l ] ->
      Alcotest.(check bool) "flipflop: a fair cycle" true (l.Mc.l_kind = `Cycle);
      Alcotest.(check string) "flipflop: stable-leader" "stable-leader" l.Mc.l_clause;
      Alcotest.(check bool) "flipflop: confirmed" true l.Mc.l_confirmed
    | ls -> Alcotest.failf "flipflop: expected 1 lasso, got %d" (List.length ls)));
  match Mc.check_spec ~n Perfect.spec ~detector:(Afd_automata.fd_silent ~n) with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Alcotest.(check bool) "silent: lassos found" true (o.Mc.lassos <> []);
    List.iter
      (fun l ->
        Alcotest.(check bool)
          (l.Mc.l_clause ^ ": a fair stop with an empty cycle")
          true
          (l.Mc.l_kind = `Stop && l.Mc.l_cycle = []))
      o.Mc.lassos

(* --- qcheck: lassos replay with the violation latched --- *)

(* Replay stem + k unrollings of each reported lasso through a fresh
   online monitor and demand the refuted clause's verdict stays
   non-Sat: the lasso is a real infinite counterexample, not an
   artifact of the product construction.  [k] ranges over 2..4 — the
   checker itself only confirms k = 1..3. *)
let lassos_latch spec detector ~crashable ~k =
  let n = 3 in
  match Mc.check_spec ~crashable ~n spec ~detector with
  | Error e -> QCheck2.Test.fail_reportf "check_spec: %s" e
  | Ok o ->
    List.for_all
      (fun l ->
        let m =
          match Afd.monitor spec ~n with
          | Some m -> m
          | None -> QCheck2.Test.fail_reportf "raw spec"
        in
        List.iter (Afd_prop.Monitor.observe m) l.Mc.l_stem;
        let unroll = if l.Mc.l_cycle = [] then 0 else k in
        for _ = 1 to unroll do
          List.iter (Afd_prop.Monitor.observe m) l.Mc.l_cycle
        done;
        match List.assoc_opt l.Mc.l_clause (Afd_prop.Monitor.clause_verdicts m) with
        | Some (Verdict.Violated _ | Verdict.Undecided _) -> true
        | Some Verdict.Sat | None -> false)
      o.Mc.lassos

let lasso_replay_prop =
  let gen = QCheck2.Gen.(triple bool (int_bound 7) (int_range 2 4)) in
  let print (ff, mask, k) =
    Printf.sprintf "subject=%s crashable-mask=%d k=%d"
      (if ff then "flipflop/Omega" else "silent/P")
      mask k
  in
  QCheck2.Test.make ~count:24 ~name:"every lasso replays: clause non-Sat after k>1 unrollings"
    ~print gen
    (fun (use_flipflop, mask, k) ->
      let crashable =
        List.fold_left
          (fun acc i -> if mask land (1 lsl i) <> 0 then Loc.Set.add i acc else acc)
          Loc.Set.empty [ 0; 1; 2 ]
      in
      if use_flipflop then
        lassos_latch Omega.spec (Afd_automata.fd_flip_flop ~n:3) ~crashable ~k
      else lassos_latch Perfect.spec (Afd_automata.fd_silent ~n:3) ~crashable ~k)

let suite =
  [ Alcotest.test_case "condensation: a fair cycle is one SCC" `Quick
      test_condense_cycle;
    Alcotest.test_case "condensation: a chain is singletons + fair stop" `Quick
      test_condense_chain;
    Alcotest.test_case "livelock rule: fires on internal, silent on output" `Quick
      test_livelock_rule;
    Alcotest.test_case "unsat-fairness rule: fires on the pinned spinner" `Quick
      test_unsat_fairness_rule;
    Alcotest.test_case "race-pair: symmetric pairs deduplicated" `Quick
      test_race_pair_dedup;
    Alcotest.test_case "catalog probes: no single-bucket fallback" `Quick
      test_catalog_probes_hashed;
    Alcotest.test_case "Mc refutes flipflop with a cycle, silent with a stop" `Quick
      test_refutation_kinds;
    QCheck_alcotest.to_alcotest lasso_replay_prop;
  ]
