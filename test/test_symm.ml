(* Differential tests for the orbit reduction (lib/analysis/symm and
   the Mc quotient hook).

   The soundness claim under test: requesting symmetry never changes
   what the model checker {e claims} — same safety verdict, same
   violated clauses, every witness still replay-confirmed — it only
   changes how many states it visits.  Certified subjects quotient,
   breaking and undeclared ones fall back to unreduced, and either way
   the claims must match a plain unreduced run.  Depths and windows are
   not compared: a quotient-shortest path lifts to a genuine but not
   necessarily shortest run. *)

open Afd_analysis
module BC = Afd_bench.Check

let chk_subjects = BC.subjects @ BC.liveness_subjects

(* Run one CHK subject unreduced and with its declared symmetry at
   instance size [n]; both runs must exhaust and claim the same things.
   The GADT match and everything typed by its existentials stay inside
   this one function. *)
let claims_agree ~por ~jobs ~n (BC.S { detector; symm; spec; _ }) =
  match symm with
  | None -> true
  | Some kit ->
    let run use_sym =
      let r =
        if use_sym then
          Mc.check_spec ~max_states:20_000 ~por ~jobs ~symmetry:kit ~n spec
            ~detector:(detector n)
        else
          Mc.check_spec ~max_states:20_000 ~por ~jobs ~n spec
            ~detector:(detector n)
      in
      match r with
      | Ok o -> o
      | Error e -> Alcotest.failf "unexpected raw spec: %s" e
    in
    let raw = run false and sym = run true in
    let claims o =
      List.sort compare
        (List.map (fun v -> (v.Mc.clause, v.Mc.confirmed)) o.Mc.violations)
    in
    raw.Mc.verdict = Space.Exhausted
    && sym.Mc.verdict = Space.Exhausted
    && raw.Mc.safety_proved = sym.Mc.safety_proved
    && claims raw = claims sym
    && List.for_all (fun v -> v.Mc.confirmed) sym.Mc.violations

(* --- qcheck: quotiented == unreduced claims across the catalog --- *)

let differential_prop =
  let gen =
    QCheck2.Gen.(
      let* subj_ix = int_bound (List.length chk_subjects - 1) in
      let* por = bool in
      let* jobs = oneofl [ 1; 2; 4 ] in
      let* n = oneofl [ 2; 3 ] in
      return (subj_ix, por, jobs, n))
  in
  QCheck2.Test.make
    ~name:"Mc quotient == unreduced claims on CHK subjects x por x jobs x n"
    ~count:40
    ~print:(fun (i, por, jobs, n) ->
      Printf.sprintf "subject=%s por=%b jobs=%d n=%d"
        (BC.id (List.nth chk_subjects i))
        por jobs n)
    gen
    (fun (subj_ix, por, jobs, n) ->
      claims_agree ~por ~jobs ~n (List.nth chk_subjects subj_ix))

(* --- deterministic pins --- *)

(* n = 4 is where the quotient starts to pay: FD-P's unreduced product
   is 17976 states, its quotient 35 orbits. *)
let test_quotient_at_n4 () =
  let subj = List.find (fun s -> BC.id s = "CHK.p") chk_subjects in
  Alcotest.(check bool) "CHK.p claims agree at n=4" true
    (claims_agree ~por:false ~jobs:1 ~n:4 subj)

let statuses =
  [ ("CHK.p", `Certified); ("CHK.evp", `Breaking); ("CHK.s", `Certified);
    ("CHK.evs", `Breaking); ("CHK.omega", `Breaking);
    ("CHK.antiomega", `Breaking); ("CHK.omega2", `Breaking);
    ("CHK.psi2", `Breaking); ("CHK.sigma", `Certified); ("CHK.dk", `Certified);
    ("CHK.lying-p", `Breaking); ("CHK.marabout", `Certified);
    ("CHK.flipflop", `Breaking); ("CHK.silent", `Breaking);
  ]

(* Which subjects certify is itself part of the analyzer's contract:
   the crash-set detectors whose outputs are set-valued functions of
   the crash set certify; anything electing a {e particular} location
   (min/max), consulting its own id, or carrying scripted noise breaks
   — with a witness naming a concrete task and permutation. *)
let test_certification_statuses () =
  List.iter
    (fun (id, expect) ->
      let (BC.S { n; detector; symm; spec; _ }) =
        List.find (fun s -> BC.id s = id) chk_subjects
      in
      let kit = Option.get symm in
      match Mc.check_spec ~symmetry:kit ~n spec ~detector:(detector n) with
      | Error e -> Alcotest.failf "%s: raw spec: %s" id e
      | Ok o -> (
        match (o.Mc.sym, expect) with
        | Mc.Sym_quotient _, `Certified | Mc.Sym_breaking _, `Breaking -> ()
        | status, _ ->
          Alcotest.failf "%s: unexpected certification status %a" id
            (fun ppf -> Mc.pp_sym_status ppf)
            status))
    statuses

let test_breaking_witness_is_named () =
  let (BC.S { n; detector; symm; spec; _ }) =
    List.find (fun s -> BC.id s = "CHK.omega") chk_subjects
  in
  match
    Mc.check_spec ~symmetry:(Option.get symm) ~n spec ~detector:(detector n)
  with
  | Error e -> Alcotest.failf "raw spec: %s" e
  | Ok o -> (
    match o.Mc.sym with
    | Mc.Sym_breaking w ->
      let s = Fmt.str "%a" Symm.pp_witness w in
      Alcotest.(check bool) "witness names the detector's task" true
        (Option.is_some w.Symm.w_task);
      Alcotest.(check bool) "witness names a permutation" true
        (String.length w.Symm.w_perm > 0);
      Alcotest.(check bool) "witness renders non-trivially" true
        (String.length s > 20)
    | _ -> Alcotest.fail "FD-Omega must produce a breaking witness")

let test_parametric_ladder_pin () =
  let (BC.S { detector; symm; spec; _ }) =
    List.find (fun s -> BC.id s = "CHK.p") chk_subjects
  in
  let p = Mc.parametric ~symmetry:(Option.get symm) spec ~detector in
  (match p.Mc.par_verdict with
  | Mc.Cutoff_candidate { n0; upto } ->
    Alcotest.(check int) "cutoff candidate starts at n0=2" 2 n0;
    Alcotest.(check int) "proved up to n=5" 5 upto
  | _ -> Alcotest.fail "expected a cutoff candidate for FD-P vs P");
  Alcotest.(check (list int)) "one point per instance" [ 2; 3; 4; 5 ]
    (List.map (fun pt -> pt.Mc.pt_n) p.Mc.par_points);
  List.iter
    (fun pt ->
      Alcotest.(check bool)
        (Printf.sprintf "n=%d proved on the quotient" pt.Mc.pt_n)
        true pt.Mc.pt_proved)
    p.Mc.par_points;
  (* orbit counts grow polynomially where raw states explode: the last
     instance is out of the unreduced explorer's default budget *)
  let orbits = List.map (fun pt -> pt.Mc.pt_orbits) p.Mc.par_points in
  Alcotest.(check bool) "orbit curve is increasing" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < 3) orbits) (List.tl orbits));
  let last = List.nth p.Mc.par_points 3 in
  Alcotest.(check bool) "n=5 is beyond the unreduced budget" true
    (last.Mc.pt_raw_states = None);
  (* and the JSON rendering carries the verdict and the curve *)
  let json = Mc.parametric_to_json p in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "json has the verdict" true
    (contains json "\"kind\":\"cutoff-candidate\"");
  Alcotest.(check bool) "json has raw-state nulls past the budget" true
    (contains json "\"raw_states\":null")

let test_sy_all_rows_ok () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s (%s): quotiented run agrees" r.BC.sy_id r.BC.sy_status)
        true r.BC.sy_ok)
    (BC.sy_all ~max_states:4_000 ())

let suite =
  [ QCheck_alcotest.to_alcotest differential_prop;
    Alcotest.test_case "quotient pays at n=4 (FD-P)" `Quick test_quotient_at_n4;
    Alcotest.test_case "certification statuses are pinned" `Quick
      test_certification_statuses;
    Alcotest.test_case "breaking witness names task and permutation" `Quick
      test_breaking_witness_is_named;
    Alcotest.test_case "parametric ladder: FD-P cutoff candidate" `Quick
      test_parametric_ladder_pin;
    Alcotest.test_case "sy_all: every row agrees" `Quick test_sy_all_rows_ok;
  ]
