(* Small-module unit coverage: Verdict, Msg, Fd_event, Spec_util,
   Problem, Fairness edge cases, pretty-printers. *)

open Afd_ioa
open Afd_core
open Afd_system

(* --- Verdict --- *)

let test_verdict_algebra () =
  let open Verdict in
  Alcotest.(check bool) "sat && sat" true (is_sat (Sat &&& Sat));
  Alcotest.(check bool) "violated dominates undecided" true
    (is_violated (Undecided "u" &&& Violated "v"));
  Alcotest.(check bool) "undecided dominates sat" false (is_sat (Sat &&& Undecided "u"));
  Alcotest.(check bool) "all empty is sat" true (is_sat (all []));
  Alcotest.(check bool) "of_bool false" true (is_violated (of_bool ~error:"e" false));
  Alcotest.(check string) "pp violated" "violated (boom)" (Fmt.str "%a" pp (Violated "boom"));
  (match Violated "a" &&& Violated "b" with
  | Violated r -> Alcotest.(check string) "violated reasons accumulate" "a; b" r
  | _ -> Alcotest.fail "violated &&& violated must stay violated");
  (match all [ Undecided "u1"; Sat; Undecided "u2" ] with
  | Undecided r -> Alcotest.(check string) "undecided reasons accumulate" "u1; u2" r
  | _ -> Alcotest.fail "all over undecided must stay undecided");
  (match tag "clause" (Undecided "u") with
  | Undecided r -> Alcotest.(check string) "tag prefixes the reason" "clause: u" r
  | _ -> Alcotest.fail "tag must preserve the class")

(* --- Msg.vset --- *)

let test_vset () =
  let open Msg in
  Alcotest.(check (option bool)) "min empty" None (vset_min vset_empty);
  Alcotest.(check (option bool)) "min {1}" (Some true) (vset_min (vset_of true));
  Alcotest.(check (option bool)) "min {0,1}" (Some false)
    (vset_min (vset_union (vset_of true) (vset_of false)));
  Alcotest.(check bool) "mem" true (vset_mem true (vset_of true));
  Alcotest.(check bool) "not mem" false (vset_mem false (vset_of true));
  Alcotest.(check string) "pp" "{0,1}"
    (Fmt.str "%a" pp_vset (vset_union (vset_of false) (vset_of true)))

(* --- Fd_event --- *)

let test_fd_event () =
  let t =
    [ Fd_event.Output (0, "a"); Fd_event.Crash 1; Fd_event.Output (0, "b");
      Fd_event.Crash 2 ]
  in
  Alcotest.(check (list string)) "outputs_at" [ "a"; "b" ] (Fd_event.outputs_at 0 t);
  Alcotest.(check (option string)) "last_output_at" (Some "b") (Fd_event.last_output_at 0 t);
  Alcotest.(check (option int)) "first_crash_index" (Some 1) (Fd_event.first_crash_index 1 t);
  Alcotest.(check (option int)) "no crash" None (Fd_event.first_crash_index 0 t);
  Alcotest.(check bool) "faulty" true (Loc.Set.equal (Fd_event.faulty t) (Loc.Set.of_list [ 1; 2 ]));
  Alcotest.(check bool) "live" true
    (Loc.Set.equal (Fd_event.live ~n:4 t) (Loc.Set.of_list [ 0; 3 ]));
  let mapped = List.map (Fd_event.map String.length) t in
  Alcotest.(check (list int)) "map payloads" [ 1; 1 ]
    (Fd_event.outputs_at 0 mapped)

(* --- Spec_util --- *)

let test_spec_util () =
  let t = [ Fd_event.Output (0, 1); Fd_event.Crash 1; Fd_event.Output (0, 2) ] in
  (match Spec_util.last_outputs_of_live ~n:2 t with
  | Ok (m, live) ->
    Alcotest.(check (option int)) "last at p0" (Some 2) (Loc.Map.find_opt 0 m);
    Alcotest.(check bool) "live = {p0}" true (Loc.Set.equal live (Loc.Set.singleton 0))
  | Error _ -> Alcotest.fail "should resolve");
  (match Spec_util.last_outputs_of_live ~n:3 t with
  | Error (Verdict.Undecided _) -> () (* p2 live without outputs *)
  | _ -> Alcotest.fail "expected undecided");
  let v =
    Spec_util.for_all_outputs t (fun ~crashed _ o ->
        if o = 2 && not (Loc.Set.mem 1 crashed) then Error "2 before crash" else Ok ())
  in
  Alcotest.(check bool) "crashed-so-far tracking" true (Verdict.is_sat v)

(* --- Problem --- *)

let test_problem () =
  let p = Problem.of_afd Omega.spec ~n:2 in
  let t = [ Fd_event.Output (0, 0); Fd_event.Output (1, 0) ] in
  Alcotest.(check bool) "afd as problem accepts" true (Verdict.is_sat (p.Problem.check t));
  Alcotest.(check bool) "crash is input" true (p.Problem.is_input (Fd_event.Crash 0));
  Alcotest.(check bool) "output classified" true
    (p.Problem.is_output (Fd_event.Output (0, 0)));
  (match Problem.solves p ~traces:[ t ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* solves_using: vacuous when the hypothesis problem is violated
     (here the hypothesis trace breaks validity, so nothing is
     demanded of the conclusion) *)
  let bad_hyp = [ Fd_event.Crash 0; Fd_event.Output (0, 0); Fd_event.Output (1, 1) ] in
  match Problem.solves_using p ~using:(Problem.of_afd Omega.spec ~n:2) ~traces:[ bad_hyp ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_problem_solves_violation () =
  let p = Problem.of_afd Omega.spec ~n:2 in
  let bad = [ Fd_event.Crash 0; Fd_event.Output (0, 1); Fd_event.Output (1, 1) ] in
  match Problem.solves p ~traces:[ bad ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "output after crash must be flagged"

(* --- Fairness edge cases --- *)

let test_fairness_quiescent () =
  (* a system that quiesces: final report must say so *)
  let one_shot =
    let kind = function `Fire -> Some Automaton.Output in
    let step s `Fire = if s then Some false else None in
    { Automaton.name = "oneshot";
      kind;
      start = true;
      step = (fun s a -> step s a);
      tasks =
        [ { Automaton.task_name = "t";
            fair = true;
            enabled = (fun s -> if s then Some `Fire else None);
          } ];
    }
  in
  let comp = Composition.make ~name:"q" [ Component.C one_shot ] in
  let outcome = Scheduler.run comp Scheduler.default_cfg in
  let report = Fairness.analyze comp outcome.Scheduler.execution in
  Alcotest.(check bool) "quiescent end" true report.Fairness.quiescent_end;
  Alcotest.(check bool) "fair prefix" true report.Fairness.fair_prefix;
  Alcotest.(check (list (pair string int))) "one firing" [ ("oneshot/t", 1) ] report.Fairness.firings

(* --- Act pretty-printing (stable formats used in logs) --- *)

let test_act_pp () =
  let check s a = Alcotest.(check string) s s (Fmt.str "%a" Act.pp a) in
  check "crash_p2" (Act.Crash 2);
  check "propose(true)_p0" (Act.Propose { at = 0; v = true });
  check "decide(false)_p1" (Act.Decide { at = 1; v = false });
  check "send(ping(3),p1)_p0" (Act.Send { src = 0; dst = 1; msg = Msg.Ping 3 });
  check "FD-P({p1})_p0"
    (Act.Fd { at = 0; detector = "P"; payload = Act.Pset (Loc.Set.singleton 1) });
  check "query-participant_p1" (Act.Query { at = 1; detector = "participant" });
  check "step(advance)_p2" (Act.Step { at = 2; tag = "advance" })

let test_loc_pp () =
  Alcotest.(check string) "loc" "p7" (Loc.to_string 7);
  Alcotest.(check string) "set" "{p0,p2}"
    (Fmt.str "%a" Loc.pp_set (Loc.Set.of_list [ 2; 0 ]))

let suite =
  [ Alcotest.test_case "verdict algebra" `Quick test_verdict_algebra;
    Alcotest.test_case "vset" `Quick test_vset;
    Alcotest.test_case "fd_event helpers" `Quick test_fd_event;
    Alcotest.test_case "spec_util" `Quick test_spec_util;
    Alcotest.test_case "problem wrapper" `Quick test_problem;
    Alcotest.test_case "problem flags violations" `Quick test_problem_solves_violation;
    Alcotest.test_case "fairness on quiescent runs" `Quick test_fairness_quiescent;
    Alcotest.test_case "act pretty-printing" `Quick test_act_pp;
    Alcotest.test_case "loc pretty-printing" `Quick test_loc_pp;
  ]
