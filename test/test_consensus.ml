(* Consensus (E9): spec monitors, flooding-with-P, Synod-with-Omega,
   and consensus through the EvP->Omega reduction, across randomized
   schedules and fault patterns. *)

open Afd_ioa
open Afd_core
open Afd_system
module C = Afd_consensus

(* --- spec monitor unit tests --- *)

let p v at = Act.Propose { at; v }
let d v at = Act.Decide { at; v }

let test_agreement_monitor () =
  Alcotest.(check bool) "ok" true (Verdict.is_sat (C.Spec.agreement [ d true 0; d true 1 ]));
  Alcotest.(check bool) "violation" true
    (Verdict.is_violated (C.Spec.agreement [ d true 0; d false 1 ]))

let test_validity_monitor () =
  Alcotest.(check bool) "ok" true
    (Verdict.is_sat (C.Spec.validity [ p true 0; d true 1 ]));
  Alcotest.(check bool) "violation" true
    (Verdict.is_violated (C.Spec.validity [ p false 0; d true 1 ]))

let test_termination_monitor () =
  (match C.Spec.termination ~n:2 [ d true 0 ] with
  | Verdict.Undecided _ -> ()
  | v -> Alcotest.failf "expected undecided, got %a" Verdict.pp v);
  Alcotest.(check bool) "double decision" true
    (Verdict.is_violated (C.Spec.termination ~n:2 [ d true 0; d true 0; d true 1 ]));
  Alcotest.(check bool) "all decided" true
    (Verdict.is_sat (C.Spec.termination ~n:2 [ d true 0; d true 1 ]))

let test_crash_validity_monitor () =
  Alcotest.(check bool) "decide after crash" true
    (Verdict.is_violated (C.Spec.crash_validity [ Act.Crash 0; d true 0 ]));
  Alcotest.(check bool) "decide before crash ok" true
    (Verdict.is_sat (C.Spec.crash_validity [ d true 0; Act.Crash 0 ]))

let test_conditional_spec () =
  (* hypothesis broken (two proposals at one location): vacuously sat *)
  let t = [ p true 0; p false 0; d true 0; d false 1 ] in
  Alcotest.(check bool) "vacuous" true (Verdict.is_sat (C.Spec.check ~n:2 ~f:0 t));
  (* f-crash limitation broken: vacuously sat *)
  let t = [ Act.Crash 0; Act.Crash 1; d true 0 ] in
  Alcotest.(check bool) "crash limit broken" true (Verdict.is_sat (C.Spec.check ~n:2 ~f:1 t))

(* --- algorithm runs --- *)

let run_check name ~n ~f mk_net fault_patterns =
  Alcotest.test_case name `Quick (fun () ->
      List.iter
        (fun (seed, crash_at, steps) ->
          let crashable =
            List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at
          in
          let net : Net.t = mk_net ~crashable in
          let r = Net.run net ~seed ~crash_at ~steps in
          match C.Spec.check ~n ~f r.Net.trace with
          | Verdict.Sat -> ()
          | Verdict.Violated m -> Alcotest.failf "seed %d: VIOLATED %s" seed m
          | Verdict.Undecided m -> Alcotest.failf "seed %d: undecided (%s) - raise steps" seed m)
        fault_patterns)

let flood_patterns =
  [ (1, [], 1200);
    (2, [ (25, 1) ], 2000);
    (3, [ (0, 0) ], 2000);
    (4, [ (10, 2); (60, 0) ], 2500);
    (5, [ (100, 1) ], 2500);
  ]

let synod_patterns =
  [ (1, [], 3000); (2, [ (30, 0) ], 5000); (3, [ (15, 2) ], 5000); (4, [ (80, 1) ], 5000) ]

let test_flood_n1 () =
  (* degenerate single-location instance *)
  let net = C.Flood_p.net ~n:1 ~f:0 ~crashable:Loc.Set.empty () in
  let r = Net.run net ~seed:1 ~crash_at:[] ~steps:200 in
  match C.Spec.check ~n:1 ~f:0 r.Net.trace with
  | Verdict.Sat -> ()
  | v -> Alcotest.failf "%a" Verdict.pp v

let test_flood_detector_stream_valid () =
  let net = C.Flood_p.net ~n:3 ~f:2 ~crashable:(Loc.Set.of_list [ 0; 1 ]) () in
  let r = Net.run net ~seed:9 ~crash_at:[ (20, 0); (50, 1) ] ~steps:2500 in
  match Afd.check Perfect.spec ~n:3 (Act.fd_trace_set ~detector:"P" r.Net.trace) with
  | Verdict.Sat -> ()
  | v -> Alcotest.failf "embedded P stream bad: %a" Verdict.pp v

let test_synod_many_seeds () =
  (* broad randomized sweep; tolerate Undecided only by raising steps *)
  List.iter
    (fun seed ->
      let net = C.Synod_omega.net ~n:5 ~crashable:(Loc.Set.of_list [ 0; 3 ]) () in
      let r = Net.run net ~seed ~crash_at:[ (40, 0); (90, 3) ] ~steps:8000 in
      match C.Spec.check ~n:5 ~f:2 r.Net.trace with
      | Verdict.Sat -> ()
      | v -> Alcotest.failf "seed %d: %a" seed Verdict.pp v)
    (List.init 10 Fun.id)

let test_synod_safety_beyond_f () =
  (* With more crashes than a minority, termination may fail but the
     safety clauses must hold. *)
  List.iter
    (fun seed ->
      let net = C.Synod_omega.net ~n:3 ~crashable:(Loc.Set.of_list [ 0; 1 ]) () in
      let r = Net.run net ~seed ~crash_at:[ (20, 0); (35, 1) ] ~steps:4000 in
      let t = r.Net.trace in
      match
        Verdict.(C.Spec.agreement t &&& C.Spec.validity t &&& C.Spec.crash_validity t)
      with
      | Verdict.Violated m -> Alcotest.failf "seed %d: safety broken: %s" seed m
      | _ -> ())
    (List.init 8 Fun.id)

let test_via_reduction () =
  List.iter
    (fun (seed, crash_at, steps) ->
      let crashable =
        List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at
      in
      let net = C.Via_reduction.net ~n:3 ~crashable () in
      let r = Net.run net ~seed ~crash_at ~steps in
      match C.Spec.check ~n:3 ~f:1 r.Net.trace with
      | Verdict.Sat -> ()
      | v -> Alcotest.failf "seed %d: %a" seed Verdict.pp v)
    [ (1, [], 6000); (2, [ (50, 2) ], 8000); (3, [ (30, 1) ], 8000) ]

let test_flood_scripted_values () =
  (* validity pins the decision when all proposals agree *)
  let net =
    C.Flood_p.net ~n:3 ~f:1 ~values:[ true; true; true ] ~crashable:Loc.Set.empty ()
  in
  let r = Net.run net ~seed:4 ~crash_at:[] ~steps:1500 in
  let ds = Net.decisions r.Net.trace in
  Alcotest.(check int) "three decisions" 3 (List.length ds);
  Alcotest.(check bool) "all true" true (List.for_all (fun (_, v) -> v) ds)

let suite =
  [ Alcotest.test_case "agreement monitor" `Quick test_agreement_monitor;
    Alcotest.test_case "validity monitor" `Quick test_validity_monitor;
    Alcotest.test_case "termination monitor" `Quick test_termination_monitor;
    Alcotest.test_case "crash-validity monitor" `Quick test_crash_validity_monitor;
    Alcotest.test_case "conditional T_P (vacuous cases)" `Quick test_conditional_spec;
    run_check "flooding with P: randomized sweep" ~n:3 ~f:2
      (fun ~crashable -> C.Flood_p.net ~n:3 ~f:2 ~crashable ())
      flood_patterns;
    run_check "flooding with P: n=4" ~n:4 ~f:1
      (fun ~crashable -> C.Flood_p.net ~n:4 ~f:1 ~crashable ())
      [ (1, [], 2500); (2, [ (30, 3) ], 4000) ];
    Alcotest.test_case "flooding n=1" `Quick test_flood_n1;
    Alcotest.test_case "embedded detector stream valid" `Quick test_flood_detector_stream_valid;
    run_check "synod with Omega: randomized sweep" ~n:3 ~f:1
      (fun ~crashable -> C.Synod_omega.net ~n:3 ~crashable ())
      synod_patterns;
    Alcotest.test_case "synod n=5 f=2, 10 seeds" `Slow test_synod_many_seeds;
    Alcotest.test_case "synod safety beyond minority" `Quick test_synod_safety_beyond_f;
    Alcotest.test_case "consensus via EvP->Omega reduction" `Slow test_via_reduction;
    Alcotest.test_case "scripted unanimous values" `Quick test_flood_scripted_values;
  ]
