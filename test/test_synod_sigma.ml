(* Consensus from Sigma + Omega: dynamic quorums replace majorities,
   pushing tolerance from f < n/2 to f <= n-1. *)

open Afd_ioa
open Afd_core
open Afd_system
module C = Afd_consensus

let run ~n ~crash_at ~seed ~steps =
  let crashable =
    List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at
  in
  let net = C.Synod_sigma.net ~n ~crashable () in
  (Net.run net ~seed ~crash_at ~steps).Net.trace

let test_crash_free () =
  List.iter
    (fun seed ->
      let t = run ~n:3 ~crash_at:[] ~seed ~steps:4000 in
      match C.Spec.check ~n:3 ~f:0 t with
      | Verdict.Sat -> ()
      | v -> Alcotest.failf "seed %d: %a" seed Verdict.pp v)
    [ 1; 2; 3 ]

let test_beyond_minority () =
  (* two of three crash: impossible for majority-based synod, fine for
     Sigma quorums *)
  List.iter
    (fun seed ->
      let t = run ~n:3 ~crash_at:[ (30, 0); (70, 1) ] ~seed ~steps:6000 in
      match C.Spec.check ~n:3 ~f:2 t with
      | Verdict.Sat -> ()
      | v -> Alcotest.failf "seed %d: %a" seed Verdict.pp v)
    (List.init 8 Fun.id)

let test_all_but_one_crash () =
  let t = run ~n:4 ~crash_at:[ (20, 0); (50, 1); (90, 2) ] ~seed:3 ~steps:9000 in
  match C.Spec.check ~n:4 ~f:3 t with
  | Verdict.Sat -> ()
  | v -> Alcotest.failf "%a" Verdict.pp v

let test_majority_synod_contrast () =
  (* the same two-of-three fault pattern leaves the majority-based
     synod undecided (its waits never complete), while safety still
     holds: the exact gap Sigma closes *)
  let crashable = Loc.Set.of_list [ 0; 1 ] in
  let net = C.Synod_omega.net ~n:3 ~crashable () in
  let r = Net.run net ~seed:3 ~crash_at:[ (10, 0); (25, 1) ] ~steps:6000 in
  let t = r.Net.trace in
  (match
     Verdict.(C.Spec.agreement t &&& C.Spec.validity t &&& C.Spec.crash_validity t)
   with
  | Verdict.Violated m -> Alcotest.failf "safety broken: %s" m
  | _ -> ());
  match C.Spec.termination ~n:3 t with
  | Verdict.Sat -> Alcotest.fail "majority synod should not terminate with 2/3 crashed"
  | Verdict.Undecided _ -> ()
  | Verdict.Violated m -> Alcotest.failf "termination monitor: %s" m

let test_sigma_stream_valid () =
  let t = run ~n:3 ~crash_at:[ (30, 1) ] ~seed:5 ~steps:4000 in
  match
    Afd.check Sigma.spec ~n:3 (Act.fd_trace_set ~detector:C.Synod_sigma.sigma_name t)
  with
  | Verdict.Sat -> ()
  | v -> Alcotest.failf "embedded Sigma stream: %a" Verdict.pp v

let suite =
  [ Alcotest.test_case "crash-free" `Quick test_crash_free;
    Alcotest.test_case "f=2 of n=3 (beyond minority)" `Quick test_beyond_minority;
    Alcotest.test_case "f=3 of n=4" `Quick test_all_but_one_crash;
    Alcotest.test_case "contrast: majority synod stalls there" `Quick
      test_majority_synod_contrast;
    Alcotest.test_case "embedded Sigma stream valid" `Quick test_sigma_stream_valid;
  ]
