(* Foundational I/O-automata facts the paper's proofs invoke
   (Theorem 8.1 of Lynch's book, cited throughout Sections 6-8):
   the projection of a composed execution's trace onto any component's
   signature is a trace of that component.  Verified by replaying
   projections of real system runs on each component in isolation.
   Plus: schedulers are deterministic given their seed (reproducibility
   of every experiment in this repository). *)

open Afd_ioa
open Afd_system
module C = Afd_consensus

let test_theorem_8_1_projection () =
  let n = 3 in
  let net = C.Flood_p.net ~n ~f:1 ~crashable:(Loc.Set.singleton 1) () in
  let r = Net.run net ~seed:21 ~crash_at:[ (30, 1) ] ~steps:1200 in
  let comps = Composition.components net.Net.composition in
  Array.iter
    (fun comp ->
      (* project the system trace on this component's signature ... *)
      let projected =
        List.filter (fun a -> Component.kind_of comp a <> None) r.Net.trace
      in
      (* ... and replay it on the component alone *)
      let rec replay inst = function
        | [] -> Ok ()
        | a :: rest -> (
          match Component.step inst a with
          | Some inst' -> replay inst' rest
          | None ->
            Error
              (Fmt.str "component %s rejects projected action %a"
                 (Component.name comp) Act.pp a))
      in
      match replay (Component.init comp) projected with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    comps

let test_scheduler_reproducible () =
  let mk () =
    let net = C.Synod_omega.net ~n:3 ~crashable:(Loc.Set.singleton 0) () in
    (Net.run net ~seed:77 ~crash_at:[ (25, 0) ] ~steps:1500).Net.trace
  in
  let t1 = mk () and t2 = mk () in
  Alcotest.(check int) "same length" (List.length t1) (List.length t2);
  Alcotest.(check bool) "identical traces" true (List.for_all2 Act.equal t1 t2)

let test_different_seeds_differ () =
  let mk seed =
    let net = C.Synod_omega.net ~n:3 ~crashable:Loc.Set.empty () in
    (Net.run net ~seed ~crash_at:[] ~steps:400).Net.trace
  in
  Alcotest.(check bool) "seeds matter" false
    (List.equal Act.equal (mk 1) (mk 2))

let test_round_robin_reproducible () =
  let mk () =
    let net = C.Flood_p.net ~n:3 ~f:1 ~crashable:Loc.Set.empty () in
    (Net.run_round_robin net ~crash_at:[] ~steps:600).Net.trace
  in
  Alcotest.(check bool) "round robin deterministic" true
    (List.equal Act.equal (mk ()) (mk ()))

let suite =
  [ Alcotest.test_case "Theorem 8.1: projections are component traces" `Quick
      test_theorem_8_1_projection;
    Alcotest.test_case "scheduler reproducible per seed" `Quick test_scheduler_reproducible;
    Alcotest.test_case "different seeds give different runs" `Quick
      test_different_seeds_differ;
    Alcotest.test_case "round-robin deterministic" `Quick test_round_robin_reproducible;
  ]
