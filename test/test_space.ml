(* Tests for the hashed state-space explorer (lib/analysis/space.ml),
   its POR reduction, and the exhaustive MC pass over the bench
   subjects.

   The load-bearing properties: the hashed seen-set visits exactly the
   states the legacy list scan visited, in the same order, on every
   catalog subject; truncation is an explicit verdict, never silent;
   sleep-set POR preserves the reachable set (provably, on exhausted
   explorations) while pruning interleavings; and the MC gate proves
   every truthful CHK subject while refuting both broken ones with
   confirmed shortest counterexamples.  A qcheck property ties the
   explorer to the scheduler: no random execution ever leaves the
   exhaustively computed reachable set. *)

open Afd_ioa
open Afd_core
open Afd_analysis

let pp_act fmt = function
  | Fixtures.Tick k -> Fmt.pf fmt "tick%d" k
  | Fixtures.Reset -> Format.pp_print_string fmt "reset"
  | Fixtures.Noise -> Format.pp_print_string fmt "noise"

(* --- hashed explorer == legacy list scan, across the catalog --- *)

let test_differential_vs_list () =
  let checked = ref 0 in
  List.iter
    (fun { Registry.origin; entry } ->
      let subj = Subject.make ~origin entry in
      match subj.Subject.packed with
      | None -> ()
      | Some (Subject.P { aut = a; probe = p; _ }) ->
        incr checked;
        let hashed = Explore.reachable a p in
        let listed = Explore.list_based a p in
        Alcotest.(check int)
          (subj.Subject.name ^ ": same state count")
          (List.length listed) (List.length hashed);
        List.iter2
          (fun x y ->
            Alcotest.(check bool)
              (subj.Subject.name ^ ": same visit order")
              true (p.Probe.equal_state x y))
          hashed listed)
    (Catalog.items ());
  Alcotest.(check bool) "covered a real spread of subjects" true (!checked >= 20)

let test_hash_fallback_single_bucket () =
  (* a custom equality with no hash degrades to one bucket but stays
     correct: Loc.Set.equal identifies structurally distinct AVL trees *)
  let a = Afd_automata.fd_perfect ~n:3 in
  let mk ?hash_state () =
    Probe.make
      ~equal_action:(Fd_event.equal Loc.Set.equal)
      ~pp_action:(Fd_event.pp Loc.pp_set)
      ~equal_state:Loc.Set.equal ?hash_state
      [ Fd_event.Crash 0; Fd_event.Crash 1; Fd_event.Crash 2 ]
  in
  let no_hash = mk () in
  Alcotest.(check bool) "custom equality without hash -> None" true
    (no_hash.Probe.hash_state = None);
  let with_hash = mk ~hash_state:(fun s -> Hashtbl.hash (Loc.Set.elements s)) () in
  let r1 = Explore.reachable a no_hash and r2 = Explore.reachable a with_hash in
  Alcotest.(check int) "same count with and without hash" (List.length r1)
    (List.length r2);
  List.iter2
    (fun x y ->
      Alcotest.(check bool) "same order with and without hash" true
        (Loc.Set.equal x y))
    r1 r2

(* --- seed dedup, visit order, truncation verdicts --- *)

let counter_probe ?max_states ?seed_states () =
  Probe.make ~pp_action:pp_act ?max_states ?seed_states
    [ Fixtures.Tick 1; Fixtures.Tick 2; Fixtures.Tick 3; Fixtures.Reset ]

let test_seed_dedup_and_visit_order () =
  let c = Fixtures.counter ~name:"c" ~limit:3 in
  (* 0 duplicates the start state, the second 2 duplicates a seed *)
  let p = counter_probe ~seed_states:[ 2; 0; 2; 1 ] () in
  let sp = Space.explore c p in
  Alcotest.(check int) "duplicate seeds counted" 2 sp.Space.stats.Space.dup_seeds;
  Alcotest.(check (list int)) "pinned visit order: start, deduped seeds, BFS"
    [ 0; 2; 1; 3 ] (Space.reachable sp);
  Alcotest.(check string) "exhausted" "exhausted"
    (Space.verdict_string sp.Space.verdict)

let test_truncation_verdict () =
  let c = Fixtures.counter ~name:"c" ~limit:3 in
  let sp = Space.explore c (counter_probe ~max_states:2 ()) in
  (match sp.Space.verdict with
  | Space.Truncated cap -> Alcotest.(check int) "cap recorded" 2 cap
  | Space.Exhausted -> Alcotest.fail "expected truncation at cap 2");
  Alcotest.(check int) "exactly the budget" 2 (Array.length sp.Space.states);
  let full = Space.explore c (counter_probe ~max_states:64 ()) in
  Alcotest.(check bool) "full run exhausts" true
    (full.Space.verdict = Space.Exhausted);
  Alcotest.(check int) "4 counter states" 4 (Array.length full.Space.states)

(* --- POR: same reachable set, fewer interleavings --- *)

let independent_pair () =
  (* two components with disjoint alphabets: every cross-component pair
     of moves commutes, so POR may sleep one order of each diamond *)
  let cnt ~name ~act =
    let kind a = if a = act then Some Automaton.Output else None in
    let step s a = if a = act && s < 3 then Some (s + 1) else None in
    { Automaton.name;
      kind;
      start = 0;
      step;
      tasks =
        [ { Automaton.task_name = "inc";
            fair = true;
            enabled = (fun s -> if s < 3 then Some act else None);
          }
        ];
    }
  in
  Composition.make ~name:"pair"
    [ Component.C (cnt ~name:"a" ~act:(Fixtures.Tick 1));
      Component.C (cnt ~name:"b" ~act:(Fixtures.Tick 2));
    ]

let explore_pair ~por =
  let a = Composition.as_automaton (independent_pair ()) in
  let p =
    Probe.make ~pp_action:pp_act ~equal_state:Composition.equal_state
      ~hash_state:Composition.hash_state ~max_states:64 []
  in
  Space.explore ~por a p

let test_por_preserves_reachable_set () =
  let off = explore_pair ~por:false and on = explore_pair ~por:true in
  Alcotest.(check bool) "both exhausted" true
    (off.Space.verdict = Space.Exhausted && on.Space.verdict = Space.Exhausted);
  Alcotest.(check int) "4x4 product states" 16 (Array.length off.Space.states);
  Alcotest.(check int) "POR finds the same count" 16 (Array.length on.Space.states);
  let mem states s = Array.exists (Composition.equal_state s) states in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "POR state in full set" true
        (mem off.Space.states s))
    on.Space.states;
  Array.iter
    (fun s ->
      Alcotest.(check bool) "full state in POR set" true (mem on.Space.states s))
    off.Space.states;
  Alcotest.(check bool) "POR actually slept interleavings" true
    (on.Space.stats.Space.slept > 0);
  Alcotest.(check bool) "POR explored fewer edges" true
    (Array.length on.Space.edges < Array.length off.Space.edges)

(* --- the MC pass over the bench subjects --- *)

let test_mc_truthful_proved () =
  match Mc.check_spec ~n:3 Perfect.spec ~detector:(Afd_automata.fd_perfect ~n:3) with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Alcotest.(check bool) "exhausted" true (o.Mc.verdict = Space.Exhausted);
    Alcotest.(check bool) "proved" true o.Mc.proved;
    Alcotest.(check (list string)) "no violations" []
      (List.map (fun v -> v.Mc.clause) o.Mc.violations);
    Alcotest.(check bool) "some safety clauses were checked" true
      (o.Mc.safety_clauses <> [])

let find_mc id rs =
  match List.find_opt (fun r -> String.equal r.Afd_bench.Check.mc_id id) rs with
  | Some r -> r
  | None -> Alcotest.failf "missing MC row %s" id

let test_mc_all_subjects () =
  let open Afd_bench.Check in
  let rs = mc_all () in
  Alcotest.(check int) "all 14 CHK subjects model-checked" 14 (List.length rs);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.mc_id ^ " exhaustive") true r.mc_exhaustive;
      Alcotest.(check bool) (r.mc_id ^ " meets its expectation") true r.mc_ok)
    rs;
  let lying = find_mc "CHK.lying-p" rs in
  (match lying.mc_violations with
  | [ v ] ->
    Alcotest.(check string) "lying-p: edge violation" "edge" v.vkind;
    Alcotest.(check int) "lying-p: shortest prefix has 1 event" 1 v.depth;
    Alcotest.(check int) "lying-p: counterexample index" 0 v.index;
    Alcotest.(check bool) "lying-p: replay-confirmed" true v.confirmed
  | vs -> Alcotest.failf "lying-p: expected 1 violation, got %d" (List.length vs));
  (match (find_mc "CHK.marabout" rs).mc_violations with
  | [ v ] ->
    Alcotest.(check string) "marabout: judgement violation" "judgement" v.vkind;
    Alcotest.(check int) "marabout: shortest prefix has 2 events" 2 v.depth;
    Alcotest.(check int) "marabout: counterexample index" 1 v.index;
    Alcotest.(check bool) "marabout: replay-confirmed" true v.confirmed
  | vs -> Alcotest.failf "marabout: expected 1 violation, got %d" (List.length vs));
  (* the liveness pass left nothing undecided, and the two limit-broken
     detectors were refuted by the right kind of lasso *)
  List.iter
    (fun r ->
      Alcotest.(check (list string))
        (r.mc_id ^ ": no liveness clause skipped")
        [] r.mc_liveness_skipped)
    rs;
  (match (find_mc "CHK.flipflop" rs).mc_lassos with
  | [ l ] ->
    Alcotest.(check string) "flipflop: fair-cycle lasso" "fair-cycle" l.lkind;
    Alcotest.(check string) "flipflop: stable-leader refuted" "stable-leader"
      l.lclause;
    Alcotest.(check bool) "flipflop: cycle is nonempty" true (l.lcycle > 0);
    Alcotest.(check bool) "flipflop: replay-confirmed" true l.lconfirmed
  | ls -> Alcotest.failf "flipflop: expected 1 lasso, got %d" (List.length ls));
  let silent = find_mc "CHK.silent" rs in
  Alcotest.(check bool) "silent: at least one lasso" true (silent.mc_lassos <> []);
  List.iter
    (fun l ->
      Alcotest.(check string) (l.lclause ^ ": fair stop") "fair-stop" l.lkind;
      Alcotest.(check int) (l.lclause ^ ": empty cycle") 0 l.lcycle;
      Alcotest.(check bool) (l.lclause ^ ": replay-confirmed") true l.lconfirmed)
    silent.mc_lassos

(* --- qcheck: sampled executions stay inside the exhaustive set --- *)

let containment_prop =
  let n = 3 in
  let crashable = Loc.set_of_universe ~n in
  let comp () =
    Composition.make ~name:"fd-system"
      [ Component.C (Afd_automata.fd_perfect ~n);
        Component.C (Afd_automata.crash_automaton ~n ~crashable);
      ]
  in
  let space =
    let p =
      Probe.make
        ~equal_action:(Fd_event.equal Loc.Set.equal)
        ~pp_action:(Fd_event.pp Loc.pp_set)
        ~equal_state:Composition.equal_state ~hash_state:Composition.hash_state
        ~max_states:20_000 []
    in
    Space.explore (Composition.as_automaton (comp ())) p
  in
  assert (space.Space.verdict = Space.Exhausted);
  let buckets = Hashtbl.create 64 in
  Array.iter
    (fun s -> Hashtbl.add buckets (Composition.hash_state s) s)
    space.Space.states;
  let mem s =
    List.exists (Composition.equal_state s)
      (Hashtbl.find_all buckets (Composition.hash_state s))
  in
  let gen =
    QCheck2.Gen.(
      triple (int_bound 10_000)
        (list_size (int_bound 3)
           (map2 (fun step loc -> (step, loc mod n)) (int_bound 40) (int_bound (n - 1))))
        (int_bound 2))
  in
  QCheck2.Test.make
    ~name:"every state of a random execution is in the exhaustive reachable set"
    ~count:200 gen
    (fun (seed, crash_at, retention_ix) ->
      let retention =
        match retention_ix with
        | 0 -> Scheduler.Full
        | 1 -> Scheduler.Trace_only
        | _ -> Scheduler.Window 4
      in
      let forced =
        List.map
          (fun (at_step, i) ->
            { Scheduler.at_step; task_pattern = "crash/crash_" ^ Loc.to_string i })
          crash_at
      in
      let cfg =
        { Scheduler.policy = Scheduler.Random seed;
          max_steps = 60;
          stop_when_quiescent = true;
          forced;
        }
      in
      let contained = ref true in
      let outcome =
        Scheduler.run ~retention ~record_fired:false
          ~observer:(fun ~step:_ _ _ ~touched:_ st ->
            if not (mem st) then contained := false)
          (comp ()) cfg
      in
      !contained && mem outcome.Scheduler.final_state)

(* --- qcheck: deliberately colliding hashes never corrupt dedup --- *)

let collision_prop =
  (* The seen-set is conflict-checked: the hash only picks the bucket,
     exact equality decides membership.  A congruent but deliberately
     colliding hash (every state crammed into 1..4 buckets) must
     reproduce the reference exploration bit for bit — same states in
     the same visit order, same edges, same verdict.  This is the boxed
     half of the invariant the compiled explorer (test_cspace) relies
     on for its packed-key dedup. *)
  let a = Composition.as_automaton (independent_pair ()) in
  let probe ~hash_state =
    Probe.make ~pp_action:pp_act ~equal_state:Composition.equal_state
      ~hash_state ~max_states:64 []
  in
  let reference = Space.explore a (probe ~hash_state:Composition.hash_state) in
  assert (reference.Space.verdict = Space.Exhausted);
  QCheck2.Test.make
    ~name:"deliberately colliding hashes never corrupt the seen-set dedup"
    ~count:100
    QCheck2.Gen.(pair (int_range 1 4) (int_bound 1_000_000))
    (fun (buckets, salt) ->
      (* still a congruence: equal states collide onto the same bucket *)
      let colliding s = (Composition.hash_state s lxor salt) mod buckets in
      let sp = Space.explore a (probe ~hash_state:colliding) in
      sp.Space.verdict = reference.Space.verdict
      && Array.length sp.Space.states = Array.length reference.Space.states
      && Array.for_all2 Composition.equal_state sp.Space.states
           reference.Space.states
      && Array.length sp.Space.edges = Array.length reference.Space.edges
      && Array.for_all2
           (fun e r ->
             e.Space.src = r.Space.src
             && e.Space.dst = r.Space.dst
             && e.Space.act = r.Space.act
             && e.Space.task = r.Space.task)
           sp.Space.edges reference.Space.edges)

let suite =
  [ Alcotest.test_case "hashed explorer == list scan on the whole catalog" `Quick
      test_differential_vs_list;
    Alcotest.test_case "no congruent hash degrades to one exact bucket" `Quick
      test_hash_fallback_single_bucket;
    Alcotest.test_case "seed dedup and pinned visit order" `Quick
      test_seed_dedup_and_visit_order;
    Alcotest.test_case "truncation is an explicit verdict" `Quick
      test_truncation_verdict;
    Alcotest.test_case "POR preserves the reachable set, prunes interleavings"
      `Quick test_por_preserves_reachable_set;
    Alcotest.test_case "MC proves P's safety clauses on the closed system" `Quick
      test_mc_truthful_proved;
    Alcotest.test_case "MC: 10 proofs, 4 confirmed refutations" `Quick
      test_mc_all_subjects;
    QCheck_alcotest.to_alcotest containment_prop;
    QCheck_alcotest.to_alcotest collision_prop;
  ]
