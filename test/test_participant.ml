(* Section 10.1: the query-based participant detector is representative
   for consensus — both directions, plus the spec monitor itself. *)

open Afd_ioa
open Afd_core
open Afd_system
module C = Afd_consensus

let q at = Act.Query { at; detector = C.Participant.detector_name }
let resp at l = Act.Resp { at; detector = C.Participant.detector_name; payload = Act.Pleader l }

let test_monitor () =
  (* sound trace *)
  let t = [ q 0; q 1; resp 0 0; resp 1 0 ] in
  Alcotest.(check bool) "accepts" true (Verdict.is_sat (C.Participant.check ~n:2 t));
  (* two different IDs *)
  let t = [ q 0; q 1; resp 0 0; resp 1 1 ] in
  Alcotest.(check bool) "different IDs rejected" true
    (Verdict.is_violated (C.Participant.check ~n:2 t));
  (* answered ID never queried *)
  let t = [ q 0; resp 0 1 ] in
  Alcotest.(check bool) "non-querier ID rejected" true
    (Verdict.is_violated (C.Participant.check ~n:2 t));
  (* response after crash *)
  let t = [ q 0; q 1; Act.Crash 0; resp 0 0 ] in
  Alcotest.(check bool) "response after crash rejected" true
    (Verdict.is_violated (C.Participant.check ~n:2 t));
  (* live querier unanswered: undecided *)
  (match C.Participant.check ~n:2 [ q 0 ] with
  | Verdict.Undecided _ -> ()
  | v -> Alcotest.failf "expected undecided, got %a" Verdict.pp v)

let test_detector_automaton () =
  let a = C.Participant.automaton ~n:3 in
  let s = Automaton.step_exn a a.Automaton.start (q 2) in
  let s = Automaton.step_exn a s (q 0) in
  (* first querier (p2) is the locked answer, queries answered FIFO *)
  (match List.filter_map (fun t -> t.Automaton.enabled s) a.Automaton.tasks with
  | [ Act.Resp { at = 2; payload = Act.Pleader 2; _ } ] -> ()
  | _ -> Alcotest.fail "expected FIFO response naming the first querier");
  let s = Automaton.step_exn a s (resp 2 2) in
  match List.filter_map (fun t -> t.Automaton.enabled s) a.Automaton.tasks with
  | [ Act.Resp { at = 0; payload = Act.Pleader 2; _ } ] -> ()
  | _ -> Alcotest.fail "second response keeps the same ID"

let test_consensus_using_participant () =
  List.iter
    (fun (seed, values, crash_at) ->
      let n = List.length values in
      let crashable =
        List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at
      in
      let net = C.Participant.consensus_net ~n ~values ~crashable in
      let r = Net.run net ~seed ~crash_at ~steps:3000 in
      (match C.Spec.check ~n ~f:(max 1 (List.length crash_at)) r.Net.trace with
      | Verdict.Sat -> ()
      | v -> Alcotest.failf "seed %d consensus: %a" seed Verdict.pp v);
      match C.Participant.check ~n r.Net.trace with
      | Verdict.Violated m -> Alcotest.failf "seed %d detector: %s" seed m
      | _ -> ())
    [ (1, [ true; false; true ], []);
      (2, [ false; false; true ], [ (40, 2) ]);
      (3, [ true; true ], []);
      (4, [ false; true; false; true ], [ (25, 1) ]);
    ]

let test_participant_from_consensus () =
  List.iter
    (fun (seed, crash_at) ->
      let crashable =
        List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at
      in
      let net = C.Participant.extraction_net ~crashable in
      let r = Net.run net ~seed ~crash_at ~steps:3000 in
      match C.Participant.check ~n:2 r.Net.trace with
      | Verdict.Violated m -> Alcotest.failf "seed %d: %s" seed m
      | Verdict.Sat -> ()
      | Verdict.Undecided m ->
        (* only acceptable when the crash prevented... with f=1 and n=2
           the flooding instance still terminates, so demand sat in the
           crash-free runs *)
        if crash_at = [] then Alcotest.failf "seed %d: undecided %s" seed m)
    [ (1, []); (2, []); (3, [ (30, 1) ]); (4, [ (15, 0) ]) ]

let test_contrast_with_theorem21 () =
  (* The same black-box-extraction shape that Theorem 21 rules out for
     AFDs works for the query-based detector: the difference is the
     query input, which leaks "this process participated".  We verify
     the leak: no response is ever issued before the named process's
     query, i.e. the detector output genuinely carries non-crash
     information. *)
  let net = C.Participant.extraction_net ~crashable:Loc.Set.empty in
  let r = Net.run net ~seed:9 ~crash_at:[] ~steps:3000 in
  let t = r.Net.trace in
  let qs = C.Participant.queries t and rs = C.Participant.responses t in
  Alcotest.(check bool) "has responses" true (rs <> []);
  List.iter
    (fun (k, _, l) ->
      Alcotest.(check bool) "named ID queried strictly before" true
        (List.exists (fun (kq, i) -> Loc.equal i l && kq < k) qs))
    rs

let suite =
  [ Alcotest.test_case "participant spec monitor" `Quick test_monitor;
    Alcotest.test_case "participant detector automaton" `Quick test_detector_automaton;
    Alcotest.test_case "consensus using participant" `Quick test_consensus_using_participant;
    Alcotest.test_case "participant from consensus (representative)" `Quick
      test_participant_from_consensus;
    Alcotest.test_case "query interface leaks participation" `Quick
      test_contrast_with_theorem21;
  ]
