(* Empirical check of the scheduler's starvation backstop — the bound
   scheduler.mli documents is now exported as
   [Scheduler.starvation_bound] and asserted here over long random
   runs — plus regression tests that the round-robin policy is
   RNG-free (its outcomes can never depend on a seed). *)

open Afd_ioa

(* A clock automaton: one always-enabled fair task outputting its own
   id.  Composing n clocks gives a system where every task is enabled
   at every step — the worst case for starvation under random
   scheduling. *)
let clock k =
  { Automaton.name = "clk" ^ string_of_int k;
    kind = (fun a -> if a = k then Some Automaton.Output else None);
    start = 0;
    step = (fun s a -> if a = k then Some (s + 1) else None);
    tasks =
      [ { Automaton.task_name = "tick"; fair = true; enabled = (fun _ -> Some k) } ];
  }

let clocks n =
  Composition.make ~name:"clocks" (List.init n (fun k -> Component.C (clock k)))

(* Replay the outcome: for each step, every fair task that is enabled
   in the pre-state and does not fire accrues one step of wait; firing
   or being disabled resets it.  Returns the worst wait observed. *)
let max_wait comp outcome =
  let tasks = Array.of_list (Composition.tasks comp) in
  let states = Array.of_list (Execution.states outcome.Scheduler.execution) in
  let waits = Array.make (Array.length tasks) 0 in
  let worst = ref 0 in
  List.iteri
    (fun step (fired_tid, _act) ->
      let pre = states.(step) in
      Array.iteri
        (fun k tid ->
          if fired_tid = tid then waits.(k) <- 0
          else if tid.Composition.fair && Composition.enabled comp pre tid <> None
          then begin
            waits.(k) <- waits.(k) + 1;
            if waits.(k) > !worst then worst := waits.(k)
          end
          else waits.(k) <- 0)
        tasks)
    outcome.Scheduler.fired;
  !worst

let random_cfg seed max_steps =
  { Scheduler.policy = Scheduler.Random seed;
    max_steps;
    stop_when_quiescent = false;
    forced = [];
  }

let test_starvation_bound () =
  let n = 3 in
  let comp = clocks n in
  let bound = Scheduler.starvation_bound ~ntasks:n in
  List.iter
    (fun seed ->
      let o = Scheduler.run comp (random_cfg seed 2000) in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: full-length run" seed)
        2000
        (List.length o.Scheduler.fired);
      let w = max_wait comp o in
      if w > bound then
        Alcotest.failf "seed %d: an enabled fair task waited %d steps > bound %d"
          seed w bound)
    [ 1; 2; 3; 4; 5 ]

let test_starvation_bound_is_tight_enough () =
  (* Sanity check on the measurement itself: with many tasks the worst
     wait is strictly positive, i.e. the replay really observes
     contention rather than vacuously passing. *)
  let comp = clocks 5 in
  let o = Scheduler.run comp (random_cfg 9 2000) in
  Alcotest.(check bool) "some task waits at least one step" true
    (max_wait comp o > 0)

(* --- round-robin is RNG-free --- *)

let fired_ids outcome = List.map snd outcome.Scheduler.fired

let test_round_robin_ignores_ambient_seed () =
  let comp = clocks 3 in
  let cfg = { Scheduler.default_cfg with max_steps = 300 } in
  Stdlib.Random.init 1;
  let a = Scheduler.run comp cfg in
  Stdlib.Random.init 424242;
  let b = Scheduler.run comp cfg in
  Alcotest.(check (list int)) "identical outcome under different ambient seeds"
    (fired_ids a) (fired_ids b);
  Alcotest.(check (list int)) "cycles tasks in declaration order"
    [ 0; 1; 2; 0; 1; 2 ]
    (List.filteri (fun i _ -> i < 6) (fired_ids a))

let test_random_policy_still_seeded () =
  let comp = clocks 3 in
  let a = Scheduler.run comp (random_cfg 5 300) in
  let b = Scheduler.run comp (random_cfg 5 300) in
  let c = Scheduler.run comp (random_cfg 6 300) in
  Alcotest.(check (list int)) "same seed reproduces" (fired_ids a) (fired_ids b);
  Alcotest.(check bool) "different seed differs" false (fired_ids a = fired_ids c)

let suite =
  [ Alcotest.test_case "random policy honors the starvation bound" `Quick
      test_starvation_bound;
    Alcotest.test_case "replay observes real contention" `Quick
      test_starvation_bound_is_tight_enough;
    Alcotest.test_case "round-robin ignores ambient seeds" `Quick
      test_round_robin_ignores_ambient_seed;
    Alcotest.test_case "random policy is seed-deterministic" `Quick
      test_random_policy_still_seeded;
  ]
