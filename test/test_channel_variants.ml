(* Substrate-assumption experiments: the paper's system model fixes
   reliable FIFO channels (§4.3).  Over lossy channels the flooding
   algorithm stalls (its waits assume reliability); over duplicating
   channels it still works (its handlers are idempotent). *)

open Afd_ioa
open Afd_core
open Afd_system
module C = Afd_consensus

let flood_net_with ~channels ~n ~f =
  let detector =
    Fd_bridge.lift_set ~detector:C.Flood_p.detector_name (Afd_automata.fd_perfect ~n)
  in
  Net.assemble ~n
    ~detectors:[ Component.C detector ]
    ~environment:(Environment.scripted ~values:(List.init n (fun i -> i mod 2 = 0)))
    ~channels ~crashable:Loc.Set.empty
    ~processes:(C.Flood_p.processes ~n ~f) ()

let test_lossy_channels_stall_flooding () =
  let n = 3 in
  let net = flood_net_with ~channels:(Channel.lossy_pairs ~n ~drop_every:2) ~n ~f:1 in
  let r = Net.run net ~seed:3 ~crash_at:[] ~steps:4000 in
  let t = r.Net.trace in
  (* safety clauses still hold... *)
  (match Verdict.(C.Spec.agreement t &&& C.Spec.validity t &&& C.Spec.crash_validity t) with
  | Verdict.Violated m -> Alcotest.failf "safety broken: %s" m
  | _ -> ());
  (* ...but somebody waits forever on a dropped round message *)
  match C.Spec.termination ~n t with
  | Verdict.Undecided _ -> ()
  | Verdict.Sat -> Alcotest.fail "flooding should stall over 50%-lossy channels"
  | Verdict.Violated m -> Alcotest.failf "termination monitor: %s" m

let test_duplicating_channels_are_harmless () =
  let n = 3 in
  let net = flood_net_with ~channels:(Channel.duplicating_pairs ~n) ~n ~f:1 in
  let r = Net.run net ~seed:4 ~crash_at:[] ~steps:4000 in
  match C.Spec.check ~n ~f:1 r.Net.trace with
  | Verdict.Sat -> ()
  | v -> Alcotest.failf "flooding should tolerate duplication: %a" Verdict.pp v

let test_lossy_unit () =
  let c = Channel.lossy ~src:0 ~dst:1 ~drop_every:2 in
  let send k = Act.Send { src = 0; dst = 1; msg = Msg.Ping k } in
  let s = List.fold_left (fun s k -> Automaton.step_exn c s (send k)) c.Automaton.start [ 1; 2; 3; 4; 5 ] in
  (* messages 2 and 4 dropped *)
  let delivered = ref [] in
  let rec drain s =
    match List.filter_map (fun t -> t.Automaton.enabled s) c.Automaton.tasks with
    | [ (Act.Receive { msg = Msg.Ping k; _ } as act) ] ->
      delivered := k :: !delivered;
      drain (Automaton.step_exn c s act)
    | _ -> ()
  in
  drain s;
  Alcotest.(check (list int)) "odd pings survive" [ 1; 3; 5 ] (List.rev !delivered)

let test_duplicating_unit () =
  let c = Channel.duplicating ~src:0 ~dst:1 in
  let send = Act.Send { src = 0; dst = 1; msg = Msg.Ping 7 } in
  let s = Automaton.step_exn c c.Automaton.start send in
  let recv = Act.Receive { src = 0; dst = 1; msg = Msg.Ping 7 } in
  let s = Automaton.step_exn c s recv in
  (* second copy still there *)
  Alcotest.(check bool) "delivered twice" true
    (List.exists (fun t -> t.Automaton.enabled s = Some recv) c.Automaton.tasks)

let test_bad_params () =
  Alcotest.check_raises "drop_every 1 rejected"
    (Invalid_argument "Channel.lossy: drop_every must be >= 2") (fun () ->
      ignore (Channel.lossy ~src:0 ~dst:1 ~drop_every:1))

let suite =
  [ Alcotest.test_case "lossy channels stall flooding (termination)" `Quick
      test_lossy_channels_stall_flooding;
    Alcotest.test_case "duplicating channels are harmless" `Quick
      test_duplicating_channels_are_harmless;
    Alcotest.test_case "lossy channel unit" `Quick test_lossy_unit;
    Alcotest.test_case "duplicating channel unit" `Quick test_duplicating_unit;
    Alcotest.test_case "parameter validation" `Quick test_bad_params;
  ]
