(* Bounded problems and Theorem 21 (E7): the consensus witness U is
   crash independent and has bounded length; extraction of an AFD from
   a quiesced consensus instance is refuted by indistinguishable fault
   patterns. *)

open Afd_ioa
open Afd_core
open Afd_system
module C = Afd_consensus

let witness_external = function
  | Act.Crash _ | Act.Propose _ | Act.Decide _ -> true
  | Act.Send _ | Act.Receive _ | Act.Fd _ | Act.Step _ | Act.Query _ | Act.Resp _ | Act.Decide_id _ -> false

let sample_ext ~n =
  List.map (List.filter witness_external)
    (C.Witness.sample_traces ~n ~seeds:[ 0; 1; 2; 3; 4; 5; 6; 7 ] ~steps:150)

let test_crash_independent () =
  let n = 3 in
  match
    Bounded_problem.check_crash_independent (C.Witness.automaton ~n)
      ~is_crash:(fun a -> Act.is_crash a <> None)
      ~traces:(sample_ext ~n)
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_bounded_length () =
  let n = 3 in
  match
    Bounded_problem.check_bounded_length ~is_output:Act.is_decide
      ~bound:(C.Witness.output_bound ~n) ~traces:(sample_ext ~n)
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_witness_solves_consensus () =
  let n = 3 in
  List.iter
    (fun t ->
      match C.Spec.check ~n ~f:(n - 1) t with
      | Verdict.Sat -> ()
      | Verdict.Undecided _ -> () (* prefix may end mid-run *)
      | Verdict.Violated m -> Alcotest.fail m)
    (sample_ext ~n)

let test_counterexample_negative_control () =
  (* An automaton that reacts to crashes in its outputs is NOT crash
     independent; the checker must say so. *)
  let bad =
    let kind = function
      | Act.Crash _ -> Some Automaton.Input
      | Act.Decide _ -> Some Automaton.Output
      | _ -> None
    in
    let step st = function
      | Act.Crash i -> Some (Loc.Set.add i st)
      | Act.Decide { at; v = true } when Loc.Set.mem at st -> Some st
      | _ -> None
    in
    { Automaton.name = "crash-reactive";
      kind;
      start = Loc.Set.empty;
      step;
      tasks = [];
    }
  in
  let trace = [ Act.Crash 1; Act.Decide { at = 1; v = true } ] in
  match
    Bounded_problem.check_crash_independent bad
      ~is_crash:(fun a -> Act.is_crash a <> None)
      ~traces:[ trace ]
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "crash-reactive automaton must fail the check"

let test_theorem21_extraction () =
  List.iter
    (fun (late_crash, seed) ->
      let r =
        C.Extraction.run ~n:3 ~target:Ev_perfect.spec
          ~candidate:C.Extraction.echo_decision ~late_crash ~seed ~steps:4000
      in
      Alcotest.(check bool)
        (Printf.sprintf "observations equal (crash p%d)" late_crash)
        true r.C.Extraction.observations_equal;
      Alcotest.(check bool)
        (Printf.sprintf "refuted (crash p%d)" late_crash)
        true r.C.Extraction.refuted)
    [ (1, 11); (2, 12); (0, 13) ]

let test_theorem21_suspicious_candidate () =
  (* A candidate that suspects everyone after deciding also fails: under
     pattern A (no crash) it suspects live locations forever. *)
  let all_after_decide loc hist =
    match List.rev hist with
    | C.Extraction.Odecided _ :: _ ->
      Some (Loc.Set.remove loc (Loc.set_of_universe ~n:3))
    | _ -> Some Loc.Set.empty
  in
  let r =
    C.Extraction.run ~n:3 ~target:Ev_perfect.spec ~candidate:all_after_decide
      ~late_crash:1 ~seed:21 ~steps:4000
  in
  Alcotest.(check bool) "refuted" true r.C.Extraction.refuted

let test_quiescence_lemma () =
  (* Lemma 23/24-style check: after the witness-system run stops, no
     messages are in transit (the witness uses no channels, so the full
     flooding system is used instead). *)
  let net = C.Flood_p.net ~n:3 ~f:0 ~crashable:Loc.Set.empty () in
  let r = Net.run net ~seed:3 ~crash_at:[] ~steps:4000 in
  Alcotest.(check bool) "channels drained at quiescence" true
    (Channel.all_empty r.Net.trace);
  (match Bounded_problem.quiescence_starves_extraction ~outputs_after_quiescence:0
           ~live_locations:(Loc.set_of_universe ~n:3) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Bounded_problem.quiescence_starves_extraction ~outputs_after_quiescence:3
          ~live_locations:(Loc.set_of_universe ~n:3) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-silent extraction must not certify"

let suite =
  [ Alcotest.test_case "witness U: crash independent" `Quick test_crash_independent;
    Alcotest.test_case "witness U: bounded length" `Quick test_bounded_length;
    Alcotest.test_case "witness U solves consensus" `Quick test_witness_solves_consensus;
    Alcotest.test_case "crash-reactive automaton rejected" `Quick
      test_counterexample_negative_control;
    Alcotest.test_case "theorem 21: extraction refuted" `Slow test_theorem21_extraction;
    Alcotest.test_case "theorem 21: eager candidate refuted" `Slow
      test_theorem21_suspicious_candidate;
    Alcotest.test_case "quiescence starves extraction" `Quick test_quiescence_lemma;
  ]
