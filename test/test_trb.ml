(* Terminating reliable broadcast (weak variant) using P: a second
   bounded problem, exercised across fault patterns. *)

open Afd_ioa
open Afd_core
open Afd_system
module C = Afd_consensus

let run ~n ~sender ~value ~crash_at ~seed ~steps =
  let crashable =
    List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at
  in
  let net = C.Trb.net ~n ~sender ~value ~crashable in
  (Net.run net ~seed ~crash_at ~steps).Net.trace

let test_live_sender_delivers_value () =
  let t = run ~n:4 ~sender:0 ~value:true ~crash_at:[] ~seed:1 ~steps:1500 in
  (match C.Trb.check ~n:4 ~sender:0 t with
  | Verdict.Sat -> ()
  | v -> Alcotest.failf "%a" Verdict.pp v);
  let ds = C.Trb.deliveries t in
  Alcotest.(check int) "four deliveries" 4 (List.length ds);
  Alcotest.(check bool) "all the sender's value" true
    (List.for_all (fun (_, d) -> d = C.Trb.Value true) ds)

let test_sender_crashes_at_start () =
  let t = run ~n:4 ~sender:0 ~value:true ~crash_at:[ (0, 0) ] ~seed:2 ~steps:1500 in
  (match C.Trb.check ~n:4 ~sender:0 t with
  | Verdict.Sat -> ()
  | v -> Alcotest.failf "%a" Verdict.pp v);
  Alcotest.(check bool) "all survivors deliver SF" true
    (List.for_all (fun (_, d) -> d = C.Trb.Sender_faulty) (C.Trb.deliveries t))

let test_sender_crashes_midway_sweep () =
  List.iter
    (fun seed ->
      List.iter
        (fun step ->
          let t = run ~n:3 ~sender:0 ~value:false ~crash_at:[ (step, 0) ] ~seed ~steps:2000 in
          match C.Trb.check ~n:3 ~sender:0 t with
          | Verdict.Violated m -> Alcotest.failf "seed %d crash@%d: %s" seed step m
          | Verdict.Sat -> ()
          | Verdict.Undecided m -> Alcotest.failf "seed %d crash@%d: undecided %s" seed step m)
        [ 2; 5; 9; 14; 30 ])
    [ 1; 2; 3; 4 ]

let test_monitor_integrity () =
  let d v at = Act.Decide { at; v } in
  Alcotest.(check bool) "double delivery" true
    (Verdict.is_violated (C.Trb.integrity [ d true 0; d true 0 ]));
  Alcotest.(check bool) "delivery after crash" true
    (Verdict.is_violated (C.Trb.integrity [ Act.Crash 0; d true 0 ]));
  Alcotest.(check bool) "SF after crash" true
    (Verdict.is_violated
       (C.Trb.integrity [ Act.Crash 0; Act.Step { at = 0; tag = C.Trb.sf_tag } ]))

let test_monitor_validity () =
  let t = [ Act.Propose { at = 0; v = true }; Act.Decide { at = 1; v = false } ] in
  Alcotest.(check bool) "wrong value with live sender" true
    (Verdict.is_violated (C.Trb.validity ~sender:0 t));
  let t = [ Act.Propose { at = 0; v = true }; Act.Step { at = 1; tag = C.Trb.sf_tag } ] in
  Alcotest.(check bool) "SF with live sender" true
    (Verdict.is_violated (C.Trb.validity ~sender:0 t));
  let t = [ Act.Crash 0; Act.Step { at = 1; tag = C.Trb.sf_tag } ] in
  Alcotest.(check bool) "SF with faulty sender ok" true
    (Verdict.is_sat (C.Trb.validity ~sender:0 t))

let test_monitor_agreement () =
  let d v at = Act.Decide { at; v } in
  Alcotest.(check bool) "two values" true
    (Verdict.is_violated (C.Trb.agreement [ d true 0; d false 1 ]));
  Alcotest.(check bool) "value + SF allowed (weak variant)" true
    (Verdict.is_sat
       (C.Trb.agreement [ d true 0; Act.Step { at = 1; tag = C.Trb.sf_tag } ]))

let test_trb_is_bounded () =
  (* TRB is a bounded problem: deliveries are bounded by n on every run. *)
  let traces =
    List.map
      (fun seed -> run ~n:3 ~sender:0 ~value:true ~crash_at:[ (7, 0) ] ~seed ~steps:1500)
      [ 1; 2; 3; 4; 5 ]
  in
  let is_delivery a =
    Act.is_decide a
    || (match a with Act.Step { tag; _ } -> String.equal tag C.Trb.sf_tag | _ -> false)
  in
  match
    Bounded_problem.check_bounded_length ~is_output:is_delivery ~bound:3 ~traces
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let suite =
  [ Alcotest.test_case "live sender: everyone delivers its value" `Quick
      test_live_sender_delivers_value;
    Alcotest.test_case "immediate sender crash: SF everywhere" `Quick
      test_sender_crashes_at_start;
    Alcotest.test_case "mid-broadcast crash sweep (20 runs)" `Quick
      test_sender_crashes_midway_sweep;
    Alcotest.test_case "integrity monitor" `Quick test_monitor_integrity;
    Alcotest.test_case "validity monitor" `Quick test_monitor_validity;
    Alcotest.test_case "agreement monitor (weak variant)" `Quick test_monitor_agreement;
    Alcotest.test_case "TRB is bounded" `Quick test_trb_is_bounded;
  ]
