(* Parallel-vs-sequential equivalence for the experiment runner: for a
   fixed root seed the verdict table and the timing-stripped BENCH.json
   must be byte-identical whatever the domain count — run order must
   not leak into results — and reruns with the same root seed must
   reproduce the same rows. *)

open Afd_core
module R = Afd_runner

let small_matrix () =
  let fd ~id ~label ~detector ~spec ~n ~faults ~steps =
    R.Matrix.entry ~id ~section:"runner-fixture" ~label ~seeds:3 ~faults:[ faults ]
      (fun ~seed ~faults ->
        let t =
          Afd_automata.generate_trace ~detector:(detector ()) ~n ~seed
            ~crash_at:faults ~steps
        in
        R.Metrics.outcome ~steps:(List.length t) (Afd.check spec ~n t))
  in
  [ fd ~id:"t.omega" ~label:"omega" ~n:3
      ~detector:(fun () -> Afd_automata.fd_omega ~n:3)
      ~spec:Omega.spec ~faults:[ (8, 1) ] ~steps:60;
    fd ~id:"t.p" ~label:"p" ~n:3
      ~detector:(fun () -> Afd_automata.fd_perfect ~n:3)
      ~spec:Perfect.spec ~faults:[ (6, 0) ] ~steps:60;
  ]

let run ~jobs ~root =
  R.Engine.run
    { R.Engine.jobs; root_seed = root; seeds_override = None }
    (small_matrix ())

let test_jobs_equivalence () =
  let r1 = run ~jobs:1 ~root:7 and r4 = run ~jobs:4 ~root:7 in
  Alcotest.(check string) "verdict table jobs=1 vs jobs=4"
    (R.Engine.verdict_table r1) (R.Engine.verdict_table r4);
  Alcotest.(check string) "BENCH.json rows jobs=1 vs jobs=4"
    (R.Report.to_json ~timings:false r1)
    (R.Report.to_json ~timings:false r4)

let test_rerun_identical () =
  let a = run ~jobs:2 ~root:11 and b = run ~jobs:2 ~root:11 in
  Alcotest.(check string) "same root seed, same rows"
    (R.Report.to_json ~timings:false a)
    (R.Report.to_json ~timings:false b)

let scheduler_seeds r =
  List.concat_map
    (fun e -> List.map (fun c -> c.R.Metrics.scheduler_seed) e.R.Metrics.cells)
    r.R.Engine.exps

let test_root_reseeds () =
  let a = run ~jobs:1 ~root:7 and b = run ~jobs:1 ~root:8 in
  Alcotest.(check bool) "different roots derive different scheduler seeds" false
    (scheduler_seeds a = scheduler_seeds b)

let test_fixture_green () =
  let r = run ~jobs:2 ~root:7 in
  List.iter
    (fun e ->
      let c = R.Metrics.exp_counts e in
      Alcotest.(check int)
        (Printf.sprintf "%s: no violations" e.R.Metrics.id)
        0 c.R.Metrics.violated)
    r.R.Engine.exps

let test_pool_preserves_order () =
  let input = Array.init 100 (fun i -> i) in
  let seq = Array.map (fun i -> i * i) input in
  let par = R.Pool.map ~jobs:4 (fun i -> i * i) input in
  Alcotest.(check (array int)) "parallel map = sequential map" seq par

let test_pool_propagates_exceptions () =
  let input = Array.init 20 (fun i -> i) in
  match R.Pool.map ~jobs:3 (fun i -> if i = 13 then failwith "boom" else i) input with
  | exception Failure m -> Alcotest.(check string) "first failure re-raised" "boom" m
  | _ -> Alcotest.fail "expected the worker exception to propagate"

let suite =
  [ Alcotest.test_case "jobs=1 equals jobs=4 byte-for-byte" `Quick test_jobs_equivalence;
    Alcotest.test_case "rerun with same root is identical" `Quick test_rerun_identical;
    Alcotest.test_case "changing the root reseeds cells" `Quick test_root_reseeds;
    Alcotest.test_case "fixture rows are green" `Quick test_fixture_green;
    Alcotest.test_case "pool preserves input order" `Quick test_pool_preserves_order;
    Alcotest.test_case "pool propagates exceptions" `Quick test_pool_propagates_exceptions;
  ]
