(* Parallel-vs-sequential equivalence for the experiment runner: for a
   fixed root seed the verdict table and the timing-stripped BENCH.json
   must be byte-identical whatever the domain count — run order must
   not leak into results — and reruns with the same root seed must
   reproduce the same rows. *)

open Afd_core
module R = Afd_runner

let small_matrix () =
  let fd ~id ~label ~detector ~spec ~n ~faults ~steps =
    R.Matrix.entry ~id ~section:"runner-fixture" ~label ~seeds:3 ~faults:[ faults ]
      (fun ~seed ~faults ->
        let t =
          Afd_automata.generate_trace ~detector:(detector ()) ~n ~seed
            ~crash_at:faults ~steps
        in
        R.Metrics.outcome ~steps:(List.length t) (Afd.check spec ~n t))
  in
  [ fd ~id:"t.omega" ~label:"omega" ~n:3
      ~detector:(fun () -> Afd_automata.fd_omega ~n:3)
      ~spec:Omega.spec ~faults:[ (8, 1) ] ~steps:60;
    fd ~id:"t.p" ~label:"p" ~n:3
      ~detector:(fun () -> Afd_automata.fd_perfect ~n:3)
      ~spec:Perfect.spec ~faults:[ (6, 0) ] ~steps:60;
  ]

let run ~jobs ~root =
  R.Engine.run
    { R.Engine.jobs; root_seed = root; seeds_override = None }
    (small_matrix ())

let test_jobs_equivalence () =
  let r1 = run ~jobs:1 ~root:7 and r4 = run ~jobs:4 ~root:7 in
  Alcotest.(check string) "verdict table jobs=1 vs jobs=4"
    (R.Engine.verdict_table r1) (R.Engine.verdict_table r4);
  Alcotest.(check string) "BENCH.json rows jobs=1 vs jobs=4"
    (R.Report.to_json ~timings:false r1)
    (R.Report.to_json ~timings:false r4)

let test_rerun_identical () =
  let a = run ~jobs:2 ~root:11 and b = run ~jobs:2 ~root:11 in
  Alcotest.(check string) "same root seed, same rows"
    (R.Report.to_json ~timings:false a)
    (R.Report.to_json ~timings:false b)

let scheduler_seeds r =
  List.concat_map
    (fun e -> List.map (fun c -> c.R.Metrics.scheduler_seed) e.R.Metrics.cells)
    r.R.Engine.exps

let test_root_reseeds () =
  let a = run ~jobs:1 ~root:7 and b = run ~jobs:1 ~root:8 in
  Alcotest.(check bool) "different roots derive different scheduler seeds" false
    (scheduler_seeds a = scheduler_seeds b)

let test_fixture_green () =
  let r = run ~jobs:2 ~root:7 in
  List.iter
    (fun e ->
      let c = R.Metrics.exp_counts e in
      Alcotest.(check int)
        (Printf.sprintf "%s: no violations" e.R.Metrics.id)
        0 c.R.Metrics.violated)
    r.R.Engine.exps

let test_pool_preserves_order () =
  let input = Array.init 100 (fun i -> i) in
  let seq = Array.map (fun i -> i * i) input in
  let par = R.Pool.map ~jobs:4 (fun i -> i * i) input in
  Alcotest.(check (array int)) "parallel map = sequential map" seq par

let test_pool_propagates_exceptions () =
  let input = Array.init 20 (fun i -> i) in
  match R.Pool.map ~jobs:3 (fun i -> if i = 13 then failwith "boom" else i) input with
  | exception Failure m -> Alcotest.(check string) "first failure re-raised" "boom" m
  | _ -> Alcotest.fail "expected the worker exception to propagate"

(* --- persistent pool: crash / determinism hardening ---

   The contract Pspace leans on: a task that raises must neither
   deadlock the round barrier nor poison later rounds; the FIRST
   exception in index order is the one re-raised, independent of how
   domains interleave; shutdown is idempotent and map_pool afterwards
   is a clean Invalid_argument, not a hang. *)

let test_persistent_pool_rounds () =
  R.Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.(check int) "job count recorded" 4 (R.Pool.jobs p);
      for round = 1 to 20 do
        let input = Array.init 97 (fun i -> i) in
        let out = R.Pool.map_pool p (fun i -> (i * round) + 1) input in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d results in input order" round)
          (Array.map (fun i -> (i * round) + 1) input)
          out
      done)

exception Kaboom of int

let test_persistent_pool_survives_raises () =
  R.Pool.with_pool ~jobs:4 (fun p ->
      (* alternate raising and clean rounds under contention: every
         raising round must re-raise the first failing index, every
         clean round must still produce exact results *)
      for round = 0 to 29 do
        let input = Array.init 200 (fun i -> i) in
        if round mod 2 = 0 then begin
          match
            R.Pool.map_pool p
              (fun i -> if i mod 17 = 3 then raise (Kaboom i) else i)
              input
          with
          | exception Kaboom i ->
            Alcotest.(check int)
              (Printf.sprintf "round %d: first failing index wins" round)
              3 i
          | _ -> Alcotest.fail "expected Kaboom to propagate"
        end
        else
          Alcotest.(check (array int))
            (Printf.sprintf "round %d clean after a raising round" round)
            (Array.map (fun i -> i * 2) input)
            (R.Pool.map_pool p (fun i -> i * 2) input)
      done)

let test_pool_shutdown_semantics () =
  let p = R.Pool.create ~jobs:3 in
  let out = R.Pool.map_pool p (fun i -> i + 1) (Array.init 10 (fun i -> i)) in
  Alcotest.(check (array int)) "live pool works" (Array.init 10 (fun i -> i + 1)) out;
  R.Pool.shutdown p;
  R.Pool.shutdown p;
  (* idempotent *)
  (match R.Pool.map_pool p (fun i -> i) [| 1; 2; 3 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "map_pool after shutdown must raise Invalid_argument");
  (* with_pool shuts down even when the body raises *)
  match
    R.Pool.with_pool ~jobs:2 (fun p ->
        ignore (R.Pool.map_pool p (fun i -> i) [| 1 |]);
        failwith "body")
  with
  | exception Failure m -> Alcotest.(check string) "body exception surfaces" "body" m
  | _ -> Alcotest.fail "expected the body exception to propagate"

let suite =
  [ Alcotest.test_case "jobs=1 equals jobs=4 byte-for-byte" `Quick test_jobs_equivalence;
    Alcotest.test_case "rerun with same root is identical" `Quick test_rerun_identical;
    Alcotest.test_case "changing the root reseeds cells" `Quick test_root_reseeds;
    Alcotest.test_case "fixture rows are green" `Quick test_fixture_green;
    Alcotest.test_case "pool preserves input order" `Quick test_pool_preserves_order;
    Alcotest.test_case "pool propagates exceptions" `Quick test_pool_propagates_exceptions;
    Alcotest.test_case "persistent pool: 20 rounds, exact results" `Quick
      test_persistent_pool_rounds;
    Alcotest.test_case "persistent pool survives raising rounds under contention"
      `Quick test_persistent_pool_survives_raises;
    Alcotest.test_case "pool shutdown: idempotent, refuses further rounds" `Quick
      test_pool_shutdown_semantics;
  ]
