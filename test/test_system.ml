(* The distributed-system substrate: channels, crash automaton,
   environment E_C (Theorem 44), detector bridge, net assembly (F1). *)

open Afd_ioa
open Afd_core
open Afd_system

(* --- channels --- *)

let test_channel_fifo () =
  let c = Channel.automaton ~src:0 ~dst:1 in
  let send k = Act.Send { src = 0; dst = 1; msg = Msg.Ping k } in
  let recv k = Act.Receive { src = 0; dst = 1; msg = Msg.Ping k } in
  let s = List.fold_left (fun s k -> Automaton.step_exn c s (send k)) c.Automaton.start [ 1; 2; 3 ] in
  Alcotest.(check bool) "head delivery enabled" true
    (List.exists (fun t -> t.Automaton.enabled s = Some (recv 1)) c.Automaton.tasks);
  Alcotest.(check bool) "out-of-order delivery disabled" true (c.Automaton.step s (recv 2) = None);
  let s = Automaton.step_exn c s (recv 1) in
  let s = Automaton.step_exn c s (recv 2) in
  let s = Automaton.step_exn c s (recv 3) in
  Alcotest.(check bool) "drained" true
    (List.for_all (fun t -> t.Automaton.enabled s = None) c.Automaton.tasks)

let test_channel_signature () =
  let c = Channel.automaton ~src:0 ~dst:1 in
  Alcotest.(check bool) "wrong direction not in signature" true
    (c.Automaton.kind (Act.Send { src = 1; dst = 0; msg = Msg.Ping 0 }) = None);
  Alcotest.check_raises "src=dst rejected" (Invalid_argument "Channel.automaton: src = dst")
    (fun () -> ignore (Channel.automaton ~src:1 ~dst:1));
  Alcotest.(check int) "n(n-1) channels" 6 (List.length (Channel.all_pairs ~n:3))

let test_queues_of_trace () =
  let t =
    [ Act.Send { src = 0; dst = 1; msg = Msg.Ping 1 };
      Act.Send { src = 0; dst = 1; msg = Msg.Ping 2 };
      Act.Receive { src = 0; dst = 1; msg = Msg.Ping 1 };
    ]
  in
  (match Channel.queues_of_trace t with
  | [ ((0, 1), [ Msg.Ping 2 ]) ] -> ()
  | _ -> Alcotest.fail "expected one message in transit");
  Alcotest.(check bool) "not empty" false (Channel.all_empty t);
  Alcotest.(check bool) "empty after drain" true
    (Channel.all_empty (t @ [ Act.Receive { src = 0; dst = 1; msg = Msg.Ping 2 } ]))

(* --- crash automaton --- *)

let test_crash_automaton () =
  let c = Crash.automaton ~n:3 ~crashable:(Loc.Set.of_list [ 0; 2 ]) in
  let enabled s =
    List.filter_map (fun t -> t.Automaton.enabled s) c.Automaton.tasks
  in
  Alcotest.(check int) "two crashes available" 2 (List.length (enabled c.Automaton.start));
  let s = Automaton.step_exn c c.Automaton.start (Act.Crash 0) in
  Alcotest.(check int) "one left" 1 (List.length (enabled s));
  Alcotest.(check bool) "no second crash of p0" true (c.Automaton.step s (Act.Crash 0) = None);
  Alcotest.(check bool) "crash tasks are unfair" true
    (List.for_all (fun t -> not t.Automaton.fair) c.Automaton.tasks)

(* --- environment E_C: Theorem 44 --- *)

let env_trace ~seed ~crash_at ~steps ~n =
  let comp =
    Composition.make ~name:"env-only"
      (Component.C (Crash.automaton ~n ~crashable:(Loc.set_of_universe ~n))
      :: Environment.consensus ~n)
  in
  let cfg =
    { Scheduler.policy = Scheduler.Random seed;
      max_steps = steps;
      stop_when_quiescent = false;
      forced = Crash.forces crash_at;
    }
  in
  Execution.schedule (Scheduler.run comp cfg).Scheduler.execution

let test_theorem44 () =
  (* E_C is a well-formed environment: all three claims on random fair
     traces with random fault patterns. *)
  List.iter
    (fun (seed, crash_at) ->
      let t = env_trace ~seed ~crash_at ~steps:60 ~n:3 in
      match Afd_consensus.Spec.environment_well_formedness ~n:3 t with
      | Verdict.Violated r -> Alcotest.failf "seed %d: %s" seed r
      | Verdict.Sat -> ()
      | Verdict.Undecided r ->
        (* acceptable only when a crash preempted a proposal *)
        if crash_at = [] then Alcotest.failf "seed %d undecided without crash: %s" seed r)
    [ (1, []); (2, [ (0, 1) ]); (3, [ (2, 0); (3, 2) ]); (4, [ (50, 2) ]) ]

let test_env_stop_after_propose () =
  let e = Environment.consensus_at 0 in
  let s = Automaton.step_exn e e.Automaton.start (Act.Propose { at = 0; v = true }) in
  Alcotest.(check bool) "no second proposal" true
    (List.for_all (fun t -> t.Automaton.enabled s = None) e.Automaton.tasks);
  Alcotest.(check bool) "propose disabled in step relation too" true
    (e.Automaton.step s (Act.Propose { at = 0; v = false }) = None)

let test_env_crash_disables () =
  let e = Environment.consensus_at 0 in
  let s = Automaton.step_exn e e.Automaton.start (Act.Crash 0) in
  Alcotest.(check bool) "crash disables proposals" true
    (List.for_all (fun t -> t.Automaton.enabled s = None) e.Automaton.tasks)

let test_scripted_env () =
  let e = Environment.scripted_at 0 ~value:true in
  match List.filter_map (fun t -> t.Automaton.enabled e.Automaton.start) e.Automaton.tasks with
  | [ Act.Propose { v = true; _ } ] -> ()
  | _ -> Alcotest.fail "scripted environment must offer exactly its value"

(* --- detector bridge --- *)

let test_fd_bridge_lift () =
  let a = Fd_bridge.lift_leader ~detector:"Omega" (Afd_automata.fd_omega ~n:2) in
  let s = a.Automaton.start in
  Alcotest.(check bool) "lifted output enabled" true
    (List.exists
       (fun t ->
         t.Automaton.enabled s = Some (Act.Fd { at = 0; detector = "Omega"; payload = Act.Pleader 0 }))
       a.Automaton.tasks);
  Alcotest.(check bool) "crash is input" true
    (a.Automaton.kind (Act.Crash 1) = Some Automaton.Input);
  let s = Automaton.step_exn a s (Act.Crash 0) in
  Alcotest.(check bool) "leader moves to p1 after crash" true
    (List.exists
       (fun t ->
         t.Automaton.enabled s = Some (Act.Fd { at = 1; detector = "Omega"; payload = Act.Pleader 1 }))
       a.Automaton.tasks)

let test_transformer_component () =
  let x =
    Fd_bridge.transformer ~src:"EvP" ~dst:"Omega" ~loc:0 ~f:(fun _ p ->
        match p with
        | Act.Pset s -> Act.Pleader (Option.value ~default:0 (Loc.min_not_in ~n:2 (fun j -> Loc.Set.mem j s)))
        | Act.Pleader l -> Act.Pleader l)
  in
  let s = x.Automaton.start in
  Alcotest.(check bool) "silent before first input" true
    (List.for_all (fun t -> t.Automaton.enabled s = None) x.Automaton.tasks);
  let s =
    Automaton.step_exn x s
      (Act.Fd { at = 0; detector = "EvP"; payload = Act.Pset (Loc.Set.singleton 0) })
  in
  Alcotest.(check bool) "transforms latest input" true
    (List.exists
       (fun t ->
         t.Automaton.enabled s = Some (Act.Fd { at = 0; detector = "Omega"; payload = Act.Pleader 1 }))
       x.Automaton.tasks)

(* --- F1: Figure 1 assembly --- *)

let test_figure1_assembly () =
  let n = 3 in
  let net = Afd_consensus.Flood_p.net ~n ~f:1 ~crashable:(Loc.Set.singleton 2) () in
  (* components: n processes + n(n-1) channels + crash + detector + n envs *)
  Alcotest.(check int) "component count" (3 + 6 + 1 + 1 + 3)
    (Array.length (Composition.components net.Net.composition));
  (* sampled signature compatibility *)
  let probes =
    [ Act.Crash 0;
      Act.Send { src = 0; dst = 1; msg = Msg.Ping 0 };
      Act.Receive { src = 0; dst = 1; msg = Msg.Ping 0 };
      Act.Fd { at = 1; detector = "P"; payload = Act.Pset Loc.Set.empty };
      Act.Propose { at = 2; v = true };
      Act.Decide { at = 0; v = false };
      Act.Step { at = 1; tag = "advance" };
    ]
  in
  match Composition.check_compatible net.Net.composition ~probes with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_process_input_enabledness () =
  (* Section 2.1: every input action must be enabled in every state.
     Probe the flooding process automaton across reachable states. *)
  let a = Afd_consensus.Flood_p.process ~n:2 ~f:1 ~loc:0 in
  let probes =
    [ Act.Crash 0;
      Act.Propose { at = 0; v = true };
      Act.Receive { src = 1; dst = 0; msg = Msg.Flood { round = 1; vals = Msg.vset_of true } };
      Act.Fd { at = 0; detector = "P"; payload = Act.Pset (Loc.Set.singleton 1) };
    ]
  in
  (* a few reachable states: start, after propose, after crash *)
  let s0 = a.Automaton.start in
  let s1 = Automaton.step_exn a s0 (Act.Propose { at = 0; v = false }) in
  let s2 = Automaton.step_exn a s1 (Act.Crash 0) in
  match Automaton.check_input_enabled a [ s0; s1; s2 ] probes with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_crash_disables_locally_controlled () =
  (* Section 4.2: crash_i permanently disables the process's locally
     controlled actions, for every process type in the repository. *)
  List.iter
    (fun (name, Component.C a) ->
      let propose = Act.Propose { at = 0; v = true } in
      let s =
        if Automaton.in_signature a propose then
          Automaton.step_exn a a.Automaton.start propose
        else a.Automaton.start
      in
      let s = Automaton.step_exn a s (Act.Crash 0) in
      Alcotest.(check bool) (name ^ ": silent after crash") true
        (Automaton.enabled_actions a s = []))
    [ ("flood", Component.C (Afd_consensus.Flood_p.process ~n:2 ~f:1 ~loc:0));
      ("synod", Component.C (Afd_consensus.Synod_omega.process ~n:2 ~loc:0));
      ("synod-sigma", Component.C (Afd_consensus.Synod_sigma.process ~n:2 ~loc:0));
      ("trb", Component.C (Afd_consensus.Trb.process ~n:2 ~sender:0 ~loc:0));
      ("kset", Component.C (Afd_consensus.Kset.process ~n:2 ~k:1 ~loc:0));
      ("heartbeat", Component.C (Heartbeat.automaton ~n:2 ~initial_timeout:2 ~loc:0));
    ]

let test_act_projections () =
  let t =
    [ Act.Crash 1;
      Act.Fd { at = 0; detector = "P"; payload = Act.Pset (Loc.Set.singleton 1) };
      Act.Fd { at = 0; detector = "X"; payload = Act.Pleader 0 };
      Act.Propose { at = 0; v = true };
    ]
  in
  (match Act.fd_trace_set ~detector:"P" t with
  | [ Fd_event.Crash 1; Fd_event.Output (0, s) ] ->
    Alcotest.(check bool) "suspicion payload" true (Loc.Set.equal s (Loc.Set.singleton 1))
  | _ -> Alcotest.fail "fd_trace_set wrong");
  (match Act.fd_trace_leader ~detector:"X" t with
  | [ Fd_event.Crash 1; Fd_event.Output (0, 0) ] -> ()
  | _ -> Alcotest.fail "fd_trace_leader wrong");
  Alcotest.(check int) "consensus externals" 2
    (List.length (List.filter Act.consensus_external t))

let suite =
  [ Alcotest.test_case "channel FIFO" `Quick test_channel_fifo;
    Alcotest.test_case "channel signature" `Quick test_channel_signature;
    Alcotest.test_case "queues reconstruction" `Quick test_queues_of_trace;
    Alcotest.test_case "crash automaton" `Quick test_crash_automaton;
    Alcotest.test_case "theorem 44: E_C well-formed" `Quick test_theorem44;
    Alcotest.test_case "E_C stops after propose" `Quick test_env_stop_after_propose;
    Alcotest.test_case "E_C crash disables proposals" `Quick test_env_crash_disables;
    Alcotest.test_case "scripted environment" `Quick test_scripted_env;
    Alcotest.test_case "fd bridge lifts automata" `Quick test_fd_bridge_lift;
    Alcotest.test_case "transformer component" `Quick test_transformer_component;
    Alcotest.test_case "figure 1 assembly" `Quick test_figure1_assembly;
    Alcotest.test_case "input-enabledness of processes" `Quick test_process_input_enabledness;
    Alcotest.test_case "crash disables locally controlled actions" `Quick test_crash_disables_locally_controlled;
    Alcotest.test_case "act projections" `Quick test_act_projections;
  ]
