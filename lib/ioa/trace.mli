(** Operations on sequences of actions (schedules and traces).

    Thin wrappers giving the paper's vocabulary (projection [t|B],
    concatenation, prefixes) to plain lists. *)

val project : ('a -> bool) -> 'a list -> 'a list
(** [t|B]: the subsequence of events from the set (predicate) [B]. *)

val is_subsequence : equal:('a -> 'a -> bool) -> 'a list -> 'a list -> bool
(** [is_subsequence ~equal t' t]: [t'] embeds into [t] preserving
    order. *)

val is_prefix : equal:('a -> 'a -> bool) -> 'a list -> 'a list -> bool
(** [is_prefix ~equal t' t]. *)

val is_permutation : equal:('a -> 'a -> bool) -> 'a list -> 'a list -> bool
(** Multiset equality (quadratic; fine for test-sized traces). *)

val nth : 'a list -> int -> 'a option
(** 1-based indexing [t\[x\]] as in the paper; [None] plays bottom. *)

val positions : ('a -> bool) -> 'a list -> int list
(** 0-based positions of events satisfying the predicate. *)
