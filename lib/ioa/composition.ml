type task_id = {
  comp_idx : int;
  task_idx : int;
  comp_name : string;
  task_name : string;
  fair : bool;
}

type 'a t = {
  name : string;
  comps : 'a Component.t array;
  (* Memoized task structure: the flattened task array and, per
     component, the indices of its tasks in that array.  Both are pure
     functions of [comps]; computing them once keeps the scheduler's
     per-step work proportional to touched components only. *)
  mutable tasks_memo : task_id array option;
  mutable by_comp_memo : int array array option;
}

type 'a state = 'a Component.inst array

let make ~name comps =
  { name; comps = Array.of_list comps; tasks_memo = None; by_comp_memo = None }

let name c = c.name
let components c = c.comps
let start c = Array.map Component.init c.comps

let kind_of c act =
  let open Automaton in
  let out = ref false and inp = ref false and intr = ref false in
  Array.iter
    (fun comp ->
      match Component.kind_of comp act with
      | Some Output -> out := true
      | Some Input -> inp := true
      | Some Internal -> intr := true
      | None -> ())
    c.comps;
  if !out then Some Output
  else if !intr then Some Internal
  else if !inp then Some Input
  else None

let controllers c act =
  Array.to_list c.comps
  |> List.filteri (fun _ comp ->
         match Component.kind_of comp act with
         | Some Automaton.Output | Some Automaton.Internal -> true
         | Some Automaton.Input | None -> false)

let dual_controlled c ~probes =
  List.filter_map
    (fun act ->
      match controllers c act with
      | [] | [ _ ] -> None
      | owners -> Some (act, List.map Component.name owners))
    probes

let shared_internal c ~probes =
  List.filter_map
    (fun act ->
      let internal_owner = ref None and others = ref 0 in
      Array.iter
        (fun comp ->
          match Component.kind_of comp act with
          | Some Automaton.Internal ->
            if !internal_owner = None then internal_owner := Some (Component.name comp)
            else incr others
          | Some Automaton.Input | Some Automaton.Output -> incr others
          | None -> ())
        c.comps;
      match !internal_owner with
      | Some owner when !others > 0 -> Some (act, owner)
      | Some _ | None -> None)
    probes

let check_compatible c ~probes =
  match probes with
  | [] ->
    Error
      (Printf.sprintf "composition %s: empty probe set, compatibility was not checked"
         c.name)
  | _ -> (
    match dual_controlled c ~probes with
    | (_, owner :: _) :: _ ->
      Error
        (Printf.sprintf
           "composition %s: action controlled by multiple components (first: %s)"
           c.name owner)
    | _ -> (
      match shared_internal c ~probes with
      | (_, owner) :: _ ->
        Error
          (Printf.sprintf
             "composition %s: internal action of %s is in another component's signature"
             c.name owner)
      | [] -> Ok ()))

let step_touched _c st act =
  let n = Array.length st in
  let next = ref st in
  let touched = ref [] in
  let ok = ref true in
  for i = 0 to n - 1 do
    if !ok then
      let inst = st.(i) in
      match Component.step inst act with
      | Some inst' ->
        if inst' != inst then begin
          let nx = if !next == st then Array.copy st else !next in
          nx.(i) <- inst';
          next := nx;
          touched := i :: !touched
        end
      | None -> ok := false
  done;
  if !ok then Some (!next, List.rev !touched) else None

let step c st act = Option.map fst (step_touched c st act)

let tasks_array c =
  match c.tasks_memo with
  | Some a -> a
  | None ->
    let acc = ref [] in
    Array.iteri
      (fun ci comp ->
        List.iteri
          (fun ti (task_name, fair) ->
            acc :=
              { comp_idx = ci;
                task_idx = ti;
                comp_name = Component.name comp;
                task_name;
                fair;
              }
              :: !acc)
          (Component.task_names comp))
      c.comps;
    let a = Array.of_list (List.rev !acc) in
    c.tasks_memo <- Some a;
    a

let comp_task_indices c =
  match c.by_comp_memo with
  | Some m -> m
  | None ->
    let ts = tasks_array c in
    let counts = Array.make (Array.length c.comps) 0 in
    Array.iter (fun tid -> counts.(tid.comp_idx) <- counts.(tid.comp_idx) + 1) ts;
    let m = Array.map (fun n -> Array.make n 0) counts in
    let fill = Array.make (Array.length c.comps) 0 in
    Array.iteri
      (fun k tid ->
        m.(tid.comp_idx).(fill.(tid.comp_idx)) <- k;
        fill.(tid.comp_idx) <- fill.(tid.comp_idx) + 1)
      ts;
    c.by_comp_memo <- Some m;
    m

let tasks c = Array.to_list (tasks_array c)

let enabled _c st tid = Component.enabled_of_task st.(tid.comp_idx) tid.task_idx

let enabled_tasks c st =
  List.filter_map
    (fun tid -> Option.map (fun a -> (tid, a)) (enabled c st tid))
    (tasks c)

let quiescent c st =
  Array.for_all
    (fun tid -> (not tid.fair) || enabled c st tid = None)
    (tasks_array c)

let find_component c nm =
  let found = ref None in
  Array.iteri
    (fun i comp -> if Component.name comp = nm && !found = None then found := Some i)
    c.comps;
  !found

let state_inst st i = st.(i)

let equal_state s1 s2 =
  Array.length s1 = Array.length s2
  && Array.for_all2 (fun a b -> Component.equal_state a b) s1 s2

let hash_state st =
  Array.fold_left (fun acc inst -> (acc * 31) + Component.state_hash inst) 17 st

let task_full_name tid = Printf.sprintf "%s/%s" tid.comp_name tid.task_name

let as_automaton c =
  let tasks_list = tasks c in
  let task tid =
    { Automaton.task_name = task_full_name tid;
      fair = tid.fair;
      enabled = (fun st -> enabled c st tid);
    }
  in
  { Automaton.name = c.name;
    kind = kind_of c;
    start = start c;
    step = step c;
    tasks = List.map task tasks_list;
  }
