type 'a t = { name : string; comps : 'a Component.t array }
type 'a state = 'a Component.inst array

type task_id = {
  comp_idx : int;
  task_idx : int;
  comp_name : string;
  task_name : string;
  fair : bool;
}

let make ~name comps = { name; comps = Array.of_list comps }
let name c = c.name
let components c = c.comps
let start c = Array.map Component.init c.comps

let kind_of c act =
  let open Automaton in
  let out = ref false and inp = ref false and intr = ref false in
  Array.iter
    (fun comp ->
      match Component.kind_of comp act with
      | Some Output -> out := true
      | Some Input -> inp := true
      | Some Internal -> intr := true
      | None -> ())
    c.comps;
  if !out then Some Output
  else if !intr then Some Internal
  else if !inp then Some Input
  else None

let controllers c act =
  Array.to_list c.comps
  |> List.filteri (fun _ comp ->
         match Component.kind_of comp act with
         | Some Automaton.Output | Some Automaton.Internal -> true
         | Some Automaton.Input | None -> false)

let dual_controlled c ~probes =
  List.filter_map
    (fun act ->
      match controllers c act with
      | [] | [ _ ] -> None
      | owners -> Some (act, List.map Component.name owners))
    probes

let shared_internal c ~probes =
  List.filter_map
    (fun act ->
      let internal_owner = ref None and others = ref 0 in
      Array.iter
        (fun comp ->
          match Component.kind_of comp act with
          | Some Automaton.Internal ->
            if !internal_owner = None then internal_owner := Some (Component.name comp)
            else incr others
          | Some Automaton.Input | Some Automaton.Output -> incr others
          | None -> ())
        c.comps;
      match !internal_owner with
      | Some owner when !others > 0 -> Some (act, owner)
      | Some _ | None -> None)
    probes

let check_compatible c ~probes =
  match probes with
  | [] ->
    Error
      (Printf.sprintf "composition %s: empty probe set, compatibility was not checked"
         c.name)
  | _ -> (
    match dual_controlled c ~probes with
    | (_, owner :: _) :: _ ->
      Error
        (Printf.sprintf
           "composition %s: action controlled by multiple components (first: %s)"
           c.name owner)
    | _ -> (
      match shared_internal c ~probes with
      | (_, owner) :: _ ->
        Error
          (Printf.sprintf
             "composition %s: internal action of %s is in another component's signature"
             c.name owner)
      | [] -> Ok ()))

let step _c st act =
  let n = Array.length st in
  let next = Array.make n st.(0) in
  let ok = ref true in
  for i = 0 to n - 1 do
    if !ok then
      match Component.step st.(i) act with
      | Some inst -> next.(i) <- inst
      | None -> ok := false
  done;
  if !ok then Some next else None

let tasks c =
  let acc = ref [] in
  Array.iteri
    (fun ci comp ->
      List.iteri
        (fun ti (task_name, fair) ->
          acc :=
            { comp_idx = ci;
              task_idx = ti;
              comp_name = Component.name comp;
              task_name;
              fair;
            }
            :: !acc)
        (Component.task_names comp))
    c.comps;
  List.rev !acc

let enabled _c st tid = Component.enabled_of_task st.(tid.comp_idx) tid.task_idx

let enabled_tasks c st =
  List.filter_map
    (fun tid -> Option.map (fun a -> (tid, a)) (enabled c st tid))
    (tasks c)

let quiescent c st =
  List.for_all
    (fun tid -> (not tid.fair) || enabled c st tid = None)
    (tasks c)

let find_component c nm =
  let found = ref None in
  Array.iteri
    (fun i comp -> if Component.name comp = nm && !found = None then found := Some i)
    c.comps;
  !found

let state_inst st i = st.(i)

let equal_state s1 s2 =
  Array.length s1 = Array.length s2
  && Array.for_all2 (fun a b -> Component.equal_state a b) s1 s2

let hash_state st =
  Array.fold_left (fun acc inst -> (acc * 31) + Component.state_hash inst) 17 st

let as_automaton c =
  let tasks_list = tasks c in
  let task tid =
    { Automaton.task_name = Printf.sprintf "%s/%s" tid.comp_name tid.task_name;
      fair = tid.fair;
      enabled = (fun st -> enabled c st tid);
    }
  in
  { Automaton.name = c.name;
    kind = kind_of c;
    start = start c;
    step = step c;
    tasks = List.map task tasks_list;
  }
