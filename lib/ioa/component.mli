(** Existentially packed automata.

    Components of one composed system share an action alphabet ['a] but
    each has its own private state type; this module hides the state
    type so that heterogeneous collections of automata can be composed
    (see {!Composition}). *)

type 'a t = C : ('s, 'a) Automaton.t -> 'a t
(** A component is an automaton with its state type abstracted. *)

type 'a inst = I : ('s, 'a) Automaton.t * ('s, 'a) Automaton.task array * 's -> 'a inst
(** A component instance: an automaton, its tasks materialized as an
    array (so per-task enabledness probes are O(1), not [List.nth]),
    and a current state. *)

val name : 'a t -> string
val kind_of : 'a t -> 'a -> Automaton.kind option

val init : 'a t -> 'a inst
(** Instance in the automaton's unique start state. *)

val inst_name : 'a inst -> string
val inst_kind_of : 'a inst -> 'a -> Automaton.kind option

val step : 'a inst -> 'a -> 'a inst option
(** Apply an action; [None] if the action is not enabled.  Actions not
    in the component's signature are ignored and return the instance
    itself ({e physically}, so callers can detect untouched components
    with [==]); composition uses this to broadcast actions to all
    components and report which ones actually moved. *)

val task_names : 'a t -> (string * bool) list
(** Names and fairness flags of the component's tasks, in order. *)

val task_count : 'a inst -> int
(** Number of tasks of the component.  O(1). *)

val enabled_of_task : 'a inst -> int -> 'a option
(** [enabled_of_task inst k] is the action enabled in task [k] (index
    into the task list), if any.  O(1) lookup of the task. *)

val enabled_actions : 'a inst -> 'a list

val equal_state : 'a inst -> 'a inst -> bool
(** Structural equality of the underlying states (used to detect
    repeated configurations in execution trees).  Both instances must
    come from the same component; raises [Invalid_argument] otherwise
    when detectable. *)

val state_hash : 'a inst -> int
(** Structural hash of the underlying state, consistent with
    {!equal_state}. *)
