type report = {
  fair_prefix : bool;
  quiescent_end : bool;
  firings : (string * int) list;
  max_starvation : (string * int) option;
}

let full_name (tid : Composition.task_id) =
  tid.Composition.comp_name ^ "/" ^ tid.Composition.task_name

let analyze ?window comp exe =
  let tasks = Array.of_list (Composition.tasks comp) in
  let ntasks = Array.length tasks in
  let window = match window with Some w -> w | None -> 8 * max 1 ntasks in
  let firings = Array.make ntasks 0 in
  let streak = Array.make ntasks 0 in
  let worst = Array.make ntasks 0 in
  let update st act_opt =
    Array.iteri
      (fun k tid ->
        if tid.Composition.fair then
          match Composition.enabled comp st tid with
          | None -> streak.(k) <- 0
          | Some a -> (
            match act_opt with
            | Some act when Stdlib.compare act a = 0 ->
              firings.(k) <- firings.(k) + 1;
              streak.(k) <- 0
            | _ ->
              streak.(k) <- streak.(k) + 1;
              if streak.(k) > worst.(k) then worst.(k) <- streak.(k)))
      tasks
  in
  let rec replay st = function
    | [] -> st
    | (act, st') :: rest ->
      update st (Some act);
      replay st' rest
  in
  let final = replay exe.Execution.start exe.Execution.steps in
  let quiescent_end = Composition.quiescent comp final in
  let fair_prefix = Array.for_all (fun w -> w <= window) worst in
  let max_starvation =
    let best = ref None in
    Array.iteri
      (fun k w ->
        match !best with
        | Some (_, bw) when bw >= w -> ()
        | _ -> if w > 0 then best := Some (full_name tasks.(k), w))
      worst;
    !best
  in
  let firings =
    Array.to_list (Array.mapi (fun k c -> (full_name tasks.(k), c)) firings)
  in
  { fair_prefix; quiescent_end; firings; max_starvation }
