type report = {
  fair_prefix : bool;
  quiescent_end : bool;
  firings : (string * int) list;
  max_starvation : (string * int) option;
}

let full_name (tid : Composition.task_id) =
  tid.Composition.comp_name ^ "/" ^ tid.Composition.task_name

(* Incremental monitor.  The naive analyzer probed every task's
   enabledness in every state of the execution — O(steps * tasks)
   closure calls.  The monitor keeps the per-task enabledness of the
   current state cached and refreshes only the tasks of components
   whose instance changed between consecutive states (physically
   distinct slots; sound because a physically unchanged instance has
   unchanged enabledness).  Same counters, same report. *)
type 'a monitor = {
  comp : 'a Composition.t;
  tasks : Composition.task_id array;
  by_comp : int array array;
  window : int;
  mutable state : 'a Composition.state;
  cache : 'a option array;
  firings : int array;
  streak : int array;
  worst : int array;
}

let create ?window comp st =
  let tasks = Composition.tasks_array comp in
  let ntasks = Array.length tasks in
  let window = match window with Some w -> w | None -> 8 * max 1 ntasks in
  let cache = Array.make (max 1 ntasks) None in
  Array.iteri (fun k tid -> cache.(k) <- Composition.enabled comp st tid) tasks;
  { comp;
    tasks;
    by_comp = Composition.comp_task_indices comp;
    window;
    state = st;
    cache;
    firings = Array.make (max 1 ntasks) 0;
    streak = Array.make (max 1 ntasks) 0;
    worst = Array.make (max 1 ntasks) 0;
  }

(* Account one fired action against the cached pre-state enabledness. *)
let note m act =
  Array.iteri
    (fun k tid ->
      if tid.Composition.fair then
        match m.cache.(k) with
        | None -> m.streak.(k) <- 0
        | Some a ->
          if Stdlib.compare act a = 0 then begin
            m.firings.(k) <- m.firings.(k) + 1;
            m.streak.(k) <- 0
          end
          else begin
            m.streak.(k) <- m.streak.(k) + 1;
            if m.streak.(k) > m.worst.(k) then m.worst.(k) <- m.streak.(k)
          end)
    m.tasks

let refresh_comp m st' ci =
  Array.iter
    (fun k -> m.cache.(k) <- Composition.enabled m.comp st' m.tasks.(k))
    m.by_comp.(ci)

let observe_touched m act ~touched st' =
  note m act;
  List.iter (refresh_comp m st') touched;
  m.state <- st'

let observe m act st' =
  note m act;
  let st = m.state in
  if st' != st then
    if Array.length st' <> Array.length st then
      (* Not a successor of the tracked state (foreign execution):
         fall back to refreshing everything. *)
      Array.iteri
        (fun k tid -> m.cache.(k) <- Composition.enabled m.comp st' tid)
        m.tasks
    else
      Array.iteri
        (fun i inst' -> if inst' != st.(i) then refresh_comp m st' i)
        st';
  m.state <- st'

let finalize m =
  let quiescent_end =
    let ok = ref true in
    Array.iteri
      (fun k tid -> if tid.Composition.fair && m.cache.(k) <> None then ok := false)
      m.tasks;
    !ok
  in
  let fair_prefix = Array.for_all (fun w -> w <= m.window) m.worst in
  let max_starvation =
    let best = ref None in
    Array.iteri
      (fun k w ->
        match !best with
        | Some (_, bw) when bw >= w -> ()
        | _ -> if w > 0 then best := Some (full_name m.tasks.(k), w))
      m.worst;
    !best
  in
  let firings =
    Array.to_list (Array.mapi (fun k c -> (full_name m.tasks.(k), c)) m.firings)
  in
  { fair_prefix; quiescent_end; firings; max_starvation }

let analyze ?window comp exe =
  let m = create ?window comp (Execution.start exe) in
  List.iter (fun (act, st') -> observe m act st') (Execution.steps exe);
  finalize m
