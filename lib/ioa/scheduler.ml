type policy = Round_robin | Random of int

type force = { at_step : int; task_pattern : string }

type cfg = {
  policy : policy;
  max_steps : int;
  stop_when_quiescent : bool;
  forced : force list;
}

let default_cfg =
  { policy = Round_robin; max_steps = 1000; stop_when_quiescent = true; forced = [] }

type 'a outcome = {
  execution : ('a Composition.state, 'a) Execution.t;
  fired : (Composition.task_id * 'a) list;
  quiescent : bool;
}

let full_name (tid : Composition.task_id) =
  tid.Composition.comp_name ^ "/" ^ tid.Composition.task_name

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* Starvation-bound parameter for the random policy: an enabled fair
   task fires at latest after [patience * #tasks] consecutive steps. *)
let patience = 4

let starvation_bound ~ntasks = (patience * ntasks) + 1

module Seed = struct
  (* splitmix64 (Steele-Lea-Flood).  The finalizer [mix64] is pinned
     against the reference vectors in test/test_seed_derive.ml: any
     change here silently reseeds every derived experiment, so the
     golden test must be updated deliberately, never incidentally. *)
  let golden = 0x9e3779b97f4a7c15L

  let mix64 z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
    logxor z (shift_right_logical z 31)

  (* FNV-1a, 64-bit: stream names enter the derivation as a hash so
     that distinct experiment ids occupy distinct splitmix streams. *)
  let hash_key s =
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
      s;
    !h

  let derive ~root ~key ~index =
    let z =
      Int64.add
        (Int64.logxor (Int64.of_int root) (hash_key key))
        (Int64.mul golden (Int64.of_int (index + 1)))
    in
    Int64.to_int (Int64.logand (mix64 (mix64 z)) 0x3fffffffffffffffL)
end

let run comp cfg =
  let tasks = Array.of_list (Composition.tasks comp) in
  let ntasks = Array.length tasks in
  (* Round-robin is RNG-free: only the random policy builds a state,
     so its outcomes cannot depend on any seed, by construction. *)
  let rng =
    match cfg.policy with
    | Round_robin -> None
    | Random seed -> Some (Stdlib.Random.State.make [| seed |])
  in
  let starving = Array.make ntasks 0 in
  let rr_cursor = ref 0 in
  let state = ref (Composition.start comp) in
  let rev_steps = ref [] in
  let fired = ref [] in
  let pending_forced = ref (List.sort (fun a b -> compare a.at_step b.at_step) cfg.forced) in
  let quiescent = ref false in
  let step = ref 0 in
  let fire tid act =
    (match Composition.step comp !state act with
    | Some st' -> state := st'
    | None -> invalid_arg "Scheduler.run: enabled action failed to step");
    rev_steps := (act, !state) :: !rev_steps;
    fired := (tid, act) :: !fired
  in
  let forced_candidate () =
    match !pending_forced with
    | { at_step; task_pattern } :: rest when at_step <= !step -> (
      let found = ref None in
      Array.iter
        (fun tid ->
          if !found = None && contains ~needle:task_pattern (full_name tid) then
            match Composition.enabled comp !state tid with
            | Some act -> found := Some (tid, act)
            | None -> ())
        tasks;
      match !found with
      | Some c ->
        pending_forced := rest;
        Some c
      | None ->
        (* Pattern matched no enabled task: drop it (the fault pattern
           asked to crash an already-crashed or absent location). *)
        pending_forced := rest;
        None)
    | _ -> None
  in
  let pick_round_robin () =
    let rec go tried =
      if tried >= ntasks then None
      else
        let k = (!rr_cursor + tried) mod ntasks in
        let tid = tasks.(k) in
        if not tid.Composition.fair then go (tried + 1)
        else
          match Composition.enabled comp !state tid with
          | Some act ->
            rr_cursor := (k + 1) mod ntasks;
            Some (tid, act)
          | None -> go (tried + 1)
    in
    go 0
  in
  let pick_random rng =
    (* Starvation backstop first. *)
    let starved = ref None in
    Array.iteri
      (fun k tid ->
        if !starved = None && tid.Composition.fair && starving.(k) > patience * ntasks
        then
          match Composition.enabled comp !state tid with
          | Some act -> starved := Some (k, tid, act)
          | None -> ())
      tasks;
    match !starved with
    | Some (k, tid, act) ->
      starving.(k) <- 0;
      Some (tid, act)
    | None ->
      let enabled = ref [] in
      Array.iteri
        (fun k tid ->
          if tid.Composition.fair then
            match Composition.enabled comp !state tid with
            | Some act ->
              enabled := (k, tid, act) :: !enabled;
              starving.(k) <- starving.(k) + 1
            | None -> starving.(k) <- 0)
        tasks;
      (match !enabled with
      | [] -> None
      | l ->
        let arr = Array.of_list l in
        let k, tid, act = arr.(Stdlib.Random.State.int rng (Array.length arr)) in
        starving.(k) <- 0;
        Some (tid, act))
  in
  let continue = ref true in
  while !continue && !step < cfg.max_steps do
    let choice =
      match forced_candidate () with
      | Some c -> Some c
      | None -> (
        match (cfg.policy, rng) with
        | Round_robin, _ -> pick_round_robin ()
        | Random _, Some rng -> pick_random rng
        | Random _, None -> assert false)
    in
    (match choice with
    | Some (tid, act) ->
      fire tid act;
      incr step
    | None ->
      (* No fair task enabled and nothing forced right now. *)
      if Composition.quiescent comp !state && !pending_forced = [] then begin
        quiescent := true;
        continue := false
      end
      else if cfg.stop_when_quiescent && !pending_forced = [] then begin
        quiescent := true;
        continue := false
      end
      else begin
        (* Idle-step towards the next forced firing. *)
        incr step
      end);
    ()
  done;
  { execution = Execution.of_rev_steps (Composition.start comp) !rev_steps;
    fired = List.rev !fired;
    quiescent = !quiescent;
  }

let run_custom comp ~max_steps ~choose =
  let state = ref (Composition.start comp) in
  let rev_steps = ref [] in
  let fired = ref [] in
  let continue = ref true in
  let step = ref 0 in
  while !continue && !step < max_steps do
    let enabled = Composition.enabled_tasks comp !state in
    match choose ~step:!step enabled with
    | None -> continue := false
    | Some (tid, act) -> (
      match Composition.step comp !state act with
      | None -> invalid_arg "Scheduler.run_custom: chosen action not enabled"
      | Some st' ->
        state := st';
        rev_steps := (act, !state) :: !rev_steps;
        fired := (tid, act) :: !fired;
        incr step)
  done;
  { execution = Execution.of_rev_steps (Composition.start comp) !rev_steps;
    fired = List.rev !fired;
    quiescent = false;
  }
