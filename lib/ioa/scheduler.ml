type policy = Round_robin | Random of int

type force = { at_step : int; task_pattern : string }

type cfg = {
  policy : policy;
  max_steps : int;
  stop_when_quiescent : bool;
  forced : force list;
}

let default_cfg =
  { policy = Round_robin; max_steps = 1000; stop_when_quiescent = true; forced = [] }

type retention = Full | Trace_only | Window of int

type 'a observer =
  step:int ->
  Composition.task_id ->
  'a ->
  touched:int list ->
  'a Composition.state ->
  unit

type 'a outcome = {
  execution : ('a Composition.state, 'a) Execution.t;
  fired : (Composition.task_id * 'a) list;
  quiescent : bool;
  stopped_idle : bool;
  final_state : 'a Composition.state;
  steps_taken : int;
}

let full_name (tid : Composition.task_id) =
  tid.Composition.comp_name ^ "/" ^ tid.Composition.task_name

(* KMP substring search: [matcher needle] preprocesses the needle once
   (O(|needle|)) and the returned predicate scans each haystack in a
   single left-to-right pass (O(|hay|)), replacing the old O(n*m)
   rescan-per-position loop. *)
let matcher needle =
  let m = String.length needle in
  if m = 0 then fun _ -> true
  else begin
    let fail = Array.make m 0 in
    let k = ref 0 in
    for i = 1 to m - 1 do
      while !k > 0 && needle.[i] <> needle.[!k] do
        k := fail.(!k - 1)
      done;
      if needle.[i] = needle.[!k] then incr k;
      fail.(i) <- !k
    done;
    fun hay ->
      let n = String.length hay in
      let q = ref 0 and found = ref false in
      let i = ref 0 in
      while (not !found) && !i < n do
        let c = hay.[!i] in
        while !q > 0 && c <> needle.[!q] do
          q := fail.(!q - 1)
        done;
        if c = needle.[!q] then incr q;
        if !q = m then found := true;
        incr i
      done;
      !found
  end

let contains ~needle hay = matcher needle hay

(* Starvation-bound parameter for the random policy: an enabled fair
   task fires at latest after [patience * #tasks] consecutive steps. *)
let patience = 4

let starvation_bound ~ntasks = (patience * ntasks) + 1

module Seed = struct
  (* splitmix64 (Steele-Lea-Flood).  The finalizer [mix64] is pinned
     against the reference vectors in test/test_seed_derive.ml: any
     change here silently reseeds every derived experiment, so the
     golden test must be updated deliberately, never incidentally. *)
  let golden = 0x9e3779b97f4a7c15L

  let mix64 z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
    logxor z (shift_right_logical z 31)

  (* FNV-1a, 64-bit: stream names enter the derivation as a hash so
     that distinct experiment ids occupy distinct splitmix streams. *)
  let hash_key s =
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
      s;
    !h

  let derive ~root ~key ~index =
    let z =
      Int64.add
        (Int64.logxor (Int64.of_int root) (hash_key key))
        (Int64.mul golden (Int64.of_int (index + 1)))
    in
    Int64.to_int (Int64.logand (mix64 (mix64 z)) 0x3fffffffffffffffL)
end

(* --- streaming step recorders (one per retention policy) --- *)

type ('s, 'a) recorder = {
  push : 'a -> 's -> unit;
  capture : unit -> ('s, 'a) Execution.t;
}

let make_recorder retention start =
  match retention with
  | Full ->
    let rev = ref [] in
    { push = (fun a s -> rev := (a, s) :: !rev);
      capture = (fun () -> Execution.of_rev_steps start !rev);
    }
  | Trace_only ->
    { push = (fun _ _ -> ()); capture = (fun () -> Execution.init start) }
  | Window w when w <= 0 ->
    (* Degenerate window: retain only the running final state. *)
    let last = ref start in
    { push = (fun _ s -> last := s); capture = (fun () -> Execution.init !last) }
  | Window w ->
    (* Ring buffer of the last [w] steps plus the state preceding the
       oldest retained step, so the captured suffix is itself a valid
       execution fragment.  O(w) memory however long the run. *)
    let buf = Array.make w None in
    let count = ref 0 in
    let win_start = ref start in
    { push =
        (fun a s ->
          let slot = !count mod w in
          (if !count >= w then
             match buf.(slot) with
             | Some (_, evicted) -> win_start := evicted
             | None -> ());
          buf.(slot) <- Some (a, s);
          incr count);
      capture =
        (fun () ->
          let kept = min !count w in
          let rev = ref [] in
          for i = 0 to kept - 1 do
            (* oldest first *)
            let slot = (!count - kept + i) mod w in
            match buf.(slot) with
            | Some step -> rev := step :: !rev
            | None -> ()
          done;
          Execution.of_rev_steps !win_start !rev);
    }

let no_observer ~step:_ _ _ ~touched:_ _ = ()

let run ?(retention = Full) ?(observer = no_observer) ?(record_fired = true) comp cfg =
  let tasks = Composition.tasks_array comp in
  let by_comp = Composition.comp_task_indices comp in
  let ntasks = Array.length tasks in
  (* Task names are only consulted by fault injection: build them once
     per run (not once per probed task per step) and only when there
     is a forced schedule at all. *)
  let names = if cfg.forced = [] then [||] else Array.map full_name tasks in
  (* Round-robin is RNG-free: only the random policy builds a state,
     so its outcomes cannot depend on any seed, by construction. *)
  let rng =
    match cfg.policy with
    | Round_robin -> None
    | Random seed -> Some (Stdlib.Random.State.make [| seed |])
  in
  let starving = Array.make (max 1 ntasks) 0 in
  let rr_cursor = ref 0 in
  let start = Composition.start comp in
  let state = ref start in
  (* Incremental enabledness: [enabled.(k)] is task [k]'s enabled
     action in the current state.  A task's enabledness depends only on
     its own component's instance, so after a step only the tasks of
     components touched by that step are re-probed. *)
  let enabled = Array.make (max 1 ntasks) None in
  let refresh_task k = enabled.(k) <- Composition.enabled comp !state tasks.(k) in
  for k = 0 to ntasks - 1 do
    refresh_task k
  done;
  let recorder = make_recorder retention start in
  let fired = ref [] in
  let pending_forced =
    ref
      (List.map
         (fun f -> (f, matcher f.task_pattern))
         (List.sort (fun a b -> compare a.at_step b.at_step) cfg.forced))
  in
  let quiescent = ref false in
  let stopped_idle = ref false in
  let step = ref 0 in
  let fire tid act =
    (match Composition.step_touched comp !state act with
    | Some (st', touched) ->
      state := st';
      List.iter (fun ci -> Array.iter refresh_task by_comp.(ci)) touched;
      recorder.push act st';
      if record_fired then fired := (tid, act) :: !fired;
      observer ~step:!step tid act ~touched st'
    | None -> invalid_arg "Scheduler.run: enabled action failed to step")
  in
  let forced_candidate () =
    match !pending_forced with
    | ({ at_step; _ }, matches) :: rest when at_step <= !step -> (
      let found = ref None in
      let k = ref 0 in
      while !found = None && !k < ntasks do
        (if matches names.(!k) then
           match enabled.(!k) with
           | Some act -> found := Some (tasks.(!k), act)
           | None -> ());
        incr k
      done;
      match !found with
      | Some c ->
        pending_forced := rest;
        Some c
      | None ->
        (* Pattern matched no enabled task: drop it (the fault pattern
           asked to crash an already-crashed or absent location). *)
        pending_forced := rest;
        None)
    | _ -> None
  in
  let pick_round_robin () =
    let rec go tried =
      if tried >= ntasks then None
      else
        let k = (!rr_cursor + tried) mod ntasks in
        if not tasks.(k).Composition.fair then go (tried + 1)
        else
          match enabled.(k) with
          | Some act ->
            rr_cursor := (k + 1) mod ntasks;
            Some (tasks.(k), act)
          | None -> go (tried + 1)
    in
    go 0
  in
  (* Scratch buffer for the random policy's enabled-task collection:
     reused across steps, so the hot loop allocates no per-step list or
     array.  Slots hold task indices in ascending order; the naive
     implementation consed them into a descending list, so index [i]
     of its candidate array is slot [count - 1 - i] here — the RNG
     draw sequence and the chosen tasks are bit-identical. *)
  let scratch = Array.make (max 1 ntasks) 0 in
  let pick_random rng =
    (* Starvation backstop first. *)
    let starved = ref None in
    let k = ref 0 in
    while !starved = None && !k < ntasks do
      (if tasks.(!k).Composition.fair && starving.(!k) > patience * ntasks then
         match enabled.(!k) with
         | Some act -> starved := Some (!k, act)
         | None -> ());
      incr k
    done;
    match !starved with
    | Some (k, act) ->
      starving.(k) <- 0;
      Some (tasks.(k), act)
    | None ->
      let count = ref 0 in
      for k = 0 to ntasks - 1 do
        if tasks.(k).Composition.fair then
          match enabled.(k) with
          | Some _ ->
            scratch.(!count) <- k;
            incr count;
            starving.(k) <- starving.(k) + 1
          | None -> starving.(k) <- 0
      done;
      if !count = 0 then None
      else begin
        let i = Stdlib.Random.State.int rng !count in
        let k = scratch.(!count - 1 - i) in
        starving.(k) <- 0;
        match enabled.(k) with
        | Some act -> Some (tasks.(k), act)
        | None -> assert false
      end
  in
  let continue = ref true in
  while !continue && !step < cfg.max_steps do
    let choice =
      match forced_candidate () with
      | Some c -> Some c
      | None -> (
        match (cfg.policy, rng) with
        | Round_robin, _ -> pick_round_robin ()
        | Random _, Some rng -> pick_random rng
        | Random _, None -> assert false)
    in
    match choice with
    | Some (tid, act) ->
      fire tid act;
      incr step
    | None -> (
      (* No fair task is enabled and nothing is forced right now; the
         state can no longer change on its own. *)
      match !pending_forced with
      | [] ->
        (* Nothing will ever fire again: stop instead of idle-stepping
           to [max_steps].  All fair tasks are disabled here, which is
           exactly [Composition.quiescent]; if some non-fair (crash)
           task is still enabled the system merely went idle, and that
           is reported separately from true quiescence. *)
        quiescent := true;
        stopped_idle := Array.exists Option.is_some enabled;
        continue := false
      | ({ at_step; _ }, _) :: _ ->
        (* Idle-step towards the next forced firing.  The state is
           frozen until then, so jumping the counter is observably
           identical to the old one-step-at-a-time spin. *)
        step := max (!step + 1) (min at_step cfg.max_steps))
  done;
  { execution = recorder.capture ();
    fired = List.rev !fired;
    quiescent = !quiescent;
    stopped_idle = !stopped_idle;
    final_state = !state;
    steps_taken = !step;
  }

let run_custom ?(retention = Full) comp ~max_steps ~choose =
  let start = Composition.start comp in
  let state = ref start in
  let recorder = make_recorder retention start in
  let fired = ref [] in
  let continue = ref true in
  let step = ref 0 in
  while !continue && !step < max_steps do
    let enabled = Composition.enabled_tasks comp !state in
    match choose ~step:!step enabled with
    | None -> continue := false
    | Some (tid, act) -> (
      match Composition.step comp !state act with
      | None -> invalid_arg "Scheduler.run_custom: chosen action not enabled"
      | Some st' ->
        state := st';
        recorder.push act st';
        fired := (tid, act) :: !fired;
        incr step)
  done;
  { execution = recorder.capture ();
    fired = List.rev !fired;
    quiescent = false;
    stopped_idle = false;
    final_state = !state;
    steps_taken = !step;
  }
