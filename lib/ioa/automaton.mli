(** I/O automata (Section 2 of the paper).

    An I/O automaton is a (possibly infinite) state machine with a
    signature classifying its actions as input, output or internal,
    a transition relation, and a partition of its locally controlled
    actions into tasks.

    This module realizes the {e task-deterministic} subclass of
    Section 2.5 structurally: each task exposes at most one enabled
    action per state ([enabled : 's -> 'a option]) and the transition
    function is a function ([step : 's -> 'a -> 's option]), so every
    action is deterministic.  Nondeterminism between tasks is resolved
    externally by a scheduler (see {!Scheduler}), exactly as fairness
    resolves it in the paper.

    The automaton is polymorphic in its action alphabet ['a]; since
    action sets may be infinite (e.g. [send(m,j)_i] for all messages
    [m]), signatures are predicates rather than enumerations. *)

type kind = Input | Output | Internal

val pp_kind : Format.formatter -> kind -> unit

val is_external : kind -> bool
(** Input and output actions are external (visible under composition). *)

val is_locally_controlled : kind -> bool
(** Output and internal actions are locally controlled. *)

type ('s, 'a) task = {
  task_name : string;  (** used for labels in execution trees and fairness reports *)
  fair : bool;
      (** Whether this task carries a fairness obligation.  All tasks of
          ordinary automata do; the crash automaton's tasks do not,
          because {e every} sequence over the crash actions is defined
          to be a fair trace of it (Section 4.4). *)
  enabled : 's -> 'a option;
      (** The unique enabled action of this task in the given state, if
          any.  Task determinism (Section 2.5) holds by construction. *)
}

type ('s, 'a) t = {
  name : string;
  kind : 'a -> kind option;
      (** Signature: [None] means the action is not an action of this
          automaton at all. *)
  start : 's;  (** unique start state (deterministic automata, Section 2.5) *)
  step : 's -> 'a -> 's option;
      (** Transition function.  [None] means the action is not enabled
          in that state.  Input actions must always be enabled
          (input-enabledness); {!val-check_input_enabled} probes this. *)
  tasks : ('s, 'a) task list;
}

val kind_of : ('s, 'a) t -> 'a -> kind option
val in_signature : ('s, 'a) t -> 'a -> bool
val is_input : ('s, 'a) t -> 'a -> bool
val is_output : ('s, 'a) t -> 'a -> bool
val is_internal : ('s, 'a) t -> 'a -> bool

val enabled_actions : ('s, 'a) t -> 's -> 'a list
(** All locally controlled actions enabled in a state (one per enabled
    task, in task order). *)

val step_exn : ('s, 'a) t -> 's -> 'a -> 's
(** Like [step] but raises [Invalid_argument] when the action is not
    enabled; for use where enabledness was already established. *)

val input_enabledness_counterexamples :
  ('s, 'a) t -> states:'s list -> probes:'a list -> (int * 'a) list
(** All [(state_index, action)] pairs such that the probed action is an
    input of the automaton but is disabled in the probed state.
    Input-enabledness over infinite state/action sets cannot be decided,
    so this is a sampled probe.  This is the single implementation
    behind both {!check_input_enabled} and the [input-enabled] rule of
    the [Afd_analysis] lint engine. *)

val check_input_enabled : ('s, 'a) t -> 's list -> 'a list -> (unit, string) result
(** [check_input_enabled a states probes] checks that every input
    action among [probes] is enabled in every state of [states].
    An empty [states] or [probes] list is an [Error] (nothing was
    checked, so the automaton must not be reported well-formed). *)

val hide : ('a -> bool) -> ('s, 'a) t -> ('s, 'a) t
(** [hide p a] reclassifies the output actions of [a] satisfying [p] as
    internal actions (Section 2.3, "Hiding"). *)

val rename : to_:('a -> 'b) -> of_:('b -> 'a option) -> ('s, 'a) t -> ('s, 'b) t
(** [rename ~to_ ~of_ a] is [a] with actions renamed through the
    bijection [to_] (with partial inverse [of_]; actions outside the
    range map to [None] and are not in the renamed signature).  Used to
    build the renamings D' of an AFD D (Section 5.3). *)

val map_state :
  get:('t -> 's) -> set:('t -> 's -> 't) -> start:'t -> ('s, 'a) t -> ('t, 'a) t
(** Embed an automaton into a larger state type (a lens); used when a
    process automaton is assembled from reusable pieces. *)
