(** Fairness checking on finite execution prefixes (Section 2.4).

    A finite execution is fair iff no task is enabled in the final
    state; an infinite one is fair iff every task fires infinitely
    often or is disabled infinitely often.  On a finite prefix of an
    intended infinite execution neither clause is directly checkable,
    so we verify the operational bound our schedulers promise: no fair
    task stays enabled-without-firing for more than [window] consecutive
    steps. *)

type report = {
  fair_prefix : bool;  (** no fair task starved beyond the window *)
  quiescent_end : bool;  (** no fair task enabled in the final state *)
  firings : (string * int) list;  (** ["component/task"] firing counts *)
  max_starvation : (string * int) option;
      (** worst observed enabled-without-firing stretch *)
}

val analyze :
  ?window:int -> 'a Composition.t -> ('a Composition.state, 'a) Execution.t -> report
(** [analyze ~window comp exe] replays [exe] against [comp]'s task
    structure.  Default [window] is [8 * number of tasks]. *)
