(** Fairness checking on finite execution prefixes (Section 2.4).

    A finite execution is fair iff no task is enabled in the final
    state; an infinite one is fair iff every task fires infinitely
    often or is disabled infinitely often.  On a finite prefix of an
    intended infinite execution neither clause is directly checkable,
    so we verify the operational bound our schedulers promise: no fair
    task stays enabled-without-firing for more than [window] consecutive
    steps. *)

type report = {
  fair_prefix : bool;  (** no fair task starved beyond the window *)
  quiescent_end : bool;  (** no fair task enabled in the final state *)
  firings : (string * int) list;  (** ["component/task"] firing counts *)
  max_starvation : (string * int) option;
      (** worst observed enabled-without-firing stretch *)
}

(** {1 Streaming monitor}

    The monitor folds over a run one step at a time, caching per-task
    enabledness and re-probing only the tasks of components whose
    instance changed — O(tasks of touched components) per step instead
    of O(all tasks).  It can be fed online from a scheduler observer
    (no retained execution needed) or offline from a stored
    execution. *)

type 'a monitor

val create : ?window:int -> 'a Composition.t -> 'a Composition.state -> 'a monitor
(** Monitor starting in the given state.  Default [window] is
    [8 * number of tasks]. *)

val observe : 'a monitor -> 'a -> 'a Composition.state -> unit
(** [observe m act st'] accounts one fired action and its post-state.
    Touched components are detected by physical diff against the
    previous state, which is exact for states produced by
    {!Composition.step}. *)

val observe_touched : 'a monitor -> 'a -> touched:int list -> 'a Composition.state -> unit
(** Like {!observe} with the touched-component indices already known
    (as a scheduler observer receives them), skipping the diff scan. *)

val finalize : 'a monitor -> report
(** The report for the steps observed so far.  The monitor may keep
    observing afterwards. *)

val analyze :
  ?window:int -> 'a Composition.t -> ('a Composition.state, 'a) Execution.t -> report
(** [analyze ~window comp exe] folds the monitor over [exe]'s steps:
    equivalent to the naive full replay, without its quadratic
    re-probing. *)
