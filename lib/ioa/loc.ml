type t = int

let compare = Int.compare
let equal = Int.equal
let hash = Fun.id

let pp fmt i = Format.fprintf fmt "p%d" i
let to_string i = "p" ^ string_of_int i

let universe ~n =
  if n <= 0 then invalid_arg "Loc.universe: n must be positive";
  List.init n Fun.id

let min_not_in ~n excluded =
  let rec go i = if i >= n then None else if excluded i then go (i + 1) else Some i in
  go 0

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let set_of_universe ~n = Set.of_list (universe ~n)

let pp_set fmt s =
  Format.fprintf fmt "{%a}" (Fmt.list ~sep:(Fmt.any ",") pp) (Set.elements s)
