let project p t = List.filter p t

let is_subsequence ~equal t' t =
  let rec go sub full =
    match (sub, full) with
    | [], _ -> true
    | _ :: _, [] -> false
    | x :: xs, y :: ys -> if equal x y then go xs ys else go sub ys
  in
  go t' t

let is_prefix ~equal t' t =
  let rec go p q =
    match (p, q) with
    | [], _ -> true
    | _ :: _, [] -> false
    | x :: xs, y :: ys -> equal x y && go xs ys
  in
  go t' t

let is_permutation ~equal t1 t2 =
  let rec remove x = function
    | [] -> None
    | y :: ys -> if equal x y then Some ys else Option.map (fun r -> y :: r) (remove x ys)
  in
  let rec go a b =
    match a with
    | [] -> b = []
    | x :: xs -> ( match remove x b with None -> false | Some b' -> go xs b')
  in
  List.length t1 = List.length t2 && go t1 t2

let nth t x = if x <= 0 then None else List.nth_opt t (x - 1)

let positions p t =
  let _, acc =
    List.fold_left (fun (i, acc) e -> (i + 1, if p e then i :: acc else acc)) (0, []) t
  in
  List.rev acc
