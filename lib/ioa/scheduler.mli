(** Fair execution of composed systems (Section 2.4).

    A scheduler resolves the nondeterminism between tasks.  Fairness
    requires that every (fair) task either fires infinitely often or is
    infinitely often disabled; on finite prefixes our schedulers
    guarantee a stronger operational property: an enabled fair task is
    never starved longer than a bounded number of steps.

    Tasks marked [fair = false] (the crash automaton's tasks) carry no
    obligation and fire only when the fault-injection schedule forces
    them.

    The stepping loop is incremental: per-task enabledness is cached
    and, after each fired action, refreshed only for the tasks of
    components actually touched by that action (see
    {!Composition.step_touched}), so a step costs O(tasks of touched
    components) rather than O(all tasks).  The fired sequence is
    bit-identical to a naive rescan-everything scheduler for every
    policy, seed, and fault pattern (enforced by a differential
    property test). *)

type policy =
  | Round_robin
      (** Cycle through the task list; fire each enabled task in turn. *)
  | Random of int
      (** Seeded uniform choice among enabled fair tasks, with a
          round-robin starvation backstop so fairness still holds. *)

type force = { at_step : int; task_pattern : string }
(** Fire the first enabled task whose ["component/task"] name contains
    [task_pattern] once the global step counter reaches [at_step].
    Used to inject crashes at chosen points (realizing a chosen fault
    pattern, Section 4.4). *)

type cfg = {
  policy : policy;
  max_steps : int;
  stop_when_quiescent : bool;
  forced : force list;
}

val default_cfg : cfg
(** Round-robin, 1000 steps, stop when quiescent, no forced tasks. *)

val starvation_bound : ntasks:int -> int
(** Operational fairness bound of the [Random] policy: a fair task that
    stays enabled fires within [starvation_bound ~ntasks] consecutive
    steps (the backstop resets its wait counter whenever it fires or is
    disabled).  Exposed so the bound is testable, not just documented;
    see test/test_sched_fairness.ml. *)

val contains : needle:string -> string -> bool
(** Single-pass (KMP) substring containment, the matcher behind
    [task_pattern].  Exposed for the differential test against the
    specification [exists i. hay[i..] starts with needle]. *)

(** {1 Deterministic seed derivation}

    The hook used by the parallel experiment runner ({!Afd_runner}) to
    give every matrix cell its own scheduler seed.  Derivation is a
    pure function of [(root, key, index)], so a sweep's seeds are
    bit-identical regardless of how many domains execute it or in what
    order cells are scheduled — the deterministic-replay discipline of
    randomized systematic testers. *)
module Seed : sig
  val mix64 : int64 -> int64
  (** The splitmix64 finalizer (bijective on [int64]).  Pinned by
      reference vectors in the test suite. *)

  val derive : root:int -> key:string -> index:int -> int
  (** [derive ~root ~key ~index] is a nonnegative seed (62 bits) for
      cell [index] of the stream named [key], suitable for the
      [Random] policy.  Distinct [(key, index)] pairs yield distinct
      seeds (up to the 2^-62 truncation collision probability). *)
end

(** {1 Retention and observation}

    Long runs need not retain every intermediate state.  The retention
    policy controls what {!outcome}'s [execution] holds; the [fired]
    task/action sequence and the final state are always complete, so
    verdicts that fold over the trace are unaffected.  Monitors that
    need per-step states stream them through an {!observer} instead of
    replaying a retained execution. *)

type retention =
  | Full  (** Retain every step: [execution] is the whole run. *)
  | Trace_only
      (** Retain no steps: [execution] is the empty execution from the
          start state; use [fired] and [final_state]. *)
  | Window of int
      (** Retain only the last [n] steps in O(n) memory; [execution] is
          the run's suffix, whose {!Execution.start} is the state
          preceding the oldest retained step. *)

type 'a observer =
  step:int ->
  Composition.task_id ->
  'a ->
  touched:int list ->
  'a Composition.state ->
  unit
(** Called after every fired step with the 0-based step index, the task
    and action fired, the ascending indices of the components the
    action touched, and the post-state.  Runs inline in the stepping
    loop: observers should be cheap and must not mutate the
    composition. *)

type 'a outcome = {
  execution : ('a Composition.state, 'a) Execution.t;
      (** Per the retention policy; the whole run under [Full]. *)
  fired : (Composition.task_id * 'a) list;
      (** in firing order; [[]] when the run was started with
          [~record_fired:false] *)
  quiescent : bool;
      (** Stopped because no fair task was enabled
          ({!Composition.quiescent}). *)
  stopped_idle : bool;
      (** Quiescent, but some non-fair task (e.g. an unforced crash)
          was still enabled when the run stopped — the system went
          idle rather than terminally silent. *)
  final_state : 'a Composition.state;
      (** Last reached state, under every retention policy. *)
  steps_taken : int;
      (** Global step counter at stop (counts idle fault-injection
          waiting steps as well as fired ones). *)
}

val run :
  ?retention:retention ->
  ?observer:'a observer ->
  ?record_fired:bool ->
  'a Composition.t ->
  cfg ->
  'a outcome
(** Run the scheduler.  [retention] defaults to [Full]; [observer]
    defaults to a no-op.  The fired sequence, final state and verdict
    flags are identical across retention policies.  [record_fired]
    (default [true]) controls whether the fired list is accumulated:
    pass [false] for streaming runs whose only consumer is the
    observer, making live memory independent of the run length. *)

val run_custom :
  ?retention:retention ->
  'a Composition.t ->
  max_steps:int ->
  choose:(step:int -> (Composition.task_id * 'a) list -> (Composition.task_id * 'a) option) ->
  'a outcome
(** Fully adversarial scheduling: [choose] picks among the enabled
    tasks (fair and unfair) at each step; [None] stops the run.  Gives
    the adversary of the FLP/bivalence experiments complete control;
    fairness is then the adversary's responsibility. *)
