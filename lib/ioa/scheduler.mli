(** Fair execution of composed systems (Section 2.4).

    A scheduler resolves the nondeterminism between tasks.  Fairness
    requires that every (fair) task either fires infinitely often or is
    infinitely often disabled; on finite prefixes our schedulers
    guarantee a stronger operational property: an enabled fair task is
    never starved longer than a bounded number of steps.

    Tasks marked [fair = false] (the crash automaton's tasks) carry no
    obligation and fire only when the fault-injection schedule forces
    them. *)

type policy =
  | Round_robin
      (** Cycle through the task list; fire each enabled task in turn. *)
  | Random of int
      (** Seeded uniform choice among enabled fair tasks, with a
          round-robin starvation backstop so fairness still holds. *)

type force = { at_step : int; task_pattern : string }
(** Fire the first enabled task whose ["component/task"] name contains
    [task_pattern] once the global step counter reaches [at_step].
    Used to inject crashes at chosen points (realizing a chosen fault
    pattern, Section 4.4). *)

type cfg = {
  policy : policy;
  max_steps : int;
  stop_when_quiescent : bool;
  forced : force list;
}

val default_cfg : cfg
(** Round-robin, 1000 steps, stop when quiescent, no forced tasks. *)

type 'a outcome = {
  execution : ('a Composition.state, 'a) Execution.t;
  fired : (Composition.task_id * 'a) list;  (** in firing order *)
  quiescent : bool;  (** stopped because no fair task was enabled *)
}

val run : 'a Composition.t -> cfg -> 'a outcome

val run_custom :
  'a Composition.t ->
  max_steps:int ->
  choose:(step:int -> (Composition.task_id * 'a) list -> (Composition.task_id * 'a) option) ->
  'a outcome
(** Fully adversarial scheduling: [choose] picks among the enabled
    tasks (fair and unfair) at each step; [None] stops the run.  Gives
    the adversary of the FLP/bivalence experiments complete control;
    fairness is then the adversary's responsibility. *)
