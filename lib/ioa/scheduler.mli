(** Fair execution of composed systems (Section 2.4).

    A scheduler resolves the nondeterminism between tasks.  Fairness
    requires that every (fair) task either fires infinitely often or is
    infinitely often disabled; on finite prefixes our schedulers
    guarantee a stronger operational property: an enabled fair task is
    never starved longer than a bounded number of steps.

    Tasks marked [fair = false] (the crash automaton's tasks) carry no
    obligation and fire only when the fault-injection schedule forces
    them. *)

type policy =
  | Round_robin
      (** Cycle through the task list; fire each enabled task in turn. *)
  | Random of int
      (** Seeded uniform choice among enabled fair tasks, with a
          round-robin starvation backstop so fairness still holds. *)

type force = { at_step : int; task_pattern : string }
(** Fire the first enabled task whose ["component/task"] name contains
    [task_pattern] once the global step counter reaches [at_step].
    Used to inject crashes at chosen points (realizing a chosen fault
    pattern, Section 4.4). *)

type cfg = {
  policy : policy;
  max_steps : int;
  stop_when_quiescent : bool;
  forced : force list;
}

val default_cfg : cfg
(** Round-robin, 1000 steps, stop when quiescent, no forced tasks. *)

val starvation_bound : ntasks:int -> int
(** Operational fairness bound of the [Random] policy: a fair task that
    stays enabled fires within [starvation_bound ~ntasks] consecutive
    steps (the backstop resets its wait counter whenever it fires or is
    disabled).  Exposed so the bound is testable, not just documented;
    see test/test_sched_fairness.ml. *)

(** {1 Deterministic seed derivation}

    The hook used by the parallel experiment runner ({!Afd_runner}) to
    give every matrix cell its own scheduler seed.  Derivation is a
    pure function of [(root, key, index)], so a sweep's seeds are
    bit-identical regardless of how many domains execute it or in what
    order cells are scheduled — the deterministic-replay discipline of
    randomized systematic testers. *)
module Seed : sig
  val mix64 : int64 -> int64
  (** The splitmix64 finalizer (bijective on [int64]).  Pinned by
      reference vectors in the test suite. *)

  val derive : root:int -> key:string -> index:int -> int
  (** [derive ~root ~key ~index] is a nonnegative seed (62 bits) for
      cell [index] of the stream named [key], suitable for the
      [Random] policy.  Distinct [(key, index)] pairs yield distinct
      seeds (up to the 2^-62 truncation collision probability). *)
end

type 'a outcome = {
  execution : ('a Composition.state, 'a) Execution.t;
  fired : (Composition.task_id * 'a) list;  (** in firing order *)
  quiescent : bool;  (** stopped because no fair task was enabled *)
}

val run : 'a Composition.t -> cfg -> 'a outcome

val run_custom :
  'a Composition.t ->
  max_steps:int ->
  choose:(step:int -> (Composition.task_id * 'a) list -> (Composition.task_id * 'a) option) ->
  'a outcome
(** Fully adversarial scheduling: [choose] picks among the enabled
    tasks (fair and unfair) at each step; [None] stops the run.  Gives
    the adversary of the FLP/bivalence experiments complete control;
    fairness is then the adversary's responsibility. *)
