type 'a t = C : ('s, 'a) Automaton.t -> 'a t
type 'a inst = I : ('s, 'a) Automaton.t * 's -> 'a inst

let name (C a) = a.Automaton.name
let kind_of (C a) act = a.Automaton.kind act

let init (C a) = I (a, a.Automaton.start)

let inst_name (I (a, _)) = a.Automaton.name
let inst_kind_of (I (a, _)) act = a.Automaton.kind act

let step (I (a, s)) act =
  match a.Automaton.kind act with
  | None -> Some (I (a, s))
  | Some _ -> (
    match a.Automaton.step s act with
    | None -> None
    | Some s' -> Some (I (a, s')))

let task_names (C a) =
  List.map (fun t -> (t.Automaton.task_name, t.Automaton.fair)) a.Automaton.tasks

let enabled_of_task (I (a, s)) k =
  match List.nth_opt a.Automaton.tasks k with
  | None -> None
  | Some t -> t.Automaton.enabled s

let enabled_actions (I (a, s)) = Automaton.enabled_actions a s

(* Component states are pure data (no closures), so structural
   polymorphic equality on the untyped representation is sound.  The
   name check guards against comparing instances of different
   components, whose states would have different types. *)
let equal_state (I (a1, s1)) (I (a2, s2)) =
  if not (String.equal a1.Automaton.name a2.Automaton.name) then
    invalid_arg "Component.equal_state: different components";
  Stdlib.compare (Obj.repr s1) (Obj.repr s2) = 0

let state_hash (I (_, s)) = Hashtbl.hash s
