type 'a t = C : ('s, 'a) Automaton.t -> 'a t

type 'a inst = I : ('s, 'a) Automaton.t * ('s, 'a) Automaton.task array * 's -> 'a inst

let name (C a) = a.Automaton.name
let kind_of (C a) act = a.Automaton.kind act

let init (C a) = I (a, Array.of_list a.Automaton.tasks, a.Automaton.start)

let inst_name (I (a, _, _)) = a.Automaton.name
let inst_kind_of (I (a, _, _)) act = a.Automaton.kind act

(* Untouched components return the instance itself (physically): both
   out-of-signature actions and transitions that hand back the very
   same state value.  Composition.step detects unmoved components with
   [==] and the scheduler invalidates only the tasks of moved ones. *)
let step (I (a, ts, s) as inst) act =
  match a.Automaton.kind act with
  | None -> Some inst
  | Some _ -> (
    match a.Automaton.step s act with
    | None -> None
    | Some s' -> if s' == s then Some inst else Some (I (a, ts, s')))

let task_names (C a) =
  List.map (fun t -> (t.Automaton.task_name, t.Automaton.fair)) a.Automaton.tasks

let task_count (I (_, ts, _)) = Array.length ts

let enabled_of_task (I (_, ts, s)) k =
  if k < 0 || k >= Array.length ts then None else ts.(k).Automaton.enabled s

let enabled_actions (I (a, _, s)) = Automaton.enabled_actions a s

(* Component states are pure data (no closures), so structural
   polymorphic equality on the untyped representation is sound.  The
   name check guards against comparing instances of different
   components, whose states would have different types. *)
let equal_state (I (a1, _, s1)) (I (a2, _, s2)) =
  if not (String.equal a1.Automaton.name a2.Automaton.name) then
    invalid_arg "Component.equal_state: different components";
  Stdlib.compare (Obj.repr s1) (Obj.repr s2) = 0

let state_hash (I (_, _, s)) = Hashtbl.hash s
