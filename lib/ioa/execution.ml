(* Steps are stored newest-first with a materialized count, so the hot
   loop's [extend] is a cons and [length]/[final] are O(1); the
   in-order views ([steps], [schedule], [states]) reverse on demand. *)
type ('s, 'a) t = { start : 's; rev : ('a * 's) list; count : int }

let init s = { start = s; rev = []; count = 0 }
let extend e a s = { e with rev = (a, s) :: e.rev; count = e.count + 1 }
let of_rev_steps start rev = { start; rev; count = List.length rev }
let length e = e.count
let start e = e.start
let steps e = List.rev e.rev

let final e = match e.rev with [] -> e.start | (_, s) :: _ -> s

let schedule e = List.rev_map fst e.rev
let states e = e.start :: List.rev_map snd e.rev
let trace ~external_ e = List.filter external_ (schedule e)

let concat a b =
  if Stdlib.compare (final a) b.start <> 0 then
    invalid_arg "Execution.concat: final state of first is not start of second";
  { start = a.start; rev = b.rev @ a.rev; count = a.count + b.count }

let is_execution_of aut e =
  let rec go s = function
    | [] -> true
    | (a, s') :: rest -> (
      match aut.Automaton.step s a with
      | Some s'' -> Stdlib.compare s'' s' = 0 && go s' rest
      | None -> false)
  in
  Stdlib.compare e.start aut.Automaton.start = 0 && go e.start (steps e)

let apply_schedule aut s0 sched =
  let rec go s rev count = function
    | [] -> Some { start = s0; rev; count }
    | a :: rest -> (
      match aut.Automaton.step s a with
      | Some s' -> go s' ((a, s') :: rev) (count + 1) rest
      | None -> None)
  in
  go s0 [] 0 sched
