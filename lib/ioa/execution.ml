type ('s, 'a) t = { start : 's; steps : ('a * 's) list }

let init s = { start = s; steps = [] }
let extend e a s = { e with steps = e.steps @ [ (a, s) ] }
let of_rev_steps start rev = { start; steps = List.rev rev }
let length e = List.length e.steps

let final e =
  match List.rev e.steps with [] -> e.start | (_, s) :: _ -> s

let schedule e = List.map fst e.steps
let states e = e.start :: List.map snd e.steps
let trace ~external_ e = List.filter external_ (schedule e)

let concat a b =
  if Stdlib.compare (final a) b.start <> 0 then
    invalid_arg "Execution.concat: final state of first is not start of second";
  { start = a.start; steps = a.steps @ b.steps }

let is_execution_of aut e =
  let rec go s = function
    | [] -> true
    | (a, s') :: rest -> (
      match aut.Automaton.step s a with
      | Some s'' -> Stdlib.compare s'' s' = 0 && go s' rest
      | None -> false)
  in
  Stdlib.compare e.start aut.Automaton.start = 0 && go e.start e.steps

let apply_schedule aut s0 sched =
  let rec go s rev = function
    | [] -> Some (of_rev_steps s0 rev)
    | a :: rest -> (
      match aut.Automaton.step s a with
      | Some s' -> go s' ((a, s') :: rev) rest
      | None -> None)
  in
  go s0 [] sched
