type kind = Input | Output | Internal

let pp_kind fmt = function
  | Input -> Format.pp_print_string fmt "input"
  | Output -> Format.pp_print_string fmt "output"
  | Internal -> Format.pp_print_string fmt "internal"

let is_external = function Input | Output -> true | Internal -> false
let is_locally_controlled = function Output | Internal -> true | Input -> false

type ('s, 'a) task = {
  task_name : string;
  fair : bool;
  enabled : 's -> 'a option;
}

type ('s, 'a) t = {
  name : string;
  kind : 'a -> kind option;
  start : 's;
  step : 's -> 'a -> 's option;
  tasks : ('s, 'a) task list;
}

let kind_of a act = a.kind act
let in_signature a act = Option.is_some (a.kind act)
let is_input a act = a.kind act = Some Input
let is_output a act = a.kind act = Some Output
let is_internal a act = a.kind act = Some Internal

let enabled_actions a s = List.filter_map (fun t -> t.enabled s) a.tasks

let step_exn a s act =
  match a.step s act with
  | Some s' -> s'
  | None ->
    invalid_arg (Printf.sprintf "Automaton.step_exn: action not enabled in %s" a.name)

let input_enabledness_counterexamples a ~states ~probes =
  List.concat
    (List.mapi
       (fun si s ->
         List.filter_map
           (fun act ->
             if is_input a act && a.step s act = None then Some (si, act) else None)
           probes)
       states)

let check_input_enabled a states probes =
  match (states, probes) with
  | [], _ | _, [] ->
    Error
      (Printf.sprintf
         "automaton %s: empty probe set, input-enabledness was not checked" a.name)
  | _ -> (
    match input_enabledness_counterexamples a ~states ~probes with
    | [] -> Ok ()
    | (si, _) :: _ ->
      Error
        (Printf.sprintf "automaton %s is not input-enabled on probed state #%d" a.name
           si))

let hide p a =
  let kind act =
    match a.kind act with
    | Some Output when p act -> Some Internal
    | k -> k
  in
  { a with kind }

let rename ~to_ ~of_ a =
  let kind b = match of_ b with None -> None | Some act -> a.kind act in
  let step s b = match of_ b with None -> None | Some act -> a.step s act in
  let task t =
    { task_name = t.task_name;
      fair = t.fair;
      enabled = (fun s -> Option.map to_ (t.enabled s));
    }
  in
  { name = a.name; kind; start = a.start; step; tasks = List.map task a.tasks }

let map_state ~get ~set ~start a =
  let step t act = Option.map (set t) (a.step (get t) act) in
  let task tk =
    { task_name = tk.task_name; fair = tk.fair; enabled = (fun t -> tk.enabled (get t)) }
  in
  { name = a.name; kind = a.kind; start; step; tasks = List.map task a.tasks }
