(** Executions, schedules, and traces (Section 2.2).

    An execution fragment is an alternating sequence of states and
    actions [s0, a1, s1, a2, ...].  We store the start state and the
    list of (action, resulting state) steps.  The {e schedule} of an
    execution is its sequence of events (all actions); its {e trace}
    is the subsequence of external actions. *)

type ('s, 'a) t = { start : 's; steps : ('a * 's) list }

val init : 's -> ('s, 'a) t
(** The null execution fragment consisting of one state. *)

val extend : ('s, 'a) t -> 'a -> 's -> ('s, 'a) t
(** Append one step. O(1) amortized is not needed here; steps are kept
    in order, so this is O(length). Prefer {!of_rev_steps} in hot
    loops. *)

val of_rev_steps : 's -> ('a * 's) list -> ('s, 'a) t
(** Build from steps accumulated in reverse order. *)

val length : ('s, 'a) t -> int
val final : ('s, 'a) t -> 's
val schedule : ('s, 'a) t -> 'a list
val states : ('s, 'a) t -> 's list

val trace : external_:('a -> bool) -> ('s, 'a) t -> 'a list
(** Projection of the schedule on external actions. *)

val concat : ('s, 'a) t -> ('s, 'a) t -> ('s, 'a) t
(** [concat a b]: [b] must start in the final state of [a]
    (checked with structural equality); Section 2.2's [a . b]. *)

val is_execution_of : ('s, 'a) Automaton.t -> ('s, 'a) t -> bool
(** Replays the steps: start state matches, and each action is enabled
    and leads (deterministically) to the recorded state.  Uses
    structural equality on states. *)

val apply_schedule : ('s, 'a) Automaton.t -> 's -> 'a list -> ('s, 'a) t option
(** [apply_schedule a s sched] is the result of applying the schedule
    to [a] in state [s] (Section 2.2, "applicable"); [None] when some
    event is not enabled. *)
