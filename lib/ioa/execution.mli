(** Executions, schedules, and traces (Section 2.2).

    An execution fragment is an alternating sequence of states and
    actions [s0, a1, s1, a2, ...].  We store the start state and the
    (action, resulting state) steps.  The {e schedule} of an execution
    is its sequence of events (all actions); its {e trace} is the
    subsequence of external actions.

    The representation is abstract: steps are kept newest-first with a
    materialized length, so {!extend}, {!length} and {!final} are O(1)
    and the simulator's hot loop never pays a list append. *)

type ('s, 'a) t

val init : 's -> ('s, 'a) t
(** The null execution fragment consisting of one state. *)

val extend : ('s, 'a) t -> 'a -> 's -> ('s, 'a) t
(** Append one step.  O(1). *)

val of_rev_steps : 's -> ('a * 's) list -> ('s, 'a) t
(** Build from steps accumulated in reverse order. *)

val length : ('s, 'a) t -> int
(** Number of steps.  O(1). *)

val start : ('s, 'a) t -> 's
(** The initial state of the fragment. *)

val steps : ('s, 'a) t -> ('a * 's) list
(** The (action, resulting state) steps in order.  O(length). *)

val final : ('s, 'a) t -> 's
(** The last state.  O(1). *)

val schedule : ('s, 'a) t -> 'a list
val states : ('s, 'a) t -> 's list

val trace : external_:('a -> bool) -> ('s, 'a) t -> 'a list
(** Projection of the schedule on external actions. *)

val concat : ('s, 'a) t -> ('s, 'a) t -> ('s, 'a) t
(** [concat a b]: [b] must start in the final state of [a]
    (checked with structural equality); Section 2.2's [a . b]. *)

val is_execution_of : ('s, 'a) Automaton.t -> ('s, 'a) t -> bool
(** Replays the steps: start state matches, and each action is enabled
    and leads (deterministically) to the recorded state.  Uses
    structural equality on states. *)

val apply_schedule : ('s, 'a) Automaton.t -> 's -> 'a list -> ('s, 'a) t option
(** [apply_schedule a s sched] is the result of applying the schedule
    to [a] in state [s] (Section 2.2, "applicable"); [None] when some
    event is not enabled. *)
