(** Location identifiers.

    The paper posits a fixed finite set [Pi] of [n] location IDs
    (Section 3.1).  We realize locations as integers [0 .. n-1]; the
    placeholder element "bottom" of the paper is represented by
    [option] at use sites rather than by a sentinel value. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** [pp] prints a location as [pN], e.g. [p0], [p3]. *)

val to_string : t -> string

val universe : n:int -> t list
(** [universe ~n] is the set Pi = [0; ...; n-1], in increasing order.
    Raises [Invalid_argument] if [n <= 0]. *)

val min_not_in : n:int -> (t -> bool) -> t option
(** [min_not_in ~n excluded] is the smallest location of [universe ~n]
    for which [excluded] is [false], or [None] if all are excluded.
    This is the [min (Pi \ crashset)] operation of Algorithm 1. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_universe : n:int -> Set.t
val pp_set : Format.formatter -> Set.t -> unit
