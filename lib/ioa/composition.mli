(** Composition of I/O automata (Section 2.3).

    A collection of automata over a common action alphabet is composed
    by matching output actions of some automata with the same-named
    input actions of others; all components sharing an action perform
    it together.

    Requirements checked (by sampled probes, since signatures are
    predicates over possibly-infinite alphabets):
    - at most one component controls (outputs or has internal) any
      given action;
    - internal actions of one component belong to no other component.

    A composition is itself usable as an automaton via
    {!as_automaton}. *)

type 'a t

type 'a state = 'a Component.inst array

(** A task of the composed system, identified by component and task
    index; carries the component and task names for display. *)
type task_id = {
  comp_idx : int;
  task_idx : int;
  comp_name : string;
  task_name : string;
  fair : bool;
}

val make : name:string -> 'a Component.t list -> 'a t
val name : 'a t -> string
val components : 'a t -> 'a Component.t array
val start : 'a t -> 'a state

val kind_of : 'a t -> 'a -> Automaton.kind option
(** Composed signature: an action is an output of the composition if it
    is an output of some component, internal if internal to some
    component, an input if it is an input of some component and an
    output/internal of none. *)

val dual_controlled : 'a t -> probes:'a list -> ('a * string list) list
(** Probed actions controlled (output or internal) by more than one
    component, with the offending component names.  Single
    implementation behind {!check_compatible} and the [dual-control]
    rule of the [Afd_analysis] lint engine. *)

val shared_internal : 'a t -> probes:'a list -> ('a * string) list
(** Probed actions that are internal to one component but also appear
    in another component's signature (the internal-action privacy half
    of compatibility, Section 2.3), with the internal owner's name. *)

val check_compatible : 'a t -> probes:'a list -> (unit, string) result
(** Sampled compatibility check: no probed action is controlled by two
    components, and no probed internal action is shared.  An empty
    [probes] list is an [Error] (nothing was checked). *)

val step : 'a t -> 'a state -> 'a -> 'a state option
(** Perform an action: all components with the action in their
    signature step together; [None] if any of them has it disabled
    (which, for a compatible composition, only happens when the unique
    controlling component has it disabled or a non-input-enabled
    automaton misbehaves). *)

val step_touched : 'a t -> 'a state -> 'a -> ('a state * int list) option
(** Like {!step}, but also reports the indices (ascending) of the
    components whose instance actually changed.  Components whose
    signature excludes the action — or whose transition hands back the
    same state — are skipped and keep their instance {e physically},
    so task enabledness of untouched components is provably unchanged
    and cached enabledness need only be refreshed for touched ones.
    When no component moves, the input state array itself is
    returned. *)

val tasks : 'a t -> task_id list
(** All tasks of all components, component-major order. *)

val tasks_array : 'a t -> task_id array
(** Same as {!tasks}, materialized once per composition and memoized;
    the scheduler's per-step structures index into this array.  The
    caller must not mutate it. *)

val comp_task_indices : 'a t -> int array array
(** [comp_task_indices c].(i) lists the indices into {!tasks_array} of
    component [i]'s tasks — the invalidation sets for incremental
    enabledness.  Memoized; the caller must not mutate it. *)

val enabled : 'a t -> 'a state -> task_id -> 'a option
(** The unique action enabled in the given task, if any. *)

val enabled_tasks : 'a t -> 'a state -> (task_id * 'a) list

val quiescent : 'a t -> 'a state -> bool
(** No fair task is enabled. *)

val find_component : 'a t -> string -> int option

val state_inst : 'a state -> int -> 'a Component.inst

val equal_state : 'a state -> 'a state -> bool
(** Pointwise structural equality of component states. *)

val hash_state : 'a state -> int
(** Structural hash consistent with {!equal_state}. *)

val task_full_name : task_id -> string
(** The composed task name, ["<component>/<task>"] — exactly the
    [task_name] {!as_automaton} gives the flattened task, so compiled
    explorers labelling edges by {!task_id} match the boxed view
    byte for byte. *)

val as_automaton : 'a t -> ('a state, 'a) Automaton.t
(** View a composition as a single automaton (flattened task list),
    enabling nested composition and hiding. *)
