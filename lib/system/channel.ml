open Afd_ioa

let name ~src ~dst = Printf.sprintf "chan_%s_%s" (Loc.to_string src) (Loc.to_string dst)

let automaton ~src ~dst =
  if Loc.equal src dst then invalid_arg "Channel.automaton: src = dst";
  let kind = function
    | Act.Send { src = s; dst = d; _ } when Loc.equal s src && Loc.equal d dst ->
      Some Automaton.Input
    | Act.Receive { src = s; dst = d; _ } when Loc.equal s src && Loc.equal d dst ->
      Some Automaton.Output
    | _ -> None
  in
  let step q = function
    | Act.Send { src = s; dst = d; msg } when Loc.equal s src && Loc.equal d dst ->
      Some (q @ [ msg ])
    | Act.Receive { src = s; dst = d; msg } when Loc.equal s src && Loc.equal d dst -> (
      match q with
      | m :: rest when Msg.equal m msg -> Some rest
      | _ -> None)
    | _ -> None
  in
  let task =
    { Automaton.task_name = "deliver";
      fair = true;
      enabled =
        (fun q ->
          match q with
          | [] -> None
          | m :: _ -> Some (Act.Receive { src; dst; msg = m }));
    }
  in
  { Automaton.name = name ~src ~dst; kind; start = []; step; tasks = [ task ] }

let all_pairs ~n =
  List.concat_map
    (fun i ->
      List.filter_map
        (fun j ->
          if Loc.equal i j then None
          else Some (Component.C (automaton ~src:i ~dst:j)))
        (Loc.universe ~n))
    (Loc.universe ~n)

let lossy ~src ~dst ~drop_every =
  if Loc.equal src dst then invalid_arg "Channel.lossy: src = dst";
  if drop_every < 2 then invalid_arg "Channel.lossy: drop_every must be >= 2";
  let kind = function
    | Act.Send { src = s; dst = d; _ } when Loc.equal s src && Loc.equal d dst ->
      Some Automaton.Input
    | Act.Receive { src = s; dst = d; _ } when Loc.equal s src && Loc.equal d dst ->
      Some Automaton.Output
    | _ -> None
  in
  let step (count, q) = function
    | Act.Send { src = s; dst = d; msg } when Loc.equal s src && Loc.equal d dst ->
      let count = count + 1 in
      if count mod drop_every = 0 then Some (count, q) else Some (count, q @ [ msg ])
    | Act.Receive { src = s; dst = d; msg } when Loc.equal s src && Loc.equal d dst -> (
      match q with
      | m :: rest when Msg.equal m msg -> Some (count, rest)
      | _ -> None)
    | _ -> None
  in
  let task =
    { Automaton.task_name = "deliver";
      fair = true;
      enabled =
        (fun (_, q) ->
          match q with [] -> None | m :: _ -> Some (Act.Receive { src; dst; msg = m }));
    }
  in
  { Automaton.name = Printf.sprintf "chan_%s_%s" (Loc.to_string src) (Loc.to_string dst);
    kind;
    start = (0, []);
    step;
    tasks = [ task ];
  }

let duplicating ~src ~dst =
  if Loc.equal src dst then invalid_arg "Channel.duplicating: src = dst";
  let base = automaton ~src ~dst in
  let step q = function
    | Act.Send { src = s; dst = d; msg } when Loc.equal s src && Loc.equal d dst ->
      Some (q @ [ msg; msg ])
    | other -> base.Automaton.step q other
  in
  { base with step }

let lossy_pairs ~n ~drop_every =
  List.concat_map
    (fun i ->
      List.filter_map
        (fun j ->
          if Loc.equal i j then None
          else Some (Component.C (lossy ~src:i ~dst:j ~drop_every)))
        (Loc.universe ~n))
    (Loc.universe ~n)

let duplicating_pairs ~n =
  List.concat_map
    (fun i ->
      List.filter_map
        (fun j ->
          if Loc.equal i j then None else Some (Component.C (duplicating ~src:i ~dst:j)))
        (Loc.universe ~n))
    (Loc.universe ~n)

module Pair = struct
  type t = Loc.t * Loc.t

  let compare (a1, b1) (a2, b2) =
    match Loc.compare a1 a2 with 0 -> Loc.compare b1 b2 | c -> c
end

module Pair_map = Map.Make (Pair)

let queues_of_trace t =
  let queues =
    List.fold_left
      (fun acc act ->
        match act with
        | Act.Send { src; dst; msg } ->
          Pair_map.update (src, dst)
            (function None -> Some [ msg ] | Some q -> Some (q @ [ msg ]))
            acc
        | Act.Receive { src; dst; msg } ->
          Pair_map.update (src, dst)
            (function
              | Some (m :: rest) when Msg.equal m msg -> Some rest
              | Some _ | None ->
                invalid_arg "Channel.queues_of_trace: receive without matching send")
            acc
        | Act.Crash _ | Act.Fd _ | Act.Propose _ | Act.Decide _ | Act.Step _ | Act.Query _ | Act.Resp _ | Act.Decide_id _ -> acc)
      Pair_map.empty t
  in
  Pair_map.bindings queues

let all_empty t = List.for_all (fun (_, q) -> q = []) (queues_of_trace t)
