open Afd_ioa
open Afd_core

let lift ~detector ~inj ~prj aut =
  Automaton.rename
    ~to_:(function
      | Fd_event.Crash i -> Act.Crash i
      | Fd_event.Output (i, o) -> Act.Fd { at = i; detector; payload = inj o })
    ~of_:(function
      | Act.Crash i -> Some (Fd_event.Crash i)
      | Act.Fd { at; detector = d; payload } when String.equal d detector ->
        Option.map (fun o -> Fd_event.Output (at, o)) (prj payload)
      | _ -> None)
    aut

let lift_leader ~detector aut =
  lift ~detector
    ~inj:(fun l -> Act.Pleader l)
    ~prj:(function Act.Pleader l -> Some l | Act.Pset _ -> None)
    aut

let lift_set ~detector aut =
  lift ~detector
    ~inj:(fun s -> Act.Pset s)
    ~prj:(function Act.Pset s -> Some s | Act.Pleader _ -> None)
    aut

let transformer ~src ~dst ~loc ~f =
  let kind = function
    | Act.Crash i when Loc.equal i loc -> Some Automaton.Input
    | Act.Fd { at; detector; _ } when Loc.equal at loc && String.equal detector src ->
      Some Automaton.Input
    | Act.Fd { at; detector; _ } when Loc.equal at loc && String.equal detector dst ->
      Some Automaton.Output
    | _ -> None
  in
  let current (latest, failed) =
    if failed then None else Option.map (f loc) latest
  in
  let step ((latest, _failed) as st) = function
    | Act.Crash i when Loc.equal i loc -> Some (latest, true)
    | Act.Fd { at; detector; payload } when Loc.equal at loc && String.equal detector src
      ->
      let _, failed = st in
      Some (Some payload, failed)
    | Act.Fd { at; detector; payload } when Loc.equal at loc && String.equal detector dst
      ->
      if current st = Some payload then Some st else None
    | _ -> None
  in
  let task =
    { Automaton.task_name = Printf.sprintf "xform_%s" (Loc.to_string loc);
      fair = true;
      enabled =
        (fun st ->
          Option.map
            (fun p -> Act.Fd { at = loc; detector = dst; payload = p })
            (current st));
    }
  in
  { Automaton.name = Printf.sprintf "xform_%s_to_%s_%s" src dst (Loc.to_string loc);
    kind;
    start = (None, false);
    step;
    tasks = [ task ];
  }
