open Afd_ioa

type state = { stop : bool; proposed : bool option; decided : bool option }

let base_kind ~loc = function
  | Act.Crash i when Loc.equal i loc -> Some Automaton.Input
  | Act.Decide { at; _ } when Loc.equal at loc -> Some Automaton.Input
  | Act.Propose { at; _ } when Loc.equal at loc -> Some Automaton.Output
  | _ -> None

let base_step ~loc st = function
  | Act.Crash i when Loc.equal i loc -> Some { st with stop = true }
  | Act.Decide { at; v } when Loc.equal at loc -> Some { st with decided = Some v }
  | Act.Propose { at; v } when Loc.equal at loc ->
    if st.stop then None else Some { st with stop = true; proposed = Some v }
  | _ -> None

let start = { stop = false; proposed = None; decided = None }

let consensus_at loc =
  let task v =
    { Automaton.task_name = Printf.sprintf "env_%s_%b" (Loc.to_string loc) v;
      fair = true;
      enabled =
        (fun st -> if st.stop then None else Some (Act.Propose { at = loc; v }));
    }
  in
  { Automaton.name = Printf.sprintf "envC_%s" (Loc.to_string loc);
    kind = base_kind ~loc;
    start;
    step = base_step ~loc;
    tasks = [ task false; task true ];
  }

let consensus ~n =
  List.map (fun i -> Component.C (consensus_at i)) (Loc.universe ~n)

let scripted_at loc ~value =
  let task =
    { Automaton.task_name = Printf.sprintf "env_%s_scripted" (Loc.to_string loc);
      fair = true;
      enabled =
        (fun st ->
          if st.stop then None else Some (Act.Propose { at = loc; v = value }));
    }
  in
  { Automaton.name = Printf.sprintf "envS_%s" (Loc.to_string loc);
    kind = base_kind ~loc;
    start;
    step = base_step ~loc;
    tasks = [ task ];
  }

let scripted ~values =
  List.mapi (fun i v -> Component.C (scripted_at i ~value:v)) values
