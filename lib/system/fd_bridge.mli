(** Lift failure-detector automata (defined over ['o Fd_event.t] in the
    core library) into the full-system alphabet, and failure-detector
    transformer components.

    The lifted automaton emits [Act.Fd { detector; payload; _ }]
    actions; the [detector] name string distinguishes different
    detectors (and renamed copies) sharing one system. *)

open Afd_ioa
open Afd_core

val lift :
  detector:string ->
  inj:('o -> Act.fd_payload) ->
  prj:(Act.fd_payload -> 'o option) ->
  ('s, 'o Fd_event.t) Automaton.t ->
  ('s, Act.t) Automaton.t
(** Rename a core FD automaton into the [Act.t] alphabet: crash events
    become [Act.Crash], outputs become [Act.Fd] with the given name. *)

val lift_leader : detector:string -> ('s, Loc.t Fd_event.t) Automaton.t -> ('s, Act.t) Automaton.t
(** [lift] specialized to leader-valued detectors (Ω and friends). *)

val lift_set :
  detector:string -> ('s, Loc.Set.t Fd_event.t) Automaton.t -> ('s, Act.t) Automaton.t
(** [lift] specialized to set-valued detectors (P, ◇P, ...). *)

val transformer :
  src:string ->
  dst:string ->
  loc:Loc.t ->
  f:(Loc.t -> Act.fd_payload -> Act.fd_payload) ->
  (Act.fd_payload option * bool, Act.t) Automaton.t
(** A per-location detector transformer inside a full system: consumes
    [Fd] outputs of detector [src] at [loc], continually re-emits
    [f loc latest] under detector name [dst]; silenced by [crash_loc].
    This is {!Afd_core.Xform.local_transformer} living in the system
    alphabet, used e.g. to run consensus over Ω extracted from ◇P. *)
