(** The action alphabet of full systems (Figure 1).

    One closed variant covering every external and internal action of
    the process automata, channel automata, crash automaton,
    failure-detector automata, and environment automata composed in
    this repository. *)

open Afd_ioa
open Afd_core

(** Failure-detector output payloads, the union of the catalog's
    payload types. *)
type fd_payload =
  | Pleader of Loc.t  (** Ω, anti-Ω *)
  | Pset of Loc.Set.t  (** P, ◇P, S, ◇S, Σ, Ωk, Ψk *)

val pp_fd_payload : fd_payload Fmt.t
val equal_fd_payload : fd_payload -> fd_payload -> bool

type t =
  | Crash of Loc.t  (** output of the crash automaton, input everywhere at [i] *)
  | Send of { src : Loc.t; dst : Loc.t; msg : Msg.t }
      (** [send(m, dst)_src]: output of the process at [src], input of
          channel C_{src,dst} *)
  | Receive of { src : Loc.t; dst : Loc.t; msg : Msg.t }
      (** [receive(m, src)_dst]: output of C_{src,dst}, input of the
          process at [dst] *)
  | Fd of { at : Loc.t; detector : string; payload : fd_payload }
      (** detector output at [at]; [detector] names the AFD (and
          distinguishes renamed copies D, D') *)
  | Propose of { at : Loc.t; v : bool }  (** environment input to consensus *)
  | Decide of { at : Loc.t; v : bool }  (** consensus output to environment *)
  | Step of { at : Loc.t; tag : string }
      (** internal action of the process at [at] *)
  | Query of { at : Loc.t; detector : string }
      (** query to a {e query-based} failure detector (Section 10.1) —
          output of the process at [at], input of the detector *)
  | Resp of { at : Loc.t; detector : string; payload : fd_payload }
      (** a query-based detector's response at [at] *)
  | Decide_id of { at : Loc.t; v : Loc.t }
      (** location-valued decision — the output of k-set agreement
          (values are location IDs, so that more than two distinct
          values exist and the k-bound is meaningful) *)

val loc : t -> Loc.t
(** Every action of a distributed problem occurs at a location
    (Section 3.1). *)

val equal : t -> t -> bool
val pp : t Fmt.t

val is_crash : t -> Loc.t option
val is_send : t -> bool
val is_receive : t -> bool
val is_fd_of : detector:string -> t -> bool
val is_propose : t -> bool
val is_decide : t -> bool

val fd_trace : detector:string -> t list -> fd_payload Fd_event.t list
(** Project a system trace onto [Î ∪ O_D] for the named detector,
    as an [Fd_event] trace ready for the AFD spec monitors. *)

val fd_trace_set : detector:string -> t list -> Afd_ioa.Loc.Set.t Fd_event.t list
(** [fd_trace] narrowed to set-valued payloads (P, ◇P, Σ, ...); leader
    payloads under the same name raise [Invalid_argument]. *)

val fd_trace_leader : detector:string -> t list -> Afd_ioa.Loc.t Fd_event.t list
(** [fd_trace] narrowed to leader-valued payloads (Ω, anti-Ω). *)

val consensus_external : t -> bool
(** [I_P ∪ O_P] of the consensus problem: crash, propose, decide. *)
