open Afd_ioa

type vset = { zero : bool; one : bool }

let vset_empty = { zero = false; one = false }
let vset_of v = if v then { zero = false; one = true } else { zero = true; one = false }
let vset_union a b = { zero = a.zero || b.zero; one = a.one || b.one }

let vset_min s = if s.zero then Some false else if s.one then Some true else None
let vset_mem v s = if v then s.one else s.zero

let pp_vset fmt s =
  let items = (if s.zero then [ "0" ] else []) @ if s.one then [ "1" ] else [] in
  Format.fprintf fmt "{%s}" (String.concat "," items)

type t =
  | Flood of { round : int; vals : vset }
  | Prepare of { bal : int }
  | Promise of { bal : int; accepted : (int * bool) option }
  | Nack of { bal : int }
  | Accept of { bal : int; v : bool }
  | Accepted of { bal : int; v : bool }
  | Decided of { v : bool }
  | Ping of int
  | Fd_relay of { about : Loc.t; crashed : bool }
  | Kprepare of { inst : int; bal : int }
  | Kpromise of { inst : int; bal : int; accepted : (int * Loc.t) option }
  | Knack of { inst : int; bal : int }
  | Kaccept of { inst : int; bal : int; v : Loc.t }
  | Kaccepted of { inst : int; bal : int; v : Loc.t }

let equal a b = Stdlib.compare a b = 0

let pp fmt = function
  | Flood { round; vals } -> Format.fprintf fmt "flood(r=%d,%a)" round pp_vset vals
  | Prepare { bal } -> Format.fprintf fmt "prepare(%d)" bal
  | Promise { bal; accepted = None } -> Format.fprintf fmt "promise(%d,-)" bal
  | Promise { bal; accepted = Some (b, v) } ->
    Format.fprintf fmt "promise(%d,acc=%d:%b)" bal b v
  | Nack { bal } -> Format.fprintf fmt "nack(%d)" bal
  | Accept { bal; v } -> Format.fprintf fmt "accept(%d,%b)" bal v
  | Accepted { bal; v } -> Format.fprintf fmt "accepted(%d,%b)" bal v
  | Decided { v } -> Format.fprintf fmt "decided(%b)" v
  | Ping k -> Format.fprintf fmt "ping(%d)" k
  | Fd_relay { about; crashed } ->
    Format.fprintf fmt "fd_relay(%a,%b)" Loc.pp about crashed
  | Kprepare { inst; bal } -> Format.fprintf fmt "kprepare(%d,%d)" inst bal
  | Kpromise { inst; bal; accepted = None } ->
    Format.fprintf fmt "kpromise(%d,%d,-)" inst bal
  | Kpromise { inst; bal; accepted = Some (b, v) } ->
    Format.fprintf fmt "kpromise(%d,%d,acc=%d:%a)" inst bal b Loc.pp v
  | Knack { inst; bal } -> Format.fprintf fmt "knack(%d,%d)" inst bal
  | Kaccept { inst; bal; v } -> Format.fprintf fmt "kaccept(%d,%d,%a)" inst bal Loc.pp v
  | Kaccepted { inst; bal; v } ->
    Format.fprintf fmt "kaccepted(%d,%d,%a)" inst bal Loc.pp v
