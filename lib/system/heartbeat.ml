open Afd_ioa

let detector_name = "HB"

type peer = { missed : int; timeout : int; suspected : bool }

type st = {
  n : int;
  self : Loc.t;
  peers : peer Loc.Map.t;
  pending_hb : Loc.t list;  (* heartbeats still to send this cycle *)
}

let suspects st =
  Loc.Map.fold (fun j p acc -> if p.suspected then Loc.Set.add j acc else acc) st.peers
    Loc.Set.empty

let timeout_of st j =
  match Loc.Map.find_opt j st.peers with Some p -> p.timeout | None -> 0

let init ~n ~initial_timeout ~self =
  let peers =
    List.fold_left
      (fun acc j ->
        if Loc.equal j self then acc
        else Loc.Map.add j { missed = 0; timeout = initial_timeout; suspected = false } acc)
      Loc.Map.empty (Loc.universe ~n)
  in
  { n; self; peers; pending_hb = [] }

let others st =
  List.filter (fun j -> not (Loc.equal j st.self)) (Loc.universe ~n:st.n)

(* Local clock tick: one cycle completed.  Age every peer and update
   suspicions. *)
let tick st =
  let peers =
    Loc.Map.map
      (fun p ->
        let missed = p.missed + 1 in
        { p with missed; suspected = p.suspected || missed > p.timeout })
      st.peers
  in
  { st with peers; pending_hb = others st }

let on_heartbeat st j =
  match Loc.Map.find_opt j st.peers with
  | None -> st
  | Some p ->
    let p' =
      if p.suspected then
        (* premature suspicion: forgive and adapt *)
        { missed = 0; timeout = p.timeout * 2; suspected = false }
      else { p with missed = 0 }
    in
    { st with peers = Loc.Map.add j p' st.peers }

let kind ~loc = function
  | Act.Crash i when Loc.equal i loc -> Some Automaton.Input
  | Act.Receive { dst; msg = Msg.Ping _; _ } when Loc.equal dst loc -> Some Automaton.Input
  | Act.Send { src; msg = Msg.Ping _; _ } when Loc.equal src loc -> Some Automaton.Output
  | Act.Fd { at; detector; _ } when Loc.equal at loc && String.equal detector detector_name
    ->
    Some Automaton.Output
  | _ -> None

let current st =
  match st.pending_hb with
  | dst :: _ -> Act.Send { src = st.self; dst; msg = Msg.Ping 0 }
  | [] -> Act.Fd { at = st.self; detector = detector_name; payload = Act.Pset (suspects st) }

let automaton ~n ~initial_timeout ~loc =
  let start = (init ~n ~initial_timeout ~self:loc, false) in
  let step (st, failed) = function
    | Act.Crash i when Loc.equal i loc -> Some (st, true)
    | Act.Receive { src; dst; msg = Msg.Ping _ } when Loc.equal dst loc ->
      Some (on_heartbeat st src, failed)
    | act ->
      if failed then None
      else if Act.equal act (current st) then
        (match act with
        | Act.Send _ -> Some ({ st with pending_hb = List.tl st.pending_hb }, failed)
        | Act.Fd _ -> Some (tick st, failed)
        | _ -> None)
      else None
  in
  let task =
    { Automaton.task_name = "cycle";
      fair = true;
      enabled = (fun (st, failed) -> if failed then None else Some (current st));
    }
  in
  { Automaton.name = Printf.sprintf "hb_%s" (Loc.to_string loc);
    kind = kind ~loc;
    start;
    step;
    tasks = [ task ];
  }

let components ~n ~initial_timeout =
  List.map
    (fun i -> Component.C (automaton ~n ~initial_timeout ~loc:i))
    (Loc.universe ~n)

let net ?channels ~n ~initial_timeout ~crashable () =
  Net.assemble ~n ?channels ~crashable ~processes:(components ~n ~initial_timeout) ()
