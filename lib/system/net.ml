open Afd_ioa

type t = {
  n : int;
  composition : Act.t Composition.t;
}

let assemble ~n ?(detectors = []) ?(environment = []) ?(extras = []) ?channels
    ~crashable ~processes () =
  let channels = match channels with Some c -> c | None -> Channel.all_pairs ~n in
  let comps =
    processes
    @ channels
    @ [ Component.C (Crash.automaton ~n ~crashable) ]
    @ detectors @ environment @ extras
  in
  { n; composition = Composition.make ~name:"net" comps }

type run = {
  outcome : Act.t Scheduler.outcome;
  trace : Act.t list;
}

(* The trace is the fired action sequence, which the scheduler keeps in
   full under every retention policy; only [outcome.execution]'s
   retained state snapshots vary with [retention]. *)
let finish outcome =
  { outcome; trace = List.map snd outcome.Scheduler.fired }

let run ?(retention = Scheduler.Trace_only) t ~seed ~crash_at ~steps =
  let cfg =
    { Scheduler.policy = Scheduler.Random seed;
      max_steps = steps;
      stop_when_quiescent = true;
      forced = Crash.forces crash_at;
    }
  in
  finish (Scheduler.run ~retention t.composition cfg)

let run_round_robin ?(retention = Scheduler.Trace_only) t ~crash_at ~steps =
  let cfg =
    { Scheduler.policy = Scheduler.Round_robin;
      max_steps = steps;
      stop_when_quiescent = true;
      forced = Crash.forces crash_at;
    }
  in
  finish (Scheduler.run ~retention t.composition cfg)

let decisions trace =
  List.filter_map
    (function Act.Decide { at; v } -> Some (at, v) | _ -> None)
    trace

let proposals trace =
  List.filter_map
    (function Act.Propose { at; v } -> Some (at, v) | _ -> None)
    trace
