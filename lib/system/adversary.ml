open Afd_ioa

type choose =
  step:int ->
  (Composition.task_id * Act.t) list ->
  (Composition.task_id * Act.t) option

let pick rng = function
  | [] -> None
  | l ->
    let arr = Array.of_list l in
    Some arr.(Random.State.int rng (Array.length arr))

let fair_random ~seed =
  let rng = Random.State.make [| seed |] in
  fun ~step:_ enabled -> pick rng enabled

let starve ~seed ~avoid =
  let rng = Random.State.make [| seed |] in
  fun ~step:_ enabled ->
    pick rng (List.filter (fun (tid, _) -> not (avoid tid)) enabled)

let is_channel_task ~src ~dst (tid : Composition.task_id) =
  String.equal tid.Composition.comp_name
    (Printf.sprintf "chan_%s_%s" (Loc.to_string src) (Loc.to_string dst))

let starve_channel ~seed ~src ~dst = starve ~seed ~avoid:(is_channel_task ~src ~dst)

let delay_channel ~seed ~src ~dst ~period =
  let rng = Random.State.make [| seed |] in
  fun ~step enabled ->
    let is_target (tid, _) = is_channel_task ~src ~dst tid in
    if step mod period < period / 4 then
      (* delivery window: drain the delayed channel with priority *)
      match List.filter is_target enabled with
      | [] -> pick rng enabled
      | targets -> pick rng targets
    else pick rng (List.filter (fun c -> not (is_target c)) enabled)
