(** Reliable FIFO channel automata C_{i,j} (Section 4.3).

    State is a queue of messages, initially empty; [send(m,j)_i]
    appends, and the single (fair) task delivers the head via
    [receive(m,i)_j].  Deterministic, no internal actions. *)

open Afd_ioa

val automaton : src:Loc.t -> dst:Loc.t -> (Msg.t list, Act.t) Automaton.t
(** Raises [Invalid_argument] when [src = dst] (the paper only has
    channels between distinct locations). *)

val all_pairs : n:int -> Act.t Component.t list
(** The n(n-1) channel components of a full system. *)

(** {1 Non-reliable variants}

    The paper's system model fixes reliable FIFO channels (§4.3).
    These variants quantify that assumption: algorithms proven over the
    model may stall or misbehave when the substrate is weakened
    (deterministically, to keep the automata deterministic). *)

val lossy : src:Loc.t -> dst:Loc.t -> drop_every:int -> (int * Msg.t list, Act.t) Automaton.t
(** Silently discards every [drop_every]-th message sent (counting from
    the first); [drop_every >= 2].  State carries the send counter. *)

val duplicating :
  src:Loc.t -> dst:Loc.t -> (Msg.t list, Act.t) Automaton.t
(** Enqueues every message twice: each send is delivered twice, in
    order.  Exercises idempotence of the receiving algorithms. *)

val lossy_pairs : n:int -> drop_every:int -> Act.t Component.t list
val duplicating_pairs : n:int -> Act.t Component.t list

val queues_of_trace : Act.t list -> ((Loc.t * Loc.t) * Msg.t list) list
(** Reconstruct every channel's in-transit queue from a system trace
    (sends minus receives, FIFO).  Only channels that carried at least
    one message appear.  Used by the execution-tree similarity relation
    and the quiescence arguments of Theorem 21. *)

val all_empty : Act.t list -> bool
(** No messages in transit after the given trace. *)
