open Afd_ioa
open Afd_core

type fd_payload = Pleader of Loc.t | Pset of Loc.Set.t

let pp_fd_payload fmt = function
  | Pleader l -> Loc.pp fmt l
  | Pset s -> Loc.pp_set fmt s

let equal_fd_payload a b =
  match (a, b) with
  | Pleader x, Pleader y -> Loc.equal x y
  | Pset x, Pset y -> Loc.Set.equal x y
  | Pleader _, Pset _ | Pset _, Pleader _ -> false

type t =
  | Crash of Loc.t
  | Send of { src : Loc.t; dst : Loc.t; msg : Msg.t }
  | Receive of { src : Loc.t; dst : Loc.t; msg : Msg.t }
  | Fd of { at : Loc.t; detector : string; payload : fd_payload }
  | Propose of { at : Loc.t; v : bool }
  | Decide of { at : Loc.t; v : bool }
  | Step of { at : Loc.t; tag : string }
  | Query of { at : Loc.t; detector : string }
  | Resp of { at : Loc.t; detector : string; payload : fd_payload }
  | Decide_id of { at : Loc.t; v : Loc.t }

let loc = function
  | Crash i -> i
  | Send { src; _ } -> src
  | Receive { dst; _ } -> dst
  | Fd { at; _ } -> at
  | Propose { at; _ } -> at
  | Decide { at; _ } -> at
  | Step { at; _ } -> at
  | Query { at; _ } -> at
  | Resp { at; _ } -> at
  | Decide_id { at; _ } -> at

let equal a b = Stdlib.compare a b = 0

let pp fmt = function
  | Crash i -> Format.fprintf fmt "crash_%a" Loc.pp i
  | Send { src; dst; msg } ->
    Format.fprintf fmt "send(%a,%a)_%a" Msg.pp msg Loc.pp dst Loc.pp src
  | Receive { src; dst; msg } ->
    Format.fprintf fmt "receive(%a,%a)_%a" Msg.pp msg Loc.pp src Loc.pp dst
  | Fd { at; detector; payload } ->
    Format.fprintf fmt "FD-%s(%a)_%a" detector pp_fd_payload payload Loc.pp at
  | Propose { at; v } -> Format.fprintf fmt "propose(%b)_%a" v Loc.pp at
  | Decide { at; v } -> Format.fprintf fmt "decide(%b)_%a" v Loc.pp at
  | Step { at; tag } -> Format.fprintf fmt "step(%s)_%a" tag Loc.pp at
  | Query { at; detector } -> Format.fprintf fmt "query-%s_%a" detector Loc.pp at
  | Resp { at; detector; payload } ->
    Format.fprintf fmt "resp-%s(%a)_%a" detector pp_fd_payload payload Loc.pp at
  | Decide_id { at; v } -> Format.fprintf fmt "decide(%a)_%a" Loc.pp v Loc.pp at

let is_crash = function Crash i -> Some i | _ -> None
let is_send = function Send _ -> true | _ -> false
let is_receive = function Receive _ -> true | _ -> false

let is_fd_of ~detector = function
  | Fd { detector = d; _ } -> String.equal d detector
  | _ -> false

let is_propose = function Propose _ -> true | _ -> false
let is_decide = function Decide _ -> true | _ -> false

let fd_trace ~detector t =
  List.filter_map
    (function
      | Crash i -> Some (Fd_event.Crash i)
      | Fd { at; detector = d; payload } when String.equal d detector ->
        Some (Fd_event.Output (at, payload))
      | _ -> None)
    t

let fd_trace_set ~detector t =
  List.map
    (Fd_event.map (function
      | Pset s -> s
      | Pleader _ ->
        invalid_arg
          (Printf.sprintf "Act.fd_trace_set: detector %s emitted a leader payload"
             detector)))
    (fd_trace ~detector t)

let fd_trace_leader ~detector t =
  List.map
    (Fd_event.map (function
      | Pleader l -> l
      | Pset _ ->
        invalid_arg
          (Printf.sprintf "Act.fd_trace_leader: detector %s emitted a set payload"
             detector)))
    (fd_trace ~detector t)

let consensus_external = function
  | Crash _ | Propose _ | Decide _ -> true
  | Send _ | Receive _ | Fd _ | Step _ | Query _ | Resp _ | Decide_id _ -> false
