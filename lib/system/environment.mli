(** Environment automata (Sections 4.5 and 9.2).

    [consensus_at] is the paper's Algorithm 4: the automaton E_{C,i}
    with output actions [propose(0)_i], [propose(1)_i] (one task each),
    inputs [decide(-)_i] and [crash_i], and a [stop] flag set by the
    first propose or by the crash.  The composition of the E_{C,i} is
    the well-formed environment E_C of Theorem 44.

    Because both propose tasks are simultaneously enabled initially,
    the choice of input value rests with the scheduler — matching the
    [Env_{i,v}] edges of the execution tree (Section 9.4). *)

open Afd_ioa

type state = { stop : bool; proposed : bool option; decided : bool option }
(** Besides Algorithm 4's [stop] flag we record what was proposed and
    decided at this location — pure observation used by tests. *)

val consensus_at : Loc.t -> (state, Act.t) Automaton.t
(** E_{C,i} (Algorithm 4). *)

val consensus : n:int -> Act.t Component.t list
(** The full E_C: one E_{C,i} per location. *)

val scripted_at : Loc.t -> value:bool -> (state, Act.t) Automaton.t
(** A deterministic variant whose single task proposes the given value
    — used when an experiment needs a fixed input assignment rather
    than a scheduler-chosen one. *)

val scripted : values:bool list -> Act.t Component.t list
(** One scripted environment automaton per location; [values] must
    have length [n]. *)
