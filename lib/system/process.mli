(** Process automata (Section 4.2).

    A process automaton at location [i] is deterministic (single task,
    unique start state), receives [crash_i], [receive(*,*)_i], detector
    outputs at [i] and problem inputs at [i], and controls
    [send(*,*)_i], problem outputs at [i], and internal steps at [i].
    [crash_i] permanently disables its locally controlled actions.

    Algorithms are written against the purely functional {!def}
    interface; {!automaton} supplies the glue: the crash flag, the
    signature predicate, and the single-task discipline.  Locally
    controlled actions are produced one at a time from [output]; an
    algorithm wanting to broadcast queues the sends in its own state
    (see {!Outbox}). *)

open Afd_ioa

(** Inputs a process can receive, already decoded. *)
type input =
  | Receive of { src : Loc.t; msg : Msg.t }
  | Propose of bool
  | Fd of { detector : string; payload : Act.fd_payload }

(** Locally controlled actions a process can produce. *)
type output =
  | Send of { dst : Loc.t; msg : Msg.t }
  | Decide of bool
  | Internal of string  (** tag shown in [Act.Step] *)

type 'st def = {
  init : 'st;
  handle : 'st -> input -> 'st;
      (** effect of an input event (total: inputs are always enabled) *)
  output : 'st -> output option;
      (** the unique locally controlled action enabled, if any *)
  after_output : 'st -> output -> 'st;  (** its effect *)
}

val automaton : name:string -> loc:Loc.t -> fd_names:string list -> 'st def ->
  ('st * bool, Act.t) Automaton.t
(** [fd_names] lists the detector names whose outputs at [loc] this
    process consumes (other [Fd] actions are outside its signature).
    The [bool] in the state is the crashed flag. *)

(** {1 Outbox}

    Broadcast helper: a FIFO of pending outputs kept in algorithm
    state. *)
module Outbox : sig
  type t

  val empty : t
  val is_empty : t -> bool
  val push : t -> output -> t
  val broadcast : t -> n:int -> self:Loc.t -> Msg.t -> t
  (** Queue sends of [msg] to every location except [self]. *)

  val peek : t -> output option
  val pop : t -> t
end
