(** Canned adversarial schedulers.

    These are [choose] functions for {!Afd_ioa.Scheduler.run_custom};
    they deliberately violate task fairness to exhibit the behaviours
    the paper's asynchronous model permits — e.g. starving one channel
    forever shows that the heartbeat ◇P implementation stops being
    eventually perfect outside partial synchrony. *)

open Afd_ioa

type choose =
  step:int ->
  (Composition.task_id * Act.t) list ->
  (Composition.task_id * Act.t) option

val fair_random : seed:int -> choose
(** Uniform among enabled tasks — fair in expectation (baseline). *)

val starve : seed:int -> avoid:(Composition.task_id -> bool) -> choose
(** Uniform among enabled tasks not matched by [avoid]; never schedules
    an avoided task.  Stops only when nothing else is enabled. *)

val starve_channel : seed:int -> src:Loc.t -> dst:Loc.t -> choose
(** Never deliver on channel C_{src,dst}. *)

val delay_channel : seed:int -> src:Loc.t -> dst:Loc.t -> period:int -> choose
(** Deliver on C_{src,dst} only during a window of [period/4] steps per
    [period] (drained with priority there) — bursty, large-but-bounded
    delays under which an adaptive-timeout detector converges after
    finitely many false suspicions. *)

val is_channel_task : src:Loc.t -> dst:Loc.t -> Composition.task_id -> bool
