open Afd_ioa

let automaton ~n ~crashable =
  let kind = function Act.Crash _ -> Some Automaton.Output | _ -> None in
  let step pending = function
    | Act.Crash i when Loc.Set.mem i pending -> Some (Loc.Set.remove i pending)
    | _ -> None
  in
  let task i =
    { Automaton.task_name = Printf.sprintf "crash_%s" (Loc.to_string i);
      fair = false;
      enabled =
        (fun pending -> if Loc.Set.mem i pending then Some (Act.Crash i) else None);
    }
  in
  { Automaton.name = "crash";
    kind;
    start = Loc.Set.inter crashable (Loc.set_of_universe ~n);
    step;
    tasks = List.map task (Loc.universe ~n);
  }

let task_pattern i = "crash/crash_" ^ Loc.to_string i

let forces l =
  List.map (fun (k, i) -> { Scheduler.at_step = k; task_pattern = task_pattern i }) l
