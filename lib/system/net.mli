(** Full-system assembly (Figure 1) and run helpers.

    A net composes: one process automaton per location, the n(n-1)
    reliable FIFO channels, the crash automaton, optional
    failure-detector components, optional detector transformers, and
    environment components. *)

open Afd_ioa

type t = {
  n : int;
  composition : Act.t Composition.t;
}

val assemble :
  n:int ->
  ?detectors:Act.t Component.t list ->
  ?environment:Act.t Component.t list ->
  ?extras:Act.t Component.t list ->
  ?channels:Act.t Component.t list ->
  crashable:Loc.Set.t ->
  processes:Act.t Component.t list ->
  unit ->
  t
(** Build the composition in Figure 1's shape.  [extras] is for
    transformer components and test instrumentation; [channels]
    defaults to the reliable FIFO channels of §4.3 and can be replaced
    by {!Channel.lossy_pairs} / {!Channel.duplicating_pairs} for the
    substrate-assumption experiments. *)

type run = {
  outcome : Act.t Scheduler.outcome;
  trace : Act.t list;  (** the full schedule of the run *)
}

val run :
  ?retention:Scheduler.retention ->
  t -> seed:int -> crash_at:(int * Loc.t) list -> steps:int -> run
(** Fair random schedule with the given fault pattern.  [trace] is
    always the complete schedule; [retention] (default
    {!Scheduler.Trace_only}) controls only how much per-step state
    [outcome.execution] retains — pass [Full] to replay states. *)

val run_round_robin :
  ?retention:Scheduler.retention ->
  t -> crash_at:(int * Loc.t) list -> steps:int -> run

val decisions : Act.t list -> (Loc.t * bool) list
(** All [decide] events of a trace, in order. *)

val proposals : Act.t list -> (Loc.t * bool) list
