(** The crash automaton over the full-system alphabet (Section 4.4).

    Every sequence over Î is a fair trace of the paper's crash
    automaton; one concrete fault pattern per run is realized by
    forcing this automaton's (unfair) tasks at chosen scheduler
    steps. *)

open Afd_ioa

val automaton : n:int -> crashable:Loc.Set.t -> (Loc.Set.t, Act.t) Automaton.t
(** One unfair task per location of [crashable], each able to emit
    [Crash i] once. *)

val task_pattern : Loc.t -> string
(** The ["component/task"] substring that identifies location [i]'s
    crash task for {!Afd_ioa.Scheduler.force}. *)

val forces : (int * Loc.t) list -> Scheduler.force list
(** Turn a fault pattern — crash location [i] at global step [k] —
    into scheduler directives. *)
