(** The message alphabet M (Section 4).

    One closed union of every protocol message used in this repository:
    flooding consensus (Section 9-style experiments), the Synod
    protocol driven by Ω, and generic probes used by examples and
    tests. *)

open Afd_ioa

(** Which of the two binary consensus values have been seen; the value
    set [V] carried by flooding-consensus messages. *)
type vset = { zero : bool; one : bool }

val vset_empty : vset
val vset_of : bool -> vset
val vset_union : vset -> vset -> vset
val vset_min : vset -> bool option
(** The smallest value present ([false] < [true]); [None] when empty. *)

val vset_mem : bool -> vset -> bool
val pp_vset : vset Fmt.t

type t =
  | Flood of { round : int; vals : vset }  (** flooding consensus round message *)
  | Prepare of { bal : int }  (** Synod phase-1a *)
  | Promise of { bal : int; accepted : (int * bool) option }  (** phase-1b *)
  | Nack of { bal : int }  (** ballot refused *)
  | Accept of { bal : int; v : bool }  (** phase-2a *)
  | Accepted of { bal : int; v : bool }  (** phase-2b, broadcast to learners *)
  | Decided of { v : bool }  (** decision announcement *)
  | Ping of int  (** generic probe used by examples/tests *)
  | Fd_relay of { about : Loc.t; crashed : bool }
      (** gossip of detector information, used by message-based
          detector implementations *)
  (* Synod over location-valued proposals, tagged with a parallel
     instance index — the k-set-agreement protocol (one Synod instance
     per slot of the Ψk leader set). *)
  | Kprepare of { inst : int; bal : int }
  | Kpromise of { inst : int; bal : int; accepted : (int * Loc.t) option }
  | Knack of { inst : int; bal : int }
  | Kaccept of { inst : int; bal : int; v : Loc.t }
  | Kaccepted of { inst : int; bal : int; v : Loc.t }

val equal : t -> t -> bool
val pp : t Fmt.t
