open Afd_ioa

type input =
  | Receive of { src : Loc.t; msg : Msg.t }
  | Propose of bool
  | Fd of { detector : string; payload : Act.fd_payload }

type output =
  | Send of { dst : Loc.t; msg : Msg.t }
  | Decide of bool
  | Internal of string

let decode_input ~loc ~fd_names = function
  | Act.Receive { src; dst; msg } when Loc.equal dst loc -> Some (Receive { src; msg })
  | Act.Propose { at; v } when Loc.equal at loc -> Some (Propose v)
  | Act.Fd { at; detector; payload } when Loc.equal at loc && List.mem detector fd_names
    ->
    Some (Fd { detector; payload })
  | _ -> None

let encode_output ~loc = function
  | Send { dst; msg } -> Act.Send { src = loc; dst; msg }
  | Decide v -> Act.Decide { at = loc; v }
  | Internal tag -> Act.Step { at = loc; tag }

type 'st def = {
  init : 'st;
  handle : 'st -> input -> 'st;
  output : 'st -> output option;
  after_output : 'st -> output -> 'st;
}

let automaton ~name ~loc ~fd_names def =
  let kind act =
    match act with
    | Act.Crash i when Loc.equal i loc -> Some Automaton.Input
    | Act.Send { src; _ } when Loc.equal src loc -> Some Automaton.Output
    | Act.Decide { at; _ } when Loc.equal at loc -> Some Automaton.Output
    | Act.Step { at; _ } when Loc.equal at loc -> Some Automaton.Internal
    | other -> (
      match decode_input ~loc ~fd_names other with
      | Some _ -> Some Automaton.Input
      | None -> None)
  in
  let current (st, failed) =
    if failed then None else def.output st
  in
  let step ((st, failed) as full) act =
    match act with
    | Act.Crash i when Loc.equal i loc -> Some (st, true)
    | _ -> (
      match decode_input ~loc ~fd_names act with
      | Some input -> Some (def.handle st input, failed)
      | None -> (
        (* Locally controlled action: enabled iff it is the one our
           single task currently offers. *)
        match current full with
        | Some out when Act.equal (encode_output ~loc out) act ->
          Some (def.after_output st out, failed)
        | Some _ | None -> None))
  in
  let task =
    { Automaton.task_name = "step";
      fair = true;
      enabled = (fun full -> Option.map (encode_output ~loc) (current full));
    }
  in
  { Automaton.name = Printf.sprintf "%s_%s" name (Loc.to_string loc);
    kind;
    start = (def.init, false);
    step;
    tasks = [ task ];
  }

module Outbox = struct
  type t = output list

  let empty = []
  let is_empty t = t = []
  let push t o = t @ [ o ]

  let broadcast t ~n ~self msg =
    List.fold_left
      (fun acc dst ->
        if Loc.equal dst self then acc else push acc (Send { dst; msg }))
      t (Loc.universe ~n)

  let peek = function [] -> None | o :: _ -> Some o
  let pop = function [] -> [] | _ :: rest -> rest
end
