(** A message-passing implementation of ◇P via adaptive heartbeats —
    the "realistic failure detector" of Delporte-Gallet et al. [7],
    reference 7 of the paper.

    Unlike Algorithm 2 (which reads the crash set directly from its
    inputs — it is the {e specification-level} automaton), this
    detector lives inside the system: each location periodically sends
    heartbeats, counts its own output steps as a local clock, suspects
    a peer when no heartbeat arrived for [timeout] local ticks, and
    doubles that peer's timeout whenever a suspicion proves premature.

    Its correctness is {e conditional on scheduling}: under the
    fair schedulers (bounded relative speeds and delivery delays — an
    operational form of partial synchrony) its output stream satisfies
    ◇P; under an adversary that starves a channel it keeps suspecting a
    live peer — the executable content of "◇P is not implementable in
    pure asynchrony, but is under partial synchrony".  See the tests
    and the A-series benches. *)

open Afd_ioa

val detector_name : string
(** "HB". *)

type st

val suspects : st -> Loc.Set.t
val timeout_of : st -> Loc.t -> int

val automaton : n:int -> initial_timeout:int -> loc:Loc.t -> (st * bool, Act.t) Automaton.t
(** The heartbeat process at [loc].  It is a {!Process}-style automaton
    with a single task that cycles: send one heartbeat to each peer,
    then emit one [Fd] output carrying the current suspect set (the
    emission is the local clock tick). *)

val components : n:int -> initial_timeout:int -> Act.t Component.t list

val net :
  ?channels:Act.t Component.t list ->
  n:int ->
  initial_timeout:int ->
  crashable:Loc.Set.t ->
  unit ->
  Net.t
(** Heartbeat components + channels + crash automaton, ready to run;
    project the detector stream with
    [Act.fd_trace_set ~detector:detector_name].  [channels] defaults
    to the reliable FIFO pairs and can be replaced by
    {!Channel.lossy_pairs} for the loss/recovery experiments — the
    adaptive timeout must absorb bounded loss the same way it absorbs
    bounded delay. *)
