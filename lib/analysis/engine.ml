let run ?(rules = Rules.all) ?max_states ?por ?jobs ?compiled ?symmetry items =
  let subjects =
    List.map
      (fun { Registry.origin; entry } ->
        Subject.make ?por ?max_states ?jobs ?compiled ?symmetry ~origin entry)
      items
  in
  let findings =
    List.concat_map
      (fun subj -> List.concat_map (fun r -> r.Rule.check subj) rules)
      subjects
  in
  (* collected after the rules ran, so only explorations some rule
     actually forced are reported *)
  let explorations = List.filter_map Subject.exploration subjects in
  Report.make ~rules_run:(List.length rules) ~subjects_checked:(List.length items)
    ~explorations findings

let run_entry ?rules ?max_states ?por ?jobs ?compiled ?symmetry ~origin entry =
  run ?rules ?max_states ?por ?jobs ?compiled ?symmetry
    [ { Registry.origin; entry } ]
