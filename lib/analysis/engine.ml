let run ?(rules = Rules.all) items =
  let findings =
    List.concat_map
      (fun { Registry.origin; entry } ->
        List.concat_map (fun r -> r.Rule.check ~origin entry) rules)
      items
  in
  Report.make ~rules_run:(List.length rules) ~subjects_checked:(List.length items)
    findings

let run_entry ?rules ~origin entry = run ?rules [ { Registry.origin; entry } ]
