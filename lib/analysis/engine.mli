(** The lint engine: run a rule set over registry items.

    Each item is wrapped in a {!Subject.t}, so all rules on one subject
    share a single memoized state-space exploration; the explorations
    (with completeness verdicts) land in the report's
    [Report.explorations]. *)

val run :
  ?rules:Rule.t list ->
  ?max_states:int ->
  ?por:bool ->
  ?jobs:int ->
  ?compiled:bool ->
  ?symmetry:bool ->
  Registry.item list ->
  Report.t
(** Defaults to {!Rules.all}.  [max_states] overrides every subject's
    exploration cap; [por] turns on the sleep-set reduction; [jobs]
    spreads each subject's exploration over that many domains;
    [compiled] routes it to {!Cspace} (see {!Subject.make} — findings
    and reports are identical at any [jobs], compiled or not);
    [symmetry] runs the {!Symm} equivariance analysis per subject and
    orbit-quotients certified explorations (pair it with
    {!Rules.symmetry} so the verdicts surface as findings). *)

val run_entry :
  ?rules:Rule.t list ->
  ?max_states:int ->
  ?por:bool ->
  ?jobs:int ->
  ?compiled:bool ->
  ?symmetry:bool ->
  origin:string ->
  Registry.entry ->
  Report.t
(** Lint a single subject (used by the fixture tests). *)
