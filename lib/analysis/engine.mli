(** The lint engine: run a rule set over registry items. *)

val run : ?rules:Rule.t list -> Registry.item list -> Report.t
(** Defaults to {!Rules.all}. *)

val run_entry : ?rules:Rule.t list -> origin:string -> Registry.entry -> Report.t
(** Lint a single subject (used by the fixture tests). *)
