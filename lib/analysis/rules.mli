(** The initial rule set of the model linter.

    Every rule enforces a structural side condition that the paper's
    theorems assume (Sections 2.3–2.5, 4.4, 5.3); an automaton that
    violates one can silently invalidate an experiment, which is why
    the whole catalog is audited by [afd_lint] under [dune runtest].

    - [probe-coverage] (warning) — a registered subject with an empty
      action probe universe was not actually checked (the silent-pass
      fix for the old sampled probes);
    - [input-enabled] (error, §2.1) — a probed input action is disabled
      in a reachable sampled state;
    - [task-determinism] (error, §2.5) — two tasks enable the same
      action in one state;
    - [step-signature] (error, §2.1) — the step relation accepts an
      action whose [kind_of] is [None];
    - [task-signature] (error, §2.5) — a task enables an action that is
      an input or outside the signature (tasks partition the locally
      controlled actions);
    - [enabled-consistency] (error, §2.5) — a task enables an action
      the step relation then rejects;
    - [dual-control] (error, §2.3) — a probed action is controlled by
      two components of a composition;
    - [internal-leakage] (error, §2.3) — a probed action is internal to
      one component yet in another component's signature;
    - [dead-task] (warning, §2.4) — a fair task of a standalone
      automaton is never enabled on any explored reachable state;
    - [unfair-task] (warning, §4.4) — a task without a fairness
      obligation outside the crash automaton (only the crash
      automaton's tasks are exempt from fairness);
    - [rename-roundtrip] (error, §2.3/§5.3) — an action renaming whose
      [to_ ∘ of_] is not the identity on a probed in-signature action;
    - [hiding] (error, §2.3) — a hiding that changes the signature
      other than reclassifying outputs as internal. *)

val all : Rule.t list
(** The full rule set, in documentation order. *)

val ids : string list
