(** The initial rule set of the model linter.

    Every rule enforces a structural side condition that the paper's
    theorems assume (Sections 2.3–2.5, 4.4, 5.3); an automaton that
    violates one can silently invalidate an experiment, which is why
    the whole catalog is audited by [afd_lint] under [dune runtest].

    - [probe-coverage] (warning) — a registered subject with an empty
      action probe universe was not actually checked (the silent-pass
      fix for the old sampled probes);
    - [input-enabled] (error, §2.1) — a probed input action is disabled
      in a reachable sampled state;
    - [task-determinism] (error, §2.5) — two tasks enable the same
      action in one state;
    - [step-signature] (error, §2.1) — the step relation accepts an
      action whose [kind_of] is [None];
    - [task-signature] (error, §2.5) — a task enables an action that is
      an input or outside the signature (tasks partition the locally
      controlled actions);
    - [enabled-consistency] (error, §2.5) — a task enables an action
      the step relation then rejects;
    - [dual-control] (error, §2.3) — a probed action is controlled by
      two components of a composition;
    - [internal-leakage] (error, §2.3) — a probed action is internal to
      one component yet in another component's signature;
    - [dead-task] (warning, §2.4) — a fair task of a standalone
      automaton is never enabled on any explored reachable state;
    - [unfair-task] (warning, §4.4) — a task without a fairness
      obligation outside the crash automaton (only the crash
      automaton's tasks are exempt from fairness);
    - [rename-roundtrip] (error, §2.3/§5.3) — an action renaming whose
      [to_ ∘ of_] is not the identity on a probed in-signature action;
    - [hiding] (error, §2.3) — a hiding that changes the signature
      other than reclassifying outputs as internal;
    - [prop-based-spec] (error, §3.2) — a detector spec that scans raw
      traces instead of compiling an [Afd_prop] formula.

    Rules whose message asserts something "for all reachable states"
    ([dead-task], [reachable-input-enabled], [dead-transition]) carry
    the exploration's {!Space.verdict} in their message, so a truncated
    sample is never silently presented as a proof. *)

val all : Rule.t list
(** The full rule set, in documentation order. *)

val ids : string list

(** {1 Graph rules}

    The [--mc] set: rules over the explored transition {e graph} (not
    just the state list), run by [afd_lint --mc] alongside {!all}:

    - [reachable-input-enabled] (error, §2.1) — an input action refused
      in a reachable state, with the exploration verdict (an actual
      proof of input-enabledness when [Exhausted]);
    - [deadlock] (error, §2.4) — a non-quiescent reachable state (some
      fair task claims an enabled action) in which the step relation
      rejects every enabled action: the scheduler stalls there forever;
    - [race-pair] (info, §2.5) — two concurrently enabled tasks whose
      moves do not commute (per {!Space.commute}); report-only, since
      observable interleaving is often intended.  Symmetric pairs are
      deduplicated (reported once per unordered pair) and each finding
      says whether the race recurs — its state lies in a cycle-capable
      SCC of the {!Live} condensation — or is transient;
    - [dead-transition] (info, §2.1) — an in-signature probed action
      labelling no edge of the graph, found in one shared
      {!Live.fired_actions} pass; claimed only when the exploration
      is [Exhausted] and unreduced (under truncation or POR an untaken
      action proves nothing);
    - [livelock] (warning, §2.4) — a weakly fair cycle firing internal
      actions only: the scheduler can spin there forever without any
      output.  A positive fact about real edges, so reported even on a
      truncated graph (skipped only under POR, which drops edges);
    - [unsatisfiable-fairness-obligation] (error, §2.4) — a terminal
      SCC in which some fair task neither fires on any internal edge
      nor is ever disabled, and no member is a fair stop: the task
      structure admits {e no} fair execution once the SCC is entered.
      An absence claim, so gated on an [Exhausted] unreduced graph. *)

val mc : Rule.t list
val mc_ids : string list

(** {1 Symmetry rules}

    The [--symmetry] set, meaningful only when the engine ran with
    [~symmetry:true] (otherwise {!Subject.symm_verdict} is [None] and
    both rules stay silent):

    - [symmetry-breaking-state] (info, §2.1) — the subject declares an
      S_n action ({!Probe.t}[.symm]) but the {!Symm} analyzer found a
      concrete equivariance failure; the finding carries the witness
      (permutation, state index, and the offending field, task or
      action) and the subject explores unreduced;
    - [uncertified-symmetry] (info, §2.1) — symmetry was requested but
      the subject declares no usable S_n action, so the exploration
      fell back to unreduced.

    Both are info-severity: an asymmetric subject is a missed
    optimization, never a defect. *)

val symmetry : Rule.t list
val symmetry_ids : string list
