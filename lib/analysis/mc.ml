open Afd_ioa
module P = Afd_prop.Prop
module Fd_event = Afd_prop.Fd_event
module Counterexample = Afd_prop.Counterexample
module Monitor = Afd_prop.Monitor
module Verdict = Afd_prop.Verdict

type 'o violation = {
  clause : string;
  reason : string;
  kind : [ `Edge | `Judgement ];
  depth : int;
  counterexample : 'o Counterexample.t;
  confirmed : bool;
}

type 'o lasso = {
  l_clause : string;
  l_reason : string;
  l_kind : [ `Cycle | `Stop ];
  l_depth : int;
  l_stem : 'o Fd_event.t list;
  l_cycle : 'o Fd_event.t list;
  l_confirmed : bool;
}

type 'o outcome = {
  verdict : Space.verdict;
  states : int;
  transitions : int;
  safety_clauses : string list;
  liveness_clauses : string list;
  liveness_proved : string list;
  liveness_skipped : string list;
  violations : 'o violation list;
  lassos : 'o lasso list;
  safety_proved : bool;
  proved : bool;
  por : bool;
  stats : Space.stats;
}

let default_max_states = 20_000

(* Per-clause runtime carried in each product state.  [Fold]
   accumulators are existential (each clause brings its own ['acc]);
   packing the accumulator with its fold keeps the types aligned, the
   same trick [Component.inst] uses for component states. *)
type 'o rt =
  | C_always of 'o P.event_check
  | C_until of {
      release : 'o P.state -> bool;
      check : 'o P.event_check;
      released : bool;
    }
  | C_fold : { fold : ('o, 'acc) P.fold; acc : 'acc } -> 'o rt

(* Structural comparison across an existential boundary — exact for the
   first-order accumulators the catalog uses (sets, lists, pairs);
   values that defeat [compare] (closures) compare unequal, which only
   splits states, never merges wrongly. *)
let obj_equal a b =
  try Stdlib.compare (Obj.repr a) (Obj.repr b) = 0 with Invalid_argument _ -> false

let rt_equal a b =
  match (a, b) with
  | C_always _, C_always _ -> true
  | C_until u, C_until v -> u.released = v.released
  | C_fold f, C_fold g -> obj_equal f.acc g.acc
  | _ -> false

type ('s, 'o) pstate =
  | Running of { sys : 's; summary : 'o P.state; rts : 'o rt array }
  | Latched of { clause : string; reason : string }

exception Latch of string * string

let check ?(max_states = default_max_states) ?(por = false) ?(jobs = 1)
    ?(compiled = false) ?timings ?(len_cap = 8) ?(count_cap = 1)
    ?(equal_out = Stdlib.( = )) ~equal_state ~hash_state ~n prop sys =
  (* Phase timings are an out-parameter, never part of the outcome
     record: a profiled run stays byte-identical to an unprofiled
     one. *)
  let t_rec =
    match timings with
    | None -> fun _ _ -> ()
    | Some r -> fun k dt -> r := !r @ [ (k, dt) ]
  in
  let sub_profile =
    Option.map (fun r k dt -> r := !r @ [ ("explore." ^ k, dt) ]) timings
  in
  let safety, stables =
    List.partition_map
      (fun (nm, c) ->
        match c with
        | P.Stable judge -> Either.Right (nm, judge)
        | _ -> Either.Left (nm, c))
      (P.clauses prop)
  in
  (* Stable judges read [last_output]/[output_counts], so when liveness
     is in scope those fields join the product identity (counts capped
     at [count_cap] — the catalog judges only test [>= live_min = 1]).
     Under POR the sleep sets preserve states, not edges, so fair-cycle
     search is off and the coarser safety identity suffices. *)
  let track_live = stables <> [] && not por in
  let names = Array.of_list (List.map fst safety) in
  let init_rts =
    Array.of_list
      (List.map
         (fun (_, c) ->
           match c with
           | P.Always chk -> C_always chk
           | P.Until (release, check) -> C_until { release; check; released = false }
           | P.Fold f -> C_fold { fold = f; acc = f.P.finit }
           | P.Stable _ -> assert false)
         safety)
  in
  let step_rt summary act = function
    | C_always chk as c -> (
      match chk summary act with Ok () -> c | Error r -> raise (Latch ("", r)))
    | C_until u as c ->
      if u.released then c
      else if u.release summary then C_until { u with released = true }
      else (
        match u.check summary act with Ok () -> c | Error r -> raise (Latch ("", r)))
    | C_fold { fold; acc } -> (
      match fold.P.fstep summary acc act with
      | Ok acc' -> C_fold { fold; acc = acc' }
      | Error r -> raise (Latch ("", r)))
  in
  let pstep st act =
    match st with
    | Latched _ -> None
    | Running r -> (
      match sys.Automaton.step r.sys act with
      | None -> None
      | Some sys' -> (
        match
          Array.mapi
            (fun i c ->
              try step_rt r.summary act c
              with Latch (_, reason) -> raise (Latch (names.(i), reason)))
            r.rts
        with
        | rts ->
          Some (Running { sys = sys'; summary = P.update r.summary act; rts })
        | exception Latch (clause, reason) -> Some (Latched { clause; reason })))
  in
  let product =
    { Automaton.name = sys.Automaton.name ^ "(x)prop";
      kind = sys.Automaton.kind;
      start = Running { sys = sys.Automaton.start; summary = P.init ~n; rts = init_rts };
      step = pstep;
      tasks =
        List.map
          (fun tk ->
            { Automaton.task_name = tk.Automaton.task_name;
              fair = tk.Automaton.fair;
              enabled =
                (function
                | Latched _ -> None | Running r -> tk.Automaton.enabled r.sys);
            })
          sys.Automaton.tasks;
    }
  in
  (* Product identity: exactly the fields a safety clause may read (see
     the interface).  The trace summary is compared through the capped
     length and the crashed set; the stored representative is the one
     discovered first. *)
  let pequal a b =
    match (a, b) with
    | Latched a, Latched b -> String.equal a.clause b.clause && String.equal a.reason b.reason
    | Running a, Running b ->
      equal_state a.sys b.sys
      && min a.summary.P.len len_cap = min b.summary.P.len len_cap
      && Loc.Set.equal a.summary.P.crashed b.summary.P.crashed
      && Array.for_all2 rt_equal a.rts b.rts
      && (not track_live
         || Loc.Map.equal equal_out a.summary.P.last_output b.summary.P.last_output
            && Loc.Map.equal
                 (fun x y -> min x count_cap = min y count_cap)
                 a.summary.P.output_counts b.summary.P.output_counts)
    | Latched _, Running _ | Running _, Latched _ -> false
  in
  let mix h v = (h * 131) + v in
  let phash = function
    | Latched { clause; reason } -> Hashtbl.hash (clause, reason)
    | Running r ->
      let h = mix (hash_state r.sys) (min r.summary.P.len len_cap) in
      let h = mix h (Hashtbl.hash (Loc.Set.elements r.summary.P.crashed)) in
      (* Fold accumulators are skipped (no congruent hash across the
         existential); Until flags are cheap and discriminating. *)
      let h =
        Array.fold_left
          (fun h c -> match c with C_until u -> mix h (Bool.to_int u.released) | _ -> h)
          h r.rts
      in
      if not track_live then h
      else begin
        (* Congruent with the enriched equality: [equal_out] may be
           coarser than structural equality on payloads, so only the
           [last_output] domain is hashed; capped counts are ints. *)
        let h =
          mix h (Hashtbl.hash (List.map fst (Loc.Map.bindings r.summary.P.last_output)))
        in
        mix h
          (Hashtbl.hash
             (List.map
                (fun (l, c) -> (l, min c count_cap))
                (Loc.Map.bindings r.summary.P.output_counts)))
      end
  in
  let probe = Probe.make ~equal_state:pequal ~hash_state:phash ~max_states [] in
  (* Pspace and Cspace are structurally identical to Space at any
     [jobs], so every verdict, counterexample, and liveness lasso below
     is byte-for-byte independent of the domain count and of
     [compiled]. *)
  let t0 = Unix.gettimeofday () in
  let space =
    if compiled then Cspace.explore ~por ~jobs ?profile:sub_profile product probe
    else if jobs <= 1 then Space.explore ~por product probe
    else Pspace.explore ~por ~jobs ?profile:sub_profile product probe
  in
  let t1 = Unix.gettimeofday () in
  t_rec "explore" (t1 -. t0);
  let nstates = Array.length space.Space.states in
  (* Fold-judge evaluation per reachable Running state. *)
  let judge_violation = function
    | Latched _ -> None
    | Running r ->
      let res = ref None in
      Array.iteri
        (fun i c ->
          if Option.is_none !res then
            match c with
            | C_fold { fold; acc } -> (
              match fold.P.fjudge r.summary acc with
              | P.J_violated reason -> res := Some (names.(i), reason)
              | P.J_sat | P.J_undecided _ -> ())
            | C_always _ | C_until _ -> ())
        r.rts;
      !res
  in
  let judged = Array.map judge_violation space.Space.states in
  (* A judged violation counts only if inescapable: no path from it
     reaches a non-violated Running state.  Reverse reachability from
     the good states over the explored edges — sound as a claim about
     the system only under an [Exhausted] verdict. *)
  let escapes = Array.make nstates false in
  let inescapable_at =
    if space.Space.verdict <> Space.Exhausted then fun _ -> false
    else begin
      let radj = Array.make nstates [] in
      Array.iter
        (fun e -> radj.(e.Space.dst) <- e.Space.src :: radj.(e.Space.dst))
        space.Space.edges;
      let q = Queue.create () in
      Array.iteri
        (fun i st ->
          match st with
          | Running _ when Option.is_none judged.(i) ->
            escapes.(i) <- true;
            Queue.add i q
          | Running _ | Latched _ -> ())
        space.Space.states;
      while not (Queue.is_empty q) do
        let j = Queue.pop q in
        List.iter
          (fun p ->
            if not escapes.(p) then begin
              escapes.(p) <- true;
              Queue.add p q
            end)
          radj.(j)
      done;
      fun i -> Option.is_some judged.(i) && not escapes.(i)
    end
  in
  (* Candidate violations in discovery order (= nondecreasing depth, no
     seed states here), one per clause: the first is the shallowest. *)
  let candidates = ref [] in
  let seen_clause = Hashtbl.create 8 in
  for i = 0 to nstates - 1 do
    let record kind clause reason =
      if not (Hashtbl.mem seen_clause clause) then begin
        Hashtbl.add seen_clause clause ();
        candidates := (i, kind, clause, reason) :: !candidates
      end
    in
    (match space.Space.states.(i) with
    | Latched { clause; reason } -> record `Edge clause reason
    | Running _ -> ());
    if inescapable_at i then
      match judged.(i) with
      | Some (clause, reason) -> record `Judgement clause reason
      | None -> ()
  done;
  let violations =
    List.rev_map
      (fun (i, kind, clause, reason) ->
        let path = Space.path_actions space i in
        let counterexample = Counterexample.of_path ~clause ~reason path in
        let confirmed = Verdict.is_violated (Monitor.replay ~n prop path) in
        { clause; reason; kind; depth = space.Space.depth.(i); counterexample; confirmed })
      !candidates
    |> List.sort (fun a b -> compare a.depth b.depth)
  in
  let t2 = Unix.gettimeofday () in
  t_rec "clause_eval" (t2 -. t1);
  (* Liveness: a [Stable] clause is violated exactly when some reachable
     [Running] state has a non-[Sat] judge and either a weakly fair
     cycle runs through it (the judge stays non-[Sat] forever along the
     loop — the enriched identity makes the judge a function of the
     merged state) or it is a fair stop (a maximal fair execution ends
     with the "eventually" still pending).  Both witnesses are positive
     facts, so refutations are sound even on a truncated graph; the
     {e absence} of a pivot proves the clause only under [Exhausted]. *)
  let liveness_proved, liveness_skipped, lassos =
    if stables = [] then ([], [], [])
    else if por then ([], List.map fst stables, [])
    else begin
      let live = Live.analyze product space in
      let proved = ref [] and skipped = ref [] and lassos = ref [] in
      List.iter
        (fun (cname, judge) ->
          (* Discovery order is nondecreasing depth: the first pivot
             found yields the shortest stem. *)
          let pivot = ref None in
          let i = ref 0 in
          while !pivot = None && !i < nstates do
            (match space.Space.states.(!i) with
            | Latched _ -> ()
            | Running r -> (
              match judge r.summary with
              | P.J_sat -> ()
              | P.J_violated reason | P.J_undecided reason ->
                if Live.fair_cycle_through live !i then
                  pivot := Some (!i, reason, `Cycle)
                else if Live.fair_stop_at live !i then
                  pivot := Some (!i, reason, `Stop)));
            incr i
          done;
          match !pivot with
          | None ->
            if space.Space.verdict = Space.Exhausted then proved := cname :: !proved
            else skipped := cname :: !skipped
          | Some (pv, reason, kind) ->
            let stem = Space.path_actions space pv in
            let cyc =
              match kind with
              | `Cycle -> Live.cycle_actions space live pv
              | `Stop -> []
            in
            (* Replay through the online monitor: after the stem and
               after every unrolling of the cycle, this clause's
               verdict must still not be [Sat]. *)
            let unrollings = if cyc = [] then [ 0 ] else [ 1; 2; 3 ] in
            let confirmed =
              List.for_all
                (fun k ->
                  let m = Monitor.create ~n prop in
                  List.iter (Monitor.observe m) stem;
                  for _ = 1 to k do
                    List.iter (Monitor.observe m) cyc
                  done;
                  match List.assoc_opt cname (Monitor.clause_verdicts m) with
                  | Some Verdict.Sat | None -> false
                  | Some (Verdict.Violated _ | Verdict.Undecided _) -> true)
                unrollings
            in
            lassos :=
              { l_clause = cname;
                l_reason = reason;
                l_kind = kind;
                l_depth = space.Space.depth.(pv);
                l_stem = stem;
                l_cycle = cyc;
                l_confirmed = confirmed;
              }
              :: !lassos)
        stables;
      (List.rev !proved, List.rev !skipped, List.rev !lassos)
    end
  in
  t_rec "lasso" (Unix.gettimeofday () -. t2);
  let safety_proved = space.Space.verdict = Space.Exhausted && violations = [] in
  { verdict = space.Space.verdict;
    states = nstates;
    transitions = space.Space.stats.Space.transitions;
    safety_clauses = Array.to_list names;
    liveness_clauses = List.map fst stables;
    liveness_proved;
    liveness_skipped;
    violations;
    lassos;
    safety_proved;
    proved = safety_proved && liveness_skipped = [] && lassos = [];
    por;
    stats = space.Space.stats;
  }

let check_spec ?max_states ?por ?jobs ?compiled ?timings ?len_cap ?count_cap
    ?crashable ~n spec ~detector =
  match spec.Afd_core.Afd.prop with
  | None ->
    Error
      (Printf.sprintf "spec %s is raw (no compiled formula to model-check)"
         spec.Afd_core.Afd.name)
  | Some prop ->
    let crashable = Option.value ~default:(Loc.set_of_universe ~n) crashable in
    let comp =
      Composition.make
        ~name:(detector.Automaton.name ^ "+crash")
        [ Component.C detector;
          Component.C (Afd_core.Afd_automata.crash_automaton ~n ~crashable);
        ]
    in
    Ok
      (check ?max_states ?por ?jobs ?compiled ?timings ?len_cap ?count_cap
         ~equal_out:spec.Afd_core.Afd.equal_out ~equal_state:Composition.equal_state
         ~hash_state:Composition.hash_state ~n (prop ~n)
         (Composition.as_automaton comp))

let pp_outcome ~pp_out fmt o =
  Format.fprintf fmt "@[<v>%s: %d states, %d transitions (%a%s)"
    (if o.proved then "proved"
     else if o.violations = [] && o.lassos = [] then "no violation found"
     else "VIOLATED")
    o.states o.transitions Space.pp_verdict o.verdict
    (if o.por then Printf.sprintf ", por slept %d" o.stats.Space.slept else "");
  Format.fprintf fmt "@,safety clauses: %s" (String.concat ", " o.safety_clauses);
  if o.liveness_proved <> [] then
    Format.fprintf fmt "@,liveness proved (no fair violating cycle): %s"
      (String.concat ", " o.liveness_proved);
  if o.liveness_skipped <> [] then
    Format.fprintf fmt "@,liveness skipped (%s): %s"
      (if o.por then "por" else "truncated")
      (String.concat ", " o.liveness_skipped);
  List.iter
    (fun v ->
      Format.fprintf fmt "@,[%s] depth %d%s: %a"
        (match v.kind with `Edge -> "edge" | `Judgement -> "judgement")
        v.depth
        (if v.confirmed then ", replay-confirmed" else ", NOT confirmed by replay")
        (Counterexample.pp pp_out) v.counterexample)
    o.violations;
  List.iter
    (fun l ->
      Format.fprintf fmt
        "@,[lasso/%s] %s at depth %d%s: %s@,  stem (%d): %a@,  cycle (%d): %a"
        (match l.l_kind with `Cycle -> "fair-cycle" | `Stop -> "fair-stop")
        l.l_clause l.l_depth
        (if l.l_confirmed then ", replay-confirmed" else ", NOT confirmed by replay")
        l.l_reason (List.length l.l_stem)
        (Fd_event.pp_trace pp_out) l.l_stem (List.length l.l_cycle)
        (Fd_event.pp_trace pp_out) l.l_cycle)
    o.lassos;
  Format.fprintf fmt "@]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let outcome_to_json ?(timings = []) ~pp_out o =
  let str s = "\"" ^ json_escape s ^ "\"" in
  let strs l = "[" ^ String.concat "," (List.map str l) ^ "]" in
  let violation v =
    Printf.sprintf
      "{\"clause\":%s,\"kind\":%s,\"depth\":%d,\"reason\":%s,\"confirmed\":%b,\"counterexample\":%s}"
      (str v.clause)
      (str (match v.kind with `Edge -> "edge" | `Judgement -> "judgement"))
      v.depth (str v.reason) v.confirmed
      (Counterexample.to_json ~pp_out v.counterexample)
  in
  let events l =
    "[" ^ String.concat "," (List.map (fun e -> str (Fmt.str "%a" (Fd_event.pp pp_out) e)) l) ^ "]"
  in
  let lasso l =
    Printf.sprintf
      "{\"clause\":%s,\"kind\":%s,\"depth\":%d,\"reason\":%s,\"confirmed\":%b,\"stem\":%s,\"cycle\":%s}"
      (str l.l_clause)
      (str (match l.l_kind with `Cycle -> "fair-cycle" | `Stop -> "fair-stop"))
      l.l_depth (str l.l_reason) l.l_confirmed (events l.l_stem) (events l.l_cycle)
  in
  (* The profile field appears only when timings were collected, so
     unprofiled reports stay byte-identical across explorer choices. *)
  let profile_field =
    match timings with
    | [] -> ""
    | ts ->
      Printf.sprintf ",\"profile\":{%s}"
        (String.concat ","
           (List.map (fun (k, dt) -> Printf.sprintf "%s:%.6f" (str k) dt) ts))
  in
  Printf.sprintf
    "{\"verdict\":%s,\"proved\":%b,\"safety_proved\":%b,\"states\":%d,\"transitions\":%d,\"por\":%b,\"slept\":%d,\"cut\":%d,\"safety_clauses\":%s,\"liveness_clauses\":%s,\"liveness_proved\":%s,\"liveness_skipped\":%s,\"violations\":[%s],\"lassos\":[%s]%s}"
    (str (Space.verdict_string o.verdict))
    o.proved o.safety_proved o.states o.transitions o.por o.stats.Space.slept
    o.stats.Space.cut (strs o.safety_clauses) (strs o.liveness_clauses)
    (strs o.liveness_proved) (strs o.liveness_skipped)
    (String.concat "," (List.map violation o.violations))
    (String.concat "," (List.map lasso o.lassos))
    profile_field
