open Afd_ioa
module P = Afd_prop.Prop
module Fd_event = Afd_prop.Fd_event
module Counterexample = Afd_prop.Counterexample
module Monitor = Afd_prop.Monitor
module Verdict = Afd_prop.Verdict

type 'o violation = {
  clause : string;
  reason : string;
  kind : [ `Edge | `Judgement ];
  depth : int;
  counterexample : 'o Counterexample.t;
  confirmed : bool;
}

type 'o lasso = {
  l_clause : string;
  l_reason : string;
  l_kind : [ `Cycle | `Stop ];
  l_depth : int;
  l_stem : 'o Fd_event.t list;
  l_cycle : 'o Fd_event.t list;
  l_confirmed : bool;
}

(* How symmetry reduction went for a run: off, engaged with a
   certificate, refused with a concrete breaking witness, or refused
   because the spec or system lacks the transports certification
   needs.  Breaking and fallback runs are plain unreduced runs. *)
type sym_status =
  | Sym_off
  | Sym_quotient of Symm.certificate
  | Sym_breaking of Symm.witness
  | Sym_fallback of string

(* A permutation action on detector states together with a semantic
   total order and congruent hash.  All three are required: polymorphic
   compare/hash are AVL-shape-sensitive on sets and maps, so a
   [Loc.Set.map]-transported state could spuriously differ from a
   stepped one. *)
type 's state_symmetry = {
  ss_perm : (int -> int) -> 's -> 's;
  ss_cmp : 's -> 's -> int;
  ss_hash : 's -> int;
}

let sym_set =
  { ss_perm = (fun pif s -> Loc.Set.map pif s);
    ss_cmp = Loc.Set.compare;
    ss_hash = (fun s -> Hashtbl.hash (Loc.Set.elements s));
  }

let sym_pair a b =
  { ss_perm = (fun pif (x, y) -> (a.ss_perm pif x, b.ss_perm pif y));
    ss_cmp =
      (fun (x1, y1) (x2, y2) ->
        let c = a.ss_cmp x1 x2 in
        if c <> 0 then c else b.ss_cmp y1 y2);
    ss_hash = (fun (x, y) -> Hashtbl.hash (a.ss_hash x, b.ss_hash y));
  }

(* For identity-independent components carried alongside symmetric
   ones (flags, counters, scripted noise): the permutation leaves the
   component alone and structural identity is exact. *)
let sym_rigid =
  { ss_perm = (fun _ x -> x);
    ss_cmp = Stdlib.compare;
    ss_hash = Hashtbl.hash;
  }

type 'o outcome = {
  verdict : Space.verdict;
  states : int;
  transitions : int;
  safety_clauses : string list;
  liveness_clauses : string list;
  liveness_proved : string list;
  liveness_skipped : string list;
  violations : 'o violation list;
  lassos : 'o lasso list;
  safety_proved : bool;
  proved : bool;
  por : bool;
  sym : sym_status;
  stats : Space.stats;
}

let default_max_states = 20_000

(* Per-clause runtime carried in each product state.  [Fold]
   accumulators are existential (each clause brings its own ['acc]);
   packing the accumulator with its fold keeps the types aligned, the
   same trick [Component.inst] uses for component states. *)
type 'o rt =
  | C_always of 'o P.event_check
  | C_until of {
      release : 'o P.state -> bool;
      check : 'o P.event_check;
      released : bool;
    }
  | C_fold : { fold : ('o, 'acc) P.fold; acc : 'acc } -> 'o rt

(* Structural comparison across an existential boundary — exact for the
   first-order accumulators the catalog uses (sets, lists, pairs);
   values that defeat [compare] (closures) compare unequal, which only
   splits states, never merges wrongly. *)
let obj_equal a b =
  try Stdlib.compare (Obj.repr a) (Obj.repr b) = 0 with Invalid_argument _ -> false

let rt_equal a b =
  match (a, b) with
  | C_always _, C_always _ -> true
  | C_until u, C_until v -> u.released = v.released
  | C_fold f, C_fold g -> obj_equal f.acc g.acc
  | _ -> false

(* Total order on runtimes with accumulators compared through the
   fold's declared {e semantic} order ([fcmp]) when present: under a
   symmetry quotient, transported accumulators must merge with stepped
   ones even when their AVL shapes differ.  The two [C_fold]s at one
   array index carry the same clause's fold, so the cast stays inside
   one existential instance. *)
let rt_cmp_sem a b =
  match (a, b) with
  | C_always _, C_always _ -> 0
  | C_until u, C_until v -> Bool.compare u.released v.released
  | C_fold f, C_fold g -> (
    match f.fold.P.fcmp with
    | Some c -> c f.acc (Obj.magic g.acc)
    | None -> (
      try Stdlib.compare (Obj.repr f.acc) (Obj.repr g.acc)
      with Invalid_argument _ -> 0))
  | C_always _, _ -> -1
  | _, C_always _ -> 1
  | C_until _, C_fold _ -> -1
  | C_fold _, C_until _ -> 1

let rt_equal_sem a b = rt_cmp_sem a b = 0

type ('s, 'o) pstate =
  | Running of { sys : 's; summary : 'o P.state; rts : 'o rt array }
  | Latched of { clause : string; reason : string }

exception Latch of string * string

let check ?(max_states = default_max_states) ?(por = false) ?(jobs = 1)
    ?(compiled = false) ?timings ?(len_cap = 8) ?(count_cap = 1)
    ?(equal_out = Stdlib.( = )) ?symmetry ?perm_out ~equal_state ~hash_state ~n
    prop sys =
  (* Phase timings are an out-parameter, never part of the outcome
     record: a profiled run stays byte-identical to an unprofiled
     one. *)
  let t_rec =
    match timings with
    | None -> fun _ _ -> ()
    | Some r -> fun k dt -> r := !r @ [ (k, dt) ]
  in
  let sub_profile =
    Option.map (fun r k dt -> r := !r @ [ ("explore." ^ k, dt) ]) timings
  in
  let safety, stables =
    List.partition_map
      (fun (nm, c) ->
        match c with
        | P.Stable judge -> Either.Right (nm, judge)
        | _ -> Either.Left (nm, c))
      (P.clauses prop)
  in
  let names = Array.of_list (List.map fst safety) in
  let init_rts =
    Array.of_list
      (List.map
         (fun (_, c) ->
           match c with
           | P.Always chk -> C_always chk
           | P.Until (release, check) -> C_until { release; check; released = false }
           | P.Fold f -> C_fold { fold = f; acc = f.P.finit }
           | P.Stable _ -> assert false)
         safety)
  in
  let step_rt summary act = function
    | C_always chk as c -> (
      match chk summary act with Ok () -> c | Error r -> raise (Latch ("", r)))
    | C_until u as c ->
      if u.released then c
      else if u.release summary then C_until { u with released = true }
      else (
        match u.check summary act with Ok () -> c | Error r -> raise (Latch ("", r)))
    | C_fold { fold; acc } -> (
      match fold.P.fstep summary acc act with
      | Ok acc' -> C_fold { fold; acc = acc' }
      | Error r -> raise (Latch ("", r)))
  in
  let pstep st act =
    match st with
    | Latched _ -> None
    | Running r -> (
      match sys.Automaton.step r.sys act with
      | None -> None
      | Some sys' -> (
        match
          Array.mapi
            (fun i c ->
              try step_rt r.summary act c
              with Latch (_, reason) -> raise (Latch (names.(i), reason)))
            r.rts
        with
        | rts ->
          Some (Running { sys = sys'; summary = P.update r.summary act; rts })
        | exception Latch (clause, reason) -> Some (Latched { clause; reason })))
  in
  let product =
    { Automaton.name = sys.Automaton.name ^ "(x)prop";
      kind = sys.Automaton.kind;
      start = Running { sys = sys.Automaton.start; summary = P.init ~n; rts = init_rts };
      step = pstep;
      tasks =
        List.map
          (fun tk ->
            { Automaton.task_name = tk.Automaton.task_name;
              fair = tk.Automaton.fair;
              enabled =
                (function
                | Latched _ -> None | Running r -> tk.Automaton.enabled r.sys);
            })
          sys.Automaton.tasks;
    }
  in
  (* Product identity: exactly the fields a safety clause may read (see
     the interface).  The trace summary is compared through the capped
     length and the crashed set; the stored representative is the one
     discovered first.  [tl] is whether the liveness enrichment
     (last outputs, capped counts) joins the identity. *)
  let pequal_gen ~rt_eq tl a b =
    match (a, b) with
    | Latched a, Latched b -> String.equal a.clause b.clause && String.equal a.reason b.reason
    | Running a, Running b ->
      equal_state a.sys b.sys
      && min a.summary.P.len len_cap = min b.summary.P.len len_cap
      && Loc.Set.equal a.summary.P.crashed b.summary.P.crashed
      && Array.for_all2 rt_eq a.rts b.rts
      && (not tl
         || Loc.Map.equal equal_out a.summary.P.last_output b.summary.P.last_output
            && Loc.Map.equal
                 (fun x y -> min x count_cap = min y count_cap)
                 a.summary.P.output_counts b.summary.P.output_counts)
    | Latched _, Running _ | Running _, Latched _ -> false
  in
  let mix h v = (h * 131) + v in
  let phash_gen tl = function
    | Latched { clause; reason } -> Hashtbl.hash (clause, reason)
    | Running r ->
      let h = mix (hash_state r.sys) (min r.summary.P.len len_cap) in
      let h = mix h (Hashtbl.hash (Loc.Set.elements r.summary.P.crashed)) in
      (* Fold accumulators are skipped (no congruent hash across the
         existential); Until flags are cheap and discriminating. *)
      let h =
        Array.fold_left
          (fun h c -> match c with C_until u -> mix h (Bool.to_int u.released) | _ -> h)
          h r.rts
      in
      if not tl then h
      else begin
        (* Congruent with the enriched equality: [equal_out] may be
           coarser than structural equality on payloads, so only the
           [last_output] domain is hashed; capped counts are ints. *)
        let h =
          mix h (Hashtbl.hash (List.map fst (Loc.Map.bindings r.summary.P.last_output)))
        in
        mix h
          (Hashtbl.hash
             (List.map
                (fun (l, c) -> (l, min c count_cap))
                (Loc.Map.bindings r.summary.P.output_counts)))
      end
  in
  (* --- symmetry: lift the declared system action to product states,
     certify equivariance over the quotient, or fall back --- *)
  let t0s = Unix.gettimeofday () in
  let sym_resolved =
    match (symmetry, perm_out) with
    | None, _ -> `Off
    | Some _, None -> `Fallback "spec declares no output transport (perm_out)"
    | Some sy, Some perm_o -> (
      match
        List.find_map
          (fun (nm, c) ->
            match c with
            | P.Fold f when f.P.fperm = None ->
              Some (nm, "accumulator transport (fperm)")
            | P.Fold f when f.P.fcmp = None ->
              Some (nm, "semantic accumulator order (fcmp)")
            | _ -> None)
          (P.clauses prop)
      with
      | Some (nm, what) ->
        `Fallback (Printf.sprintf "fold clause %s has no %s" nm what)
      | None ->
        let perm_summary pif st = P.permute pif (perm_o pif) st in
        let perm_rt pif = function
          | (C_always _ | C_until _) as c -> c
          | C_fold { fold; acc } -> (
            match fold.P.fperm with
            | Some fp -> C_fold { fold; acc = fp pif acc }
            | None -> assert false)
        in
        let pperm pif = function
          | Latched _ as st -> st
          | Running r ->
            Running
              { sys = sy.Probe.sy_state pif r.sys;
                summary = perm_summary pif r.summary;
                rts = Array.map (perm_rt pif) r.rts;
              }
        in
        (* A total order congruent with [pequal_gen false]: orbit minima
           are canonical representatives.  The liveness enrichment is
           deliberately absent — under a quotient, liveness is not
           checked (see below), exactly as under POR. *)
        let pcmp a b =
          match (a, b) with
          | Latched a, Latched b ->
            Stdlib.compare (a.clause, a.reason) (b.clause, b.reason)
          | Latched _, Running _ -> -1
          | Running _, Latched _ -> 1
          | Running a, Running b ->
            let c = sy.Probe.sy_cmp a.sys b.sys in
            if c <> 0 then c
            else
              let c =
                Stdlib.compare (min a.summary.P.len len_cap) (min b.summary.P.len len_cap)
              in
              if c <> 0 then c
              else
                let c = Symm.cmp_set a.summary.P.crashed b.summary.P.crashed in
                if c <> 0 then c
                else begin
                  let res = ref 0 and i = ref 0 in
                  let la = Array.length a.rts in
                  while !res = 0 && !i < la do
                    res := rt_cmp_sem a.rts.(!i) b.rts.(!i);
                    incr i
                  done;
                  !res
                end
        in
        let psy =
          { Probe.sy_n = n;
            sy_state = pperm;
            sy_action = sy.Probe.sy_action;
            sy_cmp = pcmp;
            sy_fields = [];
          }
        in
        (* Certification sweep over the quotient product.  Latched
           states compare by clause only: latch reasons embed permuted
           location names, and a latch is absorbing, so the coarse
           identity is still a bisimulation on the part that matters. *)
        let arelax a b =
          match (a, b) with
          | Latched a, Latched b -> String.equal a.clause b.clause
          | _ -> pequal_gen ~rt_eq:rt_equal_sem false a b
        in
        let ahash = function
          | Latched { clause; _ } -> Hashtbl.hash clause
          | st -> phash_gen false st
        in
        (* Event equality through [equal_out]: permuted payloads are
           rebuilt sets/maps whose AVL shape may differ from stepped
           ones, so structural equality would yield spurious breaking
           witnesses. *)
        let equal_event a b =
          match (a, b) with
          | Fd_event.Crash i, Fd_event.Crash j -> i = j
          | Fd_event.Output (i, x), Fd_event.Output (j, y) ->
            i = j && equal_out x y
          | Fd_event.Crash _, Fd_event.Output _
          | Fd_event.Output _, Fd_event.Crash _ -> false
        in
        let aprobe =
          Probe.make ~equal_state:arelax ~hash_state:ahash
            ~equal_action:equal_event ~max_states ~symm:psy []
        in
        (match Symm.analyze product aprobe with
        | Symm.Certified cert -> `Quotient (cert, psy)
        | Symm.Breaking w -> `Breaking w
        | Symm.Unsupported r -> `Fallback r))
  in
  if Option.is_some symmetry then t_rec "symmetry" (Unix.gettimeofday () -. t0s);
  let quotient =
    match sym_resolved with `Quotient (_, psy) -> Some psy | _ -> None
  in
  let sym =
    match sym_resolved with
    | `Off -> Sym_off
    | `Fallback r -> Sym_fallback r
    | `Breaking w -> Sym_breaking w
    | `Quotient (cert, _) -> Sym_quotient cert
  in
  (* Stable judges read [last_output]/[output_counts], so when liveness
     is in scope those fields join the product identity (counts capped
     at [count_cap] — the catalog judges only test [>= live_min = 1]).
     Under POR the sleep sets preserve states, not edges, so fair-cycle
     search is off and the coarser safety identity suffices; a symmetry
     quotient merges fair cycles the same way, so liveness is off
     there too. *)
  let track_live = stables <> [] && not por && Option.is_none quotient in
  (* Unreduced runs keep the historical structural accumulator
     identity (byte-identical outcomes); quotient runs need the
     semantic one so transported accumulators merge. *)
  let rt_eq = if Option.is_some quotient then rt_equal_sem else rt_equal in
  let pequal = pequal_gen ~rt_eq track_live in
  let phash = phash_gen track_live in
  let probe = Probe.make ~equal_state:pequal ~hash_state:phash ~max_states [] in
  let symmetry_fn = Option.map Symm.canonizer quotient in
  (* Pspace and Cspace are structurally identical to Space at any
     [jobs], so every verdict, counterexample, and liveness lasso below
     is byte-for-byte independent of the domain count and of
     [compiled]. *)
  let t0 = Unix.gettimeofday () in
  let space =
    if compiled then
      Cspace.explore ~por ?symmetry:symmetry_fn ~jobs ?profile:sub_profile product probe
    else if jobs <= 1 then Space.explore ~por ?symmetry:symmetry_fn product probe
    else Pspace.explore ~por ?symmetry:symmetry_fn ~jobs ?profile:sub_profile product probe
  in
  let t1 = Unix.gettimeofday () in
  t_rec "explore" (t1 -. t0);
  let nstates = Array.length space.Space.states in
  (* Fold-judge evaluation per reachable Running state. *)
  let judge_violation = function
    | Latched _ -> None
    | Running r ->
      let res = ref None in
      Array.iteri
        (fun i c ->
          if Option.is_none !res then
            match c with
            | C_fold { fold; acc } -> (
              match fold.P.fjudge r.summary acc with
              | P.J_violated reason -> res := Some (names.(i), reason)
              | P.J_sat | P.J_undecided _ -> ())
            | C_always _ | C_until _ -> ())
        r.rts;
      !res
  in
  let judged = Array.map judge_violation space.Space.states in
  (* A judged violation counts only if inescapable: no path from it
     reaches a non-violated Running state.  Reverse reachability from
     the good states over the explored edges — sound as a claim about
     the system only under an [Exhausted] verdict. *)
  let escapes = Array.make nstates false in
  let inescapable_at =
    if space.Space.verdict <> Space.Exhausted then fun _ -> false
    else begin
      let radj = Array.make nstates [] in
      Array.iter
        (fun e -> radj.(e.Space.dst) <- e.Space.src :: radj.(e.Space.dst))
        space.Space.edges;
      let q = Queue.create () in
      Array.iteri
        (fun i st ->
          match st with
          | Running _ when Option.is_none judged.(i) ->
            escapes.(i) <- true;
            Queue.add i q
          | Running _ | Latched _ -> ())
        space.Space.states;
      while not (Queue.is_empty q) do
        let j = Queue.pop q in
        List.iter
          (fun p ->
            if not escapes.(p) then begin
              escapes.(p) <- true;
              Queue.add p q
            end)
          radj.(j)
      done;
      fun i -> Option.is_some judged.(i) && not escapes.(i)
    end
  in
  (* Candidate violations in discovery order (= nondecreasing depth, no
     seed states here), one per clause: the first is the shallowest. *)
  let candidates = ref [] in
  let seen_clause = Hashtbl.create 8 in
  for i = 0 to nstates - 1 do
    let record kind clause reason =
      if not (Hashtbl.mem seen_clause clause) then begin
        Hashtbl.add seen_clause clause ();
        candidates := (i, kind, clause, reason) :: !candidates
      end
    in
    (match space.Space.states.(i) with
    | Latched { clause; reason } -> record `Edge clause reason
    | Running _ -> ());
    if inescapable_at i then
      match judged.(i) with
      | Some (clause, reason) -> record `Judgement clause reason
      | None -> ()
  done;
  (* Under a quotient the stored parent edges carry representative
     states and orbit-internal actions; stitching them together is not
     a run of the original system.  Lift instead: walk the chain
     maintaining the permutation [rho] with s_i = rho_i(r_i) for the
     genuine original run s_0 s_1 ... — each emitted action is
     rho_i(a_i), and rho advances by the canonizing permutation of the
     raw successor.  The lifted path replays through the monitor, which
     independently re-derives the violation. *)
  let lift_path psy i =
    let cw = Symm.canonizer_w psy in
    let rec collect j acc =
      match space.Space.parent.(j) with
      | None -> acc
      | Some (p, a) -> collect p ((p, a) :: acc)
    in
    let steps = collect i [] in
    let _, sigma0 = cw product.Automaton.start in
    let rho = ref (Symm.Perm.inverse sigma0) in
    List.map
      (fun (j, a) ->
        let b = psy.Probe.sy_action (Symm.Perm.apply !rho) a in
        (match pstep space.Space.states.(j) a with
        | Some t ->
          let _, sigma = cw t in
          rho := Symm.Perm.compose !rho (Symm.Perm.inverse sigma)
        | None -> ());
        b)
      steps
  in
  let path_of i =
    match quotient with
    | None -> Space.path_actions space i
    | Some psy -> lift_path psy i
  in
  let violations =
    List.rev_map
      (fun (i, kind, clause, reason) ->
        let path = path_of i in
        let replay = Monitor.replay ~n prop path in
        let confirmed = Verdict.is_violated replay in
        (* A quotient-discovered latch reason names representative
           locations; the replay of the lifted path names the real
           ones (minus the clause prefix the monitor prepends). *)
        let reason =
          match (quotient, replay) with
          | Some _, Verdict.Violated r ->
            let prefix = clause ^ ": " in
            let lp = String.length prefix in
            if String.length r >= lp && String.equal (String.sub r 0 lp) prefix
            then String.sub r lp (String.length r - lp)
            else r
          | _ -> reason
        in
        let counterexample = Counterexample.of_path ~clause ~reason path in
        { clause; reason; kind; depth = space.Space.depth.(i); counterexample; confirmed })
      !candidates
    |> List.sort (fun a b -> compare a.depth b.depth)
  in
  let t2 = Unix.gettimeofday () in
  t_rec "clause_eval" (t2 -. t1);
  (* Liveness: a [Stable] clause is violated exactly when some reachable
     [Running] state has a non-[Sat] judge and either a weakly fair
     cycle runs through it (the judge stays non-[Sat] forever along the
     loop — the enriched identity makes the judge a function of the
     merged state) or it is a fair stop (a maximal fair execution ends
     with the "eventually" still pending).  Both witnesses are positive
     facts, so refutations are sound even on a truncated graph; the
     {e absence} of a pivot proves the clause only under [Exhausted]. *)
  let liveness_proved, liveness_skipped, lassos =
    if stables = [] then ([], [], [])
    else if por || Option.is_some quotient then ([], List.map fst stables, [])
    else begin
      let live = Live.analyze product space in
      let proved = ref [] and skipped = ref [] and lassos = ref [] in
      List.iter
        (fun (cname, judge) ->
          (* Discovery order is nondecreasing depth: the first pivot
             found yields the shortest stem. *)
          let pivot = ref None in
          let i = ref 0 in
          while !pivot = None && !i < nstates do
            (match space.Space.states.(!i) with
            | Latched _ -> ()
            | Running r -> (
              match judge r.summary with
              | P.J_sat -> ()
              | P.J_violated reason | P.J_undecided reason ->
                if Live.fair_cycle_through live !i then
                  pivot := Some (!i, reason, `Cycle)
                else if Live.fair_stop_at live !i then
                  pivot := Some (!i, reason, `Stop)));
            incr i
          done;
          match !pivot with
          | None ->
            if space.Space.verdict = Space.Exhausted then proved := cname :: !proved
            else skipped := cname :: !skipped
          | Some (pv, reason, kind) ->
            let stem = Space.path_actions space pv in
            let cyc =
              match kind with
              | `Cycle -> Live.cycle_actions space live pv
              | `Stop -> []
            in
            (* Replay through the online monitor: after the stem and
               after every unrolling of the cycle, this clause's
               verdict must still not be [Sat]. *)
            let unrollings = if cyc = [] then [ 0 ] else [ 1; 2; 3 ] in
            let confirmed =
              List.for_all
                (fun k ->
                  let m = Monitor.create ~n prop in
                  List.iter (Monitor.observe m) stem;
                  for _ = 1 to k do
                    List.iter (Monitor.observe m) cyc
                  done;
                  match List.assoc_opt cname (Monitor.clause_verdicts m) with
                  | Some Verdict.Sat | None -> false
                  | Some (Verdict.Violated _ | Verdict.Undecided _) -> true)
                unrollings
            in
            lassos :=
              { l_clause = cname;
                l_reason = reason;
                l_kind = kind;
                l_depth = space.Space.depth.(pv);
                l_stem = stem;
                l_cycle = cyc;
                l_confirmed = confirmed;
              }
              :: !lassos)
        stables;
      (List.rev !proved, List.rev !skipped, List.rev !lassos)
    end
  in
  t_rec "lasso" (Unix.gettimeofday () -. t2);
  let safety_proved = space.Space.verdict = Space.Exhausted && violations = [] in
  { verdict = space.Space.verdict;
    states = nstates;
    transitions = space.Space.stats.Space.transitions;
    safety_clauses = Array.to_list names;
    liveness_clauses = List.map fst stables;
    liveness_proved;
    liveness_skipped;
    violations;
    lassos;
    safety_proved;
    proved = safety_proved && liveness_skipped = [] && lassos = [];
    por;
    sym;
    stats = space.Space.stats;
  }

(* The detector+crash pair as a plain automaton, replicating
   [Composition.as_automaton] on exactly two components: same signature
   priority (Output > Internal > Input), same rule that every
   in-signature component must accept the action (out-of-signature
   components pass their state through), same "<component>/<task>"
   task names — so the pair is trace-equivalent to the composition the
   unreduced path explores.  The point of the replica: the pair state
   is a first-order tuple a process permutation can act on, while
   [Composition.state] hides component states behind an existential. *)
let pair_automaton (det : ('s, 'a) Automaton.t) (crash : (Loc.Set.t, 'a) Automaton.t) :
    ('s * Loc.Set.t, 'a) Automaton.t =
  let kind a =
    match (det.Automaton.kind a, crash.Automaton.kind a) with
    | Some Automaton.Output, _ | _, Some Automaton.Output -> Some Automaton.Output
    | Some Automaton.Internal, _ | _, Some Automaton.Internal ->
      Some Automaton.Internal
    | Some Automaton.Input, _ | _, Some Automaton.Input -> Some Automaton.Input
    | None, None -> None
  in
  let step (s, c) a =
    let ds = if det.Automaton.kind a = None then Some s else det.Automaton.step s a in
    let cs =
      if crash.Automaton.kind a = None then Some c else crash.Automaton.step c a
    in
    match (ds, cs) with Some s', Some c' -> Some (s', c') | _ -> None
  in
  let lift name proj (tk : _ Automaton.task) =
    { Automaton.task_name = name ^ "/" ^ tk.Automaton.task_name;
      fair = tk.Automaton.fair;
      enabled = (fun st -> tk.Automaton.enabled (proj st));
    }
  in
  { Automaton.name = det.Automaton.name ^ "+crash";
    kind;
    start = (det.Automaton.start, crash.Automaton.start);
    step;
    tasks =
      List.map (lift det.Automaton.name fst) det.Automaton.tasks
      @ List.map (lift crash.Automaton.name snd) crash.Automaton.tasks;
  }

let check_spec ?max_states ?por ?jobs ?compiled ?timings ?len_cap ?count_cap
    ?crashable ?symmetry ~n spec ~detector =
  match spec.Afd_core.Afd.prop with
  | None ->
    Error
      (Printf.sprintf "spec %s is raw (no compiled formula to model-check)"
         spec.Afd_core.Afd.name)
  | Some prop ->
    let crashable = Option.value ~default:(Loc.set_of_universe ~n) crashable in
    let crash = Afd_core.Afd_automata.crash_automaton ~n ~crashable in
    let unreduced ?sym () =
      let comp =
        Composition.make
          ~name:(detector.Automaton.name ^ "+crash")
          [ Component.C detector; Component.C crash ]
      in
      let o =
        check ?max_states ?por ?jobs ?compiled ?timings ?len_cap ?count_cap
          ~equal_out:spec.Afd_core.Afd.equal_out ~equal_state:Composition.equal_state
          ~hash_state:Composition.hash_state ~n (prop ~n)
          (Composition.as_automaton comp)
      in
      match sym with None -> o | Some s -> { o with sym = s }
    in
    (match symmetry with
    | None -> Ok (unreduced ())
    | Some dsym -> (
      match spec.Afd_core.Afd.perm_out with
      | None ->
        Ok
          (unreduced
             ~sym:(Sym_fallback "spec declares no output transport (perm_out)")
             ())
      | Some perm_o ->
        (* Pair identity through the declared semantic order — shape
           differences introduced by [ss_perm] must not split
           states. *)
        let psym = sym_pair dsym sym_set in
        let eq_pair a b = psym.ss_cmp a b = 0 in
        let sy =
          { Probe.sy_n = n;
            sy_state = psym.ss_perm;
            sy_action = Symm.perm_event perm_o;
            sy_cmp = psym.ss_cmp;
            sy_fields = [];
          }
        in
        Ok
          (check ?max_states ?por ?jobs ?compiled ?timings ?len_cap ?count_cap
             ~equal_out:spec.Afd_core.Afd.equal_out ~symmetry:sy ~perm_out:perm_o
             ~equal_state:eq_pair ~hash_state:psym.ss_hash ~n (prop ~n)
             (pair_automaton detector crash))))

(* --- parametric cutoff search --- *)

type point = {
  pt_n : int;
  pt_orbits : int;  (** quotient states explored at this n *)
  pt_transitions : int;
  pt_verdict : Space.verdict;
  pt_proved : bool;  (** safety proved at this n (quotient exhausted, no violation) *)
  pt_violated : string list;  (** violated clauses, when any *)
  pt_raw_states : int option;
      (** unreduced state count at the same n, when the unreduced run
          exhausts within budget; [None] when it truncates *)
}

type parametric_verdict =
  | Cutoff_candidate of { n0 : int; upto : int }
  | Proved_upto of int
  | Refuted_at of int
  | Unverified of string

type parametric = {
  par_points : point list;
  par_verdict : parametric_verdict;
  par_sym : sym_status;
}

(* Proved points needed before a run of exhausted-and-proved instances
   is reported as a cutoff candidate rather than a plain bounded
   result.  Heuristic in the spirit of Emerson–Namjoshi cutoffs: the
   verdict is explicitly a candidate, never a proof for all n. *)
let cutoff_window = 3

let parametric ?max_states ?(ns = [ 2; 3; 4; 5 ]) ?crashable ~symmetry spec
    ~detector =
  let points = ref [] in
  let sym = ref Sym_off in
  let halted = ref None in
  (try
     List.iter
       (fun n ->
         match
           check_spec ?max_states ?crashable ~symmetry ~n spec
             ~detector:(detector n)
         with
         | Error e ->
           halted := Some (Unverified e);
           raise Exit
         | Ok o ->
           sym := o.sym;
           (match o.sym with
           | Sym_quotient _ ->
             let raw =
               match check_spec ?max_states ?crashable ~n spec ~detector:(detector n) with
               | Ok r when r.verdict = Space.Exhausted -> Some r.states
               | Ok _ | Error _ -> None
             in
             let violated =
               List.map (fun v -> v.clause) o.violations
               @ List.map (fun l -> l.l_clause) o.lassos
             in
             let pt =
               { pt_n = n;
                 pt_orbits = o.states;
                 pt_transitions = o.transitions;
                 pt_verdict = o.verdict;
                 pt_proved = o.safety_proved;
                 pt_violated = violated;
                 pt_raw_states = raw;
               }
             in
             points := pt :: !points;
             if violated <> [] then begin
               halted := Some (Refuted_at n);
               raise Exit
             end;
             (* Larger instances only grow: once the budget truncates,
                stop climbing. *)
             if o.verdict <> Space.Exhausted then raise Exit
           | Sym_breaking _ | Sym_fallback _ | Sym_off ->
             (* Not quotientable (or symmetry was not engaged): the
                parametric ladder has no sound footing; report why. *)
             raise Exit))
       ns
   with Exit -> ());
  let par_points = List.rev !points in
  let proved =
    List.filter (fun p -> p.pt_proved && p.pt_verdict = Space.Exhausted) par_points
  in
  let par_verdict =
    match !halted with
    | Some v -> v
    | None -> (
      match proved with
      | [] ->
        Unverified
          (match !sym with
          | Sym_breaking w -> Fmt.str "symmetry-breaking: %a" Symm.pp_witness w
          | Sym_fallback r -> "uncertified: " ^ r
          | Sym_off | Sym_quotient _ -> "no instance exhausted within budget")
      | ps ->
        let n0 = (List.hd ps).pt_n in
        let upto = (List.nth ps (List.length ps - 1)).pt_n in
        if List.length ps >= cutoff_window then Cutoff_candidate { n0; upto }
        else Proved_upto upto)
  in
  { par_points; par_verdict; par_sym = !sym }

let pp_sym_status fmt = function
  | Sym_off -> Fmt.string fmt "off"
  | Sym_quotient c ->
    Format.fprintf fmt "certified (%d reps x %d perms%s)" c.Symm.c_states
      c.Symm.c_perms
      (if c.Symm.c_exhaustive then "" else ", bounded")
  | Sym_breaking w -> Format.fprintf fmt "breaking: %a" Symm.pp_witness w
  | Sym_fallback r -> Format.fprintf fmt "uncertified: %s" r

let pp_outcome ~pp_out fmt o =
  Format.fprintf fmt "@[<v>%s: %d states, %d transitions (%a%s)"
    (if o.proved then "proved"
     else if o.violations = [] && o.lassos = [] then "no violation found"
     else "VIOLATED")
    o.states o.transitions Space.pp_verdict o.verdict
    (if o.por then Printf.sprintf ", por slept %d" o.stats.Space.slept else "");
  (match o.sym with
  | Sym_off -> ()
  | s -> Format.fprintf fmt "@,symmetry: %a" pp_sym_status s);
  Format.fprintf fmt "@,safety clauses: %s" (String.concat ", " o.safety_clauses);
  if o.liveness_proved <> [] then
    Format.fprintf fmt "@,liveness proved (no fair violating cycle): %s"
      (String.concat ", " o.liveness_proved);
  if o.liveness_skipped <> [] then
    Format.fprintf fmt "@,liveness skipped (%s): %s"
      (if o.por then "por"
       else match o.sym with Sym_quotient _ -> "symmetry" | _ -> "truncated")
      (String.concat ", " o.liveness_skipped);
  List.iter
    (fun v ->
      Format.fprintf fmt "@,[%s] depth %d%s: %a"
        (match v.kind with `Edge -> "edge" | `Judgement -> "judgement")
        v.depth
        (if v.confirmed then ", replay-confirmed" else ", NOT confirmed by replay")
        (Counterexample.pp pp_out) v.counterexample)
    o.violations;
  List.iter
    (fun l ->
      Format.fprintf fmt
        "@,[lasso/%s] %s at depth %d%s: %s@,  stem (%d): %a@,  cycle (%d): %a"
        (match l.l_kind with `Cycle -> "fair-cycle" | `Stop -> "fair-stop")
        l.l_clause l.l_depth
        (if l.l_confirmed then ", replay-confirmed" else ", NOT confirmed by replay")
        l.l_reason (List.length l.l_stem)
        (Fd_event.pp_trace pp_out) l.l_stem (List.length l.l_cycle)
        (Fd_event.pp_trace pp_out) l.l_cycle)
    o.lassos;
  Format.fprintf fmt "@]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let sym_status_to_json s =
  let str x = "\"" ^ json_escape x ^ "\"" in
  match s with
  | Sym_off -> "{\"status\":\"off\"}"
  | Sym_quotient c ->
    Printf.sprintf
      "{\"status\":\"certified\",\"n\":%d,\"reps\":%d,\"perms\":%d,\"exhaustive\":%b,\"fields\":[%s]}"
      c.Symm.c_n c.Symm.c_states c.Symm.c_perms c.Symm.c_exhaustive
      (String.concat ","
         (List.map
            (fun (nm, cls) ->
              Printf.sprintf "{\"name\":%s,\"class\":%s}" (str nm)
                (str (match cls with `Indexed -> "indexed" | `Invariant -> "invariant")))
            c.Symm.c_fields))
  | Sym_breaking w ->
    Printf.sprintf
      "{\"status\":\"breaking\",\"kind\":%s,\"perm\":%s,\"state\":%d,\"field\":%s,\"task\":%s,\"detail\":%s}"
      (str
         (match w.Symm.w_kind with
         | `Signature -> "signature"
         | `Step -> "step"
         | `Enabled -> "enabled"
         | `Task -> "task"
         | `Probe -> "probe"
         | `Field -> "field"))
      (str w.Symm.w_perm) w.Symm.w_state
      (match w.Symm.w_field with None -> "null" | Some f -> str f)
      (match w.Symm.w_task with None -> "null" | Some t -> str t)
      (str w.Symm.w_detail)
  | Sym_fallback r -> Printf.sprintf "{\"status\":\"uncertified\",\"reason\":%s}" (str r)

let outcome_to_json ?(timings = []) ~pp_out o =
  let str s = "\"" ^ json_escape s ^ "\"" in
  let strs l = "[" ^ String.concat "," (List.map str l) ^ "]" in
  let violation v =
    Printf.sprintf
      "{\"clause\":%s,\"kind\":%s,\"depth\":%d,\"reason\":%s,\"confirmed\":%b,\"counterexample\":%s}"
      (str v.clause)
      (str (match v.kind with `Edge -> "edge" | `Judgement -> "judgement"))
      v.depth (str v.reason) v.confirmed
      (Counterexample.to_json ~pp_out v.counterexample)
  in
  let events l =
    "[" ^ String.concat "," (List.map (fun e -> str (Fmt.str "%a" (Fd_event.pp pp_out) e)) l) ^ "]"
  in
  let lasso l =
    Printf.sprintf
      "{\"clause\":%s,\"kind\":%s,\"depth\":%d,\"reason\":%s,\"confirmed\":%b,\"stem\":%s,\"cycle\":%s}"
      (str l.l_clause)
      (str (match l.l_kind with `Cycle -> "fair-cycle" | `Stop -> "fair-stop"))
      l.l_depth (str l.l_reason) l.l_confirmed (events l.l_stem) (events l.l_cycle)
  in
  (* The profile field appears only when timings were collected, and
     the sym field only when symmetry was requested, so default
     reports stay byte-identical across explorer choices and across
     this feature's introduction. *)
  let profile_field =
    match timings with
    | [] -> ""
    | ts ->
      Printf.sprintf ",\"profile\":{%s}"
        (String.concat ","
           (List.map (fun (k, dt) -> Printf.sprintf "%s:%.6f" (str k) dt) ts))
  in
  let sym_field =
    match o.sym with
    | Sym_off -> ""
    | s -> Printf.sprintf ",\"sym\":%s" (sym_status_to_json s)
  in
  Printf.sprintf
    "{\"verdict\":%s,\"proved\":%b,\"safety_proved\":%b,\"states\":%d,\"transitions\":%d,\"por\":%b,\"slept\":%d,\"cut\":%d,\"safety_clauses\":%s,\"liveness_clauses\":%s,\"liveness_proved\":%s,\"liveness_skipped\":%s,\"violations\":[%s],\"lassos\":[%s]%s%s}"
    (str (Space.verdict_string o.verdict))
    o.proved o.safety_proved o.states o.transitions o.por o.stats.Space.slept
    o.stats.Space.cut (strs o.safety_clauses) (strs o.liveness_clauses)
    (strs o.liveness_proved) (strs o.liveness_skipped)
    (String.concat "," (List.map violation o.violations))
    (String.concat "," (List.map lasso o.lassos))
    sym_field profile_field

let pp_parametric fmt p =
  Format.fprintf fmt "@[<v>parametric: %s"
    (match p.par_verdict with
    | Cutoff_candidate { n0; upto } ->
      Printf.sprintf "cutoff candidate at n0=%d (proved for n=%d..%d)" n0 n0 upto
    | Proved_upto n -> Printf.sprintf "proved up to n=%d" n
    | Refuted_at n -> Printf.sprintf "refuted at n=%d" n
    | Unverified r -> "unverified: " ^ r);
  (match p.par_sym with
  | Sym_off -> ()
  | s -> Format.fprintf fmt "@,symmetry: %a" pp_sym_status s);
  List.iter
    (fun pt ->
      Format.fprintf fmt "@,n=%d: %d orbits, %d transitions (%a)%s%s" pt.pt_n
        pt.pt_orbits pt.pt_transitions Space.pp_verdict pt.pt_verdict
        (match pt.pt_raw_states with
        | Some s -> Printf.sprintf ", unreduced %d states" s
        | None -> ", unreduced exceeds budget")
        (if pt.pt_violated <> [] then
           " VIOLATED: " ^ String.concat ", " pt.pt_violated
         else ""))
    p.par_points;
  Format.fprintf fmt "@]"

let parametric_to_json p =
  let str s = "\"" ^ json_escape s ^ "\"" in
  let point pt =
    Printf.sprintf
      "{\"n\":%d,\"orbits\":%d,\"transitions\":%d,\"verdict\":%s,\"proved\":%b,\"violated\":[%s],\"raw_states\":%s}"
      pt.pt_n pt.pt_orbits pt.pt_transitions
      (str (Space.verdict_string pt.pt_verdict))
      pt.pt_proved
      (String.concat "," (List.map str pt.pt_violated))
      (match pt.pt_raw_states with Some s -> string_of_int s | None -> "null")
  in
  let verdict =
    match p.par_verdict with
    | Cutoff_candidate { n0; upto } ->
      Printf.sprintf "{\"kind\":\"cutoff-candidate\",\"n0\":%d,\"upto\":%d}" n0 upto
    | Proved_upto n -> Printf.sprintf "{\"kind\":\"proved-upto\",\"n\":%d}" n
    | Refuted_at n -> Printf.sprintf "{\"kind\":\"refuted\",\"n\":%d}" n
    | Unverified r -> Printf.sprintf "{\"kind\":\"unverified\",\"reason\":%s}" (str r)
  in
  Printf.sprintf "{\"verdict\":%s,\"sym\":%s,\"points\":[%s]}" verdict
    (sym_status_to_json p.par_sym)
    (String.concat "," (List.map point p.par_points))
