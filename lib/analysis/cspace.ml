(* Compiled state-space exploration.

   Same BFS, same sleep-set reduction, same bookkeeping as
   [Space.explore] — but the hot loop runs over dense integer ids
   instead of boxed states, and (for compositions) the transition
   relation is defunctionalized into first-order step tables:

   - every component state is interned once ([Pack.interner], hash
     accelerated, exact equality authoritative), so a product state is
     a fixed-width packed key — one 32-bit little-endian id per
     component slot — deduplicated in O(1) by [Pack.keyset];
   - [Component.step] and [Component.enabled_of_task] are memoized per
     (component, state id, action id) / (component, state id, task),
     so after warmup a product transition is k table reads, a pack and
     one hash probe — no closure dispatch, no state traversal;
   - the POR commute diamond is computed on id tuples through the same
     tables.

   The result is decoded back to a boxed [Space.t] at the end and is
   structurally identical to [Space.explore] — same states in the same
   discovery order, same edges, parents, depths, verdict and stats —
   which [Pspace.agree] checks field for field in the differential
   tests.  The congruence argument is spelled out in DESIGN.md.

   Parallel mode ([jobs > 1], compositions) is round-based like
   [Pspace]: workers expand frontier states read-only against the
   frozen tables and ship packed successor keys; the sequential merge
   replays the exact [Space] pop body on the packets, recomputing the
   rare expansions that touched a table miss.  For plain automata at
   [jobs > 1] the boxed [Pspace] explorer is already the right tool
   (there is no packed representation to exploit), so [explore]
   delegates to it. *)

open Afd_ioa

let now () = Unix.gettimeofday ()

(* --- the compiled machine: everything the core BFS needs, in ids ---

   States and actions are dense ids; [step]/[enabled] return codes:
   [-1] blocked/disabled, [-2] fresh successor parked inside the
   machine (admitted — appended as state id [n] — by [admit]), [>= 0]
   the id of an already-discovered state (or an action id for
   [enabled]). *)
type ('s, 'a) machine = {
  ntasks : int;
  task_names : string array;
  canon : int array; (* task -> first task index with the same name *)
  probe_ids : int array;
  start_s : 's;
  find_state : 's -> int;
  add_state : 's -> int;
  state_value : int -> 's;
  act_value : int -> 'a;
  enabled : int -> int -> int; (* state id, task -> act id / -1 *)
  step : int -> int -> int; (* state id, act id -> code *)
  admit : unit -> int;
  commute : int -> int -> int -> int -> int -> bool;
      (* state id, task u, act u, task t, act t *)
}

(* One frontier state's resolved expansion: the core consumes these,
   never calling the machine directly, so the sequential pass (lazy,
   computed in place) and the parallel merge (worker packets) share one
   pop body.  [x_step] takes the task index and its act id; a [-2]
   result parks the candidate for [x_admit]. *)
type expansion = {
  x_probe : int -> int;
  x_mact : int -> int;
  x_step : int -> int -> int;
  x_admit : unit -> int;
  x_commute : int -> int -> int -> int -> bool;
}

let direct m i =
  { x_probe = (fun p -> m.step i m.probe_ids.(p));
    x_mact = (fun t -> m.enabled i t);
    x_step = (fun _t a -> m.step i a);
    x_admit = m.admit;
    x_commute = (fun u au t at -> m.commute i u au t at);
  }

(* Bitsets over canonical task ids, 62 usable bits per word: done-move
   and sleep sets are flat int words at stride [nwords] per state,
   replacing Space's name-list membership scans. *)
let bits_per_word = 62

(* --- the core BFS, shared by every backend ---

   A literal replay of [Space.explore]'s loop over ids: same seed
   handling, same probe-once-per-first-expansion, same move order, same
   sleep-set algebra, same budget cuts — so the decoded result is
   structurally identical.  Rounds drain the whole queue (frontier
   FIFO order is exactly the sequential queue order; [Pspace] relies on
   the same fact). *)
let run_core (type s a) ~por ~(probe : (s, a) Probe.t) ?profile
    (m : (s, a) machine)
    ~(expansions :
       round:int array -> expanded:(int -> bool) -> int -> int -> expansion) ()
    : (s, a) Space.t =
  let max_states = probe.Probe.max_states in
  let ntasks = m.ntasks in
  let nwords = max 1 ((ntasks + bits_per_word - 1) / bits_per_word) in
  let nprobe = Array.length m.probe_ids in
  let parent_s = Pack.ints () and parent_a = Pack.ints () in
  let depth = Pack.ints () in
  let flags = Pack.ints () in (* bit 0 queued, bit 1 expanded *)
  let done_w = Pack.ints () and sleep_w = Pack.ints () in
  let esrc = Pack.ints () and edst = Pack.ints () in
  let eact = Pack.ints () and etask = Pack.ints () in
  let slept = ref 0 and cut = ref 0 and dup_seeds = ref 0 in
  let n = ref 0 in
  let queue = Queue.create () in
  let zero = Array.make nwords 0 in
  let sl = Array.make nwords 0 in
  let move_act = Array.make (max 1 ntasks) (-1) in
  let first_en = Array.make (max 1 ntasks) (-1) in
  let queued i = Pack.ints_get flags i land 1 <> 0 in
  let set_queued i b =
    let f = Pack.ints_get flags i in
    Pack.ints_set flags i (if b then f lor 1 else f land lnot 1)
  in
  let expanded i = Pack.ints_get flags i land 2 <> 0 in
  let set_expanded i = Pack.ints_set flags i (Pack.ints_get flags i lor 2) in
  let test_bit a i b =
    Pack.ints_get a ((i * nwords) + (b / bits_per_word))
    land (1 lsl (b mod bits_per_word))
    <> 0
  in
  let set_bit a i b =
    let w = (i * nwords) + (b / bits_per_word) in
    Pack.ints_set a w (Pack.ints_get a w lor (1 lsl (b mod bits_per_word)))
  in
  let record_edge src dst act task =
    Pack.ints_push esrc src;
    Pack.ints_push edst dst;
    Pack.ints_push eact act;
    Pack.ints_push etask task
  in
  (* Admit the machine's parked (or given) state and mirror Space's
     [add_state] bookkeeping. *)
  let admit_state adm ~ps ~pa ~d ~sl_words =
    let j = adm () in
    Pack.ints_push parent_s ps;
    Pack.ints_push parent_a pa;
    Pack.ints_push depth d;
    Pack.ints_push flags 1;
    for w = 0 to nwords - 1 do
      Pack.ints_push done_w 0;
      Pack.ints_push sleep_w sl_words.(w)
    done;
    incr n;
    Queue.add j queue;
    j
  in
  (* Space.explore's [take] with the step already resolved to a code. *)
  let take i act_id task_idx code adm sl_words =
    if code <> -1 then begin
      if code >= 0 then begin
        let j = code in
        record_edge i j act_id task_idx;
        if por then begin
          let changed = ref false in
          for w = 0 to nwords - 1 do
            let old = Pack.ints_get sleep_w ((j * nwords) + w) in
            let inter = old land sl_words.(w) in
            if inter <> old then begin
              changed := true;
              Pack.ints_set sleep_w ((j * nwords) + w) inter
            end
          done;
          if !changed && not (queued j) then begin
            set_queued j true;
            Queue.add j queue
          end
        end
      end
      else if !n < max_states then begin
        let d_i = Pack.ints_get depth i in
        let d = if d_i = max_int then max_int else d_i + 1 in
        let j = admit_state adm ~ps:i ~pa:act_id ~d ~sl_words in
        record_edge i j act_id task_idx
      end
      else incr cut
    end
  in
  if max_states > 0 then
    ignore
      (admit_state (fun () -> m.add_state m.start_s) ~ps:(-1) ~pa:(-1) ~d:0
         ~sl_words:zero)
  else incr cut;
  List.iter
    (fun s ->
      if m.find_state s >= 0 then incr dup_seeds
      else if !n < max_states then
        ignore
          (admit_state (fun () -> m.add_state s) ~ps:(-1) ~pa:(-1) ~d:max_int
             ~sl_words:zero)
      else incr cut)
    probe.Probe.seed_states;
  let t_workers = ref 0.0 and t_merge = ref 0.0 in
  while not (Queue.is_empty queue) do
    let mlen = Queue.length queue in
    let round = Array.init mlen (fun _ -> Queue.pop queue) in
    let t0 = now () in
    let get = expansions ~round ~expanded in
    let t1 = now () in
    t_workers := !t_workers +. (t1 -. t0);
    Array.iteri
      (fun r i ->
        let x = get r i in
        set_queued i false;
        if not (expanded i) then begin
          set_expanded i;
          for p = 0 to nprobe - 1 do
            take i m.probe_ids.(p) (-1) (x.x_probe p) x.x_admit zero
          done
        end;
        for t = 0 to ntasks - 1 do
          move_act.(t) <- x.x_mact t
        done;
        if por then begin
          Array.fill first_en 0 (Array.length first_en) (-1);
          for t = ntasks - 1 downto 0 do
            if move_act.(t) >= 0 then first_en.(m.canon.(t)) <- t
          done
        end;
        for t = 0 to ntasks - 1 do
          let a = move_act.(t) in
          if a >= 0 then begin
            let cb = m.canon.(t) in
            if not (test_bit done_w i cb) then begin
              if por && test_bit sleep_w i cb then incr slept
              else begin
                if por then begin
                  for w = 0 to nwords - 1 do
                    sl.(w) <- 0;
                    let cand =
                      Pack.ints_get sleep_w ((i * nwords) + w)
                      lor Pack.ints_get done_w ((i * nwords) + w)
                    in
                    if cand <> 0 then
                      for b = 0 to bits_per_word - 1 do
                        if cand land (1 lsl b) <> 0 then begin
                          let v = first_en.((w * bits_per_word) + b) in
                          if v >= 0 && x.x_commute v move_act.(v) t a then
                            sl.(w) <- sl.(w) lor (1 lsl b)
                        end
                      done
                  done
                end;
                set_bit done_w i cb;
                take i a t (x.x_step t a) x.x_admit (if por then sl else zero)
              end
            end
          end
        done)
      round;
    t_merge := !t_merge +. (now () -. t1)
  done;
  let t2 = now () in
  let transitions = Pack.ints_len esrc in
  let result =
    { Space.states = Array.init !n m.state_value;
      edges =
        Array.init transitions (fun e ->
            { Space.src = Pack.ints_get esrc e;
              dst = Pack.ints_get edst e;
              act = m.act_value (Pack.ints_get eact e);
              task =
                (let t = Pack.ints_get etask e in
                 if t < 0 then None else Some m.task_names.(t));
            });
      parent =
        Array.init !n (fun i ->
            let ps = Pack.ints_get parent_s i in
            if ps < 0 then None
            else Some (ps, m.act_value (Pack.ints_get parent_a i)));
      depth = Array.init !n (Pack.ints_get depth);
      verdict =
        (if !cut = 0 then Space.Exhausted else Space.Truncated max_states);
      por;
      stats =
        { Space.transitions; slept = !slept; cut = !cut; dup_seeds = !dup_seeds };
    }
  in
  (match profile with
  | None -> ()
  | Some f ->
    f "workers" !t_workers;
    f "merge" !t_merge;
    f "decode" (now () -. t2));
  result

let canon_of names =
  Array.init (Array.length names) (fun t ->
      let rec go u = if String.equal names.(u) names.(t) then u else go (u + 1) in
      go 0)

(* --- generic backend: any automaton, whole states interned ---

   Ids come from one conflict-checked interner keyed by the probe's own
   hash and equality — the exact pairing Space's bucket table uses, so
   lookups resolve identically (at worst, a [None] hash degrades to one
   linear cluster, Space's single bucket).  Actions are appended per
   occurrence (no interning: a plain automaton's action values need no
   table key), so edge and parent actions are the very values Space
   would store. *)
let machine_of_automaton (type s a) (aut : (s, a) Automaton.t)
    (probe : (s, a) Probe.t) : (s, a) machine =
  let hash =
    match probe.Probe.hash_state with Some h -> h | None -> fun _ -> 0
  in
  let inter = Pack.interner ~hash ~equal:probe.Probe.equal_state () in
  let tasks = Array.of_list aut.Automaton.tasks in
  let ntasks = Array.length tasks in
  let task_names = Array.map (fun tk -> tk.Automaton.task_name) tasks in
  let acts = ref [||] and alen = ref 0 in
  let push_act a =
    let cap = Array.length !acts in
    if !alen >= cap then begin
      let b = Array.make (max 16 (2 * cap)) a in
      Array.blit !acts 0 b 0 cap;
      acts := b
    end;
    !acts.(!alen) <- a;
    incr alen;
    !alen - 1
  in
  let probe_ids = Array.of_list (List.map push_act probe.Probe.actions) in
  let pending = ref aut.Automaton.start in
  { ntasks;
    task_names;
    canon = canon_of task_names;
    probe_ids;
    start_s = aut.Automaton.start;
    find_state = (fun s -> Pack.find inter s);
    add_state = (fun s -> Pack.intern inter s);
    state_value = (fun i -> Pack.value inter i);
    act_value = (fun a -> !acts.(a));
    enabled =
      (fun i t ->
        match tasks.(t).Automaton.enabled (Pack.value inter i) with
        | None -> -1
        | Some a -> push_act a);
    step =
      (fun i a ->
        match aut.Automaton.step (Pack.value inter i) !acts.(a) with
        | None -> -1
        | Some s' ->
          let j = Pack.find inter s' in
          if j >= 0 then j
          else begin
            pending := s';
            -2
          end);
    admit = (fun () -> Pack.intern inter !pending);
    commute =
      (fun i u au t at ->
        Space.commute aut probe (Pack.value inter i)
          (tasks.(u), !acts.(au))
          (tasks.(t), !acts.(at)));
  }

(* --- composition backend: packed product states, step tables --- *)

exception Ro_miss

(* A worker-resolved expansion: successor codes against the frozen key
   table ([-2] = fresh, key bytes and hash shipped alongside), enabled
   act ids per task, and the POR commute matrix over task pairs.
   Workers bail out ([None]) on any table miss; the merge replays those
   states through the machine, which fills the tables. *)
type cpacket = {
  c_probe : int array; (* [||] once expanded *)
  c_pkeys : Bytes.t;
  c_phash : int array;
  c_mact : int array;
  c_step : int array;
  c_skeys : Bytes.t;
  c_shash : int array;
  c_comm : Bytes.t; (* ntasks * ntasks, empty with POR off *)
}

type ('s, 'a) comp_backend = {
  cb_machine : ('s, 'a) machine;
  cb_ro : por:bool -> expanded:bool -> int -> cpacket option;
  cb_of_packet : cpacket -> expansion;
}

(* Step-table keys pack (component state id, action id) into one int:
   action ids get 22 bits (far beyond any catalog subject's distinct
   structural actions); beyond that the table is bypassed, never
   wrong. *)
let act_key_bits = 22
let act_key_limit = 1 lsl act_key_bits

let backend_of_composition (type a) (comp : a Composition.t)
    (probe : (a Composition.state, a) Probe.t) :
    (a Composition.state, a) comp_backend =
  let comps = Composition.components comp in
  let k = Array.length comps in
  let tids = Composition.tasks_array comp in
  let ntasks = Array.length tids in
  let task_names = Array.map Composition.task_full_name tids in
  let tcs = Array.map Array.length (Composition.comp_task_indices comp) in
  let cinter =
    Array.map
      (fun _ ->
        Pack.interner ~hash:Component.state_hash ~equal:Component.equal_state ())
      comps
  in
  let acts = Pack.interner ~equal:Pack.total_equal () in
  let probe_ids =
    Array.of_list (List.map (Pack.intern acts) probe.Probe.actions)
  in
  let width = k * Pack.id_bytes in
  let keys = Pack.keyset ~width in
  let scratch = Bytes.create width in
  let pending_h = ref 0 in
  let sid_comp sid c = Pack.key_id keys sid c in
  (* Decode-once cache: the machine is driven state by state (many
     probes, moves and commutes against one [sid] in a row), so the
     merge-side callers read the packed component ids through a
     one-entry cache instead of re-slicing the arena per call.  Workers
     never touch it — [cb_ro] decodes into its own locals. *)
  let cur_sid = ref (-1) in
  let cur_ids = Array.make (max 1 k) 0 in
  let ids_of sid =
    if !cur_sid <> sid then begin
      for c = 0 to k - 1 do
        cur_ids.(c) <- sid_comp sid c
      done;
      cur_sid := sid
    end;
    cur_ids
  in
  let smemo = Array.init k (fun _ -> Pack.itab ()) in
  (* Probe actions are interned first, so their ids are dense in
     [0, ncols).  They are also the hot, high-fan-out ones — every
     product transition steps them — so each gets a per-component
     dense successor column indexed by component state id (-2 =
     unfilled), turning the per-transition hashed memo probe into an
     array read.  Structural actions (forced crashes etc., interned
     later) keep the hashed [smemo] path.  This is the "flood gap"
     fix of ROADMAP item 2: flood's merge was dominated by step-memo
     lookups. *)
  let ncols = Array.fold_left (fun m a -> max m (a + 1)) 0 probe_ids in
  let cols = Array.init k (fun _ -> Array.init ncols (fun _ -> Pack.ints ())) in
  let comp_step_raw c csid aid =
    let inst = Pack.value cinter.(c) csid in
    match Component.step inst (Pack.value acts aid) with
    | None -> -1
    | Some inst' -> if inst' == inst then csid else Pack.intern cinter.(c) inst'
  in
  let comp_step c csid aid =
    if aid < ncols then begin
      let col = cols.(c).(aid) in
      while Pack.ints_len col <= csid do
        Pack.ints_push col (-2)
      done;
      let v = Pack.ints_get col csid in
      if v <> -2 then v
      else begin
        let v = comp_step_raw c csid aid in
        Pack.ints_set col csid v;
        v
      end
    end
    else if aid < act_key_limit then begin
      let key = (csid lsl act_key_bits) lor aid in
      let v = Pack.itab_find smemo.(c) key in
      if v <> Pack.itab_absent then v
      else begin
        let v = comp_step_raw c csid aid in
        Pack.itab_add smemo.(c) key v;
        v
      end
    end
    else comp_step_raw c csid aid
  in
  let en = Array.map (fun _ -> Pack.ints ()) comps in
  let en_get c csid ti =
    let stride = tcs.(c) in
    let idx = (csid * stride) + ti in
    while Pack.ints_len en.(c) <= idx do
      Pack.ints_push en.(c) (-2)
    done;
    let v = Pack.ints_get en.(c) idx in
    if v <> -2 then v
    else begin
      let v =
        match Component.enabled_of_task (Pack.value cinter.(c) csid) ti with
        | None -> -1
        | Some a -> Pack.intern acts a
      in
      Pack.ints_set en.(c) idx v;
      v
    end
  in
  (* Per-action participation: signatures are state-independent, and
     [Component.step] hands back the instance itself (physically) for
     actions outside a component's signature — so a non-participant is
     an identity step that can never block, and the product step only
     needs to consult the participants.  Catalog actions touch 2-3 of
     the k components, so this cuts the per-transition table lookups by
     ~k/3.  Computed lazily per action id, on the merge side only
     (workers read the finished entries, [Ro_miss] otherwise). *)
  let insts0 = Composition.start comp in
  let parts = ref (Array.make 16 None) in
  let parts_of aid =
    let cap = Array.length !parts in
    if aid >= cap then begin
      let b = Array.make (max (2 * cap) (aid + 1)) None in
      Array.blit !parts 0 b 0 cap;
      parts := b
    end;
    match (!parts).(aid) with
    | Some a -> a
    | None ->
      let v = Pack.value acts aid in
      let buf = ref [] in
      for c = k - 1 downto 0 do
        if Component.inst_kind_of insts0.(c) v <> None then buf := c :: !buf
      done;
      let a = Array.of_list !buf in
      (!parts).(aid) <- Some a;
      a
  in
  (* Step the whole product on id tuples; true iff unblocked.  [dst]
     must hold a copy of [src]'s tuple for the non-participating slots
     — callers either blit first or step in place. *)
  let step_from src aid dst =
    let ps = parts_of aid in
    if dst != src then Array.blit src 0 dst 0 k;
    let ok = ref true in
    let i = ref 0 in
    let np = Array.length ps in
    while !ok && !i < np do
      let c = Array.unsafe_get ps !i in
      let succ = comp_step c (Array.unsafe_get src c) aid in
      if succ < 0 then ok := false else Array.unsafe_set dst c succ;
      incr i
    done;
    !ok
  in
  let step_dst = Array.make (max 1 k) 0 in
  let s1a = Array.make (max 1 k) 0
  and s2a = Array.make (max 1 k) 0
  and s12a = Array.make (max 1 k) 0
  and s21a = Array.make (max 1 k) 0 in
  let pack_boxed (s : a Composition.state) =
    for c = 0 to k - 1 do
      Pack.set_id scratch (c * Pack.id_bytes) (Pack.intern cinter.(c) s.(c))
    done;
    Pack.key_hash keys scratch
  in
  let state_value sid =
    Array.init k (fun c -> Pack.value cinter.(c) (sid_comp sid c))
  in
  let machine =
    { ntasks;
      task_names;
      canon = canon_of task_names;
      probe_ids;
      start_s = Composition.start comp;
      find_state =
        (fun s ->
          let h = pack_boxed s in
          Pack.find_key keys scratch h);
      add_state =
        (fun s ->
          let h = pack_boxed s in
          Pack.add_key keys scratch h);
      state_value;
      act_value = (fun a -> Pack.value acts a);
      enabled =
        (fun sid t ->
          let tid = tids.(t) in
          en_get tid.Composition.comp_idx
            (ids_of sid).(tid.Composition.comp_idx)
            tid.Composition.task_idx);
      step =
        (fun sid aid ->
          let ids = ids_of sid in
          if step_from ids aid step_dst then begin
            let ps = parts_of aid in
            (* self-loop shortcut: if no participant moved, the packed
               successor is byte-identical to the source key, so the
               dedup lookup can only answer [sid] — skip it.  Probe
               actions are input-enabled no-ops in most states, so this
               shortcut fires constantly. *)
            let changed = ref false in
            for i = 0 to Array.length ps - 1 do
              let c = Array.unsafe_get ps i in
              if Array.unsafe_get step_dst c <> Array.unsafe_get ids c then
                changed := true
            done;
            if not !changed then sid
            else begin
              Pack.key_get keys sid scratch;
              for i = 0 to Array.length ps - 1 do
                let c = Array.unsafe_get ps i in
                Pack.set_id scratch (c * Pack.id_bytes) step_dst.(c)
              done;
              let h = Pack.key_hash keys scratch in
              let j = Pack.find_key keys scratch h in
              if j >= 0 then j
              else begin
                pending_h := h;
                -2
              end
            end
          end
          else -1);
      admit = (fun () -> Pack.add_key keys scratch !pending_h);
      commute =
        (fun sid u au t at ->
          let ids = ids_of sid in
          if step_from ids at s1a && step_from ids au s2a then begin
            let tu = tids.(u) and tt = tids.(t) in
            let au' =
              en_get tu.Composition.comp_idx
                s1a.(tu.Composition.comp_idx)
                tu.Composition.task_idx
            and at' =
              en_get tt.Composition.comp_idx
                s2a.(tt.Composition.comp_idx)
                tt.Composition.task_idx
            in
            au' >= 0 && at' >= 0
            && probe.Probe.equal_action (Pack.value acts au') (Pack.value acts au)
            && probe.Probe.equal_action (Pack.value acts at') (Pack.value acts at)
            && step_from s1a au' s12a
            && step_from s2a at' s21a
            &&
            let eq = ref true in
            for c = 0 to k - 1 do
              if s12a.(c) <> s21a.(c) then eq := false
            done;
            !eq
          end
          else false);
    }
  in
  (* Boxed commute for workers: pure, table-free, identical to
     [Space.commute] on the flattened automaton. *)
  let commute_boxed st tid_u au_v tid_t at_v =
    match (Composition.step comp st at_v, Composition.step comp st au_v) with
    | Some s1, Some s2 -> (
      match (Composition.enabled comp s1 tid_u, Composition.enabled comp s2 tid_t)
      with
      | Some au', Some at'
        when probe.Probe.equal_action au' au_v
             && probe.Probe.equal_action at' at_v -> (
        match (Composition.step comp s1 au', Composition.step comp s2 at') with
        | Some s12, Some s21 -> probe.Probe.equal_state s12 s21
        | _ -> false)
      | _ -> false)
    | _ -> false
  in
  (* Worker expansion: read-only against the frozen tables.  Any miss
     aborts the packet; the merge replays that state sequentially. *)
  let cb_ro ~por ~expanded sid =
    let ro_comp_step c csid aid =
      if aid < ncols then begin
        let col = cols.(c).(aid) in
        if csid >= Pack.ints_len col then raise Ro_miss
        else begin
          let v = Pack.ints_get col csid in
          if v = -2 then raise Ro_miss else v
        end
      end
      else if aid >= act_key_limit then raise Ro_miss
      else begin
        let v = Pack.itab_find smemo.(c) ((csid lsl act_key_bits) lor aid) in
        if v = Pack.itab_absent then raise Ro_miss else v
      end
    in
    let ro_en c csid ti =
      let idx = (csid * tcs.(c)) + ti in
      if idx >= Pack.ints_len en.(c) then raise Ro_miss
      else begin
        let v = Pack.ints_get en.(c) idx in
        if v = -2 then raise Ro_miss else v
      end
    in
    let ro_parts aid =
      let p = !parts in
      if aid < Array.length p then
        match Array.unsafe_get p aid with
        | Some a -> a
        | None -> raise Ro_miss
      else raise Ro_miss
    in
    let buf = Bytes.create width in
    let ro_step aid keysb off =
      let ps = ro_parts aid in
      Pack.key_get keys sid buf;
      let ok = ref true and changed = ref false in
      let i = ref 0 in
      let np = Array.length ps in
      while !ok && !i < np do
        let c = Array.unsafe_get ps !i in
        let cur = sid_comp sid c in
        let succ = ro_comp_step c cur aid in
        if succ < 0 then ok := false
        else begin
          if succ <> cur then changed := true;
          Pack.set_id buf (c * Pack.id_bytes) succ
        end;
        incr i
      done;
      if not !ok then (-1, 0)
      else if not !changed then
        (* self-loop: the successor key is the source's — dedup can
           only answer [sid] (the hash is unused on resolved codes) *)
        (sid, 0)
      else begin
        let h = Pack.hash_slice buf 0 width in
        let j = Pack.find_key keys buf h in
        if j >= 0 then (j, h)
        else begin
          Bytes.blit buf 0 keysb off width;
          (-2, h)
        end
      end
    in
    try
      let nprobe = Array.length probe_ids in
      let c_probe, c_pkeys, c_phash =
        if expanded then ([||], Bytes.empty, [||])
        else begin
          let code = Array.make nprobe (-1) in
          let kb = Bytes.create (nprobe * width) in
          let hs = Array.make nprobe 0 in
          for p = 0 to nprobe - 1 do
            let c, h = ro_step probe_ids.(p) kb (p * width) in
            code.(p) <- c;
            hs.(p) <- h
          done;
          (code, kb, hs)
        end
      in
      let c_mact = Array.make (max 1 ntasks) (-1) in
      for t = 0 to ntasks - 1 do
        let tid = tids.(t) in
        c_mact.(t) <-
          ro_en tid.Composition.comp_idx
            (sid_comp sid tid.Composition.comp_idx)
            tid.Composition.task_idx
      done;
      let c_step = Array.make (max 1 ntasks) (-1) in
      let c_skeys = Bytes.create (ntasks * width) in
      let c_shash = Array.make (max 1 ntasks) 0 in
      for t = 0 to ntasks - 1 do
        if c_mact.(t) >= 0 then begin
          let c, h = ro_step c_mact.(t) c_skeys (t * width) in
          c_step.(t) <- c;
          c_shash.(t) <- h
        end
      done;
      let c_comm =
        if not por then Bytes.empty
        else begin
          let b = Bytes.make (ntasks * ntasks) '\000' in
          let st = state_value sid in
          for u = 0 to ntasks - 1 do
            if c_mact.(u) >= 0 then
              for t = 0 to ntasks - 1 do
                if c_mact.(t) >= 0 then
                  if
                    commute_boxed st tids.(u)
                      (Pack.value acts c_mact.(u))
                      tids.(t)
                      (Pack.value acts c_mact.(t))
                  then Bytes.set b ((u * ntasks) + t) '\001'
              done
          done;
          b
        end
      in
      Some { c_probe; c_pkeys; c_phash; c_mact; c_step; c_skeys; c_shash; c_comm }
    with Ro_miss -> None
  in
  (* Merge-side view of a packet: fresh codes are re-probed against the
     now-current key table (this round's admissions included) with the
     candidate parked in the machine scratch, so [x_admit] is the
     machine's own admit. *)
  let cb_of_packet p =
    let repro keysb off h =
      Bytes.blit keysb off scratch 0 width;
      let j = Pack.find_key keys scratch h in
      if j >= 0 then j
      else begin
        pending_h := h;
        -2
      end
    in
    { x_probe =
        (fun pi ->
          let c = p.c_probe.(pi) in
          if c <> -2 then c else repro p.c_pkeys (pi * width) p.c_phash.(pi));
      x_mact = (fun t -> p.c_mact.(t));
      x_step =
        (fun t _a ->
          let c = p.c_step.(t) in
          if c <> -2 then c else repro p.c_skeys (t * width) p.c_shash.(t));
      x_admit = machine.admit;
      x_commute =
        (fun u _au t _at -> Bytes.get p.c_comm ((u * ntasks) + t) = '\001');
    }
  in
  { cb_machine = machine; cb_ro; cb_of_packet }

(* --- entry points --- *)

let sequential m ~round:_ ~expanded:_ _r i = direct m i

let explore ?(por = false) ?symmetry ?(jobs = 1) ?profile aut probe =
  if jobs > 1 then Pspace.explore ~por ?symmetry ~jobs aut probe
  else
    (* Quotient before interning: representatives are interned, so the
       dense id space is the orbit quotient. *)
    let aut, probe =
      match symmetry with
      | None -> (aut, probe)
      | Some canon -> Space.quotient canon aut probe
    in
    let m = machine_of_automaton aut probe in
    run_core ~por ~probe ?profile m ~expansions:(sequential m) ()

let explore_composition_packed ~por ~jobs ?profile comp probe =
  let b = backend_of_composition comp probe in
  let m = b.cb_machine in
  if jobs <= 1 then run_core ~por ~probe ?profile m ~expansions:(sequential m) ()
  else
    Afd_runner.Pool.with_pool ~jobs (fun pool ->
        let expansions ~round ~expanded =
          let inputs =
            Array.map (fun i -> (i, expanded i)) round
          in
          let packets =
            Afd_runner.Pool.map_pool pool
              (fun (i, exp) -> b.cb_ro ~por ~expanded:exp i)
              inputs
          in
          fun r i ->
            match packets.(r) with
            | Some p -> b.cb_of_packet p
            | None -> direct m i
        in
        run_core ~por ~probe ?profile m ~expansions ())

let explore_composition ?(por = false) ?symmetry ?(jobs = 1) ?profile comp probe =
  match symmetry with
  | Some canon ->
    (* A global permutation cuts across the per-component factorization
       the packed tables rely on (component states are interned
       independently, and canonization mixes slots), so the quotient
       runs on the flattened automaton through the generic backend —
       same Space.t structure, same verdicts. *)
    explore ~por ~symmetry:canon ~jobs ?profile (Composition.as_automaton comp) probe
  | None -> explore_composition_packed ~por ~jobs ?profile comp probe
