(** Fairness-aware liveness analysis over an explored state space.

    {!Space} records the full labelled edge relation; this module is
    the static pass on top of it: a Tarjan condensation of the
    {e task-labelled} subgraph (probed environment edges do not count —
    the scheduler only drives tasks), decorated with the weak-fairness
    obligations the composition's task structure induces.  An infinite
    execution of a finite graph eventually stays inside one SCC, and
    the IOA fairness condition (Section 2.4: every fair task fires
    infinitely often or is disabled infinitely often) relativizes to
    that SCC: a fair infinite suffix exists through a state iff its SCC
    has an internal edge and, for every fair task, either an internal
    edge fired by that task or a member state where it is disabled.
    Dually, a fair {e finite} execution may end exactly in a state
    where no fair task is enabled (a {e fair stop} — unfair tasks such
    as the crash automaton's need never fire, Section 4.4).

    {!Mc} uses these two predicates to prove or refute [Stable]
    (eventually) clauses, and {!val-cycle_actions} rebuilds a concrete
    fair cycle — the loop of a lasso counterexample — by stitching
    BFS paths through one witness waypoint per fair task.

    Soundness vs completeness under incomplete graphs: every SCC,
    internal edge and obligation {e witness} is a positive fact about
    real transitions, so cycles found on a truncated or sleep-set
    reduced graph are real; but absence claims ("no fair cycle", "this
    SCC is terminal") require an [Exhausted], unreduced exploration —
    {!Mc} only {e proves} under that verdict. *)

type scc = {
  id : int;  (** Tarjan order: children before parents (reverse topological) *)
  members : int list;  (** state indices, ascending *)
  internal : int list;
      (** indices into {!Space.t}[.edges] of intra-SCC task-labelled
          edges; non-empty iff an execution can cycle here *)
  terminal : bool;
      (** no task-labelled edge leaves the SCC: once entered, the
          scheduler can never drive the system out *)
  unmet : string list;
      (** fair tasks with neither an internal edge firing them nor a
          member state disabling them: no infinite stay in this SCC is
          weakly fair to these tasks *)
  disabled_witness : (string * int) list;
      (** per fair task, a member state where it is disabled (if any) —
          the waypoint {!val-cycle_actions} routes through when the SCC
          has no internal edge firing that task *)
  fair_stops : int list;
      (** members where no fair task is enabled: a fair execution may
          end there *)
}

type t = {
  scc_of : int array;  (** state index -> SCC id *)
  sccs : scc array;  (** indexed by SCC id *)
  fair_tasks : string list;  (** names of the automaton's fair tasks *)
}

val analyze : ('s, 'a) Afd_ioa.Automaton.t -> ('s, 'a) Space.t -> t
(** Condense the task-labelled subgraph of the exploration (iterative
    Tarjan — no recursion, safe at 10^5 states) and compute each SCC's
    fairness obligations from the automaton's task structure.  The
    automaton must be the one the space was explored from (task
    enabledness is re-evaluated on the stored states). *)

val fair_cycle_through : t -> int -> bool
(** Does a weakly fair infinite execution exist that visits state [i]
    infinitely often?  True iff [i]'s SCC has an internal edge and no
    unmet obligation. *)

val fair_stop_at : t -> int -> bool
(** May a fair execution end in state [i]?  True iff no fair task is
    enabled there (pending unfair tasks — crashes — need never fire). *)

val cycle_actions : ('s, 'a) Space.t -> t -> int -> 'a list
(** A concrete fair cycle through state [i], as the action sequence of
    a closed walk [i -> ... -> i] over intra-SCC task edges: for every
    fair task the walk either fires it or visits a state where it is
    disabled, so repeating the walk forever is a weakly fair suffix.
    Built by BFS-stitching through one witness waypoint per task.
    Raises [Invalid_argument] unless {!fair_cycle_through} holds. *)

val fired_actions : ('s, 'a) Space.t -> equal:('a -> 'a -> bool) -> 'a list -> bool array
(** For each candidate action, whether any edge of the exploration
    fires it — one pass over the edge array with early exit, shared by
    the [dead-transition] rule. *)
