(** A lint rule: one mechanically checkable well-formedness side
    condition, tied to the paper section that imposes it.

    Rules check a {!Subject.t}, so all rules on one subject share the
    same memoized state-space exploration (and its completeness
    verdict) instead of re-exploring per rule. *)

type t = {
  id : string;  (** stable kebab-case identifier, e.g. ["input-enabled"] *)
  severity : Report.severity;
  doc : string;  (** one-line description for [--list-rules] and docs *)
  paper : string;  (** paper section whose side condition this enforces *)
  check : Subject.t -> Report.finding list;
}

val find : t list -> string -> t option
(** Look a rule up by [id]. *)
