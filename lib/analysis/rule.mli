(** A lint rule: one mechanically checkable well-formedness side
    condition, tied to the paper section that imposes it. *)

type t = {
  id : string;  (** stable kebab-case identifier, e.g. ["input-enabled"] *)
  severity : Report.severity;
  doc : string;  (** one-line description for [--list-rules] and docs *)
  paper : string;  (** paper section whose side condition this enforces *)
  check : origin:string -> Registry.entry -> Report.finding list;
}

val find : t list -> string -> t option
(** Look a rule up by [id]. *)
