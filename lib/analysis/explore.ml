open Afd_ioa

(* Historical list-based seen-set: O(n) membership scan per push, kept
   as the reference implementation for the Space differential tests and
   the hashed-vs-list bench row.  Semantics (visit order included) are
   what [Space.explore ~por:false] reproduces. *)
let list_based aut probe =
  let seen = ref [] and count = ref 0 in
  let mem s = List.exists (probe.Probe.equal_state s) !seen in
  let queue = Queue.create () in
  let push s =
    if !count < probe.Probe.max_states && not (mem s) then begin
      seen := s :: !seen;
      incr count;
      Queue.add s queue
    end
  in
  push aut.Automaton.start;
  List.iter push probe.Probe.seed_states;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let step_all acts =
      List.iter
        (fun act ->
          match aut.Automaton.step s act with Some s' -> push s' | None -> ())
        acts
    in
    step_all probe.Probe.actions;
    step_all (Automaton.enabled_actions aut s)
  done;
  List.rev !seen

let reachable aut probe = Space.reachable (Space.explore ~por:false aut probe)
