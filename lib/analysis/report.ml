type severity = Error | Warning | Info

let pp_severity fmt (s : severity) =
  Format.pp_print_string fmt
    (match s with Error -> "error" | Warning -> "warning" | Info -> "info")

let severity_rank (s : severity) =
  match s with Error -> 2 | Warning -> 1 | Info -> 0

type subject = {
  name : string;
  origin : string;
  component : string option;
  task : string option;
  state : int option;
}

let subject ?component ?task ?state ~origin name =
  { name; origin; component; task; state }

type finding = {
  rule : string;
  severity : severity;
  where : subject;
  message : string;
}

type exploration = {
  explored : string;
  exp_origin : string;
  states : int;
  transitions : int;
  verdict : string;
  exhaustive : bool;
  por : bool;
  slept : int;
}

type t = {
  findings : finding list;
  rules_run : int;
  subjects_checked : int;
  explorations : exploration list;
}

let compare_finding f1 f2 =
  match compare (severity_rank f2.severity) (severity_rank f1.severity) with
  | 0 -> (
    match String.compare f1.where.name f2.where.name with
    | 0 -> String.compare f1.rule f2.rule
    | c -> c)
  | c -> c

let make ?(explorations = []) ~rules_run ~subjects_checked findings =
  { findings = List.stable_sort compare_finding findings;
    rules_run;
    subjects_checked;
    explorations;
  }

let errors t = List.filter (fun f -> f.severity = Error) t.findings
let warnings t = List.filter (fun f -> f.severity = Warning) t.findings
let has_errors t = errors t <> []
let truncated t = List.filter (fun e -> not e.exhaustive) t.explorations

(* The CLI exit-code contract, kept pure so the tests can pin it:
   1 (rule/gate failures) dominates 2 (strict truncation) — a report
   that is both wrong and sampled is first of all wrong. *)
let exit_code ?(strict = false) ?(mc_fail = false) ?(mc_truncated = false) t =
  if has_errors t || mc_fail || (strict && warnings t <> []) then 1
  else if strict && (truncated t <> [] || mc_truncated) then 2
  else 0

let pp_where fmt w =
  Fmt.pf fmt "%s(%s)" w.name w.origin;
  Option.iter (Fmt.pf fmt "/%s") w.component;
  Option.iter (Fmt.pf fmt " task:%s") w.task;
  Option.iter (Fmt.pf fmt " state:#%d") w.state

let pp_finding fmt f =
  Fmt.pf fmt "%a[%s] %a: %s" pp_severity f.severity f.rule pp_where f.where f.message

let pp fmt t =
  Fmt.pf fmt "lint: %d subject(s), %d rule(s), %d error(s), %d warning(s)"
    t.subjects_checked t.rules_run
    (List.length (errors t))
    (List.length (warnings t));
  (match
     List.partition (fun e -> e.exhaustive) t.explorations
   with
  | [], [] -> ()
  | ex, tr ->
    Fmt.pf fmt "; explored %d subject(s): %d exhausted, %d truncated"
      (List.length t.explorations) (List.length ex) (List.length tr));
  List.iter (fun f -> Fmt.pf fmt "@\n  %a" pp_finding f) t.findings

let pp_explorations fmt t =
  List.iter
    (fun e ->
      Fmt.pf fmt "%s(%s): %d states, %d transitions, %s%s@\n" e.explored e.exp_origin
        e.states e.transitions e.verdict
        (if e.por then Printf.sprintf " (por, slept %d)" e.slept else ""))
    t.explorations

(* --- JSON (hand-rolled; the repo deliberately has no JSON dependency) --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = Printf.sprintf "\"%s\"" (json_escape s)

let json_opt_str = function None -> "null" | Some s -> json_str s
let json_opt_int = function None -> "null" | Some i -> string_of_int i

let finding_to_json f =
  Printf.sprintf
    "{\"rule\":%s,\"severity\":%s,\"subject\":%s,\"origin\":%s,\"component\":%s,\"task\":%s,\"state\":%s,\"message\":%s}"
    (json_str f.rule)
    (json_str (Fmt.str "%a" pp_severity f.severity))
    (json_str f.where.name) (json_str f.where.origin)
    (json_opt_str f.where.component)
    (json_opt_str f.where.task)
    (json_opt_int f.where.state)
    (json_str f.message)

let exploration_to_json e =
  Printf.sprintf
    "{\"subject\":%s,\"origin\":%s,\"states\":%d,\"transitions\":%d,\"verdict\":%s,\"exhaustive\":%b,\"por\":%b,\"slept\":%d}"
    (json_str e.explored) (json_str e.exp_origin) e.states e.transitions
    (json_str e.verdict) e.exhaustive e.por e.slept

let to_json t =
  Printf.sprintf
    "{\"summary\":{\"subjects\":%d,\"rules\":%d,\"errors\":%d,\"warnings\":%d,\"explored\":%d,\"exhausted\":%d,\"truncated\":%d},\"explorations\":[%s],\"findings\":[%s]}"
    t.subjects_checked t.rules_run
    (List.length (errors t))
    (List.length (warnings t))
    (List.length t.explorations)
    (List.length (List.filter (fun e -> e.exhaustive) t.explorations))
    (List.length (truncated t))
    (String.concat "," (List.map exploration_to_json t.explorations))
    (String.concat "," (List.map finding_to_json t.findings))
