open Afd_ioa

(* A tiny three-action alphabet: Tick k (locally controlled), Reset
   (input), Noise (deliberately outside every fixture's signature). *)
type act = Tick of int | Reset | Noise

let pp_act fmt = function
  | Tick k -> Fmt.pf fmt "tick%d" k
  | Reset -> Format.pp_print_string fmt "reset"
  | Noise -> Format.pp_print_string fmt "noise"

let acts = [ Tick 1; Tick 2; Tick 3; Reset; Noise ]

let probe ?actions ?rename_roundtrip ?base_kind () =
  Probe.make ~pp_action:pp_act ?rename_roundtrip ?base_kind
    (Option.value ~default:acts actions)

(* The well-formed witness: counts 1..limit, Reset restarts. *)
let counter ~name ~limit =
  let kind = function
    | Tick _ -> Some Automaton.Output
    | Reset -> Some Automaton.Input
    | Noise -> None
  in
  let step s = function
    | Tick k when k = s + 1 && k <= limit -> Some k
    | Tick _ -> None
    | Reset -> Some 0
    | Noise -> None
  in
  let task =
    { Automaton.task_name = "tick";
      fair = true;
      enabled = (fun s -> if s < limit then Some (Tick (s + 1)) else None);
    }
  in
  { Automaton.name; kind; start = 0; step; tasks = [ task ] }

let listener =
  let kind = function
    | Tick _ -> Some Automaton.Input
    | Reset -> None
    | Noise -> None
  in
  let step s = function Tick _ -> Some s | Reset | Noise -> None in
  { Automaton.name = "listener"; kind; start = 0; step; tasks = [] }

let base = counter ~name:"fixture" ~limit:3

let well_formed = Registry.Automaton (base, probe ())

let not_input_enabled =
  (* Reset becomes disabled once the counter has advanced *)
  let step s = function
    | Reset -> if s = 0 then Some 0 else None
    | act -> base.Automaton.step s act
  in
  Registry.Automaton ({ base with Automaton.step }, probe ())

let task_nondeterministic =
  (* a second task enabling the same action as the first *)
  let clone =
    { Automaton.task_name = "tick-again";
      fair = true;
      enabled = (fun s -> if s < 3 then Some (Tick (s + 1)) else None);
    }
  in
  Registry.Automaton
    ({ base with Automaton.tasks = base.Automaton.tasks @ [ clone ] }, probe ())

let step_outside_signature =
  (* the step relation accepts Noise, which kind_of excludes *)
  let step s = function Noise -> Some s | act -> base.Automaton.step s act in
  Registry.Automaton ({ base with Automaton.step }, probe ())

let task_enables_input =
  let bad =
    { Automaton.task_name = "reset-from-inside";
      fair = true;
      enabled = (fun _ -> Some Reset);
    }
  in
  Registry.Automaton
    ({ base with Automaton.tasks = base.Automaton.tasks @ [ bad ] }, probe ())

let enabled_not_steppable =
  (* the task offers Tick 5, which the step relation rejects *)
  let bad =
    { Automaton.task_name = "overrun";
      fair = true;
      enabled = (fun s -> if s = 0 then Some (Tick 5) else None);
    }
  in
  Registry.Automaton
    ({ base with Automaton.tasks = base.Automaton.tasks @ [ bad ] }, probe ())

let dead_task =
  let dead =
    { Automaton.task_name = "never"; fair = true; enabled = (fun _ -> None) }
  in
  Registry.Automaton
    ({ base with Automaton.tasks = base.Automaton.tasks @ [ dead ] }, probe ())

let unfair_task =
  let unfair =
    { Automaton.task_name = "lazy";
      fair = false;
      enabled = (fun s -> if s < 3 then Some (Tick (s + 1)) else None);
    }
  in
  (* replace, don't append: two tasks enabling the same action would
     also trip task-determinism *)
  Registry.Automaton ({ base with Automaton.tasks = [ unfair ] }, probe ())

let dual_controlled =
  Registry.Composition
    ( Composition.make ~name:"dual"
        [ Component.C (counter ~name:"c1" ~limit:3);
          Component.C (counter ~name:"c2" ~limit:3);
        ],
      probe () )

let internal_leaked =
  (* c1's Tick is internal, yet c2 still has Tick in its signature *)
  let internalized =
    let kind = function
      | Tick _ -> Some Automaton.Internal
      | Reset -> Some Automaton.Input
      | Noise -> None
    in
    { (counter ~name:"c1" ~limit:3) with Automaton.kind }
  in
  Registry.Composition
    ( Composition.make ~name:"leaky"
        [ Component.C internalized;
          Component.C { listener with Automaton.name = "c2" };
        ],
      probe () )

let broken_roundtrip =
  (* a "renamed" automaton whose claimed inverse loses Tick 2 and sends
     Tick 1 elsewhere *)
  let rt = function
    | Tick 1 -> Some (Tick 3)
    | Tick 2 -> None
    | act -> Some act
  in
  Registry.Automaton (base, probe ~rename_roundtrip:rt ())

let broken_hiding =
  (* the "hidden" automaton reclassified the Reset input as internal *)
  let kind = function
    | Tick _ -> Some Automaton.Output
    | Reset -> Some Automaton.Internal
    | Noise -> None
  in
  Registry.Automaton
    ({ base with Automaton.kind }, probe ~base_kind:base.Automaton.kind ())

let no_probes = Registry.Automaton (base, probe ~actions:[] ())

let raw_scan_spec =
  (* a detector spec wired as a bare full-trace scan, bypassing the
     property engine *)
  Registry.Spec { name = "raw-scan-spec"; style = Registry.Raw_scan; allow_raw = false }

let allowlisted_raw_spec =
  Registry.Spec
    { name = "legacy-wrapper-spec"; style = Registry.Raw_scan; allow_raw = true }

let all =
  [ ("input-enabled", not_input_enabled);
    ("task-determinism", task_nondeterministic);
    ("step-signature", step_outside_signature);
    ("task-signature", task_enables_input);
    ("enabled-consistency", enabled_not_steppable);
    ("dual-control", dual_controlled);
    ("internal-leakage", internal_leaked);
    ("dead-task", dead_task);
    ("unfair-task", unfair_task);
    ("rename-roundtrip", broken_roundtrip);
    ("hiding", broken_hiding);
    ("probe-coverage", no_probes);
    ("prop-based-spec", raw_scan_spec);
  ]

(* --- fixtures for the graph rules (the --mc set) --- *)

let stuck_counter =
  (* the task still claims Tick 4 at the cap, and nothing else can move:
     the state is non-quiescent yet the step relation rejects every
     enabled action *)
  let c = counter ~name:"stuck" ~limit:3 in
  let task =
    { Automaton.task_name = "tick";
      fair = true;
      enabled = (fun s -> if s < 4 then Some (Tick (s + 1)) else None);
    }
  in
  Registry.Automaton ({ c with Automaton.tasks = [ task ] }, probe ())

let jump_counter =
  (* two concurrently enabled tasks whose moves visibly race:
     increment-then-double lands elsewhere than double-then-increment *)
  let kind = function
    | Tick _ -> Some Automaton.Output
    | Reset -> Some Automaton.Input
    | Noise -> None
  in
  let step s = function
    | Tick 1 when s + 1 <= 5 -> Some (s + 1)
    | Tick 2 when s * 2 <= 5 -> Some (s * 2)
    | Tick _ | Noise -> None
    | Reset -> Some 0
  in
  let tasks =
    [ { Automaton.task_name = "inc";
        fair = true;
        enabled = (fun s -> if s + 1 <= 5 then Some (Tick 1) else None);
      };
      { Automaton.task_name = "dbl";
        fair = true;
        enabled = (fun s -> if s * 2 <= 5 then Some (Tick 2) else None);
      };
    ]
  in
  Registry.Automaton
    ({ Automaton.name = "jumpy"; kind; start = 0; step; tasks },
     probe ~actions:[ Tick 1; Tick 2; Reset ] ())

let short_counter =
  (* limit 2, but the probe universe still carries Tick 3: the action is
     in the signature yet labels no edge of the exhausted graph *)
  Registry.Automaton (counter ~name:"short" ~limit:2, probe ())

(* A two-state spinner: one fair task alternates Tick 1 / Tick 2
   forever, Reset restarts.  [kind] decides which liveness rule sees
   it: with internal Ticks the fair cycle produces no output ever
   (livelock); with output Ticks the same cycle is harmless. *)
let spinner ~name ~tick_kind =
  let kind = function
    | Tick _ -> Some tick_kind
    | Reset -> Some Automaton.Input
    | Noise -> None
  in
  let step s = function
    | Tick 1 when s = 0 -> Some 1
    | Tick 2 when s = 1 -> Some 0
    | Tick _ | Noise -> None
    | Reset -> Some 0
  in
  let task =
    { Automaton.task_name = "spin";
      fair = true;
      enabled = (fun s -> Some (Tick (s + 1)));
    }
  in
  { Automaton.name; kind; start = 0; step; tasks = [ task ] }

let spinner_probe () = probe ~actions:[ Tick 1; Tick 2; Reset ] ()

let livelocked_spinner =
  Registry.Automaton (spinner ~name:"livelocked" ~tick_kind:Automaton.Internal, spinner_probe ())

let harmless_cycle =
  (* same fair cycle, but the Ticks are outputs: visibly productive, so
     the livelock rule must stay silent *)
  Registry.Automaton (spinner ~name:"harmless" ~tick_kind:Automaton.Output, spinner_probe ())

let pinned_spinner =
  (* the spinner plus a second fair task that is enabled in every state
     yet whose action the step relation never accepts: the sole
     (terminal) SCC lets the scheduler neither satisfy the obligation
     (the task never fires) nor halt fairly (spin is always enabled).
     enabled-consistency flags the same root cause pointwise; the
     unsatisfiable-fairness-obligation rule reports its global shape. *)
  let s = spinner ~name:"pinned" ~tick_kind:Automaton.Output in
  let pinned =
    { Automaton.task_name = "pinned";
      fair = true;
      enabled = (fun _ -> Some (Tick 3));
    }
  in
  Registry.Automaton
    ({ s with Automaton.tasks = s.Automaton.tasks @ [ pinned ] }, spinner_probe ())

let mc =
  [ ("reachable-input-enabled", not_input_enabled);
    ("deadlock", stuck_counter);
    ("race-pair", jump_counter);
    ("dead-transition", short_counter);
    ("livelock", livelocked_spinner);
    ("unsatisfiable-fairness-obligation", pinned_spinner);
  ]

(* --- fixtures for the symmetry rules (the --symmetry set) --- *)

module Fd_event = Afd_prop.Fd_event

(* A two-process detector family in the shape of the catalog's
   truthful automata: state is the crashed-so-far set, every live
   location keeps outputting [output crashset].  Symmetric or not is
   decided entirely by [output]. *)
let sym_n = 2

let suspector ~name ~output =
  let kind = function
    | Fd_event.Crash _ -> Some Automaton.Input
    | Fd_event.Output _ -> Some Automaton.Output
  in
  let step crashset = function
    | Fd_event.Crash i -> Some (Loc.Set.add i crashset)
    | Fd_event.Output (i, o) ->
      if (not (Loc.Set.mem i crashset)) && Loc.Set.equal (output crashset) o then
        Some crashset
      else None
  in
  let task i =
    { Automaton.task_name = Printf.sprintf "fd_%s" (Loc.to_string i);
      fair = true;
      enabled =
        (fun crashset ->
          if Loc.Set.mem i crashset then None
          else Some (Fd_event.Output (i, output crashset)));
    }
  in
  { Automaton.name;
    kind;
    start = Loc.Set.empty;
    step;
    tasks = List.map task (Loc.universe ~n:sym_n);
  }

(* The probe universe must be closed under S_2 for the analyzer's
   probe-closure check: every crash, every (location, payload) pair. *)
let sym_acts =
  let locs = Loc.universe ~n:sym_n in
  let payloads =
    [ Loc.Set.empty;
      Loc.Set.singleton 0;
      Loc.Set.singleton 1;
      Loc.set_of_universe ~n:sym_n;
    ]
  in
  List.map (fun i -> Fd_event.Crash i) locs
  @ List.concat_map
      (fun i -> List.map (fun s -> Fd_event.Output (i, s)) payloads)
      locs

let sym_probe ?symm () =
  Probe.make
    ~equal_action:(Fd_event.equal Loc.Set.equal)
    ~pp_action:(Fd_event.pp Loc.pp_set)
    ~equal_state:Loc.Set.equal
    ~hash_state:(fun s -> Hashtbl.hash (Loc.Set.elements s))
    ?symm sym_acts

let sym_descriptor =
  { Probe.sy_n = sym_n;
    sy_state = Symm.perm_set;
    sy_action = Symm.perm_event Symm.perm_set;
    sy_cmp = Symm.cmp_set;
    sy_fields =
      [ Probe.F
          { f_name = "crashset";
            f_proj = (fun s -> s);
            f_perm = Symm.perm_set;
            f_equal = Loc.Set.equal;
          }
      ];
  }

let symmetry_breaking =
  (* suspects the smallest live location: permuting the processes moves
     the suspicion to the wrong place, so the declared symmetry breaks
     (the same defect as a min-based leader election) *)
  let output crashset =
    match Loc.min_not_in ~n:sym_n (fun j -> Loc.Set.mem j crashset) with
    | Some l -> Loc.Set.singleton l
    | None -> Loc.Set.empty
  in
  Registry.Automaton
    (suspector ~name:"min-suspector" ~output, sym_probe ~symm:sym_descriptor ())

let symmetry_undeclared =
  (* genuinely equivariant (outputs the crash set itself), but the
     probe declares no S_n action — certification has nothing to
     check, so a symmetry-requested run falls back to unreduced *)
  Registry.Automaton
    (suspector ~name:"undeclared-suspector" ~output:(fun c -> c), sym_probe ())

let symmetry_certifiable =
  (* the same equivariant automaton with the symmetry declared: the
     analyzer certifies it and both symmetry rules stay silent *)
  Registry.Automaton
    ( suspector ~name:"declared-suspector" ~output:(fun c -> c),
      sym_probe ~symm:sym_descriptor () )

let symmetry =
  [ ("symmetry-breaking-state", symmetry_breaking);
    ("uncertified-symmetry", symmetry_undeclared);
  ]

let find id =
  Option.map snd
    (List.find_opt (fun (id', _) -> String.equal id id') (all @ mc @ symmetry))
