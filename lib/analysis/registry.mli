(** The probe-universe registry: the catalog of subjects the lint
    engine audits.

    Each library section registers its automata and compositions
    together with a {!Probe.t} describing how to sample them; the
    engine then runs every rule over every entry.  The existential
    packing mirrors {!Afd_ioa.Component}: subjects over different
    state types and action alphabets live in one catalog. *)

type spec_style = Prop_compiled | Raw_scan
(** How a detector spec checks traces: compiled from an
    [Afd_prop.Prop.t] formula, or a raw scan over the full
    [Fd_event.t list]. *)

type entry =
  | Automaton :
      ('s, 'a) Afd_ioa.Automaton.t * ('s, 'a) Probe.t
      -> entry
  | Composition :
      'a Afd_ioa.Composition.t * ('a Afd_ioa.Composition.state, 'a) Probe.t
      -> entry
  | Spec of { name : string; style : spec_style; allow_raw : bool }
      (** a detector spec; [allow_raw] allowlists deliberate raw
          scans (legacy wrappers) for the [prop-based-spec] rule *)

type item = { origin : string; entry : entry }

val entry_name : entry -> string

val spec_entry : ?allow_raw:bool -> 'o Afd_core.Afd.spec -> entry
(** Package a detector spec for the catalog, recording whether it is
    prop-compiled.  [allow_raw] defaults to [false]. *)

val register : origin:string -> entry -> unit
(** Append an entry under the given origin label (the registering
    library section, e.g. ["core"], ["system"], ["consensus"]). *)

val items : unit -> item list
(** Registration order. *)

val size : unit -> int
val reset : unit -> unit
