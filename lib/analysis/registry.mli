(** The probe-universe registry: the catalog of subjects the lint
    engine audits.

    Each library section registers its automata and compositions
    together with a {!Probe.t} describing how to sample them; the
    engine then runs every rule over every entry.  The existential
    packing mirrors {!Afd_ioa.Component}: subjects over different
    state types and action alphabets live in one catalog. *)

type entry =
  | Automaton :
      ('s, 'a) Afd_ioa.Automaton.t * ('s, 'a) Probe.t
      -> entry
  | Composition :
      'a Afd_ioa.Composition.t * ('a Afd_ioa.Composition.state, 'a) Probe.t
      -> entry

type item = { origin : string; entry : entry }

val entry_name : entry -> string

val register : origin:string -> entry -> unit
(** Append an entry under the given origin label (the registering
    library section, e.g. ["core"], ["system"], ["consensus"]). *)

val items : unit -> item list
(** Registration order. *)

val size : unit -> int
val reset : unit -> unit
