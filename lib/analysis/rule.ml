type t = {
  id : string;
  severity : Report.severity;
  doc : string;
  paper : string;
  check : Subject.t -> Report.finding list;
}

let find rules id = List.find_opt (fun r -> String.equal r.id id) rules
