open Afd_ioa

(* Successor codes shipped from workers to the merge: a nonnegative
   code is the index of the successor in the frozen seen-set prefix. *)
let blocked = -1
let fresh_code = -2

(* One frontier state's expansion, computed in a worker.  Flat parallel
   arrays (codes and hashes unboxed) rather than per-move records, so a
   round's result is a handful of arrays per state, with every
   [hash_state] call already paid in parallel.  [x_comm] is the k×k
   commute matrix of the enabled moves (row-major, byte per pair),
   empty with POR off: the merge looks pairs up instead of computing
   diamonds sequentially. *)
type ('s, 'a) packed = {
  x_probe_code : int array;  (* per probe action; [||] once expanded *)
  x_probe_dst : 's array;
  x_probe_hash : int array;
  x_names : string array;  (* enabled task moves, task-list order *)
  x_acts : 'a array;
  x_code : int array;
  x_dst : 's array;
  x_hash : int array;
  x_comm : Bytes.t;
}

(* The seen-set is sharded by hash stripe: stripe = hash land smask.
   Equality can only hold between equal hashes, hence within one
   stripe, so per-stripe work never interferes across stripes — the
   invariant both the striped table and the parallel dedup below lean
   on. *)
let nstripes = 8
let smask = nstripes - 1

type merge_stats = {
  ms_rounds : int;
  ms_stripes : int;
  ms_candidates : int array; (* fresh successors deduped, per stripe *)
  ms_classes : int array; (* distinct new states among them, per stripe *)
  ms_conflicts : int array; (* hash-equal-but-unequal comparisons *)
}

(* Merge-side resolution state of a candidate class: unresolved until
   the first actually-taken member admits (id >= 0) or hits the budget
   cut. *)
let unresolved = -1
let cut_class = -2

let explore_pool ?(por = false) ?symmetry ?profile ?merge_stats pool aut probe =
  (* Orbit quotient: same wrapper as the sequential explorer, applied
     before any state crosses a domain boundary — workers only ever see
     representatives, so the sharded seen-set quotients for free. *)
  let aut, probe =
    match symmetry with
    | None -> (aut, probe)
    | Some canon -> Space.quotient canon aut probe
  in
  let max_states = probe.Probe.max_states in
  let hash = match probe.Probe.hash_state with Some h -> h | None -> fun _ -> 0 in
  let equal = probe.Probe.equal_state in
  let probe_acts = Array.of_list probe.Probe.actions in
  (* Mirror of Space.explore's growable bookkeeping, indexed by
     discovery order.  The merge below replays the sequential loop on
     these verbatim; only successor computation moved to the workers. *)
  let states = ref [||] and n = ref 0 in
  let parent = ref [||] and depth = ref [||] in
  let sleep = ref [||] and done_moves = ref [||] in
  let expanded = ref [||] and queued = ref [||] in
  let btab : (int, int list) Hashtbl.t array =
    Array.init nstripes (fun _ -> Hashtbl.create 64)
  in
  let edges_rev = ref [] and transitions = ref 0 in
  let slept = ref 0 and cut = ref 0 and dup_seeds = ref 0 in
  let queue = Queue.create () in
  let ms_rounds = ref 0 in
  let ms_candidates = Array.make nstripes 0 in
  let ms_classes = Array.make nstripes 0 in
  let ms_conflicts = Array.make nstripes 0 in
  let t_workers = ref 0.0 and t_dedup = ref 0.0 and t_replay = ref 0.0 in
  let now () = Unix.gettimeofday () in
  let ensure () =
    let cap = Array.length !states in
    if !n >= cap then begin
      let cap' = max 8 (2 * cap) in
      let grow a fill =
        let b = Array.make cap' fill in
        Array.blit !a 0 b 0 cap;
        a := b
      in
      grow states aut.Automaton.start;
      grow parent None;
      grow depth max_int;
      grow sleep [];
      grow done_moves [];
      grow expanded false;
      grow queued false
    end
  in
  let find_index s =
    let h = hash s in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt btab.(h land smask) h) in
    List.find_opt (fun i -> equal (!states).(i) s) bucket
  in
  let add_state_h s h ~par ~d ~sl =
    ensure ();
    let i = !n in
    (!states).(i) <- s;
    (!parent).(i) <- par;
    (!depth).(i) <- d;
    (!sleep).(i) <- sl;
    (!queued).(i) <- true;
    incr n;
    let tbl = btab.(h land smask) in
    Hashtbl.replace tbl h (i :: Option.value ~default:[] (Hashtbl.find_opt tbl h));
    Queue.add i queue;
    i
  in
  let record_edge src dst act task =
    incr transitions;
    edges_rev := { Space.src; dst; act; task } :: !edges_rev
  in
  (* Per-round candidate classes, resolved by the striped dedup phase:
     [cls] maps a candidate (a worker-reported fresh successor, code
     [-3 - c]) to the representative of its equality class, [resolved]
     the class's merge outcome so far. *)
  let cls = ref [||] and resolved = ref [||] in
  let cand_dst = ref [||] and cand_hash = ref [||] in
  (* Space.explore's [take], with the step and hash already computed.
     A worker-reported hit ([code >= 0]) is a frozen-prefix index; a
     candidate code resolves through its class: the first taken member
     admits (or takes the budget cut) on behalf of the whole class,
     exactly as the first sequential insertion would, and later members
     hit (or re-cut) deterministically. *)
  let take i act task sl code =
    if code <> blocked then begin
      let old_hit j =
        record_edge i j act task;
        if por then begin
          let inter = List.filter (fun u -> List.mem u sl) (!sleep).(j) in
          if List.length inter < List.length (!sleep).(j) then begin
            (!sleep).(j) <- inter;
            if not (!queued).(j) then begin
              (!queued).(j) <- true;
              Queue.add j queue
            end
          end
        end
      in
      if code >= 0 then old_hit code
      else begin
        let c = -3 - code in
        let k = (!cls).(c) in
        let r = (!resolved).(k) in
        if r >= 0 then old_hit r
        else if r = cut_class then incr cut
        else if !n < max_states then begin
          let d = if (!depth).(i) = max_int then max_int else (!depth).(i) + 1 in
          let j =
            add_state_h (!cand_dst).(c) (!cand_hash).(c) ~par:(Some (i, act)) ~d
              ~sl
          in
          (!resolved).(k) <- j;
          record_edge i j act task
        end
        else begin
          incr cut;
          (!resolved).(k) <- cut_class
        end
      end
    end
  in
  (* Worker: expand one frontier state against the frozen prefix.  No
     shared state is written; the refs it reads are quiescent for the
     whole parallel phase, and the pool's barrier publishes the
     merge's writes before the next phase begins. *)
  let compute i =
    let sts = !states and exp = !expanded in
    let s = sts.(i) in
    let pack acts =
      let m = Array.length acts in
      let code = Array.make m blocked in
      let dst = Array.make m s in
      let hsh = Array.make m 0 in
      Array.iteri
        (fun p act ->
          match aut.Automaton.step s act with
          | None -> ()
          | Some s' ->
            let h = hash s' in
            let bucket =
              Option.value ~default:[] (Hashtbl.find_opt btab.(h land smask) h)
            in
            (match List.find_opt (fun j -> equal sts.(j) s') bucket with
            | Some j -> code.(p) <- j
            | None -> code.(p) <- fresh_code);
            dst.(p) <- s';
            hsh.(p) <- h)
        acts;
      (code, dst, hsh)
    in
    let x_probe_code, x_probe_dst, x_probe_hash =
      if exp.(i) then ([||], [||], [||]) else pack probe_acts
    in
    let moves =
      List.filter_map
        (fun tk ->
          match tk.Automaton.enabled s with Some a -> Some (tk, a) | None -> None)
        aut.Automaton.tasks
    in
    let k = List.length moves in
    let marr = Array.of_list moves in
    let x_names = Array.map (fun (tk, _) -> tk.Automaton.task_name) marr in
    let x_acts = Array.map snd marr in
    let x_code, x_dst, x_hash = pack x_acts in
    let x_comm =
      if not por then Bytes.empty
      else begin
        let b = Bytes.make (k * k) '\000' in
        for u = 0 to k - 1 do
          for t = 0 to k - 1 do
            if Space.commute aut probe s marr.(u) marr.(t) then
              Bytes.set b ((u * k) + t) '\001'
          done
        done;
        b
      end
    in
    { x_probe_code; x_probe_dst; x_probe_hash; x_names; x_acts; x_code; x_dst;
      x_hash; x_comm }
  in
  (* Sequential replay of Space.explore's pop body for one frontier
     state, consuming the worker's packed expansion. *)
  let merge i it =
    (!queued).(i) <- false;
    if not (!expanded).(i) then begin
      (!expanded).(i) <- true;
      Array.iteri (fun p act -> take i act None [] it.x_probe_code.(p)) probe_acts
    end;
    let k = Array.length it.x_names in
    for t = 0 to k - 1 do
      let name = it.x_names.(t) in
      if not (List.mem name (!done_moves).(i)) then begin
        if por && List.mem name (!sleep).(i) then incr slept
        else begin
          let sl' =
            if not por then []
            else begin
              let idx_of u =
                let rec go v = if v >= k then None else if it.x_names.(v) = u then Some v else go (v + 1) in
                go 0
              in
              List.filter
                (fun u ->
                  match idx_of u with
                  | Some ui -> Bytes.get it.x_comm ((ui * k) + t) = '\001'
                  | None -> false)
                (List.sort_uniq Stdlib.compare ((!sleep).(i) @ (!done_moves).(i)))
            end
          in
          (!done_moves).(i) <- name :: (!done_moves).(i);
          take i it.x_acts.(t) (Some name) sl' it.x_code.(t)
        end
      end
    done
  in
  if max_states > 0 then begin
    let s = aut.Automaton.start in
    ignore (add_state_h s (hash s) ~par:None ~d:0 ~sl:[])
  end
  else incr cut;
  List.iter
    (fun s ->
      match find_index s with
      | Some _ -> incr dup_seeds
      | None ->
        if !n < max_states then
          ignore (add_state_h s (hash s) ~par:None ~d:max_int ~sl:[])
        else incr cut)
    probe.Probe.seed_states;
  while not (Queue.is_empty queue) do
    incr ms_rounds;
    let m = Queue.length queue in
    let round = Array.init m (fun _ -> Queue.pop queue) in
    let t0 = now () in
    let items = Afd_runner.Pool.map_pool pool compute round in
    let t1 = now () in
    t_workers := !t_workers +. (t1 -. t0);
    (* Striped dedup of the round's fresh candidates.  Number them in
       merge order (rewriting each fresh code to [-3 - c] in place),
       shard by hash stripe, and resolve equality classes per stripe in
       parallel: class membership depends only on (hash, value), never
       on order, and equal values share a stripe, so the stripes are
       independent.  The replay then resolves each class at its first
       actually-taken member — exactly where the sequential merge would
       have inserted it. *)
    let ncand = ref 0 in
    let count arr = Array.iter (fun c -> if c = fresh_code then incr ncand) arr in
    Array.iter
      (fun it ->
        count it.x_probe_code;
        count it.x_code)
      items;
    let nc = !ncand in
    if nc > 0 then begin
      cand_dst := Array.make nc aut.Automaton.start;
      cand_hash := Array.make nc 0;
      cls := Array.make nc 0;
      resolved := Array.make nc unresolved;
      let by_stripe = Array.make nstripes [] in
      let ci = ref 0 in
      let assign code_arr dst_arr hash_arr =
        Array.iteri
          (fun p c ->
            if c = fresh_code then begin
              let idx = !ci in
              incr ci;
              (!cand_dst).(idx) <- dst_arr.(p);
              (!cand_hash).(idx) <- hash_arr.(p);
              code_arr.(p) <- -3 - idx;
              let sp = hash_arr.(p) land smask in
              by_stripe.(sp) <- idx :: by_stripe.(sp)
            end)
          code_arr
      in
      Array.iter
        (fun it ->
          assign it.x_probe_code it.x_probe_dst it.x_probe_hash;
          assign it.x_code it.x_dst it.x_hash)
        items;
      let stripe_of =
        Array.map (fun l -> Array.of_list (List.rev l)) by_stripe
      in
      let per_stripe =
        Afd_runner.Pool.map_pool pool
          (fun s ->
            let cd = !cand_dst and ch = !cand_hash and cl = !cls in
            let tbl : (int, int list) Hashtbl.t = Hashtbl.create 64 in
            let classes = ref 0 and conflicts = ref 0 in
            Array.iter
              (fun c ->
                let h = ch.(c) in
                let reps = Option.value ~default:[] (Hashtbl.find_opt tbl h) in
                let rec go = function
                  | [] -> -1
                  | r :: tl ->
                    if equal cd.(r) cd.(c) then r
                    else begin
                      incr conflicts;
                      go tl
                    end
                in
                let r = go reps in
                if r >= 0 then cl.(c) <- r
                else begin
                  cl.(c) <- c;
                  incr classes;
                  Hashtbl.replace tbl h (c :: reps)
                end)
              stripe_of.(s);
            (Array.length stripe_of.(s), !classes, !conflicts))
          (Array.init nstripes (fun s -> s))
      in
      Array.iteri
        (fun s (cands, classes, conflicts) ->
          ms_candidates.(s) <- ms_candidates.(s) + cands;
          ms_classes.(s) <- ms_classes.(s) + classes;
          ms_conflicts.(s) <- ms_conflicts.(s) + conflicts)
        per_stripe
    end;
    let t2 = now () in
    t_dedup := !t_dedup +. (t2 -. t1);
    Array.iteri (fun r i -> merge i items.(r)) round;
    t_replay := !t_replay +. (now () -. t2)
  done;
  (match profile with
  | None -> ()
  | Some f ->
    f "workers" !t_workers;
    f "stripe_dedup" !t_dedup;
    f "replay" !t_replay);
  (match merge_stats with
  | None -> ()
  | Some f ->
    f
      { ms_rounds = !ms_rounds;
        ms_stripes = nstripes;
        ms_candidates;
        ms_classes;
        ms_conflicts;
      });
  {
    Space.states = Array.sub !states 0 !n;
    edges = Array.of_list (List.rev !edges_rev);
    parent = Array.sub !parent 0 !n;
    depth = Array.sub !depth 0 !n;
    verdict = (if !cut = 0 then Space.Exhausted else Space.Truncated max_states);
    por;
    stats =
      { Space.transitions = !transitions; slept = !slept; cut = !cut;
        dup_seeds = !dup_seeds };
  }

let explore ?(por = false) ?symmetry ?(jobs = 1) ?profile ?merge_stats aut probe =
  Afd_runner.Pool.with_pool ~jobs (fun pool ->
      explore_pool ~por ?symmetry ?profile ?merge_stats pool aut probe)

let agree ~equal_state ~equal_action a b =
  let open Space in
  let arr eq x y = Array.length x = Array.length y && Array.for_all2 eq x y
  in
  let edge_eq (e : _ Space.edge) (f : _ Space.edge) =
    e.src = f.src && e.dst = f.dst && equal_action e.act f.act && e.task = f.task
  in
  let parent_eq p q =
    match (p, q) with
    | None, None -> true
    | Some (i, a), Some (j, b) -> i = j && equal_action a b
    | _ -> false
  in
  a.verdict = b.verdict && a.por = b.por && a.stats = b.stats
  && arr equal_state a.states b.states
  && arr edge_eq a.edges b.edges
  && arr parent_eq a.parent b.parent
  && arr ( = ) a.depth b.depth
