open Afd_ioa

(* Successor codes shipped from workers to the merge: a nonnegative
   code is the index of the successor in the frozen seen-set prefix. *)
let blocked = -1
let fresh_code = -2

(* One frontier state's expansion, computed in a worker.  Flat parallel
   arrays (codes and hashes unboxed) rather than per-move records, so a
   round's result is a handful of arrays per state, with every
   [hash_state] call already paid in parallel.  [x_comm] is the k×k
   commute matrix of the enabled moves (row-major, byte per pair),
   empty with POR off: the merge looks pairs up instead of computing
   diamonds sequentially. *)
type ('s, 'a) packed = {
  x_probe_code : int array;  (* per probe action; [||] once expanded *)
  x_probe_dst : 's array;
  x_probe_hash : int array;
  x_names : string array;  (* enabled task moves, task-list order *)
  x_acts : 'a array;
  x_code : int array;
  x_dst : 's array;
  x_hash : int array;
  x_comm : Bytes.t;
}

let explore_pool ?(por = false) pool aut probe =
  let max_states = probe.Probe.max_states in
  let hash = match probe.Probe.hash_state with Some h -> h | None -> fun _ -> 0 in
  let equal = probe.Probe.equal_state in
  let probe_acts = Array.of_list probe.Probe.actions in
  (* Mirror of Space.explore's growable bookkeeping, indexed by
     discovery order.  The merge below replays the sequential loop on
     these verbatim; only successor computation moved to the workers. *)
  let states = ref [||] and n = ref 0 in
  let parent = ref [||] and depth = ref [||] in
  let sleep = ref [||] and done_moves = ref [||] in
  let expanded = ref [||] and queued = ref [||] in
  let buckets : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let edges_rev = ref [] and transitions = ref 0 in
  let slept = ref 0 and cut = ref 0 and dup_seeds = ref 0 in
  let queue = Queue.create () in
  let round_start_n = ref 0 in
  let ensure () =
    let cap = Array.length !states in
    if !n >= cap then begin
      let cap' = max 8 (2 * cap) in
      let grow a fill =
        let b = Array.make cap' fill in
        Array.blit !a 0 b 0 cap;
        a := b
      in
      grow states aut.Automaton.start;
      grow parent None;
      grow depth max_int;
      grow sleep [];
      grow done_moves [];
      grow expanded false;
      grow queued false
    end
  in
  let find_index s =
    let bucket = Option.value ~default:[] (Hashtbl.find_opt buckets (hash s)) in
    List.find_opt (fun i -> equal (!states).(i) s) bucket
  in
  (* Merge-time lookup for a worker-reported "fresh" successor: the
     worker already proved it absent from the frozen prefix, so only
     states added since the round started can match.  Buckets are
     prepended newest-first, so those form a prefix of the bucket. *)
  let find_delta h s =
    match Hashtbl.find_opt buckets h with
    | None -> None
    | Some bucket ->
      let rec go = function
        | [] -> None
        | j :: tl ->
          if j < !round_start_n then None
          else if equal (!states).(j) s then Some j
          else go tl
      in
      go bucket
  in
  let add_state_h s h ~par ~d ~sl =
    ensure ();
    let i = !n in
    (!states).(i) <- s;
    (!parent).(i) <- par;
    (!depth).(i) <- d;
    (!sleep).(i) <- sl;
    (!queued).(i) <- true;
    incr n;
    Hashtbl.replace buckets h (i :: Option.value ~default:[] (Hashtbl.find_opt buckets h));
    Queue.add i queue;
    i
  in
  let record_edge src dst act task =
    incr transitions;
    edges_rev := { Space.src; dst; act; task } :: !edges_rev
  in
  (* Space.explore's [take], with the step and hash already computed. *)
  let take i act task sl code dst h =
    if code <> blocked then begin
      let hit = if code >= 0 then Some code else find_delta h dst in
      match hit with
      | Some j ->
        record_edge i j act task;
        if por then begin
          let inter = List.filter (fun u -> List.mem u sl) (!sleep).(j) in
          if List.length inter < List.length (!sleep).(j) then begin
            (!sleep).(j) <- inter;
            if not (!queued).(j) then begin
              (!queued).(j) <- true;
              Queue.add j queue
            end
          end
        end
      | None ->
        if !n < max_states then begin
          let d = if (!depth).(i) = max_int then max_int else (!depth).(i) + 1 in
          let j = add_state_h dst h ~par:(Some (i, act)) ~d ~sl in
          record_edge i j act task
        end
        else incr cut
    end
  in
  (* Worker: expand one frontier state against the frozen prefix.  No
     shared state is written; the refs it reads are quiescent for the
     whole parallel phase, and the pool's barrier publishes the
     merge's writes before the next phase begins. *)
  let compute i =
    let sts = !states and exp = !expanded in
    let s = sts.(i) in
    let pack acts =
      let m = Array.length acts in
      let code = Array.make m blocked in
      let dst = Array.make m s in
      let hsh = Array.make m 0 in
      Array.iteri
        (fun p act ->
          match aut.Automaton.step s act with
          | None -> ()
          | Some s' ->
            let h = hash s' in
            let bucket = Option.value ~default:[] (Hashtbl.find_opt buckets h) in
            (match List.find_opt (fun j -> equal sts.(j) s') bucket with
            | Some j -> code.(p) <- j
            | None -> code.(p) <- fresh_code);
            dst.(p) <- s';
            hsh.(p) <- h)
        acts;
      (code, dst, hsh)
    in
    let x_probe_code, x_probe_dst, x_probe_hash =
      if exp.(i) then ([||], [||], [||]) else pack probe_acts
    in
    let moves =
      List.filter_map
        (fun tk ->
          match tk.Automaton.enabled s with Some a -> Some (tk, a) | None -> None)
        aut.Automaton.tasks
    in
    let k = List.length moves in
    let marr = Array.of_list moves in
    let x_names = Array.map (fun (tk, _) -> tk.Automaton.task_name) marr in
    let x_acts = Array.map snd marr in
    let x_code, x_dst, x_hash = pack x_acts in
    let x_comm =
      if not por then Bytes.empty
      else begin
        let b = Bytes.make (k * k) '\000' in
        for u = 0 to k - 1 do
          for t = 0 to k - 1 do
            if Space.commute aut probe s marr.(u) marr.(t) then
              Bytes.set b ((u * k) + t) '\001'
          done
        done;
        b
      end
    in
    { x_probe_code; x_probe_dst; x_probe_hash; x_names; x_acts; x_code; x_dst;
      x_hash; x_comm }
  in
  (* Sequential replay of Space.explore's pop body for one frontier
     state, consuming the worker's packed expansion. *)
  let merge i it =
    (!queued).(i) <- false;
    if not (!expanded).(i) then begin
      (!expanded).(i) <- true;
      Array.iteri
        (fun p act ->
          take i act None [] it.x_probe_code.(p) it.x_probe_dst.(p)
            it.x_probe_hash.(p))
        probe_acts
    end;
    let k = Array.length it.x_names in
    for t = 0 to k - 1 do
      let name = it.x_names.(t) in
      if not (List.mem name (!done_moves).(i)) then begin
        if por && List.mem name (!sleep).(i) then incr slept
        else begin
          let sl' =
            if not por then []
            else begin
              let idx_of u =
                let rec go v = if v >= k then None else if it.x_names.(v) = u then Some v else go (v + 1) in
                go 0
              in
              List.filter
                (fun u ->
                  match idx_of u with
                  | Some ui -> Bytes.get it.x_comm ((ui * k) + t) = '\001'
                  | None -> false)
                (List.sort_uniq Stdlib.compare ((!sleep).(i) @ (!done_moves).(i)))
            end
          in
          (!done_moves).(i) <- name :: (!done_moves).(i);
          take i it.x_acts.(t) (Some name) sl' it.x_code.(t) it.x_dst.(t)
            it.x_hash.(t)
        end
      end
    done
  in
  if max_states > 0 then begin
    let s = aut.Automaton.start in
    ignore (add_state_h s (hash s) ~par:None ~d:0 ~sl:[])
  end
  else incr cut;
  List.iter
    (fun s ->
      match find_index s with
      | Some _ -> incr dup_seeds
      | None ->
        if !n < max_states then
          ignore (add_state_h s (hash s) ~par:None ~d:max_int ~sl:[])
        else incr cut)
    probe.Probe.seed_states;
  while not (Queue.is_empty queue) do
    let m = Queue.length queue in
    let round = Array.init m (fun _ -> Queue.pop queue) in
    round_start_n := !n;
    let items = Afd_runner.Pool.map_pool pool compute round in
    Array.iteri (fun r i -> merge i items.(r)) round
  done;
  {
    Space.states = Array.sub !states 0 !n;
    edges = Array.of_list (List.rev !edges_rev);
    parent = Array.sub !parent 0 !n;
    depth = Array.sub !depth 0 !n;
    verdict = (if !cut = 0 then Space.Exhausted else Space.Truncated max_states);
    por;
    stats =
      { Space.transitions = !transitions; slept = !slept; cut = !cut;
        dup_seeds = !dup_seeds };
  }

let explore ?(por = false) ?(jobs = 1) aut probe =
  Afd_runner.Pool.with_pool ~jobs (fun pool -> explore_pool ~por pool aut probe)

let agree ~equal_state ~equal_action a b =
  let open Space in
  let arr eq x y = Array.length x = Array.length y && Array.for_all2 eq x y
  in
  let edge_eq (e : _ Space.edge) (f : _ Space.edge) =
    e.src = f.src && e.dst = f.dst && equal_action e.act f.act && e.task = f.task
  in
  let parent_eq p q =
    match (p, q) with
    | None, None -> true
    | Some (i, a), Some (j, b) -> i = j && equal_action a b
    | _ -> false
  in
  a.verdict = b.verdict && a.por = b.por && a.stats = b.stats
  && arr equal_state a.states b.states
  && arr edge_eq a.edges b.edges
  && arr parent_eq a.parent b.parent
  && arr ( = ) a.depth b.depth
