(** Bounded reachable-state sampling.

    From the start state (plus the probe universe's deduplicated seed
    states), apply every probed action and every task-enabled action,
    breadth-first, deduplicating with the probe's state equality, until
    the probe's [max_states] cap.  The sample is sound (every state is
    reachable via probed/enabled actions); whether it is {e complete}
    is exactly what the {!Space.verdict} says — rules that claim "on
    every reachable state" must check it.

    This module is a thin shim over {!Space.explore}, which replaced
    the original O(n²) list-scan seen-set with a hashed one; the visit
    order is unchanged. *)

val reachable : ('s, 'a) Afd_ioa.Automaton.t -> ('s, 'a) Probe.t -> 's list
(** In discovery (BFS) order; the start state is first.  Historical
    signature — truncation by [max_states] is silent here; use
    {!Space.explore} directly where the distinction matters. *)

val list_based : ('s, 'a) Afd_ioa.Automaton.t -> ('s, 'a) Probe.t -> 's list
(** The pre-{!Space} implementation with a list seen-set (O(n²) total
    membership cost).  Retained as the differential-test and bench
    reference; produces the same states in the same order as
    {!reachable}. *)
