(** Bounded reachable-state sampling.

    From the start state (plus the probe universe's seed states), apply
    every probed action and every task-enabled action, breadth-first,
    deduplicating with the probe's state equality, until the probe's
    [max_states] cap.  The sample is sound (every state is reachable
    via probed/enabled actions) but deliberately not complete — the
    rules that consume it are lint rules, not proofs. *)

val reachable :
  ('s, 'a) Afd_ioa.Automaton.t -> ('s, 'a) Probe.t -> 's list
(** In discovery (BFS) order; the start state is first. *)
