(* Flat-packing primitives for the compiled explorer (Cspace).

   Two conflict-checked dedup structures share the same discipline: a
   hash accelerates the lookup, but exact equality is always the
   authority — a hash collision costs one extra comparison (counted in
   [conflicts]), never a wrong merge.  That invariant is what lets the
   compiled explorer replace boxed states with dense integer ids while
   staying structurally identical to [Space.explore].

   [interner] canonicalizes boxed values (component states, actions)
   into dense ids: id equality coincides with the supplied equality
   provided the hash is a congruence for it (equal values hash equal),
   which holds for every pairing used here — structural hash with
   structural equality.

   [keyset] dedups fixed-width byte strings (packed product states: one
   32-bit little-endian component id per slot, no padding) with an
   FNV-1a hash over the raw bytes and an arena that stores all keys
   back to back, so membership is one hash, one probe sequence and a
   [width]-byte memcmp — O(1) in the number of states. *)

(* Structural equality that never raises: values containing abstract
   blocks compare unequal, which only duplicates ids, never confuses
   distinct values (same contract as [Probe.structural]). *)
let total_equal a b = try Stdlib.compare a b = 0 with Invalid_argument _ -> false

type 'v interner = {
  ihash : 'v -> int;
  iequal : 'v -> 'v -> bool;
  mutable islots : int array; (* open addressing; id + 1, 0 = empty *)
  mutable imask : int;
  mutable ivals : 'v array;
  mutable ihashes : int array;
  mutable icount : int;
  mutable iconflicts : int;
}

let interner ?(hash = Hashtbl.hash) ~equal () =
  { ihash = hash;
    iequal = equal;
    islots = Array.make 16 0;
    imask = 15;
    ivals = [||];
    ihashes = [||];
    icount = 0;
    iconflicts = 0;
  }

let size t = t.icount
let conflicts t = t.iconflicts
let value t i = t.ivals.(i)

let grow_slots t =
  let m' = (2 * (t.imask + 1)) - 1 in
  let s' = Array.make (m' + 1) 0 in
  Array.iter
    (fun v ->
      if v <> 0 then begin
        let j = ref (t.ihashes.(v - 1) land m') in
        while s'.(!j) <> 0 do
          j := (!j + 1) land m'
        done;
        s'.(!j) <- v
      end)
    t.islots;
  t.islots <- s';
  t.imask <- m'

(* Read-only lookup: safe to call from worker domains while the merge
   is quiescent (no mutation, not even of the conflict counter). *)
let find t v =
  let h = t.ihash v in
  let m = t.imask in
  let j = ref (h land m) in
  let res = ref (-1) in
  (try
     while t.islots.(!j) <> 0 do
       let id = t.islots.(!j) - 1 in
       if t.ihashes.(id) = h && t.iequal t.ivals.(id) v then begin
         res := id;
         raise Exit
       end;
       j := (!j + 1) land m
     done
   with Exit -> ());
  !res

let intern t v =
  if 2 * (t.icount + 1) > t.imask then grow_slots t;
  let h = t.ihash v in
  let m = t.imask in
  let j = ref (h land m) in
  let res = ref (-1) in
  (try
     while t.islots.(!j) <> 0 do
       let id = t.islots.(!j) - 1 in
       if t.ihashes.(id) = h then
         if t.iequal t.ivals.(id) v then begin
           res := id;
           raise Exit
         end
         else t.iconflicts <- t.iconflicts + 1;
       j := (!j + 1) land m
     done
   with Exit -> ());
  if !res >= 0 then !res
  else begin
    let id = t.icount in
    let cap = Array.length t.ivals in
    if id >= cap then begin
      let cap' = max 16 (2 * cap) in
      let vals' = Array.make cap' v in
      Array.blit t.ivals 0 vals' 0 cap;
      t.ivals <- vals';
      let hashes' = Array.make cap' 0 in
      Array.blit t.ihashes 0 hashes' 0 cap;
      t.ihashes <- hashes'
    end;
    t.ivals.(id) <- v;
    t.ihashes.(id) <- h;
    t.islots.(!j) <- id + 1;
    t.icount <- id + 1;
    id
  end

(* --- fixed-width packed keys --- *)

let id_bytes = 4

(* Little-endian 32-bit id, written byte by byte: the int32 Bytes
   accessors box their value on every call (19M boxed int32s per
   200k-state exploration showed up as pure minor-GC churn), and ids
   are nonnegative < 2^31 so four plain bytes are exactly equivalent. *)
let set_id b off v =
  Bytes.unsafe_set b off (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

let get_id b off =
  Char.code (Bytes.unsafe_get b off)
  lor (Char.code (Bytes.unsafe_get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (off + 3)) lsl 24)

(* FNV-1a folded a 32-bit word at a time (packed keys are whole id
   slots, so the word loop is the only one that runs), byte tail for
   odd lengths, folded into OCaml's tagged-int range.  The constants
   are the 64-bit offset basis and prime; the multiply wraps in 63-bit
   native arithmetic, which is fine — any deterministic mixing is,
   since equality stays authoritative. *)
let hash_slice b off len =
  let h = ref 0x1cf29ce484222325 in
  let stop = off + (len land lnot 3) in
  let i = ref off in
  while !i < stop do
    h := (!h lxor get_id b !i) * 0x100000001b3;
    i := !i + 4
  done;
  for j = !i to off + len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b j)) * 0x100000001b3
  done;
  !h land max_int

(* Word-at-a-time memcmp, same layout assumption as [hash_slice]. *)
let eq_slice a aoff b boff len =
  let res = ref true in
  let stop = len land lnot 3 in
  let i = ref 0 in
  while !res && !i < stop do
    if get_id a (aoff + !i) <> get_id b (boff + !i) then res := false;
    i := !i + 4
  done;
  while !res && !i < len do
    if Bytes.unsafe_get a (aoff + !i) <> Bytes.unsafe_get b (boff + !i) then
      res := false;
    incr i
  done;
  !res

type keyset = {
  width : int;
  mutable arena : Bytes.t; (* kcount keys, back to back *)
  mutable khash : int array;
  mutable kcount : int;
  mutable kslots : int array; (* open addressing; idx + 1, 0 = empty *)
  mutable kmask : int;
  mutable kconflicts : int;
}

let keyset ~width =
  let width = max width 1 in
  { width;
    arena = Bytes.create (64 * width);
    khash = Array.make 64 0;
    kcount = 0;
    kslots = Array.make 128 0;
    kmask = 127;
    kconflicts = 0;
  }

let key_count t = t.kcount
let key_conflicts t = t.kconflicts
let key_width t = t.width
let key_hash t scratch = hash_slice scratch 0 t.width
let key_get t i dst = Bytes.blit t.arena (i * t.width) dst 0 t.width
let key_id t i slot = get_id t.arena ((i * t.width) + (slot * id_bytes))

let grow_kslots t =
  let m' = (2 * (t.kmask + 1)) - 1 in
  let s' = Array.make (m' + 1) 0 in
  Array.iter
    (fun v ->
      if v <> 0 then begin
        let j = ref (t.khash.(v - 1) land m') in
        while s'.(!j) <> 0 do
          j := (!j + 1) land m'
        done;
        s'.(!j) <- v
      end)
    t.kslots;
  t.kslots <- s';
  t.kmask <- m'

(* Read-only: workers probe the frozen table; [h] must be
   [key_hash t scratch]. *)
let find_key t scratch h =
  let m = t.kmask in
  let j = ref (h land m) in
  let res = ref (-1) in
  (try
     while t.kslots.(!j) <> 0 do
       let idx = t.kslots.(!j) - 1 in
       if t.khash.(idx) = h && eq_slice t.arena (idx * t.width) scratch 0 t.width
       then begin
         res := idx;
         raise Exit
       end;
       j := (!j + 1) land m
     done
   with Exit -> ());
  !res

(* Append [scratch] as a new key.  The caller has either just probed
   with [find_key] or accepts a duplicate check here: [add_key] is
   find-or-add, returning the existing index when present (and counting
   a conflict on every hash-equal-but-bytes-unequal probe). *)
let add_key t scratch h =
  if 2 * (t.kcount + 1) > t.kmask then grow_kslots t;
  let m = t.kmask in
  let j = ref (h land m) in
  let res = ref (-1) in
  (try
     while t.kslots.(!j) <> 0 do
       let idx = t.kslots.(!j) - 1 in
       if t.khash.(idx) = h then
         if eq_slice t.arena (idx * t.width) scratch 0 t.width then begin
           res := idx;
           raise Exit
         end
         else t.kconflicts <- t.kconflicts + 1;
       j := (!j + 1) land m
     done
   with Exit -> ());
  if !res >= 0 then !res
  else begin
    let idx = t.kcount in
    let cap = Bytes.length t.arena / t.width in
    if idx >= cap then begin
      let arena' = Bytes.create (2 * cap * t.width) in
      Bytes.blit t.arena 0 arena' 0 (cap * t.width);
      t.arena <- arena';
      let kh' = Array.make (2 * cap) 0 in
      Array.blit t.khash 0 kh' 0 cap;
      t.khash <- kh'
    end;
    Bytes.blit scratch 0 t.arena (idx * t.width) t.width;
    t.khash.(idx) <- h;
    t.kslots.(!j) <- idx + 1;
    t.kcount <- idx + 1;
    idx
  end

(* --- open-addressed int -> int table (step-table memo) ---

   Keys are nonnegative packed (state id, action id) ints; values are
   arbitrary ints.  Fibonacci-hashed linear probing over two flat int
   arrays — no boxing, no option allocation, no generic hashing — which
   is what makes the per-component step memo disappear from the
   compiled explorer's profile.  Absence is reported as [min_int]
   (never a legal step code). *)

type itab = {
  mutable tkeys : int array; (* -1 = empty *)
  mutable tvals : int array;
  mutable tmask : int;
  mutable tcount : int;
}

let itab_absent = min_int

let itab () =
  { tkeys = Array.make 64 (-1); tvals = Array.make 64 0; tmask = 63; tcount = 0 }

let itab_mix key mask = (key * 0x2545F4914F6CDD1D) land max_int land mask

let grow_itab t =
  let m' = (2 * (t.tmask + 1)) - 1 in
  let k' = Array.make (m' + 1) (-1) and v' = Array.make (m' + 1) 0 in
  Array.iteri
    (fun i key ->
      if key >= 0 then begin
        let j = ref (itab_mix key m') in
        while k'.(!j) >= 0 do
          j := (!j + 1) land m'
        done;
        k'.(!j) <- key;
        v'.(!j) <- t.tvals.(i)
      end)
    t.tkeys;
  t.tkeys <- k';
  t.tvals <- v';
  t.tmask <- m'

(* Read-only: safe from worker domains while the owner is quiescent.
   [unsafe_get] is in bounds by construction: [j] is masked by [tmask]
   and both arrays have [tmask + 1] slots. *)
let itab_find t key =
  let keys = t.tkeys in
  let m = t.tmask in
  let j = ref (itab_mix key m) in
  let res = ref itab_absent in
  (try
     while Array.unsafe_get keys !j >= 0 do
       if Array.unsafe_get keys !j = key then begin
         res := Array.unsafe_get t.tvals !j;
         raise Exit
       end;
       j := (!j + 1) land m
     done
   with Exit -> ());
  !res

let itab_add t key v =
  if 2 * (t.tcount + 1) > t.tmask then grow_itab t;
  let m = t.tmask in
  let j = ref (itab_mix key m) in
  while t.tkeys.(!j) >= 0 do
    j := (!j + 1) land m
  done;
  t.tkeys.(!j) <- key;
  t.tvals.(!j) <- v;
  t.tcount <- t.tcount + 1

(* --- growable int arrays (flat edge/parent/depth storage) --- *)

type ints = { mutable data : int array; mutable len : int }

let ints () = { data = Array.make 16 0; len = 0 }
let ints_len a = a.len

(* In bounds by the callers' own length discipline ([i < len], and
   [len <= Array.length data] by construction of [ints_push]). *)
let ints_get a i = Array.unsafe_get a.data i
let ints_set a i v = Array.unsafe_set a.data i v

let ints_push a v =
  let cap = Array.length a.data in
  if a.len >= cap then begin
    let d = Array.make (2 * cap) 0 in
    Array.blit a.data 0 d 0 cap;
    a.data <- d
  end;
  a.data.(a.len) <- v;
  a.len <- a.len + 1

(* Extend by [k] slots filled with [v] (per-state bitset words). *)
let ints_extend a k v =
  for _ = 1 to k do
    ints_push a v
  done
