(** Parallel exhaustive state-space exploration.

    [Pspace] is {!Space.explore} sharded across OCaml 5 domains: the
    BFS frontier is processed in rounds, each round's states are
    expanded concurrently on a {!Afd_runner.Pool.t} (work-stealing over
    the frontier array), and a sequential merge folds the workers'
    packed results back in frontier order.  The result is a plain
    {!Space.t} — downstream analyses ({!Live}, {!Mc}, lint rules,
    [path_actions]) run on it unchanged.

    {b Determinism.}  Workers only compute {e order-free} data: the raw
    successor state, its precomputed [Probe.hash_state] value, and a
    frozen-prefix dedup code per move, plus (with POR) the pairwise
    commute matrix of the enabled moves.  Everything order-dependent —
    seen-set insertion, within-round dedup, edge recording, sleep-set
    bookkeeping, requeueing, [max_states] cuts — happens in the
    sequential merge, which replays {!Space.explore}'s own loop in its
    own FIFO order.  Because a FIFO queue pops states in global
    insertion order and the round decomposition preserves that order,
    the exploration is {e structurally identical} to the sequential
    one at any [jobs]: same state indices, same edge array (order
    included), same parent tree, depths, verdict, and stats.  The
    differential tests in [test/test_pspace.ml] assert this field for
    field across the subject catalog, and {!agree} is the assertion
    the benchmark equality gate reuses.

    {b Dedup scheme.}  The seen-set is sharded by hash stripe
    ([hash land (stripes - 1)], 8 stripes); workers read it as a
    {e frozen prefix}: during a round's parallel phase the table is
    immutable (merge only writes between phases, and the pool's
    wake/idle barrier orders those writes before the workers' reads),
    so lookups are lock-free and exact for every state discovered
    before the round.  A successor not in the prefix is shipped back
    as "fresh" with its hash.  Each round then dedups those fresh
    candidates {e in parallel by stripe}: equality can only hold
    within a stripe (equal values hash equal), so the stripes resolve
    their equality classes independently — conflict-checked, a full
    hash match still requires exact equality, unequal comparisons are
    counted per stripe.  The sequential replay resolves each class at
    its first actually-taken member: that member allocates the new
    index (or takes the budget cut) exactly where the sequential merge
    would have inserted it, and later members hit it — so numbering,
    edges and cut counts are untouched by the sharding.

    {b Crash safety.}  A probe or step function that raises inside a
    worker propagates out of {!explore} (first failing frontier index,
    via {!Afd_runner.Pool}'s per-index capture), the worker domains
    are shut down, and nothing leaks. *)

(** Per-exploration accounting of the striped merge, reported through
    the [?merge_stats] callback — never part of the returned
    {!Space.t}, so instrumented runs stay structurally identical. *)
type merge_stats = {
  ms_rounds : int;  (** BFS rounds (parallel phases) executed. *)
  ms_stripes : int;  (** Stripe count (a constant, for reporting). *)
  ms_candidates : int array;
      (** Worker-reported fresh successors deduped, per stripe. *)
  ms_classes : int array;
      (** Distinct equality classes among them, per stripe. *)
  ms_conflicts : int array;
      (** Hash-equal-but-value-unequal comparisons, per stripe — the
          conflict check engaging. *)
}

val explore :
  ?por:bool ->
  ?symmetry:('s -> 's) ->
  ?jobs:int ->
  ?profile:(string -> float -> unit) ->
  ?merge_stats:(merge_stats -> unit) ->
  ('s, 'a) Afd_ioa.Automaton.t ->
  ('s, 'a) Probe.t ->
  ('s, 'a) Space.t
(** Like {!Space.explore}, with the expansion work spread over [jobs]
    domains (default [1]; clamped to at least 1).  [jobs = 1] still
    runs the round-based machinery — inline, with no domain spawned —
    so single-job runs exercise the same code path the differential
    tests compare.  The result is structurally identical to
    [Space.explore ~por aut probe] at any [jobs].  [?profile] reports
    wall-clock phase timings ([workers], [stripe_dedup], [replay]);
    [?merge_stats] the striped-merge accounting — neither touches the
    result. *)

val explore_pool :
  ?por:bool ->
  ?symmetry:('s -> 's) ->
  ?profile:(string -> float -> unit) ->
  ?merge_stats:(merge_stats -> unit) ->
  Afd_runner.Pool.t ->
  ('s, 'a) Afd_ioa.Automaton.t ->
  ('s, 'a) Probe.t ->
  ('s, 'a) Space.t
(** [explore] on a caller-managed pool, so one set of worker domains
    amortises over many explorations (the benchmark matrix and the
    engine's catalog sweep).  The pool is left usable. *)

val agree :
  equal_state:('s -> 's -> bool) ->
  equal_action:('a -> 'a -> bool) ->
  ('s, 'a) Space.t ->
  ('s, 'a) Space.t ->
  bool
(** Structural identity of two explorations: states pointwise equal in
    the same order, edge arrays equal (order, endpoints, action, task
    label), parent trees, depths, verdicts, POR flags, and stats all
    equal.  This is strictly stronger than the state-set / edge-
    multiset equality the acceptance gate needs, and is what the PX
    benchmark rows assert between sequential and parallel runs. *)
