(** A lint subject: a registry item packed with one shared (lazy)
    state-space exploration.

    Before this module, every exploring rule called [Explore.reachable]
    itself — six redundant BFS passes per subject, and no way to tell
    the report how complete any of them was.  A [Subject.t] flattens
    compositions once ({!Composition.as_automaton}, with the
    componentwise state equality {e and} its congruent hash) and
    memoizes a single {!Space.explore} that all rules share; the
    exploration (with its {!Space.verdict}) is surfaced in the report
    only if some rule actually forced it. *)

open Afd_ioa

(** Uniform automaton view: the automaton, its probe, the shared lazy
    exploration, and the shared lazy {!Live} condensation over it (the
    SCC/fairness analysis all graph rules and liveness verdicts draw
    from — computed once per subject, like the exploration itself). *)
type packed =
  | P : {
      aut : ('s, 'a) Automaton.t;
      probe : ('s, 'a) Probe.t;
      space : ('s, 'a) Space.t Lazy.t;
      live : Live.t Lazy.t;
      symm : Symm.verdict Lazy.t option;
          (** the equivariance analysis, when the engine ran with
              symmetry on; forced lazily (the analyzer explores) *)
      quotiented : bool Lazy.t;
          (** whether the shared exploration runs orbit-quotiented —
              true exactly when the analysis certified the declared
              symmetry.  Absence-style rules (dead-task,
              dead-transition, livelock, unsatisfiable fairness) skip
              themselves on a quotient, as under POR. *)
    }
      -> packed

type t = {
  origin : string;
  entry : Registry.entry;
  name : string;
  packed : packed option;  (** [None] for spec entries *)
}

val make :
  ?por:bool ->
  ?max_states:int ->
  ?jobs:int ->
  ?compiled:bool ->
  ?symmetry:bool ->
  origin:string ->
  Registry.entry ->
  t
(** [max_states] overrides the probe's own exploration cap;
    [por] (default [false]) turns on the sleep-set reduction for the
    shared exploration (edge-granular rules then skip themselves — see
    {!Rules.mc}); [jobs > 1] (default [1]) runs the shared exploration
    on {!Pspace} across that many domains; [compiled] (default
    [false]) on {!Cspace} — the packed composition backend for
    composition entries, the generic interned one otherwise.  Same
    result in every combination, structurally ({!Pspace.agree}).

    [symmetry] (default [false]) runs the {!Symm} equivariance
    analysis on each packed subject; a certified subject's shared
    exploration is then quotiented by orbit ({!Space.explore} with
    [~symmetry]), an uncertified one explores unreduced and the
    symmetry rules ({!Rules.symmetry}) report the verdict. *)

val symm_verdict : t -> Symm.verdict option
(** The equivariance analysis result; [None] when the engine ran
    without symmetry or the subject is a spec entry.  Forces the
    (bounded) analyzer exploration. *)

val quotiented : t -> bool
(** Whether the shared exploration runs on orbit representatives
    (certified symmetry only).  Does not force the exploration
    itself. *)

val exploration : t -> Report.exploration option
(** The exploration summary, only if some rule forced it ([None] for
    specs and for subjects no rule explored). *)
