(* Static symmetry inference and orbit canonicalization.

   The soundness contract is spelled out in symm.mli and DESIGN.md: we
   check equivariance for EVERY permutation at EVERY representative a
   bounded quotient exploration discovers.  Only the full group at the
   representatives lets the inductive argument factor an arbitrary
   reachable state s of the unreduced system as rho . r with r a
   discovered representative; generator-only or sampled checks do not
   compose into a certificate. *)

open Afd_ioa

module Perm = struct
  type t = int array

  let identity n = Array.init n (fun i -> i)
  let apply (p : t) i = if i >= 0 && i < Array.length p then p.(i) else i

  let inverse (p : t) =
    let q = Array.make (Array.length p) 0 in
    Array.iteri (fun i j -> q.(j) <- i) p;
    q

  let compose (p : t) (q : t) = Array.init (Array.length p) (fun i -> p.(q.(i)))

  let all ~n =
    if n < 0 || n > 8 then
      invalid_arg (Printf.sprintf "Symm.Perm.all: n = %d out of range [0, 8]" n);
    (* Insert element [k] into every position of every permutation of
       [0..k-1]; n! results, identity first by construction for n <= 1. *)
    let rec go k =
      if k = 0 then [ [] ]
      else
        List.concat_map
          (fun perm ->
            let rec insert pre post =
              (List.rev_append pre ((k - 1) :: post))
              ::
              (match post with [] -> [] | x :: rest -> insert (x :: pre) rest)
            in
            insert [] perm)
          (go (k - 1))
    in
    go n |> List.map Array.of_list

  let is_identity (p : t) =
    let ok = ref true in
    Array.iteri (fun i j -> if i <> j then ok := false) p;
    !ok

  let to_string (p : t) =
    if is_identity p then "id"
    else begin
      (* Cycle notation over the moved points. *)
      let n = Array.length p in
      let seen = Array.make n false in
      let buf = Buffer.create 16 in
      for i = 0 to n - 1 do
        if (not seen.(i)) && p.(i) <> i then begin
          Buffer.add_char buf '(';
          let j = ref i in
          let first = ref true in
          while not seen.(!j) do
            seen.(!j) <- true;
            if not !first then Buffer.add_char buf ' ';
            first := false;
            Buffer.add_string buf (Loc.to_string !j);
            j := p.(!j)
          done;
          Buffer.add_char buf ')'
        end
      done;
      Buffer.contents buf
    end
end

(* Container actions.  [Set.map]/[Map] rebuilds re-balance the AVL
   trees, so permuted containers have deterministic shape; the [cmp_*]
   orders below compare element lists and stay congruent with the
   semantic equalities regardless. *)

let perm_set pi s = Loc.Set.map pi s

let perm_map_keys pi m =
  Loc.Map.fold (fun k v acc -> Loc.Map.add (pi k) v acc) m Loc.Map.empty

let perm_map pi pv m =
  Loc.Map.fold (fun k v acc -> Loc.Map.add (pi k) (pv pi v) acc) m Loc.Map.empty

let perm_event perm_o pi = function
  | Afd_prop.Fd_event.Crash i -> Afd_prop.Fd_event.Crash (pi i)
  | Afd_prop.Fd_event.Output (i, o) -> Afd_prop.Fd_event.Output (pi i, perm_o pi o)

let rename_locs ~n pi name =
  let len = String.length name in
  let buf = Buffer.create len in
  let is_digit c = c >= '0' && c <= '9' in
  let is_word c = is_digit c || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') in
  let i = ref 0 in
  while !i < len do
    let c = name.[!i] in
    if
      c = 'p'
      && (!i = 0 || not (is_word name.[!i - 1]))
      && !i + 1 < len
      && is_digit name.[!i + 1]
    then begin
      let j = ref (!i + 1) in
      while !j < len && is_digit name.[!j] do incr j done;
      let idx = int_of_string (String.sub name (!i + 1) (!j - !i - 1)) in
      if idx < n then Buffer.add_string buf (Loc.to_string (pi idx))
      else Buffer.add_string buf (String.sub name !i (!j - !i));
      i := !j
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

let cmp_set a b =
  Stdlib.compare (Loc.Set.elements a) (Loc.Set.elements b)

let cmp_map cmp_v a b =
  let rec go xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | (ka, va) :: xs, (kb, vb) :: ys ->
        let c = Loc.compare ka kb in
        if c <> 0 then c
        else
          let c = cmp_v va vb in
          if c <> 0 then c else go xs ys
  in
  go (Loc.Map.bindings a) (Loc.Map.bindings b)

(* ------------------------------------------------------------------ *)
(* Orbit canonicalization                                              *)
(* ------------------------------------------------------------------ *)

let canonizer_w (sy : ('s, 'a) Probe.symmetry) =
  let perms = Perm.all ~n:sy.Probe.sy_n in
  fun s ->
    let best = ref s and best_pi = ref (Perm.identity sy.Probe.sy_n) in
    List.iter
      (fun pi ->
        let s' = sy.Probe.sy_state (Perm.apply pi) s in
        if sy.Probe.sy_cmp s' !best < 0 then begin
          best := s';
          best_pi := pi
        end)
      perms;
    (!best, !best_pi)

let canonizer sy =
  let canon = canonizer_w sy in
  fun s -> fst (canon s)

(* ------------------------------------------------------------------ *)
(* The analyzer                                                        *)
(* ------------------------------------------------------------------ *)

type witness = {
  w_kind : [ `Signature | `Step | `Enabled | `Task | `Probe | `Field ];
  w_field : string option;
  w_task : string option;
  w_perm : string;
  w_state : int;
  w_detail : string;
}

type certificate = {
  c_n : int;
  c_states : int;
  c_perms : int;
  c_exhaustive : bool;
  c_fields : (string * [ `Indexed | `Invariant ]) list;
}

type verdict = Certified of certificate | Breaking of witness | Unsupported of string

let pp_witness fmt w =
  let kind =
    match w.w_kind with
    | `Signature -> "signature"
    | `Step -> "step"
    | `Enabled -> "enabledness"
    | `Task -> "task"
    | `Probe -> "probe"
    | `Field -> "field"
  in
  Format.fprintf fmt "%s not equivariant under %s at state #%d%s%s: %s" kind w.w_perm
    w.w_state
    (match w.w_field with Some f -> " (field " ^ f ^ ")" | None -> "")
    (match w.w_task with Some t -> " (task " ^ t ^ ")" | None -> "")
    w.w_detail

exception Broken of witness

(* Name the declared field on which two states disagree, for witness
   reporting.  [None] when every declared field agrees (the difference
   hides outside the declared decomposition) or no fields are declared. *)
let disagreeing_field fields s1 s2 =
  List.find_map
    (fun (Probe.F f) ->
      if f.f_equal (f.f_proj s1) (f.f_proj s2) then None
      else Some f.f_name)
    fields

let analyze (aut : ('s, 'a) Automaton.t) (probe : ('s, 'a) Probe.t) : verdict =
  match probe.Probe.symm with
  | None -> Unsupported "no declared symmetry"
  | Some sy ->
      let n = sy.Probe.sy_n in
      if n < 1 || n > 8 then Unsupported (Printf.sprintf "n = %d out of range" n)
      else begin
        let perms = Perm.all ~n in
        let nontrivial = List.filter (fun p -> not (Perm.is_identity p)) perms in
        let canon = canonizer sy in
        let pp_act a = Fmt.str "%a" probe.Probe.pp_action a in
        let equal_state = probe.Probe.equal_state in
        let equal_action = probe.Probe.equal_action in
        (* State-independent checks first: signature stability and
           probe-set closure under the group. *)
        let check_global () =
          List.iter
            (fun pi ->
              let pif = Perm.apply pi in
              List.iter
                (fun a ->
                  let a' = sy.Probe.sy_action pif a in
                  if Automaton.kind_of aut a <> Automaton.kind_of aut a' then
                    raise
                      (Broken
                         { w_kind = `Signature;
                           w_field = None;
                           w_task = None;
                           w_perm = Perm.to_string pi;
                           w_state = 0;
                           w_detail =
                             Fmt.str "kind(%s) differs from kind(%s)" (pp_act a)
                               (pp_act a');
                         });
                  if
                    not
                      (List.exists (fun b -> equal_action a' b) probe.Probe.actions)
                  then
                    raise
                      (Broken
                         { w_kind = `Probe;
                           w_field = None;
                           w_task = None;
                           w_perm = Perm.to_string pi;
                           w_state = 0;
                           w_detail =
                             Fmt.str "probe set not closed: %s has no image for %s"
                               (pp_act a) (pp_act a');
                         }))
                probe.Probe.actions)
            nontrivial
        in
        (* Field classification accumulator: Invariant until observed to
           move, Breaking (raises) when the declared transport law
           fails. *)
        let field_status =
          List.map (fun (Probe.F f) -> (Probe.F f, ref `Invariant)) sy.Probe.sy_fields
        in
        let check_fields pi pif r r' idx =
          List.iter
            (fun (Probe.F f, status) ->
              let here = f.f_proj r in
              let there = f.f_proj r' in
              if not (f.f_equal there (f.f_perm pif here)) then
                raise
                  (Broken
                     { w_kind = `Field;
                       w_field = Some f.f_name;
                       w_task = None;
                       w_perm = Perm.to_string pi;
                       w_state = idx;
                       w_detail =
                         "declared transport law fails: field of permuted state \
                          is not the permuted field";
                     });
              if not (f.f_equal there here) then status := `Indexed)
            field_status
        in
        (* Task mirroring is state-independent: resolve, once per
           permutation, which task plays each task's role after
           renaming, and that the fairness flags agree. *)
        let mirrors () =
          List.map
            (fun pi ->
              let pif = Perm.apply pi in
              let ms =
                List.map
                  (fun (t : ('s, 'a) Automaton.task) ->
                    let name' = rename_locs ~n pif t.Automaton.task_name in
                    match
                      List.find_opt
                        (fun (t' : ('s, 'a) Automaton.task) ->
                          String.equal t'.Automaton.task_name name')
                        aut.Automaton.tasks
                    with
                    | None ->
                        raise
                          (Broken
                             { w_kind = `Task;
                               w_field = None;
                               w_task = Some t.Automaton.task_name;
                               w_perm = Perm.to_string pi;
                               w_state = 0;
                               w_detail =
                                 Fmt.str "no task named %s to mirror it" name';
                             })
                    | Some t' ->
                        if t'.Automaton.fair <> t.Automaton.fair then
                          raise
                            (Broken
                               { w_kind = `Task;
                                 w_field = None;
                                 w_task = Some t.Automaton.task_name;
                                 w_perm = Perm.to_string pi;
                                 w_state = 0;
                                 w_detail =
                                   Fmt.str "fairness flag differs from task %s"
                                     name';
                               });
                        (t, t'))
                  aut.Automaton.tasks
              in
              (pi, pif, ms))
            nontrivial
        in
        (* Per-representative equivariance: steps on probed actions, and
           task correspondence (the mirrored task's enabled action is
           the permuted one, successors permute).  [r'] is the permuted
           representative, computed once per (state, permutation);
           [a_img] the action standing for the permuted [a] on that
           side — for task checks it is the mirror task's own enabled
           action, which is [equal_action]-equal to the transported one
           but produced by the automaton itself, exactly as quotient
           exploration produces it (transported payloads may be
           semantically equal yet structurally distinct rebuilds). *)
        let check_step pi pif r r' idx a a_img =
          let s1 = Option.map (sy.Probe.sy_state pif) (aut.Automaton.step r a) in
          let s2 = aut.Automaton.step r' a_img in
          match (s1, s2) with
          | None, None -> ()
          | Some t1, Some t2 when equal_state t1 t2 -> ()
          | Some t1, Some t2 ->
              raise
                (Broken
                   { w_kind = `Step;
                     w_field = disagreeing_field sy.Probe.sy_fields t2 t1;
                     w_task = None;
                     w_perm = Perm.to_string pi;
                     w_state = idx;
                     w_detail =
                       Fmt.str "successors of %s diverge from the permuted successor"
                         (pp_act a);
                   })
          | Some _, None | None, Some _ ->
              raise
                (Broken
                   { w_kind = `Step;
                     w_field = None;
                     w_task = None;
                     w_perm = Perm.to_string pi;
                     w_state = idx;
                     w_detail =
                       Fmt.str "%s %s in the permuted state"
                         (pp_act a)
                         (if s1 = None then "becomes enabled" else "is disabled");
                   })
        in
        let check_tasks pi pif r r' idx ms =
          List.iter
            (fun ((t : ('s, 'a) Automaton.task), t') ->
              let here = t.Automaton.enabled r in
              let there = t'.Automaton.enabled r' in
              match (here, there) with
              | None, None -> ()
              | Some a, Some a' when equal_action (sy.Probe.sy_action pif a) a' ->
                  (* The enabled action permutes; its successor must too. *)
                  check_step pi pif r r' idx a a'
              | _ ->
                  raise
                    (Broken
                       { w_kind = `Enabled;
                         w_field = None;
                         w_task = Some t.Automaton.task_name;
                         w_perm = Perm.to_string pi;
                         w_state = idx;
                         w_detail =
                           Fmt.str "task %s enabled action is not the permuted one"
                             t'.Automaton.task_name;
                       }))
            ms
        in
        let check_rep mirrors r idx =
          List.iter
            (fun (pi, pif, ms) ->
              let r' = sy.Probe.sy_state pif r in
              check_fields pi pif r r' idx;
              List.iter
                (fun a -> check_step pi pif r r' idx a (sy.Probe.sy_action pif a))
                probe.Probe.actions;
              check_tasks pi pif r r' idx ms)
            mirrors
        in
        (* Bounded quotient exploration over representatives: successors
           via probed actions and enabled tasks, canonized on insert. *)
        try
          check_global ();
          let mirrors = mirrors () in
          let hash =
            match probe.Probe.hash_state with Some h -> h | None -> fun _ -> 0
          in
          let seen : (int, 's list) Hashtbl.t = Hashtbl.create 256 in
          let count = ref 0 in
          let mem s =
            let h = hash s in
            match Hashtbl.find_opt seen h with
            | None -> false
            | Some bucket -> List.exists (fun r -> equal_state r s) bucket
          in
          let remember s =
            let h = hash s in
            let bucket =
              match Hashtbl.find_opt seen h with Some b -> b | None -> []
            in
            Hashtbl.replace seen h (s :: bucket)
          in
          let queue = Queue.create () in
          let push s =
            let r = canon s in
            if not (mem r) then begin
              remember r;
              Queue.add (r, !count) queue;
              incr count
            end
          in
          push aut.Automaton.start;
          List.iter push probe.Probe.seed_states;
          let exhaustive = ref true in
          let budget = probe.Probe.max_states in
          while not (Queue.is_empty queue) do
            let r, idx = Queue.pop queue in
            check_rep mirrors r idx;
            if !count >= budget then exhaustive := false
            else begin
              let succ a =
                match aut.Automaton.step r a with Some s -> push s | None -> ()
              in
              List.iter succ probe.Probe.actions;
              List.iter
                (fun (t : ('s, 'a) Automaton.task) ->
                  match t.Automaton.enabled r with Some a -> succ a | None -> ())
                aut.Automaton.tasks
            end
          done;
          Certified
            { c_n = n;
              c_states = !count;
              c_perms = List.length perms;
              c_exhaustive = !exhaustive;
              c_fields =
                List.map
                  (fun (Probe.F f, status) -> (f.f_name, !status))
                  field_status;
            }
        with Broken w -> Breaking w
      end
