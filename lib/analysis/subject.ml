open Afd_ioa

type packed =
  | P : {
      aut : ('s, 'a) Automaton.t;
      probe : ('s, 'a) Probe.t;
      space : ('s, 'a) Space.t Lazy.t;
      live : Live.t Lazy.t;
      symm : Symm.verdict Lazy.t option;
      quotiented : bool Lazy.t;
    }
      -> packed

type t = {
  origin : string;
  entry : Registry.entry;
  name : string;
  packed : packed option;
}

let make ?(por = false) ?max_states ?(jobs = 1) ?(compiled = false)
    ?(symmetry = false) ~origin entry =
  let with_cap p =
    match max_states with None -> p | Some m -> { p with Probe.max_states = m }
  in
  let pack ?explore a p =
    (* Orbit quotienting is gated on the analyzer's certificate: only a
       subject whose declared S_n action survives the equivariance
       check explores on representatives; breaking or undeclared
       subjects silently fall back to the unreduced exploration (and
       the symmetry rules report why). *)
    let symm = if symmetry then Some (lazy (Symm.analyze a p)) else None in
    let canon =
      lazy
        (match symm with
        | None -> None
        | Some v -> (
          match (Lazy.force v, p.Probe.symm) with
          | Symm.Certified _, Some sy -> Some (Symm.canonizer sy)
          | (Symm.Certified _ | Symm.Breaking _ | Symm.Unsupported _), _ -> None))
    in
    let space =
      lazy
        (let symmetry = Lazy.force canon in
         match explore with
         | Some run -> run ?symmetry ()
         | None ->
           if compiled then Cspace.explore ?symmetry ~por ~jobs a p
           else if jobs <= 1 then Space.explore ?symmetry ~por a p
           else Pspace.explore ?symmetry ~por ~jobs a p)
    in
    P
      { aut = a;
        probe = p;
        space;
        live = lazy (Live.analyze a (Lazy.force space));
        symm;
        quotiented = lazy (Option.is_some (Lazy.force canon));
      }
  in
  let packed =
    match entry with
    | Registry.Automaton (a, p) -> Some (pack a (with_cap p))
    | Registry.Composition (c, p) ->
      (* Composition states hold closures, on which the probe's default
         structural equality would bail out: flatten with the
         componentwise equality and its congruent hash.  That exact
         pairing is also {!Cspace.explore_composition}'s precondition,
         so compiled runs take the packed backend here. *)
      let a = Composition.as_automaton c in
      let p =
        with_cap
          { p with
            Probe.equal_state = Composition.equal_state;
            hash_state = Some Composition.hash_state;
          }
      in
      let explore =
        if compiled then
          Some
            (fun ?symmetry () ->
              Cspace.explore_composition ?symmetry ~por ~jobs c p)
        else None
      in
      Some (pack ?explore a p)
    | Registry.Spec _ -> None
  in
  { origin; entry; name = Registry.entry_name entry; packed }

let symm_verdict t =
  match t.packed with
  | Some (P { symm = Some v; _ }) -> Some (Lazy.force v)
  | Some (P { symm = None; _ }) | None -> None

let quotiented t =
  match t.packed with
  | Some (P { quotiented = q; _ }) -> Lazy.force q
  | None -> false

let exploration t =
  match t.packed with
  | None -> None
  | Some (P { space = sp; _ }) ->
    if not (Lazy.is_val sp) then None
    else
      let sp = Lazy.force sp in
      Some
        { Report.explored = t.name;
          exp_origin = t.origin;
          states = Array.length sp.Space.states;
          transitions = sp.Space.stats.Space.transitions;
          verdict = Space.verdict_string sp.Space.verdict;
          exhaustive = sp.Space.verdict = Space.Exhausted;
          por = sp.Space.por;
          slept = sp.Space.stats.Space.slept;
        }
