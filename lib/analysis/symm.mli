(** Static symmetry inference and orbit canonicalization.

    Failure-detector automata are (mostly) indifferent to process
    identities: permuting the location universe permutes their states
    and actions without changing behavior.  This module makes that
    claim {e checkable} and then {e exploitable}:

    - {!analyze} takes a subject (automaton + probe) whose probe
      declares an S_n action ({!Probe.symmetry}) and checks, state by
      state over a bounded quotient exploration and permutation by
      permutation over the whole group, that the step relation, task
      enabledness, signature, and probe set are equivariant under the
      declared action — classifying every declared state field as
      identity-independent, process-indexed, or symmetry-breaking.
      The result is either a {!certificate} or a concrete breaking
      {!witness} (the permutation, the state, the action or task, and
      the offending field when one can be named).

    - {!canonizer} turns a declared symmetry into an orbit
      canonicalization function: the minimum of the state's orbit
      under [sy_cmp].  Handed to [Space.explore ~symmetry] (or the
      parallel/compiled explorers) it quotients the seen-set by orbit;
      {!canonizer_w} additionally returns the witnessing permutation,
      which {!Mc} uses to lift quotient counterexample paths back to
      genuine runs of the unreduced system.

    {b Soundness.}  Checking equivariance for {e every} permutation at
    {e every representative} the quotient exploration discovers
    certifies the quotient without ever building the unreduced space:
    by induction every reachable state [s] of the original system
    factors as [ρ·r] for a discovered representative [r], because an
    equivariant step from [ρ·r] is [ρ]-conjugate to an explored step
    from [r].  Checking only a generator set, or only sampled states,
    does {e not} compose — the induction needs arbitrary [ρ] at the
    representatives.  DESIGN.md ("Orbit reduction") spells the argument
    out. *)

module Perm : sig
  type t = int array
  (** [p.(i)] is the image of location [i]. *)

  val identity : int -> t
  val apply : t -> int -> int
  val inverse : t -> t
  val compose : t -> t -> t
  (** [compose p q] maps [i] to [p.(q.(i))] (apply [q] first). *)

  val all : n:int -> t list
  (** Every permutation of [0..n-1] ([n!] of them); raises
      [Invalid_argument] for [n > 8] — factorial enumeration is the
      point, not a liability. *)

  val to_string : t -> string
  (** Compact one-line rendering, e.g. ["(p0 p1)"] for a transposition
      (cycle notation, fixed points omitted, identity is ["id"]). *)
end

(** Helpers for building declared actions out of the standard
    containers. *)

val perm_set : (int -> int) -> Afd_ioa.Loc.Set.t -> Afd_ioa.Loc.Set.t
val perm_map_keys : (int -> int) -> 'v Afd_ioa.Loc.Map.t -> 'v Afd_ioa.Loc.Map.t

val perm_map :
  (int -> int) -> ((int -> int) -> 'v -> 'v) -> 'v Afd_ioa.Loc.Map.t -> 'v Afd_ioa.Loc.Map.t
(** Permute both the keys and (via the given action) the values. *)

val perm_event :
  ((int -> int) -> 'o -> 'o) ->
  (int -> int) ->
  'o Afd_prop.Fd_event.t ->
  'o Afd_prop.Fd_event.t
(** [Crash i ↦ Crash (π i)], [Output (i, o) ↦ Output (π i, π·o)]. *)

val rename_locs : n:int -> (int -> int) -> string -> string
(** Rewrite every maximal ["p<digits>"] token naming a location below
    [n] through the permutation — the generic task renamer for the
    catalog's ["fd_p0"] / ["crash_p1"] / ["FD-P/fd_p2"] conventions. *)

val cmp_set : Afd_ioa.Loc.Set.t -> Afd_ioa.Loc.Set.t -> int
(** Total order on location sets congruent with [Loc.Set.equal]
    (element lists compared — AVL tree shape never leaks). *)

val cmp_map : ('v -> 'v -> int) -> 'v Afd_ioa.Loc.Map.t -> 'v Afd_ioa.Loc.Map.t -> int
(** Same for maps, with a value comparison. *)

(** {1 The analyzer} *)

type witness = {
  w_kind : [ `Signature | `Step | `Enabled | `Task | `Probe | `Field ];
  w_field : string option;
      (** the offending declared field, when the breaking successor
          disagrees on exactly one *)
  w_task : string option;
  w_perm : string;  (** rendering of the breaking permutation *)
  w_state : int;  (** index in the analyzer's exploration *)
  w_detail : string;
}

type certificate = {
  c_n : int;
  c_states : int;  (** representatives the check covered *)
  c_perms : int;  (** permutations checked at each of them ([n!]) *)
  c_exhaustive : bool;
      (** the quotient exploration finished within the probe budget —
          only then is the certificate a proof about the whole
          reachable space *)
  c_fields : (string * [ `Indexed | `Invariant ]) list;
}

type verdict =
  | Certified of certificate
  | Breaking of witness
  | Unsupported of string
      (** no declared symmetry (or an unusable one) — the subject can
          only explore unreduced *)

val pp_witness : witness Fmt.t

val analyze : ('s, 'a) Afd_ioa.Automaton.t -> ('s, 'a) Probe.t -> verdict
(** Run the static equivariance check described above over a bounded
    quotient exploration (the probe's [max_states] budget).  Returns
    [Unsupported] when the probe declares no symmetry. *)

(** {1 Orbit canonicalization} *)

val canonizer : ('s, 'a) Probe.symmetry -> 's -> 's
(** Orbit minimum under [sy_cmp]: a representative function suitable
    for [Space.explore ~symmetry] — constant on orbits, idempotent on
    representatives. *)

val canonizer_w : ('s, 'a) Probe.symmetry -> 's -> 's * Perm.t
(** Same, returning the witnessing permutation [σ] with
    [canon s = σ·s]. *)
