open Afd_ioa
open Afd_core
open Afd_system
open Afd_consensus

let n = 3

(* --- core: AFD automata over the Fd_event alphabet --- *)

let leader_acts =
  [ Fd_event.Crash 0;
    Fd_event.Crash 1;
    Fd_event.Crash 2;
    Fd_event.Output (0, 0);
    Fd_event.Output (1, 0);
    Fd_event.Output (1, 1);
    Fd_event.Output (2, 2);
  ]

let leader_probe ?actions ?equal_state ?hash_state ?max_states ?symm () =
  Probe.make
    ~equal_action:(Fd_event.equal Loc.equal)
    ~pp_action:(Fd_event.pp Loc.pp)
    ?equal_state ?hash_state ?max_states ?symm
    (Option.value ~default:leader_acts actions)

let set_acts =
  [ Fd_event.Crash 0;
    Fd_event.Crash 1;
    Fd_event.Crash 2;
    Fd_event.Output (0, Loc.Set.empty);
    Fd_event.Output (0, Loc.Set.singleton 0);
    Fd_event.Output (1, Loc.Set.of_list [ 1; 2 ]);
    Fd_event.Output (2, Loc.set_of_universe ~n);
  ]

let set_probe ?actions ?equal_state ?hash_state ?max_states ?symm () =
  Probe.make
    ~equal_action:(Fd_event.equal Loc.Set.equal)
    ~pp_action:(Fd_event.pp Loc.pp_set)
    ?equal_state ?hash_state ?max_states ?symm
    (Option.value ~default:set_acts actions)

(* S_3-closed probe universes for the symmetry-declared subjects: the
   analyzer demands that every probed action's whole orbit is probed
   (otherwise a quotient run could skip an action the unreduced run
   takes).  Supersets of [set_acts] / [leader_acts]. *)
let sym_set_acts =
  let locs = Loc.universe ~n in
  let rec subsets = function
    | [] -> [ Loc.Set.empty ]
    | x :: rest ->
      let ss = subsets rest in
      ss @ List.map (Loc.Set.add x) ss
  in
  List.map (fun i -> Fd_event.Crash i) locs
  @ List.concat_map
      (fun i -> List.map (fun s -> Fd_event.Output (i, s)) (subsets locs))
      locs

let sym_leader_acts =
  let locs = Loc.universe ~n in
  List.map (fun i -> Fd_event.Crash i) locs
  @ List.concat_map
      (fun i -> List.map (fun l -> Fd_event.Output (i, l)) locs)
      locs

(* Declared S_3 actions.  Declaring is a claim to be {e checked}, never
   an assertion: the analyzer certifies fd_perfect/fd_sigma/... and
   produces concrete breaking witnesses for the min-based leader
   detectors (fd_omega, fd_anti_omega) and the k-set ones. *)
let set_symm =
  { Probe.sy_n = n;
    sy_state = Symm.perm_set;
    sy_action = Symm.perm_event Symm.perm_set;
    sy_cmp = Symm.cmp_set;
    sy_fields =
      [ Probe.F
          { f_name = "crashset";
            f_proj = (fun s -> s);
            f_perm = Symm.perm_set;
            f_equal = Loc.Set.equal;
          }
      ];
  }

let leader_symm =
  { Probe.sy_n = n;
    sy_state = Symm.perm_set;
    sy_action = Symm.perm_event (fun pif l -> pif l);
    sy_cmp = Symm.cmp_set;
    sy_fields =
      [ Probe.F
          { f_name = "crashset";
            f_proj = (fun s -> s);
            f_perm = Symm.perm_set;
            f_equal = Loc.Set.equal;
          }
      ];
  }

let flip_symm =
  { Probe.sy_n = n;
    sy_state = (fun pif (c, t) -> (Symm.perm_set pif c, t));
    sy_action = Symm.perm_event (fun pif l -> pif l);
    sy_cmp =
      (fun (c1, t1) (c2, t2) ->
        let c = Symm.cmp_set c1 c2 in
        if c <> 0 then c else Bool.compare t1 t2);
    sy_fields =
      [ Probe.F
          { f_name = "crashset";
            f_proj = fst;
            f_perm = Symm.perm_set;
            f_equal = Loc.Set.equal;
          };
        Probe.F
          { f_name = "toggle";
            f_proj = snd;
            f_perm = (fun _ t -> t);
            f_equal = Bool.equal;
          };
      ];
  }

(* Hashes congruent with the custom state equalities above: AVL sets
   that are [Loc.Set.equal] can differ in tree shape, so hash the sorted
   element lists, never the trees.  Every probe with a custom
   [equal_state] MUST pair it with one of these — otherwise the
   explorer degrades to the exact single-bucket fallback (O(n²)); a
   regression test asserts the catalog carries no such probe. *)
let hash_set s = Hashtbl.hash (Loc.Set.elements s)

let hash_leader_noisy (c, q) = Hashtbl.hash (Loc.Set.elements c, Loc.Map.bindings q)

let hash_flip_flop (c, toggle) = Hashtbl.hash (Loc.Set.elements c, toggle)

let hash_set_noisy (c, q) =
  Hashtbl.hash
    ( Loc.Set.elements c,
      List.map (fun (k, v) -> (k, List.map Loc.Set.elements v)) (Loc.Map.bindings q) )

let register_core () =
  let reg e = Registry.register ~origin:"core" e in
  let crashable = Loc.set_of_universe ~n in
  let sym_set_probe () =
    set_probe ~actions:sym_set_acts ~equal_state:Loc.Set.equal
      ~hash_state:hash_set ~symm:set_symm ()
  in
  let sym_leader_probe () =
    leader_probe ~actions:sym_leader_acts ~equal_state:Loc.Set.equal
      ~hash_state:hash_set ~symm:leader_symm ()
  in
  reg
    (Registry.Automaton
       (Afd_automata.crash_automaton ~n ~crashable, sym_set_probe ()));
  reg (Registry.Automaton (Afd_automata.fd_omega ~n, sym_leader_probe ()));
  reg (Registry.Automaton (Afd_automata.fd_anti_omega ~n, sym_leader_probe ()));
  reg (Registry.Automaton (Afd_automata.fd_perfect ~n, sym_set_probe ()));
  reg (Registry.Automaton (Afd_automata.fd_sigma ~n, sym_set_probe ()));
  reg (Registry.Automaton (Afd_automata.fd_omega_k ~n ~k:2, sym_set_probe ()));
  reg (Registry.Automaton (Afd_automata.fd_psi_k ~n ~k:2, sym_set_probe ()));
  (* FD-FlipFlop is a well-formed automaton (its defect is a fair
     cycle, not a malformed signature): lint it like the truthful ones.
     FD-Silent stays out — its never-enabled fair tasks trip dead-task
     by design, and the catalog is the clean-bill-of-health set; the
     model checker covers it as CHK.silent instead. *)
  let eq_flip_flop (c1, t1) (c2, t2) = Loc.Set.equal c1 c2 && Bool.equal t1 t2 in
  reg
    (Registry.Automaton
       ( Afd_automata.fd_flip_flop ~n,
         leader_probe ~actions:sym_leader_acts ~equal_state:eq_flip_flop
           ~hash_state:hash_flip_flop ~symm:flip_symm () ));
  let eq_leader_noisy (c1, q1) (c2, q2) =
    Loc.Set.equal c1 c2 && Loc.Map.equal (List.equal Loc.equal) q1 q2
  in
  reg
    (Registry.Automaton
       ( Afd_automata.fd_omega_noisy ~n
           ~noise:(Afd_automata.noise_of_list [ (0, 2); (1, 2) ]),
         leader_probe ~equal_state:eq_leader_noisy ~hash_state:hash_leader_noisy () ));
  let eq_set_noisy (c1, q1) (c2, q2) =
    Loc.Set.equal c1 c2 && Loc.Map.equal (List.equal Loc.Set.equal) q1 q2
  in
  reg
    (Registry.Automaton
       ( Afd_automata.fd_ev_perfect_noisy ~n
           ~noise:(Afd_automata.noise_of_list [ (0, Loc.Set.singleton 1) ]),
         set_probe ~equal_state:eq_set_noisy ~hash_state:hash_set_noisy () ));
  (* Algorithm 1 composed with the crash automaton: the closed system
     whose fair traces Theorem "sampled containment" tests consume. *)
  reg
    (Registry.Composition
       ( Composition.make ~name:"fd-omega-system"
           [ Component.C (Afd_automata.fd_omega ~n);
             Component.C (Afd_automata.crash_automaton ~n ~crashable);
           ],
         leader_probe ~max_states:48 () ));
  (* The detector spec catalog: every spec must go through the
     property engine (prop-based-spec rule). *)
  reg (Registry.spec_entry Perfect.spec);
  reg (Registry.spec_entry Ev_perfect.spec);
  reg (Registry.spec_entry Strong.spec);
  reg (Registry.spec_entry Ev_strong.spec);
  reg (Registry.spec_entry Omega.spec);
  reg (Registry.spec_entry (Omega_k.spec ~k:2));
  reg (Registry.spec_entry (Psi_k.spec ~k:2));
  reg (Registry.spec_entry Sigma.spec);
  reg (Registry.spec_entry Anti_omega.spec);
  reg (Registry.spec_entry Marabout.spec);
  reg (Registry.spec_entry (D_k.spec ~k:2))

(* --- system: channels, crash, environment, heartbeat, bridge --- *)

let act_probe ?seed_states ?max_states ?rename_roundtrip ?base_kind acts =
  Probe.make ~equal_action:Act.equal ~pp_action:Act.pp ?seed_states ?max_states
    ?rename_roundtrip ?base_kind acts

let ping k = Msg.Ping k

let chan_acts =
  [ Act.Send { src = 0; dst = 1; msg = ping 0 };
    Act.Send { src = 0; dst = 1; msg = ping 1 };
    Act.Receive { src = 0; dst = 1; msg = ping 0 };
    Act.Receive { src = 0; dst = 1; msg = ping 1 };
    (* outside the signature of channel C_{0,1}: *)
    Act.Send { src = 1; dst = 0; msg = ping 0 };
    Act.Receive { src = 1; dst = 0; msg = ping 0 };
    Act.Crash 0;
  ]

(* to_ ∘ of_ of the renaming [Fd_bridge.lift_leader] performs, for the
   bijection-sanity rule. *)
let lift_leader_roundtrip ~detector act =
  let of_ = function
    | Act.Crash i -> Some (Fd_event.Crash i)
    | Act.Fd { at; detector = d; payload = Act.Pleader l } when String.equal d detector
      ->
      Some (Fd_event.Output (at, l))
    | _ -> None
  in
  let to_ = function
    | Fd_event.Crash i -> Act.Crash i
    | Fd_event.Output (at, l) -> Act.Fd { at; detector; payload = Act.Pleader l }
  in
  Option.map to_ (of_ act)

let register_system () =
  let reg e = Registry.register ~origin:"system" e in
  reg (Registry.Automaton (Channel.automaton ~src:0 ~dst:1, act_probe chan_acts));
  reg
    (Registry.Automaton (Channel.lossy ~src:0 ~dst:1 ~drop_every:2, act_probe chan_acts));
  reg (Registry.Automaton (Channel.duplicating ~src:0 ~dst:1, act_probe chan_acts));
  (* hiding a channel's delivery actions, audited against the unhidden
     signature *)
  let chan = Channel.automaton ~src:0 ~dst:1 in
  reg
    (Registry.Automaton
       ( { (Automaton.hide Act.is_receive chan) with Automaton.name = "chan_p0_p1_hidden" },
         act_probe ~base_kind:chan.Automaton.kind chan_acts ));
  reg
    (Registry.Automaton
       ( Crash.automaton ~n ~crashable:(Loc.set_of_universe ~n),
         act_probe
           [ Act.Crash 0;
             Act.Crash 1;
             Act.Crash 2;
             Act.Send { src = 0; dst = 1; msg = ping 0 };
           ] ));
  reg
    (Registry.Automaton
       ( Environment.consensus_at 0,
         act_probe
           [ Act.Crash 0;
             Act.Decide { at = 0; v = true };
             Act.Decide { at = 0; v = false };
             Act.Propose { at = 0; v = true };
             Act.Propose { at = 0; v = false };
             Act.Propose { at = 1; v = true };
             Act.Decide { at = 1; v = true };
           ] ));
  reg
    (Registry.Automaton
       ( Environment.scripted_at 0 ~value:true,
         act_probe
           [ Act.Crash 0;
             Act.Decide { at = 0; v = true };
             Act.Propose { at = 0; v = true };
             Act.Propose { at = 0; v = false };
           ] ));
  reg
    (Registry.Automaton
       ( Heartbeat.automaton ~n ~initial_timeout:2 ~loc:0,
         act_probe ~max_states:64
           [ Act.Crash 0;
             Act.Receive { src = 1; dst = 0; msg = ping 0 };
             Act.Receive { src = 2; dst = 0; msg = ping 0 };
             Act.Send { src = 0; dst = 1; msg = ping 0 };
             Act.Fd { at = 0; detector = Heartbeat.detector_name; payload = Act.Pset Loc.Set.empty };
             Act.Crash 1;
           ] ));
  reg
    (Registry.Automaton
       ( Fd_bridge.lift_leader ~detector:"Omega" (Afd_automata.fd_omega ~n),
         act_probe
           ~rename_roundtrip:(lift_leader_roundtrip ~detector:"Omega")
           [ Act.Crash 0;
             Act.Crash 1;
             Act.Crash 2;
             Act.Fd { at = 0; detector = "Omega"; payload = Act.Pleader 0 };
             Act.Fd { at = 1; detector = "Omega"; payload = Act.Pleader 0 };
             Act.Fd { at = 1; detector = "Omega"; payload = Act.Pleader 1 };
             Act.Fd { at = 1; detector = "other"; payload = Act.Pleader 1 };
             Act.Propose { at = 0; v = true };
           ] ));
  reg
    (Registry.Automaton
       ( Fd_bridge.transformer ~src:"EvP" ~dst:"Omega" ~loc:0 ~f:(fun _ p ->
             match p with
             | Act.Pset s ->
               Act.Pleader (Option.value ~default:0 (Loc.min_not_in ~n (fun j -> Loc.Set.mem j s)))
             | Act.Pleader l -> Act.Pleader l),
         act_probe
           [ Act.Crash 0;
             Act.Fd { at = 0; detector = "EvP"; payload = Act.Pset Loc.Set.empty };
             Act.Fd { at = 0; detector = "EvP"; payload = Act.Pset (Loc.Set.singleton 0) };
             Act.Fd { at = 0; detector = "Omega"; payload = Act.Pleader 0 };
             Act.Fd { at = 0; detector = "Omega"; payload = Act.Pleader 1 };
             Act.Fd { at = 1; detector = "EvP"; payload = Act.Pset Loc.Set.empty };
           ] ));
  (* the full heartbeat net: processes + channels + crash *)
  reg
    (Registry.Composition
       ( (Heartbeat.net ~n ~initial_timeout:2 ~crashable:(Loc.Set.singleton 2) ()).Net.composition,
         act_probe ~max_states:48
           [ Act.Crash 0;
             Act.Crash 2;
             Act.Send { src = 0; dst = 1; msg = ping 0 };
             Act.Receive { src = 1; dst = 0; msg = ping 0 };
             Act.Fd { at = 0; detector = Heartbeat.detector_name; payload = Act.Pset Loc.Set.empty };
             Act.Fd { at = 1; detector = Heartbeat.detector_name; payload = Act.Pset Loc.Set.empty };
           ] ))

(* --- consensus: processes, detectors, and a full net --- *)

let register_consensus () =
  let reg e = Registry.register ~origin:"consensus" e in
  reg
    (Registry.Automaton
       ( Flood_p.process ~n ~f:1 ~loc:0,
         act_probe ~max_states:64
           [ Act.Crash 0;
             Act.Propose { at = 0; v = true };
             Act.Propose { at = 0; v = false };
             Act.Fd { at = 0; detector = Flood_p.detector_name; payload = Act.Pset Loc.Set.empty };
             Act.Fd { at = 0; detector = Flood_p.detector_name; payload = Act.Pset (Loc.Set.singleton 2) };
             Act.Receive { src = 1; dst = 0; msg = Msg.Flood { round = 1; vals = Msg.vset_of true } };
             Act.Send { src = 0; dst = 1; msg = Msg.Flood { round = 1; vals = Msg.vset_of true } };
             Act.Step { at = 0; tag = "advance" };
             Act.Propose { at = 1; v = true };
           ] ));
  reg
    (Registry.Automaton
       ( Synod_omega.process ~n ~loc:0,
         act_probe ~max_states:64
           [ Act.Crash 0;
             Act.Propose { at = 0; v = true };
             Act.Fd { at = 0; detector = Synod_omega.detector_name; payload = Act.Pleader 0 };
             Act.Fd { at = 0; detector = Synod_omega.detector_name; payload = Act.Pleader 1 };
             Act.Receive { src = 1; dst = 0; msg = Msg.Prepare { bal = 1 } };
             Act.Receive { src = 1; dst = 0; msg = Msg.Promise { bal = 1; accepted = None } };
             Act.Receive { src = 1; dst = 0; msg = Msg.Accept { bal = 1; v = true } };
             Act.Receive { src = 1; dst = 0; msg = Msg.Accepted { bal = 1; v = true } };
             Act.Receive { src = 1; dst = 0; msg = Msg.Decided { v = true } };
             Act.Send { src = 0; dst = 1; msg = Msg.Prepare { bal = 0 } };
           ] ));
  reg
    (Registry.Automaton
       ( Synod_sigma.process ~n ~loc:0,
         act_probe ~max_states:64
           [ Act.Crash 0;
             Act.Propose { at = 0; v = true };
             Act.Fd { at = 0; detector = "Sigma"; payload = Act.Pset (Loc.set_of_universe ~n) };
             Act.Fd { at = 0; detector = Synod_omega.detector_name; payload = Act.Pleader 0 };
             Act.Receive { src = 1; dst = 0; msg = Msg.Promise { bal = 1; accepted = None } };
             Act.Receive { src = 1; dst = 0; msg = Msg.Accepted { bal = 1; v = true } };
           ] ));
  reg
    (Registry.Automaton
       ( Trb.process ~n ~sender:0 ~loc:0,
         act_probe ~max_states:64
           [ Act.Crash 0;
             Act.Propose { at = 0; v = true };
             Act.Fd { at = 0; detector = Trb.detector_name; payload = Act.Pset Loc.Set.empty };
             Act.Fd { at = 0; detector = Trb.detector_name; payload = Act.Pset (Loc.Set.singleton 0) };
             Act.Receive { src = 1; dst = 0; msg = Msg.Decided { v = true } };
             Act.Send { src = 0; dst = 1; msg = Msg.Decided { v = true } };
           ] ));
  reg
    (Registry.Automaton
       ( Kset.process ~n ~k:2 ~loc:0,
         act_probe ~max_states:64
           [ Act.Crash 0;
             Act.Fd { at = 0; detector = Kset.detector_name; payload = Act.Pset (Loc.Set.of_list [ 0; 1 ]) };
             Act.Receive { src = 1; dst = 0; msg = Msg.Kprepare { inst = 0; bal = 1 } };
             Act.Receive { src = 1; dst = 0; msg = Msg.Kpromise { inst = 0; bal = 1; accepted = None } };
             Act.Receive { src = 1; dst = 0; msg = Msg.Kaccepted { inst = 0; bal = 1; v = 1 } };
             Act.Decide_id { at = 0; v = 0 };
             Act.Decide_id { at = 1; v = 0 };
             Act.Step { at = 0; tag = "decide_id" };
           ] ));
  reg
    (Registry.Automaton
       ( Participant.automaton ~n,
         act_probe
           [ Act.Query { at = 0; detector = Participant.detector_name };
             Act.Query { at = 1; detector = Participant.detector_name };
             Act.Query { at = 0; detector = "other" };
             Act.Resp { at = 0; detector = Participant.detector_name; payload = Act.Pleader 0 };
             Act.Resp { at = 0; detector = "other"; payload = Act.Pleader 0 };
             Act.Crash 0;
             Act.Crash 1;
           ] ));
  (* Figure 1 in full: flooding consensus over P, with environment *)
  reg
    (Registry.Composition
       ( (Flood_p.net ~n ~f:1 ~crashable:(Loc.Set.singleton 2) ()).Net.composition,
         act_probe ~max_states:48
           [ Act.Crash 0;
             Act.Crash 2;
             Act.Send { src = 0; dst = 1; msg = Msg.Flood { round = 1; vals = Msg.vset_of true } };
             Act.Receive { src = 0; dst = 1; msg = Msg.Flood { round = 1; vals = Msg.vset_of true } };
             Act.Fd { at = 1; detector = Flood_p.detector_name; payload = Act.Pset Loc.Set.empty };
             Act.Propose { at = 0; v = true };
             Act.Propose { at = 2; v = false };
             Act.Decide { at = 0; v = true };
             Act.Step { at = 1; tag = "advance" };
           ] ))

let items () =
  Registry.reset ();
  register_core ();
  register_system ();
  register_consensus ();
  Registry.items ()
