(** Exhaustive state-space exploration.

    Where {!Explore} samples, [Space] enumerates: a frontier BFS over
    every probed action and every task-enabled action, deduplicating
    through a hashed seen-set ({!Probe.t}[.hash_state]), recording the
    full labelled edge relation and the BFS parent tree — so every
    discovered state carries a shortest action path from the start
    state — and saying {e honestly} whether the enumeration finished:
    {!verdict} is [Exhausted] only when no transition was cut by the
    [max_states] budget.  The model checker ({!Mc}) and the
    graph-backed lint rules are built on top of this module.

    {b Partial-order reduction.}  With [~por:true] the explorer runs a
    sleep-set reduction (Godefroid): when two task transitions commute
    at a state — both orders are defined and converge to the same state
    while preserving each other's enabledness — only one interleaving
    is expanded and the symmetric edge is {e slept}.  Sleep sets prune
    transitions, never states: the reachable state set is provably the
    same as the full search (a state reached again with a smaller sleep
    set is re-expanded), which the differential tests assert
    set-for-set.  Edge-complete analyses (shortest counterexamples,
    dead-transition detection) should run with POR off. *)

(** Did the exploration cover everything? [Truncated cap] means the
    [max_states] budget cut at least one transition: any "for all
    reachable states" claim downstream is only sampled. *)
type verdict = Exhausted | Truncated of int

val verdict_string : verdict -> string
(** ["exhausted"] or ["truncated@<cap>"]. *)

val pp_verdict : verdict Fmt.t

type 'a edge = {
  src : int;  (** index of the source state in {!type-t}[.states] *)
  dst : int;
  act : 'a;
  task : string option;
      (** name of the task that produced the edge; [None] for a probed
          (environment) action *)
}

type stats = {
  transitions : int;  (** edges recorded *)
  slept : int;  (** task transitions pruned by the sleep-set reduction *)
  cut : int;
      (** transitions (or seed states) dropped by the [max_states]
          budget — nonzero exactly when the verdict is [Truncated] *)
  dup_seeds : int;  (** probe seed states equal to an earlier state *)
}

type ('s, 'a) t = {
  states : 's array;  (** discovery (BFS) order; index 0 is the start *)
  edges : 'a edge array;  (** exploration order *)
  parent : (int * 'a) option array;
      (** BFS tree: [parent.(i)] is the predecessor state and the
          action that first discovered state [i]; [None] for the start
          state and for probe seed states *)
  depth : int array;
      (** BFS depth = length of the shortest discovered action path
          from the start ([max_int] on seed states unreached from the
          start) *)
  verdict : verdict;
  por : bool;
  stats : stats;
}

val explore :
  ?por:bool ->
  ?symmetry:('s -> 's) ->
  ('s, 'a) Afd_ioa.Automaton.t ->
  ('s, 'a) Probe.t ->
  ('s, 'a) t
(** Enumerate reachable states breadth-first from the automaton's start
    state (followed by the probe's deduplicated [seed_states]), taking
    every probed action and every task-enabled action, up to the
    probe's [max_states].  [por] (default [false]) switches the
    sleep-set reduction on.  Visit order with POR off matches the
    historical {!Explore.reachable} order exactly.

    [symmetry] is an orbit canonicalization function (see
    {!Symm.canonizer}): when given, the start state, every probe seed
    and every successor are canonized on production, so the explorer
    enumerates orbit representatives and the seen-set becomes the orbit
    quotient.  Sound only for subjects holding a {!Symm} equivariance
    certificate — the engine enforces that; handing an uncertified
    canonizer here silently merges genuinely distinct states. *)

val quotient :
  ('s -> 's) ->
  ('s, 'a) Afd_ioa.Automaton.t ->
  ('s, 'a) Probe.t ->
  ('s, 'a) Afd_ioa.Automaton.t * ('s, 'a) Probe.t
(** The wrapper [explore ~symmetry] applies: canonized start/seeds and a
    step that canonizes every successor.  Exposed so the parallel
    ({!Pspace}) and compiled ({!Cspace}) front-ends quotient the same
    way. *)

val reachable : ('s, 'a) t -> 's list
(** The states in discovery order (compatible with the old
    [Explore.reachable] contract). *)

val path_actions : ('s, 'a) t -> int -> 'a list
(** Actions along the BFS-tree (shortest discovered) path from the
    start state to state [i], in execution order.  Raises
    [Invalid_argument] for a seed state not reached from the start. *)

val find : ('s, 'a) t -> ('s -> bool) -> int option
(** First state (in discovery order) satisfying the predicate. *)

val out_degree : ('s, 'a) t -> int array
(** Number of outgoing edges per state. *)

val commute :
  ('s, 'a) Afd_ioa.Automaton.t ->
  ('s, 'a) Probe.t ->
  's ->
  ('s, 'a) Afd_ioa.Automaton.task * 'a ->
  ('s, 'a) Afd_ioa.Automaton.task * 'a ->
  bool
(** [commute aut probe s (t, a_t) (u, a_u)]: do the two task moves
    commute at [s]?  True when both are defined, each leaves the other
    enabled with the same action, and the two execution orders converge
    to probe-equal states (a computed diamond).  This is the
    independence relation the sleep-set reduction prunes with, and the
    [race-pair] lint rule reports the negation of. *)
