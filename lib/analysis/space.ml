open Afd_ioa

type verdict = Exhausted | Truncated of int

let verdict_string = function
  | Exhausted -> "exhausted"
  | Truncated cap -> Printf.sprintf "truncated@%d" cap

let pp_verdict ppf v = Fmt.string ppf (verdict_string v)

type 'a edge = { src : int; dst : int; act : 'a; task : string option }
type stats = { transitions : int; slept : int; cut : int; dup_seeds : int }

type ('s, 'a) t = {
  states : 's array;
  edges : 'a edge array;
  parent : (int * 'a) option array;
  depth : int array;
  verdict : verdict;
  por : bool;
  stats : stats;
}

(* Conditional independence at state [s], established by computing the
   diamond: both orders defined, each move leaves the other enabled
   with the same action, and the two compositions converge. *)
let commute aut probe s (tk_u, act_u) (tk_t, act_t) =
  match (aut.Automaton.step s act_t, aut.Automaton.step s act_u) with
  | Some s1, Some s2 -> (
    match (tk_u.Automaton.enabled s1, tk_t.Automaton.enabled s2) with
    | Some au', Some at'
      when probe.Probe.equal_action au' act_u && probe.Probe.equal_action at' act_t
      -> (
      match (aut.Automaton.step s1 au', aut.Automaton.step s2 at') with
      | Some s12, Some s21 -> probe.Probe.equal_state s12 s21
      | _ -> false)
    | _ -> false)
  | _ -> false

(* Orbit quotient as a wrapper: canonize the start state, the probe
   seeds, and every successor the moment it is produced.  The explorer
   below then sees only representatives, so its seen-set is the
   quotient for free — one wrapper shared by the sequential, parallel
   and compiled explorers.  Enabledness and edge actions are evaluated
   at representatives, which is sound exactly when the subject carries
   an equivariance certificate (see Symm / DESIGN.md). *)
let quotient canon aut probe =
  let open Automaton in
  let aut' =
    { aut with
      start = canon aut.start;
      step = (fun s a -> Option.map canon (aut.step s a));
    }
  in
  let probe' =
    { probe with Probe.seed_states = List.map canon probe.Probe.seed_states }
  in
  (aut', probe')

(* The seen-set is a bucket table keyed by [probe.hash_state]: a bucket
   holds the indices of all discovered states with that hash, scanned
   with the probe's (authoritative) state equality.  When no congruent
   hash is known the table degrades to a single bucket — exactly the
   old list scan, still exact. *)
let rec explore ?(por = false) ?symmetry aut probe =
  match symmetry with
  | Some canon ->
    let aut, probe = quotient canon aut probe in
    explore ~por aut probe
  | None -> explore_raw ~por aut probe

and explore_raw ~por aut probe =
  let max_states = probe.Probe.max_states in
  let hash = match probe.Probe.hash_state with Some h -> h | None -> fun _ -> 0 in
  let equal = probe.Probe.equal_state in
  (* Parallel growable arrays indexed by discovery order. *)
  let states = ref [||] and n = ref 0 in
  let parent = ref [||] and depth = ref [||] in
  let sleep = ref [||] and done_moves = ref [||] in
  let expanded = ref [||] and queued = ref [||] in
  let buckets : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let edges_rev = ref [] and transitions = ref 0 in
  let slept = ref 0 and cut = ref 0 and dup_seeds = ref 0 in
  let queue = Queue.create () in
  let ensure () =
    let cap = Array.length !states in
    if !n >= cap then begin
      let cap' = max 8 (2 * cap) in
      let grow a fill =
        let b = Array.make cap' fill in
        Array.blit !a 0 b 0 cap;
        a := b
      in
      grow states aut.Automaton.start;
      grow parent None;
      grow depth max_int;
      grow sleep [];
      grow done_moves [];
      grow expanded false;
      grow queued false
    end
  in
  let find_index s =
    let bucket = Option.value ~default:[] (Hashtbl.find_opt buckets (hash s)) in
    List.find_opt (fun i -> equal (!states).(i) s) bucket
  in
  let add_state s ~par ~d ~sl =
    ensure ();
    let i = !n in
    (!states).(i) <- s;
    (!parent).(i) <- par;
    (!depth).(i) <- d;
    (!sleep).(i) <- sl;
    (!queued).(i) <- true;
    incr n;
    let h = hash s in
    Hashtbl.replace buckets h (i :: Option.value ~default:[] (Hashtbl.find_opt buckets h));
    Queue.add i queue;
    i
  in
  let record_edge src dst act task =
    incr transitions;
    edges_rev := { src; dst; act; task } :: !edges_rev
  in
  (* Take the transition [act] from state [i]; [sl] is the sleep set the
     successor inherits (always [] with POR off). *)
  let take i act task sl =
    match aut.Automaton.step (!states).(i) act with
    | None -> ()
    | Some s' -> (
      match find_index s' with
      | Some j ->
        record_edge i j act task;
        if por then begin
          (* Re-reaching a state with a smaller sleep set re-opens the
             moves the earlier visit was allowed to skip: shrink to the
             intersection and re-expand, so sleeping prunes transitions
             but never states. *)
          let inter = List.filter (fun u -> List.mem u sl) (!sleep).(j) in
          if List.length inter < List.length (!sleep).(j) then begin
            (!sleep).(j) <- inter;
            if not (!queued).(j) then begin
              (!queued).(j) <- true;
              Queue.add j queue
            end
          end
        end
      | None ->
        if !n < max_states then begin
          let d = if (!depth).(i) = max_int then max_int else (!depth).(i) + 1 in
          let j = add_state s' ~par:(Some (i, act)) ~d ~sl in
          record_edge i j act task
        end
        else incr cut)
  in
  if max_states > 0 then
    ignore (add_state aut.Automaton.start ~par:None ~d:0 ~sl:[])
  else incr cut;
  List.iter
    (fun s ->
      match find_index s with
      | Some _ -> incr dup_seeds
      | None ->
        if !n < max_states then ignore (add_state s ~par:None ~d:max_int ~sl:[])
        else incr cut)
    probe.Probe.seed_states;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    (!queued).(i) <- false;
    let s = (!states).(i) in
    if not (!expanded).(i) then begin
      (* Probed (environment) actions are never reduced and are taken
         once, on the first expansion. *)
      (!expanded).(i) <- true;
      List.iter (fun act -> take i act None []) probe.Probe.actions
    end;
    let moves =
      List.filter_map
        (fun tk ->
          match tk.Automaton.enabled s with Some a -> Some (tk, a) | None -> None)
        aut.Automaton.tasks
    in
    List.iter
      (fun (tk, act) ->
        let name = tk.Automaton.task_name in
        if not (List.mem name (!done_moves).(i)) then begin
          if por && List.mem name (!sleep).(i) then incr slept
          else begin
            let sl' =
              if not por then []
              else
                (* Sleep' = { u ∈ Sleep ∪ Done : independent(u, move, s) } *)
                List.filter
                  (fun u ->
                    match
                      List.find_opt (fun (tk2, _) -> tk2.Automaton.task_name = u) moves
                    with
                    | Some mu -> commute aut probe s mu (tk, act)
                    | None -> false)
                  (List.sort_uniq Stdlib.compare ((!sleep).(i) @ (!done_moves).(i)))
            in
            (!done_moves).(i) <- name :: (!done_moves).(i);
            take i act (Some name) sl'
          end
        end)
      moves
  done;
  {
    states = Array.sub !states 0 !n;
    edges = Array.of_list (List.rev !edges_rev);
    parent = Array.sub !parent 0 !n;
    depth = Array.sub !depth 0 !n;
    verdict = (if !cut = 0 then Exhausted else Truncated max_states);
    por;
    stats = { transitions = !transitions; slept = !slept; cut = !cut; dup_seeds = !dup_seeds };
  }

let reachable t = Array.to_list t.states

let path_actions t i =
  if i < 0 || i >= Array.length t.states then
    invalid_arg "Space.path_actions: state index out of range";
  let rec walk i acc =
    match t.parent.(i) with
    | None ->
      if i = 0 then acc
      else invalid_arg "Space.path_actions: state not reached from the start state"
    | Some (j, act) -> walk j (act :: acc)
  in
  walk i []

let find t pred =
  let n = Array.length t.states in
  let rec go i = if i >= n then None else if pred t.states.(i) then Some i else go (i + 1) in
  go 0

let out_degree t =
  let deg = Array.make (Array.length t.states) 0 in
  Array.iter (fun e -> deg.(e.src) <- deg.(e.src) + 1) t.edges;
  deg
