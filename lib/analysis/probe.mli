(** Probe universes: the finite samples over which the lint rules audit
    a (possibly infinite-state, infinite-alphabet) automaton.

    Signatures in this repository are predicates over possibly infinite
    action sets, so none of the paper's side conditions is decidable in
    general.  A probe universe makes the check mechanical anyway: a set
    of representative actions, optional extra seed states (reachable
    states are sampled by bounded exploration from the start state, see
    {!Explore}), and the equalities needed to compare states and
    actions.  Registering an automaton with a dishonest probe universe
    weakens the lint, never the automaton — the rules report a
    [Warning] when a universe is empty rather than silently passing. *)

(** One declared state field for the symmetry analyzer ({!Symm}): a
    name, a projection, how a process permutation {e would} transport
    the field's content, and an equality to compare transported
    contents.  The analyzer {e infers} the classification
    (identity-independent / process-indexed / symmetry-breaking); the
    declaration never asserts it. *)
type 's sym_field =
  | F : {
      f_name : string;
      f_proj : 's -> 'f;
      f_perm : (int -> int) -> 'f -> 'f;
      f_equal : 'f -> 'f -> bool;
    }
      -> 's sym_field

(** How the symmetric group S_n acts on an automaton's states and
    actions.  Declaring a symmetry never asserts equivariance — the
    {!Symm} analyzer checks the step/enabledness/signature functions
    against the declared action and either certifies the subject or
    produces a concrete breaking witness. *)
type ('s, 'a) symmetry = {
  sy_n : int;  (** the process universe the permutations act on *)
  sy_state : (int -> int) -> 's -> 's;
  sy_action : (int -> int) -> 'a -> 'a;
  sy_cmp : 's -> 's -> int;
      (** total order on states, congruent with [equal_state]
          ([sy_cmp a b = 0] iff [equal_state a b]) — the orbit
          canonicalizer takes the minimum of a state's orbit under it *)
  sy_fields : 's sym_field list;
}

type ('s, 'a) t = {
  actions : 'a list;  (** representative actions, inputs and outputs alike *)
  seed_states : 's list;  (** extra exploration seeds besides the start state *)
  equal_action : 'a -> 'a -> bool;
  equal_state : 's -> 's -> bool;
  hash_state : ('s -> int) option;
      (** A hash consistent with [equal_state] (equal states must hash
          alike); drives the {!Space} explorer's hashed seen-set.
          [None] means no congruent hash is known and the explorer
          degrades to a single bucket (exact, quadratic). *)
  pp_action : 'a Fmt.t;
  max_states : int;  (** cap on the bounded state exploration *)
  rename_roundtrip : ('a -> 'a option) option;
      (** For automata built by {!Afd_ioa.Automaton.rename} (or a
          wrapper such as [Fd_bridge.lift]): the composition
          [to_ ∘ of_].  The bijection sanity rule demands that it be
          the identity on every probed in-signature action. *)
  base_kind : ('a -> Afd_ioa.Automaton.kind option) option;
      (** For automata built by {!Afd_ioa.Automaton.hide}: the
          signature of the unhidden base.  The hiding sanity rule
          demands that hiding only reclassifies outputs as internal. *)
  symm : ('s, 'a) symmetry option;
      (** Declared S_n action for the symmetry analyzer; [None] means
          the subject cannot be certified and always explores
          unreduced. *)
}

val make :
  ?seed_states:'s list ->
  ?equal_action:('a -> 'a -> bool) ->
  ?equal_state:('s -> 's -> bool) ->
  ?hash_state:('s -> int) ->
  ?pp_action:'a Fmt.t ->
  ?max_states:int ->
  ?rename_roundtrip:('a -> 'a option) ->
  ?base_kind:('a -> Afd_ioa.Automaton.kind option) ->
  ?symm:('s, 'a) symmetry ->
  'a list ->
  ('s, 'a) t
(** Defaults: no seed states, structural equality (total — comparison
    failures on abstract values compare unequal, which only makes the
    exploration more conservative), a ["<action>"] printer, and a
    96-state exploration cap.

    [hash_state] defaults to [Hashtbl.hash] when [equal_state] is left
    structural (the two are congruent), and to [None] when a custom
    [equal_state] is supplied without a matching hash — supply both to
    keep the hashed seen-set fast on semantic equalities such as
    [Loc.Set.equal]. *)
