(** Flat-packing primitives for the compiled explorer.

    Conflict-checked dedup: hashes accelerate, exact equality decides.
    A hash collision costs one extra comparison (counted), never a
    wrong merge — the invariant that keeps the compiled explorer
    structurally identical to the boxed one. *)

(** Structural equality that never raises: values containing abstract
    blocks (closures) compare unequal — duplicate ids, never confusion. *)
val total_equal : 'v -> 'v -> bool

(** {1 Value interner}

    Canonicalizes boxed values into dense ids [0..size-1].  Id equality
    coincides with [equal] whenever [hash] is a congruence for it
    (equal values hash equal). *)

type 'v interner

val interner : ?hash:('v -> int) -> equal:('v -> 'v -> bool) -> unit -> 'v interner

(** Find-or-add; returns the canonical id. *)
val intern : 'v interner -> 'v -> int

(** Read-only lookup, [-1] when absent.  Safe from worker domains while
    the owner is quiescent: mutates nothing, not even counters. *)
val find : 'v interner -> 'v -> int

val value : 'v interner -> int -> 'v
val size : 'v interner -> int

(** Hash-equal-but-value-unequal probes seen by [intern] — the
    exact-equality fallback engaging. *)
val conflicts : 'v interner -> int

(** {1 Fixed-width packed keys}

    Keys are [width]-byte strings (packed product states: one 32-bit
    little-endian id per component slot, no padding), deduped through
    an FNV-1a hash and stored back to back in an arena. *)

(** Bytes per packed id slot (32-bit little-endian). *)
val id_bytes : int

val set_id : Bytes.t -> int -> int -> unit
val get_id : Bytes.t -> int -> int

(** FNV-1a (folded a 32-bit word at a time) over [len] bytes of [b]
    starting at [off], in tagged-int range. *)
val hash_slice : Bytes.t -> int -> int -> int

type keyset

val keyset : width:int -> keyset
val key_width : keyset -> int
val key_count : keyset -> int

(** Hash of a [width]-byte scratch key, as [find_key]/[add_key] expect. *)
val key_hash : keyset -> Bytes.t -> int

(** Read-only probe of the key table, [-1] when absent. *)
val find_key : keyset -> Bytes.t -> int -> int

(** Find-or-add; returns the key's index. *)
val add_key : keyset -> Bytes.t -> int -> int

(** Copy key [i] into a [width]-byte scratch buffer. *)
val key_get : keyset -> int -> Bytes.t -> unit

(** [key_id t i slot] reads the packed id at [slot] of key [i]. *)
val key_id : keyset -> int -> int -> int

(** Hash-equal-but-bytes-unequal probes seen by [add_key]. *)
val key_conflicts : keyset -> int

(** {1 Open-addressed int -> int table}

    Flat-array memo for packed [(state id, action id)] step keys:
    nonnegative int keys, arbitrary int values, no boxing and no
    allocation on lookup. *)

type itab

val itab : unit -> itab

(** The value [itab_find] reports for an absent key ([min_int] — never
    a legal step code). *)
val itab_absent : int

(** Read-only lookup, {!itab_absent} when absent.  Safe from worker
    domains while the owner is quiescent: mutates nothing. *)
val itab_find : itab -> int -> int

(** Insert a binding.  The caller guarantees the key is nonnegative and
    not yet present (the memo discipline: probe first, add on miss). *)
val itab_add : itab -> int -> int -> unit

(** {1 Growable int arrays} *)

type ints

val ints : unit -> ints
val ints_len : ints -> int
val ints_get : ints -> int -> int
val ints_set : ints -> int -> int -> unit
val ints_push : ints -> int -> unit
val ints_extend : ints -> int -> int -> unit
