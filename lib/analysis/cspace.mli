(** Compiled state-space exploration.

    The same BFS + sleep-set machinery as {!Space.explore}, run over
    dense integer state/action ids instead of boxed values: states are
    canonicalized through conflict-checked {!Pack} tables (hashes
    accelerate, exact equality decides), and — for compositions — the
    transition relation is defunctionalized into per-component step and
    enabledness tables keyed by (state id, action id), built lazily the
    first time each pair is visited and hit thereafter.

    The decoded result is {e structurally identical} to the boxed
    explorer at any [jobs] {m \times} POR {m \times} budget: same states
    in the same discovery order, same edge array, parent tree, depths,
    verdict and stats — {!Pspace.agree} is the equality the
    differential tests ([test/test_cspace.ml]) and the CX benchmark
    rows assert.  DESIGN.md ("Packed state layout") gives the layout
    and the congruence argument.

    Profiling ([?profile]) reports wall-clock phase timings
    ([workers], [merge], [decode]) through the callback and never
    touches the returned {!Space.t}, so profiled runs stay
    byte-identical to unprofiled ones. *)

val explore :
  ?por:bool ->
  ?symmetry:('s -> 's) ->
  ?jobs:int ->
  ?profile:(string -> float -> unit) ->
  ('s, 'a) Afd_ioa.Automaton.t ->
  ('s, 'a) Probe.t ->
  ('s, 'a) Space.t
(** Generic backend: whole states interned under the probe's own
    equality/hash (a [None] hash degrades to exact linear lookup,
    matching the boxed explorer's single-bucket fallback).  With
    [jobs > 1] this delegates to {!Pspace.explore} — a plain automaton
    exposes no packed representation for workers to ship, and the boxed
    parallel explorer already produces the identical structure. *)

val explore_composition :
  ?por:bool ->
  ?symmetry:('a Afd_ioa.Composition.state -> 'a Afd_ioa.Composition.state) ->
  ?jobs:int ->
  ?profile:(string -> float -> unit) ->
  'a Afd_ioa.Composition.t ->
  ('a Afd_ioa.Composition.state, 'a) Probe.t ->
  ('a Afd_ioa.Composition.state, 'a) Space.t
(** Packed backend: product states are fixed-width keys of per-component
    interned ids, product steps are per-component table lookups, and the
    POR commute diamond closes over id tuples.

    [symmetry] (an orbit canonicalizer over product states) is honored
    by falling back to the generic {!explore} on
    {!Afd_ioa.Composition.as_automaton}: a global process permutation
    mixes the per-component slots the packed tables factor over, so the
    quotient cannot run on the packed representation — the result is
    still the same [Space.t] structure the quotiented boxed explorer
    produces.

    Precondition: the probe's [equal_state]/[hash_state] must agree
    with {!Afd_ioa.Composition.equal_state}/[hash_state] (pointwise
    structural) — which every catalog caller satisfies by construction
    ({!Subject} installs exactly that pair for composition entries).

    With [jobs > 1], frontier states are expanded by worker domains
    read-only against the frozen tables (shipping packed successor keys
    and dedup codes, exactly {!Pspace}'s frozen-prefix scheme); the
    sequential merge replays the boxed pop body, recomputing in place
    the rare states whose expansion touched a table miss. *)
