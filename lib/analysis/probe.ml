(* One declared state field, for the symmetry analyzer's classification:
   the analyzer infers whether the field's content is identity-independent
   (invariant under every permutation), process-indexed (transported by
   [f_perm]), or symmetry-breaking (neither) — the declaration only says
   how a permutation *would* act on the field, never that it does. *)
type 's sym_field =
  | F : {
      f_name : string;
      f_proj : 's -> 'f;
      f_perm : (int -> int) -> 'f -> 'f;
      f_equal : 'f -> 'f -> bool;
    }
      -> 's sym_field

type ('s, 'a) symmetry = {
  sy_n : int;  (** the process universe the permutations act on *)
  sy_state : (int -> int) -> 's -> 's;
  sy_action : (int -> int) -> 'a -> 'a;
  sy_cmp : 's -> 's -> int;
      (** total order on states, congruent with [equal_state]
          ([sy_cmp a b = 0] iff [equal_state a b]) — the orbit
          canonicalizer takes the minimum of a state's orbit under it *)
  sy_fields : 's sym_field list;
}

type ('s, 'a) t = {
  actions : 'a list;
  seed_states : 's list;
  equal_action : 'a -> 'a -> bool;
  equal_state : 's -> 's -> bool;
  hash_state : ('s -> int) option;
  pp_action : 'a Fmt.t;
  max_states : int;
  rename_roundtrip : ('a -> 'a option) option;
  base_kind : ('a -> Afd_ioa.Automaton.kind option) option;
  symm : ('s, 'a) symmetry option;
}

(* Structural equality that never raises: states/actions containing
   abstract blocks (closures) compare unequal, which only makes the
   reachable-state sample larger, never wrong. *)
let structural a b = try Stdlib.compare a b = 0 with Invalid_argument _ -> false

let make ?(seed_states = []) ?(equal_action = structural) ?equal_state ?hash_state
    ?(pp_action = Fmt.any "<action>") ?(max_states = 96) ?rename_roundtrip ?base_kind
    ?symm actions =
  (* A hash is only safe when it is a congruence for the state equality:
     with the default structural equality, [Hashtbl.hash] qualifies; a
     caller-supplied equality (e.g. [Loc.Set.equal], blind to tree
     shape) needs a matching caller-supplied hash, otherwise the
     explorer falls back to a single bucket (exact, just slower). *)
  let hash_state =
    match (hash_state, equal_state) with
    | (Some _ as h), _ -> h
    | None, None -> Some Hashtbl.hash
    | None, Some _ -> None
  in
  let equal_state = Option.value ~default:structural equal_state in
  { actions;
    seed_states;
    equal_action;
    equal_state;
    hash_state;
    pp_action;
    max_states;
    rename_roundtrip;
    base_kind;
    symm;
  }
