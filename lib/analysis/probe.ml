type ('s, 'a) t = {
  actions : 'a list;
  seed_states : 's list;
  equal_action : 'a -> 'a -> bool;
  equal_state : 's -> 's -> bool;
  pp_action : 'a Fmt.t;
  max_states : int;
  rename_roundtrip : ('a -> 'a option) option;
  base_kind : ('a -> Afd_ioa.Automaton.kind option) option;
}

(* Structural equality that never raises: states/actions containing
   abstract blocks (closures) compare unequal, which only makes the
   reachable-state sample larger, never wrong. *)
let structural a b = try Stdlib.compare a b = 0 with Invalid_argument _ -> false

let make ?(seed_states = []) ?(equal_action = structural) ?(equal_state = structural)
    ?(pp_action = Fmt.any "<action>") ?(max_states = 96) ?rename_roundtrip ?base_kind
    actions =
  { actions;
    seed_states;
    equal_action;
    equal_state;
    pp_action;
    max_states;
    rename_roundtrip;
    base_kind;
  }
