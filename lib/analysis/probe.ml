type ('s, 'a) t = {
  actions : 'a list;
  seed_states : 's list;
  equal_action : 'a -> 'a -> bool;
  equal_state : 's -> 's -> bool;
  hash_state : ('s -> int) option;
  pp_action : 'a Fmt.t;
  max_states : int;
  rename_roundtrip : ('a -> 'a option) option;
  base_kind : ('a -> Afd_ioa.Automaton.kind option) option;
}

(* Structural equality that never raises: states/actions containing
   abstract blocks (closures) compare unequal, which only makes the
   reachable-state sample larger, never wrong. *)
let structural a b = try Stdlib.compare a b = 0 with Invalid_argument _ -> false

let make ?(seed_states = []) ?(equal_action = structural) ?equal_state ?hash_state
    ?(pp_action = Fmt.any "<action>") ?(max_states = 96) ?rename_roundtrip ?base_kind
    actions =
  (* A hash is only safe when it is a congruence for the state equality:
     with the default structural equality, [Hashtbl.hash] qualifies; a
     caller-supplied equality (e.g. [Loc.Set.equal], blind to tree
     shape) needs a matching caller-supplied hash, otherwise the
     explorer falls back to a single bucket (exact, just slower). *)
  let hash_state =
    match (hash_state, equal_state) with
    | (Some _ as h), _ -> h
    | None, None -> Some Hashtbl.hash
    | None, Some _ -> None
  in
  let equal_state = Option.value ~default:structural equal_state in
  { actions;
    seed_states;
    equal_action;
    equal_state;
    hash_state;
    pp_action;
    max_states;
    rename_roundtrip;
    base_kind;
  }
