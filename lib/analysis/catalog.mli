(** The audited catalog: every automaton and composition family the
    repository defines, registered with a representative probe
    universe.

    One registration section per library — [core] (the AFD automata of
    Algorithms 1/2 and their variants), [system] (channels, crash,
    environment, heartbeat, detector bridge, full nets) and [consensus]
    (flooding, Synod over Ω and over Σ+Ω, TRB, k-set agreement, the
    participant detector).  Parametric families are registered at
    representative parameters (n = 3, one location per per-location
    family); the lint samples states by bounded exploration from there. *)

val items : unit -> Registry.item list
(** (Re)build the registry from scratch and return its contents. *)
