(** Structured results of the static well-formedness analysis.

    A lint run produces a list of {!type-finding}s, each locating a
    violated side condition inside a subject (an automaton or a
    composition), possibly down to a component, a task, and a probed
    state.  Reports render both human-readable (one line per finding,
    grouped under a summary header) and as JSON for tooling. *)

type severity = Error | Warning | Info

val pp_severity : severity Fmt.t
val severity_rank : severity -> int
(** [Error] > [Warning] > [Info]; used for sorting and gating. *)

(** Where a finding points: the registered subject plus optional
    component (for compositions), task, and explored-state index. *)
type subject = {
  name : string;  (** automaton or composition name *)
  origin : string;  (** library section that registered it, e.g. ["system"] *)
  component : string option;
  task : string option;
  state : int option;  (** index into the explored state sample *)
}

val subject :
  ?component:string -> ?task:string -> ?state:int -> origin:string -> string -> subject

type finding = {
  rule : string;  (** id of the rule that fired *)
  severity : severity;
  where : subject;
  message : string;
}

(** Summary of one subject's state-space exploration, so the report
    says {e how much} of each subject the exploring rules actually saw
    — a truncated exploration means every "on all reachable states"
    claim is only sampled (see {!Space.verdict}). *)
type exploration = {
  explored : string;  (** subject name *)
  exp_origin : string;
  states : int;
  transitions : int;
  verdict : string;  (** {!Space.verdict_string} of the exploration *)
  exhaustive : bool;
  por : bool;
  slept : int;  (** transitions pruned by partial-order reduction *)
}

type t = {
  findings : finding list;  (** sorted: errors first, then by subject *)
  rules_run : int;
  subjects_checked : int;
  explorations : exploration list;
      (** one per subject whose state space a rule actually explored *)
}

val make :
  ?explorations:exploration list ->
  rules_run:int ->
  subjects_checked:int ->
  finding list ->
  t
(** Sorts the findings by descending severity, then subject name. *)

val errors : t -> finding list
val warnings : t -> finding list
val has_errors : t -> bool

val truncated : t -> exploration list
(** Explorations that hit a budget before exhausting their state space.
    Every "on all reachable states" claim about such a subject is only
    sampled; [afd_lint --strict] fails the exit gate when this is
    nonempty. *)

val exit_code : ?strict:bool -> ?mc_fail:bool -> ?mc_truncated:bool -> t -> int
(** The [afd_lint] exit-code contract, as a pure function of the
    report (so the tests pin it without spawning processes):

    - [1] — error findings, a failed model-checking gate ([mc_fail]),
      or warnings under [strict];
    - [2] — [strict] and some exploration (lint or MC, via
      [mc_truncated]) hit its state budget: every "proved" or absence
      verdict about those subjects is sampled, not exhaustive;
    - [0] — clean.

    [1] dominates [2]: a report that is both wrong and sampled is
    first of all wrong.  (The CLI separately exits [2] on usage
    errors — unknown rule or fixture ids — before any report
    exists.) *)

val pp_finding : finding Fmt.t
val pp : t Fmt.t
(** Summary header (including exhausted/truncated exploration counts)
    plus one line per finding. *)

val pp_explorations : t Fmt.t
(** One line per exploration: states, transitions, verdict. *)

val to_json : t -> string
(** The whole report as a JSON object (hand-rolled, no dependency):
    [{"summary": {...}, "explorations": [...], "findings": [...]}].
    The summary carries [explored]/[exhausted]/[truncated] counts so
    tooling can gate on completeness. *)
