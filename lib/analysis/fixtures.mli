(** Deliberately malformed automata, one per lint rule.

    Each fixture violates exactly the side condition its name (a rule
    id from {!Rules}) refers to, and is otherwise well-formed.  They
    serve two purposes: the test suite asserts that every rule fires on
    its fixture (and that the well-formed witness passes clean), and
    [afd_lint --fixture ID] demonstrates a nonzero exit on demand. *)

type act = Tick of int | Reset | Noise
(** The fixtures' alphabet: [Tick] is locally controlled, [Reset] is an
    input, [Noise] is outside every fixture's signature. *)

val counter : name:string -> limit:int -> (int, act) Afd_ioa.Automaton.t
(** A well-formed counter: one fair task ticks up to [limit], [Reset]
    restarts.  Building block for the fixtures and the library-level
    check tests. *)

val listener : (int, act) Afd_ioa.Automaton.t
(** A taskless automaton with [Tick] as an input, compatible with a
    single [counter] in a composition. *)

val well_formed : Registry.entry
(** A small well-formed counter automaton; the lint finds nothing. *)

val allowlisted_raw_spec : Registry.entry
(** A raw-scan detector spec with [allow_raw = true]: the
    [prop-based-spec] rule must stay silent on it. *)

val all : (string * Registry.entry) list
(** [(rule_id, fixture)] pairs: linting the fixture yields at least one
    finding of rule [rule_id]. *)

val mc : (string * Registry.entry) list
(** Fixtures for the graph rules ({!Rules.mc}), same convention as
    {!all}: a non-quiescent stuck state for [deadlock], a visibly racing
    task pair for [race-pair], a never-firing in-signature action for
    [dead-transition], a fair all-internal cycle for [livelock], and a
    terminal SCC that admits no fair execution for
    [unsatisfiable-fairness-obligation]. *)

val harmless_cycle : Registry.entry
(** The same fair two-state cycle as the [livelock] fixture but with
    {e output} ticks: visibly productive, so the livelock rule (and
    every other rule) must stay silent on it. *)

val symmetry : (string * Registry.entry) list
(** Fixtures for the symmetry rules ({!Rules.symmetry}), same
    convention: a min-based suspector whose declared S_2 action breaks
    for [symmetry-breaking-state], and an equivariant suspector with
    no declared action for [uncertified-symmetry].  Lint them with the
    engine's [~symmetry:true] — without it both rules are silent by
    design. *)

val symmetry_certifiable : Registry.entry
(** The equivariant suspector {e with} its S_2 action declared: the
    analyzer certifies it, the exploration quotients, and both
    symmetry rules must stay silent. *)

val find : string -> Registry.entry option
(** Searches {!all}, {!mc} and {!symmetry}. *)
