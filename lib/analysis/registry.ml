type entry =
  | Automaton :
      ('s, 'a) Afd_ioa.Automaton.t * ('s, 'a) Probe.t
      -> entry
  | Composition :
      'a Afd_ioa.Composition.t * ('a Afd_ioa.Composition.state, 'a) Probe.t
      -> entry

type item = { origin : string; entry : entry }

let entry_name = function
  | Automaton (a, _) -> a.Afd_ioa.Automaton.name
  | Composition (c, _) -> Afd_ioa.Composition.name c

let store : item list ref = ref []

let register ~origin entry = store := { origin; entry } :: !store
let items () = List.rev !store
let size () = List.length !store
let reset () = store := []
