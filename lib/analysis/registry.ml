type spec_style = Prop_compiled | Raw_scan

type entry =
  | Automaton :
      ('s, 'a) Afd_ioa.Automaton.t * ('s, 'a) Probe.t
      -> entry
  | Composition :
      'a Afd_ioa.Composition.t * ('a Afd_ioa.Composition.state, 'a) Probe.t
      -> entry
  | Spec of { name : string; style : spec_style; allow_raw : bool }

type item = { origin : string; entry : entry }

let entry_name = function
  | Automaton (a, _) -> a.Afd_ioa.Automaton.name
  | Composition (c, _) -> Afd_ioa.Composition.name c
  | Spec { name; _ } -> name

let spec_entry ?(allow_raw = false) spec =
  Spec
    { name = spec.Afd_core.Afd.name;
      style =
        (match Afd_core.Afd.style spec with
        | Afd_core.Afd.Prop_compiled -> Prop_compiled
        | Afd_core.Afd.Raw_scan -> Raw_scan);
      allow_raw;
    }

let store : item list ref = ref []

let register ~origin entry = store := { origin; entry } :: !store
let items () = List.rev !store
let size () = List.length !store
let reset () = store := []
