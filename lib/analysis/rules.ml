open Afd_ioa

let mkf ~rule ~severity ~origin ~name ?component ?task ?state message =
  { Report.rule;
    severity;
    where = Report.subject ?component ?task ?state ~origin name;
    message;
  }

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1))
  in
  go 0

let pp_kind_opt fmt = function
  | None -> Format.pp_print_string fmt "none"
  | Some k -> Automaton.pp_kind fmt k

let enabled_by_task a s =
  List.filter_map
    (fun t -> Option.map (fun act -> (t.Automaton.task_name, act)) (t.Automaton.enabled s))
    a.Automaton.tasks

(* How complete was the sample a "for all reachable states" claim rests
   on?  Suffixed to rule messages so truncation is never silent. *)
let verdict_note space =
  match space.Space.verdict with
  | Space.Exhausted -> "exploration exhausted: this covers every reachable state"
  | Space.Truncated cap ->
    Printf.sprintf
      "exploration truncated at the %d-state budget: reachable states beyond it were \
       not checked"
      cap

(* --- the rules --- *)

let probe_coverage =
  { Rule.id = "probe-coverage";
    severity = Report.Warning;
    doc = "a registered subject has an empty action probe universe: nothing was checked";
    paper = "2.3";
    check =
      (fun subj ->
        match subj.Subject.packed with
        | Some (Subject.P { probe = { Probe.actions = []; _ }; _ }) ->
          [ mkf ~rule:"probe-coverage" ~severity:Report.Warning ~origin:subj.Subject.origin
              ~name:subj.Subject.name
              "empty action probe universe: the well-formedness of this subject was \
               not actually checked"
          ]
        | Some (Subject.P _) | None -> []);
  }

let input_enabled =
  { Rule.id = "input-enabled";
    severity = Report.Error;
    doc = "every input action must be enabled in every reachable state";
    paper = "2.1";
    check =
      (fun subj ->
        match subj.Subject.packed with
        | None -> []
        | Some (Subject.P { aut = a; probe = p; space = sp; _ }) ->
          let states = Space.reachable (Lazy.force sp) in
          List.map
            (fun (si, act) ->
              mkf ~rule:"input-enabled" ~severity:Report.Error ~origin:subj.Subject.origin
                ~name:subj.Subject.name ~state:si
                (Fmt.str "input action %a is disabled" p.Probe.pp_action act))
            (Automaton.input_enabledness_counterexamples a ~states
               ~probes:p.Probe.actions));
  }

let task_determinism =
  { Rule.id = "task-determinism";
    severity = Report.Error;
    doc = "no two tasks may enable the same action in one state";
    paper = "2.5";
    check =
      (fun subj ->
        match subj.Subject.packed with
        | None -> []
        | Some (Subject.P { aut = a; probe = p; space = sp; _ }) ->
          List.concat
            (List.mapi
               (fun si s ->
                 let rec pairs acc = function
                   | [] -> acc
                   | (t1, a1) :: rest ->
                     let acc =
                       List.fold_left
                         (fun acc (t2, a2) ->
                           if p.Probe.equal_action a1 a2 then
                             mkf ~rule:"task-determinism" ~severity:Report.Error
                               ~origin:subj.Subject.origin ~name:subj.Subject.name
                               ~task:t1 ~state:si
                               (Fmt.str "tasks %s and %s both enable %a" t1 t2
                                  p.Probe.pp_action a1)
                             :: acc
                           else acc)
                         acc rest
                     in
                     pairs acc rest
                 in
                 pairs [] (enabled_by_task a s))
               (Space.reachable (Lazy.force sp))));
  }

let step_signature =
  { Rule.id = "step-signature";
    severity = Report.Error;
    doc = "the step relation must reject actions outside the signature";
    paper = "2.1";
    check =
      (fun subj ->
        match subj.Subject.packed with
        | None -> []
        | Some (Subject.P { aut = a; probe = p; space = sp; _ }) ->
          List.concat
            (List.mapi
               (fun si s ->
                 List.filter_map
                   (fun act ->
                     if Automaton.kind_of a act = None && a.Automaton.step s act <> None
                     then
                       Some
                         (mkf ~rule:"step-signature" ~severity:Report.Error
                            ~origin:subj.Subject.origin ~name:subj.Subject.name
                            ~state:si
                            (Fmt.str
                               "action %a is outside the signature but the step \
                                relation accepts it"
                               p.Probe.pp_action act))
                     else None)
                   p.Probe.actions)
               (Space.reachable (Lazy.force sp))));
  }

let task_signature =
  { Rule.id = "task-signature";
    severity = Report.Error;
    doc = "tasks may only enable locally controlled (output/internal) actions";
    paper = "2.5";
    check =
      (fun subj ->
        match subj.Subject.packed with
        | None -> []
        | Some (Subject.P { aut = a; probe = p; space = sp; _ }) ->
          List.concat
            (List.mapi
               (fun si s ->
                 List.filter_map
                   (fun (tname, act) ->
                     match Automaton.kind_of a act with
                     | Some Automaton.Output | Some Automaton.Internal -> None
                     | Some Automaton.Input ->
                       Some
                         (mkf ~rule:"task-signature" ~severity:Report.Error
                            ~origin:subj.Subject.origin ~name:subj.Subject.name
                            ~task:tname ~state:si
                            (Fmt.str "task enables the input action %a"
                               p.Probe.pp_action act))
                     | None ->
                       Some
                         (mkf ~rule:"task-signature" ~severity:Report.Error
                            ~origin:subj.Subject.origin ~name:subj.Subject.name
                            ~task:tname ~state:si
                            (Fmt.str "task enables %a, which is not in the signature"
                               p.Probe.pp_action act)))
                   (enabled_by_task a s))
               (Space.reachable (Lazy.force sp))));
  }

let enabled_consistency =
  { Rule.id = "enabled-consistency";
    severity = Report.Error;
    doc = "an action a task enables must be accepted by the step relation";
    paper = "2.5";
    check =
      (fun subj ->
        match subj.Subject.packed with
        | None -> []
        | Some (Subject.P { aut = a; probe = p; space = sp; _ }) ->
          List.concat
            (List.mapi
               (fun si s ->
                 List.filter_map
                   (fun (tname, act) ->
                     match a.Automaton.step s act with
                     | Some _ -> None
                     | None ->
                       Some
                         (mkf ~rule:"enabled-consistency" ~severity:Report.Error
                            ~origin:subj.Subject.origin ~name:subj.Subject.name
                            ~task:tname ~state:si
                            (Fmt.str "task enables %a but the step relation rejects it"
                               p.Probe.pp_action act)))
                   (enabled_by_task a s))
               (Space.reachable (Lazy.force sp))));
  }

let dual_control =
  { Rule.id = "dual-control";
    severity = Report.Error;
    doc = "no action of a composition may be controlled by two components";
    paper = "2.3";
    check =
      (fun subj ->
        match subj.Subject.entry with
        | Registry.Automaton _ | Registry.Spec _ -> []
        | Registry.Composition (c, p) ->
          List.map
            (fun (act, owners) ->
              mkf ~rule:"dual-control" ~severity:Report.Error
                ~origin:subj.Subject.origin ~name:(Composition.name c)
                ~component:(String.concat "+" owners)
                (Fmt.str "action %a is controlled by %d components" p.Probe.pp_action
                   act (List.length owners)))
            (Composition.dual_controlled c ~probes:p.Probe.actions));
  }

let internal_leakage =
  { Rule.id = "internal-leakage";
    severity = Report.Error;
    doc = "internal actions of one component must be private to it";
    paper = "2.3";
    check =
      (fun subj ->
        match subj.Subject.entry with
        | Registry.Automaton _ | Registry.Spec _ -> []
        | Registry.Composition (c, p) ->
          List.map
            (fun (act, owner) ->
              mkf ~rule:"internal-leakage" ~severity:Report.Error
                ~origin:subj.Subject.origin ~name:(Composition.name c) ~component:owner
                (Fmt.str "internal action %a of %s is in another component's signature"
                   p.Probe.pp_action act owner))
            (Composition.shared_internal c ~probes:p.Probe.actions));
  }

let dead_task =
  { Rule.id = "dead-task";
    severity = Report.Warning;
    doc = "a fair task never enabled on any explored reachable state";
    paper = "2.4";
    check =
      (fun subj ->
        match (subj.Subject.entry, subj.Subject.packed) with
        | (Registry.Spec _ | Registry.Composition _), _ | _, None ->
          (* the bounded sample of a whole composition is too sparse to
             call a component's task dead; components are expected to be
             registered (and checked) individually *)
          []
        | Registry.Automaton _, Some (Subject.P { aut = a; space = sp; _ }) ->
          if Subject.quotiented subj then
            (* a task can be enabled only at its orbit-mates'
               representatives: "never enabled" over representatives
               proves nothing about the named task *)
            []
          else
          let sp = Lazy.force sp in
          let states = Space.reachable sp in
          List.filter_map
            (fun t ->
              if
                t.Automaton.fair
                && List.for_all (fun s -> t.Automaton.enabled s = None) states
              then
                Some
                  (mkf ~rule:"dead-task" ~severity:Report.Warning
                     ~origin:subj.Subject.origin ~name:a.Automaton.name
                     ~task:t.Automaton.task_name
                     (Fmt.str
                        "fair task is never enabled on any of the %d explored states \
                         (%s)"
                        (List.length states) (verdict_note sp)))
              else None)
            a.Automaton.tasks);
  }

let unfair_task =
  { Rule.id = "unfair-task";
    severity = Report.Warning;
    doc = "only the crash automaton's tasks may carry no fairness obligation";
    paper = "4.4";
    check =
      (fun subj ->
        match subj.Subject.packed with
        | None -> []
        | Some (Subject.P { aut = a; _ }) ->
          let name = subj.Subject.name in
          if contains_sub (String.lowercase_ascii name) "crash" then []
          else
            List.filter_map
              (fun t ->
                if
                  (not t.Automaton.fair)
                  && not
                       (contains_sub
                          (String.lowercase_ascii t.Automaton.task_name)
                          "crash")
                then
                  Some
                    (mkf ~rule:"unfair-task" ~severity:Report.Warning
                       ~origin:subj.Subject.origin ~name ~task:t.Automaton.task_name
                       "task carries no fairness obligation outside the crash \
                        automaton (Section 4.4 reserves that for crash tasks)")
                else None)
              a.Automaton.tasks);
  }

let rename_roundtrip =
  { Rule.id = "rename-roundtrip";
    severity = Report.Error;
    doc = "action renamings must round-trip (to_ after of_ is the identity)";
    paper = "2.3/5.3";
    check =
      (fun subj ->
        match subj.Subject.packed with
        | None -> []
        | Some (Subject.P { aut = a; probe = p; _ }) -> (
          let name = subj.Subject.name in
          match p.Probe.rename_roundtrip with
          | None -> []
          | Some rt ->
            List.filter_map
              (fun act ->
                if not (Automaton.in_signature a act) then None
                else
                  match rt act with
                  | Some act' when p.Probe.equal_action act act' -> None
                  | Some act' ->
                    Some
                      (mkf ~rule:"rename-roundtrip" ~severity:Report.Error
                         ~origin:subj.Subject.origin ~name
                         (Fmt.str "renaming round-trips %a to the different action %a"
                            p.Probe.pp_action act p.Probe.pp_action act'))
                  | None ->
                    Some
                      (mkf ~rule:"rename-roundtrip" ~severity:Report.Error
                         ~origin:subj.Subject.origin ~name
                         (Fmt.str
                            "renaming round-trip is undefined on the in-signature \
                             action %a"
                            p.Probe.pp_action act)))
              p.Probe.actions));
  }

let hiding =
  { Rule.id = "hiding";
    severity = Report.Error;
    doc = "hiding may only reclassify output actions as internal";
    paper = "2.3";
    check =
      (fun subj ->
        match subj.Subject.packed with
        | None -> []
        | Some (Subject.P { aut = a; probe = p; _ }) -> (
          let name = subj.Subject.name in
          match p.Probe.base_kind with
          | None -> []
          | Some base ->
            List.filter_map
              (fun act ->
                match (base act, Automaton.kind_of a act) with
                | Some Automaton.Output, Some Automaton.Internal -> None
                | before, after when before = after -> None
                | before, after ->
                  Some
                    (mkf ~rule:"hiding" ~severity:Report.Error
                       ~origin:subj.Subject.origin ~name
                       (Fmt.str
                          "hiding changed %a from %a to %a (only output to internal \
                           is allowed)"
                          p.Probe.pp_action act pp_kind_opt before pp_kind_opt after)))
              p.Probe.actions));
  }

let prop_based_spec =
  { Rule.id = "prop-based-spec";
    severity = Report.Error;
    doc =
      "detector specs must be compiled Afd_prop formulas, not raw trace scans \
       (allowlist for deliberate legacy wrappers)";
    paper = "3.2";
    check =
      (fun subj ->
        match subj.Subject.entry with
        | Registry.Automaton _ | Registry.Composition _ -> []
        | Registry.Spec { name; style; allow_raw } -> (
          match style with
          | Registry.Prop_compiled -> []
          | Registry.Raw_scan ->
            if allow_raw then []
            else
              [ mkf ~rule:"prop-based-spec" ~severity:Report.Error
                  ~origin:subj.Subject.origin ~name
                  "spec checks traces by scanning a raw Fd_event.t list instead of \
                   an Afd_prop formula: it cannot be monitored online under \
                   windowed retention (build it with Afd.of_prop, or allowlist a \
                   deliberate legacy wrapper)"
              ]));
  }

let all =
  [ probe_coverage;
    input_enabled;
    task_determinism;
    step_signature;
    task_signature;
    enabled_consistency;
    dual_control;
    internal_leakage;
    dead_task;
    unfair_task;
    rename_roundtrip;
    hiding;
    prop_based_spec;
  ]

let ids = List.map (fun r -> r.Rule.id) all

(* --- graph rules over the explored state space (the --mc set) --- *)

let reachable_input_enabled =
  { Rule.id = "reachable-input-enabled";
    severity = Report.Error;
    doc =
      "an input action refused in a reachable state, with the exploration's \
       completeness verdict (a proof when exhausted)";
    paper = "2.1";
    check =
      (fun subj ->
        match subj.Subject.packed with
        | None -> []
        | Some (Subject.P { aut = a; probe = p; space = sp; _ }) ->
          let sp = Lazy.force sp in
          let states = Space.reachable sp in
          List.map
            (fun (si, act) ->
              mkf ~rule:"reachable-input-enabled" ~severity:Report.Error
                ~origin:subj.Subject.origin ~name:subj.Subject.name ~state:si
                (Fmt.str "input action %a is refused in reachable state #%d (%s)"
                   p.Probe.pp_action act si (verdict_note sp)))
            (Automaton.input_enabledness_counterexamples a ~states
               ~probes:p.Probe.actions));
  }

let deadlock =
  { Rule.id = "deadlock";
    severity = Report.Error;
    doc =
      "a non-quiescent reachable state (some fair task claims an enabled action) \
       from which no task move is actually possible";
    paper = "2.4";
    check =
      (fun subj ->
        match subj.Subject.packed with
        | None -> []
        | Some (Subject.P { aut = a; space = sp; _ }) ->
          let fair_names =
            List.filter_map
              (fun t -> if t.Automaton.fair then Some t.Automaton.task_name else None)
              a.Automaton.tasks
          in
          List.concat
            (List.mapi
               (fun si s ->
                 let moves = enabled_by_task a s in
                 let fair_enabled =
                   List.exists (fun (tn, _) -> List.mem tn fair_names) moves
                 in
                 if
                   fair_enabled
                   && List.for_all
                        (fun (_, act) -> a.Automaton.step s act = None)
                        moves
                 then
                   [ mkf ~rule:"deadlock" ~severity:Report.Error
                       ~origin:subj.Subject.origin ~name:subj.Subject.name ~state:si
                       (Fmt.str
                          "state #%d is not quiescent (%d task(s) claim enabled \
                           actions) but the step relation rejects every one of them: \
                           the scheduler would stall here forever"
                          si (List.length moves))
                   ]
                 else [])
               (Space.reachable (Lazy.force sp))));
  }

let race_pair =
  { Rule.id = "race-pair";
    severity = Report.Info;
    doc =
      "two concurrently enabled tasks whose moves do not commute, deduplicated \
       under pair symmetry and annotated with whether the race recurs (its state \
       lies in a cycle of the condensation)";
    paper = "2.5";
    check =
      (fun subj ->
        match subj.Subject.packed with
        | None -> []
        | Some (Subject.P { aut = a; probe = p; space = sp; live; _ }) ->
          let sp = Lazy.force sp in
          let live = Lazy.force live in
          let reported = Hashtbl.create 8 in
          let findings = ref [] in
          List.iteri
            (fun si s ->
              let moves =
                List.filter_map
                  (fun t ->
                    Option.map (fun act -> (t, act)) (t.Automaton.enabled s))
                  a.Automaton.tasks
              in
              let rec pairs = function
                | [] -> ()
                | ((t1, _) as m1) :: rest ->
                  List.iter
                    (fun ((t2, _) as m2) ->
                      let n1 = t1.Automaton.task_name
                      and n2 = t2.Automaton.task_name in
                      (* symmetric dedup: (a,b) and (b,a) are one race *)
                      let key = if String.compare n1 n2 <= 0 then (n1, n2) else (n2, n1) in
                      if
                        (not (Hashtbl.mem reported key))
                        && not (Space.commute a p s m1 m2)
                      then begin
                        Hashtbl.add reported key ();
                        let scc = live.Live.sccs.(live.Live.scc_of.(si)) in
                        findings :=
                          mkf ~rule:"race-pair" ~severity:Report.Info
                            ~origin:subj.Subject.origin ~name:subj.Subject.name
                            ~task:(fst key) ~state:si
                            (Fmt.str
                               "tasks %s and %s are both enabled in state #%d but \
                                their moves do not commute: the schedule order is \
                                observable (%s; reported once per unordered pair)"
                               (fst key) (snd key) si
                               (if scc.Live.internal <> [] then
                                  Fmt.str
                                    "recurring: the state sits in a %d-state cycle-capable \
                                     SCC, so the race can be replayed forever"
                                    (List.length scc.Live.members)
                                else "transient: the state's SCC has no internal edge"))
                          :: !findings
                      end)
                    rest;
                  pairs rest
              in
              pairs moves)
            (Space.reachable sp);
          List.rev !findings);
  }

let dead_transition =
  { Rule.id = "dead-transition";
    severity = Report.Info;
    doc =
      "a probed in-signature action that labels no edge of the exhaustively \
       explored graph (dead transition, or a probe entry that can never fire)";
    paper = "2.1";
    check =
      (fun subj ->
        match subj.Subject.packed with
        | None -> []
        | Some (Subject.P { aut = a; probe = p; space = sp; _ }) ->
          let sp = Lazy.force sp in
          (* Only an exhausted, unreduced exploration sees every edge:
             under truncation, POR or an orbit quotient an untaken
             action proves nothing (its orbit-mate may fire). *)
          if
            sp.Space.verdict <> Space.Exhausted
            || sp.Space.por
            || Subject.quotiented subj
          then []
          else
            let candidates =
              List.filter (Automaton.in_signature a) p.Probe.actions
            in
            (* one shared pass over the edge array (with early exit),
               instead of one Array.exists per candidate *)
            let fired =
              Live.fired_actions sp ~equal:p.Probe.equal_action candidates
            in
            List.concat
              (List.mapi
                 (fun i act ->
                   if fired.(i) then []
                   else
                     [ mkf ~rule:"dead-transition" ~severity:Report.Info
                         ~origin:subj.Subject.origin ~name:subj.Subject.name
                         (Fmt.str
                            "in-signature action %a labels no edge of the %d-state \
                             exhausted graph: it can never fire (dead transition, or \
                             an unfireable probe entry)"
                            p.Probe.pp_action act
                            (Array.length sp.Space.states))
                     ])
                 candidates));
  }

let livelock =
  { Rule.id = "livelock";
    severity = Report.Warning;
    doc =
      "a weakly fair cycle of internal actions only: the system can spin forever \
       without producing any output (sound even on a truncated graph)";
    paper = "2.4";
    check =
      (fun subj ->
        match subj.Subject.packed with
        | None -> []
        | Some (Subject.P { aut = a; space = sp; live; _ }) ->
          let sp = Lazy.force sp in
          (* a cycle of the orbit quotient lifts to a lasso only up to
             a permutation — not necessarily a genuine cycle *)
          if sp.Space.por || Subject.quotiented subj then []
          else
            let live = Lazy.force live in
            Array.to_list live.Live.sccs
            |> List.filter_map (fun scc ->
                   if
                     scc.Live.internal <> []
                     && scc.Live.unmet = []
                     && List.for_all
                          (fun ei ->
                            Automaton.kind_of a sp.Space.edges.(ei).Space.act
                            = Some Automaton.Internal)
                          scc.Live.internal
                   then
                     Some
                       (mkf ~rule:"livelock" ~severity:Report.Warning
                          ~origin:subj.Subject.origin ~name:subj.Subject.name
                          ~state:(List.hd scc.Live.members)
                          (Fmt.str
                             "livelock: a weakly fair cycle over %d state(s) (SCC #%d, \
                              entered at state #%d) fires internal actions only — the \
                              system can run forever without ever producing an output \
                              (the cycle is real regardless of exploration verdict)"
                             (List.length scc.Live.members) scc.Live.id
                             (List.hd scc.Live.members)))
                   else None));
  }

let unsat_fairness =
  { Rule.id = "unsatisfiable-fairness-obligation";
    severity = Report.Error;
    doc =
      "a terminal SCC where no fair execution can continue (some fair task neither \
       fires nor is ever disabled) nor stop (some fair task is always enabled): the \
       task structure admits no fair execution through it";
    paper = "2.4";
    check =
      (fun subj ->
        match subj.Subject.packed with
        | None -> []
        | Some (Subject.P { space = sp; live; _ }) ->
          let sp = Lazy.force sp in
          (* terminality and the absence of witnesses are absence
             claims: only an exhausted, unreduced graph supports them *)
          if
            sp.Space.verdict <> Space.Exhausted
            || sp.Space.por
            || Subject.quotiented subj
          then []
          else
            let live = Lazy.force live in
            Array.to_list live.Live.sccs
            |> List.filter_map (fun scc ->
                   if
                     scc.Live.terminal && scc.Live.unmet <> []
                     && scc.Live.fair_stops = []
                   then
                     Some
                       (mkf ~rule:"unsatisfiable-fairness-obligation"
                          ~severity:Report.Error ~origin:subj.Subject.origin
                          ~name:subj.Subject.name
                          ~task:(String.concat "+" scc.Live.unmet)
                          ~state:(List.hd scc.Live.members)
                          (Fmt.str
                             "terminal SCC #%d (%d state(s), entered at state #%d) \
                              admits no fair execution: fair task(s) %s neither fire \
                              on any internal edge nor are ever disabled, and no \
                              member is a fair stop — the scheduler can neither \
                              satisfy the obligation nor halt fairly"
                             scc.Live.id
                             (List.length scc.Live.members)
                             (List.hd scc.Live.members)
                             (String.concat ", " scc.Live.unmet)))
                   else None));
  }

let mc =
  [ reachable_input_enabled; deadlock; race_pair; dead_transition; livelock;
    unsat_fairness;
  ]
let mc_ids = List.map (fun r -> r.Rule.id) mc

(* --- the symmetry rules (the --symmetry set) --- *)

let symmetry_breaking_state =
  { Rule.id = "symmetry-breaking-state";
    severity = Report.Info;
    doc =
      "a subject whose declared S_n action fails equivariance: the witness \
       names the breaking permutation, the state, and the offending field, \
       task or action";
    paper = "2.1";
    check =
      (fun subj ->
        match Subject.symm_verdict subj with
        | Some (Symm.Breaking w) ->
          [ mkf ~rule:"symmetry-breaking-state" ~severity:Report.Info
              ~origin:subj.Subject.origin ~name:subj.Subject.name
              ?task:w.Symm.w_task ~state:w.Symm.w_state
              (Fmt.str
                 "declared symmetry is broken — %a: the subject explores \
                  unreduced"
                 Symm.pp_witness w)
          ]
        | Some (Symm.Certified _ | Symm.Unsupported _) | None -> []);
  }

let uncertified_symmetry =
  { Rule.id = "uncertified-symmetry";
    severity = Report.Info;
    doc =
      "symmetry was requested but this subject carries no (usable) declared \
       S_n action: the exploration fell back to unreduced";
    paper = "2.1";
    check =
      (fun subj ->
        match Subject.symm_verdict subj with
        | Some (Symm.Unsupported reason) ->
          [ mkf ~rule:"uncertified-symmetry" ~severity:Report.Info
              ~origin:subj.Subject.origin ~name:subj.Subject.name
              (Fmt.str
                 "symmetry requested but not certifiable (%s): the \
                  exploration fell back to unreduced"
                 reason)
          ]
        | Some (Symm.Certified _ | Symm.Breaking _) | None -> []);
  }

let symmetry = [ symmetry_breaking_state; uncertified_symmetry ]
let symmetry_ids = List.map (fun r -> r.Rule.id) symmetry
