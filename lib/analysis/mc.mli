(** Exhaustive safety {e and liveness} checking of AFD specs on small
    closed systems.

    The paper's theorems quantify over {e all} fair executions; the
    bench matrix and [afd_sim check] only sample randomly scheduled
    prefixes.  On small instances this module closes the gap: it builds
    the product of a closed system automaton (detector composed with
    the crash automaton — every action is an ['o Fd_event.t]) with the
    runtime of the spec's {!Afd_prop.Prop} {e safety} clauses, explores
    it exhaustively with {!Space}, and reports each violation as a
    shortest-path {!Afd_prop.Counterexample}.  When the explorer says
    [Exhausted] and no violation exists, the safety clauses hold in
    {e every} reachable state — a proof over all schedules and all
    fault patterns in the crashable set, not a sample.

    {b What is checked.}  [Always] and [Until] clauses are checked on
    every edge of the product graph; an [Error] latches the edge's
    destination as a violating sink, so its BFS depth is the minimal
    violating prefix.  [Fold] clauses are stepped along every edge
    (latching on step errors) and their judges are evaluated in every
    reachable product state; a [J_violated] judgement is reported only
    when it is {e inescapable} — no path leads back to a non-violated
    state — which under an [Exhausted] verdict means every infinite
    extension stays violated.

    {b Liveness.}  [Stable] (eventually) clauses are decided through
    {!Live}: the clause is {e refuted} when some reachable state has a
    non-[Sat] judge and either a weakly fair cycle through it (the
    violation persists along an infinite fair execution) or is a
    {e fair stop} (no fair task enabled — a maximal fair execution may
    end with the "eventually" still pending).  The witness is a lasso
    (stem + cycle), replay-confirmed through the online
    {!Afd_prop.Monitor} after several unrollings.  The clause is
    {e proved} when no such pivot exists {e and} the exploration is
    [Exhausted] — refutations are positive facts and survive
    truncation, proofs do not.  Under [por] the sleep-set reduction
    preserves states but not cycles, so liveness is skipped entirely.

    {b Product state identity.}  Two product states are merged when
    their system states, crashed-so-far sets, trace lengths capped at
    [len_cap] (default 8), [Until] release flags and [Fold]
    accumulators agree.  When [Stable] clauses are in scope (and [por]
    is off) the identity is enriched with [last_output] (modulo
    [equal_out]) and [output_counts] capped at [count_cap] (default 1)
    so that every Stable judge is a function of the merged state.  A
    clause comparing [len] against a bound above [len_cap], or counts
    above [count_cap], needs those caps raised. *)

open Afd_ioa
open Afd_prop

type 'o violation = {
  clause : string;
  reason : string;
  kind : [ `Edge | `Judgement ];
      (** [`Edge]: a clause latched on a transition.  [`Judgement]: an
          inescapable [Fold]-judge violation (claimed only under an
          [Exhausted] verdict). *)
  depth : int;  (** length of the violating event prefix — minimal, by BFS *)
  counterexample : 'o Counterexample.t;  (** built from the shortest path *)
  confirmed : bool;
      (** the path was replayed through {!Monitor.replay} and the
          monitor's verdict is [Violated] — an end-to-end cross-check
          that the explorer and the monitor agree *)
}

type 'o lasso = {
  l_clause : string;  (** the refuted [Stable] clause *)
  l_reason : string;  (** the judge's reason at the pivot *)
  l_kind : [ `Cycle | `Stop ];
      (** [`Cycle]: a weakly fair cycle keeps the judge non-[Sat]
          forever.  [`Stop]: a fair stop — no fair task enabled, the
          "eventually" never happens (empty [l_cycle]). *)
  l_depth : int;  (** BFS depth of the pivot — the stem is shortest *)
  l_stem : 'o Fd_event.t list;  (** seed-to-pivot event path *)
  l_cycle : 'o Fd_event.t list;
      (** closed fair walk through the pivot; for every fair task it
          either fires it or visits a state where it is disabled *)
  l_confirmed : bool;
      (** replaying stem + k unrollings of the cycle (k = 1, 2, 3)
          through {!Monitor} leaves this clause's verdict non-[Sat]
          every time *)
}

(** How symmetry reduction went for a run.  [Sym_quotient] carries the
    equivariance certificate: the exploration ran on orbit
    representatives, and the safety verdict transfers to the full
    system (see the soundness argument in {!Symm}).  [Sym_breaking]
    and [Sym_fallback] runs are plain unreduced runs — requesting
    symmetry never makes a verdict weaker, only the state count
    smaller. *)
type sym_status =
  | Sym_off  (** symmetry not requested *)
  | Sym_quotient of Symm.certificate
      (** certified equivariant; exploration was orbit-quotiented *)
  | Sym_breaking of Symm.witness
      (** a concrete equivariance failure; ran unreduced *)
  | Sym_fallback of string
      (** certification unavailable (missing [perm_out]/[fperm]
          transport, n out of range, ...); ran unreduced *)

(** A permutation action on detector states with a {e semantic} total
    order and a congruent hash.  All three matter: polymorphic
    compare/hash are AVL-shape-sensitive on sets and maps, so a
    transported state could spuriously differ from a stepped one. *)
type 's state_symmetry = {
  ss_perm : (int -> int) -> 's -> 's;
  ss_cmp : 's -> 's -> int;  (** [ss_cmp x y = 0] iff semantically equal *)
  ss_hash : 's -> int;  (** congruent with [ss_cmp]-equality *)
}

val sym_set : Loc.Set.t state_symmetry
(** The action on suspect-set states: [Loc.Set.map]. *)

val sym_pair : 'a state_symmetry -> 'b state_symmetry -> ('a * 'b) state_symmetry

val sym_rigid : 'a state_symmetry
(** The trivial action, for identity-independent state components
    (flags, counters, scripted noise) — structural order and hash.
    Declaring a genuinely process-indexed component rigid yields a
    breaking witness, never an unsound quotient. *)

type 'o outcome = {
  verdict : Space.verdict;  (** completeness of the product exploration *)
  states : int;  (** product states discovered *)
  transitions : int;
  safety_clauses : string list;  (** safety clauses model-checked *)
  liveness_clauses : string list;  (** [Stable] clauses in the formula *)
  liveness_proved : string list;
      (** [Stable] clauses with no fair violating cycle and no
          violating fair stop, under an [Exhausted] unreduced
          exploration: they hold on every fair execution *)
  liveness_skipped : string list;
      (** [Stable] clauses left undecided — exploration truncated,
          [por] on, or symmetry quotient engaged (orbit merging
          preserves states, not fair cycles) *)
  violations : 'o violation list;
      (** at most one per safety clause (the shallowest), ascending depth *)
  lassos : 'o lasso list;  (** one per refuted [Stable] clause *)
  safety_proved : bool;
      (** [verdict = Exhausted] and no safety violation *)
  proved : bool;
      (** [safety_proved] and every [Stable] clause proved: the whole
          formula holds on every fair execution of the system *)
  por : bool;
  sym : sym_status;
  stats : Space.stats;
}

val default_max_states : int
(** 20_000 — comfortably above every catalog subject's product size. *)

val check :
  ?max_states:int ->
  ?por:bool ->
  ?jobs:int ->
  ?compiled:bool ->
  ?timings:(string * float) list ref ->
  ?len_cap:int ->
  ?count_cap:int ->
  ?equal_out:('o -> 'o -> bool) ->
  ?symmetry:('s, 'o Fd_event.t) Probe.symmetry ->
  ?perm_out:((int -> int) -> 'o -> 'o) ->
  equal_state:('s -> 's -> bool) ->
  hash_state:('s -> int) ->
  n:int ->
  'o Prop.t ->
  ('s, 'o Fd_event.t) Automaton.t ->
  'o outcome
(** Model-check a formula against a closed system automaton whose
    actions are the FD events themselves (so walking an edge {e is}
    observing an event).  [equal_state]/[hash_state] identify system
    states — pass {!Composition.equal_state}/{!Composition.hash_state}
    for composed systems.  [por] (default [false]) enables the
    sleep-set reduction; leave it off when shortest counterexamples or
    liveness verdicts matter (liveness is skipped under POR).
    [count_cap] (default 1) caps the per-location output counts joined
    to the state identity for liveness; [equal_out] (default
    structural) compares last outputs there.  [jobs > 1] (default 1)
    explores the product on {!Pspace} across that many domains;
    [compiled] (default [false]) on {!Cspace} (packed ids,
    defunctionalized step tables) instead.  All explorations are
    structurally identical, so the outcome — including counterexample
    paths and lassos — is the same at any [jobs], compiled or not.
    [timings], when given, accumulates per-phase wall-clock seconds
    ([explore], [clause_eval], [lasso], plus [explore.*] sub-phases
    from the parallel/compiled explorers) without touching the
    outcome.

    [symmetry], when given, is the process-permutation action on
    system states; [perm_out] the action on output payloads.  The
    checker lifts them to product states, runs the {!Symm} equivariance
    sweep over the quotient, and — only on a certificate — explores
    orbit representatives instead of states.  Counterexamples found in
    the quotient are lifted back to genuine runs of the original
    system (and replay-confirmed as always); liveness is skipped, as
    under [por].  [sy_cmp] in the descriptor must order exactly the
    states [equal_state] merges ([sy_cmp x y = 0] iff
    [equal_state x y]). *)

val check_spec :
  ?max_states:int ->
  ?por:bool ->
  ?jobs:int ->
  ?compiled:bool ->
  ?timings:(string * float) list ref ->
  ?len_cap:int ->
  ?count_cap:int ->
  ?crashable:Loc.Set.t ->
  ?symmetry:'s state_symmetry ->
  n:int ->
  'o Afd_core.Afd.spec ->
  detector:('s, 'o Fd_event.t) Automaton.t ->
  ('o outcome, string) result
(** Compose [detector] with the crash automaton over [crashable]
    (default: the full universe, i.e. {e all} fault patterns) and
    {!check} the spec's compiled formula against it.  [Error] when the
    spec is raw (no formula to check).

    [symmetry], when given, is the permutation action on the
    {e detector's} state.  The detector+crash pair is then built as a
    first-order pair automaton trace-equivalent to the composition
    (whose existential component states a permutation cannot reach),
    the crash set permutes by {!sym_set}, actions by the spec's
    [perm_out], and {!check} runs with the lifted descriptor.  A spec
    without [perm_out] falls back to the unreduced composition with
    [sym = Sym_fallback]. *)

(** {1 Parametric cutoff search}

    Verify a certified-symmetric subject at n0, n0+1, ... and report a
    parametric verdict with the orbit-vs-state growth curve.  In the
    spirit of parameterized cutoff results (Emerson–Namjoshi; Tran,
    Konnov, Widder's failure-detector case study): a run of
    consecutively proved instances is reported as a {e cutoff
    candidate} — explicitly a candidate, never a proof for all n. *)

type point = {
  pt_n : int;
  pt_orbits : int;  (** quotient states explored at this n *)
  pt_transitions : int;
  pt_verdict : Space.verdict;
  pt_proved : bool;  (** safety proved at this n *)
  pt_violated : string list;  (** violated clauses, when any *)
  pt_raw_states : int option;
      (** unreduced state count at the same n when the unreduced run
          exhausts within budget; [None] when it truncates — the
          quotient reached an instance brute force cannot *)
}

type parametric_verdict =
  | Cutoff_candidate of { n0 : int; upto : int }
      (** >= 3 consecutive instances proved from [n0]; candidate only *)
  | Proved_upto of int  (** some instances proved, fewer than the window *)
  | Refuted_at of int  (** a violation at this instance size *)
  | Unverified of string  (** no footing: breaking, uncertified, or budget *)

type parametric = {
  par_points : point list;  (** ascending n, one per instance attempted *)
  par_verdict : parametric_verdict;
  par_sym : sym_status;  (** status at the last instance attempted *)
}

val parametric :
  ?max_states:int ->
  ?ns:int list ->
  ?crashable:Loc.Set.t ->
  symmetry:'s state_symmetry ->
  'o Afd_core.Afd.spec ->
  detector:(int -> ('s, 'o Fd_event.t) Automaton.t) ->
  parametric
(** Run {!check_spec} with [symmetry] at each [n] in [ns] (default
    [2; 3; 4; 5], must be ascending).  The ladder stops at the first
    refutation, the first instance whose symmetry certification fails
    (per-n statuses differ: a k-set detector can be equivariant at
    n = k and breaking above), or the first budget truncation.  Each
    proved point also runs the unreduced instance to record the
    orbit-vs-state curve ([pt_raw_states]). *)

val pp_parametric : Format.formatter -> parametric -> unit
val parametric_to_json : parametric -> string

val pp_sym_status : Format.formatter -> sym_status -> unit

val pp_outcome : pp_out:'o Fmt.t -> Format.formatter -> 'o outcome -> unit

val outcome_to_json :
  ?timings:(string * float) list -> pp_out:'o Fmt.t -> 'o outcome -> string
(** One JSON object: verdict, proved, state/transition counts, clause
    lists, POR stats and the violations with their counterexamples.
    [timings] (default empty) appends a ["profile"] object of per-phase
    seconds; a ["sym"] object appears only when symmetry was requested
    ([sym <> Sym_off]) — so default output is byte-identical to earlier
    versions. *)
