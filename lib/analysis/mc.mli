(** Exhaustive safety checking of AFD specs on small closed systems.

    The paper's theorems quantify over {e all} fair executions; the
    bench matrix and [afd_sim check] only sample randomly scheduled
    prefixes.  On small instances this module closes the gap: it builds
    the product of a closed system automaton (detector composed with
    the crash automaton — every action is an ['o Fd_event.t]) with the
    runtime of the spec's {!Afd_prop.Prop} {e safety} clauses, explores
    it exhaustively with {!Space}, and reports each violation as a
    shortest-path {!Afd_prop.Counterexample}.  When the explorer says
    [Exhausted] and no violation exists, the safety clauses hold in
    {e every} reachable state — a proof over all schedules and all
    fault patterns in the crashable set, not a sample.

    {b What is checked.}  [Always] and [Until] clauses are checked on
    every edge of the product graph; an [Error] latches the edge's
    destination as a violating sink, so its BFS depth is the minimal
    violating prefix.  [Fold] clauses are stepped along every edge
    (latching on step errors) and their judges are evaluated in every
    reachable product state; a [J_violated] judgement is reported only
    when it is {e inescapable} — no path leads back to a non-violated
    state — which under an [Exhausted] verdict means every infinite
    extension stays violated.  [Stable] clauses are liveness under the
    limit-extension reading and are out of scope here; their names are
    listed in [liveness_skipped].

    {b Product state identity.}  Two product states are merged when
    their system states, crashed-so-far sets, trace lengths capped at
    [len_cap] (default 8), [Until] release flags and [Fold]
    accumulators agree.  That covers exactly what the catalog's safety
    clauses may read; a clause reading [last_output]/[output_counts],
    or comparing [len] against a bound above [len_cap], would need a
    richer identity — raise [len_cap] in that case. *)

open Afd_ioa
open Afd_prop

type 'o violation = {
  clause : string;
  reason : string;
  kind : [ `Edge | `Judgement ];
      (** [`Edge]: a clause latched on a transition.  [`Judgement]: an
          inescapable [Fold]-judge violation (claimed only under an
          [Exhausted] verdict). *)
  depth : int;  (** length of the violating event prefix — minimal, by BFS *)
  counterexample : 'o Counterexample.t;  (** built from the shortest path *)
  confirmed : bool;
      (** the path was replayed through {!Monitor.replay} and the
          monitor's verdict is [Violated] — an end-to-end cross-check
          that the explorer and the monitor agree *)
}

type 'o outcome = {
  verdict : Space.verdict;  (** completeness of the product exploration *)
  states : int;  (** product states discovered *)
  transitions : int;
  safety_clauses : string list;  (** clauses actually model-checked *)
  liveness_skipped : string list;  (** [Stable] clauses, out of scope *)
  violations : 'o violation list;
      (** at most one per clause (the shallowest), ascending depth *)
  proved : bool;
      (** [verdict = Exhausted] and no violation: the safety clauses
          hold in every reachable state of the system *)
  por : bool;
  stats : Space.stats;
}

val default_max_states : int
(** 20_000 — comfortably above every catalog subject's product size. *)

val check :
  ?max_states:int ->
  ?por:bool ->
  ?len_cap:int ->
  equal_state:('s -> 's -> bool) ->
  hash_state:('s -> int) ->
  n:int ->
  'o Prop.t ->
  ('s, 'o Fd_event.t) Automaton.t ->
  'o outcome
(** Model-check a formula against a closed system automaton whose
    actions are the FD events themselves (so walking an edge {e is}
    observing an event).  [equal_state]/[hash_state] identify system
    states — pass {!Composition.equal_state}/{!Composition.hash_state}
    for composed systems.  [por] (default [false]) enables the
    sleep-set reduction; leave it off when shortest counterexamples
    matter.  *)

val check_spec :
  ?max_states:int ->
  ?por:bool ->
  ?len_cap:int ->
  ?crashable:Loc.Set.t ->
  n:int ->
  'o Afd_core.Afd.spec ->
  detector:('s, 'o Fd_event.t) Automaton.t ->
  ('o outcome, string) result
(** Compose [detector] with the crash automaton over [crashable]
    (default: the full universe, i.e. {e all} fault patterns) and
    {!check} the spec's compiled formula against it.  [Error] when the
    spec is raw (no formula to check). *)

val pp_outcome : pp_out:'o Fmt.t -> Format.formatter -> 'o outcome -> unit

val outcome_to_json : pp_out:'o Fmt.t -> 'o outcome -> string
(** One JSON object: verdict, proved, state/transition counts, clause
    lists, POR stats and the violations with their counterexamples. *)
