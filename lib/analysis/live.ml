open Afd_ioa

type scc = {
  id : int;
  members : int list;
  internal : int list;
  terminal : bool;
  unmet : string list;
  disabled_witness : (string * int) list;
  fair_stops : int list;
}

type t = {
  scc_of : int array;
  sccs : scc array;
  fair_tasks : string list;
}

(* Tarjan, iterative: an explicit call stack of (vertex, unvisited
   successors) frames replaces the recursion, so product graphs in the
   tens of thousands of states cannot blow the OCaml stack. *)
let condense nstates adj =
  let index = Array.make nstates (-1) in
  let lowlink = Array.make nstates 0 in
  let on_stack = Array.make nstates false in
  let scc_of = Array.make nstates (-1) in
  let tarjan_stack = ref [] in
  let counter = ref 0 and scc_count = ref 0 in
  let call = Stack.create () in
  let push v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    tarjan_stack := v :: !tarjan_stack;
    on_stack.(v) <- true;
    Stack.push (v, ref adj.(v)) call
  in
  for root = 0 to nstates - 1 do
    if index.(root) < 0 then begin
      push root;
      while not (Stack.is_empty call) do
        let v, rest = Stack.top call in
        match !rest with
        | w :: tl ->
          rest := tl;
          if index.(w) < 0 then push w
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        | [] ->
          ignore (Stack.pop call);
          (match Stack.top_opt call with
          | Some (u, _) -> lowlink.(u) <- min lowlink.(u) lowlink.(v)
          | None -> ());
          if lowlink.(v) = index.(v) then begin
            let id = !scc_count in
            incr scc_count;
            let rec pop () =
              match !tarjan_stack with
              | w :: tl ->
                tarjan_stack := tl;
                on_stack.(w) <- false;
                scc_of.(w) <- id;
                if w <> v then pop ()
              | [] -> assert false
            in
            pop ()
          end
      done
    end
  done;
  (scc_of, !scc_count)

let analyze aut space =
  let nstates = Array.length space.Space.states in
  (* Successor lists over task-labelled edges only: probed environment
     actions are not under the scheduler's control, so they neither
     form autonomous cycles nor discharge fairness obligations. *)
  let adj = Array.make nstates [] in
  Array.iter
    (fun e ->
      match e.Space.task with
      | Some _ -> adj.(e.Space.src) <- e.Space.dst :: adj.(e.Space.src)
      | None -> ())
    space.Space.edges;
  let scc_of, scc_count = condense nstates adj in
  let members = Array.make scc_count [] in
  for i = nstates - 1 downto 0 do
    members.(scc_of.(i)) <- i :: members.(scc_of.(i))
  done;
  let internal_rev = Array.make scc_count [] in
  let has_exit = Array.make scc_count false in
  Array.iteri
    (fun ei e ->
      match e.Space.task with
      | None -> ()
      | Some _ ->
        let cs = scc_of.(e.Space.src) and cd = scc_of.(e.Space.dst) in
        if cs = cd then internal_rev.(cs) <- ei :: internal_rev.(cs)
        else has_exit.(cs) <- true)
    space.Space.edges;
  let fair = List.filter (fun tk -> tk.Automaton.fair) aut.Automaton.tasks in
  let fair_tasks = List.map (fun tk -> tk.Automaton.task_name) fair in
  (* Per fair task, enabledness on every stored state (the states are
     the exploration's, so this is exact, not sampled). *)
  let enabled =
    List.map
      (fun tk ->
        ( tk.Automaton.task_name,
          Array.map
            (fun s -> Option.is_some (tk.Automaton.enabled s))
            space.Space.states ))
      fair
  in
  let sccs =
    Array.init scc_count (fun c ->
        let internal = List.rev internal_rev.(c) in
        let fires =
          List.sort_uniq String.compare
            (List.filter_map (fun ei -> space.Space.edges.(ei).Space.task) internal)
        in
        let disabled_witness =
          List.filter_map
            (fun (name, en) ->
              Option.map
                (fun i -> (name, i))
                (List.find_opt (fun i -> not en.(i)) members.(c)))
            enabled
        in
        let unmet =
          List.filter
            (fun name ->
              (not (List.mem name fires))
              && not (List.mem_assoc name disabled_witness))
            fair_tasks
        in
        let fair_stops =
          List.filter
            (fun i -> List.for_all (fun (_, en) -> not en.(i)) enabled)
            members.(c)
        in
        { id = c;
          members = members.(c);
          internal;
          terminal = not has_exit.(c);
          unmet;
          disabled_witness;
          fair_stops;
        })
  in
  { scc_of; sccs; fair_tasks }

let fair_cycle_through t i =
  let s = t.sccs.(t.scc_of.(i)) in
  s.internal <> [] && s.unmet = []

let fair_stop_at t i = List.mem i t.sccs.(t.scc_of.(i)).fair_stops

(* Shortest intra-SCC edge path from [src] to [dst], as edge indices.
   Total within an SCC by strong connectivity of the task subgraph. *)
let bfs_path edges adj src dst =
  if src = dst then []
  else begin
    let pred = Hashtbl.create 16 in
    Hashtbl.replace pred src (-1);
    let q = Queue.create () in
    Queue.add src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun ei ->
          let w = edges.(ei).Space.dst in
          if (not !found) && not (Hashtbl.mem pred w) then begin
            Hashtbl.replace pred w ei;
            if w = dst then found := true else Queue.add w q
          end)
        (Option.value ~default:[] (Hashtbl.find_opt adj v))
    done;
    if not !found then invalid_arg "Live.cycle_actions: SCC not strongly connected";
    let rec walk w acc =
      match Hashtbl.find pred w with
      | -1 -> acc
      | ei -> walk edges.(ei).Space.src (ei :: acc)
    in
    walk dst []
  end

let cycle_actions space t pivot =
  if not (fair_cycle_through t pivot) then
    invalid_arg "Live.cycle_actions: no fair cycle through this state";
  let scc = t.sccs.(t.scc_of.(pivot)) in
  let edges = space.Space.edges in
  let adj = Hashtbl.create 16 in
  List.iter
    (fun ei ->
      let src = edges.(ei).Space.src in
      Hashtbl.replace adj src
        (Option.value ~default:[] (Hashtbl.find_opt adj src) @ [ ei ]))
    scc.internal;
  (* One witness waypoint per fair task: prefer an internal edge firing
     the task (the closed walk then fires it every round); otherwise a
     member where the task is disabled (weak fairness is vacuous there
     every round).  [unmet = []] guarantees one of the two exists. *)
  let waypoints =
    List.filter_map
      (fun name ->
        match
          List.find_opt (fun ei -> edges.(ei).Space.task = Some name) scc.internal
        with
        | Some ei -> Some (`Edge ei)
        | None -> (
          match List.assoc_opt name scc.disabled_witness with
          | Some m -> if m = pivot then None else Some (`State m)
          | None ->
            (* the task is disabled on every member (no witness search
               needed beyond the first), or it never appears: either
               way the pivot itself discharges it *)
            None))
      t.fair_tasks
  in
  let stitch hops =
    let cur = ref pivot and acc = ref [] in
    List.iter
      (fun hop ->
        match hop with
        | `Edge ei ->
          acc := !acc @ bfs_path edges adj !cur edges.(ei).Space.src @ [ ei ];
          cur := edges.(ei).Space.dst
        | `State m ->
          acc := !acc @ bfs_path edges adj !cur m;
          cur := m)
      hops;
    !acc @ bfs_path edges adj !cur pivot
  in
  let cycle = stitch waypoints in
  (* All obligations were met by disabled states at or near the pivot:
     force at least one real edge so the walk is a cycle, not a point. *)
  let cycle =
    if cycle <> [] then cycle else stitch [ `Edge (List.hd scc.internal) ]
  in
  List.map (fun ei -> edges.(ei).Space.act) cycle

let fired_actions space ~equal actions =
  let acts = Array.of_list actions in
  let seen = Array.make (Array.length acts) false in
  let remaining = ref (Array.length acts) in
  (try
     Array.iter
       (fun e ->
         if !remaining = 0 then raise Exit;
         Array.iteri
           (fun i a ->
             if (not seen.(i)) && equal a e.Space.act then begin
               seen.(i) <- true;
               decr remaining
             end)
           acts)
       space.Space.edges
   with Exit -> ());
  seen
