type t = Sat | Violated of string | Undecided of string

let is_sat = function Sat -> true | Violated _ | Undecided _ -> false
let is_violated = function Violated _ -> true | Sat | Undecided _ -> false

let pp fmt = function
  | Sat -> Format.pp_print_string fmt "sat"
  | Violated r -> Format.fprintf fmt "violated (%s)" r
  | Undecided r -> Format.fprintf fmt "undecided (%s)" r

let ( &&& ) a b =
  match (a, b) with
  | Violated r1, Violated r2 -> Violated (r1 ^ "; " ^ r2)
  | (Violated _ as v), _ | _, (Violated _ as v) -> v
  | Undecided r1, Undecided r2 -> Undecided (r1 ^ "; " ^ r2)
  | (Undecided _ as u), _ | _, (Undecided _ as u) -> u
  | Sat, Sat -> Sat

let all vs = List.fold_left ( &&& ) Sat vs
let of_bool ~error b = if b then Sat else Violated error

let tag name = function
  | Sat -> Sat
  | Violated r -> Violated (name ^ ": " ^ r)
  | Undecided r -> Undecided (name ^ ": " ^ r)
