(** Witnesses for violated monitors: the minimal violating prefix
    index, the offending event, and a bounded window of recent
    events for context. *)

type 'o t = {
  index : int;
      (** 0-based index of the first violating event; for violations
          detected only by a stable-suffix judgement (no single
          offending event) this is the index of the last consumed
          event. *)
  clause : string;  (** name of the violated clause *)
  reason : string;
  event : 'o Fd_event.t option;
      (** the offending event, when the violation latched at one *)
  window : 'o Fd_event.t list;
      (** the last [w] events up to and including [index] *)
  window_start : int;  (** trace index of [List.hd window] *)
}

val pp : 'o Fmt.t -> Format.formatter -> 'o t -> unit

val to_json : pp_out:'o Fmt.t -> 'o t -> string
(** One JSON object: index, clause, reason, rendered event (or null),
    window_start and rendered window events. *)
