(** Witnesses for violated monitors: the minimal violating prefix
    index, the offending event, and a bounded window of recent
    events for context. *)

type 'o t = {
  index : int;
      (** 0-based index of the first violating event; for violations
          detected only by a stable-suffix judgement (no single
          offending event) this is the index of the last consumed
          event. *)
  clause : string;  (** name of the violated clause *)
  reason : string;
  event : 'o Fd_event.t option;
      (** the offending event, when the violation latched at one *)
  window : 'o Fd_event.t list;
      (** the last [w] events up to and including [index] *)
  window_start : int;  (** trace index of [List.hd window] *)
}

val of_path :
  ?window:int -> clause:string -> reason:string -> 'o Fd_event.t list -> 'o t
(** Build a witness from an explicit event path (as produced by the
    {!Space} explorer's shortest-path BFS, so [index = length - 1] is
    minimal by construction): the last event of the path is the
    offending one, and the window keeps the final [window] (default 8)
    events.  An empty path yields [index = 0] and no offending event —
    the start state itself violates. *)

val pp : 'o Fmt.t -> Format.formatter -> 'o t -> unit

val to_json : pp_out:'o Fmt.t -> 'o t -> string
(** One JSON object: index, clause, reason, rendered event (or null),
    window_start and rendered window events. *)
