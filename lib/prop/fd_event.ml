open Afd_ioa

type 'o t = Crash of Loc.t | Output of Loc.t * 'o

let loc = function Crash i -> i | Output (i, _) -> i
let is_crash = function Crash _ -> true | Output _ -> false
let is_output = function Output _ -> true | Crash _ -> false
let output_payload = function Output (_, o) -> Some o | Crash _ -> None

let equal eq_o a b =
  match (a, b) with
  | Crash i, Crash j -> Loc.equal i j
  | Output (i, o), Output (j, p) -> Loc.equal i j && eq_o o p
  | Crash _, Output _ | Output _, Crash _ -> false

let pp pp_o fmt = function
  | Crash i -> Format.fprintf fmt "crash_%a" Loc.pp i
  | Output (i, o) -> Format.fprintf fmt "fd(%a)_%a" pp_o o Loc.pp i

let pp_trace pp_o = Fmt.list ~sep:(Fmt.any "; ") (pp pp_o)

let faulty t =
  List.fold_left
    (fun acc e -> match e with Crash i -> Loc.Set.add i acc | Output _ -> acc)
    Loc.Set.empty t

let live ~n t = Loc.Set.diff (Loc.set_of_universe ~n) (faulty t)

let outputs_at i t =
  List.filter_map
    (function Output (j, o) when Loc.equal i j -> Some o | _ -> None)
    t

let last_output_at i t =
  match List.rev (outputs_at i t) with [] -> None | o :: _ -> Some o

let first_crash_index i t =
  let rec go k = function
    | [] -> None
    | Crash j :: _ when Loc.equal i j -> Some k
    | _ :: rest -> go (k + 1) rest
  in
  go 0 t

let map f = function Crash i -> Crash i | Output (i, o) -> Output (i, f o)
