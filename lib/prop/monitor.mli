(** Incremental monitors compiled from {!Prop} formulas.

    A monitor consumes one event at a time ({!observe}) in O(1)
    amortized and keeps O(window) live memory in the trace length, so
    it can be fed from [Scheduler.run ~observer] under windowed
    retention.  Safety clauses ([Always]/[Until]/[Fold] steps) latch
    the first violation with its trace index; [Stable] clauses are
    re-judged on the current summary and may flip (the limit-extension
    reading of eventual properties is inherently non-monotone on
    growing prefixes).

    Offline checking is the same code path: {!replay} feeds a list into
    a fresh monitor, so online and offline verdicts are definitionally
    equal. *)

type 'o t

val default_window : int

val create : ?window:int -> n:int -> 'o Prop.t -> 'o t
(** [window] (default {!default_window}, clamped to >= 1) sizes the
    counterexample witness window, not the verdict: verdicts never
    depend on it. *)

val observe : 'o t -> 'o Fd_event.t -> unit

val length : 'o t -> int
(** Number of events observed. *)

val state : 'o t -> 'o Prop.state

val verdict : 'o t -> Verdict.t
(** Conjunction of all clause verdicts, each reason tagged with its
    clause name. *)

val clause_verdicts : 'o t -> (string * Verdict.t) list
(** Per-clause verdicts, in formula order, reasons untagged. *)

val counterexample : 'o t -> 'o Counterexample.t option
(** The earliest latched violation (minimal violating prefix index,
    with the offending event and witness window); when the verdict is
    [Violated] only via a stable-suffix judgement, a synthetic witness
    at the last consumed event with [event = None].  [None] when no
    clause is violated. *)

val replay : ?window:int -> n:int -> 'o Prop.t -> 'o Fd_event.t list -> Verdict.t
(** Feed a whole list through a fresh monitor and return its verdict —
    the offline wrapper used by legacy [check] functions. *)
