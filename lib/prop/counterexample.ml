type 'o t = {
  index : int;
  clause : string;
  reason : string;
  event : 'o Fd_event.t option;
  window : 'o Fd_event.t list;
  window_start : int;
}

let of_path ?(window = 8) ~clause ~reason path =
  let len = List.length path in
  let index = max 0 (len - 1) in
  let event = if len = 0 then None else Some (List.nth path index) in
  let dropped = max 0 (len - window) in
  let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
  { index; clause; reason; event; window = drop dropped path; window_start = dropped }

let pp pp_out fmt c =
  Format.fprintf fmt "@[<v>violation at index %d (clause %s): %s" c.index c.clause
    c.reason;
  (match c.event with
  | Some e -> Format.fprintf fmt "@,offending event: %a" (Fd_event.pp pp_out) e
  | None -> ());
  if c.window <> [] then
    Format.fprintf fmt "@,window [%d..%d]: %a" c.window_start
      (c.window_start + List.length c.window - 1)
      (Fd_event.pp_trace pp_out) c.window;
  Format.fprintf fmt "@]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ~pp_out c =
  let str s = "\"" ^ json_escape s ^ "\"" in
  let event_str = function Some e -> str (Fmt.str "%a" (Fd_event.pp pp_out) e) | None -> "null" in
  Printf.sprintf
    "{\"index\":%d,\"clause\":%s,\"reason\":%s,\"event\":%s,\"window_start\":%d,\"window\":[%s]}"
    c.index (str c.clause) (str c.reason) (event_str c.event) c.window_start
    (String.concat ","
       (List.map (fun e -> str (Fmt.str "%a" (Fd_event.pp pp_out) e)) c.window))
