(** Three-valued verdicts for trace-property monitors.

    The paper's trace sets contain infinite sequences; our monitors
    judge finite prefixes, so besides satisfaction and violation they
    can report that the prefix is too short to decide (e.g. a liveness
    clause has not stabilized yet). *)

type t =
  | Sat
  | Violated of string  (** with a human-readable reason *)
  | Undecided of string
      (** the finite prefix neither satisfies nor violates;
          reason explains what is still missing *)

val is_sat : t -> bool
val is_violated : t -> bool
val pp : Format.formatter -> t -> unit

val all : t list -> t
(** Conjunction of a whole list via {!( &&& )}; [all [] = Sat]. *)

val of_bool : error:string -> bool -> t

val ( &&& ) : t -> t -> t
(** Binary conjunction: [Violated] dominates, then [Undecided], else
    [Sat].  When both sides carry a reason of the {e same} class the
    reasons are accumulated (joined with ["; "]) rather than dropped,
    so a conjunction of many clauses reports every offending clause;
    the dominating class is unchanged from the old first-wins
    behaviour. *)

val tag : string -> t -> t
(** [tag name v] prefixes the reason of a non-[Sat] verdict with
    ["name: "], used to attribute reasons to named formula clauses. *)
