(** Events of failure-detector traces: sequences over [Î ∪ O_D]
    (Section 3.2).

    An AFD's only inputs are the crash actions (crash exclusivity), so
    a trace of an AFD [D] is a sequence of crash events and output
    events, the latter carrying a detector-specific payload ['o]. *)

open Afd_ioa

type 'o t =
  | Crash of Loc.t
  | Output of Loc.t * 'o  (** an event of [O_{D,i}] at location [i] *)

val loc : 'o t -> Loc.t
val is_crash : 'o t -> bool
val is_output : 'o t -> bool
val output_payload : 'o t -> 'o option

val equal : ('o -> 'o -> bool) -> 'o t -> 'o t -> bool
val pp : 'o Fmt.t -> Format.formatter -> 'o t -> unit
val pp_trace : 'o Fmt.t -> Format.formatter -> 'o t list -> unit

val faulty : 'o t list -> Loc.Set.t
(** Locations at which a crash event occurs in the trace. *)

val live : n:int -> 'o t list -> Loc.Set.t
(** [universe \ faulty]. *)

val outputs_at : Loc.t -> 'o t list -> 'o list
(** [t|O_{D,i}] payloads, in order. *)

val last_output_at : Loc.t -> 'o t list -> 'o option

val first_crash_index : Loc.t -> 'o t list -> int option
(** 0-based index of the first [Crash i] event. *)

val map : ('o -> 'p) -> 'o t -> 'p t
