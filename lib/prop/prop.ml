open Afd_ioa

(* --- incremental trace summary (the "crashed-so-far context") --- *)

type 'o state = {
  n : int;
  len : int;
  crashed : Loc.Set.t;
  last_output : 'o Loc.Map.t;
  output_counts : int Loc.Map.t;
}

let init ~n =
  { n;
    len = 0;
    crashed = Loc.Set.empty;
    last_output = Loc.Map.empty;
    output_counts = Loc.Map.empty;
  }

let update st e =
  match e with
  | Fd_event.Crash i -> { st with len = st.len + 1; crashed = Loc.Set.add i st.crashed }
  | Fd_event.Output (i, o) ->
    let c = match Loc.Map.find_opt i st.output_counts with Some c -> c | None -> 0 in
    { st with
      len = st.len + 1;
      last_output = Loc.Map.add i o st.last_output;
      output_counts = Loc.Map.add i (c + 1) st.output_counts;
    }

(* Transport a process permutation through the summary: relabel the
   crashed set and the per-location maps, mapping payloads through the
   output transport.  Needed by the symmetry-quotiented model checker;
   the length is invariant under relabelling. *)
let permute pif pout st =
  let map_keys f m =
    Loc.Map.fold (fun k v acc -> Loc.Map.add (pif k) (f v) acc) m Loc.Map.empty
  in
  { st with
    crashed = Loc.Set.map pif st.crashed;
    last_output = map_keys pout st.last_output;
    output_counts = map_keys (fun c -> c) st.output_counts;
  }

let live st = Loc.Set.diff (Loc.set_of_universe ~n:st.n) st.crashed

let output_count st i =
  match Loc.Map.find_opt i st.output_counts with Some c -> c | None -> 0

let last_outputs st =
  let live = live st in
  let missing = ref None in
  let map =
    Loc.Set.fold
      (fun i acc ->
        match Loc.Map.find_opt i st.last_output with
        | Some o -> Loc.Map.add i o acc
        | None ->
          if !missing = None then missing := Some i;
          acc)
      live Loc.Map.empty
  in
  match !missing with
  | Some i ->
    Error (Printf.sprintf "live location %s has no output yet" (Loc.to_string i))
  | None -> Ok (map, live)

(* --- stable-suffix judgements --- *)

type judgement = J_sat | J_violated of string | J_undecided of string

let j_and a b =
  match (a, b) with
  | J_violated r1, J_violated r2 -> J_violated (r1 ^ "; " ^ r2)
  | (J_violated _ as v), _ | _, (J_violated _ as v) -> v
  | J_undecided r1, J_undecided r2 -> J_undecided (r1 ^ "; " ^ r2)
  | (J_undecided _ as u), _ | _, (J_undecided _ as u) -> u
  | J_sat, J_sat -> J_sat

let j_all js = List.fold_left j_and J_sat js
let j_of_bool ~undecided b = if b then J_sat else J_undecided undecided

let to_verdict = function
  | J_sat -> Verdict.Sat
  | J_violated r -> Verdict.Violated r
  | J_undecided r -> Verdict.Undecided r

let for_locs locs f = Loc.Set.fold (fun i acc -> j_and acc (f i)) locs J_sat
let for_live st f = for_locs (live st) f

(* --- formulas --- *)

type 'o event_check = 'o state -> 'o Fd_event.t -> (unit, string) result
type 'o state_judge = 'o state -> judgement

type 'o clause =
  | Always of 'o event_check
  | Until of ('o state -> bool) * 'o event_check
  | Stable of 'o state_judge
  | Fold : ('o, 'acc) fold -> 'o clause

and ('o, 'acc) fold = {
  finit : 'acc;
  fstep : 'o state -> 'acc -> 'o Fd_event.t -> ('acc, string) result;
  fjudge : 'o state -> 'acc -> judgement;
  fperm : ((Loc.t -> Loc.t) -> 'acc -> 'acc) option;
      (* how a process permutation transports the accumulator; needed
         (only) by the symmetry-quotiented model checker, which permutes
         whole product states — [None] makes the clause's spec
         uncertifiable, never wrong *)
  fcmp : ('acc -> 'acc -> int) option;
      (* a semantic total order on accumulators (e.g.
         [Loc.Set.compare]): polymorphic compare is AVL-shape-sensitive
         on sets and maps, so a transported accumulator could spuriously
         differ from a stepped one; required alongside [fperm] for
         certification *)
}

type 'o t = Clause of string * 'o clause | Conj of 'o t list

let always ~name check = Clause (name, Always check)
let until ~name ~release check = Clause (name, Until (release, check))
let eventually_stable ~name judge = Clause (name, Stable judge)

(* Every argument is labeled, so [?perm]/[?cmp] are never erased by a
   positional application — callers always name what they pass. *)
let[@warning "-16"] folding ?perm ?cmp ~name ~init ~step ~judge =
  Clause
    (name, Fold { finit = init; fstep = step; fjudge = judge; fperm = perm; fcmp = cmp })

let conj ts = Conj ts
let ( &&& ) a b = Conj [ a; b ]

let implies ~name ~premise check =
  always ~name (fun st e -> if premise st e then check st e else Ok ())

let rec clauses = function
  | Clause (name, c) -> [ (name, c) ]
  | Conj ts -> List.concat_map clauses ts

(* --- the canned validity formula (Section 3.2) --- *)

let validity ?(live_min = 1) () =
  conj
    [ always ~name:"validity.safety" (fun st e ->
          match e with
          | Fd_event.Output (i, _) when Loc.Set.mem i st.crashed ->
            Error (Printf.sprintf "output at %s after its crash" (Loc.to_string i))
          | Fd_event.Output _ | Fd_event.Crash _ -> Ok ());
      eventually_stable ~name:"validity.liveness" (fun st ->
          for_live st (fun i ->
              let c = output_count st i in
              j_of_bool
                ~undecided:
                  (Printf.sprintf "live location %s has %d < %d outputs"
                     (Loc.to_string i) c live_min)
                (c >= live_min)));
    ]
