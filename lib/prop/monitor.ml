(* Compile a formula to an incremental monitor.  Each clause becomes a
   runner; safety-flavoured runners (Always/Until/Fold steps) latch the
   first violation together with its trace index, stable-suffix
   judgements are recomputed on the current summary and never latch.
   A ring buffer of the last [window] events provides the witness
   window for counterexamples; total live memory is O(window + |acc|),
   independent of the trace length. *)

type 'o kind =
  | K_always of 'o Prop.event_check
  | K_until of {
      release : 'o Prop.state -> bool;
      check : 'o Prop.event_check;
      mutable released : bool;
    }
  | K_stable of 'o Prop.state_judge
  | K_fold : { fold : ('o, 'acc) Prop.fold; mutable acc : 'acc } -> 'o kind

type 'o runner = {
  cname : string;
  kind : 'o kind;
  mutable latched : (int * string) option;
}

type 'o t = {
  window : int;
  mutable st : 'o Prop.state;
  runners : 'o runner array;
  ring : 'o Fd_event.t option array;
  mutable first : 'o Counterexample.t option;
}

let default_window = 16

let create ?(window = default_window) ~n prop =
  let runners =
    Prop.clauses prop
    |> List.map (fun (cname, clause) ->
           let kind =
             match clause with
             | Prop.Always check -> K_always check
             | Prop.Until (release, check) -> K_until { release; check; released = false }
             | Prop.Stable judge -> K_stable judge
             | Prop.Fold fold -> K_fold { fold; acc = fold.Prop.finit }
           in
           { cname; kind; latched = None })
    |> Array.of_list
  in
  let window = max window 1 in
  { window;
    st = Prop.init ~n;
    runners;
    ring = Array.make window None;
    first = None;
  }

(* Events with indices in [max 0 (upto+1-window), upto], oldest first. *)
let window_events m upto =
  let start = max 0 (upto + 1 - m.window) in
  let evs =
    List.init (upto + 1 - start) (fun k ->
        match m.ring.((start + k) mod m.window) with
        | Some e -> e
        | None -> assert false)
  in
  (evs, start)

let latch m r idx reason e =
  r.latched <- Some (idx, reason);
  if m.first = None then begin
    let window, window_start = window_events m idx in
    m.first <-
      Some
        { Counterexample.index = idx;
          clause = r.cname;
          reason;
          event = Some e;
          window;
          window_start;
        }
  end

let observe m e =
  let pre = m.st in
  let idx = pre.Prop.len in
  m.ring.(idx mod m.window) <- Some e;
  m.st <- Prop.update pre e;
  Array.iter
    (fun r ->
      if r.latched = None then
        match r.kind with
        | K_always check -> (
          match check pre e with Ok () -> () | Error reason -> latch m r idx reason e)
        | K_until u ->
          if not u.released then
            if u.release pre then u.released <- true
            else (
              match u.check pre e with
              | Ok () -> ()
              | Error reason -> latch m r idx reason e)
        | K_stable _ -> ()
        | K_fold f -> (
          match f.fold.Prop.fstep pre f.acc e with
          | Ok acc' -> f.acc <- acc'
          | Error reason -> latch m r idx reason e))
    m.runners

let length m = m.st.Prop.len
let state m = m.st

let runner_verdict m r =
  match r.latched with
  | Some (_, reason) -> Verdict.Violated reason
  | None -> (
    match r.kind with
    | K_always _ | K_until _ -> Verdict.Sat
    | K_stable judge -> Prop.to_verdict (judge m.st)
    | K_fold f -> Prop.to_verdict (f.fold.Prop.fjudge m.st f.acc))

let clause_verdicts m =
  Array.to_list (Array.map (fun r -> (r.cname, runner_verdict m r)) m.runners)

let verdict m =
  Array.fold_left
    (fun acc r -> Verdict.(acc &&& tag r.cname (runner_verdict m r)))
    Verdict.Sat m.runners

let counterexample m =
  match m.first with
  | Some _ as c -> c
  | None ->
    let rec find k =
      if k >= Array.length m.runners then None
      else
        match runner_verdict m m.runners.(k) with
        | Verdict.Violated reason ->
          let idx = max 0 (m.st.Prop.len - 1) in
          let window, window_start =
            if m.st.Prop.len = 0 then ([], 0) else window_events m idx
          in
          Some
            { Counterexample.index = idx;
              clause = m.runners.(k).cname;
              reason;
              event = None;
              window;
              window_start;
            }
        | Verdict.Sat | Verdict.Undecided _ -> find (k + 1)
    in
    find 0

let replay ?window ~n prop t =
  let m = create ?window ~n prop in
  List.iter (observe m) t;
  verdict m
