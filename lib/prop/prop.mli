(** A combinator DSL for temporal properties of AFD traces, judged on
    finite prefixes of infinite executions.

    Formulas are built from {e atoms} — predicates over the next event
    and an incrementally maintained {!state} summary (length,
    crashed-so-far set, last output and output count per location) —
    combined with [always], [until], [implies], [eventually_stable]
    (the paper's limit-extension liveness reading: the finite trace
    stands for the infinite trace where each live location repeats its
    last output forever), stateful [folding] clauses, and conjunction.
    {!Monitor} compiles a formula to an incremental monitor consuming
    one event in O(1) amortized time and O(1) memory in the trace
    length, so properties can be checked online under windowed
    retention. *)

open Afd_ioa

(** {1 Trace summary} *)

type 'o state = private {
  n : int;  (** size of the location universe *)
  len : int;  (** number of events consumed so far *)
  crashed : Loc.Set.t;  (** crashed-so-far context *)
  last_output : 'o Loc.Map.t;  (** last payload per location that output *)
  output_counts : int Loc.Map.t;
}

val init : n:int -> 'o state
val update : 'o state -> 'o Fd_event.t -> 'o state

val permute : (Loc.t -> Loc.t) -> ('o -> 'o) -> 'o state -> 'o state
(** [permute pi pout st] relabels the summary under a process
    permutation: crashed set and per-location maps move through [pi],
    last-output payloads through [pout]; the length is untouched.  Used
    by the symmetry-quotiented model checker ({!Afd_analysis.Mc}). *)

val live : 'o state -> Loc.Set.t
(** [universe \ crashed]. *)

val output_count : 'o state -> Loc.t -> int

val last_outputs : 'o state -> ('o Loc.Map.t * Loc.Set.t, string) result
(** The last output of every live location together with the live set
    (limit-extension semantics); [Error reason] when some live location
    has produced no output yet (the smallest such location). *)

(** {1 Stable-suffix judgements} *)

type judgement = J_sat | J_violated of string | J_undecided of string

val j_and : judgement -> judgement -> judgement
(** Same dominance and reason accumulation as {!Verdict.( &&& )}. *)

val j_all : judgement list -> judgement
val j_of_bool : undecided:string -> bool -> judgement
val to_verdict : judgement -> Verdict.t

val for_locs : Loc.Set.t -> (Loc.t -> judgement) -> judgement
(** Per-location lifting: conjunction of [f i] over the set, ascending. *)

val for_live : 'o state -> (Loc.t -> judgement) -> judgement

(** {1 Formulas} *)

type 'o event_check = 'o state -> 'o Fd_event.t -> (unit, string) result
(** An atom over the next event, seeing the {e pre}-state (the summary
    of the strict prefix before the event, so [state.len] is the
    0-based index of the event and [state.crashed] the crashed-so-far
    set). [Error reason] is a violation at that event. *)

type 'o state_judge = 'o state -> judgement
(** An atom over the current summary, re-judged after every event. *)

type 'o clause =
  | Always of 'o event_check  (** safety: holds at every event *)
  | Until of ('o state -> bool) * 'o event_check
      (** [Until (release, check)]: [check] holds at every event until
          the first event whose pre-state satisfies [release]; weak
          until — a prefix that never releases and never violates is
          [Sat]. *)
  | Stable of 'o state_judge
      (** liveness under limit-extension: judged on the current
          summary, never latched — verdicts may flip as the prefix
          grows. *)
  | Fold : ('o, 'acc) fold -> 'o clause
      (** a stateful clause carrying its own accumulator *)

and ('o, 'acc) fold = {
  finit : 'acc;
  fstep : 'o state -> 'acc -> 'o Fd_event.t -> ('acc, string) result;
      (** [Error] is a latched violation at the current event *)
  fjudge : 'o state -> 'acc -> judgement;
  fperm : ((Loc.t -> Loc.t) -> 'acc -> 'acc) option;
      (** how a process permutation transports the accumulator.  The
          symmetry-quotiented model checker ({!Afd_analysis.Mc})
          permutes whole product states, accumulators included; a fold
          without a transport makes its spec uncertifiable (the subject
          falls back to unreduced exploration), never unsound. *)
  fcmp : ('acc -> 'acc -> int) option;
      (** a {e semantic} total order on accumulators (e.g.
          [Loc.Set.compare], [List.compare Loc.Set.compare]).
          Polymorphic compare is AVL-shape-sensitive on sets and maps,
          so a transported accumulator could spuriously differ from a
          stepped one; certification requires [fcmp] alongside
          [fperm]. *)
}

type 'o t = Clause of string * 'o clause | Conj of 'o t list

val always : name:string -> 'o event_check -> 'o t
val until : name:string -> release:('o state -> bool) -> 'o event_check -> 'o t
val eventually_stable : name:string -> 'o state_judge -> 'o t

val folding :
  ?perm:((Loc.t -> Loc.t) -> 'acc -> 'acc) ->
  ?cmp:('acc -> 'acc -> int) ->
  name:string ->
  init:'acc ->
  step:('o state -> 'acc -> 'o Fd_event.t -> ('acc, string) result) ->
  judge:('o state -> 'acc -> judgement) ->
  'o t

val implies : name:string -> premise:('o state -> 'o Fd_event.t -> bool) -> 'o event_check -> 'o t
(** [always] restricted to events satisfying the premise. *)

val conj : 'o t list -> 'o t
val ( &&& ) : 'o t -> 'o t -> 'o t

val clauses : 'o t -> (string * 'o clause) list
(** Flattened named clauses, in formula order. *)

(** {1 Canned clauses} *)

val validity : ?live_min:int -> unit -> 'o t
(** The AFD validity property (Section 3.2), as two clauses:
    ["validity.safety"] — no output at a location after its crash —
    and ["validity.liveness"] — every live location has at least
    [live_min] outputs (default 1), undecided until then. *)
