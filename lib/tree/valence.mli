(** Valence of tree nodes (Section 9.5).

    A node is v-valent when some descendant execution carries a
    [decide(v)] event and none carries [decide(1-v)]; bivalent when
    both values are reachable.  On the quotient graph this is plain
    edge-label reachability, computed by two backward sweeps. *)

type valence =
  | Bivalent
  | Univalent of bool
  | Blocked
      (** no decision in the past or reachable in the future — cannot
          happen in R^{t_D} for a correct algorithm with an adequate
          t_D prefix (every fair branch decides, Proposition 48);
          reported so tests can assert its absence *)

val pp : valence Fmt.t

type t = {
  tree : Tagged_tree.t;
  of_node : valence array;
  past : (bool * bool) array;
      (** per node: a 0- (resp. 1-) decision occurred on every walk
          reaching it / some walk reaching it — computed as forward
          reachability from decide-edge targets *)
}

val classify : Tagged_tree.t -> t
(** A node's valence combines decisions in its past (forward
    reachability from decide-edge targets — on the quotient graph the
    config's decided flags make past decisions invariant across the
    walks reaching it) and in its future (backward reachability from
    decide-edge sources). *)

val root_bivalent : t -> bool
(** Proposition 51. *)

val count : t -> valence -> int

val agreement_in_graph : t -> (unit, string) result
(** Proposition 45/47: no node carries both decision values in its
    past. *)

val univalent_stable : t -> (unit, string) result
(** Lemma 52: every successor of a v-valent node is v-valent.  Checked
    over all edges of the quotient graph. *)
