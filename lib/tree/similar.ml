open Afd_ioa
open Afd_system

type comp_kind =
  | CProcess of Loc.t
  | CChannel of Loc.t * Loc.t
  | CEnv of Loc.t
  | COther

type ctx = {
  tree : Tagged_tree.t;
  n : int;
  kinds : comp_kind array;  (* per component index *)
  crashed : Loc.Set.t array;  (* per node *)
  queues : ((Loc.t * Loc.t) * Msg.t list) list array;  (* per node *)
}

let parse_loc s =
  (* "p3" -> 3 *)
  if String.length s >= 2 && s.[0] = 'p' then int_of_string_opt (String.sub s 1 (String.length s - 1))
  else None

let classify name =
  match String.split_on_char '_' name with
  | [ "chan"; a; b ] -> (
    match (parse_loc a, parse_loc b) with
    | Some i, Some j -> CChannel (i, j)
    | _ -> COther)
  | [ ("envC" | "envS" | "queryenv"); a ] -> (
    match parse_loc a with Some i -> CEnv i | None -> COther)
  | [ _; a ] -> (
    match parse_loc a with Some i -> CProcess i | None -> COther)
  | _ -> COther

let make_ctx tree ~n =
  let comps = Composition.components tree.Tagged_tree.system in
  let kinds = Array.map (fun c -> classify (Component.name c)) comps in
  let nn = Array.length tree.Tagged_tree.nodes in
  let crashed = Array.make nn Loc.Set.empty in
  let queues = Array.make nn [] in
  let visited = Array.make nn false in
  visited.(0) <- true;
  let q = Queue.create () in
  Queue.add 0 q;
  let apply_act crs qs act =
    match act with
    | Act.Crash i -> (Loc.Set.add i crs, qs)
    | Act.Send { src; dst; msg } ->
      let key = (src, dst) in
      let cur = Option.value ~default:[] (List.assoc_opt key qs) in
      (crs, (key, cur @ [ msg ]) :: List.remove_assoc key qs)
    | Act.Receive { src; dst; _ } ->
      let key = (src, dst) in
      let cur = Option.value ~default:[] (List.assoc_opt key qs) in
      (crs, (key, match cur with [] -> [] | _ :: rest -> rest) :: List.remove_assoc key qs)
    | _ -> (crs, qs)
  in
  while not (Queue.is_empty q) do
    let id = Queue.pop q in
    Array.iter
      (fun (_, act, dst) ->
        match act with
        | Some act when not visited.(dst) ->
          visited.(dst) <- true;
          let crs, qs = apply_act crashed.(id) queues.(id) act in
          crashed.(dst) <- crs;
          queues.(dst) <- qs;
          Queue.add dst q
        | _ -> ())
      tree.Tagged_tree.nodes.(id).Tagged_tree.edges
  done;
  { tree; n; kinds; crashed; queues }

let queue_of ctx id key =
  Option.value ~default:[] (List.assoc_opt key ctx.queues.(id))

let similar_mod ctx ~i id id' =
  let node = ctx.tree.Tagged_tree.nodes.(id)
  and node' = ctx.tree.Tagged_tree.nodes.(id') in
  (* (1) crash_i occurred in both *)
  Loc.Set.mem i ctx.crashed.(id)
  && Loc.Set.mem i ctx.crashed.(id')
  && (* (6) same remaining FD sequence *)
  node.Tagged_tree.pos = node'.Tagged_tree.pos
  && (* (2)(3)(5): componentwise equality away from i *)
  (let ok = ref true in
   Array.iteri
     (fun k kind ->
       if !ok then
         let eq () =
           Component.equal_state
             (Composition.state_inst node.Tagged_tree.config k)
             (Composition.state_inst node'.Tagged_tree.config k)
         in
         match kind with
         | CProcess j when not (Loc.equal j i) -> if not (eq ()) then ok := false
         | CEnv j when not (Loc.equal j i) -> if not (eq ()) then ok := false
         | CChannel (j, k') when (not (Loc.equal j i)) && not (Loc.equal k' i) ->
           if not (eq ()) then ok := false
         | CProcess _ | CEnv _ | CChannel _ | COther -> ())
     ctx.kinds;
   !ok)
  && (* (4): each channel out of i holds a prefix in N of N' *)
  List.for_all
    (fun j ->
      Loc.equal j i
      ||
      let qa = queue_of ctx id (i, j) and qb = queue_of ctx id' (i, j) in
      Afd_ioa.Trace.is_prefix ~equal:Msg.equal qa qb)
    (Loc.universe ~n:ctx.n)

let child_by_label tree id label =
  let node = tree.Tagged_tree.nodes.(id) in
  Array.to_list node.Tagged_tree.edges
  |> List.find_map (fun (l, _, dst) -> if l = label then Some dst else None)

let check_lemma39 ctx ~i id id' =
  if not (similar_mod ctx ~i id id') then Error "pair is not similar-modulo-i"
  else
    let labels = Tagged_tree.labels ctx.tree in
    let rec go = function
      | [] -> Ok ()
      | l :: rest -> (
        match (child_by_label ctx.tree id l, child_by_label ctx.tree id' l) with
        | Some nl, Some nl' ->
          if similar_mod ctx ~i nl id' || similar_mod ctx ~i nl nl' then go rest
          else
            Error
              (Fmt.str "label %a: neither N^l ~ N' nor N^l ~ N'^l" Tagged_tree.pp_label l)
        | _ -> Error "missing child")
    in
    go labels

let candidate_pairs ctx ~i ~limit =
  let pairs = ref [] in
  let count = ref 0 in
  Array.iter
    (fun node ->
      if !count < limit && Loc.Set.mem i ctx.crashed.(node.Tagged_tree.id) then
        Array.iter
          (fun (label, act, dst) ->
            if !count < limit then
              match (label, act) with
              | Tagged_tree.Task tid, Some (Act.Receive { dst = d; _ })
                when Loc.equal d i ->
                ignore tid;
                pairs := (node.Tagged_tree.id, dst) :: !pairs;
                incr count
              | _ -> ())
          node.Tagged_tree.edges)
    ctx.tree.Tagged_tree.nodes;
  (* one diagonal pair for reflexivity coverage *)
  (match
     Array.find_opt
       (fun node -> Loc.Set.mem i ctx.crashed.(node.Tagged_tree.id))
       ctx.tree.Tagged_tree.nodes
   with
  | Some node -> pairs := (node.Tagged_tree.id, node.Tagged_tree.id) :: !pairs
  | None -> ());
  List.rev !pairs
