(** The similar-modulo-i relation on tree nodes (Section 8.3).

    [N ∼i N'] holds when only the crashed process at [i] could
    distinguish the two configurations: (1) [crash_i] occurred in both
    executions; (2) all processes at [j ≠ i] have equal states; (3) all
    channels between locations other than [i] are equal; (4) each
    channel {e out of} [i] holds, in [N], a prefix of what it holds in
    [N']; (5) the environment automata at [j ≠ i] are equal; (6) the
    remaining FD sequences are equal.  (Channels {e into} [i] and the
    process at [i] are unrestricted — nobody live reads them.)

    Lemma 39: if [N ∼i N'] then for every label [l], either
    [N^l ∼i N'] or [N^l ∼i N'^l].  Theorem 40 follows by induction.
    {!check_lemma39} verifies the lemma on a concrete pair;
    {!candidate_pairs} harvests nontrivial related pairs from the
    graph (a delivery into the crashed location leaves the node
    ∼i-related to its successor). *)

open Afd_ioa

type ctx
(** Preprocessed tree: component classification by location, per-node
    channel queues and crash history (reconstructed from BFS paths). *)

val make_ctx : Tagged_tree.t -> n:int -> ctx

val similar_mod : ctx -> i:Loc.t -> int -> int -> bool
(** [similar_mod ctx ~i id id'] decides [N ∼i N'] for quotient nodes. *)

val check_lemma39 : ctx -> i:Loc.t -> int -> int -> (unit, string) result
(** Verify Lemma 39's disjunction for every label at the given related
    pair; [Error] describes the first label where both disjuncts
    fail. *)

val candidate_pairs : ctx -> i:Loc.t -> limit:int -> (int * int) list
(** Nontrivial ∼i-related pairs [(N, N')] where [N'] is [N]'s child
    via a delivery into the crashed [i] (plus the diagonal pair of the
    first post-crash node, for reflexivity coverage). *)
