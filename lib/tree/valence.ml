type valence = Bivalent | Univalent of bool | Blocked

let pp fmt = function
  | Bivalent -> Format.pp_print_string fmt "bivalent"
  | Univalent v -> Format.fprintf fmt "%d-valent" (Bool.to_int v)
  | Blocked -> Format.pp_print_string fmt "blocked"

type t = {
  tree : Tagged_tree.t;
  of_node : valence array;
  past : (bool * bool) array;  (** (0-decision happened, 1-decision happened) *)
}

(* A node's valence mixes its past (decisions recorded on the walk from
   the root — recoverable on the quotient graph as forward reachability
   from decide-edge targets) with its future (decide edges reachable
   from it — backward reachability from decide-edge sources). *)

let adjacency tree =
  let n = Array.length tree.Tagged_tree.nodes in
  let preds = Array.make n [] and succs = Array.make n [] in
  let seeds0 = ref [] and seeds1 = ref [] in
  let into0 = ref [] and into1 = ref [] in
  Array.iter
    (fun node ->
      let id = node.Tagged_tree.id in
      Array.iter
        (fun (_, act, dst) ->
          if dst <> id then begin
            preds.(dst) <- id :: preds.(dst);
            succs.(id) <- dst :: succs.(id)
          end;
          match Tagged_tree.decision_of_edge act with
          | Some false ->
            seeds0 := id :: !seeds0;
            into0 := dst :: !into0
          | Some true ->
            seeds1 := id :: !seeds1;
            into1 := dst :: !into1
          | None -> ())
        node.Tagged_tree.edges)
    tree.Tagged_tree.nodes;
  (preds, succs, (!seeds0, !seeds1), (!into0, !into1))

let sweep n adj seeds =
  let reach = Array.make n false in
  let stack = ref seeds in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest ->
      stack := rest;
      if not reach.(id) then begin
        reach.(id) <- true;
        List.iter (fun p -> if not reach.(p) then stack := p :: !stack) adj.(id)
      end
  done;
  reach

let classify tree =
  let n = Array.length tree.Tagged_tree.nodes in
  let preds, succs, (seeds0, seeds1), (into0, into1) = adjacency tree in
  let future0 = sweep n preds seeds0 and future1 = sweep n preds seeds1 in
  let past0 = sweep n succs into0 and past1 = sweep n succs into1 in
  let of_node =
    Array.init n (fun id ->
        let has0 = future0.(id) || past0.(id) and has1 = future1.(id) || past1.(id) in
        match (has0, has1) with
        | true, true -> Bivalent
        | true, false -> Univalent false
        | false, true -> Univalent true
        | false, false -> Blocked)
  in
  { tree; of_node; past = Array.init n (fun id -> (past0.(id), past1.(id))) }

let root_bivalent t = t.of_node.(0) = Bivalent

let count t v = Array.fold_left (fun acc x -> if x = v then acc + 1 else acc) 0 t.of_node

let agreement_in_graph t =
  let bad = ref None in
  Array.iteri
    (fun id (p0, p1) ->
      if p0 && p1 && !bad = None then
        bad := Some (Printf.sprintf "node %d has both decision values in its past" id))
    t.past;
  match !bad with None -> Ok () | Some m -> Error m

let univalent_stable t =
  let bad = ref None in
  Array.iter
    (fun node ->
      match t.of_node.(node.Tagged_tree.id) with
      | Univalent v ->
        Array.iter
          (fun (label, _, dst) ->
            match t.of_node.(dst) with
            | Univalent v' when Bool.equal v v' -> ()
            | other ->
              if !bad = None then
                bad :=
                  Some
                    (Fmt.str "node %d is %a but its %a-successor %d is %a"
                       node.Tagged_tree.id pp (Univalent v) Tagged_tree.pp_label label
                       dst pp other))
          node.Tagged_tree.edges
      | Bivalent | Blocked -> ())
    t.tree.Tagged_tree.nodes;
  match !bad with None -> Ok () | Some msg -> Error msg
