(** The tagged tree of executions R^{t_D} (Section 8).

    Given a system S (processes, channels, environment — {e without}
    crash or failure-detector automata) and a fixed FD sequence
    [t_D ∈ T_D] over [Î ∪ O_D], the tree R^{t_D} has a node for every
    finite execution whose projection on [Î ∪ O_D] is a prefix of
    [t_D]; each node has one outgoing edge per label in
    [L = {FD} ∪ {Proc_i} ∪ {Chan_{i,j}} ∪ {Env_{i,v}}].  An FD edge's
    action tag is the head of the remaining FD sequence; a task edge's
    tag is the unique enabled action of that task (⊥ when disabled).

    Infinitely many tree nodes share the same (config, FD-sequence)
    tags, so we materialize the {e quotient graph} keyed by
    [(config, position in t_D)]: every tagging, valence and hook
    statement of Sections 8–9 is invariant under that quotient (Lemmas
    33–34 are exactly the statement that tags determine subtrees).
    ⊥-edges become self-loops (Proposition 30: exe(N) is unchanged).

    Labels other than FD are exactly the tasks of the composition,
    which matches the paper's label set because each process has one
    task, each channel one, and E_{C,i} two ([Env_{i,0}], [Env_{i,1}]). *)

open Afd_ioa
open Afd_core
open Afd_system

type label =
  | FD
  | Task of Composition.task_id

val pp_label : label Fmt.t

type node = {
  id : int;
  config : Act.t Composition.state;
  pos : int;  (** events of [t_D] already consumed *)
  edges : (label * Act.t option * int) array;
      (** (label, action tag, successor node id); a [None] tag loops to
          the node itself *)
}

type t = {
  system : Act.t Composition.t;
  td : Act.fd_payload Fd_event.t array;
  nodes : node array;  (** node 0 is the root ⊤ *)
}

val labels : t -> label list

val build :
  system:Act.t Composition.t ->
  detector:string ->
  td:Act.fd_payload Fd_event.t list ->
  max_nodes:int ->
  (t, string) result
(** Breadth-first exploration of the quotient graph; [detector] is the
    name under which FD-edge outputs enter the system.  [Error] when
    the node budget is exhausted. *)

val act_of_fd_event : Act.fd_payload Fd_event.t -> detector:string -> Act.t
(** How FD-edge events enter the system: crashes as [Act.Crash],
    outputs as [Act.Fd]. *)

val decision_of_edge : Act.t option -> bool option
(** The decision value carried by an edge tag, if it is a decide. *)

val exe_of_walk : t -> int list -> Act.t list
(** The action sequence (⊥ tags skipped) along a node-id walk —
    [exe(N)] of Proposition 29, as a schedule. *)

val equal_upto : t -> t -> depth:int -> bool
(** Theorem 41: unfold both quotient graphs from their roots in
    lockstep and compare edge labels, action tags and configurations
    down to the given depth.  Two trees built from FD sequences whose
    longest common prefix has length [x] must be equal up to depth
    [x] (each FD edge consumes one event, so at most [x] of the paper's
    t_D events are visible within [x] levels). *)
