open Afd_ioa
open Afd_core
open Afd_system

type t = {
  node : int;
  l : Tagged_tree.label;
  r : Tagged_tree.label;
  l_action : Act.t option;
  r_action : Act.t option;
  v : bool;
}

let edge_by_label node label =
  Array.to_list node.Tagged_tree.edges
  |> List.find_opt (fun (l, _, _) -> l = label)

let find_all (va : Valence.t) =
  let tree = va.Valence.tree in
  let hooks = ref [] in
  Array.iter
    (fun node ->
      let id = node.Tagged_tree.id in
      if va.Valence.of_node.(id) = Valence.Bivalent then
        Array.iter
          (fun (l, l_action, l_dst) ->
            match va.Valence.of_node.(l_dst) with
            | Valence.Univalent v ->
              Array.iter
                (fun (r, r_action, r_dst) ->
                  if r <> l then
                    let rnode = tree.Tagged_tree.nodes.(r_dst) in
                    match edge_by_label rnode l with
                    | Some (_, _, rl_dst) -> (
                      match va.Valence.of_node.(rl_dst) with
                      | Valence.Univalent v' when Bool.equal v' (not v) ->
                        hooks := { node = id; l; r; l_action; r_action; v } :: !hooks
                      | _ -> ())
                    | None -> ())
                node.Tagged_tree.edges
            | Valence.Bivalent | Valence.Blocked -> ())
          node.Tagged_tree.edges)
    tree.Tagged_tree.nodes;
  List.rev !hooks

let critical_location h =
  match (h.l_action, h.r_action) with
  | Some la, Some ra ->
    let li = Act.loc la and ri = Act.loc ra in
    if Loc.equal li ri then Some li else None
  | _ -> None

let check_theorem59 (va : Valence.t) h =
  match (h.l_action, h.r_action) with
  | None, _ -> Error "l-edge tag is bottom (contradicts Lemma 56)"
  | _, None -> Error "r-edge tag is bottom (contradicts Lemma 56)"
  | Some la, Some ra ->
    let li = Act.loc la and ri = Act.loc ra in
    if not (Loc.equal li ri) then
      Error
        (Fmt.str "edge tags at different locations %a vs %a (contradicts Lemma 57)"
           Loc.pp li Loc.pp ri)
    else
      let td = Array.to_list va.Valence.tree.Tagged_tree.td in
      let faulty = Fd_event.faulty td in
      if Loc.Set.mem li faulty then
        Error
          (Fmt.str "critical location %a is faulty in t_D (contradicts Lemma 58)"
             Loc.pp li)
      else Ok li
