type outcome = {
  survived : int;
  exhausted : bool;
  starved_labels : string list;
}

let label_name = Fmt.str "%a" Tagged_tree.pp_label

let walk (va : Valence.t) ~max_steps ~must_take =
  let tree = va.Valence.tree in
  let nlabels = Array.length tree.Tagged_tree.nodes.(0).Tagged_tree.edges in
  let last_taken = Array.make nlabels 0 in
  let ever_taken = Array.make nlabels false in
  let current = ref 0 in
  let steps = ref 0 in
  let exhausted = ref false in
  while (not !exhausted) && !steps < max_steps do
    let node = tree.Tagged_tree.nodes.(!current) in
    let candidates =
      Array.to_list (Array.mapi (fun k e -> (k, e)) node.Tagged_tree.edges)
      |> List.filter (fun (_, (_, act, _)) -> act <> None)
    in
    (* fairness constraint: if some label is overdue, it must be taken *)
    let forced =
      List.filter (fun (k, _) -> must_take ~label:k ~overdue:(!steps - last_taken.(k))) candidates
    in
    let pool = match forced with [] -> candidates | f -> f in
    let bivalent_moves =
      List.filter
        (fun (_, (_, _, dst)) -> va.Valence.of_node.(dst) = Valence.Bivalent)
        pool
    in
    match (bivalent_moves, pool) with
    | [], [] -> exhausted := true
    | [], _ :: _ when forced <> [] ->
      (* a forced move exists but all forced moves leave bivalence *)
      exhausted := true
    | [], _ :: _ -> exhausted := true
    | (k, (_, _, dst)) :: _, _ ->
      ever_taken.(k) <- true;
      last_taken.(k) <- !steps;
      current := dst;
      incr steps;
      (* refresh disabled labels so they do not count as starved-able *)
      Array.iteri
        (fun j (_, act, _) -> if act = None then last_taken.(j) <- !steps)
        tree.Tagged_tree.nodes.(!current).Tagged_tree.edges
  done;
  let starved =
    List.filteri (fun k _ -> not ever_taken.(k)) (List.init nlabels Fun.id)
    |> List.map (fun k ->
           let label, _, _ = tree.Tagged_tree.nodes.(0).Tagged_tree.edges.(k) in
           label_name label)
  in
  { survived = !steps; exhausted = !exhausted; starved_labels = starved }

let unconstrained va ~max_steps =
  walk va ~max_steps ~must_take:(fun ~label:_ ~overdue:_ -> false)

let fair_windowed va ~window ~max_steps =
  walk va ~max_steps ~must_take:(fun ~label:_ ~overdue -> overdue >= window)
