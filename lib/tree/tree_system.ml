open Afd_ioa
open Afd_core
open Afd_system

let flood_system ~n ~f =
  Composition.make ~name:"tree-flood"
    (Afd_consensus.Flood_p.processes ~n ~f
    @ Channel.all_pairs ~n
    @ Environment.consensus ~n)

let empty_round ~n ~except =
  List.filter_map
    (fun i ->
      if List.mem i except then None
      else Some (Fd_event.Output (i, Act.Pset Loc.Set.empty)))
    (Loc.universe ~n)

let suspicion_round ~n ~suspects ~except =
  List.filter_map
    (fun i ->
      if List.mem i except then None
      else Some (Fd_event.Output (i, Act.Pset suspects)))
    (Loc.universe ~n)

let td_one_crash ~n ~crash ~pre ~post =
  List.concat_map (fun _ -> empty_round ~n ~except:[]) (List.init pre Fun.id)
  @ [ Fd_event.Crash crash ]
  @ List.concat_map
      (fun _ -> suspicion_round ~n ~suspects:(Loc.Set.singleton crash) ~except:[ crash ])
      (List.init post Fun.id)

let td_no_crash ~n ~rounds =
  List.concat_map (fun _ -> empty_round ~n ~except:[]) (List.init rounds Fun.id)
