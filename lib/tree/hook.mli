(** Hooks (Section 9.6).

    A hook is a tuple (N, l, r): node N bivalent, N's l-child
    v-valent, and the l-child of N's r-child (1-v)-valent.  Theorem 59:
    hooks exist in R^{t_D}, their two edge tags are non-⊥, occur at one
    location (the {e critical location}), and that location is live in
    t_D — the paper's precise account of how AFD information, delivered
    at live locations, breaks FLP bivalence. *)

open Afd_ioa
open Afd_system

type t = {
  node : int;  (** N *)
  l : Tagged_tree.label;
  r : Tagged_tree.label;
  l_action : Act.t option;  (** tag of N's l-edge *)
  r_action : Act.t option;  (** tag of N's r-edge *)
  v : bool;  (** valence of the l-child *)
}

val find_all : Valence.t -> t list
(** Exhaustive scan of the quotient graph for hooks. *)

val critical_location : t -> Loc.t option
(** The location of the l-edge tag when both tags are non-⊥ and agree
    on a location (Lemmas 56-57); [None] otherwise. *)

val check_theorem59 : Valence.t -> t -> (Loc.t, string) result
(** Verify the three claims of Theorem 59 on one hook: non-⊥ tags, a
    common location, and liveness of that location in t_D.  Returns the
    critical location. *)
