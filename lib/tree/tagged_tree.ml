open Afd_ioa
open Afd_core
open Afd_system

type label = FD | Task of Composition.task_id

let pp_label fmt = function
  | FD -> Format.pp_print_string fmt "FD"
  | Task tid ->
    Format.fprintf fmt "%s/%s" tid.Composition.comp_name tid.Composition.task_name

type node = {
  id : int;
  config : Act.t Composition.state;
  pos : int;
  edges : (label * Act.t option * int) array;
}

type t = {
  system : Act.t Composition.t;
  td : Act.fd_payload Fd_event.t array;
  nodes : node array;
}

let labels t = FD :: List.map (fun tid -> Task tid) (Composition.tasks t.system)

let act_of_fd_event ev ~detector =
  match ev with
  | Fd_event.Crash i -> Act.Crash i
  | Fd_event.Output (i, payload) -> Act.Fd { at = i; detector; payload }

let decision_of_edge = function
  | Some (Act.Decide { v; _ }) -> Some v
  | Some _ | None -> None

(* Key table on (config, pos). *)
module Key = struct
  type t = Act.t Composition.state * int

  let equal (c1, p1) (c2, p2) = p1 = p2 && Composition.equal_state c1 c2
  let hash (c, p) = (Composition.hash_state c * 31) + p
end

module Key_tbl = Hashtbl.Make (Key)

let build ~system ~detector ~td ~max_nodes =
  let td = Array.of_list td in
  let task_labels = Composition.tasks system in
  let tbl = Key_tbl.create 1024 in
  let nodes = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern config pos =
    match Key_tbl.find_opt tbl (config, pos) with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      Key_tbl.add tbl (config, pos) id;
      Queue.add (id, config, pos) queue;
      id
  in
  let root = intern (Composition.start system) 0 in
  assert (root = 0);
  let overflow = ref false in
  while (not (Queue.is_empty queue)) && not !overflow do
    let id, config, pos = Queue.pop queue in
    if !count > max_nodes then overflow := true
    else begin
      let edge_of_label label =
        let action =
          match label with
          | FD -> if pos < Array.length td then Some (act_of_fd_event td.(pos) ~detector) else None
          | Task tid -> Composition.enabled system config tid
        in
        match action with
        | None -> (label, None, id) (* bottom tag: self-loop in the quotient *)
        | Some act -> (
          match Composition.step system config act with
          | None ->
            (* An FD output directed at a component that cannot absorb
               it would be a modelling error; inputs are always
               enabled, so this is unreachable for well-formed systems. *)
            invalid_arg
              (Fmt.str "Tagged_tree.build: action %a not applicable" Act.pp act)
          | Some config' ->
            let pos' = match label with FD -> pos + 1 | Task _ -> pos in
            (label, Some act, intern config' pos'))
      in
      let edges =
        Array.of_list (edge_of_label FD :: List.map (fun tid -> edge_of_label (Task tid)) task_labels)
      in
      nodes := { id; config; pos; edges } :: !nodes
    end
  done;
  if !overflow then
    Error (Printf.sprintf "Tagged_tree.build: more than %d quotient nodes" max_nodes)
  else begin
    let arr = Array.make !count None in
    List.iter (fun n -> arr.(n.id) <- Some n) !nodes;
    let nodes =
      Array.map
        (function
          | Some n -> n
          | None -> invalid_arg "Tagged_tree.build: dangling node id")
        arr
    in
    Ok { system; td; nodes }
  end

let equal_upto t1 t2 ~depth =
  let memo = Hashtbl.create 256 in
  let rec go id1 id2 d =
    d = 0
    ||
    let key = (id1, id2, d) in
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
      (* optimistic seed breaks cycles: equality is the greatest fixed
         point over the lockstep product graph *)
      Hashtbl.add memo key true;
      let n1 = t1.nodes.(id1) and n2 = t2.nodes.(id2) in
      let r =
        Composition.equal_state n1.config n2.config
        && Array.length n1.edges = Array.length n2.edges
        && Array.for_all2
             (fun (l1, a1, d1) (l2, a2, d2) ->
               l1 = l2
               && Option.equal Act.equal a1 a2
               && go d1 d2 (d - 1))
             n1.edges n2.edges
      in
      Hashtbl.replace memo key r;
      r
  in
  go 0 0 depth

let exe_of_walk t ids =
  let rec go acc = function
    | [] | [ _ ] -> List.rev acc
    | a :: (b :: _ as rest) ->
      let node = t.nodes.(a) in
      let edge =
        Array.to_list node.edges
        |> List.find_opt (fun (_, act, dst) -> dst = b && act <> None)
      in
      let acc = match edge with Some (_, Some act, _) -> act :: acc | _ -> acc in
      go acc rest
  in
  go [] ids
