(** Ready-made systems and FD sequences for tree experiments
    (Section 9.3-9.4).

    The system S contains the flooding-consensus processes, the
    channels, and the well-formed consensus environment E_C — but
    {e no} crash automaton and {e no} detector automaton: crash and
    detector events are injected by the FD edges of the tagged tree,
    following the fixed sequence t_D. *)

open Afd_ioa
open Afd_core
open Afd_system

val flood_system : n:int -> f:int -> Act.t Composition.t
(** Flooding consensus (using P) with E_C, ready for
    {!Tagged_tree.build} with [detector = Flood_p.detector_name]. *)

val td_one_crash :
  n:int -> crash:Loc.t -> pre:int -> post:int -> Act.fd_payload Fd_event.t list
(** A t_D ∈ T_P: [pre] rounds of empty suspicion sets at every
    location, the crash, then [post] rounds of [{crash}] at the
    surviving locations.  [post] must be large enough that every
    blocked wait in the tree can be released (one suffices for
    flooding, more gives the adversary slack). *)

val td_no_crash : n:int -> rounds:int -> Act.fd_payload Fd_event.t list
(** A crash-free t_D ∈ T_P: [rounds] rounds of empty suspicion sets. *)
