(** The bivalence-horizon experiment (Section 9.6 / FLP [11]).

    FLP's impossibility proof keeps a (failure-detector-free) consensus
    protocol bivalent forever by a careful adversarial schedule.  In
    R^{t_D} the situation is inverted: the AFD's information — injected
    by FD edges at live locations, which is exactly where the hooks of
    Theorem 59 sit — makes bivalence unsustainable.  These adversaries
    walk the quotient graph greedily preferring bivalent successors and
    measure how long they last:

    - {!unconstrained} may starve any task (the full power of the
      asynchronous adversary);
    - {!fair_windowed} must take every continuously-enabled label at
      least once per [window] steps (an operational window form of task
      fairness; fair branches take every label infinitely often).

    Both exhaust after a handful of steps on the consensus trees —
    every branch, fair or not, is soon forced univalent; the paper's
    Proposition 48 (every fair branch decides) is the limiting
    statement.  The two greedy horizons are not comparable to each
    other in general (greedy play is not optimal play); the benches
    report both across windows. *)

type outcome = {
  survived : int;  (** bivalence-preserving steps achieved *)
  exhausted : bool;  (** stopped because no legal bivalent move existed *)
  starved_labels : string list;
      (** labels never taken during the walk *)
}

val unconstrained : Valence.t -> max_steps:int -> outcome

val fair_windowed : Valence.t -> window:int -> max_steps:int -> outcome
(** The adversary must, whenever a label has not been taken for
    [window] steps while its edge was continuously non-⊥, take an
    overdue label next; among the remaining legal moves it prefers
    bivalent successors. *)
