(** The parallel experiment engine.

    [run cfg entries] expands every matrix entry into cells (one per
    fault pattern per seed index), derives each cell's scheduler seed
    deterministically from [cfg.root_seed], executes all cells on a
    {!Pool} of [cfg.jobs] domains, and reassembles results in matrix
    order.  Because seeds are a pure function of [(root_seed, entry id,
    fault index, seed index)] and results are stored by cell index, the
    verdict table is bit-identical for any [jobs] — parallelism cannot
    leak into results. *)

type cfg = {
  jobs : int;  (** domains to use; [<= 1] runs sequentially *)
  root_seed : int;  (** root of the splitmix64 seed derivation *)
  seeds_override : int option;
      (** when set, overrides every entry's default seed count *)
}

val default_cfg : cfg
(** [jobs = 1], [root_seed = 1], no seed override. *)

type run = {
  cfg : cfg;
  exps : Metrics.exp list;  (** in entry order, regardless of [jobs] *)
  wall_seconds : float;  (** wall-clock of the whole matrix *)
}

val cell_seed : root:int -> id:string -> fault_index:int -> seed_index:int -> int
(** The derivation used for every cell; exposed for tests and for
    bodies that need further per-cell substreams. *)

val run : cfg -> Matrix.entry list -> run

val total_steps : run -> int
(** Sum of [steps_fired] over every cell of every experiment. *)

val total_seconds : run -> float
(** Sum of per-cell wall-clock over every cell (CPU-time-like: cells
    running on different domains are summed, not overlapped). *)

val aggregate_transitions_per_sec : run -> float
(** [total_steps / total_seconds]; [0.] when no time was observed.
    The throughput figure [make perf] gates on. *)

val verdict_table : run -> string
(** Section headers plus every rendered row, newline-separated — the
    byte-comparable artifact of the determinism tests.  Contains no
    timing-derived text. *)

val pp : Format.formatter -> run -> unit
(** Prints {!verdict_table} followed by a one-line matrix summary
    (cells, jobs, wall-clock). *)
