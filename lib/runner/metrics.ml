open Afd_core

type outcome = {
  verdict : Verdict.t;
  steps_fired : int;
  quiescent : bool;
  detail : string;
  counterexample : int option;
  clauses : (string * Verdict.t) list;
}

let outcome ?(steps = 0) ?(quiescent = false) ?(detail = "") ?counterexample
    ?(clauses = []) verdict =
  { verdict; steps_fired = steps; quiescent; detail; counterexample; clauses }

let of_result ?steps ?detail = function
  | Ok () -> outcome ?steps ?detail Verdict.Sat
  | Error e -> outcome ?steps ?detail (Verdict.Violated e)

type counts = { sat : int; undecided : int; violated : int }

let counts outcomes =
  List.fold_left
    (fun c o ->
      match o.verdict with
      | Verdict.Sat -> { c with sat = c.sat + 1 }
      | Verdict.Undecided _ -> { c with undecided = c.undecided + 1 }
      | Verdict.Violated _ -> { c with violated = c.violated + 1 })
    { sat = 0; undecided = 0; violated = 0 }
    outcomes

let all_sat outcomes = List.for_all (fun o -> Verdict.is_sat o.verdict) outcomes

type cell = {
  seed_index : int;
  fault_index : int;
  scheduler_seed : int;
  outcome : outcome;
  seconds : float;
}

type exp = {
  id : string;
  section : string;
  label : string;
  cells : cell list;
  rendered : string;
}

let exp_counts e = counts (List.map (fun c -> c.outcome) e.cells)
let exp_steps e = List.fold_left (fun acc c -> acc + c.outcome.steps_fired) 0 e.cells
let exp_seconds e = List.fold_left (fun acc c -> acc +. c.seconds) 0. e.cells

let transitions_per_sec e =
  let s = exp_seconds e in
  if s <= 0. then 0. else float_of_int (exp_steps e) /. s
