type faults = (int * Afd_ioa.Loc.t) list

type entry = {
  id : string;
  section : string;
  label : string;
  seeds : int;
  faults : faults list;
  body : seed:int -> faults:faults -> Metrics.outcome;
  show : Metrics.outcome list -> string;
  pre_lines : string list;
}

let show_seeds_sat ~label ~ok outcomes =
  Printf.sprintf "  %-40s %d seeds: %s" label (List.length outcomes)
    (if Metrics.all_sat outcomes then ok else "FAILED")

let show_sat ~label ~ok outcomes =
  Printf.sprintf "  %-40s %s" label (if Metrics.all_sat outcomes then ok else "FAILED")

let show_detail ~label outcomes =
  let detail =
    match outcomes with o :: _ -> o.Metrics.detail | [] -> "(no cells)"
  in
  Printf.sprintf "  %-40s %s" label detail

let entry ~id ~section ?label ?(seeds = 1) ?(faults = [ [] ]) ?(pre_lines = []) ?show
    body =
  let label = Option.value label ~default:id in
  let show =
    match show with Some s -> s | None -> show_seeds_sat ~label ~ok:"all sat"
  in
  if faults = [] then invalid_arg "Matrix.entry: empty fault-pattern list";
  if seeds <= 0 then invalid_arg "Matrix.entry: seeds must be positive";
  { id; section; label; seeds; faults; body; show; pre_lines }
