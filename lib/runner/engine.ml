open Afd_core

type cfg = { jobs : int; root_seed : int; seeds_override : int option }

let default_cfg = { jobs = 1; root_seed = 1; seeds_override = None }

type run = { cfg : cfg; exps : Metrics.exp list; wall_seconds : float }

let cell_seed ~root ~id ~fault_index ~seed_index =
  Afd_ioa.Scheduler.Seed.derive ~root
    ~key:(id ^ "#" ^ string_of_int fault_index)
    ~index:seed_index

(* One schedulable unit: entry ordinal plus cell coordinates. *)
type cell_task = {
  ordinal : int;
  entry : Matrix.entry;
  seed_index : int;
  fault_index : int;
  scheduler_seed : int;
}

let seeds_of cfg (e : Matrix.entry) =
  match cfg.seeds_override with Some n -> n | None -> e.Matrix.seeds

let expand cfg entries =
  List.concat
    (List.mapi
       (fun ordinal (e : Matrix.entry) ->
         List.concat
           (List.mapi
              (fun fault_index _ ->
                List.init (seeds_of cfg e) (fun seed_index ->
                    { ordinal;
                      entry = e;
                      seed_index;
                      fault_index;
                      scheduler_seed =
                        cell_seed ~root:cfg.root_seed ~id:e.Matrix.id
                          ~fault_index ~seed_index;
                    }))
              e.Matrix.faults))
       entries)

let run_cell task =
  let faults = List.nth task.entry.Matrix.faults task.fault_index in
  let t0 = Unix.gettimeofday () in
  let outcome =
    try task.entry.Matrix.body ~seed:task.scheduler_seed ~faults
    with e ->
      Metrics.outcome (Verdict.Violated ("exception: " ^ Printexc.to_string e))
  in
  let seconds = Unix.gettimeofday () -. t0 in
  { Metrics.seed_index = task.seed_index;
    fault_index = task.fault_index;
    scheduler_seed = task.scheduler_seed;
    outcome;
    seconds;
  }

let run cfg entries =
  let t0 = Unix.gettimeofday () in
  let tasks = Array.of_list (expand cfg entries) in
  let cells = Pool.map ~jobs:cfg.jobs run_cell tasks in
  (* Reassemble per entry, in matrix order: results were stored by cell
     index, so this grouping is independent of domain scheduling. *)
  let exps =
    List.mapi
      (fun ordinal (e : Matrix.entry) ->
        let mine = ref [] in
        Array.iteri
          (fun i c -> if tasks.(i).ordinal = ordinal then mine := c :: !mine)
          cells;
        let mine = List.rev !mine in
        let outcomes = List.map (fun c -> c.Metrics.outcome) mine in
        let rendered =
          String.concat "\n" (e.Matrix.pre_lines @ [ e.Matrix.show outcomes ])
        in
        { Metrics.id = e.Matrix.id;
          section = e.Matrix.section;
          label = e.Matrix.label;
          cells = mine;
          rendered;
        })
      entries
  in
  { cfg; exps; wall_seconds = Unix.gettimeofday () -. t0 }

let total_steps r =
  List.fold_left (fun acc e -> acc + Metrics.exp_steps e) 0 r.exps

let total_seconds r =
  List.fold_left (fun acc e -> acc +. Metrics.exp_seconds e) 0. r.exps

let aggregate_transitions_per_sec r =
  let s = total_seconds r in
  if s <= 0. then 0. else float_of_int (total_steps r) /. s

let verdict_table r =
  let buf = Buffer.create 4096 in
  let last_section = ref None in
  List.iter
    (fun (e : Metrics.exp) ->
      if !last_section <> Some e.section then begin
        Buffer.add_string buf (Printf.sprintf "\n== %s ==\n" e.section);
        last_section := Some e.section
      end;
      Buffer.add_string buf e.rendered;
      Buffer.add_char buf '\n')
    r.exps;
  Buffer.contents buf

let pp fmt r =
  Format.pp_print_string fmt (verdict_table r);
  let cells =
    List.fold_left (fun acc e -> acc + List.length e.Metrics.cells) 0 r.exps
  in
  Format.fprintf fmt
    "(matrix: %d experiments, %d cells, jobs=%d, %.2fs, %.0f transitions/s)@."
    (List.length r.exps) cells r.cfg.jobs r.wall_seconds
    (aggregate_transitions_per_sec r)
