(** BENCH.json emission — the machine-readable counterpart of the
    pretty verdict table, so the perf trajectory is diffable across
    PRs.

    The JSON is hand-rolled (the repo deliberately has no JSON
    dependency, same as [Afd_analysis.Report]).  Schema, informally:

    {v
    { "schema": "afd-bench/1",
      "root_seed": int, "seeds_override": int|null,
      "run_id": str, "git": str, "jobs": int,        -- timings only
      "wall_clock_s": float,                          -- timings only
      "experiments": [
        { "id": str, "section": str, "label": str,
          "cells": int, "steps_fired": int,
          "verdicts": {"sat": int, "undecided": int, "violated": int},
          "rows": [ { "seed_index": int, "fault_index": int,
                      "scheduler_seed": int, "verdict": str,
                      "reason": str|null, "steps": int,
                      "quiescent": bool,
                      "counterexample": int|null,    -- minimal violating
                                                     -- prefix index
                      "clauses": [ { "clause": str,  -- property-checked
                                     "verdict": str, -- runs only
                                     "reason": str|null } ],
                      "seconds": float } ],          -- timings only
          "wall_clock_s": float,                      -- timings only
          "transitions_per_sec": float } ] }          -- timings only
    v}

    With [~timings:false] every field that can vary between two runs of
    the same root seed (wall-clock, throughput, job count, git state,
    run id) is omitted, so determinism tests can compare the emitted
    strings byte-for-byte. *)

val git_describe : unit -> string
(** [git describe --always --dirty], or ["unknown"] when git or the
    repository is unavailable. *)

val to_json : ?timings:bool -> ?git:string -> Engine.run -> string
(** [timings] defaults to [true]; [git] defaults to {!git_describe}
    (only consulted when [timings]). *)

val write : path:string -> Engine.run -> unit
(** Write [to_json ~timings:true] to [path]. *)
