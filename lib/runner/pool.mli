(** A fixed-size Domain work pool.

    [map ~jobs f arr] applies [f] to every element of [arr] using up to
    [jobs] domains (the calling domain included) and returns the
    results {e in input order}: each worker claims the next unclaimed
    index from a shared atomic counter and writes its result into that
    slot, so the output array is independent of how work interleaves
    across domains.  [jobs <= 1] degenerates to a plain sequential map
    with no domain spawned. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** If [f] raises, the first exception in index order is re-raised
    after all domains have been joined. *)
