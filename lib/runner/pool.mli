(** A fixed-size Domain work pool.

    Two layers:

    {b One-shot maps.}  [map ~jobs f arr] applies [f] to every element
    of [arr] using up to [jobs] domains (the calling domain included)
    and returns the results {e in input order}: each worker claims the
    next unclaimed index from a shared atomic counter and writes its
    result into that slot, so the output array is independent of how
    work interleaves across domains.  [jobs <= 1] degenerates to a
    plain sequential map with no domain spawned.

    {b Persistent pools.}  Round-structured algorithms (the parallel
    state-space explorer {!Afd_analysis.Pspace} runs one parallel
    phase per BFS round) would pay a domain spawn+join per round under
    [map].  [create ~jobs] spawns the worker domains {e once}; each
    {!map_pool} call wakes them for one input array and blocks until
    every index is processed, and {!shutdown} retires them.  Results
    are in input order, exactly as with [map].

    {b Crash safety.}  A task that raises does not deadlock the pool
    or poison later rounds: exceptions are caught per index, every
    index of the round is still claimed and completed, all workers
    return to the idle barrier, and the {e first} exception in index
    order is re-raised to the caller after the round's barrier — so
    error reporting never depends on domain interleaving, and the same
    pool object accepts further [map_pool] calls afterwards.  [map]
    inherits the same contract (its domains are additionally joined
    before the re-raise, so no domain ever leaks, even on failure). *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** If [f] raises, the first exception in index order is re-raised
    after all domains have been joined. *)

type t
(** A persistent pool: [jobs - 1] idle worker domains plus the calling
    domain.  Not itself thread-safe: drive each pool from the single
    domain that created it. *)

val create : jobs:int -> t
(** Spawn the workers ([max 1 jobs] - 1 domains; [jobs <= 1] spawns
    none and every [map_pool] runs inline).  If a worker domain fails
    to spawn, the ones already spawned are shut down before the
    exception propagates. *)

val jobs : t -> int
(** The domain count the pool was created with (including the caller),
    clamped to at least 1. *)

val map_pool : t -> ('a -> 'b) -> 'a array -> 'b array
(** One parallel round over [arr]; results in input order.  The first
    exception in index order is re-raised after the round completes —
    the pool stays usable.  Raises [Invalid_argument] on a pool that
    was already {!shutdown}. *)

val shutdown : t -> unit
(** Signal the workers to exit and join them.  Idempotent. *)

val with_pool : jobs:int -> (t -> 'r) -> 'r
(** [create], run the body, and {!shutdown} — also on exceptions, so
    worker domains never outlive the call. *)
