open Afd_core

(* --- JSON (hand-rolled; the repo deliberately has no JSON dependency) --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = Printf.sprintf "\"%s\"" (json_escape s)
let json_opt_int = function None -> "null" | Some i -> string_of_int i
let json_float f = Printf.sprintf "%.6f" f

let git_describe () =
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown")
  with _ -> "unknown"

let verdict_fields v =
  match v with
  | Verdict.Sat -> (json_str "sat", "null")
  | Verdict.Undecided m -> (json_str "undecided", json_str m)
  | Verdict.Violated m -> (json_str "violated", json_str m)

let clause_to_json (name, v) =
  let status, reason = verdict_fields v in
  Printf.sprintf "{\"clause\":%s,\"verdict\":%s,\"reason\":%s}" (json_str name)
    status reason

let cell_to_json ~timings (c : Metrics.cell) =
  let status, reason = verdict_fields c.Metrics.outcome.Metrics.verdict in
  let base =
    Printf.sprintf
      "{\"seed_index\":%d,\"fault_index\":%d,\"scheduler_seed\":%d,\"verdict\":%s,\"reason\":%s,\"steps\":%d,\"quiescent\":%b,\"counterexample\":%s"
      c.Metrics.seed_index c.Metrics.fault_index c.Metrics.scheduler_seed status
      reason c.Metrics.outcome.Metrics.steps_fired
      c.Metrics.outcome.Metrics.quiescent
      (json_opt_int c.Metrics.outcome.Metrics.counterexample)
  in
  let base =
    match c.Metrics.outcome.Metrics.clauses with
    | [] -> base
    | cs ->
      base
      ^ Printf.sprintf ",\"clauses\":[%s]"
          (String.concat "," (List.map clause_to_json cs))
  in
  if timings then base ^ Printf.sprintf ",\"seconds\":%s}" (json_float c.Metrics.seconds)
  else base ^ "}"

let exp_to_json ~timings (e : Metrics.exp) =
  let counts = Metrics.exp_counts e in
  let base =
    Printf.sprintf
      "{\"id\":%s,\"section\":%s,\"label\":%s,\"cells\":%d,\"steps_fired\":%d,\"verdicts\":{\"sat\":%d,\"undecided\":%d,\"violated\":%d},\"rows\":[%s]"
      (json_str e.Metrics.id) (json_str e.Metrics.section)
      (json_str e.Metrics.label)
      (List.length e.Metrics.cells)
      (Metrics.exp_steps e) counts.Metrics.sat counts.Metrics.undecided
      counts.Metrics.violated
      (String.concat "," (List.map (cell_to_json ~timings) e.Metrics.cells))
  in
  if timings then
    base
    ^ Printf.sprintf ",\"wall_clock_s\":%s,\"transitions_per_sec\":%s}"
        (json_float (Metrics.exp_seconds e))
        (json_float (Metrics.transitions_per_sec e))
  else base ^ "}"

let to_json ?(timings = true) ?git (r : Engine.run) =
  let experiments =
    String.concat ",\n    " (List.map (exp_to_json ~timings) r.Engine.exps)
  in
  let header =
    Printf.sprintf "\"schema\":\"afd-bench/1\",\"root_seed\":%d,\"seeds_override\":%s"
      r.Engine.cfg.Engine.root_seed
      (json_opt_int r.Engine.cfg.Engine.seeds_override)
  in
  let header =
    if timings then
      let git = match git with Some g -> g | None -> git_describe () in
      let run_id =
        Printf.sprintf "%s-r%d-j%d" git r.Engine.cfg.Engine.root_seed
          r.Engine.cfg.Engine.jobs
      in
      header
      ^ Printf.sprintf
          ",\"run_id\":%s,\"git\":%s,\"jobs\":%d,\"cores\":%d,\"wall_clock_s\":%s,\"total_steps\":%d,\"aggregate_transitions_per_sec\":%s"
          (json_str run_id) (json_str git) r.Engine.cfg.Engine.jobs
          (Domain.recommended_domain_count ())
          (json_float r.Engine.wall_seconds)
          (Engine.total_steps r)
          (json_float (Engine.aggregate_transitions_per_sec r))
    else header
  in
  Printf.sprintf "{%s,\n  \"experiments\":[\n    %s\n  ]}\n" header experiments

let write ~path r =
  let oc = open_out path in
  output_string oc (to_json ~timings:true r);
  close_out oc
