(* Re-raise the first failure in index order, so error reporting does
   not depend on domain interleaving. *)
let unwrap results =
  Array.iter (function Some (Error e) -> raise e | Some (Ok _) | None -> ()) results;
  Array.map (function Some (Ok v) -> v | Some (Error _) | None -> assert false) results

(* A round: claim indices from [next] until exhausted.  The task
   closure itself catches whatever the user function raises (storing
   it in the result slot), so running a round never lets an exception
   escape into a worker's control loop. *)
let steal next n task =
  let rec go () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      task i;
      go ()
    end
  in
  go ()

type t = {
  jobs : int;
  mutex : Mutex.t;
  wake : Condition.t;  (* workers wait here for a new round (or stop) *)
  idle : Condition.t;  (* the driver waits here for round completion *)
  mutable round : int;  (* bumped once per map_pool: the wake signal *)
  mutable current : (int -> unit) option;  (* the round's index task *)
  next : int Atomic.t;  (* shared claim counter of the round *)
  limit : int Atomic.t;  (* input length of the round *)
  mutable working : int;  (* workers still inside the round *)
  mutable stop : bool;
  mutable domains : unit Domain.t array;  (* [||] once shut down *)
}

(* Worker control loop.  The barrier discipline is what the crash
   tests pin: a worker ALWAYS decrements [working] after a round, even
   if the round's task misbehaved ([steal] cannot raise, because the
   task closure catches — but Fun.protect guards the decrement against
   asynchronous exceptions anyway), so the driver can never be left
   waiting on [idle] forever and the pool survives into later rounds. *)
let worker t =
  let rec loop seen =
    Mutex.lock t.mutex;
    while (not t.stop) && t.round = seen do
      Condition.wait t.wake t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      let round = t.round in
      let task = match t.current with Some f -> f | None -> assert false in
      Mutex.unlock t.mutex;
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock t.mutex;
          t.working <- t.working - 1;
          if t.working = 0 then Condition.signal t.idle;
          Mutex.unlock t.mutex)
        (fun () -> steal t.next (Atomic.get t.limit) task);
      loop round
    end
  in
  loop 0

let jobs t = t.jobs

let shutdown t =
  let ds = t.domains in
  if Array.length ds > 0 then begin
    t.domains <- [||];
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    Array.iter Domain.join ds
  end
  else begin
    (* jobs = 1 pools have no workers but must still refuse further
       rounds after shutdown, like any other pool *)
    Mutex.lock t.mutex;
    t.stop <- true;
    Mutex.unlock t.mutex
  end

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    { jobs;
      mutex = Mutex.create ();
      wake = Condition.create ();
      idle = Condition.create ();
      round = 0;
      current = None;
      next = Atomic.make 0;
      limit = Atomic.make 0;
      working = 0;
      stop = false;
      domains = [||];
    }
  in
  (match
     Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t))
   with
  | ds -> t.domains <- ds
  | exception e ->
    (* a partial spawn (domain limit) must not leak what did start;
       Array.init already discarded the partial array, so the spawned
       domains exit through the stop flag on their own *)
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    raise e);
  t

let map_pool t f arr =
  if t.stop then invalid_arg "Pool.map_pool: pool was shut down";
  let n = Array.length arr in
  if t.jobs = 1 || Array.length t.domains = 0 || n <= 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let task i = results.(i) <- Some (try Ok (f arr.(i)) with e -> Error e) in
    Atomic.set t.next 0;
    Atomic.set t.limit n;
    Mutex.lock t.mutex;
    t.current <- Some task;
    t.working <- Array.length t.domains;
    t.round <- t.round + 1;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    (* the driver is a worker too *)
    steal t.next n task;
    Mutex.lock t.mutex;
    while t.working > 0 do
      Condition.wait t.idle t.mutex
    done;
    t.current <- None;
    Mutex.unlock t.mutex;
    unwrap results
  end

let with_pool ~jobs body =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> body t)

let map ~jobs f arr =
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then Array.map f arr
  else with_pool ~jobs (fun t -> map_pool t f arr)
