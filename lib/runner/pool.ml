(* Re-raise the first failure in index order, so error reporting does
   not depend on domain interleaving. *)
let unwrap results =
  Array.iter (function Error e -> raise e | Ok _ -> ()) results;
  Array.map (function Ok v -> v | Error _ -> assert false) results

let map ~jobs f arr =
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (try Ok (f arr.(i)) with e -> Error e);
          go ()
        end
      in
      go ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    unwrap (Array.map (function Some r -> r | None -> assert false) results)
  end
