(** Declarative experiment matrices.

    An {!entry} declares one experiment row: what to run (the [body],
    closing over an automaton builder, a spec and a step budget), under
    how many seeds, and under which fault patterns.  The engine takes
    the cross product [faults x seeds], derives one scheduler seed per
    cell from the root seed ([Scheduler.Seed.derive], keyed by the
    entry id and fault index), and runs the cells on a Domain pool.

    Bodies must be self-contained: they run concurrently on multiple
    domains, so any RNG or mutable scratch state has to be created
    inside the body from the given seed, never shared across cells. *)

type faults = (int * Afd_ioa.Loc.t) list
(** A fault pattern: [(step, location)] crash injections, as consumed
    by [Afd_automata.generate_trace] and [Net.run]. *)

type entry = {
  id : string;  (** stable identifier, e.g. ["E1.omega"]; seeds the derivation *)
  section : string;  (** pretty section header this row prints under *)
  label : string;  (** left column of the pretty row; also in BENCH.json *)
  seeds : int;  (** default seed count; overridable by [--seeds] *)
  faults : faults list;  (** fault patterns; [[[]]] when crash-free *)
  body : seed:int -> faults:faults -> Metrics.outcome;
  show : Metrics.outcome list -> string;
      (** renders the complete pretty row (including leading spaces)
          from the outcomes in matrix order *)
  pre_lines : string list;  (** sub-headers printed before the row *)
}

val entry :
  id:string ->
  section:string ->
  ?label:string ->
  ?seeds:int ->
  ?faults:faults list ->
  ?pre_lines:string list ->
  ?show:(Metrics.outcome list -> string) ->
  (seed:int -> faults:faults -> Metrics.outcome) ->
  entry
(** Defaults: [label = id], [seeds = 1], [faults = [[]]],
    [show = show_seeds_sat ~label ~ok:"all sat"]. *)

(** {1 Stock row renderers} — all print ["  %-40s ..."] like the
    historical bench rows, so refactored rows stay byte-identical. *)

val show_seeds_sat : label:string -> ok:string -> Metrics.outcome list -> string
(** ["  <label> N seeds: <ok>"], or [FAILED] unless all cells are sat. *)

val show_sat : label:string -> ok:string -> Metrics.outcome list -> string
(** ["  <label> <ok>"], or [FAILED] unless all cells are sat. *)

val show_detail : label:string -> Metrics.outcome list -> string
(** ["  <label> <detail of the first cell>"]. *)
