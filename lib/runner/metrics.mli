(** Typed per-run metrics collected by the parallel experiment engine.

    Every matrix cell (one seeded run of one experiment under one fault
    pattern) produces an {!outcome}; the engine times it into a {!cell}
    and aggregates cells into an {!exp} row.  Nothing here depends on
    wall-clock except the explicitly-named [seconds] fields, so two
    runs with the same root seed compare byte-for-byte once timings are
    stripped (see [Report.to_json ~timings:false]). *)

open Afd_core

type outcome = {
  verdict : Verdict.t;
  steps_fired : int;
      (** events the run produced (trace length), or the step budget
          when the experiment does not expose its trace *)
  quiescent : bool;
  detail : string;
      (** free-form row fragment for custom renderers; [""] if unused *)
  counterexample : int option;
      (** minimal violating prefix index reported by an online property
          monitor, when the run was property-checked and violated *)
  clauses : (string * Verdict.t) list;
      (** per-clause verdicts from an online property monitor, in
          formula order; [[]] when the run was not property-checked *)
}

val outcome :
  ?steps:int ->
  ?quiescent:bool ->
  ?detail:string ->
  ?counterexample:int ->
  ?clauses:(string * Verdict.t) list ->
  Verdict.t ->
  outcome

val of_result : ?steps:int -> ?detail:string -> (unit, string) result -> outcome
(** [Ok () -> Sat], [Error e -> Violated e]. *)

type counts = { sat : int; undecided : int; violated : int }

val counts : outcome list -> counts
val all_sat : outcome list -> bool

type cell = {
  seed_index : int;
  fault_index : int;
  scheduler_seed : int;  (** derived via [Scheduler.Seed.derive] *)
  outcome : outcome;
  seconds : float;  (** wall-clock of this cell alone *)
}

type exp = {
  id : string;
  section : string;
  label : string;
  cells : cell list;  (** in matrix order: fault-major, seed-minor *)
  rendered : string;  (** the pretty row, exactly as printed *)
}

val exp_counts : exp -> counts
val exp_steps : exp -> int
val exp_seconds : exp -> float

val transitions_per_sec : exp -> float
(** [exp_steps / exp_seconds]; [0.] when no time was observed. *)
