open Afd_ioa

type 'a t = {
  name : string;
  is_input : 'a -> bool;
  is_output : 'a -> bool;
  is_crash : 'a -> Loc.t option;
  check : 'a list -> Verdict.t;
}

let external_actions p a = p.is_input a || p.is_output a
let project p t = List.filter (external_actions p) t

let of_afd spec ~n =
  { name = spec.Afd.name;
    is_input = Fd_event.is_crash;
    is_output = Fd_event.is_output;
    is_crash = (function Fd_event.Crash i -> Some i | Fd_event.Output _ -> None);
    check = (fun t -> Afd.check spec ~n t);
  }

let solves p ~traces =
  let rec go k = function
    | [] -> Ok ()
    | t :: rest -> (
      match p.check (project p t) with
      | Verdict.Violated r -> Error (Printf.sprintf "%s: trace %d violates: %s" p.name k r)
      | Verdict.Sat | Verdict.Undecided _ -> go (k + 1) rest)
  in
  go 0 traces

let solves_using p ~using ~traces =
  let rec go k = function
    | [] -> Ok ()
    | t :: rest -> (
      match using.check (project using t) with
      | Verdict.Sat -> (
        match p.check (project p t) with
        | Verdict.Violated r ->
          Error
            (Printf.sprintf "%s using %s: trace %d satisfies %s but violates %s: %s"
               p.name using.name k using.name p.name r)
        | Verdict.Sat | Verdict.Undecided _ -> go (k + 1) rest)
      | Verdict.Violated _ | Verdict.Undecided _ -> go (k + 1) rest)
  in
  go 0 traces
