(** The Marabout failure detector (Guerraoui) — a negative control
    (Section 3.4).

    Marabout always outputs the {e final} set of faulty processes, from
    the very first output on.  Its trace set is perfectly well defined,
    but no I/O automaton can implement it: implementability requires
    predicting crashes that have not happened yet.  The paper's AFD
    definition excludes it through the solvability requirement on
    problems (Section 3.1).

    {!refutation} is the executable form of that argument: for any
    deterministic crash-driven automaton, two fault patterns that agree
    on a prefix force identical outputs on that prefix, yet Marabout
    demands different outputs — so no automaton's fair traces can be
    contained in [T_Marabout]. *)

open Afd_ioa

type out = Loc.Set.t

val spec : out Afd.spec
(** The trace predicate: every output equals the faulty set of the
    whole trace.  (Well-defined, but unimplementable.) *)

type refutation = {
  pattern_a : Loc.Set.t;  (** faulty set of the first fault pattern *)
  pattern_b : Loc.Set.t;  (** faulty set of the second fault pattern *)
  explanation : string;
}

val refutation : n:int -> refutation
(** For [n >= 1]: fault pattern A crashes nobody, fault pattern B
    crashes location 0 after the first output.  Marabout requires the
    first output to be [{}] under A and [{p0}] under B, while any
    deterministic automaton outputs the same thing in both (no crash
    input has been received yet). *)

val requires_prediction : n:int -> first_output_after:int -> bool
(** [true] iff there exist two crash-event schedules agreeing on the
    first [first_output_after] events whose Marabout-mandated outputs
    already differ — i.e. the detector's first output depends on the
    future.  Always [true] for [n >= 1]; exercised by tests. *)
