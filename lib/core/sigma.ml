open Afd_ioa
module P = Afd_prop.Prop

type out = Loc.Set.t

(* Intersection is a safety clause over pairs of outputs at arbitrary
   times; online it suffices to keep the set of distinct quorums seen
   so far (at most 2^n for fixed n, so O(1) in the trace length) and
   test each new quorum against them.  A repeated quorum must also be
   tested against itself: two occurrences of a self-disjoint (empty)
   quorum form a violating pair. *)
let intersection =
  P.folding
    ~perm:(fun pi -> List.map (Loc.Set.map pi))
    ~cmp:(List.compare Loc.Set.compare) ~name:"intersection" ~init:[]
    ~step:(fun _st seen e ->
      match e with
      | Fd_event.Crash _ -> Ok seen
      | Fd_event.Output (_, q) -> (
        let fresh = not (List.exists (Loc.Set.equal q) seen) in
        match
          List.find_opt (fun q' -> Loc.Set.is_empty (Loc.Set.inter q' q)) seen
        with
        | Some q' ->
          Error (Fmt.str "disjoint quorums %a and %a" Loc.pp_set q' Loc.pp_set q)
        | None -> if fresh then Ok (seen @ [ q ]) else Ok seen))
    ~judge:(fun _st _seen -> P.J_sat)

let completeness =
  P.eventually_stable ~name:"completeness" (fun st ->
      match P.last_outputs st with
      | Error u -> P.J_undecided u
      | Ok (last, live) ->
        Loc.Map.fold
          (fun i q acc ->
            if Loc.Set.subset q live then acc
            else
              P.j_and acc
                (P.J_undecided
                   (Fmt.str "last quorum at %a contains faulty %a" Loc.pp i
                      Loc.pp_set (Loc.Set.diff q live))))
          last P.J_sat)

let prop ~n:_ = P.conj [ P.validity (); intersection; completeness ]
let spec = Afd.of_prop ~perm_out:(fun pi -> Loc.Set.map pi) ~name:"Sigma" ~pp_out:Loc.pp_set ~equal_out:Loc.Set.equal prop
