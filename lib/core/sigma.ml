open Afd_ioa

type out = Loc.Set.t

let intersection t =
  let quorums =
    List.filter_map (fun e -> Fd_event.output_payload e) t |> Array.of_list
  in
  let bad = ref None in
  Array.iteri
    (fun x q1 ->
      Array.iteri
        (fun y q2 ->
          if x < y && !bad = None && Loc.Set.is_empty (Loc.Set.inter q1 q2) then
            bad := Some (q1, q2))
        quorums)
    quorums;
  match !bad with
  | None -> Verdict.Sat
  | Some (q1, q2) ->
    Verdict.Violated
      (Fmt.str "disjoint quorums %a and %a" Loc.pp_set q1 Loc.pp_set q2)

let completeness ~n t =
  match Spec_util.last_outputs_of_live ~n t with
  | Error u -> u
  | Ok (last, live) ->
    Loc.Map.fold
      (fun i q acc ->
        if Loc.Set.subset q live then acc
        else
          Verdict.(
            acc
            &&& Undecided
                  (Fmt.str "last quorum at %a contains faulty %a" Loc.pp i
                     Loc.pp_set (Loc.Set.diff q live))))
      last Verdict.Sat

let check ~n t =
  Spec_util.with_validity ~n t Verdict.(intersection t &&& completeness ~n t)

let spec =
  { Afd.name = "Sigma"; pp_out = Loc.pp_set; equal_out = Loc.Set.equal; check }
