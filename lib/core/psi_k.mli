(** The Ψk family (Mostefaoui-Rajsbaum-Raynal-Travers), set-agreement
    oriented.

    Interpretation implemented here (documented since the original
    definition is stated in the query-based real-time model): each
    output is a set of exactly [k] locations, and eventually all live
    locations permanently output one common set [K] with
    [K ∩ live ≠ ∅].  Under limit-extension semantics: all live
    locations' last outputs are equal, of size [k], and intersect the
    live set. *)

open Afd_ioa

type out = Loc.Set.t

val spec : k:int -> out Afd.spec
