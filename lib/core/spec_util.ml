open Afd_ioa

let pp_locset = Loc.pp_set

let last_outputs_of_live ~n t =
  let live = Fd_event.live ~n t in
  let missing = ref None in
  let map =
    Loc.Set.fold
      (fun i acc ->
        match Fd_event.last_output_at i t with
        | Some o -> Loc.Map.add i o acc
        | None ->
          if !missing = None then missing := Some i;
          acc)
      live Loc.Map.empty
  in
  match !missing with
  | Some i ->
    Error
      (Verdict.Undecided
         (Printf.sprintf "live location %s has no output yet" (Loc.to_string i)))
  | None -> Ok (map, live)

let for_all_outputs t pred =
  let crashed = ref Loc.Set.empty in
  List.fold_left
    (fun acc e ->
      match e with
      | Fd_event.Crash i ->
        crashed := Loc.Set.add i !crashed;
        acc
      | Fd_event.Output (i, o) -> (
        match pred ~crashed:!crashed i o with
        | Ok () -> acc
        | Error reason -> Verdict.(acc &&& Violated reason)))
    Verdict.Sat t

let with_validity ~n t v = Verdict.(Trace_ops.validity ~n t &&& v)
