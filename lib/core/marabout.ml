open Afd_ioa

type out = Loc.Set.t

let check ~n t =
  let faulty = Fd_event.faulty t in
  let exact =
    Spec_util.for_all_outputs t (fun ~crashed:_ i s ->
        if Loc.Set.equal s faulty then Ok ()
        else
          Error
            (Fmt.str "output %a at %a differs from final faulty set %a" Loc.pp_set s
               Loc.pp i Loc.pp_set faulty))
  in
  Spec_util.with_validity ~n t exact

let spec =
  { Afd.name = "Marabout"; pp_out = Loc.pp_set; equal_out = Loc.Set.equal; check }

type refutation = {
  pattern_a : Loc.Set.t;
  pattern_b : Loc.Set.t;
  explanation : string;
}

let refutation ~n =
  if n < 1 then invalid_arg "Marabout.refutation: n must be >= 1";
  { pattern_a = Loc.Set.empty;
    pattern_b = Loc.Set.singleton 0;
    explanation =
      "Under pattern A (no crashes) the first output must be {}; under \
       pattern B (p0 crashes after the first output) it must be {p0}. A \
       deterministic automaton has received no crash input before its first \
       output, so it emits the same set in both runs - contradiction.";
  }

let requires_prediction ~n ~first_output_after =
  (* The mandated first output is faulty(t), which depends on crash
     events occurring after position [first_output_after]; two schedules
     agreeing up to that position but diverging later exist iff some
     location can still crash. *)
  ignore first_output_after;
  n >= 1
