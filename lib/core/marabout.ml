open Afd_ioa
module P = Afd_prop.Prop

type out = Loc.Set.t

(* "Every output equals the final faulty set" cannot latch: an output
   that looks wrong now may be proven right by later crashes (that is
   precisely Marabout's prescience).  The fold keeps the distinct
   payloads seen so far with the location of their first occurrence
   (at most 2^n entries) and re-judges them against the current
   crashed-so-far set, which at the end of the trace is the final
   faulty set. *)
let exactness =
  P.folding
    ~perm:(fun pi -> List.map (fun (s, i) -> (Loc.Set.map pi s, pi i)))
    ~cmp:
      (List.compare (fun (s1, i1) (s2, i2) ->
           let c = Loc.Set.compare s1 s2 in
           if c <> 0 then c else Int.compare i1 i2))
    ~name:"exactness" ~init:[]
    ~step:(fun _st seen e ->
      match e with
      | Fd_event.Crash _ -> Ok seen
      | Fd_event.Output (i, s) ->
        if List.exists (fun (s', _) -> Loc.Set.equal s s') seen then Ok seen
        else Ok (seen @ [ (s, i) ]))
    ~judge:(fun st seen ->
      let faulty = st.P.crashed in
      List.fold_left
        (fun acc (s, i) ->
          if Loc.Set.equal s faulty then acc
          else
            P.j_and acc
              (P.J_violated
                 (Fmt.str "output %a at %a differs from final faulty set %a"
                    Loc.pp_set s Loc.pp i Loc.pp_set faulty)))
        P.J_sat seen)

let prop ~n:_ = P.conj [ P.validity (); exactness ]
let spec = Afd.of_prop ~perm_out:(fun pi -> Loc.Set.map pi) ~name:"Marabout" ~pp_out:Loc.pp_set ~equal_out:Loc.Set.equal prop

type refutation = {
  pattern_a : Loc.Set.t;
  pattern_b : Loc.Set.t;
  explanation : string;
}

let refutation ~n =
  if n < 1 then invalid_arg "Marabout.refutation: n must be >= 1";
  { pattern_a = Loc.Set.empty;
    pattern_b = Loc.Set.singleton 0;
    explanation =
      "Under pattern A (no crashes) the first output must be {}; under \
       pattern B (p0 crashes after the first output) it must be {p0}. A \
       deterministic automaton has received no crash input before its first \
       output, so it emits the same set in both runs - contradiction.";
  }

let requires_prediction ~n ~first_output_after =
  (* The mandated first output is faulty(t), which depends on crash
     events occurring after position [first_output_after]; two schedules
     agreeing up to that position but diverging later exist iff some
     location can still crash. *)
  ignore first_output_after;
  n >= 1
