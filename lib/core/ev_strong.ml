open Afd_ioa
module P = Afd_prop.Prop

type out = Loc.Set.t

let convergence =
  P.eventually_stable ~name:"convergence" (fun st ->
      match P.last_outputs st with
      | Error u -> P.J_undecided u
      | Ok (last, live) ->
        if Loc.Set.is_empty live then P.J_sat
        else
          let faulty = st.P.crashed in
          let completeness =
            Loc.Map.fold
              (fun i s acc ->
                if Loc.Set.subset faulty s then acc
                else
                  P.j_and acc
                    (P.J_undecided
                       (Fmt.str "last output at %a misses faulty %a" Loc.pp i
                          Loc.pp_set (Loc.Set.diff faulty s))))
              last P.J_sat
          in
          let trusted = Loc.Map.fold (fun _ s acc -> Loc.Set.diff acc s) last live in
          let accuracy =
            if Loc.Set.is_empty trusted then
              P.J_undecided "every live location is still suspected by someone"
            else P.J_sat
          in
          P.j_and completeness accuracy)

let prop ~n:_ = P.conj [ P.validity (); convergence ]
let spec = Afd.of_prop ~perm_out:(fun pi -> Loc.Set.map pi) ~name:"EvS" ~pp_out:Loc.pp_set ~equal_out:Loc.Set.equal prop
