open Afd_ioa

type out = Loc.Set.t

let check ~n t =
  let v =
    match Spec_util.last_outputs_of_live ~n t with
    | Error u -> u
    | Ok (last, live) ->
      if Loc.Set.is_empty live then Verdict.Sat
      else
        let faulty = Fd_event.faulty t in
        let completeness =
          Loc.Map.fold
            (fun i s acc ->
              if Loc.Set.subset faulty s then acc
              else
                Verdict.(
                  acc
                  &&& Undecided
                        (Fmt.str "last output at %a misses faulty %a" Loc.pp i
                           Loc.pp_set (Loc.Set.diff faulty s))))
            last Verdict.Sat
        in
        let trusted =
          Loc.Map.fold (fun _ s acc -> Loc.Set.diff acc s) last live
        in
        let accuracy =
          if Loc.Set.is_empty trusted then
            Verdict.Undecided "every live location is still suspected by someone"
          else Verdict.Sat
        in
        Verdict.(completeness &&& accuracy)
  in
  Spec_util.with_validity ~n t v

let spec =
  { Afd.name = "EvS"; pp_out = Loc.pp_set; equal_out = Loc.Set.equal; check }
