open Afd_ioa

type ('i, 'o) t = {
  name : string;
  source : 'i Afd.spec;
  target : 'o Afd.spec;
  f : Loc.t -> 'i -> 'o;
}

let check_on_trace r ~n t =
  match Afd.check r.source ~n t with
  | Verdict.Sat -> Afd.check r.target ~n (Xform.apply_to_trace ~f:r.f t)
  | Verdict.Violated _ | Verdict.Undecided _ -> Verdict.Sat

(* --- downward reductions --- *)

let p_to_evp =
  { name = "P->EvP";
    source = Perfect.spec;
    target = Ev_perfect.spec;
    f = (fun _ s -> s);
  }

let p_to_strong =
  { name = "P->S"; source = Perfect.spec; target = Strong.spec; f = (fun _ s -> s) }

let strong_to_ev_strong =
  { name = "S->EvS"; source = Strong.spec; target = Ev_strong.spec; f = (fun _ s -> s) }

let evp_to_ev_strong =
  { name = "EvP->EvS";
    source = Ev_perfect.spec;
    target = Ev_strong.spec;
    f = (fun _ s -> s);
  }

(* The elected leader is the smallest non-suspected location; when the
   detector transiently suspects everybody, fall back to self (the
   eventual clauses only constrain the stabilized suspicion set, which
   under P/◇P excludes the live observer itself). *)
let leader_from_suspects ~n i s =
  match Loc.min_not_in ~n (fun j -> Loc.Set.mem j s) with
  | Some l -> l
  | None -> i

let p_to_omega ~n =
  { name = "P->Omega";
    source = Perfect.spec;
    target = Omega.spec;
    f = leader_from_suspects ~n;
  }

let evp_to_omega ~n =
  { name = "EvP->Omega";
    source = Ev_perfect.spec;
    target = Omega.spec;
    f = leader_from_suspects ~n;
  }

let omega_to_anti_omega ~n =
  if n < 2 then invalid_arg "Reduction.omega_to_anti_omega: n must be >= 2";
  { name = "Omega->anti-Omega";
    source = Omega.spec;
    target = Anti_omega.spec;
    (* Name anyone but the current leader: once the leader stabilizes on
       a live l, l is never named again. *)
    f =
      (fun _i l ->
        match Loc.min_not_in ~n (fun j -> Loc.equal j l) with
        | Some m -> m
        | None -> l (* unreachable for n >= 2 *));
  }

let smallest_k_excluding ~n ~k excluded =
  let rec go i acc =
    if List.length acc >= k || i >= n then List.rev acc
    else if Loc.Set.mem i excluded then go (i + 1) acc
    else go (i + 1) (i :: acc)
  in
  go 0 []

let leader_set ~n ~k l =
  let rest = smallest_k_excluding ~n ~k:(k - 1) (Loc.Set.singleton l) in
  Loc.Set.of_list (l :: rest)

let omega_to_omega_k ~n ~k =
  if k < 1 || k > n then invalid_arg "Reduction.omega_to_omega_k: need 1 <= k <= n";
  { name = Printf.sprintf "Omega->Omega_%d" k;
    source = Omega.spec;
    target = Omega_k.spec ~k;
    f = (fun _i l -> leader_set ~n ~k l);
  }

let omega_to_psi_k ~n ~k =
  if k < 1 || k > n then invalid_arg "Reduction.omega_to_psi_k: need 1 <= k <= n";
  { name = Printf.sprintf "Omega->Psi_%d" k;
    source = Omega.spec;
    target = Psi_k.spec ~k;
    f = (fun _i l -> leader_set ~n ~k l);
  }

let p_to_sigma ~n =
  { name = "P->Sigma";
    source = Perfect.spec;
    target = Sigma.spec;
    f = (fun _i s -> Loc.Set.diff (Loc.set_of_universe ~n) s);
  }

let compose d1 d2 =
  { name = d1.name ^ ";" ^ d2.name;
    source = d1.source;
    target = d2.target;
    f = (fun i x -> d2.f i (d1.f i x));
  }

(* --- separations --- *)

type 'i separation = {
  sep_name : string;
  n : int;
  traces : (string * 'i Fd_event.t list) list;
  why : string;
}

let interleave_rounds ~rounds per_round = List.concat_map per_round (List.init rounds Fun.id)

let evp_not_to_p ~len =
  let s1 = Loc.Set.singleton 1 in
  let noisy_then_clean =
    (* p0 falsely suspects p1 for [len] outputs, then recovers; p1 is
       live throughout. *)
    interleave_rounds ~rounds:len (fun _ ->
        [ Fd_event.Output (0, s1); Fd_event.Output (1, Loc.Set.empty) ])
    @ [ Fd_event.Output (0, Loc.Set.empty); Fd_event.Output (1, Loc.Set.empty) ]
  in
  let crash_for_real =
    (* Same p0 view for the first [len] outputs; p1 then crashes. *)
    interleave_rounds ~rounds:len (fun _ ->
        [ Fd_event.Output (0, s1); Fd_event.Output (1, Loc.Set.empty) ])
    @ [ Fd_event.Crash 1; Fd_event.Output (0, s1) ]
  in
  { sep_name = "EvP cannot implement P";
    n = 2;
    traces = [ ("p1-live", noisy_then_clean); ("p1-crashes", crash_for_real) ];
    why =
      "p0's view starts with the same string of suspicions in both; echoing \
       them violates P's accuracy when p1 is live, staying silent forever \
       violates P's completeness when p1 crashes.";
  }

let omega_not_to_evp ~len =
  let all_live =
    interleave_rounds ~rounds:len (fun _ ->
        [ Fd_event.Output (0, 0); Fd_event.Output (1, 0); Fd_event.Output (2, 0) ])
  in
  let others_crash =
    interleave_rounds ~rounds:len (fun _ ->
        [ Fd_event.Output (0, 0); Fd_event.Output (1, 0); Fd_event.Output (2, 0) ])
    @ [ Fd_event.Crash 1; Fd_event.Crash 2; Fd_event.Output (0, 0) ]
  in
  { sep_name = "Omega cannot implement EvP";
    n = 3;
    traces = [ ("all-live", all_live); ("p1,p2-crash", others_crash) ];
    why =
      "p0 sees the constant leader 0 in both worlds, but EvP requires its \
       stable output to be {} in one and {p1,p2} in the other.";
  }

let anti_omega_not_to_omega ~len =
  (* Every trace names p0 forever (admissible: in each pattern some live
     location other than p0 is never named).  Each live location's view
     is therefore the same constant stream of "p0" in every pattern
     where it is live, so a deterministic local candidate elects one
     fixed leader c_i per location.  Omega then demands, per pattern, a
     common live leader among the live locations' choices; the four live
     sets {0,1,2}, {0,2}, {0,1}, {1,2} admit no consistent choice. *)
  let mk ~faulty =
    let live = List.filter (fun i -> not (List.mem i faulty)) [ 0; 1; 2 ] in
    List.map (fun i -> Fd_event.Crash i) faulty
    @ interleave_rounds ~rounds:len (fun _ ->
          List.map (fun i -> Fd_event.Output (i, 0)) live)
  in
  { sep_name = "anti-Omega cannot implement Omega";
    n = 3;
    traces =
      [ ("all-live", mk ~faulty:[]);
        ("p1-faulty", mk ~faulty:[ 1 ]);
        ("p2-faulty", mk ~faulty:[ 2 ]);
        ("p0-faulty", mk ~faulty:[ 0 ]);
      ];
    why =
      "each live location sees the constant stream naming p0 in every pattern \
       where it is live, so its elected leader is the same constant across \
       patterns; no assignment of constants satisfies Omega under all four \
       live sets.";
  }

let graft ~candidate t =
  let views = Hashtbl.create 8 in
  List.filter_map
    (fun e ->
      match e with
      | Fd_event.Crash i -> Some (Fd_event.Crash i)
      | Fd_event.Output (i, o) -> (
        let v = try Hashtbl.find views i with Not_found -> [] in
        let v' = v @ [ o ] in
        Hashtbl.replace views i v';
        match candidate i v' with
        | Some out -> Some (Fd_event.Output (i, out))
        | None -> None))
    t

let refute ~candidate ~target sep =
  let results =
    List.map
      (fun (label, t) ->
        let grafted = graft ~candidate t in
        (label, Afd.check target ~n:sep.n grafted))
      sep.traces
  in
  let failures =
    List.filter_map
      (fun (label, v) ->
        match v with
        | Verdict.Sat -> None
        | v -> Some (Fmt.str "%s: %a" label Verdict.pp v))
      results
  in
  match failures with
  | [] ->
    Error
      (Printf.sprintf "%s: candidate passed every witness trace" sep.sep_name)
  | fs -> Ok (String.concat "; " fs)
