(** Three-valued verdicts for trace-property monitors — an alias of
    {!Afd_prop.Verdict}, where the type moved when specs became
    compiled temporal formulas.  See that module for semantics,
    including the reason-accumulating conjunction. *)

type t = Afd_prop.Verdict.t =
  | Sat
  | Violated of string  (** with a human-readable reason *)
  | Undecided of string
      (** the finite prefix neither satisfies nor violates;
          reason explains what is still missing *)

val is_sat : t -> bool
val is_violated : t -> bool
val pp : Format.formatter -> t -> unit

val all : t list -> t
(** Conjunction via {!( &&& )}; [all [] = Sat]. *)

val of_bool : error:string -> bool -> t

val ( &&& ) : t -> t -> t
(** Binary conjunction: [Violated] dominates, then [Undecided], else
    [Sat]; same-class reasons are accumulated (joined with ["; "]). *)

val tag : string -> t -> t
(** Prefix a non-[Sat] reason with ["name: "]. *)
