open Afd_ioa

let crash_automaton ~n ~crashable =
  let kind = function
    | Fd_event.Crash _ -> Some Automaton.Output
    | Fd_event.Output _ -> None
  in
  let step pending = function
    | Fd_event.Crash i when Loc.Set.mem i pending -> Some (Loc.Set.remove i pending)
    | Fd_event.Crash _ | Fd_event.Output _ -> None
  in
  let task i =
    { Automaton.task_name = Printf.sprintf "crash_%s" (Loc.to_string i);
      fair = false;
      enabled =
        (fun pending -> if Loc.Set.mem i pending then Some (Fd_event.Crash i) else None);
    }
  in
  { Automaton.name = "crash";
    kind;
    start = Loc.Set.inter crashable (Loc.set_of_universe ~n);
    step;
    tasks = List.map task (Loc.universe ~n);
  }

(* Shared shape of Algorithms 1 and 2: state is the crash set; each
   non-crashed location continually outputs [f crashset i].
   [equal_out] must be the payload's semantic equality: polymorphic
   compare is AVL-shape-sensitive on sets, so a structural guard would
   make acceptance depend on how the probed payload was built. *)
let truthful ~name ~n ~equal_out ~output =
  let kind = function
    | Fd_event.Crash _ -> Some Automaton.Input
    | Fd_event.Output _ -> Some Automaton.Output
  in
  let step crashset = function
    | Fd_event.Crash i -> Some (Loc.Set.add i crashset)
    | Fd_event.Output (i, o) ->
      (* Enabled iff this is the action our task would produce. *)
      if
        (not (Loc.Set.mem i crashset))
        && Option.equal equal_out (output crashset i) (Some o)
      then Some crashset
      else None
  in
  let task i =
    { Automaton.task_name = Printf.sprintf "fd_%s" (Loc.to_string i);
      fair = true;
      enabled =
        (fun crashset ->
          if Loc.Set.mem i crashset then None
          else Option.map (fun o -> Fd_event.Output (i, o)) (output crashset i));
    }
  in
  { Automaton.name;
    kind;
    start = Loc.Set.empty;
    step;
    tasks = List.map task (Loc.universe ~n);
  }

let fd_omega ~n =
  truthful ~name:"FD-Omega" ~n ~equal_out:Loc.equal ~output:(fun crashset _i ->
      Loc.min_not_in ~n (fun j -> Loc.Set.mem j crashset))

let fd_perfect ~n =
  truthful ~name:"FD-P" ~n ~equal_out:Loc.Set.equal ~output:(fun crashset _i ->
      Some crashset)

let fd_sigma ~n =
  truthful ~name:"FD-Sigma" ~n ~equal_out:Loc.Set.equal ~output:(fun crashset _i ->
      Some (Loc.Set.diff (Loc.set_of_universe ~n) crashset))

(* Spare the smallest live location by naming the smallest other one.
   Naming a crashed location is fine — anti-Omega has no accuracy
   clause — and naming anyone {e live} would be wrong once it is the
   only live one left (the old max-live choice failed exactly there:
   with a single live location it named it forever, so no live
   location was ever spared; the fair-cycle pass refutes that corner). *)
let fd_anti_omega ~n =
  truthful ~name:"FD-antiOmega" ~n ~equal_out:Loc.equal ~output:(fun crashset _i ->
      match Loc.min_not_in ~n (fun j -> Loc.Set.mem j crashset) with
      | None -> None
      | Some spared -> Loc.min_not_in ~n (fun j -> Loc.equal j spared))

(* The k smallest live locations, padded with the smallest crashed ones
   when fewer than k remain live: always a set of exactly k IDs that
   contains min(live) whenever anyone is live. *)
let k_smallest_preferring_live ~n ~k crashset =
  let live, crashed = List.partition (fun j -> not (Loc.Set.mem j crashset)) (Loc.universe ~n) in
  let rec take acc m = function
    | _ when m = 0 -> List.rev acc
    | [] -> List.rev acc
    | x :: rest -> take (x :: acc) (m - 1) rest
  in
  Loc.Set.of_list (take [] k (live @ crashed))

let fd_omega_k ~n ~k =
  if k < 1 || k > n then invalid_arg "Afd_automata.fd_omega_k: need 1 <= k <= n";
  truthful ~name:(Printf.sprintf "FD-Omega%d" k) ~n ~equal_out:Loc.Set.equal
    ~output:(fun crashset _i -> Some (k_smallest_preferring_live ~n ~k crashset))

let fd_psi_k ~n ~k =
  if k < 1 || k > n then invalid_arg "Afd_automata.fd_psi_k: need 1 <= k <= n";
  truthful ~name:(Printf.sprintf "FD-Psi%d" k) ~n ~equal_out:Loc.Set.equal
    ~output:(fun crashset _i -> Some (k_smallest_preferring_live ~n ~k crashset))

(* Liveness-broken detectors for the model checker's lasso search.
   Both are safe on every finite prefix (no sampled schedule can latch
   a violation), so they cannot live in the seeded CHECK matrix — only
   a fair-cycle analysis refutes them. *)

(* Alternates between electing the smallest and the largest live
   location on every output anywhere: each individual output is a live
   leader (safety holds), but with >= 2 live locations the last-output
   assignment never converges, so Omega's [stable-leader] is violated
   along a fair cycle while [validity.liveness] still holds (every
   live location outputs forever). *)
let fd_flip_flop ~n =
  let leader (crashset, toggle) =
    let live j = not (Loc.Set.mem j crashset) in
    if toggle then Loc.Set.max_elt_opt (Loc.Set.filter live (Loc.set_of_universe ~n))
    else Loc.min_not_in ~n (fun j -> Loc.Set.mem j crashset)
  in
  let kind = function
    | Fd_event.Crash _ -> Some Automaton.Input
    | Fd_event.Output _ -> Some Automaton.Output
  in
  let step ((crashset, toggle) as st) = function
    | Fd_event.Crash i -> Some (Loc.Set.add i crashset, toggle)
    | Fd_event.Output (i, o) ->
      if (not (Loc.Set.mem i crashset)) && Option.equal Loc.equal (leader st) (Some o)
      then
        Some (crashset, not toggle)
      else None
  in
  let task i =
    { Automaton.task_name = Printf.sprintf "fd_%s" (Loc.to_string i);
      fair = true;
      enabled =
        (fun ((crashset, _) as st) ->
          if Loc.Set.mem i crashset then None
          else Option.map (fun o -> Fd_event.Output (i, o)) (leader st));
    }
  in
  { Automaton.name = "FD-FlipFlop";
    kind;
    start = (Loc.Set.empty, false);
    step;
    tasks = List.map task (Loc.universe ~n);
  }

(* Only location 0 ever outputs (the full crash set, so each output is
   accurate); every other location stays silent forever.  Against P
   this violates no safety clause on any prefix, but the fair cycle in
   which only [fd_0] fires (the other fd tasks are disabled, hence
   weak fairness is vacuous) keeps [validity.liveness] pending
   forever. *)
let fd_silent ~n =
  truthful ~name:"FD-Silent" ~n ~equal_out:Loc.Set.equal ~output:(fun crashset i ->
      if i = 0 then Some crashset else None)

type 'o noise = 'o list Loc.Map.t

let noise_of_list l =
  List.fold_right
    (fun (i, o) acc ->
      Loc.Map.update i (function None -> Some [ o ] | Some os -> Some (o :: os)) acc)
    l Loc.Map.empty

(* Noisy variant: state carries per-location noise queues, drained
   before the truthful output.  Same [equal_out] caveat as [truthful]. *)
let noisy ~name ~n ~equal_out ~noise ~output =
  let kind = function
    | Fd_event.Crash _ -> Some Automaton.Input
    | Fd_event.Output _ -> Some Automaton.Output
  in
  let next (crashset, queues) i =
    if Loc.Set.mem i crashset then None
    else
      match Loc.Map.find_opt i queues with
      | Some (o :: _) -> Some o
      | Some [] | None -> output crashset i
  in
  let consume queues i =
    Loc.Map.update i
      (function None | Some [] -> None | Some (_ :: rest) -> Some rest)
      queues
  in
  let step (crashset, queues) = function
    | Fd_event.Crash i -> Some (Loc.Set.add i crashset, queues)
    | Fd_event.Output (i, o) ->
      if Option.equal equal_out (next (crashset, queues) i) (Some o) then
        Some (crashset, consume queues i)
      else None
  in
  let task i =
    { Automaton.task_name = Printf.sprintf "fd_%s" (Loc.to_string i);
      fair = true;
      enabled =
        (fun st -> Option.map (fun o -> Fd_event.Output (i, o)) (next st i));
    }
  in
  { Automaton.name;
    kind;
    start = (Loc.Set.empty, noise);
    step;
    tasks = List.map task (Loc.universe ~n);
  }

let fd_omega_noisy ~n ~noise =
  noisy ~name:"FD-Omega-noisy" ~n ~equal_out:Loc.equal ~noise
    ~output:(fun crashset _i -> Loc.min_not_in ~n (fun j -> Loc.Set.mem j crashset))

let fd_ev_perfect_noisy ~n ~noise =
  noisy ~name:"FD-EvP-noisy" ~n ~equal_out:Loc.Set.equal ~noise
    ~output:(fun crashset _i -> Some crashset)

let run_system ?(record_fired = true) ?observer ~retention ~detector ~n ~seed
    ~crash_at ~steps () =
  let crashable =
    List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at
  in
  let comp =
    Composition.make ~name:"fd-system"
      [ Component.C detector; Component.C (crash_automaton ~n ~crashable) ]
  in
  let forced =
    List.map
      (fun (k, i) ->
        { Scheduler.at_step = k;
          task_pattern = "crash/crash_" ^ Loc.to_string i;
        })
      crash_at
  in
  let cfg =
    { Scheduler.policy = Scheduler.Random seed;
      max_steps = steps;
      stop_when_quiescent = true;
      forced;
    }
  in
  Scheduler.run ~retention ?observer ~record_fired comp cfg

let generate_trace_with ~retention ~detector ~n ~seed ~crash_at ~steps =
  (* Traces come from the fired sequence, which every retention policy
     keeps in full: no per-step state snapshots are retained. *)
  let outcome = run_system ~retention ~detector ~n ~seed ~crash_at ~steps () in
  List.map snd outcome.Scheduler.fired

let run_monitored ?(record_fired = false) ~retention ~observe ~detector ~n ~seed
    ~crash_at ~steps () =
  run_system ~record_fired
    ~observer:(fun ~step:_ _tid act ~touched:_ _st -> observe act)
    ~retention ~detector ~n ~seed ~crash_at ~steps ()

let generate_trace ~detector ~n ~seed ~crash_at ~steps =
  generate_trace_with ~retention:Scheduler.Trace_only ~detector ~n ~seed ~crash_at
    ~steps
