open Afd_ioa
module P = Afd_prop.Prop

type out = Loc.Set.t

(* Under limit-extension semantics the two eventual clauses combine to:
   the last output of every live location equals exactly the faulty
   set (S disjoint from live and S containing faulty force S = faulty). *)
let convergence =
  P.eventually_stable ~name:"convergence" (fun st ->
      match P.last_outputs st with
      | Error u -> P.J_undecided u
      | Ok (last, live) ->
        let faulty = st.P.crashed in
        Loc.Map.fold
          (fun i s acc ->
            let trust_violation = Loc.Set.inter s live in
            if not (Loc.Set.is_empty trust_violation) then
              P.j_and acc
                (P.J_undecided
                   (Fmt.str "last output at %a still suspects live %a" Loc.pp i
                      Loc.pp_set trust_violation))
            else if not (Loc.Set.subset faulty s) then
              P.j_and acc
                (P.J_undecided
                   (Fmt.str "last output at %a misses faulty %a" Loc.pp i
                      Loc.pp_set (Loc.Set.diff faulty s)))
            else acc)
          last P.J_sat)

let prop ~n:_ = P.conj [ P.validity (); convergence ]
let spec = Afd.of_prop ~perm_out:(fun pi -> Loc.Set.map pi) ~name:"EvP" ~pp_out:Loc.pp_set ~equal_out:Loc.Set.equal prop
