open Afd_ioa

type out = Loc.Set.t

(* Under limit-extension semantics the two eventual clauses combine to:
   the last output of every live location equals exactly the faulty
   set (S disjoint from live and S containing faulty force S = faulty). *)
let check ~n t =
  let v =
    match Spec_util.last_outputs_of_live ~n t with
    | Error u -> u
    | Ok (last, live) ->
      let faulty = Fd_event.faulty t in
      Loc.Map.fold
        (fun i s acc ->
          let trust_violation = Loc.Set.inter s live in
          if not (Loc.Set.is_empty trust_violation) then
            Verdict.(
              acc
              &&& Undecided
                    (Fmt.str "last output at %a still suspects live %a" Loc.pp i
                       Loc.pp_set trust_violation))
          else if not (Loc.Set.subset faulty s) then
            Verdict.(
              acc
              &&& Undecided
                    (Fmt.str "last output at %a misses faulty %a" Loc.pp i
                       Loc.pp_set (Loc.Set.diff faulty s)))
          else acc)
        last Verdict.Sat
  in
  Spec_util.with_validity ~n t v

let spec =
  { Afd.name = "EvP"; pp_out = Loc.pp_set; equal_out = Loc.Set.equal; check }
