(** Automata implementing AFDs (Algorithms 1 and 2 of the paper), the
    crash automaton, and a trace generator.

    These automata act on the alphabet ['o Fd_event.t]: crash events
    are their inputs, detector outputs their outputs.  Composed with
    the crash automaton they form closed systems whose fair traces are
    (per the paper's claims, verified by our tests) contained in the
    corresponding AFD's trace set.

    The [fd_perfect] automaton adds the guard [i ∉ crashset] to the
    output precondition of the paper's Algorithm 2.  As printed, the
    algorithm would keep producing [FD-P(S)_i] events after [crash_i],
    violating the validity property its own Section 3.2 requires; the
    guard matches Algorithm 1's treatment and is evidently the intent
    (see DESIGN.md, "errata"). *)

open Afd_ioa

val crash_automaton : n:int -> crashable:Loc.Set.t -> (Loc.Set.t, 'o Fd_event.t) Automaton.t
(** The crash automaton (Section 4.4): one {e unfair} task per location
    of [crashable], each emitting [Crash i] once.  Which crashes
    actually occur, and when, is decided by the scheduler's forced
    firings — realizing one fault pattern per run. *)

val fd_omega : n:int -> (Loc.Set.t, Loc.t Fd_event.t) Automaton.t
(** Algorithm 1: at every non-crashed location, continually output
    [min (Pi \ crashset)].  State: the crash set. *)

val fd_perfect : n:int -> (Loc.Set.t, Loc.Set.t Fd_event.t) Automaton.t
(** Algorithm 2 (with the erratum guard): at every non-crashed
    location, continually output the current crash set. *)

(** {2 Truthful automata for the rest of the catalog}

    Each follows the Algorithm 1/2 shape — state is the crash set,
    every live location continually outputs a function of it — and its
    fair traces lie in the corresponding AFD's trace set (verified by
    tests).  Where noted, correctness needs a bound on the number of
    crashes in the fault pattern. *)

val fd_sigma : n:int -> (Loc.Set.t, Loc.Set.t Fd_event.t) Automaton.t
(** Outputs the quorum [Pi \ crashset].  In T_Σ whenever at least one
    location stays live (quorums always contain every live location). *)

val fd_anti_omega : n:int -> (Loc.Set.t, Loc.t Fd_event.t) Automaton.t
(** Spares the smallest live location by naming the smallest {e other}
    location (which may be crashed — anti-Ω has no accuracy clause).
    In T_anti-Ω whenever at least one location stays live; the old
    max-live choice failed with a single live location (it named it
    forever), a corner the fair-cycle model checker refutes. *)

val fd_omega_k : n:int -> k:int -> (Loc.Set.t, Loc.Set.t Fd_event.t) Automaton.t
(** Outputs the [k] smallest locations of [Pi \ crashset], padded with
    the smallest crashed ones if fewer remain.  In T_Ωk whenever at
    least one location stays live. *)

val fd_psi_k : n:int -> k:int -> (Loc.Set.t, Loc.Set.t Fd_event.t) Automaton.t
(** Same output as [fd_omega_k]; since all locations compute it from
    the same crash set, the outputs converge to one common set — in
    T_Ψk under the same condition. *)

(** {2 Liveness-broken detectors}

    Deliberately broken {e only} in the limit: every finite prefix is
    safe, so no seeded schedule in the CHECK matrix can catch them —
    they exist to exercise {!Afd_analysis.Mc}'s fair-cycle (lasso)
    refutations. *)

val fd_flip_flop : n:int -> (Loc.Set.t * bool, Loc.t Fd_event.t) Automaton.t
(** Alternates between electing the smallest and the largest live
    location on every output.  Each output names a live leader, but
    with two or more live locations the assignment never converges:
    Ω's [stable-leader] is violated along a fair cycle while
    [validity.liveness] still holds. *)

val fd_silent : n:int -> (Loc.Set.t, Loc.Set.t Fd_event.t) Automaton.t
(** Only location 0 ever outputs (the accurate crash set); all other
    locations stay silent forever.  Safe on every prefix against P,
    but the fair cycle firing [fd_0] alone (the silent locations' fd
    tasks are disabled, so weak fairness is vacuous) keeps
    [validity.liveness] — and P's [completeness] — pending forever. *)

type 'o noise = 'o list Loc.Map.t
(** Finite scripted "wrong" outputs per location, consumed before the
    automaton converges to its truthful output.  Produces richer traces
    for the closure property tests while still satisfying the eventual
    clauses of ◇P, Ω, etc. *)

val noise_of_list : (Loc.t * 'o) list -> 'o noise

val fd_omega_noisy :
  n:int -> noise:Loc.t noise -> (Loc.Set.t * Loc.t noise, Loc.t Fd_event.t) Automaton.t
(** Like [fd_omega] but each location first emits its scripted noise
    leaders; still satisfies T_Ω (noise is finite). *)

val fd_ev_perfect_noisy :
  n:int ->
  noise:Loc.Set.t noise ->
  (Loc.Set.t * Loc.Set.t noise, Loc.Set.t Fd_event.t) Automaton.t
(** A ◇P implementation exhibiting transient false suspicions: each
    location first emits its scripted noise sets, then converges to the
    exact crash set.  Satisfies T_◇P but generally not T_P. *)

val generate_trace :
  detector:('s, 'o Fd_event.t) Automaton.t ->
  n:int ->
  seed:int ->
  crash_at:(int * Loc.t) list ->
  steps:int ->
  'o Fd_event.t list
(** Compose the detector with the crash automaton, run a fair random
    schedule of [steps] steps with the given fault pattern (location
    [i] is crashed at global step [k] for each [(k, i)]), and return
    the resulting FD trace.  Retains no per-step states
    ({!Scheduler.Trace_only}): the trace is read off the fired
    sequence. *)

val generate_trace_with :
  retention:Scheduler.retention ->
  detector:('s, 'o Fd_event.t) Automaton.t ->
  n:int ->
  seed:int ->
  crash_at:(int * Loc.t) list ->
  steps:int ->
  'o Fd_event.t list
(** {!generate_trace} under an explicit retention policy.  The trace is
    retention-invariant by construction; the knob exists so the
    retention-equivalence regression suite can drive the whole
    experiment matrix under each policy. *)

val run_monitored :
  ?record_fired:bool ->
  retention:Scheduler.retention ->
  observe:('o Fd_event.t -> unit) ->
  detector:('s, 'o Fd_event.t) Automaton.t ->
  n:int ->
  seed:int ->
  crash_at:(int * Loc.t) list ->
  steps:int ->
  unit ->
  'o Fd_event.t Scheduler.outcome
(** The same composed system and schedule as {!generate_trace_with},
    but streaming: [observe] is called with each FD event as it fires
    (e.g. [Afd_prop.Monitor.observe m]), in exactly the order
    {!generate_trace_with} would list it — online monitor verdicts
    therefore coincide with offline replay of the generated trace.
    [record_fired] defaults to [false], so with a windowed retention
    the run keeps O(window) live memory regardless of [steps]. *)
