open Afd_ioa

let validity ~n ?(live_min = 1) t =
  let crashed = ref Loc.Set.empty in
  let safety =
    List.fold_left
      (fun acc e ->
        match e with
        | Fd_event.Crash i ->
          crashed := Loc.Set.add i !crashed;
          acc
        | Fd_event.Output (i, _) ->
          if Loc.Set.mem i !crashed then
            Verdict.(acc &&& Violated (Printf.sprintf "output at %s after its crash" (Loc.to_string i)))
          else acc)
      Verdict.Sat t
  in
  let liveness =
    let live = Fd_event.live ~n t in
    Loc.Set.fold
      (fun i acc ->
        let c = List.length (Fd_event.outputs_at i t) in
        if c >= live_min then acc
        else
          Verdict.(
            acc
            &&& Undecided
                  (Printf.sprintf "live location %s has %d < %d outputs"
                     (Loc.to_string i) c live_min)))
      live Verdict.Sat
  in
  Verdict.(safety &&& liveness)

let is_sampling ~equal_out ~of_:t t' =
  let equal = Fd_event.equal equal_out in
  if not (Trace.is_subsequence ~equal t' t) then false
  else
    let faulty = Fd_event.faulty t in
    let live_ok i =
      (* live in t: all outputs kept *)
      List.length (Fd_event.outputs_at i t') = List.length (Fd_event.outputs_at i t)
    in
    let faulty_ok i =
      (* first crash kept, outputs form a prefix *)
      let outs = Fd_event.outputs_at i t and outs' = Fd_event.outputs_at i t' in
      Fd_event.first_crash_index i t' <> None
      && Trace.is_prefix ~equal:equal_out outs' outs
    in
    let locs_in_t =
      List.fold_left (fun acc e -> Loc.Set.add (Fd_event.loc e) acc) Loc.Set.empty t
    in
    Loc.Set.for_all
      (fun i -> if Loc.Set.mem i faulty then faulty_ok i else live_ok i)
      locs_in_t

let gen_sampling rng t =
  let faulty = Fd_event.faulty t in
  (* For each faulty location pick how many of its outputs to keep. *)
  let keep_outputs =
    Loc.Set.fold
      (fun i acc ->
        let total = List.length (Fd_event.outputs_at i t) in
        Loc.Map.add i (Random.State.int rng (total + 1)) acc)
      faulty Loc.Map.empty
  in
  let seen_out = Hashtbl.create 8 in
  let seen_crash = Hashtbl.create 8 in
  List.filter
    (fun e ->
      match e with
      | Fd_event.Crash i ->
        let first = not (Hashtbl.mem seen_crash i) in
        Hashtbl.replace seen_crash i ();
        first || Random.State.bool rng
      | Fd_event.Output (i, _) ->
        if Loc.Set.mem i faulty then begin
          let k = try Hashtbl.find seen_out i with Not_found -> 0 in
          Hashtbl.replace seen_out i (k + 1);
          k < Loc.Map.find i keep_outputs
        end
        else true)
    t

(* --- constrained reordering --- *)

(* Index the events of a trace as (location, occurrence-within-location)
   pairs; a constrained reordering preserves every per-location
   subsequence exactly, so this keying lets us compare positions of
   "the same event occurrence" across the two traces even when payloads
   repeat. *)
let keyed t =
  let counters = Hashtbl.create 8 in
  List.map
    (fun e ->
      let i = Fd_event.loc e in
      let k = try Hashtbl.find counters i with Not_found -> 0 in
      Hashtbl.replace counters i (k + 1);
      ((i, k), e))
    t

let is_constrained_reordering ~equal_out ~of_:t t' =
  let equal = Fd_event.equal equal_out in
  List.length t = List.length t'
  && (* per-location projections equal *)
  (let locs =
     List.fold_left (fun acc e -> Loc.Set.add (Fd_event.loc e) acc) Loc.Set.empty t
   in
   Loc.Set.for_all
     (fun i ->
       let at l = List.filter (fun e -> Loc.equal (Fd_event.loc e) i) l in
       List.equal equal (at t) (at t'))
     locs)
  &&
  (* crash-before constraint: if e is a crash preceding e' in t, the
     same must hold in t'. *)
  let kt = keyed t and kt' = keyed t' in
  let pos' = Hashtbl.create 16 in
  List.iteri (fun idx (key, _) -> Hashtbl.replace pos' key idx) kt';
  let arr = Array.of_list kt in
  let ok = ref true in
  Array.iteri
    (fun x (kx, ex) ->
      if Fd_event.is_crash ex then
        for y = x + 1 to Array.length arr - 1 do
          let ky, _ = arr.(y) in
          match (Hashtbl.find_opt pos' kx, Hashtbl.find_opt pos' ky) with
          | Some px, Some py -> if px >= py then ok := false
          | _ -> ok := false
        done)
    arr;
  !ok

let gen_reordering rng t =
  (* Build precedence edges x -> y (x must come before y):
     same location, or x is a crash event and x precedes y in t.
     Then sample a random linear extension. *)
  let arr = Array.of_list t in
  let m = Array.length arr in
  let must_precede x y =
    (* x < y positionally in t *)
    Loc.equal (Fd_event.loc arr.(x)) (Fd_event.loc arr.(y)) || Fd_event.is_crash arr.(x)
  in
  let indeg = Array.make m 0 in
  let succs = Array.make m [] in
  for x = 0 to m - 1 do
    for y = x + 1 to m - 1 do
      if must_precede x y then begin
        indeg.(y) <- indeg.(y) + 1;
        succs.(x) <- y :: succs.(x)
      end
    done
  done;
  let ready = ref (List.filter (fun x -> indeg.(x) = 0) (List.init m Fun.id)) in
  let out = ref [] in
  while !ready <> [] do
    let candidates = Array.of_list !ready in
    let pick = candidates.(Random.State.int rng (Array.length candidates)) in
    ready := List.filter (fun x -> x <> pick) !ready;
    out := arr.(pick) :: !out;
    List.iter
      (fun y ->
        indeg.(y) <- indeg.(y) - 1;
        if indeg.(y) = 0 then ready := y :: !ready)
      succs.(pick)
  done;
  List.rev !out

let count_reorderings_upto ~limit t =
  let arr = Array.of_list t in
  let m = Array.length arr in
  let must_precede x y =
    Loc.equal (Fd_event.loc arr.(x)) (Fd_event.loc arr.(y)) || Fd_event.is_crash arr.(x)
  in
  let count = ref 0 in
  let used = Array.make m false in
  let rec go placed =
    if !count >= limit then ()
    else if placed = m then incr count
    else
      for x = 0 to m - 1 do
        if (not used.(x)) && !count < limit then begin
          (* x is placeable iff every predecessor of x is already used *)
          let ok = ref true in
          for y = 0 to x - 1 do
            if (not used.(y)) && must_precede y x then ok := false
          done;
          if !ok then begin
            used.(x) <- true;
            go (placed + 1);
            used.(x) <- false
          end
        end
      done
  in
  go 0;
  !count
