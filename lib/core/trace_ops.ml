open Afd_ioa

let validity ~n ?(live_min = 1) t =
  Afd_prop.Monitor.replay ~n (Afd_prop.Prop.validity ~live_min ()) t

let is_sampling ~equal_out ~of_:t t' =
  let equal = Fd_event.equal equal_out in
  if not (Trace.is_subsequence ~equal t' t) then false
  else
    let faulty = Fd_event.faulty t in
    let live_ok i =
      (* live in t: all outputs kept *)
      List.length (Fd_event.outputs_at i t') = List.length (Fd_event.outputs_at i t)
    in
    let faulty_ok i =
      (* first crash kept, outputs form a prefix *)
      let outs = Fd_event.outputs_at i t and outs' = Fd_event.outputs_at i t' in
      Fd_event.first_crash_index i t' <> None
      && Trace.is_prefix ~equal:equal_out outs' outs
    in
    let locs_in_t =
      List.fold_left (fun acc e -> Loc.Set.add (Fd_event.loc e) acc) Loc.Set.empty t
    in
    Loc.Set.for_all
      (fun i -> if Loc.Set.mem i faulty then faulty_ok i else live_ok i)
      locs_in_t

let gen_sampling rng t =
  let faulty = Fd_event.faulty t in
  (* For each faulty location pick how many of its outputs to keep. *)
  let keep_outputs =
    Loc.Set.fold
      (fun i acc ->
        let total = List.length (Fd_event.outputs_at i t) in
        Loc.Map.add i (Random.State.int rng (total + 1)) acc)
      faulty Loc.Map.empty
  in
  let seen_out = Hashtbl.create 8 in
  let seen_crash = Hashtbl.create 8 in
  List.filter
    (fun e ->
      match e with
      | Fd_event.Crash i ->
        let first = not (Hashtbl.mem seen_crash i) in
        Hashtbl.replace seen_crash i ();
        first || Random.State.bool rng
      | Fd_event.Output (i, _) ->
        if Loc.Set.mem i faulty then begin
          let k = try Hashtbl.find seen_out i with Not_found -> 0 in
          Hashtbl.replace seen_out i (k + 1);
          k < Loc.Map.find i keep_outputs
        end
        else true)
    t

(* --- constrained reordering --- *)

(* Index the events of a trace as (location, occurrence-within-location)
   pairs; a constrained reordering preserves every per-location
   subsequence exactly, so this keying lets us compare positions of
   "the same event occurrence" across the two traces even when payloads
   repeat. *)
let keyed t =
  let counters = Hashtbl.create 8 in
  List.map
    (fun e ->
      let i = Fd_event.loc e in
      let k = try Hashtbl.find counters i with Not_found -> 0 in
      Hashtbl.replace counters i (k + 1);
      ((i, k), e))
    t

let is_constrained_reordering ~equal_out ~of_:t t' =
  let equal = Fd_event.equal equal_out in
  List.length t = List.length t'
  && (* per-location projections equal *)
  (let locs =
     List.fold_left (fun acc e -> Loc.Set.add (Fd_event.loc e) acc) Loc.Set.empty t
   in
   Loc.Set.for_all
     (fun i ->
       let at l = List.filter (fun e -> Loc.equal (Fd_event.loc e) i) l in
       List.equal equal (at t) (at t'))
     locs)
  &&
  (* crash-before constraint: if e is a crash preceding e' in t, the
     same must hold in t'. *)
  let kt = keyed t and kt' = keyed t' in
  let pos' = Hashtbl.create 16 in
  List.iteri (fun idx (key, _) -> Hashtbl.replace pos' key idx) kt';
  let arr = Array.of_list kt in
  let ok = ref true in
  Array.iteri
    (fun x (kx, ex) ->
      if Fd_event.is_crash ex then
        for y = x + 1 to Array.length arr - 1 do
          let ky, _ = arr.(y) in
          match (Hashtbl.find_opt pos' kx, Hashtbl.find_opt pos' ky) with
          | Some px, Some py -> if px >= py then ok := false
          | _ -> ok := false
        done)
    arr;
  !ok

let gen_reordering rng t =
  (* Precedence x -> y (x must come before y, for x before y in t):
     same location, or x is a crash event.  That graph is exactly the
     per-location occurrence chains plus a barrier before every crash,
     so an event is emittable iff it heads its location's queue and no
     unemitted crash lies before it.  Sampling a random linear
     extension therefore needs no explicit edges: O(m * #locations)
     total instead of the O(m^2) indegree construction of the naive
     sampler.  The candidate pool is kept in the naive sampler's exact
     list order (ascending at start; removal order-preserving; newly
     unblocked events prepended in ascending position), so the RNG
     draw sequence — and hence the sampled reordering — is
     bit-identical to the list-based implementation. *)
  let arr = Array.of_list t in
  let m = Array.length arr in
  let locs = Array.map Fd_event.loc arr in
  (* Small dense ids for the distinct locations, first-appearance
     order; traces have a handful of locations. *)
  let loc_id = Array.make (max 1 m) 0 in
  let distinct = ref [] in
  let nloc = ref 0 in
  for x = 0 to m - 1 do
    match List.find_opt (fun (l, _) -> Loc.equal l locs.(x)) !distinct with
    | Some (_, id) -> loc_id.(x) <- id
    | None ->
      loc_id.(x) <- !nloc;
      distinct := (locs.(x), !nloc) :: !distinct;
      incr nloc
  done;
  let nloc = !nloc in
  (* Per-location queues of event positions, ascending. *)
  let qlen = Array.make (max 1 nloc) 0 in
  Array.iter (fun l -> qlen.(l) <- qlen.(l) + 1) (Array.sub loc_id 0 m);
  let queues = Array.init (max 1 nloc) (fun l -> Array.make (max 1 qlen.(l)) 0) in
  let fill = Array.make (max 1 nloc) 0 in
  for x = 0 to m - 1 do
    let l = loc_id.(x) in
    queues.(l).(fill.(l)) <- x;
    fill.(l) <- fill.(l) + 1
  done;
  let head = Array.make (max 1 nloc) 0 in
  (* Crash positions, ascending; unemitted crashes are necessarily
     emitted in position order, so a single cursor tracks the
     barrier: every unemitted event after it is blocked. *)
  let crash = Array.map Fd_event.is_crash arr in
  let ncrash = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 crash in
  let crashes = Array.make (max 1 ncrash) 0 in
  let ci = ref 0 in
  for x = 0 to m - 1 do
    if crash.(x) then begin
      crashes.(!ci) <- x;
      incr ci
    end
  done;
  let crash_cursor = ref 0 in
  let barrier () = if !crash_cursor < ncrash then crashes.(!crash_cursor) else max_int in
  (* Candidate pool: at most one event (its queue head) per location. *)
  let ready = Array.make (max 1 nloc) 0 in
  let len = ref 0 in
  let b0 = barrier () in
  for l = 0 to nloc - 1 do
    if qlen.(l) > 0 && queues.(l).(0) <= b0 then begin
      ready.(!len) <- queues.(l).(0);
      incr len
    end
  done;
  (* Initial heads were collected by location id (first-appearance
     order), but the naive pool is ascending by position. *)
  let sorted = Array.sub ready 0 !len in
  Array.sort compare sorted;
  Array.blit sorted 0 ready 0 !len;
  let fresh = Array.make (max 1 nloc) 0 in
  let out = ref [] in
  while !len > 0 do
    let i = Random.State.int rng !len in
    let pick = ready.(i) in
    (* Remove by shifting left: order-preserving, like List.filter. *)
    Array.blit ready (i + 1) ready i (!len - i - 1);
    decr len;
    out := arr.(pick) :: !out;
    let lpick = loc_id.(pick) in
    let b_old = barrier () in
    head.(lpick) <- head.(lpick) + 1;
    if crash.(pick) then incr crash_cursor;
    let b_new = barrier () in
    (* Newly unblocked events: the picked location's next head, and —
       when [pick] was the barrier crash — every other head now at or
       before the new barrier.  Collected ascending and prepended,
       matching the naive sampler's cons order. *)
    let c = ref 0 in
    for l = 0 to nloc - 1 do
      if head.(l) < qlen.(l) then begin
        let h = queues.(l).(head.(l)) in
        let was_ready = l <> lpick && h <= b_old in
        if (not was_ready) && h <= b_new then begin
          fresh.(!c) <- h;
          incr c
        end
      end
    done;
    if !c > 0 then begin
      let add = Array.sub fresh 0 !c in
      Array.sort compare add;
      Array.blit ready 0 ready !c !len;
      Array.blit add 0 ready 0 !c;
      len := !len + !c
    end
  done;
  List.rev !out

let count_reorderings_upto ~limit t =
  let arr = Array.of_list t in
  let m = Array.length arr in
  let must_precede x y =
    Loc.equal (Fd_event.loc arr.(x)) (Fd_event.loc arr.(y)) || Fd_event.is_crash arr.(x)
  in
  let count = ref 0 in
  let used = Array.make m false in
  let rec go placed =
    if !count >= limit then ()
    else if placed = m then incr count
    else
      for x = 0 to m - 1 do
        if (not used.(x)) && !count < limit then begin
          (* x is placeable iff every predecessor of x is already used *)
          let ok = ref true in
          for y = 0 to x - 1 do
            if (not used.(y)) && must_precede y x then ok := false
          done;
          if !ok then begin
            used.(x) <- true;
            go (placed + 1);
            used.(x) <- false
          end
        end
      done
  in
  go 0;
  !count
