open Afd_ioa

type out = Loc.Set.t

let accuracy_after_k ~k t =
  let crashed = ref Loc.Set.empty in
  let verdict = ref Verdict.Sat in
  List.iteri
    (fun pos e ->
      match e with
      | Fd_event.Crash i -> crashed := Loc.Set.add i !crashed
      | Fd_event.Output (i, s) ->
        if pos >= k && not (Loc.Set.subset s !crashed) then
          verdict :=
            Verdict.(
              !verdict
              &&& Violated
                    (Fmt.str
                       "output %a at %a at position %d (after \"time\" %d) suspects \
                        not-yet-crashed %a"
                       Loc.pp_set s Loc.pp i pos k
                       Loc.pp_set (Loc.Set.diff s !crashed))))
    t;
  !verdict

let completeness ~n t =
  match Spec_util.last_outputs_of_live ~n t with
  | Error u -> u
  | Ok (last, _) ->
    let faulty = Fd_event.faulty t in
    Loc.Map.fold
      (fun i s acc ->
        if Loc.Set.subset faulty s then acc
        else
          Verdict.(
            acc
            &&& Undecided
                  (Fmt.str "last output at %a misses faulty %a" Loc.pp i
                     Loc.pp_set (Loc.Set.diff faulty s))))
      last Verdict.Sat

let check ~k ~n t =
  Spec_util.with_validity ~n t Verdict.(accuracy_after_k ~k t &&& completeness ~n t)

let spec ~k =
  { Afd.name = Printf.sprintf "D_%d" k;
    pp_out = Loc.pp_set;
    equal_out = Loc.Set.equal;
    check = (fun ~n t -> check ~k ~n t);
  }

(* Witness for non-closure under constrained reordering, n = 2, no
   crashes.  Original trace ([k-1] padding outputs at p0, then):

     pos k-1 : Output(p1, {p0})   -- inaccurate, but position < k
     pos k   : Output(p0, {})
     pos k+1 : Output(p1, {})

   Accepted: the only inaccurate output sits below position k, last
   outputs are {} at both (live) locations.  Moving the p0 output in
   front of the p1 output is a legal constrained reordering (different
   locations, no crash events), but it pushes the inaccurate output to
   position k, where accuracy is enforced — rejected. *)
let closure_counterexample ~k =
  if k < 1 then invalid_arg "D_k.closure_counterexample: k must be >= 1";
  let pad = List.init (k - 1) (fun _ -> Fd_event.Output (0, Loc.Set.empty)) in
  let original =
    pad
    @ [ Fd_event.Output (1, Loc.Set.singleton 0);
        Fd_event.Output (0, Loc.Set.empty);
        Fd_event.Output (1, Loc.Set.empty);
      ]
  in
  let reordered =
    pad
    @ [ Fd_event.Output (0, Loc.Set.empty);
        Fd_event.Output (1, Loc.Set.singleton 0);
        Fd_event.Output (1, Loc.Set.empty);
      ]
  in
  (original, reordered)
