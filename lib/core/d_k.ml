open Afd_ioa
module P = Afd_prop.Prop

type out = Loc.Set.t

(* Accuracy indexed by event position: the pre-state's [len] is the
   0-based index of the event being checked, our stand-in for the
   detector's "real time". *)
let accuracy_after_k ~k =
  P.always ~name:"accuracy-after-k" (fun st e ->
      match e with
      | Fd_event.Output (i, s)
        when st.P.len >= k && not (Loc.Set.subset s st.P.crashed) ->
        Error
          (Fmt.str
             "output %a at %a at position %d (after \"time\" %d) suspects \
              not-yet-crashed %a"
             Loc.pp_set s Loc.pp i st.P.len k
             Loc.pp_set (Loc.Set.diff s st.P.crashed))
      | Fd_event.Output _ | Fd_event.Crash _ -> Ok ())

let completeness =
  P.eventually_stable ~name:"completeness" (fun st ->
      match P.last_outputs st with
      | Error u -> P.J_undecided u
      | Ok (last, _live) ->
        let faulty = st.P.crashed in
        Loc.Map.fold
          (fun i s acc ->
            if Loc.Set.subset faulty s then acc
            else
              P.j_and acc
                (P.J_undecided
                   (Fmt.str "last output at %a misses faulty %a" Loc.pp i
                      Loc.pp_set (Loc.Set.diff faulty s))))
          last P.J_sat)

let prop ~k ~n:_ = P.conj [ P.validity (); accuracy_after_k ~k; completeness ]

let spec ~k =
  Afd.of_prop
    ~perm_out:(fun pi -> Loc.Set.map pi)
    ~name:(Printf.sprintf "D_%d" k)
    ~pp_out:Loc.pp_set ~equal_out:Loc.Set.equal (prop ~k)

(* Witness for non-closure under constrained reordering, n = 2, no
   crashes.  Original trace ([k-1] padding outputs at p0, then):

     pos k-1 : Output(p1, {p0})   -- inaccurate, but position < k
     pos k   : Output(p0, {})
     pos k+1 : Output(p1, {})

   Accepted: the only inaccurate output sits below position k, last
   outputs are {} at both (live) locations.  Moving the p0 output in
   front of the p1 output is a legal constrained reordering (different
   locations, no crash events), but it pushes the inaccurate output to
   position k, where accuracy is enforced — rejected. *)
let closure_counterexample ~k =
  if k < 1 then invalid_arg "D_k.closure_counterexample: k must be >= 1";
  let pad = List.init (k - 1) (fun _ -> Fd_event.Output (0, Loc.Set.empty)) in
  let original =
    pad
    @ [ Fd_event.Output (1, Loc.Set.singleton 0);
        Fd_event.Output (0, Loc.Set.empty);
        Fd_event.Output (1, Loc.Set.empty);
      ]
  in
  let reordered =
    pad
    @ [ Fd_event.Output (0, Loc.Set.empty);
        Fd_event.Output (1, Loc.Set.singleton 0);
        Fd_event.Output (1, Loc.Set.empty);
      ]
  in
  (original, reordered)
