(** Algorithm 3: self-implementability of AFDs (Section 6).

    [A^self] is a distributed algorithm that uses an AFD [D] to solve a
    renaming [D'] of [D]: at each location it buffers [D]'s outputs in
    a FIFO queue [fdq] and re-emits them under the renamed action, and
    a crash permanently disables the renamed outputs.  Theorem 13: for
    every fair trace [t] of the composed system, if [t|Î∪O_D ∈ T_D]
    then [t|Î∪O_D' ∈ T_D'].

    The combined alphabet carries both the original events and the
    renamed outputs. *)

open Afd_ioa

type 'o act =
  | Orig of 'o Fd_event.t  (** crash events and D's outputs *)
  | Renamed of Loc.t * 'o  (** D''s outputs: [rIO] applied to D's *)

val pp_act : 'o Fmt.t -> 'o act Fmt.t

type 'o state = { fdq : 'o list; failed : bool }

val self_automaton : loc:Loc.t -> ('o state, 'o act) Automaton.t
(** [A^self_i]: Algorithm 3's automaton at location [loc]. *)

type 'o run = {
  combined : 'o act list;  (** full trace of the composed system *)
  original : 'o Fd_event.t list;  (** [t|Î∪O_D] *)
  renamed : 'o Fd_event.t list;
      (** [t|Î∪O_D'] mapped back through [rIO⁻¹] so both can be checked
          against the same spec *)
}

val run :
  detector:('s, 'o Fd_event.t) Automaton.t ->
  n:int ->
  seed:int ->
  crash_at:(int * Loc.t) list ->
  steps:int ->
  'o run
(** Compose [detector], the crash automaton and the [n] [A^self]
    automata; drive a fair random schedule with the given fault
    pattern; return the two projections of Theorem 13. *)

val run_with :
  retention:Afd_ioa.Scheduler.retention ->
  detector:('s, 'o Fd_event.t) Automaton.t ->
  n:int ->
  seed:int ->
  crash_at:(int * Loc.t) list ->
  steps:int ->
  'o run
(** {!run} under an explicit retention policy (projections are
    retention-invariant; see {!Afd_automata.generate_trace_with}). *)

val check_theorem13 :
  spec:'o Afd.spec ->
  detector:('s, 'o Fd_event.t) Automaton.t ->
  n:int ->
  seed:int ->
  crash_at:(int * Loc.t) list ->
  steps:int ->
  (unit, string) result
(** Run and verify: if the original projection is accepted by [spec],
    the renamed projection must be too. *)

val check_theorem13_with :
  retention:Afd_ioa.Scheduler.retention ->
  spec:'o Afd.spec ->
  detector:('s, 'o Fd_event.t) Automaton.t ->
  n:int ->
  seed:int ->
  crash_at:(int * Loc.t) list ->
  steps:int ->
  (unit, string) result
(** {!check_theorem13} under an explicit retention policy. *)
