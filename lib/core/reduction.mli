(** The catalog of AFD reductions and separations (Sections 5.4, 7.1).

    A {!t} packages "D is sufficient to solve D'" as a local
    transformation function together with both specs, ready to run as a
    distributed algorithm via {!Xform.run} or to apply at the trace
    level.  Theorem 15 (transitivity) is realized by {!compose}.

    The {e strictness} half of the hierarchy (Corollary 19) cannot be
    established by testing one candidate algorithm; instead each
    separation provides the indistinguishability witness used in such
    proofs: two source-detector traces, arising from different fault
    patterns, that look identical at some observer location.  Any
    deterministic transformation must answer identically at that
    location on both, yet the target spec demands different answers —
    {!refute} runs an arbitrary candidate against the witness pair and
    reports which side breaks. *)

open Afd_ioa

type ('i, 'o) t = {
  name : string;
  source : 'i Afd.spec;
  target : 'o Afd.spec;
  f : Loc.t -> 'i -> 'o;
}

val check_on_trace : ('i, 'o) t -> n:int -> 'i Fd_event.t list -> Verdict.t
(** Trace-level soundness: if the source trace satisfies the source
    spec, the transformed trace is checked against the target spec;
    vacuously [Sat] otherwise. *)

(** {1 Downward reductions (all correct; verified by tests/benches)} *)

val p_to_evp : (Loc.Set.t, Loc.Set.t) t
val p_to_strong : (Loc.Set.t, Loc.Set.t) t
val strong_to_ev_strong : (Loc.Set.t, Loc.Set.t) t
val evp_to_ev_strong : (Loc.Set.t, Loc.Set.t) t
val p_to_omega : n:int -> (Loc.Set.t, Loc.t) t
val evp_to_omega : n:int -> (Loc.Set.t, Loc.t) t
val omega_to_anti_omega : n:int -> (Loc.t, Loc.t) t
(** Requires [n >= 2]. *)

val omega_to_omega_k : n:int -> k:int -> (Loc.t, Loc.Set.t) t
val omega_to_psi_k : n:int -> k:int -> (Loc.t, Loc.Set.t) t
val p_to_sigma : n:int -> (Loc.Set.t, Loc.Set.t) t
(** Sound whenever at least one location is live (quorums [Π \ S]
    always contain every live location under P's accuracy). *)

val compose : ('a, 'b) t -> ('b, 'c) t -> ('a, 'c) t
(** Theorem 15: [compose d1 d2] pipes [d1]'s output into [d2]. *)

(** {1 Separations (Corollary 19 witnesses)} *)

type 'i separation = {
  sep_name : string;
  n : int;
  traces : (string * 'i Fd_event.t list) list;
      (** labelled source traces, each admissible for the source AFD
          under its own fault pattern, crafted so that live locations'
          views coincide across traces *)
  why : string;
}
(** The indistinguishability witness used in hierarchy-strictness
    proofs.  Because the views coincide, a deterministic local
    extraction strategy produces the same output stream in every trace,
    but the target AFD demands incompatible outputs across the fault
    patterns — so every such strategy fails on at least one trace.
    (The universal quantification over {e all} algorithms is the
    paper's theorem; executable tests instantiate representative
    candidates and watch them fail.) *)

val evp_not_to_p : len:int -> Loc.Set.t separation
(** ◇P cannot implement P (n = 2): a ◇P trace with [len] transient
    false suspicions of the live p1 is view-identical at p0 to a prefix
    of one where p1 crashes; P forbids ever echoing the suspicion in
    the first, and completeness forces suspecting p1 in the second. *)

val omega_not_to_evp : len:int -> Loc.t separation
(** Ω cannot implement ◇P (n = 3): the constant-leader-p0 Ω trace is
    admissible both when everybody is live and when p1, p2 crash after
    [len] outputs; ◇P requires p0's eventual output to differ. *)

val anti_omega_not_to_omega : len:int -> Loc.t separation
(** anti-Ω cannot implement Ω (n = 3): the always-name-p0 trace is
    admissible under four fault patterns (nobody, p1, p2, or p0
    faulty); each live location's view is the same constant stream in
    every pattern where it is live, so a deterministic local candidate
    elects one fixed leader per location — and no such assignment
    satisfies Ω under all four live sets. *)

val refute :
  candidate:(Loc.t -> 'i list -> 'o option) ->
  target:'o Afd.spec ->
  'i separation ->
  (string, string) result
(** [refute ~candidate ~target sep]: the candidate maps a location's
    full input history there to its current output (an arbitrary
    deterministic, local extraction strategy).  Its outputs are grafted
    into every witness trace (each output event replaced by the
    candidate's output for that location's view so far) and checked
    against the target spec.  [Ok reason] when at least one grafted
    trace is rejected (the candidate fails, as the theorem requires);
    [Error reason] if the candidate passed all witnesses. *)
