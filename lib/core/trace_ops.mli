(** The three defining operations on failure-detector traces
    (Section 3.2): validity, sampling, and constrained reordering.

    Each comes as a checker (used to verify the definitions on concrete
    traces) and, for the two closure operations, a seeded random
    generator (used by the property tests of closure under sampling and
    closure under constrained reordering).

    {b Finite-trace semantics.}  The paper's definitions concern
    infinite sequences.  On finite prefixes we use:
    - validity clause (1) — no outputs after a crash at the same
      location — is checked exactly (it is a safety property);
    - validity clause (2) — infinitely many outputs at live locations —
      is approximated by "at least [live_min] outputs at each live
      location", reported as [Undecided] when unmet. *)


val validity : n:int -> ?live_min:int -> 'o Fd_event.t list -> Verdict.t
(** Default [live_min] is 1. *)

val is_sampling :
  equal_out:('o -> 'o -> bool) -> of_:'o Fd_event.t list -> 'o Fd_event.t list -> bool
(** [is_sampling ~equal_out ~of_:t t'] — Section 3.2: [t'] is a
    subsequence of [t]; live locations keep all their outputs; each
    faulty location keeps its first crash event and a prefix of its
    outputs. *)

val gen_sampling : Random.State.t -> 'o Fd_event.t list -> 'o Fd_event.t list
(** A random sampling of the given trace: drops a random suffix of
    outputs at each faulty location and randomly drops duplicate crash
    events (the first crash at each location is always kept). *)

val is_constrained_reordering :
  equal_out:('o -> 'o -> bool) -> of_:'o Fd_event.t list -> 'o Fd_event.t list -> bool
(** [is_constrained_reordering ~equal_out ~of_:t t'] — Section 3.2:
    [t'] is a permutation of [t] preserving (1) the relative order of
    same-location events and (2) the order between any crash event and
    any event that follows it. *)

val gen_reordering : Random.State.t -> 'o Fd_event.t list -> 'o Fd_event.t list
(** A random constrained reordering: a uniform-ish random linear
    extension of the partial order induced by the two constraints. *)

val count_reorderings_upto : limit:int -> 'o Fd_event.t list -> int
(** Number of distinct constrained reorderings of the trace, counted by
    exhaustive enumeration but capped at [limit] (used by tests and the
    bench that sizes the closure space). *)
