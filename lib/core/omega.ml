open Afd_ioa
module P = Afd_prop.Prop

type out = Loc.t

let stable_leader =
  P.eventually_stable ~name:"stable-leader" (fun st ->
      match P.last_outputs st with
      | Error u -> P.J_undecided u
      | Ok (last, live) ->
        if Loc.Set.is_empty live then P.J_sat
        else
          let leaders =
            Loc.Map.fold (fun _ l acc -> Loc.Set.add l acc) last Loc.Set.empty
          in
          if Loc.Set.cardinal leaders <> 1 then
            P.J_undecided
              (Fmt.str "live locations disagree on the leader: %a" Loc.pp_set leaders)
          else
            let l = Loc.Set.choose leaders in
            if Loc.Set.mem l live then P.J_sat
            else P.J_undecided (Fmt.str "stable leader %a is faulty" Loc.pp l))

let prop ~n:_ = P.conj [ P.validity (); stable_leader ]
let spec = Afd.of_prop ~perm_out:(fun pi i -> pi i) ~name:"Omega" ~pp_out:Loc.pp ~equal_out:Loc.equal prop
