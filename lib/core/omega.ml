open Afd_ioa

type out = Loc.t

let check ~n t =
  let v =
    match Spec_util.last_outputs_of_live ~n t with
    | Error u -> u
    | Ok (last, live) ->
      if Loc.Set.is_empty live then Verdict.Sat
      else
        let leaders =
          Loc.Map.fold (fun _ l acc -> Loc.Set.add l acc) last Loc.Set.empty
        in
        if Loc.Set.cardinal leaders <> 1 then
          Verdict.Undecided
            (Fmt.str "live locations disagree on the leader: %a" Loc.pp_set leaders)
        else
          let l = Loc.Set.choose leaders in
          if Loc.Set.mem l live then Verdict.Sat
          else
            Verdict.Undecided
              (Fmt.str "stable leader %a is faulty" Loc.pp l)
  in
  Spec_util.with_validity ~n t v

let spec =
  { Afd.name = "Omega"; pp_out = Loc.pp; equal_out = Loc.equal; check }
