(** The quorum failure detector Σ.

    Each output is a quorum (a set of locations) such that
    (1) {e intersection}: any two quorums output anywhere, at any
    times, intersect — checked exactly; and (2) {e completeness}:
    eventually every quorum output at a live location contains only
    live locations — checked under limit-extension semantics.  Σ is the
    weakest failure detector to implement atomic registers. *)

open Afd_ioa

type out = Loc.Set.t

val spec : out Afd.spec
