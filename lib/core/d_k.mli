(** The D_k failure detector (Bhatt-Jayanti) — a negative control
    (Section 3.4).

    D_k provides accurate information only about crashes that occur
    after real time [k].  Real time is not modeled in the I/O-automata
    framework; the closest asynchronous stand-in indexes the trace by
    event position: outputs occurring at positions [>= k] must be
    accurate (suspect only already-crashed locations), while the first
    [k] events are unconstrained.

    That stand-in is {e not} an AFD: position-indexed clauses are not
    closed under constrained reordering — an event from another
    location can be legally reordered in front of an inaccurate early
    output, pushing the latter past position [k] where accuracy is
    enforced.  {!closure_counterexample} builds a concrete witness,
    reproducing the paper's claim that D_k cannot be specified as an
    AFD because "real time is not modeled". *)

open Afd_ioa

type out = Loc.Set.t

val spec : k:int -> out Afd.spec

val closure_counterexample : k:int -> out Fd_event.t list * out Fd_event.t list
(** [closure_counterexample ~k] (for [k >= 1]) is a pair
    [(t, t')] where [t] is accepted by [spec ~k] and [t'] is a
    constrained reordering of [t] that [spec ~k] rejects.  Raises
    [Invalid_argument] if [k < 1]. *)
