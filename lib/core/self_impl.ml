open Afd_ioa

type 'o act = Orig of 'o Fd_event.t | Renamed of Loc.t * 'o

let pp_act pp_o fmt = function
  | Orig e -> Fd_event.pp pp_o fmt e
  | Renamed (i, o) -> Format.fprintf fmt "fd'(%a)_%a" pp_o o Loc.pp i

type 'o state = { fdq : 'o list; failed : bool }

let self_automaton ~loc =
  let kind = function
    | Orig (Fd_event.Crash i) when Loc.equal i loc -> Some Automaton.Input
    | Orig (Fd_event.Output (i, _)) when Loc.equal i loc -> Some Automaton.Input
    | Renamed (i, _) when Loc.equal i loc -> Some Automaton.Output
    | Orig _ | Renamed _ -> None
  in
  let step st = function
    | Orig (Fd_event.Crash i) when Loc.equal i loc -> Some { st with failed = true }
    | Orig (Fd_event.Output (i, o)) when Loc.equal i loc ->
      Some { st with fdq = st.fdq @ [ o ] }
    | Renamed (i, o) when Loc.equal i loc -> (
      match st.fdq with
      | head :: rest when (not st.failed) && Stdlib.compare head o = 0 ->
        Some { st with fdq = rest }
      | _ -> None)
    | Orig _ | Renamed _ -> None
  in
  let task =
    { Automaton.task_name = Printf.sprintf "renamed_%s" (Loc.to_string loc);
      fair = true;
      enabled =
        (fun st ->
          match st.fdq with
          | head :: _ when not st.failed -> Some (Renamed (loc, head))
          | _ -> None);
    }
  in
  { Automaton.name = Printf.sprintf "Aself_%s" (Loc.to_string loc);
    kind;
    start = { fdq = []; failed = false };
    step;
    tasks = [ task ];
  }

type 'o run = {
  combined : 'o act list;
  original : 'o Fd_event.t list;
  renamed : 'o Fd_event.t list;
}

let run_with ~retention ~detector ~n ~seed ~crash_at ~steps =
  let crashable =
    List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at
  in
  let lift aut =
    Automaton.rename
      ~to_:(fun e -> Orig e)
      ~of_:(function Orig e -> Some e | Renamed _ -> None)
      aut
  in
  let comps =
    Component.C (lift detector)
    :: Component.C (lift (Afd_automata.crash_automaton ~n ~crashable))
    :: List.map (fun i -> Component.C (self_automaton ~loc:i)) (Loc.universe ~n)
  in
  let comp = Composition.make ~name:"self-impl" comps in
  let forced =
    List.map
      (fun (k, i) ->
        { Scheduler.at_step = k; task_pattern = "crash/crash_" ^ Loc.to_string i })
      crash_at
  in
  let cfg =
    { Scheduler.policy = Scheduler.Random seed;
      max_steps = steps;
      stop_when_quiescent = true;
      forced;
    }
  in
  let outcome = Scheduler.run ~retention comp cfg in
  let combined = List.map snd outcome.Scheduler.fired in
  let original = List.filter_map (function Orig e -> Some e | Renamed _ -> None) combined in
  let renamed =
    List.filter_map
      (function
        | Orig (Fd_event.Crash i) -> Some (Fd_event.Crash i)
        | Orig (Fd_event.Output _) -> None
        | Renamed (i, o) -> Some (Fd_event.Output (i, o)))
      combined
  in
  { combined; original; renamed }

let run ~detector ~n ~seed ~crash_at ~steps =
  run_with ~retention:Scheduler.Trace_only ~detector ~n ~seed ~crash_at ~steps

let check_theorem13_with ~retention ~spec ~detector ~n ~seed ~crash_at ~steps =
  let r = run_with ~retention ~detector ~n ~seed ~crash_at ~steps in
  match Afd.check spec ~n r.original with
  | Verdict.Violated reason ->
    Error (Printf.sprintf "detector trace not in T_D (%s): theorem hypothesis broken" reason)
  | Verdict.Undecided reason ->
    Error (Printf.sprintf "detector trace undecided (%s): run longer" reason)
  | Verdict.Sat -> (
    match Afd.check spec ~n r.renamed with
    | Verdict.Sat -> Ok ()
    | v ->
      Error
        (Fmt.str "renamed trace not in T_D': %a (renamed trace: %a)" Verdict.pp v
           (Fd_event.pp_trace spec.Afd.pp_out)
           r.renamed))

let check_theorem13 ~spec ~detector ~n ~seed ~crash_at ~steps =
  check_theorem13_with ~retention:Scheduler.Trace_only ~spec ~detector ~n ~seed
    ~crash_at ~steps
