open Afd_ioa

type out = Loc.Set.t

(* Strong accuracy, exactly as phrased in the paper: for every prefix
   t_pre and every i live in t_pre, no output event in t_pre suspects
   i.  Equivalently: every suspected location had crashed strictly
   before the output event. *)
let accuracy t =
  Spec_util.for_all_outputs t (fun ~crashed j s ->
      if Loc.Set.subset s crashed then Ok ()
      else
        Error
          (Fmt.str "output %a at %a suspects not-yet-crashed location(s) %a"
             Loc.pp_set s Loc.pp j
             Loc.pp_set (Loc.Set.diff s crashed)))

let completeness ~n t =
  match Spec_util.last_outputs_of_live ~n t with
  | Error u -> u
  | Ok (last, _live) ->
    let faulty = Fd_event.faulty t in
    Loc.Map.fold
      (fun i s acc ->
        if Loc.Set.subset faulty s then acc
        else
          Verdict.(
            acc
            &&& Undecided
                  (Fmt.str "last output at %a (%a) misses faulty %a" Loc.pp i
                     Loc.pp_set s Loc.pp_set (Loc.Set.diff faulty s))))
      last Verdict.Sat

let check ~n t =
  Spec_util.with_validity ~n t Verdict.(accuracy t &&& completeness ~n t)

let spec =
  { Afd.name = "P"; pp_out = Loc.pp_set; equal_out = Loc.Set.equal; check }
