open Afd_ioa
module P = Afd_prop.Prop

type out = Loc.Set.t

(* Strong accuracy, exactly as phrased in the paper: for every prefix
   t_pre and every i live in t_pre, no output event in t_pre suspects
   i.  Equivalently: every suspected location had crashed strictly
   before the output event. *)
let accuracy =
  P.always ~name:"accuracy" (fun st e ->
      match e with
      | Fd_event.Output (j, s) when not (Loc.Set.subset s st.P.crashed) ->
        Error
          (Fmt.str "output %a at %a suspects not-yet-crashed location(s) %a"
             Loc.pp_set s Loc.pp j
             Loc.pp_set (Loc.Set.diff s st.P.crashed))
      | Fd_event.Output _ | Fd_event.Crash _ -> Ok ())

let completeness =
  P.eventually_stable ~name:"completeness" (fun st ->
      match P.last_outputs st with
      | Error u -> P.J_undecided u
      | Ok (last, _live) ->
        let faulty = st.P.crashed in
        Loc.Map.fold
          (fun i s acc ->
            if Loc.Set.subset faulty s then acc
            else
              P.j_and acc
                (P.J_undecided
                   (Fmt.str "last output at %a (%a) misses faulty %a" Loc.pp i
                      Loc.pp_set s Loc.pp_set (Loc.Set.diff faulty s))))
          last P.J_sat)

let prop ~n:_ = P.conj [ P.validity (); accuracy; completeness ]
let spec = Afd.of_prop ~perm_out:(fun pi -> Loc.Set.map pi) ~name:"P" ~pp_out:Loc.pp_set ~equal_out:Loc.Set.equal prop
