open Afd_ioa
module P = Afd_prop.Prop

type out = Loc.Set.t

let shape ~k =
  P.always ~name:"shape" (fun _st e ->
      match e with
      | Fd_event.Output (i, s) when Loc.Set.cardinal s <> k ->
        Error
          (Fmt.str "output %a at %a has cardinality %d, expected %d" Loc.pp_set s
             Loc.pp i (Loc.Set.cardinal s) k)
      | Fd_event.Output _ | Fd_event.Crash _ -> Ok ())

let convergence =
  P.eventually_stable ~name:"convergence" (fun st ->
      match P.last_outputs st with
      | Error u -> P.J_undecided u
      | Ok (last, live) ->
        if Loc.Set.is_empty live then P.J_sat
        else
          let sets = Loc.Map.fold (fun _ s acc -> s :: acc) last [] in
          let all_equal =
            match sets with
            | [] -> true
            | s0 :: rest -> List.for_all (Loc.Set.equal s0) rest
          in
          if not all_equal then
            P.J_undecided "live locations have not converged on one set"
          else
            let k0 = List.hd sets in
            if Loc.Set.is_empty (Loc.Set.inter k0 live) then
              P.J_undecided "converged set contains no live location"
            else P.J_sat)

let prop ~k ~n:_ = P.conj [ P.validity (); shape ~k; convergence ]

let spec ~k =
  if k < 1 then invalid_arg "Psi_k.spec: k must be >= 1";
  Afd.of_prop
    ~perm_out:(fun pi -> Loc.Set.map pi)
    ~name:(Printf.sprintf "Psi_%d" k)
    ~pp_out:Loc.pp_set ~equal_out:Loc.Set.equal (prop ~k)
