open Afd_ioa

type out = Loc.Set.t

let check ~k ~n t =
  let shape =
    Spec_util.for_all_outputs t (fun ~crashed:_ i s ->
        if Loc.Set.cardinal s = k then Ok ()
        else
          Error
            (Fmt.str "output %a at %a has cardinality %d, expected %d" Loc.pp_set s
               Loc.pp i (Loc.Set.cardinal s) k))
  in
  let eventual =
    match Spec_util.last_outputs_of_live ~n t with
    | Error u -> u
    | Ok (last, live) ->
      if Loc.Set.is_empty live then Verdict.Sat
      else
        let sets = Loc.Map.fold (fun _ s acc -> s :: acc) last [] in
        let all_equal =
          match sets with
          | [] -> true
          | s0 :: rest -> List.for_all (Loc.Set.equal s0) rest
        in
        if not all_equal then
          Verdict.Undecided "live locations have not converged on one set"
        else
          let k0 = List.hd sets in
          if Loc.Set.is_empty (Loc.Set.inter k0 live) then
            Verdict.Undecided "converged set contains no live location"
          else Verdict.Sat
  in
  Spec_util.with_validity ~n t Verdict.(shape &&& eventual)

let spec ~k =
  if k < 1 then invalid_arg "Psi_k.spec: k must be >= 1";
  { Afd.name = Printf.sprintf "Psi_%d" k;
    pp_out = Loc.pp_set;
    equal_out = Loc.Set.equal;
    check = (fun ~n t -> check ~k ~n t);
  }
