(** The perfect failure detector P (Section 3.3).

    P never suspects a location that has not crashed yet (strong
    accuracy — a safety property, checked exactly), and eventually and
    permanently suspects every crashed location (strong completeness —
    checked under limit-extension semantics). *)

open Afd_ioa

type out = Loc.Set.t
(** Payload of an [FD-P(S)_i] event: the suspected set [S]. *)

val spec : out Afd.spec
