(* Re-export: FD trace events live in [Afd_prop] since the property
   engine; kept here so [Afd_core.Fd_event] users are unaffected. *)
include Afd_prop.Fd_event
