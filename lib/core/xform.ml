open Afd_ioa

type ('i, 'o) act = In of 'i Fd_event.t | Out of Loc.t * 'o

let pp_act pp_i pp_o fmt = function
  | In e -> Fd_event.pp pp_i fmt e
  | Out (i, o) -> Format.fprintf fmt "out(%a)_%a" pp_o o Loc.pp i

type 'i state = { latest : 'i option; failed : bool }

let local_transformer ~name ~loc ~f =
  let kind = function
    | In (Fd_event.Crash i) when Loc.equal i loc -> Some Automaton.Input
    | In (Fd_event.Output (i, _)) when Loc.equal i loc -> Some Automaton.Input
    | Out (i, _) when Loc.equal i loc -> Some Automaton.Output
    | In _ | Out _ -> None
  in
  let current st = Option.map (f loc) st.latest in
  let step st = function
    | In (Fd_event.Crash i) when Loc.equal i loc -> Some { st with failed = true }
    | In (Fd_event.Output (i, o)) when Loc.equal i loc -> Some { st with latest = Some o }
    | Out (i, o) when Loc.equal i loc ->
      if (not st.failed) && current st = Some o then Some st else None
    | In _ | Out _ -> None
  in
  let task =
    { Automaton.task_name = Printf.sprintf "out_%s" (Loc.to_string loc);
      fair = true;
      enabled =
        (fun st ->
          if st.failed then None
          else Option.map (fun o -> Out (loc, o)) (current st));
    }
  in
  { Automaton.name = Printf.sprintf "%s_%s" name (Loc.to_string loc);
    kind;
    start = { latest = None; failed = false };
    step;
    tasks = [ task ];
  }

type ('i, 'o) run = {
  source : 'i Fd_event.t list;
  target : 'o Fd_event.t list;
}

let run_with ~retention ~detector ~f ~name ~n ~seed ~crash_at ~steps =
  let crashable =
    List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at
  in
  let lift aut =
    Automaton.rename
      ~to_:(fun e -> In e)
      ~of_:(function In e -> Some e | Out _ -> None)
      aut
  in
  let comps =
    Component.C (lift detector)
    :: Component.C (lift (Afd_automata.crash_automaton ~n ~crashable))
    :: List.map
         (fun i -> Component.C (local_transformer ~name ~loc:i ~f))
         (Loc.universe ~n)
  in
  let comp = Composition.make ~name comps in
  let forced =
    List.map
      (fun (k, i) ->
        { Scheduler.at_step = k; task_pattern = "crash/crash_" ^ Loc.to_string i })
      crash_at
  in
  let cfg =
    { Scheduler.policy = Scheduler.Random seed;
      max_steps = steps;
      stop_when_quiescent = true;
      forced;
    }
  in
  let outcome = Scheduler.run ~retention comp cfg in
  let combined = List.map snd outcome.Scheduler.fired in
  let source = List.filter_map (function In e -> Some e | Out _ -> None) combined in
  let target =
    List.filter_map
      (function
        | In (Fd_event.Crash i) -> Some (Fd_event.Crash i)
        | In (Fd_event.Output _) -> None
        | Out (i, o) -> Some (Fd_event.Output (i, o)))
      combined
  in
  { source; target }

let run ~detector ~f ~name ~n ~seed ~crash_at ~steps =
  run_with ~retention:Scheduler.Trace_only ~detector ~f ~name ~n ~seed ~crash_at ~steps

let apply_to_trace ~f t =
  List.map
    (function
      | Fd_event.Crash i -> Fd_event.Crash i
      | Fd_event.Output (i, o) -> Fd_event.Output (i, f i o))
    t
