open Afd_ioa
module P = Afd_prop.Prop

type out = Loc.Set.t

(* Perpetual weak accuracy is judged, not latched: the ever-suspected
   union only grows, but the live set can shrink, so "every live
   location has been suspected" may flip back to satisfied when the
   last never-suspected live location crashes.  The fold carries the
   union of all suspect sets seen so far. *)
let weak_accuracy =
  P.folding ~perm:Loc.Set.map ~cmp:Loc.Set.compare ~name:"weak-accuracy"
    ~init:Loc.Set.empty
    ~step:(fun _st suspected e ->
      match e with
      | Fd_event.Crash _ -> Ok suspected
      | Fd_event.Output (_, s) -> Ok (Loc.Set.union suspected s))
    ~judge:(fun st suspected ->
      let live = P.live st in
      if Loc.Set.is_empty live then P.J_sat
      else if Loc.Set.is_empty (Loc.Set.diff live suspected) then
        P.J_violated "every live location has been suspected at least once"
      else P.J_sat)

let completeness =
  P.eventually_stable ~name:"completeness" (fun st ->
      match P.last_outputs st with
      | Error u -> P.J_undecided u
      | Ok (last, _live) ->
        let faulty = st.P.crashed in
        Loc.Map.fold
          (fun i s acc ->
            if Loc.Set.subset faulty s then acc
            else
              P.j_and acc
                (P.J_undecided
                   (Fmt.str "last output at %a misses faulty %a" Loc.pp i
                      Loc.pp_set (Loc.Set.diff faulty s))))
          last P.J_sat)

let prop ~n:_ = P.conj [ P.validity (); weak_accuracy; completeness ]
let spec = Afd.of_prop ~perm_out:(fun pi -> Loc.Set.map pi) ~name:"S" ~pp_out:Loc.pp_set ~equal_out:Loc.Set.equal prop
