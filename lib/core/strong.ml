open Afd_ioa

type out = Loc.Set.t

let never_suspected ~n t =
  let live = Fd_event.live ~n t in
  List.fold_left
    (fun acc e ->
      match e with
      | Fd_event.Crash _ -> acc
      | Fd_event.Output (_, s) -> Loc.Set.diff acc s)
    live t

let weak_accuracy ~n t =
  if Loc.Set.is_empty (Fd_event.live ~n t) then Verdict.Sat
  else if Loc.Set.is_empty (never_suspected ~n t) then
    Verdict.Violated "every live location has been suspected at least once"
  else Verdict.Sat

let completeness ~n t =
  match Spec_util.last_outputs_of_live ~n t with
  | Error u -> u
  | Ok (last, _) ->
    let faulty = Fd_event.faulty t in
    Loc.Map.fold
      (fun i s acc ->
        if Loc.Set.subset faulty s then acc
        else
          Verdict.(
            acc
            &&& Undecided
                  (Fmt.str "last output at %a misses faulty %a" Loc.pp i
                     Loc.pp_set (Loc.Set.diff faulty s))))
      last Verdict.Sat

let check ~n t =
  Spec_util.with_validity ~n t Verdict.(weak_accuracy ~n t &&& completeness ~n t)

let spec =
  { Afd.name = "S"; pp_out = Loc.pp_set; equal_out = Loc.Set.equal; check }
