(** Asynchronous failure detectors (Section 3.2).

    An AFD is a crash problem [D = (Î, O_D, T_D)] satisfying crash
    exclusivity, validity, closure under sampling, and closure under
    constrained reordering.  A {!spec} packages the detector's output
    payload type with a monitor for membership in [T_D].

    {b Finite-trace semantics of [check].}  Safety clauses of each
    detector are checked exactly.  "Eventually/permanently" clauses are
    checked under {e limit-extension semantics}: the finite trace
    stands for the infinite trace in which each live location keeps
    repeating its last output forever.  This reading is exactly
    preserved by sampling (live locations keep all outputs) and by
    constrained reordering (per-location order, hence last outputs, are
    preserved), so the closure properties of Section 3.2 are honestly
    testable on finite traces. *)


type 'o spec = {
  name : string;
  pp_out : 'o Fmt.t;
  equal_out : 'o -> 'o -> bool;
  check : n:int -> 'o Fd_event.t list -> Verdict.t;
      (** membership of the (finite, limit-extended) trace in [T_D];
          must include the validity check. *)
  prop : (n:int -> 'o Afd_prop.Prop.t) option;
      (** the temporal formula the spec compiles to, when built with
          {!of_prop}; [check] is then its offline replay wrapper, so
          online and offline verdicts coincide definitionally. *)
  perm_out : ((int -> int) -> 'o -> 'o) option;
      (** how a process permutation transports an output value
          ([Loc.Set.map] for suspect sets, application for leader
          outputs).  Needed by the symmetry-quotiented model checker to
          permute trace summaries; [None] leaves the spec uncertifiable
          (unreduced exploration), never unsound. *)
}

val of_prop :
  ?perm_out:((int -> int) -> 'o -> 'o) ->
  name:string ->
  pp_out:'o Fmt.t ->
  equal_out:('o -> 'o -> bool) ->
  (n:int -> 'o Afd_prop.Prop.t) ->
  'o spec
(** Build a spec from a temporal formula; [check] becomes
    [Afd_prop.Monitor.replay] of the formula.  The formula must
    include the validity clauses (use {!Afd_prop.Prop.validity}). *)

val raw :
  ?perm_out:((int -> int) -> 'o -> 'o) ->
  name:string ->
  pp_out:'o Fmt.t ->
  equal_out:('o -> 'o -> bool) ->
  (n:int -> 'o Fd_event.t list -> Verdict.t) ->
  'o spec
(** Build a spec from a bare full-trace scan ([prop = None]); only for
    predicates genuinely outside the DSL — the lint rule
    [prop-based-spec] flags raw detector specs. *)

val check : 'o spec -> n:int -> 'o Fd_event.t list -> Verdict.t

type style = Prop_compiled | Raw_scan

val style : 'o spec -> style

val monitor : ?window:int -> 'o spec -> n:int -> 'o Afd_prop.Monitor.t option
(** A fresh online monitor for the spec's formula; [None] for
    {!raw} specs.  [window] sizes the counterexample witness window. *)

type closure_failure = {
  original : string;  (** formatted original trace *)
  transformed : string;  (** formatted transformed trace *)
  verdict : Verdict.t;  (** verdict on the transformed trace *)
}

val check_closure_under_sampling :
  'o spec -> n:int -> rng:Random.State.t -> trials:int -> 'o Fd_event.t list ->
  (unit, closure_failure) result
(** Given a trace accepted by the spec, draw [trials] random samplings
    and re-check each; the first rejected sampling (a counterexample to
    closure under sampling) is returned as [Error].  If the input trace
    itself is not accepted the check is vacuous and returns [Ok ()]. *)

val check_closure_under_reordering :
  'o spec -> n:int -> rng:Random.State.t -> trials:int -> 'o Fd_event.t list ->
  (unit, closure_failure) result

val check_all_properties :
  'o spec -> n:int -> rng:Random.State.t -> trials:int -> 'o Fd_event.t list ->
  (unit, string) result
(** Validity of the trace when accepted, plus both closure checks. *)
