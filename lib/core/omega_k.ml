open Afd_ioa
module P = Afd_prop.Prop

type out = Loc.Set.t

let shape ~k =
  P.always ~name:"shape" (fun _st e ->
      match e with
      | Fd_event.Output (i, s) when Loc.Set.cardinal s <> k ->
        Error
          (Fmt.str "output %a at %a has cardinality %d, expected %d" Loc.pp_set s
             Loc.pp i (Loc.Set.cardinal s) k)
      | Fd_event.Output _ | Fd_event.Crash _ -> Ok ())

let common_live =
  P.eventually_stable ~name:"common-live" (fun st ->
      match P.last_outputs st with
      | Error u -> P.J_undecided u
      | Ok (last, live) ->
        if Loc.Set.is_empty live then P.J_sat
        else
          let common =
            Loc.Map.fold
              (fun _ s acc -> Loc.Set.inter acc s)
              last
              (Loc.set_of_universe ~n:st.P.n)
          in
          if Loc.Set.is_empty (Loc.Set.inter common live) then
            P.J_undecided "stable outputs share no common live location"
          else P.J_sat)

let prop ~k ~n:_ = P.conj [ P.validity (); shape ~k; common_live ]

let spec ~k =
  if k < 1 then invalid_arg "Omega_k.spec: k must be >= 1";
  Afd.of_prop
    ~perm_out:(fun pi -> Loc.Set.map pi)
    ~name:(Printf.sprintf "Omega_%d" k)
    ~pp_out:Loc.pp_set ~equal_out:Loc.Set.equal (prop ~k)
