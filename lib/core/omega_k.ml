open Afd_ioa

type out = Loc.Set.t

let check ~k ~n t =
  let shape =
    Spec_util.for_all_outputs t (fun ~crashed:_ i s ->
        if Loc.Set.cardinal s = k then Ok ()
        else
          Error
            (Fmt.str "output %a at %a has cardinality %d, expected %d" Loc.pp_set s
               Loc.pp i (Loc.Set.cardinal s) k))
  in
  let eventual =
    match Spec_util.last_outputs_of_live ~n t with
    | Error u -> u
    | Ok (last, live) ->
      if Loc.Set.is_empty live then Verdict.Sat
      else
        let common =
          Loc.Map.fold (fun _ s acc -> Loc.Set.inter acc s) last (Loc.set_of_universe ~n)
        in
        if Loc.Set.is_empty (Loc.Set.inter common live) then
          Verdict.Undecided "stable outputs share no common live location"
        else Verdict.Sat
  in
  Spec_util.with_validity ~n t Verdict.(shape &&& eventual)

let spec ~k =
  if k < 1 then invalid_arg "Omega_k.spec: k must be >= 1";
  { Afd.name = Printf.sprintf "Omega_%d" k;
    pp_out = Loc.pp_set;
    equal_out = Loc.Set.equal;
    check = (fun ~n t -> check ~k ~n t);
  }
