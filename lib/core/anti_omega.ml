open Afd_ioa

type out = Loc.t

let check ~n t =
  let v =
    match Spec_util.last_outputs_of_live ~n t with
    | Error u -> u
    | Ok (last, live) ->
      if Loc.Set.is_empty live then Verdict.Sat
      else
        let named =
          Loc.Map.fold (fun _ l acc -> Loc.Set.add l acc) last Loc.Set.empty
        in
        let spared = Loc.Set.diff live named in
        if Loc.Set.is_empty spared then
          Verdict.Undecided "every live location is still being output"
        else Verdict.Sat
  in
  Spec_util.with_validity ~n t v

let spec =
  { Afd.name = "anti-Omega"; pp_out = Loc.pp; equal_out = Loc.equal; check }
