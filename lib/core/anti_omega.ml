open Afd_ioa
module P = Afd_prop.Prop

type out = Loc.t

let spared =
  P.eventually_stable ~name:"spared-location" (fun st ->
      match P.last_outputs st with
      | Error u -> P.J_undecided u
      | Ok (last, live) ->
        if Loc.Set.is_empty live then P.J_sat
        else
          let named =
            Loc.Map.fold (fun _ l acc -> Loc.Set.add l acc) last Loc.Set.empty
          in
          let spared = Loc.Set.diff live named in
          if Loc.Set.is_empty spared then
            P.J_undecided "every live location is still being output"
          else P.J_sat)

let prop ~n:_ = P.conj [ P.validity (); spared ]
let spec = Afd.of_prop ~perm_out:(fun pi i -> pi i) ~name:"anti-Omega" ~pp_out:Loc.pp ~equal_out:Loc.equal prop
