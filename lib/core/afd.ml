type 'o spec = {
  name : string;
  pp_out : 'o Fmt.t;
  equal_out : 'o -> 'o -> bool;
  check : n:int -> 'o Fd_event.t list -> Verdict.t;
  prop : (n:int -> 'o Afd_prop.Prop.t) option;
  perm_out : ((int -> int) -> 'o -> 'o) option;
}

let raw ?perm_out ~name ~pp_out ~equal_out check =
  { name; pp_out; equal_out; check; prop = None; perm_out }

let of_prop ?perm_out ~name ~pp_out ~equal_out prop =
  { name;
    pp_out;
    equal_out;
    check = (fun ~n t -> Afd_prop.Monitor.replay ~n (prop ~n) t);
    prop = Some prop;
    perm_out;
  }

let check spec ~n t = spec.check ~n t

type style = Prop_compiled | Raw_scan

let style spec = if Option.is_some spec.prop then Prop_compiled else Raw_scan

let monitor ?window spec ~n =
  Option.map (fun prop -> Afd_prop.Monitor.create ?window ~n (prop ~n)) spec.prop

type closure_failure = {
  original : string;
  transformed : string;
  verdict : Verdict.t;
}

let fmt_trace spec t = Fmt.str "%a" (Fd_event.pp_trace spec.pp_out) t

let closure_check transform spec ~n ~rng ~trials t =
  if not (Verdict.is_sat (spec.check ~n t)) then Ok ()
  else
    let rec go k =
      if k >= trials then Ok ()
      else
        let t' = transform rng t in
        match spec.check ~n t' with
        | Verdict.Sat -> go (k + 1)
        | v ->
          Error { original = fmt_trace spec t; transformed = fmt_trace spec t'; verdict = v }
    in
    go 0

let check_closure_under_sampling spec = closure_check Trace_ops.gen_sampling spec
let check_closure_under_reordering spec = closure_check Trace_ops.gen_reordering spec

let check_all_properties spec ~n ~rng ~trials t =
  match spec.check ~n t with
  | Verdict.Violated r -> Error (Printf.sprintf "%s: trace not accepted: %s" spec.name r)
  | Verdict.Undecided _ -> Ok () (* vacuous: prefix too short to test closure *)
  | Verdict.Sat -> (
    match Trace_ops.validity ~n t with
    | Verdict.Violated r -> Error (Printf.sprintf "%s: accepted trace violates validity: %s" spec.name r)
    | _ -> (
      match check_closure_under_sampling spec ~n ~rng ~trials t with
      | Error f ->
        Error
          (Printf.sprintf "%s: sampling closure failed: %s -> %s (%s)" spec.name
             f.original f.transformed (Fmt.str "%a" Verdict.pp f.verdict))
      | Ok () -> (
        match check_closure_under_reordering spec ~n ~rng ~trials t with
        | Error f ->
          Error
            (Printf.sprintf "%s: reordering closure failed: %s -> %s (%s)" spec.name
               f.original f.transformed (Fmt.str "%a" Verdict.pp f.verdict))
        | Ok () -> Ok ())))
