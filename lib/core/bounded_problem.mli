(** Bounded problems (Section 7.3) and the machinery of Theorem 21.

    A problem [P] is bounded when some automaton [U] solving it is
    {e crash independent} — deleting the crash events from any finite
    trace of [U] leaves a trace of [U] — and has {e bounded length} —
    at most [b] output events in any trace.  Theorem 21: a bounded
    problem unsolvable in an environment has no representative AFD
    there.

    These checkers operate on a concrete witness automaton and sampled
    traces; the consensus witness lives in the consensus library. *)

open Afd_ioa

val check_crash_independent :
  ('s, 'a) Automaton.t ->
  is_crash:('a -> bool) ->
  traces:'a list list ->
  (unit, string) result
(** For each finite trace [t] (of the witness automaton, externals
    only — the witness must have no internal actions), verify that
    [t] minus its crash events is applicable to the automaton from its
    start state. *)

val check_bounded_length :
  is_output:('a -> bool) -> bound:int -> traces:'a list list -> (unit, string) result
(** No trace carries more than [bound] output events. *)

val quiescence_starves_extraction :
  outputs_after_quiescence:int -> live_locations:Loc.Set.t -> (unit, string) result
(** The executable core of Theorem 21's contradiction: once the bounded
    problem's solution is quiescent (no messages in transit, no more
    [O_P] events possible — Lemma 23/24), a would-be representative
    AFD extraction must still emit infinitely many outputs at each live
    location while receiving no further information; if the extraction
    produced [outputs_after_quiescence] outputs from no input, those
    outputs are a function of nothing and the same stream must appear
    under every fault pattern that agrees before quiescence — the
    validity-vs-accuracy clash.  Returns [Ok ()] when
    [outputs_after_quiescence = 0] would starve validity (the
    contradiction holds), [Error] otherwise.  See the consensus tests
    for the full two-fault-pattern construction. *)
