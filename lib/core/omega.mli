(** The leader-election oracle Ω (Section 3.3).

    Ω continually outputs a location ID at each location; eventually
    and permanently it outputs the ID of a unique live location at all
    live locations.  It is a weakest failure detector for consensus
    (Chandra-Hadzilacos-Toueg). *)

open Afd_ioa

type out = Loc.t
(** Payload of an [FD-Ω(j)_i] event: the elected leader [j]. *)

val spec : out Afd.spec
(** Membership monitor for [T_Ω]: validity plus, under limit-extension
    semantics, all live locations' last outputs name one common live
    leader. *)
