(** The Ωk family (Neiger): each output is a set of exactly [k]
    locations; eventually all outputs at live locations contain one
    common live location.  Ω1 coincides with Ω up to payload shape. *)

open Afd_ioa

type out = Loc.Set.t

val spec : k:int -> out Afd.spec
(** Raises [Invalid_argument] if [k < 1]. *)
