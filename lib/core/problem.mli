(** Crash problems (Section 3.1).

    A problem [P = (I_P, O_P, T_P)] over an action alphabet ['a]:
    disjoint input/output action sets (as predicates) and a trace-set
    monitor.  A crash problem additionally has every [crash_i] among
    its inputs; in our encodings the [crash] predicate picks those
    out. *)

open Afd_ioa

type 'a t = {
  name : string;
  is_input : 'a -> bool;  (** I_P *)
  is_output : 'a -> bool;  (** O_P *)
  is_crash : 'a -> Loc.t option;  (** Î, a subset of I_P for crash problems *)
  check : 'a list -> Verdict.t;  (** membership of a finite trace in T_P *)
}

val external_actions : 'a t -> 'a -> bool
(** [I_P ∪ O_P]. *)

val project : 'a t -> 'a list -> 'a list
(** [t|I_P∪O_P]. *)

val of_afd :
  'o Afd.spec -> n:int -> 'o Fd_event.t t
(** View an AFD as the crash problem it is (crash exclusivity: inputs
    are exactly the crash events). *)

val solves :
  'a t -> traces:'a list list -> (unit, string) result
(** "Automaton A solves P": every supplied fair trace (projected on
    [I_P ∪ O_P]) is accepted.  Traces come from the caller's scheduler
    runs. *)

val solves_using :
  'a t -> using:'a t -> traces:'a list list -> (unit, string) result
(** Section 5.2: for every supplied fair trace [t], if
    [t|I_P'∪O_P' ∈ T_P'] then [t|I_P∪O_P ∈ T_P].  [Undecided] on the
    hypothesis side counts as hypothesis-not-established, making the
    implication vacuous for that trace. *)
