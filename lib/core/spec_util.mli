(** Shared building blocks for AFD specifications. *)

open Afd_ioa

val pp_locset : Loc.Set.t Fmt.t

val last_outputs_of_live :
  n:int -> 'o Fd_event.t list -> ('o Loc.Map.t * Loc.Set.t, Verdict.t) result
(** The last output payload of every live location (limit-extension
    semantics), together with the live set.  [Error Undecided] when a
    live location has produced no output yet; [Error Violated] is never
    returned. *)

val for_all_outputs :
  'o Fd_event.t list -> (crashed:Loc.Set.t -> Loc.t -> 'o -> (unit, string) result) ->
  Verdict.t
(** Exact safety scan: folds over the trace maintaining the
    crashed-so-far set and applies the predicate to every output
    event. *)

val with_validity : n:int -> 'o Fd_event.t list -> Verdict.t -> Verdict.t
(** Conjoin the validity check (Section 3.2) with a detector-specific
    verdict. *)
