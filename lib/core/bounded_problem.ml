open Afd_ioa

let check_crash_independent aut ~is_crash ~traces =
  let rec go k = function
    | [] -> Ok ()
    | t :: rest ->
      let stripped = List.filter (fun a -> not (is_crash a)) t in
      (match Execution.apply_schedule aut aut.Automaton.start stripped with
      | Some _ -> go (k + 1) rest
      | None ->
        Error
          (Printf.sprintf
             "automaton %s is not crash independent: trace %d minus crashes is not \
              applicable"
             aut.Automaton.name k))
  in
  go 0 traces

let check_bounded_length ~is_output ~bound ~traces =
  let rec go k = function
    | [] -> Ok ()
    | t :: rest ->
      let c = List.length (List.filter is_output t) in
      if c <= bound then go (k + 1) rest
      else
        Error
          (Printf.sprintf "trace %d has %d > %d output events: not bounded by %d" k c
             bound bound)
  in
  go 0 traces

let quiescence_starves_extraction ~outputs_after_quiescence ~live_locations =
  if Loc.Set.is_empty live_locations then
    Error "vacuous: no live locations, validity imposes no obligation"
  else if outputs_after_quiescence = 0 then Ok ()
  else
    Error
      (Printf.sprintf
         "extraction produced %d outputs after quiescence; Theorem 21's starvation \
          argument applies to extractions that are silent once the bounded problem \
          quiesces"
         outputs_after_quiescence)
