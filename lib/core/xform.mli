(** Local failure-detector transformers.

    A reduction between AFDs (Section 5.4: "solving an AFD using
    another") is a distributed algorithm whose inputs at each location
    are the source detector's outputs there (plus the location's own
    crash) and whose outputs are the target detector's outputs.  All of
    the paper-relevant reductions in our catalog are {e local}: the
    output at a location is a function of the latest source output
    received at that location, so no messages are needed.  (Message-
    based algorithms appear in the consensus library.)

    The combined alphabet carries both detectors' events. *)

open Afd_ioa

type ('i, 'o) act =
  | In of 'i Fd_event.t  (** crash events and source-detector outputs *)
  | Out of Loc.t * 'o  (** target-detector outputs *)

val pp_act : 'i Fmt.t -> 'o Fmt.t -> ('i, 'o) act Fmt.t

type 'i state = { latest : 'i option; failed : bool }

val local_transformer :
  name:string -> loc:Loc.t -> f:(Loc.t -> 'i -> 'o) -> ('i state, ('i, 'o) act) Automaton.t
(** The transformer at location [loc]: remembers the latest source
    output, continually emits [f loc latest] (one output per task
    firing), stops after its own crash.  No output before the first
    source output arrives. *)

type ('i, 'o) run = {
  source : 'i Fd_event.t list;  (** [t|Î∪O_D] *)
  target : 'o Fd_event.t list;  (** [t|Î∪O_D'] *)
}

val run :
  detector:('s, 'i Fd_event.t) Automaton.t ->
  f:(Loc.t -> 'i -> 'o) ->
  name:string ->
  n:int ->
  seed:int ->
  crash_at:(int * Loc.t) list ->
  steps:int ->
  ('i, 'o) run
(** Compose the source detector automaton, the crash automaton and the
    [n] transformers; run a fair random schedule with the given fault
    pattern; project out both detectors' traces. *)

val run_with :
  retention:Afd_ioa.Scheduler.retention ->
  detector:('s, 'i Fd_event.t) Automaton.t ->
  f:(Loc.t -> 'i -> 'o) ->
  name:string ->
  n:int ->
  seed:int ->
  crash_at:(int * Loc.t) list ->
  steps:int ->
  ('i, 'o) run
(** {!run} under an explicit retention policy (projections are
    retention-invariant). *)

val apply_to_trace : f:(Loc.t -> 'i -> 'o) -> 'i Fd_event.t list -> 'o Fd_event.t list
(** Pure form used by spec-level tests: map every output event through
    [f] (crash events pass through).  This is the trace the transformer
    network produces when the scheduler happens to interleave one
    target output after each source output. *)
