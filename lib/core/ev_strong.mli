(** The eventually strong failure detector ◇S (Chandra-Toueg).

    Strong completeness plus {e eventual} weak accuracy: eventually
    some live location is no longer suspected by any live location
    (limit-extension semantics: some live location is absent from every
    live location's last output). *)

open Afd_ioa

type out = Loc.Set.t

val spec : out Afd.spec
