(** The anti-Ω failure detector (Zieliński), weakest for set agreement.

    Each output names a single location; the guarantee is that some
    live location is {e eventually never} output.  Under
    limit-extension semantics: some live location is named by no live
    location's last output. *)

open Afd_ioa

type out = Loc.t

val spec : out Afd.spec
