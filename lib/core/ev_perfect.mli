(** The eventually perfect failure detector ◇P (Section 3.3).

    Eventually and permanently: no live location is suspected and every
    faulty location is suspected.  Both clauses are eventual, so both
    are checked under limit-extension semantics; unlike {!Perfect},
    arbitrary false suspicions are allowed in any finite prefix. *)

open Afd_ioa

type out = Loc.Set.t

val spec : out Afd.spec
