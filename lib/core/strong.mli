(** The strong failure detector S (Chandra-Toueg).

    Strong completeness (eventually every faulty location is suspected
    by every live location — limit-extension semantics) together with
    {e perpetual} weak accuracy: some live location is never suspected
    by anyone, anywhere in the trace (a safety-flavoured clause checked
    exactly on the prefix). *)

open Afd_ioa

type out = Loc.Set.t

val spec : out Afd.spec
