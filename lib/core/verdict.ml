(* Re-export: verdicts live in [Afd_prop] since the property engine;
   kept here so [Afd_core.Verdict] users are unaffected. *)
include Afd_prop.Verdict
