type t = Sat | Violated of string | Undecided of string

let is_sat = function Sat -> true | Violated _ | Undecided _ -> false
let is_violated = function Violated _ -> true | Sat | Undecided _ -> false

let pp fmt = function
  | Sat -> Format.pp_print_string fmt "sat"
  | Violated r -> Format.fprintf fmt "violated (%s)" r
  | Undecided r -> Format.fprintf fmt "undecided (%s)" r

let ( &&& ) a b =
  match (a, b) with
  | (Violated _ as v), _ | _, (Violated _ as v) -> v
  | (Undecided _ as u), _ | _, (Undecided _ as u) -> u
  | Sat, Sat -> Sat

let all vs = List.fold_left ( &&& ) Sat vs
let of_bool ~error b = if b then Sat else Violated error
