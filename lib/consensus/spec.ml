open Afd_ioa
open Afd_system
open Afd_core

let crashes_before t =
  (* fold helper: visit events with the set of locations crashed so far *)
  let crashed = ref Loc.Set.empty in
  List.map
    (fun a ->
      let before = !crashed in
      (match a with Act.Crash i -> crashed := Loc.Set.add i !crashed | _ -> ());
      (a, before))
    t

let faulty t =
  List.fold_left
    (fun acc a -> match a with Act.Crash i -> Loc.Set.add i acc | _ -> acc)
    Loc.Set.empty t

let live ~n t = Loc.Set.diff (Loc.set_of_universe ~n) (faulty t)

let environment_well_formedness ~n t =
  let proposals = Net.proposals t in
  let at_most_one =
    let seen = Hashtbl.create 8 in
    List.fold_left
      (fun acc (i, _) ->
        if Hashtbl.mem seen i then
          Verdict.(
            acc &&& Violated (Printf.sprintf "two proposals at %s" (Loc.to_string i)))
        else begin
          Hashtbl.add seen i ();
          acc
        end)
      Verdict.Sat proposals
  in
  let none_after_crash =
    List.fold_left
      (fun acc (a, crashed) ->
        match a with
        | Act.Propose { at; _ } when Loc.Set.mem at crashed ->
          Verdict.(
            acc
            &&& Violated (Printf.sprintf "proposal at %s after its crash" (Loc.to_string at)))
        | _ -> acc)
      Verdict.Sat (crashes_before t)
  in
  let live_proposed =
    Loc.Set.fold
      (fun i acc ->
        if List.exists (fun (j, _) -> Loc.equal i j) proposals then acc
        else
          Verdict.(
            acc
            &&& Undecided (Printf.sprintf "live %s has not proposed yet" (Loc.to_string i))))
      (live ~n t) Verdict.Sat
  in
  Verdict.(at_most_one &&& none_after_crash &&& live_proposed)

let f_crash_limitation ~f t = Loc.Set.cardinal (faulty t) <= f

let crash_validity t =
  List.fold_left
    (fun acc (a, crashed) ->
      match a with
      | Act.Decide { at; _ } when Loc.Set.mem at crashed ->
        Verdict.(
          acc
          &&& Violated (Printf.sprintf "decision at %s after its crash" (Loc.to_string at)))
      | _ -> acc)
    Verdict.Sat (crashes_before t)

let agreement t =
  match Net.decisions t with
  | [] -> Verdict.Sat
  | (i0, v0) :: rest ->
    List.fold_left
      (fun acc (i, v) ->
        if Bool.equal v v0 then acc
        else
          Verdict.(
            acc
            &&& Violated
                  (Printf.sprintf "%s decided %b but %s decided %b" (Loc.to_string i0)
                     v0 (Loc.to_string i) v)))
      Verdict.Sat rest

let validity t =
  let proposed = List.map snd (Net.proposals t) in
  List.fold_left
    (fun acc (i, v) ->
      if List.mem v proposed then acc
      else
        Verdict.(
          acc
          &&& Violated
                (Printf.sprintf "%s decided %b which nobody proposed" (Loc.to_string i) v)))
    Verdict.Sat (Net.decisions t)

let termination ~n t =
  let decisions = Net.decisions t in
  let at_most_once =
    let seen = Hashtbl.create 8 in
    List.fold_left
      (fun acc (i, _) ->
        if Hashtbl.mem seen i then
          Verdict.(
            acc &&& Violated (Printf.sprintf "two decisions at %s" (Loc.to_string i)))
        else begin
          Hashtbl.add seen i ();
          acc
        end)
      Verdict.Sat decisions
  in
  let live_decided =
    Loc.Set.fold
      (fun i acc ->
        if List.exists (fun (j, _) -> Loc.equal i j) decisions then acc
        else
          Verdict.(
            acc
            &&& Undecided (Printf.sprintf "live %s has not decided yet" (Loc.to_string i))))
      (live ~n t) Verdict.Sat
  in
  Verdict.(at_most_once &&& live_decided)

let guarantees ~n t =
  Verdict.(crash_validity t &&& agreement t &&& validity t &&& termination ~n t)

let check ~n ~f t =
  if not (f_crash_limitation ~f t) then Verdict.Sat
  else
    match environment_well_formedness ~n t with
    | Verdict.Violated _ -> Verdict.Sat (* hypothesis broken: vacuous *)
    | Verdict.Undecided r -> (
      (* The environment has not finished providing inputs; safety
         clauses still apply, liveness cannot be demanded yet. *)
      match Verdict.(crash_validity t &&& agreement t &&& validity t) with
      | Verdict.Sat -> Verdict.Undecided r
      | v -> v)
    | Verdict.Sat -> guarantees ~n t

let problem ~n ~f =
  { Problem.name = Printf.sprintf "consensus(n=%d,f=%d)" n f;
    is_input = (function Act.Propose _ | Act.Crash _ -> true | _ -> false);
    is_output = Act.is_decide;
    is_crash = Act.is_crash;
    check = (fun t -> check ~n ~f t);
  }
